// Quickstart: open a database, store a sequencing lane as a FileStream
// BLOB, and analyze it with SQL through the ListShortReads table-valued
// function — the paper's Section 3.3 example end to end.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

func main() {
	dir, err := os.MkdirTemp("", "genodb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open the engine and register the genomics extension functions.
	db, err := core.Open(filepath.Join(dir, "db"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	udf.RegisterAll(db)

	// The paper's ShortReadFiles table: workflow metadata plus the lane
	// content as a FILESTREAM column.
	mustExec(db, `CREATE TABLE ShortReadFiles (
	    guid   UNIQUEIDENTIFIER PRIMARY KEY,
	    sample INT,
	    lane   INT,
	    reads  VARBINARY(MAX) FILESTREAM
	) FILESTREAM_ON FileStreamGroup`)

	// Produce a small FASTQ lane file (stand-in for sequencer output).
	lanePath := filepath.Join(dir, "855_s_1.fastq")
	writeLane(lanePath)

	// Bulk-import it as a FileStream — the engine's OPENROWSET(BULK ...,
	// SINGLE_BLOB) path.
	guid, err := db.ImportFileStream("ShortReadFiles", lanePath, map[string]sqltypes.Value{
		"guid":   sqltypes.NewString("will-be-filled"),
		"sample": sqltypes.NewInt(855),
		"lane":   sqltypes.NewInt(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported lane as FileStream blob %s\n\n", guid)

	// Check the FileStream metadata, as in the paper:
	// SELECT guid, sample, lane, reads.PathName(), DATALENGTH(reads) ...
	res := mustExec(db, `SELECT sample, lane, FilePathName(reads), FileDataLength(reads)
	                       FROM ShortReadFiles`)
	for _, row := range res.Rows {
		fmt.Printf("sample=%v lane=%v path=%v bytes=%v\n\n", row[0], row[1], row[2], row[3])
	}

	// Stream the lane through SQL: list the first reads...
	res = mustExec(db, `SELECT TOP 3 read_name, seq, quals
	                      FROM ListShortReads(855, 1, 'FastQ')`)
	fmt.Println("first reads via the ListShortReads TVF:")
	for _, row := range res.Rows {
		fmt.Printf("  %-24s %s  %s\n", row[0], row[1], row[2])
	}

	// ...and run the paper's Query 1 directly over the FileStream: bin
	// unique reads by frequency, skipping uncertain 'N' calls.
	res = mustExec(db, `
	  SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank,
	         COUNT(*) AS freq, seq
	    FROM ListShortReads(855, 1, 'FastQ')
	   WHERE CHARINDEX('N', seq) = 0
	   GROUP BY seq`)
	fmt.Println("\nunique-read binning (Query 1) over the FileStream:")
	for _, row := range res.Rows {
		fmt.Printf("  rank=%v freq=%v %v\n", row[0], row[1], row[2])
	}

	// After bulk loads, ANALYZE collects per-column statistics (row
	// counts, null fractions, NDV sketches, histograms) that the planner
	// uses for join build sides, partition counts and Bloom filters;
	// EXPLAIN then annotates every plan node with its estimate.
	res = mustExec(db, `ANALYZE TABLE ShortReadFiles`)
	fmt.Println("\nANALYZE ShortReadFiles:")
	for _, row := range res.Rows {
		fmt.Printf("  table=%v rows=%v sampled=%v columns=%v\n", row[0], row[1], row[2], row[3])
	}
	res = mustExec(db, `EXPLAIN SELECT sample, lane FROM ShortReadFiles WHERE sample = 855`)
	fmt.Println("\nplan with statistics (note the est=N rows annotations):")
	fmt.Print(res.Plan)

	// Vectorized execution: scans, filters and projections move ~1024-row
	// columnar batches with selection vectors instead of one row per
	// operator call. On a PAGE-compressed table, sealed pages keep their
	// dictionary coding into the scan, so the filter below compares
	// integer codes — rows it drops are never decompressed. EXPLAIN marks
	// batch-capable scans "vectorized". core.Options{BatchSize: n} tunes
	// the batch size and core.Options{DisableVectorized: true} forces the
	// row engine (both are off-by-default knobs; the planner picks the
	// batch path on its own).
	mustExec(db, `CREATE TABLE tags (tag VARCHAR(24), lane INT)
	              WITH (DATA_COMPRESSION = PAGE)`)
	mustExec(db, `INSERT INTO tags VALUES ('CATG', 1), ('GATC', 1), ('CATG', 2), ('TTAA', 2)`)
	mustExec(db, `CHECKPOINT`)
	res = mustExec(db, `EXPLAIN SELECT COUNT(*) FROM tags WHERE tag = 'CATG'`)
	fmt.Println("\nvectorized filter scan over a dictionary-compressed table:")
	fmt.Print(res.Plan)

	// Multi-session transactions: every session gets its own MVCC
	// transaction handle; a writer's uncommitted rows are invisible to
	// other sessions, whose reads come from a consistent snapshot and
	// never block behind the write.
	mustExec(db, `CREATE TABLE runs (run_id BIGINT, status VARCHAR(16))`)
	writer, reader := db.NewSession(), db.NewSession()
	mustSess(writer, `BEGIN`)
	mustSess(writer, `INSERT INTO runs VALUES (1, 'aligning')`)
	before := mustSess(reader, `SELECT COUNT(*) FROM runs`)
	mustSess(writer, `COMMIT`)
	after := mustSess(reader, `SELECT COUNT(*) FROM runs`)
	fmt.Printf("\nsnapshot isolation: reader saw %v rows before the writer's COMMIT, %v after\n",
		before.Rows[0][0], after.Rows[0][0])
}

func mustSess(s *core.Session, sql string) *core.Result {
	res, err := s.Exec(sql)
	if err != nil {
		log.Fatalf("SQL failed: %v\n%s", err, sql)
	}
	return res
}

func mustExec(db *core.Database, sql string) *core.Result {
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatalf("SQL failed: %v\n%s", err, sql)
	}
	return res
}

func writeLane(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := fastq.NewWriter(f)
	reads := []fastq.Record{
		{Name: "IL4_855:1:1:954:659", Seq: "GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA", Qual: ">>>>>>>>>>>>>>>6>>>>>>>;>>>>>>;>>;>;"},
		{Name: "IL4_855:1:1:497:759", Seq: "ACGTACGTACGTACGTACGTACGTACGTACGTACGT", Qual: "IIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII"},
		{Name: "IL4_855:1:1:101:202", Seq: "GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA", Qual: "IIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII"},
		{Name: "IL4_855:1:1:300:400", Seq: "ACGTNCGTACGTACGTACGTACGTACGTACGTACGT", Qual: "IIII!IIIIIIIIIIIIIIIIIIIIIIIIIIIIIII"},
	}
	for _, r := range reads {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
