// Hybrid data management (the paper's central physical design, Section
// 3.3): level-1 data lives in FileStream BLOBs under database control,
// while existing bioinformatics tools keep reading and writing the same
// bytes through ordinary file APIs. This example runs the MAQ-substitute
// aligner as an "external tool" directly against the FileStream path, then
// registers the tool's output file back into the database and joins both
// sides in one SQL query.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/gen"
	"repro/internal/sequencer"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

func main() {
	dir, err := os.MkdirTemp("", "hybrid-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(filepath.Join(dir, "db"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	udf.RegisterAll(db)
	mustExec(db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)

	// Generate a lane and a reference; write both as ordinary files first.
	genome := gen.GenerateGenome(gen.GenomeSpec{Chromosomes: 1, ChromLength: 50_000, Seed: 5})
	frags := gen.SampleFragments(genome, gen.ResequencingSpec{Reads: 5000, ReadLen: 36, Seed: 6})
	templates := make([]string, len(frags))
	for i, f := range frags {
		templates[i] = f.Seq
	}
	ins := sequencer.NewInstrument("IL9", 36)
	ins.Sigma = 0.14
	reads, err := ins.Run(sequencer.DefaultFlowcell(4), 3, 77, templates, 8)
	if err != nil {
		log.Fatal(err)
	}
	lanePath := filepath.Join(dir, "lane3.fastq")
	writeFastq(lanePath, reads)
	refPath := filepath.Join(dir, "ref.fasta")
	writeFasta(refPath, genome)

	// Import the lane under database control.
	guid, err := db.ImportFileStream("ShortReadFiles", lanePath, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(77), "lane": sqltypes.NewInt(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The hybrid trick: hand the FileStream PATH to the external tool.
	// The aligner reads the database-managed bytes with plain file I/O.
	res := mustExec(db, `SELECT FilePathName(reads) FROM ShortReadFiles WHERE sample = 77`)
	fileStreamPath := res.Rows[0][0].S
	fmt.Printf("FileStream blob %s\nexternal tool reads it at: %s\n", guid, fileStreamPath)

	alignOut := filepath.Join(dir, "lane3.aligned.txt")
	stats, err := align.AlignFiles(refPath, fileStreamPath, alignOut, 20, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("external aligner: %d/%d reads aligned -> %s\n", stats.Aligned, stats.Reads, alignOut)

	// Register the tool's output as another FileStream, closing the loop:
	// both the input and the derived data are now under database control.
	mustExec(db, `CREATE TABLE AlignmentFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)
	if _, err := db.ImportFileStream("AlignmentFiles", alignOut, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(77), "lane": sqltypes.NewInt(3),
	}); err != nil {
		log.Fatal(err)
	}

	// SQL sees both sides: compare level-1 read counts against level-2
	// alignment counts without leaving the engine.
	counts := mustExec(db, `
	  SELECT s.sample, s.lane, FileDataLength(s.reads), FileDataLength(a.reads)
	    FROM ShortReadFiles s JOIN AlignmentFiles a ON s.sample = a.sample
	   WHERE s.lane = 3`)
	row := counts.Rows[0]
	fmt.Printf("sample %v lane %v: level-1 file %v bytes, level-2 file %v bytes\n",
		row[0], row[1], row[2], row[3])

	readCount := mustExec(db, `SELECT COUNT(*) FROM ListShortReads(77, 3, 'FastQ')`)
	fmt.Printf("reads via TVF: %v, aligned by the external tool: %d\n",
		readCount.Rows[0][0], stats.Aligned)

	// Transactional control still applies: a rolled-back import leaves no
	// orphan blob behind.
	mustExec(db, `BEGIN TRANSACTION`)
	tmpGuid, err := db.ImportFileStream("ShortReadFiles", lanePath, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(78), "lane": sqltypes.NewInt(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	mustExec(db, `ROLLBACK`)
	if db.Blobs().Exists(tmpGuid) {
		log.Fatal("rollback left an orphan blob")
	}
	fmt.Println("rolled-back import removed its blob: transactional FileStreams work")
}

func mustExec(db *core.Database, sql string) *core.Result {
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatalf("SQL failed: %v\n%s", err, sql)
	}
	return res
}

func writeFastq(path string, reads []fastq.Record) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := fastq.NewWriter(f)
	for _, r := range reads {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

func writeFasta(path string, g *gen.Genome) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := fastq.NewFastaWriter(f)
	for _, c := range g.Chroms {
		if err := w.Write(fastq.FastaRecord{Name: c.Name, Seq: c.Seq}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
