// Digital gene expression study (paper Section 2.1.2, Queries 1 and 2):
// two samples — a "healthy" and a "tumor" library with shifted expression
// — are sequenced, binned, aligned, aggregated per gene in SQL, and
// compared by differential expression.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/dge"
	"repro/internal/fastq"
	"repro/internal/gen"
	"repro/internal/sequencer"
	"repro/internal/sqltypes"
)

func main() {
	dir, err := os.MkdirTemp("", "dge-study-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Phase -1/0: sample preparation and sequencing (simulated). ---
	genome := gen.GenerateGenome(gen.GenomeSpec{Chromosomes: 3, ChromLength: 120_000, Seed: 7})
	genes := gen.GenerateGenes(genome, gen.DGESpec{Genes: 150, TagLen: 21, ZipfS: 1.3, Seed: 8})
	// The tumor sample overexpresses a handful of genes: re-rank weights.
	tumorGenes := append([]gen.Gene(nil), genes...)
	for i := 0; i < 5; i++ {
		tumorGenes[i].Weight, tumorGenes[len(genes)-1-i].Weight =
			tumorGenes[len(genes)-1-i].Weight, tumorGenes[i].Weight
	}
	ins := sequencer.NewInstrument("IL4", 21)
	ins.Sigma = 0.14
	fc := sequencer.DefaultFlowcell(1)

	const tagsPerSample = 30_000
	healthyTpl, _ := gen.SampleTags(genome, genes, tagsPerSample, 11)
	tumorTpl, _ := gen.SampleTags(genome, tumorGenes, tagsPerSample, 12)
	healthy, err := ins.Run(fc, 1, 855, healthyTpl, 21)
	if err != nil {
		log.Fatal(err)
	}
	tumor, err := ins.Run(fc, 2, 855, tumorTpl, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequenced %d tags per sample (21bp, Zipf expression)\n", tagsPerSample)

	// --- Database setup: normalized schema. ---
	db, err := core.Open(filepath.Join(dir, "db"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	mustExec(db, `CREATE TABLE Tag (
	    t_id BIGINT, t_s_id INT, t_seq VARCHAR(50), t_frequency BIGINT)
	    WITH (DATA_COMPRESSION = PAGE)`)
	mustExec(db, `CREATE TABLE Alignment (
	    a_t_id BIGINT, a_s_id INT, a_g_id INT, a_pos BIGINT)`)
	mustExec(db, `CREATE TABLE GeneExpression (
	    g_id INT, s_id INT, total_frequency BIGINT, tag_count BIGINT)`)

	// --- Secondary analysis: bin unique tags (Query 1), then align. ---
	idx, err := align.BuildIndex(chromsOf(genome), 16)
	if err != nil {
		log.Fatal(err)
	}
	aligner := align.NewAligner(idx)
	// Gene annotation: alignment position -> gene id (a_g_id in Query 2).
	type locus struct {
		chrom string
		pos   int64
	}
	geneID := map[locus]int64{}
	geneName := map[int64]string{}
	for i, g := range genes {
		geneID[locus{g.Chrom, int64(g.TagPos)}] = int64(i + 1)
		geneName[int64(i+1)] = g.Name
	}
	var nextTagID int64
	loadSample := func(sampleID int64, reads []fastq.Record) {
		tags := dge.BinTags(reads)
		var tagRows, alignRows []sqltypes.Row
		for _, t := range tags {
			nextTagID++
			tagRows = append(tagRows, sqltypes.Row{
				sqltypes.NewInt(nextTagID), sqltypes.NewInt(sampleID),
				sqltypes.NewString(t.Seq), sqltypes.NewInt(t.Frequency),
			})
			rec, ok := aligner.Align(fastq.Record{Name: "t", Seq: t.Seq, Qual: qualFor(t.Seq)})
			if !ok {
				continue
			}
			gid, ok := geneID[locus{rec.RefName, rec.Pos}]
			if !ok {
				continue // intergenic hit (e.g. a sequencing-error tag)
			}
			alignRows = append(alignRows, sqltypes.Row{
				sqltypes.NewInt(nextTagID), sqltypes.NewInt(sampleID),
				sqltypes.NewInt(gid), sqltypes.NewInt(rec.Pos),
			})
		}
		if err := db.InsertRows("Tag", tagRows); err != nil {
			log.Fatal(err)
		}
		if err := db.InsertRows("Alignment", alignRows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sample %d: %d unique tags, %d aligned\n", sampleID, len(tagRows), len(alignRows))
	}
	loadSample(1, healthy)
	loadSample(2, tumor)

	// --- Tertiary analysis: the paper's Query 2, per sample. ---
	for _, sample := range []int{1, 2} {
		mustExec(db, fmt.Sprintf(`
		  INSERT INTO GeneExpression
		  SELECT a_g_id, a_s_id, SUM(t_frequency), COUNT(a_t_id)
		    FROM Alignment JOIN Tag ON a_t_id = t_id
		   WHERE a_s_id = %d
		   GROUP BY a_g_id, a_s_id`, sample))
	}
	res := mustExec(db, `SELECT s_id, COUNT(*), SUM(total_frequency)
	                       FROM GeneExpression GROUP BY s_id ORDER BY s_id`)
	for _, row := range res.Rows {
		fmt.Printf("sample %v: %v expressed genes, %v total tag mass\n", row[0], row[1], row[2])
	}

	// Differential expression: top shifted loci between the samples.
	resolve := func(s int64) []fastq.ExpressionRecord {
		r := mustExec(db, fmt.Sprintf(`SELECT g_id, total_frequency, tag_count
		                                 FROM GeneExpression WHERE s_id = %d`, s))
		out := make([]fastq.ExpressionRecord, len(r.Rows))
		for i, row := range r.Rows {
			out[i] = fastq.ExpressionRecord{
				Gene:           geneName[row[0].I],
				TotalFrequency: row[1].I,
				TagCount:       row[2].I,
			}
		}
		return out
	}
	diffs := dge.Differential(resolve(1), resolve(2))
	fmt.Println("\ntop differentially expressed genes (healthy vs tumor):")
	for i, d := range diffs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-16s healthy=%-6d tumor=%-6d log2fold=%+.2f\n", d.Gene, d.A, d.B, d.Log2Fold)
	}

	// Provenance (the paper's future-work item): record how the
	// expression table was derived and walk its lineage.
	if _, err := db.RecordProvenance(core.ProvenanceRecord{
		Entity: core.TableEntity("Alignment"), Activity: "align",
		Tool: "align.Aligner", Params: "seed=16 maxMismatches=2",
		Inputs: core.TableEntity("Tag"),
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.RecordProvenance(core.ProvenanceRecord{
		Entity: core.TableEntity("GeneExpression"), Activity: "query2",
		Tool: "SQL", Params: "GROUP BY a_g_id, a_s_id",
		Inputs: core.TableEntity("Alignment") + ", " + core.TableEntity("Tag"),
	}); err != nil {
		log.Fatal(err)
	}
	lineage, err := db.Provenance(core.TableEntity("GeneExpression"), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprovenance of table GeneExpression:")
	for _, rec := range lineage {
		fmt.Printf("  %-24s %-8s tool=%s (%s)\n", rec.Entity, rec.Activity, rec.Tool, rec.Params)
	}
}

func mustExec(db *core.Database, sql string) *core.Result {
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatalf("SQL failed: %v\n%s", err, sql)
	}
	return res
}

func qualFor(s string) string {
	b := make([]byte, len(s))
	for i := range b {
		b[i] = 'I'
	}
	return string(b)
}

func chromsOf(g *gen.Genome) []align.Chrom {
	out := make([]align.Chrom, len(g.Chroms))
	for i, c := range g.Chroms {
		out[i] = align.Chrom{Name: c.Name, Seq: c.Seq}
	}
	return out
}
