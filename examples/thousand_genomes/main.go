// Re-sequencing à la the 1000 Genomes Project (paper Section 2.1.1):
// sequence an individual genome at depth, align against the reference,
// store reads and alignments in clustered tables, retrieve sequences per
// alignment with a parallel merge join (Figure 10), call the consensus
// with the sliding-window UDA, and report the individual's SNPs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/align"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/seq"
	"repro/internal/sequencer"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

func main() {
	dir, err := os.MkdirTemp("", "thousand-genomes-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference genome and an individual carrying SNPs against it.
	reference := gen.GenerateGenome(gen.GenomeSpec{Chromosomes: 2, ChromLength: 60_000, Seed: 1})
	individual, planted := gen.MutateGenome(reference, 0.0005, 99)
	const coverage = 12
	const readLen = 36
	reads := int(float64(reference.TotalLength()) * coverage / readLen)
	frags := gen.SampleFragments(individual, gen.ResequencingSpec{
		Reads: reads, ReadLen: readLen, Seed: 2, BothStrands: true,
	})
	templates := make([]string, len(frags))
	for i, f := range frags {
		templates[i] = f.Seq
	}
	ins := sequencer.NewInstrument("IL7", readLen)
	ins.Sigma = 0.14
	recs, err := ins.Run(sequencer.DefaultFlowcell(3), 1, 1201, templates, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequenced %d reads (%dx coverage of %d bp)\n", len(recs), coverage, reference.TotalLength())

	// Secondary analysis: MAQ-substitute alignment.
	chroms := make([]align.Chrom, len(reference.Chroms))
	for i, c := range reference.Chroms {
		chroms[i] = align.Chrom{Name: c.Name, Seq: c.Seq}
	}
	idx, err := align.BuildIndex(chroms, 20)
	if err != nil {
		log.Fatal(err)
	}
	aligner := align.NewAligner(idx)
	alignments, stats := aligner.AlignAll(recs, 0)
	fmt.Printf("aligned %d/%d reads\n", stats.Aligned, stats.Reads)

	// Load the normalized, clustered schema.
	db, err := core.Open(filepath.Join(dir, "db"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	udf.RegisterAll(db)
	mustExec(db, `CREATE TABLE [Read] (
	    r_id BIGINT NOT NULL PRIMARY KEY CLUSTERED,
	    short_read_seq VARCHAR(100), quals VARCHAR(100))`)
	mustExec(db, `CREATE TABLE Alignment (
	    a_g_id INT NOT NULL, a_pos BIGINT NOT NULL, a_id BIGINT NOT NULL,
	    seq VARCHAR(100), quals VARCHAR(100),
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id))`)

	var readRows []sqltypes.Row
	for i, r := range recs {
		readRows = append(readRows, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(r.Seq), sqltypes.NewString(r.Qual),
		})
	}
	if err := db.InsertRows("Read", readRows); err != nil {
		log.Fatal(err)
	}
	chromID := map[string]int64{}
	for i, c := range reference.Chroms {
		chromID[c.Name] = int64(i + 1)
	}
	sort.Slice(alignments, func(i, j int) bool {
		a, b := alignments[i], alignments[j]
		if chromID[a.RefName] != chromID[b.RefName] {
			return chromID[a.RefName] < chromID[b.RefName]
		}
		return a.Pos < b.Pos
	})
	var alignRows []sqltypes.Row
	for i, a := range alignments {
		alignRows = append(alignRows, sqltypes.Row{
			sqltypes.NewInt(chromID[a.RefName]), sqltypes.NewInt(a.Pos), sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(a.Seq), sqltypes.NewString(a.Qual),
		})
	}
	if err := db.InsertRows("Alignment", alignRows); err != nil {
		log.Fatal(err)
	}
	mustExec(db, "CHECKPOINT")

	// The consensus plan: stream aggregate over the clustered order with
	// the sliding-window UDA (the optimized Query 3).
	consensusSQL := `
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals)
	    FROM Alignment
	   GROUP BY a_g_id`
	plan := mustExec(db, "EXPLAIN "+consensusSQL)
	fmt.Println("\nconsensus plan:")
	fmt.Print(plan.Plan)
	res := mustExec(db, consensusSQL)

	// SNP detection: compare each chromosome's consensus to the reference.
	refMap := map[string]string{}
	for _, c := range reference.Chroms {
		refMap[c.Name] = c.Seq
	}
	totalSNPs := 0
	for _, row := range res.Rows {
		gid := row[0].I
		name := reference.Chroms[gid-1].Name
		// The consensus span starts at the first aligned position.
		startRes := mustExec(db, fmt.Sprintf(
			`SELECT MIN(a_pos) FROM Alignment WHERE a_g_id = %d`, gid))
		start := startRes.Rows[0][0].I
		cons := consensus.Result{
			Chrom: name,
			Start: int(start),
			Seq:   []byte(row[1].S),
			Quals: qualsOf(len(row[1].S)),
		}
		snps := consensus.FindSNPs([]consensus.Result{cons}, refMap, 0)
		fmt.Printf("\n%s: consensus %d bp from position %d, %d SNP candidates\n",
			name, len(cons.Seq), start, len(snps))
		for i, s := range snps {
			if i >= 4 {
				fmt.Printf("  ... and %d more\n", len(snps)-4)
				break
			}
			fmt.Printf("  %s:%d %c -> %c\n", s.Chrom, s.Pos, s.RefBase, s.AltBase)
		}
		totalSNPs += len(snps)
	}
	fmt.Printf("\ntotal SNP candidates: %d (planted %d)\n", totalSNPs, len(planted))
	if strings.Contains(plan.Plan, "Stream Aggregate") {
		fmt.Println("plan used the non-blocking stream aggregate, as intended")
	}
}

func mustExec(db *core.Database, sql string) *core.Result {
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatalf("SQL failed: %v\n%s", err, sql)
	}
	return res
}

// qualsOf fabricates maximal confidences for SNP reporting from the SQL
// consensus string (the UDA returns bases only; the library API returns
// real confidences).
func qualsOf(n int) []seq.Quality {
	out := make([]seq.Quality, n)
	for i := range out {
		out[i] = 60
	}
	return out
}
