// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index) as testing.B
// benchmarks. Scales are reduced so `go test -bench=.` completes in
// minutes; cmd/experiments runs the same harness at full scale.
//
//	T1  -> BenchmarkTable1StorageDGE
//	T2  -> BenchmarkTable2Storage1000G
//	L52 -> BenchmarkFileWrapping*
//	Q1/F7/F8 -> BenchmarkQuery1Script / BenchmarkQuery1Interpreted /
//	            BenchmarkQuery1SQL
//	Q3/F10   -> BenchmarkMergeJoinAlignments, BenchmarkConsensusPivot,
//	            BenchmarkConsensusSlidingWindow
//	X1  -> BenchmarkSequenceUDTStorage
package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/script"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

const (
	benchDGEReads   = 150_000
	benchReseqReads = 60_000
)

var (
	dgeOnce sync.Once
	dgeDS   *bench.DGEDataset
	dgeErr  error

	reseqOnce sync.Once
	reseqDS   *bench.ResequencingDataset
	reseqErr  error
)

func dgeDataset(b *testing.B) *bench.DGEDataset {
	b.Helper()
	dgeOnce.Do(func() { dgeDS, dgeErr = bench.BuildDGE(benchDGEReads, 42) })
	if dgeErr != nil {
		b.Fatal(dgeErr)
	}
	return dgeDS
}

func reseqDataset(b *testing.B) *bench.ResequencingDataset {
	b.Helper()
	reseqOnce.Do(func() { reseqDS, reseqErr = bench.Build1000G(benchReseqReads, 42) })
	if reseqErr != nil {
		b.Fatal(reseqErr)
	}
	return reseqDS
}

// BenchmarkTable1StorageDGE regenerates Table 1 (storage efficiency of the
// physical designs on digital gene expression data).
func BenchmarkTable1StorageDGE(b *testing.B) {
	ds := dgeDataset(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.StorageExperimentDGE(ds, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.RenderStorageTable("Table 1 (DGE)", rows))
			reads := rows[0]
			b.ReportMetric(float64(reads.OneToOne)/float64(reads.Files), "1to1/files")
			b.ReportMetric(float64(reads.NormPage)/float64(reads.Files), "page/files")
		}
	}
}

// BenchmarkTable2Storage1000G regenerates Table 2 (storage efficiency on
// near-unique re-sequencing data).
func BenchmarkTable2Storage1000G(b *testing.B) {
	ds := reseqDataset(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.StorageExperiment1000G(ds, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.RenderStorageTable("Table 2 (1000 Genomes)", rows))
			aligns := rows[1]
			b.ReportMetric(float64(aligns.Normalized)/float64(aligns.OneToOne), "norm/1to1")
		}
	}
}

// BenchmarkSequenceUDTStorage is the Section 5.1.2 bit-encoding ablation.
func BenchmarkSequenceUDTStorage(b *testing.B) {
	ds := reseqDataset(b)
	for i := 0; i < b.N; i++ {
		vc, sq, err := bench.SequenceUDTExperiment(ds.Reads, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(sq)/float64(vc), "sequence/varchar")
		}
	}
}

// --- Section 5.2: file wrapping (one benchmark per access method) ---

func wrapFile(b *testing.B) []byte {
	return dgeDataset(b).ReadsFASTQ
}

// BenchmarkFileWrappingCommandLine is the direct command-line scan.
func BenchmarkFileWrappingCommandLine(b *testing.B) {
	data := wrapFile(b)
	path := filepath.Join(b.TempDir(), "lane.fastq")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		sc := fastq.NewChunkedScanner(fastq.SourceFromReaderAt(f), fastq.FASTQEntry, 0)
		for sc.MoveNext() {
		}
		f.Close()
		if sc.Err() != nil {
			b.Fatal(sc.Err())
		}
	}
}

// wrapDB opens an engine with the lane imported as a FileStream.
func wrapDB(b *testing.B, data []byte) (*core.Database, string) {
	b.Helper()
	dir := b.TempDir()
	db, err := core.Open(filepath.Join(dir, "db"), core.Options{DOP: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	udf.RegisterAll(db)
	if _, err := db.Exec(`CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`); err != nil {
		b.Fatal(err)
	}
	src := filepath.Join(dir, "lane.fastq")
	if err := os.WriteFile(src, data, 0o644); err != nil {
		b.Fatal(err)
	}
	guid, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(855), "lane": sqltypes.NewInt(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	return db, guid
}

// BenchmarkFileWrappingChunkedProc is the CLR-style chunked procedure.
func BenchmarkFileWrappingChunkedProc(b *testing.B) {
	data := wrapFile(b)
	db, guid := wrapDB(b, data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream, err := db.OpenBlob(guid)
		if err != nil {
			b.Fatal(err)
		}
		stream.SetSequential(true)
		sc := fastq.NewChunkedScanner(stream, fastq.FASTQEntry, 0)
		for sc.MoveNext() {
		}
		stream.Close()
		if sc.Err() != nil {
			b.Fatal(sc.Err())
		}
	}
}

// BenchmarkFileWrappingChunkedTVF is SELECT COUNT(*) through the TVF.
func BenchmarkFileWrappingChunkedTVF(b *testing.B) {
	data := wrapFile(b)
	db, _ := wrapDB(b, data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5.3.2: Query 1 ---

// BenchmarkQuery1Interpreted is the Perl-equivalent interpreted script.
func BenchmarkQuery1Interpreted(b *testing.B) {
	data := wrapFile(b)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if _, _, err := script.BinUniqueReadsInterpreted(bytes.NewReader(data), &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery1Script is the same script compiled (Go).
func BenchmarkQuery1Script(b *testing.B) {
	data := wrapFile(b)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if _, _, err := script.BinUniqueReads(bytes.NewReader(data), &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery1SQL is the declarative, parallelized form.
func BenchmarkQuery1SQL(b *testing.B) {
	ds := dgeDataset(b)
	db, err := core.Open(filepath.Join(b.TempDir(), "db"), core.Options{DOP: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := bench.LoadReadTable(db, ds); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(bench.Query1SQL); err != nil { // warm
		b.Fatal(err)
	}
	b.SetBytes(int64(len(ds.ReadsFASTQ)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(bench.Query1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5.3.3: merge join and consensus ---

var (
	consensusOnce sync.Once
	consensusDir  string
	consensusErr  error
)

// consensusDB loads the clustered tables once per benchmark binary run.
func consensusDB(b *testing.B) *core.Database {
	b.Helper()
	ds := reseqDataset(b)
	consensusOnce.Do(func() {
		consensusDir, consensusErr = os.MkdirTemp("", "consensus-bench-*")
		if consensusErr != nil {
			return
		}
		// Run the full experiment once to build and verify the tables;
		// the per-plan benchmarks below re-query the same database.
		_, consensusErr = bench.ConsensusExperiment(ds, consensusDir, runtime.NumCPU())
	})
	if consensusErr != nil {
		b.Fatal(consensusErr)
	}
	db, err := core.Open(filepath.Join(consensusDir, "consensusdb"), core.Options{DOP: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	udf.RegisterAll(db)
	return db
}

// BenchmarkMergeJoinAlignments measures the Figure 10 parallel merge join
// (alignments joined with their reads, warm pool).
func BenchmarkMergeJoinAlignments(b *testing.B) {
	db := consensusDB(b)
	sql := `SELECT COUNT(*) FROM Alignment JOIN [Read] ON a_r_id = r_id`
	res, err := db.Exec(sql) // warm
	if err != nil {
		b.Fatal(err)
	}
	n := res.Rows[0][0].I
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Malign/s")
}

// BenchmarkConsensusPivot is Query 3 as written (pivot + group by).
func BenchmarkConsensusPivot(b *testing.B) {
	db := consensusDB(b)
	sql := `
	  SELECT a_g_id, AssembleSequence(position, b)
	    FROM (SELECT a_g_id, position, CallBase(base, qual) AS b
	            FROM AlignmentSorted
	            CROSS APPLY PivotAlignment(a_pos, seq, quals) AS p
	           GROUP BY a_g_id, position) t
	   GROUP BY a_g_id`
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensusSlidingWindow is the optimized sliding-window UDA.
func BenchmarkConsensusSlidingWindow(b *testing.B) {
	db := consensusDB(b)
	sql := `
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals)
	    FROM AlignmentSorted
	   GROUP BY a_g_id`
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkSizes is the paging-buffer ablation.
func BenchmarkChunkSizes(b *testing.B) {
	data := wrapFile(b)
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		b.Run(fmt.Sprintf("%dKiB", size/1024), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				sc := fastq.NewChunkedScanner(
					fastq.SourceFromReaderAt(bytes.NewReader(data)), fastq.FASTQEntry, size)
				for sc.MoveNext() {
				}
				if sc.Err() != nil {
					b.Fatal(sc.Err())
				}
			}
		})
	}
}
