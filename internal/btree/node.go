package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// Node page layout (8 KB pages from package storage):
//
//	[0]     type: nodeLeaf or nodeInternal
//	[1]     unused
//	[2:4]   count  (number of live slots)
//	[4:6]   usedEnd (offset of free space start; begins at nodeHeaderSize)
//	[6:8]   unused
//	[8:16]  leaf: right-sibling page id (+1, 0 = none)
//	        internal: leftmost child page id
//	...     entries, appended at usedEnd
//	end     slot directory growing downward: u16 entry offsets
//
// Leaf entry:     uvarint klen | key | uvarint vlen | value
// Internal entry: uvarint klen | key | 8-byte child page id
// An internal entry's child holds keys >= its key; keys below the first
// entry go to the leftmost child.
const (
	nodeLeaf     = 2
	nodeInternal = 3

	nodeHeaderSize = 16
)

type node struct {
	data []byte // the full page image
}

func (n node) typ() byte      { return n.data[0] }
func (n node) count() int     { return int(binary.LittleEndian.Uint16(n.data[2:])) }
func (n node) usedEnd() int   { return int(binary.LittleEndian.Uint16(n.data[4:])) }
func (n node) aux() int64     { return int64(binary.LittleEndian.Uint64(n.data[8:])) }
func (n node) setCount(c int) { binary.LittleEndian.PutUint16(n.data[2:], uint16(c)) }
func (n node) setUsedEnd(u int) {
	binary.LittleEndian.PutUint16(n.data[4:], uint16(u))
}
func (n node) setAux(v int64) { binary.LittleEndian.PutUint64(n.data[8:], uint64(v)) }

// initNode formats a page image as an empty node.
func initNode(data []byte, typ byte, aux int64) node {
	for i := range data[:nodeHeaderSize] {
		data[i] = 0
	}
	n := node{data}
	data[0] = typ
	n.setUsedEnd(nodeHeaderSize)
	n.setAux(aux)
	return n
}

// slot returns the entry offset of slot i.
func (n node) slot(i int) int {
	return int(binary.LittleEndian.Uint16(n.data[storage.PageSize-2*(i+1):]))
}

func (n node) setSlot(i, off int) {
	binary.LittleEndian.PutUint16(n.data[storage.PageSize-2*(i+1):], uint16(off))
}

// key returns the key of slot i (a view into the page).
func (n node) key(i int) []byte {
	off := n.slot(i)
	klen, m := binary.Uvarint(n.data[off:])
	return n.data[off+m : off+m+int(klen)]
}

// leafValue returns the value of leaf slot i (a view into the page).
func (n node) leafValue(i int) []byte {
	off := n.slot(i)
	klen, m := binary.Uvarint(n.data[off:])
	off += m + int(klen)
	vlen, m2 := binary.Uvarint(n.data[off:])
	return n.data[off+m2 : off+m2+int(vlen)]
}

// child returns the child page id of internal slot i.
func (n node) child(i int) int64 {
	off := n.slot(i)
	klen, m := binary.Uvarint(n.data[off:])
	off += m + int(klen)
	return int64(binary.LittleEndian.Uint64(n.data[off:]))
}

// search finds the first slot with key >= k; found reports an exact match.
func (n node) search(k []byte) (pos int, found bool) {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		c := bytes.Compare(n.key(mid), k)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// childFor returns the child page to descend into for key k.
func (n node) childFor(k []byte) int64 {
	pos, found := n.search(k)
	if found {
		return n.child(pos)
	}
	if pos == 0 {
		return n.aux() // leftmost child
	}
	return n.child(pos - 1)
}

// freeSpace returns the bytes available for a new entry plus its slot.
func (n node) freeSpace() int {
	return storage.PageSize - 2*(n.count()+1) - n.usedEnd()
}

// liveBytes returns the payload bytes referenced by live slots.
func (n node) liveBytes() int {
	total := 0
	for i := 0; i < n.count(); i++ {
		total += n.entryLen(i)
	}
	return total
}

func (n node) entryLen(i int) int {
	off := n.slot(i)
	klen, m := binary.Uvarint(n.data[off:])
	l := m + int(klen)
	if n.typ() == nodeLeaf {
		vlen, m2 := binary.Uvarint(n.data[off+l:])
		l += m2 + int(vlen)
	} else {
		l += 8
	}
	return l
}

// appendEntry writes an entry at usedEnd and inserts a slot at pos.
// The caller must have verified free space.
func (n node) appendEntry(pos int, entry []byte) {
	off := n.usedEnd()
	copy(n.data[off:], entry)
	n.setUsedEnd(off + len(entry))
	cnt := n.count()
	// Shift slots [pos, cnt) down by one position (slots grow downward, so
	// lower-index slots sit at higher addresses).
	for i := cnt; i > pos; i-- {
		n.setSlot(i, n.slot(i-1))
	}
	n.setSlot(pos, off)
	n.setCount(cnt + 1)
}

// removeSlot deletes slot pos, leaving the entry bytes dead.
func (n node) removeSlot(pos int) {
	cnt := n.count()
	for i := pos; i < cnt-1; i++ {
		n.setSlot(i, n.slot(i+1))
	}
	n.setCount(cnt - 1)
}

// encodeLeafEntry renders a leaf entry.
func encodeLeafEntry(dst, key, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	return append(dst, val...)
}

// encodeInternalEntry renders an internal entry.
func encodeInternalEntry(dst, key []byte, child int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(child))
	return append(dst, b[:]...)
}

// entryPair is a decoded entry used during compaction and splits.
type entryPair struct {
	key []byte
	val []byte // leaf value, or 8-byte child id image for internals
}

// decodeEntries extracts live entries in slot order (copying them out of
// the page).
func (n node) decodeEntries() []entryPair {
	out := make([]entryPair, n.count())
	for i := 0; i < n.count(); i++ {
		out[i].key = append([]byte(nil), n.key(i)...)
		if n.typ() == nodeLeaf {
			out[i].val = append([]byte(nil), n.leafValue(i)...)
		} else {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(n.child(i)))
			out[i].val = b[:]
		}
	}
	return out
}

// rebuild formats the page from entries, preserving type and aux.
func (n node) rebuild(entries []entryPair) error {
	typ, aux := n.typ(), n.aux()
	initNode(n.data, typ, aux)
	for i, e := range entries {
		var entry []byte
		if typ == nodeLeaf {
			entry = encodeLeafEntry(nil, e.key, e.val)
		} else {
			entry = encodeInternalEntry(nil, e.key, int64(binary.LittleEndian.Uint64(e.val)))
		}
		if len(entry)+2 > n.freeSpace() {
			return fmt.Errorf("btree: rebuild overflow at entry %d", i)
		}
		n.appendEntry(i, entry)
	}
	return nil
}
