package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"repro/internal/fault"
	"repro/internal/storage"
)

// Meta page (page 0) layout:
//
//	[0:4]   magic "GBT1"
//	[8:16]  root page id
//	[16:24] key count at last checkpoint
const btreeMagic = "GBT1"

// BTree is a disk-backed B+-tree keyed by memcmp-comparable byte strings
// (see AppendKey) with arbitrary byte values.
type BTree struct {
	mu   sync.RWMutex
	file *storage.PagedFile
	pool *storage.BufferPool
	path string
	inj  *fault.Injector

	root         int64
	count        int64 // live keys (in-memory; durable at checkpoint)
	durableCount int64
}

// Open opens or creates a B+-tree at path.
func Open(path string, pool *storage.BufferPool) (*BTree, error) {
	return OpenFault(path, pool, nil)
}

// OpenFault is Open with fault-injection routing for the tree's file I/O
// (site "btree"), including the shadow file written at checkpoint.
func OpenFault(path string, pool *storage.BufferPool, inj *fault.Injector) (*BTree, error) {
	f, err := storage.OpenPagedFileFault(path, inj, "btree")
	if err != nil {
		return nil, err
	}
	t := &BTree{file: f, pool: pool, path: path, inj: inj}
	if f.NumPages() == 0 {
		if err := t.initEmpty(); err != nil {
			f.Close()
			return nil, err
		}
		return t, nil
	}
	var meta [storage.PageSize]byte
	if err := f.ReadPage(0, meta[:]); err != nil {
		f.Close()
		return nil, err
	}
	if string(meta[0:4]) != btreeMagic {
		f.Close()
		return nil, fmt.Errorf("btree: %s is not a btree file", path)
	}
	t.root = int64(binary.LittleEndian.Uint64(meta[8:]))
	t.count = int64(binary.LittleEndian.Uint64(meta[16:]))
	t.durableCount = t.count
	return t, nil
}

func (t *BTree) initEmpty() error {
	if _, err := t.file.Allocate(); err != nil { // meta
		return err
	}
	rootID, err := t.file.Allocate()
	if err != nil {
		return err
	}
	var page [storage.PageSize]byte
	initNode(page[:], nodeLeaf, 0)
	if err := t.file.WritePage(rootID, page[:]); err != nil {
		return err
	}
	t.root = int64(rootID)
	t.count = 0
	t.durableCount = 0
	return t.writeMeta()
}

func (t *BTree) writeMeta() error {
	var meta [storage.PageSize]byte
	copy(meta[0:4], btreeMagic)
	binary.LittleEndian.PutUint64(meta[8:], uint64(t.root))
	binary.LittleEndian.PutUint64(meta[16:], uint64(t.count))
	return t.file.WritePage(0, meta[:])
}

// Count returns the number of live keys.
func (t *BTree) Count() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// DurableCount returns the key count persisted by the last checkpoint.
func (t *BTree) DurableCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.durableCount
}

// Insert upserts a key. Replacing an existing key's value returns
// replaced=true; this makes WAL redo idempotent.
func (t *BTree) Insert(key, val []byte) (replaced bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	split, sepKey, right, replaced, err := t.insertRec(t.root, key, val)
	if err != nil {
		return false, err
	}
	if split {
		// Grow a new root.
		id, err := t.file.Allocate()
		if err != nil {
			return false, err
		}
		fr, err := t.pool.NewPage(t.file, id)
		if err != nil {
			return false, err
		}
		n := initNode(fr.Data(), nodeInternal, t.root)
		n.appendEntry(0, encodeInternalEntry(nil, sepKey, right))
		t.pool.Unpin(fr, true)
		t.root = int64(id)
	}
	if !replaced {
		t.count++
	}
	return replaced, nil
}

// insertRec descends from page id, returning split information.
func (t *BTree) insertRec(pid int64, key, val []byte) (split bool, sepKey []byte, right int64, replaced bool, err error) {
	fr, err := t.pool.Get(t.file, storage.PageID(pid))
	if err != nil {
		return false, nil, 0, false, err
	}
	n := node{fr.Data()}
	switch n.typ() {
	case nodeLeaf:
		split, sepKey, right, replaced, err = t.insertLeaf(n, key, val)
		t.pool.Unpin(fr, err == nil)
		return split, sepKey, right, replaced, err
	case nodeInternal:
		child := n.childFor(key)
		cSplit, cSep, cRight, rep, err := t.insertRec(child, key, val)
		if err != nil || !cSplit {
			t.pool.Unpin(fr, false)
			return false, nil, 0, rep, err
		}
		split, sepKey, right, err = t.insertInternal(n, cSep, cRight)
		t.pool.Unpin(fr, err == nil)
		return split, sepKey, right, rep, err
	}
	t.pool.Unpin(fr, false)
	return false, nil, 0, false, fmt.Errorf("btree: page %d has bad node type %d", pid, n.typ())
}

func (t *BTree) insertLeaf(n node, key, val []byte) (split bool, sepKey []byte, right int64, replaced bool, err error) {
	// Failpoint covering every leaf write, split or not — the in-place
	// append path that "btree.split" cannot reach.
	if err := t.inj.Point("btree.append"); err != nil {
		return false, nil, 0, false, err
	}
	pos, found := n.search(key)
	entry := encodeLeafEntry(nil, key, val)
	if len(entry)+2 > storage.PageSize-nodeHeaderSize {
		return false, nil, 0, false, fmt.Errorf("btree: entry of %d bytes exceeds page capacity", len(entry))
	}
	if found {
		// Replace: drop the old slot, then fall through to insertion.
		n.removeSlot(pos)
		replaced = true
	}
	if len(entry)+2 <= n.freeSpace() {
		n.appendEntry(pos, entry)
		return false, nil, 0, replaced, nil
	}
	// Try compaction: dead bytes from replacements may be reclaimable.
	if n.liveBytes()+len(entry)+2*(n.count()+1) <= storage.PageSize-nodeHeaderSize {
		if err := n.rebuild(n.decodeEntries()); err != nil {
			return false, nil, 0, false, err
		}
		n.appendEntry(pos, entry)
		return false, nil, 0, replaced, nil
	}
	// Split.
	if err := t.inj.Point("btree.split"); err != nil {
		return false, nil, 0, false, err
	}
	entries := n.decodeEntries()
	entries = insertPair(entries, pos, entryPair{key: append([]byte(nil), key...), val: append([]byte(nil), val...)})
	leftEntries, rightEntries := splitByBytes(entries, true)
	rightID, err := t.file.Allocate()
	if err != nil {
		return false, nil, 0, false, err
	}
	rf, err := t.pool.NewPage(t.file, storage.PageID(rightID))
	if err != nil {
		return false, nil, 0, false, err
	}
	rn := initNode(rf.Data(), nodeLeaf, n.aux()) // inherit right sibling
	if err := rn.rebuild(rightEntries); err != nil {
		t.pool.Unpin(rf, false)
		return false, nil, 0, false, err
	}
	t.pool.Unpin(rf, true)
	if err := n.rebuild(leftEntries); err != nil {
		return false, nil, 0, false, err
	}
	n.setAux(int64(rightID) + 1) // sibling pointers store id+1; 0 = none
	sep := append([]byte(nil), rightEntries[0].key...)
	return true, sep, int64(rightID), replaced, nil
}

func (t *BTree) insertInternal(n node, sepKey []byte, child int64) (split bool, outSep []byte, right int64, err error) {
	pos, found := n.search(sepKey)
	if found {
		return false, nil, 0, fmt.Errorf("btree: duplicate separator key")
	}
	entry := encodeInternalEntry(nil, sepKey, child)
	if len(entry)+2 <= n.freeSpace() {
		n.appendEntry(pos, entry)
		return false, nil, 0, nil
	}
	if err := t.inj.Point("btree.split"); err != nil {
		return false, nil, 0, err
	}
	entries := n.decodeEntries()
	var childImg [8]byte
	binary.LittleEndian.PutUint64(childImg[:], uint64(child))
	entries = insertPair(entries, pos, entryPair{key: append([]byte(nil), sepKey...), val: childImg[:]})
	leftEntries, rightEntries := splitByBytes(entries, false)
	// The middle key (first of the right half) moves up; its child becomes
	// the right node's leftmost child.
	mid := rightEntries[0]
	rightEntries = rightEntries[1:]
	rightID, err := t.file.Allocate()
	if err != nil {
		return false, nil, 0, err
	}
	rf, err := t.pool.NewPage(t.file, storage.PageID(rightID))
	if err != nil {
		return false, nil, 0, err
	}
	rn := initNode(rf.Data(), nodeInternal, int64(binary.LittleEndian.Uint64(mid.val)))
	if err := rn.rebuild(rightEntries); err != nil {
		t.pool.Unpin(rf, false)
		return false, nil, 0, err
	}
	t.pool.Unpin(rf, true)
	if err := n.rebuild(leftEntries); err != nil {
		return false, nil, 0, err
	}
	return true, mid.key, int64(rightID), nil
}

func insertPair(entries []entryPair, pos int, e entryPair) []entryPair {
	entries = append(entries, entryPair{})
	copy(entries[pos+1:], entries[pos:])
	entries[pos] = e
	return entries
}

// splitByBytes divides entries roughly in half by byte volume. Both halves
// are guaranteed non-empty (and for internals, the right half keeps at
// least 2 entries so the middle key can move up).
func splitByBytes(entries []entryPair, leaf bool) (left, right []entryPair) {
	total := 0
	for _, e := range entries {
		total += len(e.key) + len(e.val) + 4
	}
	acc := 0
	cut := 0
	for i, e := range entries {
		acc += len(e.key) + len(e.val) + 4
		if acc >= total/2 {
			cut = i + 1
			break
		}
	}
	minRight := 1
	if !leaf {
		minRight = 2
	}
	if cut > len(entries)-minRight {
		cut = len(entries) - minRight
	}
	if cut < 1 {
		cut = 1
	}
	return entries[:cut], entries[cut:]
}

// Get returns a copy of the value stored under key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return nil, false, err
		}
		n := node{fr.Data()}
		if n.typ() == nodeInternal {
			pid = n.childFor(key)
			t.pool.Unpin(fr, false)
			continue
		}
		pos, found := n.search(key)
		if !found {
			t.pool.Unpin(fr, false)
			return nil, false, nil
		}
		val := append([]byte(nil), n.leafValue(pos)...)
		t.pool.Unpin(fr, false)
		return val, true, nil
	}
}

// Delete removes a key, reporting whether it existed. Pages are never
// merged; sparse pages are reclaimed by the next checkpoint's compaction.
func (t *BTree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.root
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return false, err
		}
		n := node{fr.Data()}
		if n.typ() == nodeInternal {
			pid = n.childFor(key)
			t.pool.Unpin(fr, false)
			continue
		}
		pos, found := n.search(key)
		if !found {
			t.pool.Unpin(fr, false)
			return false, nil
		}
		n.removeSlot(pos)
		t.pool.Unpin(fr, true)
		t.count--
		return true, nil
	}
}

// leftmostLeaf returns the page id of the smallest-keyed leaf.
func (t *BTree) leftmostLeaf() (int64, error) {
	pid := t.root
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return 0, err
		}
		n := node{fr.Data()}
		if n.typ() == nodeLeaf {
			t.pool.Unpin(fr, false)
			return pid, nil
		}
		pid = n.aux()
		t.pool.Unpin(fr, false)
	}
}

// leafFor returns the page id of the leaf that would contain key.
func (t *BTree) leafFor(key []byte) (int64, error) {
	pid := t.root
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return 0, err
		}
		n := node{fr.Data()}
		if n.typ() == nodeLeaf {
			t.pool.Unpin(fr, false)
			return pid, nil
		}
		pid = n.childFor(key)
		t.pool.Unpin(fr, false)
	}
}

// Checkpoint writes a compacted shadow copy of the tree and atomically
// renames it over the current file. On return all keys are durable and the
// WAL up to this point may be truncated.
func (t *BTree) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Flush in-pool dirty pages into the current file first so the scan
	// below sees them... they are already visible via the pool; the scan
	// uses the pool, so no flush is needed. Build the shadow directly.
	tmpPath := t.path + ".ckpt"
	if err := fault.Remove(t.inj, tmpPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	shadow, err := storage.OpenPagedFileFault(tmpPath, t.inj, "btree")
	if err != nil {
		return err
	}
	bl, err := newBulkLoader(shadow)
	if err != nil {
		shadow.Close()
		fault.Remove(t.inj, tmpPath)
		return err
	}
	err = t.scanAllLocked(func(key, val []byte) error {
		return bl.Add(key, val)
	})
	if err == nil {
		err = bl.Finish(t.count)
	}
	if err == nil {
		err = shadow.Sync()
	}
	if cerr := shadow.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fault.Remove(t.inj, tmpPath)
		return err
	}
	// Swap: drop cached pages, close the old file, rename, reopen.
	t.pool.DropFile(t.file)
	if err := t.file.Close(); err != nil {
		return err
	}
	if err := fault.Rename(t.inj, tmpPath, t.path); err != nil {
		return err
	}
	f, err := storage.OpenPagedFileFault(t.path, t.inj, "btree")
	if err != nil {
		return err
	}
	t.file = f
	var meta [storage.PageSize]byte
	if err := f.ReadPage(0, meta[:]); err != nil {
		return err
	}
	t.root = int64(binary.LittleEndian.Uint64(meta[8:]))
	t.durableCount = t.count
	return nil
}

// scanAllLocked iterates every key/value in order via the sibling chain.
func (t *BTree) scanAllLocked(fn func(key, val []byte) error) error {
	pid, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return err
		}
		n := node{fr.Data()}
		for i := 0; i < n.count(); i++ {
			if err := fn(n.key(i), n.leafValue(i)); err != nil {
				t.pool.Unpin(fr, false)
				return err
			}
		}
		next := n.aux() // sibling stored as id+1; 0 = none
		t.pool.Unpin(fr, false)
		if next == 0 {
			return nil
		}
		pid = next - 1
	}
}

// MinKey returns the smallest key, or ok=false for an empty tree.
func (t *BTree) MinKey() ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid, err := t.leftmostLeaf()
	if err != nil {
		return nil, false, err
	}
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return nil, false, err
		}
		n := node{fr.Data()}
		if n.count() > 0 {
			key := append([]byte(nil), n.key(0)...)
			t.pool.Unpin(fr, false)
			return key, true, nil
		}
		next := n.aux()
		t.pool.Unpin(fr, false)
		if next == 0 {
			return nil, false, nil
		}
		pid = next - 1
	}
}

// MaxKey returns the largest key, or ok=false for an empty tree.
func (t *BTree) MaxKey() ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		fr, err := t.pool.Get(t.file, storage.PageID(pid))
		if err != nil {
			return nil, false, err
		}
		n := node{fr.Data()}
		if n.typ() == nodeInternal {
			next := n.aux()
			if n.count() > 0 {
				next = n.child(n.count() - 1)
			}
			t.pool.Unpin(fr, false)
			pid = next
			continue
		}
		// A rightmost leaf can be empty after deletions; walking back is
		// not supported, so scan forward from the leftmost leaf instead.
		if n.count() == 0 {
			t.pool.Unpin(fr, false)
			return t.maxKeyByScanLocked()
		}
		key := append([]byte(nil), n.key(n.count()-1)...)
		t.pool.Unpin(fr, false)
		return key, true, nil
	}
}

func (t *BTree) maxKeyByScanLocked() ([]byte, bool, error) {
	var last []byte
	err := t.scanAllLocked(func(key, _ []byte) error {
		last = append(last[:0], key...)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return last, last != nil, nil
}

// SizeBytes returns the allocated file size.
func (t *BTree) SizeBytes() int64 { return t.file.SizeBytes() }

// Path returns the tree's file path.
func (t *BTree) Path() string { return t.path }

// Close releases resources; checkpoint first for durability.
func (t *BTree) Close() error {
	t.pool.DropFile(t.file)
	return t.file.Close()
}

// compareKeys is bytes.Compare, exported to tests via this indirection.
func compareKeys(a, b []byte) int { return bytes.Compare(a, b) }
