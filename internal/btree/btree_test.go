package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func TestAppendKeyOrderPreserving(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.Null},
		{sqltypes.NewBool(false)},
		{sqltypes.NewBool(true)},
		{sqltypes.NewInt(-10)},
		{sqltypes.NewInt(0)},
		{sqltypes.NewInt(42)},
		{sqltypes.NewInt(1 << 40)},
		{sqltypes.NewString("")},
		{sqltypes.NewString("a")},
		{sqltypes.NewString("a\x00b")},
		{sqltypes.NewString("ab")},
		{sqltypes.NewString("b")},
	}
	for i := range rows {
		for j := range rows {
			// Skip cross-kind pairs whose Compare semantics the key
			// encoding does not claim to match (int vs float handled
			// below; here all same-rank or rank-ordered).
			a, _ := AppendKey(nil, rows[i])
			b, _ := AppendKey(nil, rows[j])
			want := sqltypes.CompareRows(rows[i], rows[j])
			if got := bytes.Compare(a, b); got != want && !mixedNumeric(rows[i][0], rows[j][0]) {
				t.Errorf("key order (%v, %v): bytes %d, rows %d", rows[i], rows[j], got, want)
			}
		}
	}
}

func mixedNumeric(a, b sqltypes.Value) bool {
	num := func(v sqltypes.Value) bool {
		return v.K == sqltypes.KindInt || v.K == sqltypes.KindFloat || v.K == sqltypes.KindBool
	}
	return num(a) && num(b) && a.K != b.K
}

func TestAppendKeyFloats(t *testing.T) {
	vals := []float64{-1e300, -2.5, -0.0, 0.0, 1e-10, 2.5, 1e300}
	var prev []byte
	for i, f := range vals {
		k, err := AppendKey(nil, sqltypes.Row{sqltypes.NewFloat(f)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && bytes.Compare(prev, k) > 0 {
			t.Errorf("float key order broken at %v", f)
		}
		prev = k
	}
}

func TestAppendKeyCompositeQuick(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ra := sqltypes.Row{sqltypes.NewInt(a1), sqltypes.NewString(a2)}
		rb := sqltypes.Row{sqltypes.NewInt(b1), sqltypes.NewString(b2)}
		ka, err1 := AppendKey(nil, ra)
		kb, err2 := AppendKey(nil, rb)
		if err1 != nil || err2 != nil {
			return false
		}
		return bytes.Compare(ka, kb) == sqltypes.CompareRows(ra, rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func openTestTree(t *testing.T) *BTree {
	t.Helper()
	tree, err := Open(filepath.Join(t.TempDir(), "t.btree"), storage.NewBufferPool(4096))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tree.Close() })
	return tree
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, "payload")) }

func TestInsertGet(t *testing.T) {
	tree := openTestTree(t)
	const n = 10_000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		replaced, err := tree.Insert(key(i), val(i))
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatalf("fresh insert of %d reported replaced", i)
		}
	}
	if tree.Count() != n {
		t.Fatalf("Count = %d", tree.Count())
	}
	for i := 0; i < n; i++ {
		v, found, err := tree.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, found)
		}
	}
	if _, found, _ := tree.Get([]byte("missing")); found {
		t.Error("found a missing key")
	}
}

func TestInsertReplace(t *testing.T) {
	tree := openTestTree(t)
	tree.Insert(key(1), []byte("old"))
	replaced, err := tree.Insert(key(1), []byte("new-longer-value"))
	if err != nil {
		t.Fatal(err)
	}
	if !replaced {
		t.Error("replace not reported")
	}
	if tree.Count() != 1 {
		t.Errorf("Count = %d after replace", tree.Count())
	}
	v, _, _ := tree.Get(key(1))
	if string(v) != "new-longer-value" {
		t.Errorf("value = %q", v)
	}
}

func TestReplaceChurnTriggersCompaction(t *testing.T) {
	tree := openTestTree(t)
	// Repeatedly replacing values leaves dead bytes; the page must
	// compact rather than split forever.
	for round := 0; round < 200; round++ {
		for i := 0; i < 20; i++ {
			if _, err := tree.Insert(key(i), []byte(fmt.Sprintf("round-%d-value-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tree.Count() != 20 {
		t.Errorf("Count = %d", tree.Count())
	}
	for i := 0; i < 20; i++ {
		v, found, _ := tree.Get(key(i))
		if !found || !bytes.Contains(v, []byte("round-199")) {
			t.Errorf("key %d = %q", i, v)
		}
	}
}

func TestScanOrder(t *testing.T) {
	tree := openTestTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		tree.Insert(key(i), val(i))
	}
	it, err := tree.Seek(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("scan position %d = %q, want %q", i, it.Key(), key(i))
		}
		if !bytes.Equal(it.Value(), val(i)) {
			t.Fatalf("scan value %d mismatch", i)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != n {
		t.Fatalf("scanned %d of %d", i, n)
	}
}

func TestSeekRange(t *testing.T) {
	tree := openTestTree(t)
	for i := 0; i < 1000; i++ {
		tree.Insert(key(i), val(i))
	}
	it, err := tree.Seek(key(100), key(200))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 100
	for it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("range scan at %d got %q", i, it.Key())
		}
		i++
	}
	if i != 200 {
		t.Errorf("range scan ended at %d, want 200", i)
	}
	// Seek to a key between entries starts at the next one.
	it2, _ := tree.Seek([]byte("key-00000100x"), nil)
	defer it2.Close()
	if !it2.Next() || !bytes.Equal(it2.Key(), key(101)) {
		t.Errorf("between-keys seek got %q", it2.Key())
	}
}

func TestDelete(t *testing.T) {
	tree := openTestTree(t)
	for i := 0; i < 500; i++ {
		tree.Insert(key(i), val(i))
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tree.Delete(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete of %d found nothing", i)
		}
	}
	if tree.Count() != 250 {
		t.Errorf("Count = %d", tree.Count())
	}
	if ok, _ := tree.Delete(key(0)); ok {
		t.Error("double delete reported success")
	}
	it, _ := tree.Seek(nil, nil)
	defer it.Close()
	i := 1
	for it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("after deletes, scan got %q want %q", it.Key(), key(i))
		}
		i += 2
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.btree")
	pool := storage.NewBufferPool(4096)
	tree, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		tree.Insert(key(i), val(i))
	}
	if err := tree.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint inserts simulate a crash: discarded on reopen.
	for i := n; i < n+500; i++ {
		tree.Insert(key(i), val(i))
	}
	tree.Close()

	tree2, err := Open(path, storage.NewBufferPool(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	if tree2.Count() != n {
		t.Fatalf("recovered count = %d, want %d", tree2.Count(), n)
	}
	for i := 0; i < n; i++ {
		v, found, err := tree2.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(v, val(i)) {
			t.Fatalf("after reopen Get(%d) = %q, %v", i, v, found)
		}
	}
	if _, found, _ := tree2.Get(key(n + 100)); found {
		t.Error("uncheckpointed key survived reopen")
	}
}

func TestCheckpointCompactsDeletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.btree")
	pool := storage.NewBufferPool(4096)
	tree, _ := Open(path, pool)
	defer tree.Close()
	for i := 0; i < 2000; i++ {
		tree.Insert(key(i), val(i))
	}
	tree.Checkpoint()
	before := tree.SizeBytes()
	for i := 0; i < 2000; i++ {
		if i%10 != 0 {
			tree.Delete(key(i))
		}
	}
	if err := tree.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if tree.SizeBytes() >= before {
		t.Errorf("checkpoint did not compact: %d >= %d", tree.SizeBytes(), before)
	}
	// Survivors intact.
	for i := 0; i < 2000; i += 10 {
		if _, found, _ := tree.Get(key(i)); !found {
			t.Fatalf("survivor %d lost after compaction", i)
		}
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	const n = 8000
	i := 0
	tree, err := BulkLoad(filepath.Join(t.TempDir(), "bulk.btree"), storage.NewBufferPool(4096),
		func() ([]byte, []byte, bool, error) {
			if i >= n {
				return nil, nil, false, nil
			}
			k, v := key(i), val(i)
			i++
			return k, v, true, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.Count() != n {
		t.Fatalf("Count = %d", tree.Count())
	}
	for _, probe := range []int{0, 1, n / 2, n - 1} {
		v, found, err := tree.Get(key(probe))
		if err != nil || !found || !bytes.Equal(v, val(probe)) {
			t.Fatalf("Get(%d) = %q, %v, %v", probe, v, found, err)
		}
	}
	it, _ := tree.Seek(nil, nil)
	defer it.Close()
	count := 0
	var prev []byte
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("bulk-loaded scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scan saw %d", count)
	}
	// Inserts after a bulk load still work.
	if _, err := tree.Insert([]byte("key-99999999"), []byte("post")); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := tree.Get([]byte("key-99999999")); !found || string(v) != "post" {
		t.Error("post-bulk-load insert lost")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	keys := [][]byte{[]byte("b"), []byte("a")}
	i := 0
	_, err := BulkLoad(filepath.Join(t.TempDir(), "bad.btree"), storage.NewBufferPool(64),
		func() ([]byte, []byte, bool, error) {
			if i >= len(keys) {
				return nil, nil, false, nil
			}
			k := keys[i]
			i++
			return k, []byte("v"), true, nil
		})
	if err == nil {
		t.Error("unsorted bulk load accepted")
	}
}

func TestEmptyTreeScan(t *testing.T) {
	tree := openTestTree(t)
	it, err := tree.Seek(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Next() {
		t.Error("empty tree scan returned a row")
	}
}

func TestLargeValues(t *testing.T) {
	tree := openTestTree(t)
	big := bytes.Repeat([]byte("x"), 4000) // ~half a page per entry
	for i := 0; i < 50; i++ {
		if _, err := tree.Insert(key(i), append(big, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		v, found, _ := tree.Get(key(i))
		if !found || len(v) != 4001 || v[4000] != byte(i) {
			t.Fatalf("big value %d corrupted", i)
		}
	}
	// A value that cannot fit a page must be rejected.
	if _, err := tree.Insert([]byte("huge"), bytes.Repeat([]byte("y"), storage.PageSize)); err == nil {
		t.Error("page-sized entry accepted")
	}
}

func TestInsertQuickRandomOrder(t *testing.T) {
	f := func(seed int64) bool {
		tree, err := Open(filepath.Join(t.TempDir(), fmt.Sprintf("q%d.btree", seed)), storage.NewBufferPool(1024))
		if err != nil {
			return false
		}
		defer tree.Close()
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(800) + 50
		keys := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(300))
			v := fmt.Sprintf("v%d", rng.Int())
			keys[k] = v
			if _, err := tree.Insert([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		if tree.Count() != int64(len(keys)) {
			return false
		}
		// Scan equals sorted map.
		want := make([]string, 0, len(keys))
		for k := range keys {
			want = append(want, k)
		}
		sort.Strings(want)
		it, err := tree.Seek(nil, nil)
		if err != nil {
			return false
		}
		defer it.Close()
		i := 0
		for it.Next() {
			if i >= len(want) || string(it.Key()) != want[i] || string(it.Value()) != keys[want[i]] {
				return false
			}
			i++
		}
		return i == len(want) && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
