package btree

import (
	"bytes"

	"repro/internal/storage"
)

// Iterator walks leaf entries in key order. It pins one leaf page at a
// time; Close must be called when done. Concurrent writers are excluded by
// the engine's table locks, not by the iterator.
type Iterator struct {
	t    *BTree
	pid  int64 // current leaf page; 0 when exhausted
	idx  int
	end  []byte // exclusive upper bound; nil = unbounded
	key  []byte
	val  []byte
	err  error
	fr   pinnedFrame
	done bool
}

// pinnedFrame abstracts the pooled frame so the iterator can hold it.
type pinnedFrame struct {
	fr     interface{ Data() []byte }
	unpin  func()
	active bool
}

// Seek positions an iterator at the first key >= start (or the tree
// minimum when start is nil), bounded by end (exclusive; nil = none).
func (t *BTree) Seek(start, end []byte) (*Iterator, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	it := &Iterator{t: t, end: end}
	var pid int64
	var err error
	if start == nil {
		pid, err = t.leftmostLeaf()
	} else {
		pid, err = t.leafFor(start)
	}
	if err != nil {
		return nil, err
	}
	it.pid = pid
	if err := it.pin(); err != nil {
		return nil, err
	}
	if start != nil {
		n := node{it.fr.fr.Data()}
		pos, _ := n.search(start)
		it.idx = pos
	}
	return it, nil
}

func (it *Iterator) pin() error {
	fr, err := it.t.pool.Get(it.t.file, storage.PageID(it.pid))
	if err != nil {
		return err
	}
	it.fr = pinnedFrame{
		fr:     fr,
		unpin:  func() { it.t.pool.Unpin(fr, false) },
		active: true,
	}
	return nil
}

func (it *Iterator) unpin() {
	if it.fr.active {
		it.fr.unpin()
		it.fr.active = false
	}
}

// Next advances to the next entry, returning false at the end bound or
// tree end. Check Err after a false return.
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for {
		n := node{it.fr.fr.Data()}
		if it.idx < n.count() {
			key := n.key(it.idx)
			if it.end != nil && bytes.Compare(key, it.end) >= 0 {
				it.stop()
				return false
			}
			it.key = append(it.key[:0], key...)
			it.val = append(it.val[:0], n.leafValue(it.idx)...)
			it.idx++
			return true
		}
		next := n.aux()
		it.unpin()
		if next == 0 {
			it.done = true
			return false
		}
		it.pid = next - 1
		it.idx = 0
		if err := it.pin(); err != nil {
			it.err = err
			it.done = true
			return false
		}
	}
}

func (it *Iterator) stop() {
	it.unpin()
	it.done = true
}

// Key returns the current key; valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases the pinned page. Safe to call multiple times.
func (it *Iterator) Close() {
	it.unpin()
	it.done = true
}
