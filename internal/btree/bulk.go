package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/fault"
	"repro/internal/storage"
)

// bulkFillLimit leaves head-room in bulk-loaded pages so a few later
// inserts do not immediately split every page.
const bulkFillLimit = storage.PageSize - 512

// bulkLoader builds a tree bottom-up from sorted input, writing pages
// sequentially to a fresh file. Page 0 is reserved for the meta page.
type bulkLoader struct {
	f   *storage.PagedFile
	inj *fault.Injector

	pending   []byte // current leaf image being filled
	pendingID storage.PageID
	pendingN  node
	lastKey   []byte
	leaves    []childRef // (first key, page id) per finished leaf
	started   bool
}

type childRef struct {
	firstKey []byte
	pid      int64
}

func newBulkLoader(f *storage.PagedFile) (*bulkLoader, error) {
	return newBulkLoaderFault(f, nil)
}

// newBulkLoaderFault evaluates the "btree.bulkload" failpoint before every
// page write, so torture tests can kill a build at any page boundary.
func newBulkLoaderFault(f *storage.PagedFile, inj *fault.Injector) (*bulkLoader, error) {
	if f.NumPages() != 0 {
		return nil, fmt.Errorf("btree: bulk load into non-empty file")
	}
	if _, err := f.Allocate(); err != nil { // page 0: meta
		return nil, err
	}
	bl := &bulkLoader{f: f, inj: inj}
	return bl, bl.startLeaf()
}

func (bl *bulkLoader) writePage(id storage.PageID, page []byte) error {
	if err := bl.inj.Point("btree.bulkload"); err != nil {
		return err
	}
	return bl.f.WritePage(id, page)
}

func (bl *bulkLoader) startLeaf() error {
	id, err := bl.f.Allocate()
	if err != nil {
		return err
	}
	bl.pending = make([]byte, storage.PageSize)
	bl.pendingN = initNode(bl.pending, nodeLeaf, 0)
	bl.pendingID = id
	bl.started = true
	return nil
}

// Add appends a key/value pair; keys must arrive in strictly ascending
// order.
func (bl *bulkLoader) Add(key, val []byte) error {
	if bl.lastKey != nil && bytes.Compare(key, bl.lastKey) <= 0 {
		return fmt.Errorf("btree: bulk load keys out of order")
	}
	entry := encodeLeafEntry(nil, key, val)
	if len(entry)+2 > storage.PageSize-nodeHeaderSize {
		return fmt.Errorf("btree: entry of %d bytes exceeds page capacity", len(entry))
	}
	n := bl.pendingN
	needsNew := n.usedEnd()+len(entry)+2*(n.count()+1) > bulkFillLimit && n.count() > 0
	if needsNew {
		if err := bl.finishLeaf(true); err != nil {
			return err
		}
		n = bl.pendingN
	}
	if n.count() == 0 {
		bl.leaves = append(bl.leaves, childRef{
			firstKey: append([]byte(nil), key...),
			pid:      int64(bl.pendingID),
		})
	}
	n.appendEntry(n.count(), entry)
	bl.lastKey = append(bl.lastKey[:0], key...)
	return nil
}

// finishLeaf writes the pending leaf; hasNext links its sibling pointer to
// the page that the next allocation will produce.
func (bl *bulkLoader) finishLeaf(hasNext bool) error {
	if hasNext {
		bl.pendingN.setAux(int64(bl.pendingID) + 2) // next alloc id, +1 encoded
	} else {
		bl.pendingN.setAux(0)
	}
	if err := bl.writePage(bl.pendingID, bl.pending); err != nil {
		return err
	}
	if hasNext {
		return bl.startLeaf()
	}
	return nil
}

// Finish writes the final leaf, builds the internal levels, and writes the
// meta page with the given logical key count.
func (bl *bulkLoader) Finish(count int64) error {
	if err := bl.finishLeaf(false); err != nil {
		return err
	}
	level := bl.leaves
	if len(level) == 0 {
		// Empty tree: the single empty pending leaf is the root.
		level = []childRef{{pid: int64(bl.pendingID)}}
	}
	for len(level) > 1 {
		var next []childRef
		i := 0
		for i < len(level) {
			id, err := bl.f.Allocate()
			if err != nil {
				return err
			}
			page := make([]byte, storage.PageSize)
			n := initNode(page, nodeInternal, level[i].pid)
			next = append(next, childRef{firstKey: level[i].firstKey, pid: int64(id)})
			i++
			for i < len(level) {
				entry := encodeInternalEntry(nil, level[i].firstKey, level[i].pid)
				if n.usedEnd()+len(entry)+2*(n.count()+1) > bulkFillLimit {
					break
				}
				n.appendEntry(n.count(), entry)
				i++
			}
			if err := bl.writePage(id, page); err != nil {
				return err
			}
		}
		level = next
	}
	var meta [storage.PageSize]byte
	copy(meta[0:4], btreeMagic)
	binary.LittleEndian.PutUint64(meta[8:], uint64(level[0].pid))
	binary.LittleEndian.PutUint64(meta[16:], uint64(count))
	return bl.writePage(0, meta[:])
}

// BulkLoad builds a fresh tree at path from sorted key/value pairs
// delivered by next (returning ok=false at the end). Existing trees at the
// path are replaced. The pairs must be strictly ascending by key.
func BulkLoad(path string, pool *storage.BufferPool, next func() (key, val []byte, ok bool, err error)) (*BTree, error) {
	return BulkLoadFault(path, pool, nil, next)
}

// BulkLoadFault is BulkLoad with fault-injection routing (site "btree",
// failpoint "btree.bulkload" before every page write), so index builds can
// be crash-tortured like any other write path.
func BulkLoadFault(path string, pool *storage.BufferPool, inj *fault.Injector, next func() (key, val []byte, ok bool, err error)) (*BTree, error) {
	f, err := storage.OpenPagedFileFault(path, inj, "btree")
	if err != nil {
		return nil, err
	}
	if f.NumPages() != 0 {
		f.Close()
		return nil, fmt.Errorf("btree: BulkLoad target %s already exists", path)
	}
	bl, err := newBulkLoaderFault(f, inj)
	if err != nil {
		f.Close()
		return nil, err
	}
	var count int64
	for {
		key, val, ok, err := next()
		if err != nil {
			f.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if err := bl.Add(key, val); err != nil {
			f.Close()
			return nil, err
		}
		count++
	}
	if err := bl.Finish(count); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return OpenFault(path, pool, inj)
}
