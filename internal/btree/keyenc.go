// Package btree implements the disk-backed clustered B+-tree that backs
// tables with a clustered primary key — the physical design behind the
// paper's Query 3 merge join ("we can choose appropriate clustered indexes
// on those tables so that the query processor can do this join ... by using
// a parallel merge join", Section 5.3.3).
//
// Keys are composite column values encoded into memcmp-comparable bytes;
// leaf values hold the full encoded row (a clustered index stores the table
// itself). Durability is shadow-based: the tree file only changes at
// checkpoints, which write a fresh compacted file and atomically rename it
// over the old one, so crash recovery always sees a consistent tree and the
// WAL replays the delta.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqltypes"
)

// Key-encoding tags, ordered consistently with sqltypes.Compare for
// homogeneous column kinds (the catalog guarantees each key column holds a
// single kind, so cross-kind numeric ordering never arises inside a column).
const (
	tagNull  = 0x00
	tagBool  = 0x01
	tagInt   = 0x02
	tagFloat = 0x03
	tagStr   = 0x04
	tagBytes = 0x05
)

// AppendKey appends the order-preserving encoding of the composite key
// values to dst. For any rows a, b consisting of the same column kinds:
//
//	bytes.Compare(AppendKey(nil, a), AppendKey(nil, b)) ==
//	sqltypes.CompareRows(a, b)
func AppendKey(dst []byte, key sqltypes.Row) ([]byte, error) {
	for _, v := range key {
		switch v.K {
		case sqltypes.KindNull:
			dst = append(dst, tagNull)
		case sqltypes.KindBool:
			dst = append(dst, tagBool, byte(v.I))
		case sqltypes.KindInt:
			dst = append(dst, tagInt)
			dst = appendUint64BE(dst, uint64(v.I)^(1<<63))
		case sqltypes.KindFloat:
			dst = append(dst, tagFloat)
			bits := math.Float64bits(v.F)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			dst = appendUint64BE(dst, bits)
		case sqltypes.KindString:
			dst = append(dst, tagStr)
			dst = appendEscaped(dst, v.S)
		case sqltypes.KindBytes:
			dst = append(dst, tagBytes)
			dst = appendEscaped(dst, string(v.B))
		default:
			return nil, fmt.Errorf("btree: cannot encode key kind %s", v.K)
		}
	}
	return dst, nil
}

// appendEscaped encodes a variable-length byte string such that the
// encoding of a prefix sorts before any extension: 0x00 bytes become
// 0x00 0xFF, and the value is terminated by 0x00 0x01.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x01)
}

func appendUint64BE(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeIntKeyPrefix extracts the leading integer column from an encoded
// key; ok=false when the key does not start with an integer column. Used
// by the planner to compute key ranges for partitioned merge joins.
func DecodeIntKeyPrefix(key []byte) (int64, bool) {
	if len(key) < 9 || key[0] != tagInt {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(key[1:]) ^ (1 << 63)), true
}
