package exec

import (
	"sync"

	"repro/internal/sqltypes"
)

// Gather is the exchange operator that merges partitioned parallel
// streams — "Gather Streams" in the paper's Figure 9/10 plans. Each child
// runs in its own goroutine. In unordered mode rows arrive as produced;
// in ordered mode children are drained in index order (a merging exchange
// for range-partitioned inputs), with all children still producing
// concurrently into bounded buffers.
type Gather struct {
	Children []Operator
	Ordered  bool

	rows    chan gatherMsg
	done    chan struct{}
	wg      sync.WaitGroup
	err     error
	errOnce sync.Once

	// ordered mode
	buffers []chan gatherMsg
	current int
}

type gatherMsg struct {
	row sqltypes.Row
	err error
}

// gatherBuffer is the per-channel row buffer between producers and the
// consumer. With the sharded buffer pool, scan workers no longer
// serialize on a pool lock and produce in bursts (a decoded page at a
// time), so the exchange needs enough slack to absorb a full page of
// rows per child without stalling the pipeline.
const gatherBuffer = 1024

// Open starts one producer goroutine per child.
func (g *Gather) Open(ctx *Context) error {
	g.done = make(chan struct{})
	g.err = nil
	if g.Ordered {
		g.buffers = make([]chan gatherMsg, len(g.Children))
		for i := range g.buffers {
			g.buffers[i] = make(chan gatherMsg, gatherBuffer)
		}
		g.current = 0
	} else {
		g.rows = make(chan gatherMsg, gatherBuffer)
	}
	for i, child := range g.Children {
		g.wg.Add(1)
		go func(i int, child Operator) {
			defer g.wg.Done()
			var out chan gatherMsg
			if g.Ordered {
				out = g.buffers[i]
				defer close(out)
			} else {
				out = g.rows
			}
			if err := child.Open(ctx); err != nil {
				g.send(out, gatherMsg{err: err})
				return
			}
			defer child.Close()
			for {
				row, ok, err := child.Next()
				if err != nil {
					g.send(out, gatherMsg{err: err})
					return
				}
				if !ok {
					return
				}
				if !g.send(out, gatherMsg{row: row.Clone()}) {
					return // consumer gone
				}
			}
		}(i, child)
	}
	if !g.Ordered {
		go func() {
			g.wg.Wait()
			close(g.rows)
		}()
	}
	return nil
}

// send delivers unless the consumer has closed the gather.
func (g *Gather) send(out chan gatherMsg, msg gatherMsg) bool {
	select {
	case out <- msg:
		return true
	case <-g.done:
		return false
	}
}

// Next returns the next gathered row.
func (g *Gather) Next() (sqltypes.Row, bool, error) {
	if g.Ordered {
		for g.current < len(g.buffers) {
			msg, ok := <-g.buffers[g.current]
			if !ok {
				g.current++
				continue
			}
			if msg.err != nil {
				return nil, false, msg.err
			}
			return msg.row, true, nil
		}
		return nil, false, nil
	}
	msg, ok := <-g.rows
	if !ok {
		return nil, false, nil
	}
	if msg.err != nil {
		return nil, false, msg.err
	}
	return msg.row, true, nil
}

// Close stops producers and waits for them.
func (g *Gather) Close() error {
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	// Drain so producers blocked on send can observe done.
	if g.Ordered {
		for _, ch := range g.buffers {
			for range ch {
			}
		}
	} else {
		for range g.rows {
		}
	}
	g.wg.Wait()
	return nil
}
