package exec

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// partitionedHeapScan builds one Source per sealed-page range of h, the
// same partitioning the engine's parallel table scans use.
func partitionedHeapScan(h *storage.Heap, parts int) []Operator {
	sealed := h.SealedPages()
	ops := make([]Operator, 0, parts)
	for i := 0; i < parts; i++ {
		lo := sealed * int64(i) / int64(parts)
		hi := sealed * int64(i+1) / int64(parts)
		includeTail := i == parts-1
		ops = append(ops, &Source{
			Label: fmt.Sprintf("pages [%d,%d)", lo, hi),
			Factory: func(*Context) (RowIterator, error) {
				return h.NewIterator(lo, hi, includeTail), nil
			},
		})
	}
	return ops
}

func rowSetKeys(rows []sqltypes.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = fmt.Sprintf("%v|%v", r[0], r[1])
	}
	sort.Strings(keys)
	return keys
}

// TestGatherOrderedUnorderedSameRows scans a partitioned heap through
// both gather modes: the unordered exchange may interleave rows, but the
// multisets must match, and the ordered exchange must additionally
// preserve the partition-concatenation (insertion) order.
func TestGatherOrderedUnorderedSameRows(t *testing.T) {
	pool := storage.NewBufferPool(256)
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString}
	h, err := storage.OpenHeap(filepath.Join(t.TempDir(), "g.heap"), kinds, storage.CompressNone, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const n = 20_000
	for i := 0; i < n; i++ {
		err := h.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("read-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if h.SealedPages() < 4 {
		t.Fatalf("only %d sealed pages", h.SealedPages())
	}

	run := func(ordered bool, parts int) []sqltypes.Row {
		t.Helper()
		g := &Gather{Children: partitionedHeapScan(h, parts), Ordered: ordered}
		rows, err := Run(&Context{DOP: parts}, g)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	for _, parts := range []int{2, 4, 8} {
		unordered := run(false, parts)
		ordered := run(true, parts)
		if len(unordered) != n || len(ordered) != n {
			t.Fatalf("parts=%d: %d unordered, %d ordered rows, want %d",
				parts, len(unordered), len(ordered), n)
		}
		uk, ok := rowSetKeys(unordered), rowSetKeys(ordered)
		for i := range uk {
			if uk[i] != ok[i] {
				t.Fatalf("parts=%d: row sets diverge at %d: %q vs %q", parts, i, uk[i], ok[i])
			}
		}
		// Ordered mode drains partitions in index order, and each
		// partition is itself in insertion order: global order results.
		for i, r := range ordered {
			if r[0].I != int64(i) {
				t.Fatalf("parts=%d: ordered gather row %d has key %d", parts, i, r[0].I)
			}
		}
	}
}
