package exec

import (
	"sync"

	"repro/internal/expr"
	"repro/internal/sqltypes"
	"repro/internal/vec"
)

// BatchOperator is an Operator that can also deliver its stream as
// columnar batches. NextBatch returns (nil, nil) at end of stream;
// returned batches are freshly allocated and owned by the caller (unlike
// Next rows, they are safe to retain and to hand across goroutines).
// Every batch operator also implements the row interface, so unmigrated
// consumers (joins, aggregates, sorts) compose with vectorized subtrees
// without caring which side of the transition they are on.
type BatchOperator interface {
	Operator
	NextBatch() (*vec.Batch, error)
}

// BatchIterator is a batch stream produced by a Source factory (table
// scans), mirroring RowIterator.
type BatchIterator interface {
	NextBatch() (*vec.Batch, error)
	Close() error
}

// NextBatch makes Source a BatchOperator: native when the factory's
// iterator implements BatchIterator, otherwise rows are packed into
// generic batches (the row-to-batch shim).
func (s *Source) NextBatch() (*vec.Batch, error) {
	if bi, ok := s.it.(BatchIterator); ok {
		return bi.NextBatch()
	}
	return packRows(s.it.Next, s.batchSize)
}

// packRows builds one generic batch of up to size rows from a row
// stream.
func packRows(next func() (sqltypes.Row, bool, error), size int) (*vec.Batch, error) {
	if size <= 0 {
		size = vec.DefaultBatchSize
	}
	var cols []*vec.Vector
	n := 0
	for n < size {
		row, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if cols == nil {
			cols = make([]*vec.Vector, len(row))
			for i := range cols {
				cols[i] = vec.NewGenericVector(size)
			}
		}
		for i, v := range row {
			cols[i].Append(v)
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	return vec.NewBatch(cols, n), nil
}

// ColumnPruner is implemented by batch operators whose row interface
// can skip materializing columns the consumer never reads. PruneColumns
// promises that rows served through Next will only have the marked
// columns inspected; unmarked cells come back NULL without being
// decoded. Predicate and projection evaluation inside the operator is
// unaffected — it runs on the batch vectors before rows are built.
type ColumnPruner interface {
	PruneColumns(needed []bool)
}

// batchToRow is the embeddable batch-to-row cursor every batch operator
// uses to serve its row interface. When needed is non-nil, only the
// marked columns are materialized.
type batchToRow struct {
	b      *vec.Batch
	pos    int
	row    sqltypes.Row
	needed []bool
}

func (c *batchToRow) reset() { c.b, c.pos = nil, 0 }

func (c *batchToRow) next(src func() (*vec.Batch, error)) (sqltypes.Row, bool, error) {
	for c.b == nil || c.pos >= c.b.Len() {
		b, err := src()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		c.b, c.pos = b, 0
	}
	s := c.b.Sel[c.pos]
	c.pos++
	row, err := c.b.ReadRowCols(s, c.row, c.needed)
	if err != nil {
		return nil, false, err
	}
	c.row = row
	return row, true, nil
}

// RowShim adapts a batch stream to the row interface for unmigrated
// consumers. Returned rows are reused across calls.
type RowShim struct {
	Child BatchOperator
	cur   batchToRow
}

// Open opens the child.
func (r *RowShim) Open(ctx *Context) error {
	r.cur.reset()
	return r.Child.Open(ctx)
}

// Next serves the next selected row of the current batch.
func (r *RowShim) Next() (sqltypes.Row, bool, error) {
	return r.cur.next(r.Child.NextBatch)
}

// Close closes the child.
func (r *RowShim) Close() error { return r.Child.Close() }

// PruneColumns limits row materialization to the marked columns.
func (r *RowShim) PruneColumns(needed []bool) { r.cur.needed = needed }

// BatchShim adapts a row Operator to the batch interface by packing rows
// into generic batches — the inverse of RowShim, for running a
// batch-only consumer above an unmigrated subtree.
type BatchShim struct {
	Child Operator
	size  int
}

// Open opens the child.
func (b *BatchShim) Open(ctx *Context) error {
	b.size = ctx.BatchSize
	return b.Child.Open(ctx)
}

// Next forwards the child's rows.
func (b *BatchShim) Next() (sqltypes.Row, bool, error) { return b.Child.Next() }

// NextBatch packs the child's rows.
func (b *BatchShim) NextBatch() (*vec.Batch, error) { return packRows(b.Child.Next, b.size) }

// Close closes the child.
func (b *BatchShim) Close() error { return b.Child.Close() }

// VecFilter drops rows whose predicate is not TRUE by shrinking each
// batch's selection vector in place — no rows are copied, and on
// dictionary-encoded columns the predicate is evaluated once per
// distinct value rather than once per row.
type VecFilter struct {
	Pred  expr.Expr
	Child BatchOperator

	eval  *expr.FilterEval
	pass  bool // constant-TRUE predicate: pass batches through
	empty bool // constant non-TRUE predicate: empty stream
	cur   batchToRow
}

// Open folds constant predicates and compiles the rest.
func (f *VecFilter) Open(ctx *Context) error {
	f.cur.reset()
	f.eval, f.pass, f.empty = nil, false, false
	p := expr.FoldConstants(f.Pred)
	if lit, ok := p.(*expr.Lit); ok {
		if expr.Truthy(lit.V) {
			f.pass = true
		} else {
			f.empty = true
		}
	} else {
		f.eval = expr.CompileFilter(p)
	}
	return f.Child.Open(ctx)
}

// NextBatch filters the next non-empty batch.
func (f *VecFilter) NextBatch() (*vec.Batch, error) {
	if f.empty {
		return nil, nil
	}
	for {
		b, err := f.Child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if !f.pass {
			if err := f.eval.Apply(b); err != nil {
				return nil, err
			}
		}
		if b.Len() > 0 {
			return b, nil
		}
	}
}

// Next serves rows from filtered batches.
func (f *VecFilter) Next() (sqltypes.Row, bool, error) {
	return f.cur.next(f.NextBatch)
}

// Close closes the child.
func (f *VecFilter) Close() error { return f.Child.Close() }

// PruneColumns limits row materialization to the marked columns. The
// predicate still sees every column: it evaluates on the batch vectors,
// not on served rows.
func (f *VecFilter) PruneColumns(needed []bool) { f.cur.needed = needed }

// VecProject computes output expressions batch-at-a-time: column
// references pass their input vector through unchanged (preserving
// dictionary encoding), other expressions evaluate over selected rows
// only.
type VecProject struct {
	Exprs []expr.Expr
	Child BatchOperator

	proj *expr.Projection
	cur  batchToRow
}

// Open compiles the projection.
func (p *VecProject) Open(ctx *Context) error {
	p.cur.reset()
	folded := make([]expr.Expr, len(p.Exprs))
	for i, e := range p.Exprs {
		folded[i] = expr.FoldConstants(e)
	}
	p.proj = expr.CompileProjection(folded)
	return p.Child.Open(ctx)
}

// NextBatch projects the next batch.
func (p *VecProject) NextBatch() (*vec.Batch, error) {
	b, err := p.Child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	cols, err := p.proj.Eval(b)
	if err != nil {
		return nil, err
	}
	return &vec.Batch{Cols: cols, Sel: b.Sel, Base: b.Base}, nil
}

// Next serves rows from projected batches.
func (p *VecProject) Next() (sqltypes.Row, bool, error) {
	return p.cur.next(p.NextBatch)
}

// Close closes the child.
func (p *VecProject) Close() error { return p.Child.Close() }

// PruneColumns limits row materialization to the marked output columns.
func (p *VecProject) PruneColumns(needed []bool) { p.cur.needed = needed }

// VecLimit stops after N selected rows, truncating the final batch's
// selection vector.
type VecLimit struct {
	N     int64
	Child BatchOperator

	seen int64
	cur  batchToRow
}

// Open opens the child.
func (l *VecLimit) Open(ctx *Context) error {
	l.cur.reset()
	l.seen = 0
	return l.Child.Open(ctx)
}

// NextBatch forwards batches until N rows have been emitted.
func (l *VecLimit) NextBatch() (*vec.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	for {
		b, err := l.Child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if rem := l.N - l.seen; int64(len(b.Sel)) > rem {
			b.Sel = b.Sel[:rem]
		}
		l.seen += int64(len(b.Sel))
		if b.Len() > 0 {
			return b, nil
		}
		if l.seen >= l.N {
			return nil, nil
		}
	}
}

// Next serves rows from limited batches.
func (l *VecLimit) Next() (sqltypes.Row, bool, error) {
	return l.cur.next(l.NextBatch)
}

// Close closes the child.
func (l *VecLimit) Close() error { return l.Child.Close() }

// PruneColumns limits row materialization to the marked columns.
func (l *VecLimit) PruneColumns(needed []bool) { l.cur.needed = needed }

// VecGather is the unordered exchange for batch streams. Because batches
// are caller-owned (fresh allocations, never reused by the producer), no
// per-row cloning happens on the channel — one send moves up to a full
// page of rows.
type VecGather struct {
	Children []BatchOperator

	batches chan vecGatherMsg
	done    chan struct{}
	wg      sync.WaitGroup
	cur     batchToRow
}

type vecGatherMsg struct {
	b   *vec.Batch
	err error
}

// vecGatherBuffer is sized in batches, not rows: a handful of in-flight
// pages per exchange keeps producers busy without buffering the table.
const vecGatherBuffer = 8

// Open starts one producer goroutine per child.
func (g *VecGather) Open(ctx *Context) error {
	g.cur.reset()
	g.done = make(chan struct{})
	g.batches = make(chan vecGatherMsg, vecGatherBuffer)
	for _, child := range g.Children {
		g.wg.Add(1)
		go func(child BatchOperator) {
			defer g.wg.Done()
			if err := child.Open(ctx); err != nil {
				g.send(vecGatherMsg{err: err})
				return
			}
			defer child.Close()
			for {
				b, err := child.NextBatch()
				if err != nil {
					g.send(vecGatherMsg{err: err})
					return
				}
				if b == nil {
					return
				}
				if !g.send(vecGatherMsg{b: b}) {
					return // consumer gone
				}
			}
		}(child)
	}
	go func() {
		g.wg.Wait()
		close(g.batches)
	}()
	return nil
}

func (g *VecGather) send(msg vecGatherMsg) bool {
	select {
	case g.batches <- msg:
		return true
	case <-g.done:
		return false
	}
}

// NextBatch returns the next gathered batch.
func (g *VecGather) NextBatch() (*vec.Batch, error) {
	msg, ok := <-g.batches
	if !ok {
		return nil, nil
	}
	return msg.b, msg.err
}

// Next serves rows from gathered batches.
func (g *VecGather) Next() (sqltypes.Row, bool, error) {
	return g.cur.next(g.NextBatch)
}

// PruneColumns limits row materialization to the marked columns.
func (g *VecGather) PruneColumns(needed []bool) { g.cur.needed = needed }

// Close stops producers and waits for them.
func (g *VecGather) Close() error {
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	for range g.batches {
	}
	g.wg.Wait()
	return nil
}

// VecTopN keeps the first N rows under the sort order from a batch
// child. Sort keys are evaluated as vectors (dictionary columns resolve
// each distinct key once), and once N rows are buffered, rows whose key
// is >= the current Nth key are rejected before being materialized —
// stable top-N keeps the earliest row among equals, so a later row with
// an equal key can never displace a kept one.
type VecTopN struct {
	N     int64
	Keys  []SortKey
	Child BatchOperator

	rows   []sqltypes.Row
	keys   []sqltypes.Row
	pos    int
	sorter rowSorter
}

// Open drains the child keeping the N smallest rows.
func (t *VecTopN) Open(ctx *Context) error {
	t.rows, t.keys, t.pos = nil, nil, 0
	if t.N <= 0 {
		return nil
	}
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	defer t.Child.Close()
	exprs := make([]expr.Expr, len(t.Keys))
	for i, k := range t.Keys {
		exprs[i] = k.Expr
	}
	keyProj := expr.CompileProjection(exprs)
	keyScratch := make(sqltypes.Row, len(t.Keys))
	var bound sqltypes.Row
	for {
		b, err := t.Child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		kcols, err := keyProj.Eval(b)
		if err != nil {
			return err
		}
		for _, s := range b.Sel {
			for i, kc := range kcols {
				kv, err := kc.Value(s)
				if err != nil {
					return err
				}
				keyScratch[i] = kv
			}
			if bound != nil && compareKeyRows(keyScratch, bound, t.Keys) >= 0 {
				continue
			}
			row, err := b.ReadRow(s, nil)
			if err != nil {
				return err
			}
			t.rows = append(t.rows, row)
			t.keys = append(t.keys, keyScratch.Clone())
			if int64(len(t.rows)) >= 2*t.N {
				t.trim()
				bound = t.keys[len(t.keys)-1]
			}
		}
	}
	t.trim()
	return nil
}

func (t *VecTopN) trim() {
	t.sorter.sortStable(t.rows, t.keys, t.Keys)
	if int64(len(t.rows)) > t.N {
		t.rows = t.rows[:t.N]
		t.keys = t.keys[:t.N]
	}
}

// Next emits the next kept row.
func (t *VecTopN) Next() (sqltypes.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	r := t.rows[t.pos]
	t.pos++
	return r, true, nil
}

// Close releases buffers.
func (t *VecTopN) Close() error {
	t.rows, t.keys = nil, nil
	return nil
}
