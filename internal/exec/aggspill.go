package exec

import (
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// Spillable hash aggregation: the two-phase GROUP BY operator the
// planner now emits. Each input (one per worker in the parallel plan)
// accumulates into an aggTable whose groups are hash-partitioned; when
// the table exceeds its memory budget, whole partitions freeze — new
// keys for a frozen partition append their raw input rows to a temp run
// file instead of growing the table, while the partition's existing
// states stay resident and stop growing. Draining emits the in-memory
// groups first, then re-aggregates each frozen partition from disk
// (level-seeded re-partitioning, depth-capped like the join) and merges
// the retained states back in via AggState.Merge — so user-defined
// aggregates spill exactly like COUNT and SUM, without requiring states
// to be serializable.

// DefaultAggPartitions is the spill fan-out when the caller does not set
// one (the planner's default aliases this).
const DefaultAggPartitions = 32

// maxAggSpillDepth bounds recursion: a partition still over budget after
// this many re-partitionings (e.g. one giant group that no hash can
// subdivide) is aggregated fully in memory.
const maxAggSpillDepth = 4

// keyedGroup pairs a group with its encoded key so retained states can
// be merged into a re-aggregation table at the next level.
type keyedGroup struct {
	key string
	g   *aggGroup
}

// aggTable is one worker's partial-aggregate hash table with
// budget-triggered partition freezing.
type aggTable struct {
	groupBy []expr.Expr
	aggs    []AggSpec
	parts   int
	level   int
	budget  int64 // 0 = unlimited
	spill   SpillStore
	stats   *AggStats
	prof    *obs.OpProfile

	groups    map[string]*aggGroup
	order     []string
	partBytes []int64
	bytes     int64
	frozen    []bool
	files     []SpillFile
	nFrozen   int

	gvals  sqltypes.Row
	keyBuf []byte
}

func newAggTable(groupBy []expr.Expr, aggs []AggSpec, parts, level int, budget int64, spill SpillStore, stats *AggStats, prof *obs.OpProfile) *aggTable {
	return &aggTable{
		groupBy:   groupBy,
		aggs:      aggs,
		parts:     parts,
		level:     level,
		budget:    budget,
		spill:     spill,
		stats:     stats,
		prof:      prof,
		groups:    make(map[string]*aggGroup),
		partBytes: make([]int64, parts),
		frozen:    make([]bool, parts),
		files:     make([]SpillFile, parts),
		gvals:     make(sqltypes.Row, len(groupBy)),
	}
}

// groupMemBytes approximates the retained size of one group entry.
func groupMemBytes(vals sqltypes.Row, keyLen, nStates int) int64 {
	return rowMemBytes(vals) + int64(keyLen) + int64(nStates)*64 + 48
}

// add routes one input row: to the in-memory table, or — when its
// partition is frozen — raw to the partition's spill file.
func (t *aggTable) add(row sqltypes.Row) error {
	for i, e := range t.groupBy {
		v, err := e.Eval(row)
		if err != nil {
			return err
		}
		t.gvals[i] = v
	}
	var err error
	t.keyBuf, err = appendGroupKey(t.keyBuf[:0], t.gvals)
	if err != nil {
		return err
	}
	if t.nFrozen > 0 {
		p := int(partitionHash(t.keyBuf, t.level) % uint64(t.parts))
		if t.frozen[p] {
			if err := t.files[p].Append(row); err != nil {
				return err
			}
			t.stats.SpilledRows.Add(1)
			t.prof.AddSpill(0, 0, 1)
			return nil
		}
	}
	g, ok := t.groups[string(t.keyBuf)]
	if !ok {
		g = &aggGroup{vals: t.gvals.Clone(), states: newStates(t.aggs)}
		key := string(t.keyBuf)
		t.groups[key] = g
		t.order = append(t.order, key)
		p := int(partitionHash(t.keyBuf, t.level) % uint64(t.parts))
		sz := groupMemBytes(g.vals, len(key), len(t.aggs))
		t.partBytes[p] += sz
		t.bytes += sz
		// Growth comes from new groups, so the budget check lives on the
		// insert path: each over-budget insert freezes one more partition
		// until every future new key streams to disk.
		if t.budget > 0 && t.bytes > t.budget {
			if err := t.freezeLargest(); err != nil {
				return err
			}
		}
	}
	return t.accumulate(g, row)
}

// accumulate evaluates the aggregate arguments and feeds the states.
func (t *aggTable) accumulate(g *aggGroup, row sqltypes.Row) error {
	for i, a := range t.aggs {
		args := make([]sqltypes.Value, len(a.Args))
		for j, ae := range a.Args {
			v, err := ae.Eval(row)
			if err != nil {
				return err
			}
			args[j] = v
		}
		if err := g.states[i].Add(args); err != nil {
			return err
		}
	}
	return nil
}

// freezeLargest freezes the biggest unfrozen partition: from here on its
// new keys spill raw rows to a run file. Existing states stay resident
// (the Merge-only AggState contract cannot serialize them) but stop
// growing, so memory is bounded near the budget at first overflow.
func (t *aggTable) freezeLargest() error {
	victim := -1
	for i := range t.partBytes {
		if !t.frozen[i] && (victim < 0 || t.partBytes[i] > t.partBytes[victim]) {
			victim = i
		}
	}
	if victim < 0 {
		return nil // everything frozen already; no further growth possible
	}
	if t.spill == nil {
		return fmt.Errorf("exec: aggregate memory budget %d exceeded and no spill store configured", t.budget)
	}
	f, err := createRun(t.spill)
	if err != nil {
		return err
	}
	t.files[victim] = f
	t.frozen[victim] = true
	t.nFrozen++
	t.stats.SpilledPartitions.Add(1)
	t.prof.AddSpill(0, 1, 0)
	return nil
}

// mergeGroup folds a retained group from the previous level into this
// table (used during re-aggregation). Adopted groups always stay in
// memory: a frozen target partition's file holds only raw rows, and the
// drain merges resident states regardless.
func (t *aggTable) mergeGroup(key string, g *aggGroup) error {
	tgt, ok := t.groups[key]
	if !ok {
		t.groups[key] = g
		t.order = append(t.order, key)
		return nil
	}
	for i := range tgt.states {
		if err := tgt.states[i].Merge(g.states[i]); err != nil {
			return err
		}
	}
	return nil
}

// release frees the table's live spill files (error paths and Close).
func (t *aggTable) release() {
	for i, f := range t.files {
		if f != nil {
			f.Release()
			t.files[i] = nil
		}
	}
}

// spilledPart gathers one partition's overflow across all workers: the
// raw-row files plus the states that were already resident when the
// partition froze (or that live in workers which never froze it).
type spilledPart struct {
	files    []SpillFile
	retained []keyedGroup
}

// aggDrain streams the merged result of one or more worker tables:
// in-memory groups of never-frozen partitions first, then each spilled
// partition re-aggregated from disk (recursively — a re-aggregation can
// itself freeze and spill at the next level).
type aggDrain struct {
	base     *aggTable // prototype for re-aggregation tables
	mem      []*aggGroup
	memPos   int
	spilled  []spilledPart
	spillPos int
	sub      *aggDrain
}

// drainTables merges worker tables into a drain plan. A partition
// counts as spilled if any worker froze it; its resident groups from
// every worker become retained states merged during re-aggregation.
func drainTables(tables []*aggTable) (*aggDrain, error) {
	base := tables[0]
	d := &aggDrain{base: base}
	spilledOverall := make([]bool, base.parts)
	any := false
	for _, t := range tables {
		for p, fr := range t.frozen {
			if fr {
				spilledOverall[p] = true
				any = true
			}
		}
	}
	if !any && len(tables) == 1 {
		d.mem = make([]*aggGroup, len(base.order))
		for i, key := range base.order {
			d.mem[i] = base.groups[key]
		}
		return d, nil
	}
	spIdx := make(map[int]int)
	for p, sp := range spilledOverall {
		if sp {
			spIdx[p] = len(d.spilled)
			d.spilled = append(d.spilled, spilledPart{})
		}
	}
	fail := func(err error) (*aggDrain, error) {
		// Files already adopted by the drain are no longer owned by any
		// table; free them here so the caller's table cleanup suffices.
		for i := range d.spilled {
			for _, f := range d.spilled[i].files {
				f.Release()
			}
		}
		return nil, err
	}
	merged := make(map[string]*aggGroup)
	for _, t := range tables {
		for _, key := range t.order {
			g := t.groups[key]
			p := int(partitionHash([]byte(key), base.level) % uint64(base.parts))
			if spilledOverall[p] {
				part := &d.spilled[spIdx[p]]
				part.retained = append(part.retained, keyedGroup{key: key, g: g})
				continue
			}
			tgt, ok := merged[key]
			if !ok {
				merged[key] = g
				d.mem = append(d.mem, g)
				continue
			}
			for i := range tgt.states {
				if err := tgt.states[i].Merge(g.states[i]); err != nil {
					return fail(err)
				}
			}
		}
		for p, fr := range t.frozen {
			if fr && t.files[p] != nil {
				d.spilled[spIdx[p]].files = append(d.spilled[spIdx[p]].files, t.files[p])
				t.files[p] = nil // ownership moves to the drain
			}
		}
	}
	return d, nil
}

// next yields the next finished group.
func (d *aggDrain) next() (*aggGroup, bool, error) {
	for {
		if d.memPos < len(d.mem) {
			g := d.mem[d.memPos]
			d.memPos++
			return g, true, nil
		}
		if d.sub != nil {
			g, ok, err := d.sub.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return g, true, nil
			}
			d.sub = nil
		}
		if d.spillPos >= len(d.spilled) {
			return nil, false, nil
		}
		part := d.spilled[d.spillPos]
		d.spillPos++
		sub, err := d.base.reaggregate(part)
		if err != nil {
			return nil, false, err
		}
		d.sub = sub
	}
}

// reaggregate rebuilds one spilled partition: its raw rows re-aggregate
// at level+1 (a fresh partition hash, so a skewed partition subdivides),
// then the retained states merge in. Past the depth cap the table runs
// unbudgeted — all remaining rows share keys no hash can split.
func (t *aggTable) reaggregate(part spilledPart) (*aggDrain, error) {
	t.stats.SpillRecursions.Add(1)
	budget := t.budget
	if t.level+1 >= maxAggSpillDepth {
		budget = 0
	}
	sub := newAggTable(t.groupBy, t.aggs, t.parts, t.level+1, budget, t.spill, t.stats, t.prof)
	fail := func(err error) (*aggDrain, error) {
		for _, f := range part.files {
			if f != nil {
				f.Release()
			}
		}
		sub.release()
		return nil, err
	}
	for fi, f := range part.files {
		t.stats.SpilledBytes.Add(f.Bytes())
		t.prof.AddSpill(f.Bytes(), 0, 0)
		it, err := f.Iter()
		if err != nil {
			return fail(err)
		}
		for {
			row, ok, err := it.Next()
			if err != nil {
				return fail(err)
			}
			if !ok {
				break
			}
			if err := sub.add(row); err != nil {
				return fail(err)
			}
		}
		f.Release()
		part.files[fi] = nil
	}
	for _, kg := range part.retained {
		if err := sub.mergeGroup(kg.key, kg.g); err != nil {
			return fail(err)
		}
	}
	return drainTables([]*aggTable{sub})
}

// release frees the files of every unprocessed spilled partition.
func (d *aggDrain) release() {
	for i := d.spillPos; i < len(d.spilled); i++ {
		for _, f := range d.spilled[i].files {
			if f != nil {
				f.Release()
			}
		}
		d.spilled[i].files = nil
	}
	if d.sub != nil {
		d.sub.release()
		d.sub = nil
	}
	if d.base != nil {
		d.base.release()
	}
}

// SpillableAggregate evaluates GROUP BY with aggregate functions under a
// memory budget. With Parts set it is the paper's Figure 9 plan made
// out-of-core: one partial aggregate per worker below the exchange, a
// final AggState.Merge pass above it, and budget-triggered partition
// spilling inside each partial. With Child set it runs the same table
// serially. Output rows are the group-by values followed by the
// aggregate results; with no group-by expressions it produces the single
// global aggregate row.
type SpillableAggregate struct {
	GroupBy []expr.Expr
	Aggs    []AggSpec
	// Child is the single-stream input; Parts are per-worker partial
	// inputs (set one or the other).
	Child Operator
	Parts []Operator
	// Partitions is the spill hash fan-out (default 32).
	Partitions int
	// MemoryBudget caps the bytes of resident group state across all
	// workers; 0 means unlimited. Exceeding it freezes partitions, which
	// spill through Spill.
	MemoryBudget int64
	// Spill creates temp files for frozen partitions. Required only when
	// MemoryBudget can be exceeded.
	Spill SpillStore
	// Level seeds the partition hash (zero for planner-built nodes).
	Level int

	drain    *aggDrain
	out      sqltypes.Row
	sawGroup bool
	emitted  bool
}

// Open drains the input(s) into budgeted partial tables and prepares the
// merged drain.
func (a *SpillableAggregate) Open(ctx *Context) error {
	stats := &statsFrom(ctx).Agg
	parts := a.Partitions
	if parts < 1 {
		parts = DefaultAggPartitions
	}
	a.drain = nil
	a.sawGroup, a.emitted = false, false
	a.out = make(sqltypes.Row, len(a.GroupBy)+len(a.Aggs))

	var tables []*aggTable
	if len(a.Parts) > 0 {
		perBudget := a.MemoryBudget
		if perBudget > 0 {
			perBudget /= int64(len(a.Parts))
			if perBudget < 1 {
				perBudget = 1
			}
		}
		tables = make([]*aggTable, len(a.Parts))
		errs := make([]error, len(a.Parts))
		var wg sync.WaitGroup
		for i, part := range a.Parts {
			tables[i] = newAggTable(a.GroupBy, a.Aggs, parts, a.Level, perBudget, a.Spill, stats, profFrom(ctx))
			wg.Add(1)
			go func(i int, child Operator) {
				defer wg.Done()
				errs[i] = drainIntoTable(ctx, child, tables[i])
			}(i, part)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				for _, t := range tables {
					t.release()
				}
				return err
			}
		}
	} else {
		t := newAggTable(a.GroupBy, a.Aggs, parts, a.Level, a.MemoryBudget, a.Spill, stats, profFrom(ctx))
		if err := drainIntoTable(ctx, a.Child, t); err != nil {
			t.release()
			return err
		}
		tables = []*aggTable{t}
	}
	d, err := drainTables(tables)
	if err != nil {
		for _, t := range tables {
			t.release()
		}
		return err
	}
	a.drain = d
	return nil
}

// drainIntoTable opens a child, feeds every row to the table, and closes
// it.
func drainIntoTable(ctx *Context, child Operator, t *aggTable) error {
	if err := child.Open(ctx); err != nil {
		return err
	}
	defer child.Close()
	for {
		row, ok, err := child.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := t.add(row); err != nil {
			return err
		}
	}
}

// Next emits one group.
func (a *SpillableAggregate) Next() (sqltypes.Row, bool, error) {
	if a.drain != nil {
		g, ok, err := a.drain.next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			a.sawGroup = true
			return renderGroup(a.out, g)
		}
	}
	// Global aggregate over an empty input still yields one row.
	if len(a.GroupBy) == 0 && !a.sawGroup && !a.emitted {
		a.emitted = true
		return renderGroup(a.out, &aggGroup{states: newStates(a.Aggs)})
	}
	return nil, false, nil
}

// Close releases spill files and tables.
func (a *SpillableAggregate) Close() error {
	if a.drain != nil {
		a.drain.release()
		a.drain = nil
	}
	return nil
}
