package exec

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// compareKeyRows orders two precomputed key rows under the sort terms:
// negative when a sorts before b.
func compareKeyRows(a, b sqltypes.Row, by []SortKey) int {
	for i := range by {
		c := sqltypes.Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if by[i].Desc {
			return -c
		}
		return c
	}
	return 0
}

// rowSorter stably sorts rows and their precomputed keys in place — no
// permutation scratch slices, so repeated sorts (TopN's lazy trim, run
// spilling) allocate nothing per call. Holders embed one and reuse it.
type rowSorter struct {
	rows, keys []sqltypes.Row
	by         []SortKey
}

func (s *rowSorter) Len() int { return len(s.rows) }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
func (s *rowSorter) Less(i, j int) bool {
	return compareKeyRows(s.keys[i], s.keys[j], s.by) < 0
}

// sortStable sorts rows (stably) by their keys, permuting both in place.
func (s *rowSorter) sortStable(rows, keys []sqltypes.Row, by []SortKey) {
	s.rows, s.keys, s.by = rows, keys, by
	sort.Stable(s)
	s.rows, s.keys = nil, nil // don't pin the slices between sorts
}

// sortRows sorts rows (stably) by their precomputed keys, keeping the
// keys aligned so callers can keep using them.
func sortRows(rows, keys []sqltypes.Row, by []SortKey) {
	var s rowSorter
	s.sortStable(rows, keys, by)
}

// Sort emits its input ordered by the keys. It is an external merge
// sort: rows buffer up to MemoryBudget, overflowing spans spill as
// stably-sorted runs through Spill, and Next() streams either the
// in-memory buffer or a loser-tree merge of the runs. Equal keys stay in
// input order even when runs spill (merge ties break by run index).
type Sort struct {
	Keys  []SortKey
	Child Operator
	// MemoryBudget caps the bytes of buffered rows (0 = unlimited);
	// exceeding it spills sorted runs through Spill.
	MemoryBudget int64
	// Spill creates temp run files. Required only when MemoryBudget can
	// be exceeded.
	Spill SpillStore

	sorter *extSorter
	it     RowIterator
}

// Open drains and sorts the child, spilling runs past the budget.
func (s *Sort) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	defer s.Child.Close()
	// Callers (exec.Run, MergeSorted) do not Close an operator whose Open
	// failed, so error paths must release any spilled runs here.
	es := newExtSorter(s.Keys, s.MemoryBudget, s.Spill, &statsFrom(ctx).Sort, profFrom(ctx))
	s.sorter = es
	fail := func(err error) error {
		es.Release()
		s.sorter = nil
		return err
	}
	for {
		row, ok, err := s.Child.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := es.Add(row); err != nil {
			return fail(err)
		}
	}
	it, err := es.Finish()
	if err != nil {
		return fail(err)
	}
	s.it = it
	return nil
}

// Next emits the next sorted row.
func (s *Sort) Next() (sqltypes.Row, bool, error) {
	if s.it == nil {
		return nil, false, nil
	}
	return s.it.Next()
}

// NextKeyed implements keyedSource: both sorted-stream shapes (in-memory
// buffer and loser-tree merge) carry the precomputed sort keys, so a
// merge exchange above per-partition sorts reuses them for free.
func (s *Sort) NextKeyed() (sqltypes.Row, sqltypes.Row, bool, error) {
	if s.it == nil {
		return nil, nil, false, nil
	}
	return s.it.(keyedSource).NextKeyed()
}

// sortedBuffers hands the fully in-memory sorted result (rows plus
// keys) to a merge exchange, which then merges arrays in tight loops
// instead of streaming row-at-a-time. Returns ok=false when runs
// spilled (the result must stream through the loser tree) or the sort
// is not open.
func (s *Sort) sortedBuffers() (rows, keys []sqltypes.Row, ok bool) {
	it, isMem := s.it.(*keyedSliceIterator)
	if !isMem || it.pos != 0 {
		return nil, nil, false
	}
	return it.rows, it.keys, true
}

// Close releases the buffered rows and any spilled runs.
func (s *Sort) Close() error {
	if s.sorter != nil {
		s.sorter.Release()
		s.sorter = nil
	}
	s.it = nil
	return nil
}

// RowNumber implements ROW_NUMBER() OVER (ORDER BY ...): it orders its
// input by the window ordering and appends the 1-based row number as an
// extra trailing column (projections then place it wherever the SELECT
// list wants it). This is the paper's Query 1 ranking construct. The
// sort is external (same budget/spill machinery as Sort); when the
// planner already ordered the input (per-partition sorts under a
// MergeSorted exchange) InputSorted skips the sort and the operator
// streams, numbering rows as they arrive.
type RowNumber struct {
	OrderBy      []SortKey
	Child        Operator
	MemoryBudget int64
	Spill        SpillStore
	InputSorted  bool

	sorter    *extSorter
	it        RowIterator
	childOpen bool
	n         int64
	out       sqltypes.Row
}

// Open materializes and sorts (or, for pre-sorted input, just opens).
func (r *RowNumber) Open(ctx *Context) error {
	r.n = 0
	if err := r.Child.Open(ctx); err != nil {
		return err
	}
	if r.InputSorted {
		r.childOpen = true
		return nil
	}
	defer r.Child.Close()
	// As in Sort.Open: a failed Open never gets a Close, so release any
	// spilled runs on the way out.
	es := newExtSorter(r.OrderBy, r.MemoryBudget, r.Spill, &statsFrom(ctx).Sort, profFrom(ctx))
	r.sorter = es
	fail := func(err error) error {
		es.Release()
		r.sorter = nil
		return err
	}
	for {
		row, ok, err := r.Child.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := es.Add(row); err != nil {
			return fail(err)
		}
	}
	it, err := es.Finish()
	if err != nil {
		return fail(err)
	}
	r.it = it
	return nil
}

// Next emits the next row with its number appended.
func (r *RowNumber) Next() (sqltypes.Row, bool, error) {
	var row sqltypes.Row
	var ok bool
	var err error
	if r.InputSorted {
		row, ok, err = r.Child.Next()
	} else {
		if r.it == nil {
			return nil, false, nil
		}
		row, ok, err = r.it.Next()
	}
	if err != nil || !ok {
		return nil, false, err
	}
	r.n++
	if cap(r.out) < len(row)+1 {
		r.out = make(sqltypes.Row, len(row)+1)
	}
	r.out = r.out[:len(row)+1]
	copy(r.out, row)
	r.out[len(row)] = sqltypes.NewInt(r.n)
	return r.out, true, nil
}

// Close releases buffered rows, runs, and the streaming child.
func (r *RowNumber) Close() error {
	if r.sorter != nil {
		r.sorter.Release()
		r.sorter = nil
	}
	r.it = nil
	var err error
	if r.childOpen {
		r.childOpen = false
		err = r.Child.Close()
	}
	return err
}

// TopN keeps only the first N rows under the sort order; a fused
// Sort+Limit that avoids materializing more than 2N rows.
type TopN struct {
	N     int64
	Keys  []SortKey
	Child Operator

	rows   []sqltypes.Row
	keys   []sqltypes.Row
	pos    int
	sorter rowSorter
}

// Open drains the child keeping the N smallest rows. TOP 0 short-
// circuits without opening the child: it can produce no rows, so there
// is nothing to materialize (and a Sort or Gather child would otherwise
// do its full work during Open).
func (t *TopN) Open(ctx *Context) error {
	t.rows, t.keys, t.pos = nil, nil, 0
	if t.N <= 0 {
		return nil
	}
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	defer t.Child.Close()
	for {
		row, ok, err := t.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		clone := row.Clone()
		key := make(sqltypes.Row, len(t.Keys))
		for i, k := range t.Keys {
			v, err := k.Expr.Eval(clone)
			if err != nil {
				return err
			}
			key[i] = v
		}
		t.rows = append(t.rows, clone)
		t.keys = append(t.keys, key)
		// Lazy trim: allow 2N buffered, then cut back to N.
		if int64(len(t.rows)) >= 2*t.N {
			t.trim()
		}
	}
	t.trim()
	return nil
}

func (t *TopN) trim() {
	t.sorter.sortStable(t.rows, t.keys, t.Keys)
	if int64(len(t.rows)) > t.N {
		t.rows = t.rows[:t.N]
		t.keys = t.keys[:t.N]
	}
}

// Next emits the next of the kept rows.
func (t *TopN) Next() (sqltypes.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	r := t.rows[t.pos]
	t.pos++
	return r, true, nil
}

// Close releases buffers.
func (t *TopN) Close() error {
	t.rows, t.keys = nil, nil
	return nil
}
