package exec

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys.
type Sort struct {
	Keys  []SortKey
	Child Operator

	rows []sqltypes.Row
	pos  int
}

// Open drains and sorts the child.
func (s *Sort) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	defer s.Child.Close()
	s.rows = s.rows[:0]
	s.pos = 0
	rows, keys, err := drainWithKeys(s.Child, s.Keys)
	if err != nil {
		return err
	}
	sortRows(rows, keys, s.Keys)
	s.rows = rows
	return nil
}

// drainWithKeys materializes rows and their evaluated sort keys.
func drainWithKeys(child Operator, sortKeys []SortKey) ([]sqltypes.Row, []sqltypes.Row, error) {
	var rows []sqltypes.Row
	var keys []sqltypes.Row
	for {
		row, ok, err := child.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rows, keys, nil
		}
		clone := row.Clone()
		key := make(sqltypes.Row, len(sortKeys))
		for i, k := range sortKeys {
			v, err := k.Expr.Eval(clone)
			if err != nil {
				return nil, nil, err
			}
			key[i] = v
		}
		rows = append(rows, clone)
		keys = append(keys, key)
	}
}

// sortRows sorts rows (stably) by their precomputed keys, permuting the
// keys alongside so callers can keep using them (TopN's trim does).
func sortRows(rows, keys []sqltypes.Row, sortKeys []SortKey) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range sortKeys {
			c := sqltypes.Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if sortKeys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	permutedRows := make([]sqltypes.Row, len(rows))
	permutedKeys := make([]sqltypes.Row, len(keys))
	for i, j := range idx {
		permutedRows[i] = rows[j]
		permutedKeys[i] = keys[j]
	}
	copy(rows, permutedRows)
	copy(keys, permutedKeys)
}

// Next emits the next sorted row.
func (s *Sort) Next() (sqltypes.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close releases the buffered rows.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// RowNumber implements ROW_NUMBER() OVER (ORDER BY ...): it sorts its
// input by the window ordering and appends the 1-based row number as an
// extra trailing column (projections then place it wherever the SELECT
// list wants it). This is the paper's Query 1 ranking construct.
type RowNumber struct {
	OrderBy []SortKey
	Child   Operator

	rows []sqltypes.Row
	pos  int
	out  sqltypes.Row
}

// Open materializes and sorts.
func (r *RowNumber) Open(ctx *Context) error {
	if err := r.Child.Open(ctx); err != nil {
		return err
	}
	defer r.Child.Close()
	r.pos = 0
	rows, keys, err := drainWithKeys(r.Child, r.OrderBy)
	if err != nil {
		return err
	}
	sortRows(rows, keys, r.OrderBy)
	r.rows = rows
	return nil
}

// Next emits the next row with its number appended.
func (r *RowNumber) Next() (sqltypes.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	if cap(r.out) < len(row)+1 {
		r.out = make(sqltypes.Row, len(row)+1)
	}
	r.out = r.out[:len(row)+1]
	copy(r.out, row)
	r.out[len(row)] = sqltypes.NewInt(int64(r.pos))
	return r.out, true, nil
}

// Close releases buffered rows.
func (r *RowNumber) Close() error {
	r.rows = nil
	return nil
}

// TopN keeps only the first N rows under the sort order; a fused
// Sort+Limit that avoids materializing more than N rows.
type TopN struct {
	N     int64
	Keys  []SortKey
	Child Operator

	rows []sqltypes.Row
	keys []sqltypes.Row
	pos  int
}

// Open drains the child keeping the N smallest rows.
func (t *TopN) Open(ctx *Context) error {
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	defer t.Child.Close()
	t.rows, t.keys, t.pos = nil, nil, 0
	for {
		row, ok, err := t.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		clone := row.Clone()
		key := make(sqltypes.Row, len(t.Keys))
		for i, k := range t.Keys {
			v, err := k.Expr.Eval(clone)
			if err != nil {
				return err
			}
			key[i] = v
		}
		t.rows = append(t.rows, clone)
		t.keys = append(t.keys, key)
		// Lazy trim: allow 2N buffered, then cut back to N.
		if int64(len(t.rows)) >= 2*t.N && t.N > 0 {
			t.trim()
		}
	}
	t.trim()
	return nil
}

func (t *TopN) trim() {
	sortRows(t.rows, t.keys, t.Keys)
	if int64(len(t.rows)) > t.N {
		t.rows = t.rows[:t.N]
		t.keys = t.keys[:t.N]
	}
}

// Next emits the next of the kept rows.
func (t *TopN) Next() (sqltypes.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	r := t.rows[t.pos]
	t.pos++
	return r, true, nil
}

// Close releases buffers.
func (t *TopN) Close() error {
	t.rows, t.keys = nil, nil
	return nil
}
