package exec

import (
	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// HashJoin is an inner equi-join: the right (build) side is materialized
// into a hash table, the left (probe) side streams. Output rows are the
// left row's values followed by the right row's.
type HashJoin struct {
	LeftKeys  []expr.Expr
	RightKeys []expr.Expr
	Left      Operator
	Right     Operator

	table    map[string][]sqltypes.Row
	pending  []sqltypes.Row
	current  sqltypes.Row
	out      sqltypes.Row
	leftOpen bool
}

// Open builds the hash table from the right child, then opens the probe
// child. The build child is closed exactly once on every path (including
// build errors and a failed probe open), so Open never leaks a child.
func (j *HashJoin) Open(ctx *Context) error {
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	if err := j.buildTable(); err != nil {
		j.Right.Close()
		return err
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	j.leftOpen = true
	if err := j.Left.Open(ctx); err != nil {
		j.leftOpen = false
		j.table = nil
		return err
	}
	return nil
}

func (j *HashJoin) buildTable() error {
	j.table = make(map[string][]sqltypes.Row)
	keyVals := make(sqltypes.Row, len(j.RightKeys))
	var keyBuf []byte
	for {
		row, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		var null bool
		keyBuf, null, err = appendJoinKey(keyBuf, j.RightKeys, keyVals, row)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never join
		}
		j.table[string(keyBuf)] = append(j.table[string(keyBuf)], row.Clone())
	}
}

// Next probes the table with the next left rows.
func (j *HashJoin) Next() (sqltypes.Row, bool, error) {
	keyVals := make(sqltypes.Row, len(j.LeftKeys))
	var keyBuf []byte
	for {
		if len(j.pending) > 0 {
			right := j.pending[0]
			j.pending = j.pending[1:]
			return j.combine(j.current, right), true, nil
		}
		row, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var null bool
		keyBuf, null, err = appendJoinKey(keyBuf, j.LeftKeys, keyVals, row)
		if err != nil {
			return nil, false, err
		}
		if null {
			continue
		}
		matches := j.table[string(keyBuf)]
		if len(matches) == 0 {
			continue
		}
		j.current = row.Clone()
		j.pending = matches
	}
}

func (j *HashJoin) combine(left, right sqltypes.Row) sqltypes.Row {
	if cap(j.out) < len(left)+len(right) {
		j.out = make(sqltypes.Row, len(left)+len(right))
	}
	j.out = j.out[:len(left)+len(right)]
	copy(j.out, left)
	copy(j.out[len(left):], right)
	return j.out
}

// Close releases the probe child and the table (the build child was
// already closed at the end of Open).
func (j *HashJoin) Close() error {
	j.table = nil
	j.pending = nil
	if !j.leftOpen {
		return nil
	}
	j.leftOpen = false
	return j.Left.Close()
}

// MergeJoin is an inner equi-join over two inputs already sorted by their
// join keys — the plan the paper gets "in about 7 seconds ... about 1.6
// million alignments per second" by clustering both tables on the join
// column (Section 5.3.3, Figure 10). Duplicate keys on the right side are
// buffered per group.
type MergeJoin struct {
	LeftKeys  []expr.Expr
	RightKeys []expr.Expr
	Left      Operator
	Right     Operator

	leftRow  sqltypes.Row
	leftKey  sqltypes.Row
	leftOK   bool
	rightRow sqltypes.Row
	rightKey sqltypes.Row
	rightOK  bool
	group    []sqltypes.Row // buffered right rows with the current key
	groupKey sqltypes.Row
	groupPos int
	out      sqltypes.Row
	opened   bool
}

// Open opens both children and primes the streams. If priming fails the
// children are closed before returning, so a failed Open never leaks.
func (m *MergeJoin) Open(ctx *Context) error {
	if err := m.Left.Open(ctx); err != nil {
		return err
	}
	if err := m.Right.Open(ctx); err != nil {
		m.Left.Close()
		return err
	}
	m.opened = true
	m.group = nil
	m.groupPos = 0
	err := m.advanceLeft()
	if err == nil {
		err = m.advanceRight()
	}
	if err != nil {
		m.Close()
		return err
	}
	return nil
}

func (m *MergeJoin) advanceLeft() error {
	row, ok, err := m.Left.Next()
	if err != nil {
		return err
	}
	m.leftOK = ok
	if !ok {
		return nil
	}
	m.leftRow = row.Clone()
	m.leftKey, err = evalKeys(m.LeftKeys, row, m.leftKey)
	return err
}

func (m *MergeJoin) advanceRight() error {
	row, ok, err := m.Right.Next()
	if err != nil {
		return err
	}
	m.rightOK = ok
	if !ok {
		return nil
	}
	m.rightRow = row.Clone()
	m.rightKey, err = evalKeys(m.RightKeys, row, m.rightKey)
	return err
}

func evalKeys(keys []expr.Expr, row sqltypes.Row, dst sqltypes.Row) (sqltypes.Row, error) {
	if cap(dst) < len(keys) {
		dst = make(sqltypes.Row, len(keys))
	}
	dst = dst[:len(keys)]
	for i, e := range keys {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		dst[i] = v
	}
	return dst, nil
}

// Next produces the next joined row.
func (m *MergeJoin) Next() (sqltypes.Row, bool, error) {
	for {
		// Emit from the buffered right group.
		if m.groupPos < len(m.group) {
			right := m.group[m.groupPos]
			m.groupPos++
			return m.combine(m.leftRow, right), true, nil
		}
		// Group exhausted: advance left; if its key matches the buffered
		// group key, replay the group.
		if m.group != nil {
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			if m.leftOK && sqltypes.CompareRows(m.leftKey, m.groupKey) == 0 {
				m.groupPos = 0
				continue
			}
			m.group = nil
			m.groupPos = 0
		}
		if !m.leftOK || !m.rightOK {
			return nil, false, nil
		}
		c := sqltypes.CompareRows(m.leftKey, m.rightKey)
		switch {
		case c < 0:
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if err := m.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			if hasNullKey(m.leftKey) { // NULLs never join
				if err := m.advanceLeft(); err != nil {
					return nil, false, err
				}
				continue
			}
			// Buffer all right rows with this key.
			m.groupKey = m.rightKey.Clone()
			m.group = m.group[:0]
			for m.rightOK && sqltypes.CompareRows(m.rightKey, m.groupKey) == 0 {
				m.group = append(m.group, m.rightRow)
				if err := m.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			m.groupPos = 0
		}
	}
}

func hasNullKey(key sqltypes.Row) bool {
	for _, v := range key {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func (m *MergeJoin) combine(left, right sqltypes.Row) sqltypes.Row {
	if cap(m.out) < len(left)+len(right) {
		m.out = make(sqltypes.Row, len(left)+len(right))
	}
	m.out = m.out[:len(left)+len(right)]
	copy(m.out, left)
	copy(m.out[len(left):], right)
	return m.out
}

// Close closes both children (idempotent: a second Close is a no-op).
func (m *MergeJoin) Close() error {
	if !m.opened {
		return nil
	}
	m.opened = false
	err := m.Left.Close()
	if cerr := m.Right.Close(); err == nil {
		err = cerr
	}
	m.group = nil
	return err
}

// Apply implements CROSS APPLY: for every outer row an inner row stream is
// created by Inner (typically a table-valued function over the outer row's
// columns — the paper's PivotAlignment in Query 3). Output rows are the
// outer values followed by the inner values.
type Apply struct {
	Child Operator
	// Inner creates the per-row iterator.
	Inner func(ctx *Context, outer sqltypes.Row) (RowIterator, error)

	ctx   *Context
	outer sqltypes.Row
	inner RowIterator
	out   sqltypes.Row
}

// Open opens the outer child.
func (a *Apply) Open(ctx *Context) error {
	a.ctx = ctx
	return a.Child.Open(ctx)
}

// Next produces the next outer x inner combination.
func (a *Apply) Next() (sqltypes.Row, bool, error) {
	for {
		if a.inner != nil {
			row, ok, err := a.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				if cap(a.out) < len(a.outer)+len(row) {
					a.out = make(sqltypes.Row, len(a.outer)+len(row))
				}
				a.out = a.out[:len(a.outer)+len(row)]
				copy(a.out, a.outer)
				copy(a.out[len(a.outer):], row)
				return a.out, true, nil
			}
			if err := a.inner.Close(); err != nil {
				return nil, false, err
			}
			a.inner = nil
		}
		row, ok, err := a.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		a.outer = row.Clone()
		inner, err := a.Inner(a.ctx, a.outer)
		if err != nil {
			return nil, false, err
		}
		a.inner = inner
	}
}

// Close closes any open inner iterator and the outer child.
func (a *Apply) Close() error {
	if a.inner != nil {
		a.inner.Close()
		a.inner = nil
	}
	return a.Child.Close()
}
