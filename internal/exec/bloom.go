package exec

// BlockedBloom is a cache-line-blocked Bloom filter over 64-bit key
// hashes: each key maps to one 64-byte block (8 uint64 words) and sets 8
// bits inside it, so a membership test touches a single cache line. The
// partitioned hash join builds one over its build-side keys and probes it
// before routing probe rows, dropping rows with no possible match before
// they are partitioned or spilled.
//
// Add is single-writer (the build drain is one goroutine); MayContain is
// safe for concurrent readers once building is done.
type BlockedBloom struct {
	blocks []bloomBlock
	mask   uint64
}

type bloomBlock [8]uint64

// bloomBitsPerKey sizes the filter: 16 bits/key with 8 probe bits keeps
// the false-positive rate well under 1%.
const bloomBitsPerKey = 16

// bloomMaxBytes caps the filter allocation: the filter is built eagerly
// at Open, outside the join memory budget, and the build-side estimate
// may be huge (or a wild guess when no ANALYZE ran). 8 MB covers ~4M
// keys at full precision; past that the false-positive rate degrades
// gracefully rather than the allocation growing without bound.
const bloomMaxBytes = 8 << 20

// NewBlockedBloom returns a filter sized for the expected number of
// distinct keys (minimum 1 KB, maximum bloomMaxBytes, always a
// power-of-two block count).
func NewBlockedBloom(expectedKeys int64) *BlockedBloom {
	bits := expectedKeys * bloomBitsPerKey
	if bits < 8192 {
		bits = 8192
	}
	if bits > bloomMaxBytes*8 {
		bits = bloomMaxBytes * 8
	}
	nblocks := uint64(1)
	for nblocks*512 < uint64(bits) {
		nblocks <<= 1
	}
	return &BlockedBloom{blocks: make([]bloomBlock, nblocks), mask: nblocks - 1}
}

// blockBits derives the block index and the 8 in-block bit masks from one
// 64-bit hash: the high bits pick the block, and eight 6-bit slices of a
// remixed hash pick one bit in each word.
func (b *BlockedBloom) blockBits(h uint64) (uint64, [8]uint64) {
	idx := (h >> 32) & b.mask
	// Remix so the bit pattern is independent of the block index bits.
	x := h * 0x9E3779B97F4A7C15
	var bits [8]uint64
	for i := range bits {
		bits[i] = 1 << (x & 63)
		x >>= 6
	}
	return idx, bits
}

// Add inserts a key hash.
func (b *BlockedBloom) Add(h uint64) {
	idx, bits := b.blockBits(h)
	blk := &b.blocks[idx]
	for i, bit := range bits {
		blk[i] |= bit
	}
}

// MayContain reports whether the key hash may have been added (false
// means definitely absent).
func (b *BlockedBloom) MayContain(h uint64) bool {
	idx, bits := b.blockBits(h)
	blk := &b.blocks[idx]
	for i, bit := range bits {
		if blk[i]&bit == 0 {
			return false
		}
	}
	return true
}
