package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// SpillFile is a temp row file used by joins whose build side exceeds the
// memory budget. Implemented by package storage (paged temp files read
// through the buffer pool); exec only sees this contract so the operator
// layer stays storage-agnostic. Append must be safe for concurrent use.
type SpillFile interface {
	Append(row sqltypes.Row) error
	Rows() int64
	Bytes() int64
	Iter() (RowIterator, error)
	Release() error
}

// SpillStore creates spill files; provided to the planner by the engine.
type SpillStore interface {
	Create() (SpillFile, error)
}

// JoinStats accumulates partitioned-join counters across queries. All
// fields are atomics: parallel probe workers update them concurrently and
// monitoring can snapshot mid-query.
type JoinStats struct {
	BuildRows         atomic.Int64 // rows routed on the build side
	ProbeRows         atomic.Int64 // rows routed on the probe side
	SpilledPartitions atomic.Int64 // partitions that exceeded the budget
	SpilledBuildRows  atomic.Int64 // build rows written to spill files
	SpilledProbeRows  atomic.Int64 // probe rows written to spill files
	SpillRecursions   atomic.Int64 // spilled partitions re-joined from disk
	BloomChecks       atomic.Int64 // probe rows tested against a build Bloom filter
	BloomDrops        atomic.Int64 // probe rows dropped by the Bloom filter
	// BloomDropsByPart resolves the drops per hash partition (the filter
	// runs below the exchange, so these show which partitions the early
	// drops spared — spilled partitions in particular). Joins widened past
	// DefaultJoinPartitions fold counts modulo the array size.
	BloomDropsByPart [DefaultJoinPartitions]atomic.Int64
}

// JoinStatsSnapshot is a point-in-time copy of JoinStats.
type JoinStatsSnapshot struct {
	BuildRows         int64
	ProbeRows         int64
	SpilledPartitions int64
	SpilledBuildRows  int64
	SpilledProbeRows  int64
	SpillRecursions   int64
	BloomChecks       int64
	BloomDrops        int64
	BloomDropsByPart  [DefaultJoinPartitions]int64
}

// Snapshot reads the counters; safe to call during queries.
func (s *JoinStats) Snapshot() JoinStatsSnapshot {
	out := JoinStatsSnapshot{
		BuildRows:         s.BuildRows.Load(),
		ProbeRows:         s.ProbeRows.Load(),
		SpilledPartitions: s.SpilledPartitions.Load(),
		SpilledBuildRows:  s.SpilledBuildRows.Load(),
		SpilledProbeRows:  s.SpilledProbeRows.Load(),
		SpillRecursions:   s.SpillRecursions.Load(),
		BloomChecks:       s.BloomChecks.Load(),
		BloomDrops:        s.BloomDrops.Load(),
	}
	for i := range s.BloomDropsByPart {
		out.BloomDropsByPart[i] = s.BloomDropsByPart[i].Load()
	}
	return out
}

// Sub returns the counter deltas since an earlier snapshot.
func (s JoinStatsSnapshot) Sub(earlier JoinStatsSnapshot) JoinStatsSnapshot {
	out := JoinStatsSnapshot{
		BuildRows:         s.BuildRows - earlier.BuildRows,
		ProbeRows:         s.ProbeRows - earlier.ProbeRows,
		SpilledPartitions: s.SpilledPartitions - earlier.SpilledPartitions,
		SpilledBuildRows:  s.SpilledBuildRows - earlier.SpilledBuildRows,
		SpilledProbeRows:  s.SpilledProbeRows - earlier.SpilledProbeRows,
		SpillRecursions:   s.SpillRecursions - earlier.SpillRecursions,
		BloomChecks:       s.BloomChecks - earlier.BloomChecks,
		BloomDrops:        s.BloomDrops - earlier.BloomDrops,
	}
	for i := range s.BloomDropsByPart {
		out.BloomDropsByPart[i] = s.BloomDropsByPart[i] - earlier.BloomDropsByPart[i]
	}
	return out
}

// DefaultJoinPartitions is the fan-out when the caller does not set one
// (the planner's default aliases this, so plans and operators agree).
const DefaultJoinPartitions = 32

// maxSpillDepth bounds recursion: a partition that still exceeds the
// budget after this many re-partitionings (e.g. one giant duplicate key,
// which no hash can subdivide) is built fully in memory.
const maxSpillDepth = 4

// PartitionedHashJoin is a Grace-style parallel partitioned hash join:
// both sides hash-partition on their equi-join keys, DOP workers build the
// partition hash tables concurrently (each worker owns disjoint
// partitions, so there is no shared-map locking), and probe streams match
// against their partition's table through a Gather exchange. When the
// in-memory build rows exceed MemoryBudget, whole partitions spill both
// sides to temp files from Spill and are re-joined per partition after the
// in-memory probe finishes — converting the dominant genomics query shape
// (reads ⋈ alignments) from serial and memory-bound to parallel and
// out-of-core.
type PartitionedHashJoin struct {
	LeftKeys  []expr.Expr
	RightKeys []expr.Expr
	// Left and Right are the single-stream inputs. When the planner has
	// partitioned chains (parallel scans) it sets LeftParts/RightParts
	// instead and Left/Right may be nil.
	Left, Right           Operator
	LeftParts, RightParts []Operator
	// BuildLeft selects the left side as the build (hashed) side; the
	// planner picks the smaller estimated input. Output rows are always
	// the left row's values followed by the right row's.
	BuildLeft bool
	// Partitions is the hash fan-out P (default 32).
	Partitions int
	// MemoryBudget caps the bytes of build rows held in memory; 0 means
	// unlimited. Exceeding it spills partitions through Spill.
	MemoryBudget int64
	// Spill creates temp files for spilled partitions. Required only when
	// MemoryBudget can be exceeded.
	Spill SpillStore
	// Level is the recursion depth (seeds the partition hash so re-spilled
	// rows redistribute); zero for planner-built joins.
	Level int
	// Bloom builds a blocked Bloom filter over the build-side keys during
	// partitioning and drops probe rows with no possible match before they
	// are routed — and in particular before they are spilled. The planner
	// disables it when statistics say nearly every probe row matches.
	Bloom bool
	// BuildRowsEstimate sizes the Bloom filter (the planner's post-filter
	// build-side cardinality estimate; 0 uses a default size).
	BuildRowsEstimate int64
	// PrePartition marks the first N partitions as spilled before the
	// build side is drained: when statistics already say the build side
	// exceeds MemoryBudget, routing those rows straight to disk avoids
	// buffering them and evicting mid-build. Requires Spill.
	PrePartition int

	ctx        *Context
	stats      *JoinStats
	prof       *obs.OpProfile
	bloom      *BlockedBloom
	tables     []map[string][]sqltypes.Row
	spilled    []bool
	buildSpill []SpillFile
	probeSpill []SpillFile
	gather     *Gather
	gatherDone bool
	sub        *PartitionedHashJoin
	subBuild   SpillFile
	subProbe   SpillFile
	subIdx     int
	opened     bool
}

// buildInputs returns the build-side chains and key expressions.
func (j *PartitionedHashJoin) buildInputs() ([]Operator, []expr.Expr) {
	if j.BuildLeft {
		if len(j.LeftParts) > 0 {
			return j.LeftParts, j.LeftKeys
		}
		return []Operator{j.Left}, j.LeftKeys
	}
	if len(j.RightParts) > 0 {
		return j.RightParts, j.RightKeys
	}
	return []Operator{j.Right}, j.RightKeys
}

// probeInputs returns the probe-side chains and key expressions.
func (j *PartitionedHashJoin) probeInputs() ([]Operator, []expr.Expr) {
	if j.BuildLeft {
		if len(j.RightParts) > 0 {
			return j.RightParts, j.RightKeys
		}
		return []Operator{j.Right}, j.RightKeys
	}
	if len(j.LeftParts) > 0 {
		return j.LeftParts, j.LeftKeys
	}
	return []Operator{j.Left}, j.LeftKeys
}

// appendJoinKey evaluates the join-key expressions over row (into the
// reusable keyVals scratch) and appends the comparable key encoding to
// dst[:0]. null reports a NULL key, which never joins. Build routing,
// probe routing and the serial hash join all share this, so the two sides
// of a join can never disagree on key encoding or NULL semantics.
func appendJoinKey(dst []byte, keys []expr.Expr, keyVals sqltypes.Row, row sqltypes.Row) (enc []byte, null bool, err error) {
	for i, e := range keys {
		v, err := e.Eval(row)
		if err != nil {
			return dst, false, err
		}
		if v.IsNull() {
			return dst, true, nil
		}
		keyVals[i] = v
	}
	enc, err = appendGroupKey(dst[:0], keyVals)
	return enc, false, err
}

// bloomKeyHash hashes a key encoding for the Bloom filter. It must be
// independent of partitionHash (the filter's bit choices must not
// correlate with partition routing), so it salts the FNV offset basis
// with a constant outside the recursion-level range.
func bloomKeyHash(key []byte) uint64 {
	h := uint64(14695981039346656037) ^ 0xB10F_B10F_B10F_B10F
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// partitionHash distributes a key encoding onto partitions; level seeds
// the hash so recursive re-partitioning shuffles the rows that collided at
// the previous level (FNV-1a with a level-salted offset basis).
func partitionHash(key []byte, level int) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(level)+1)*0x9E3779B97F4A7C15
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// rowMemBytes approximates the retained size of a buffered row.
func rowMemBytes(row sqltypes.Row) int64 {
	n := int64(len(row)) * 48 // Value header
	for _, v := range row {
		n += int64(len(v.S)) + int64(len(v.B))
	}
	return n + 24 // slice header
}

// Open partitions the build side (spilling over-budget partitions),
// builds the in-memory partition tables with DOP workers, and starts the
// parallel probe.
func (j *PartitionedHashJoin) Open(ctx *Context) error {
	j.ctx = ctx
	j.stats = &statsFrom(ctx).Join
	j.prof = profFrom(ctx)
	p := j.Partitions
	if p < 1 {
		p = DefaultJoinPartitions
	}
	j.tables = make([]map[string][]sqltypes.Row, p)
	j.spilled = make([]bool, p)
	j.buildSpill = make([]SpillFile, p)
	j.probeSpill = make([]SpillFile, p)
	j.gather = nil
	j.gatherDone = false
	j.sub, j.subBuild, j.subProbe = nil, nil, nil
	j.subIdx = 0
	j.opened = true
	j.bloom = nil
	if j.Bloom {
		est := j.BuildRowsEstimate
		if est <= 0 {
			est = 1 << 16
		}
		j.bloom = NewBlockedBloom(est)
	}
	if j.PrePartition > 0 && j.Spill != nil {
		n := j.PrePartition
		if n > p {
			n = p
		}
		for i := 0; i < n; i++ {
			f, err := j.Spill.Create()
			if err != nil {
				j.releaseSpills()
				return err
			}
			j.buildSpill[i] = f
			j.spilled[i] = true
			j.stats.SpilledPartitions.Add(1)
			j.prof.AddSpill(0, 1, 0)
		}
	}

	partRows, partKeys, err := j.partitionBuildSide(ctx, p)
	if err != nil {
		j.releaseSpills()
		return err
	}
	if err := j.buildTables(ctx, partRows, partKeys); err != nil {
		j.releaseSpills()
		return err
	}
	// Spilled build partitions need their probe rows captured too.
	for i, sp := range j.spilled {
		if !sp {
			continue
		}
		f, err := j.Spill.Create()
		if err != nil {
			j.releaseSpills()
			return err
		}
		j.probeSpill[i] = f
	}
	probeChains, probeKeys := j.probeInputs()
	workers := make([]Operator, len(probeChains))
	for i, ch := range probeChains {
		workers[i] = &phjProbe{j: j, child: ch, keys: probeKeys}
	}
	j.gather = &Gather{Children: workers}
	return j.gather.Open(ctx)
}

// partitionBuildSide drains the build input (through an unordered Gather
// when the planner supplied parallel chains, so the scan itself overlaps
// I/O) and routes each row to its partition, spilling the largest
// partitions whenever the buffered bytes exceed the budget.
func (j *PartitionedHashJoin) partitionBuildSide(ctx *Context, p int) ([][]sqltypes.Row, [][]string, error) {
	chains, keys := j.buildInputs()
	var next func() (sqltypes.Row, bool, error)
	var closeInput func() error
	needClone := true
	if len(chains) == 1 {
		ch := chains[0]
		if err := ch.Open(ctx); err != nil {
			return nil, nil, err
		}
		next, closeInput = ch.Next, ch.Close
	} else {
		g := &Gather{Children: chains}
		if err := g.Open(ctx); err != nil {
			return nil, nil, err
		}
		next, closeInput = g.Next, g.Close
		needClone = false // gather already clones into fresh rows
	}

	partRows := make([][]sqltypes.Row, p)
	partKeys := make([][]string, p)
	partBytes := make([]int64, p)
	var memBytes int64
	keyVals := make(sqltypes.Row, len(keys))
	var keyBuf []byte
	fail := func(err error) ([][]sqltypes.Row, [][]string, error) {
		closeInput()
		return nil, nil, err
	}
	for {
		row, ok, err := next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		var null bool
		keyBuf, null, err = appendJoinKey(keyBuf, keys, keyVals, row)
		if err != nil {
			return fail(err)
		}
		if null {
			continue
		}
		j.stats.BuildRows.Add(1)
		if j.bloom != nil {
			j.bloom.Add(bloomKeyHash(keyBuf))
		}
		pt := int(partitionHash(keyBuf, j.Level) % uint64(p))
		if j.spilled[pt] {
			if err := j.buildSpill[pt].Append(row); err != nil {
				return fail(err)
			}
			j.stats.SpilledBuildRows.Add(1)
			j.prof.AddSpill(0, 0, 1)
			continue
		}
		if needClone {
			row = row.Clone()
		}
		partRows[pt] = append(partRows[pt], row)
		partKeys[pt] = append(partKeys[pt], string(keyBuf))
		sz := rowMemBytes(row) + int64(len(keyBuf))
		partBytes[pt] += sz
		memBytes += sz
		for j.MemoryBudget > 0 && memBytes > j.MemoryBudget {
			victim := -1
			for i := range partBytes {
				if !j.spilled[i] && len(partRows[i]) > 0 &&
					(victim < 0 || partBytes[i] > partBytes[victim]) {
					victim = i
				}
			}
			if victim < 0 {
				break // nothing left to evict
			}
			if j.Spill == nil {
				return fail(fmt.Errorf("exec: join memory budget %d exceeded and no spill store configured", j.MemoryBudget))
			}
			f, err := j.Spill.Create()
			if err != nil {
				return fail(err)
			}
			for _, r := range partRows[victim] {
				if err := f.Append(r); err != nil {
					f.Release()
					return fail(err)
				}
			}
			j.stats.SpilledPartitions.Add(1)
			j.stats.SpilledBuildRows.Add(int64(len(partRows[victim])))
			j.prof.AddSpill(0, 1, int64(len(partRows[victim])))
			j.buildSpill[victim] = f
			j.spilled[victim] = true
			memBytes -= partBytes[victim]
			partBytes[victim] = 0
			partRows[victim] = nil
			partKeys[victim] = nil
		}
	}
	if err := closeInput(); err != nil {
		return nil, nil, err
	}
	return partRows, partKeys, nil
}

// buildTables constructs the in-memory partition hash tables with up to
// DOP workers; worker w owns partitions w, w+DOP, ... so no table is
// shared between goroutines.
func (j *PartitionedHashJoin) buildTables(ctx *Context, partRows [][]sqltypes.Row, partKeys [][]string) error {
	p := len(partRows)
	workers := ctx.DOP
	if workers < 1 {
		workers = 1
	}
	if workers > p {
		workers = p
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < p; i += workers {
				if j.spilled[i] || len(partRows[i]) == 0 {
					continue
				}
				m := make(map[string][]sqltypes.Row, len(partRows[i]))
				for r, row := range partRows[i] {
					k := partKeys[i][r]
					m[k] = append(m[k], row)
				}
				j.tables[i] = m
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// Next returns joined rows: first the streamed in-memory matches from the
// probe gather, then — once every probe worker has finished routing — the
// recursive joins of the spilled partitions, one partition at a time.
func (j *PartitionedHashJoin) Next() (sqltypes.Row, bool, error) {
	for {
		if !j.gatherDone {
			row, ok, err := j.gather.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return row, true, nil
			}
			j.gatherDone = true
			if err := j.gather.Close(); err != nil {
				return nil, false, err
			}
			j.gather = nil
			// The in-memory tables are dead weight from here on: the
			// spilled-partition recursion re-reads both sides from disk,
			// and each recursion level builds its own budget-sized tables.
			// Freeing them keeps resident build memory near one budget
			// instead of one per recursion level.
			j.tables = nil
		}
		if j.sub != nil {
			row, ok, err := j.sub.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return row, true, nil
			}
			if err := j.finishSub(); err != nil {
				return nil, false, err
			}
			continue
		}
		started, err := j.startNextSpilled()
		if err != nil {
			return nil, false, err
		}
		if !started {
			return nil, false, nil
		}
	}
}

// startNextSpilled opens the recursive join over the next non-empty
// spilled partition; returns false when none remain.
func (j *PartitionedHashJoin) startNextSpilled() (bool, error) {
	for j.subIdx < len(j.spilled) {
		i := j.subIdx
		j.subIdx++
		if !j.spilled[i] {
			continue
		}
		bf, pf := j.buildSpill[i], j.probeSpill[i]
		j.buildSpill[i], j.probeSpill[i] = nil, nil
		// Spill volume is accounted when the partition's files retire:
		// every spilled partition passes through here exactly once (error
		// paths release without retiring, and never produce a profile).
		j.prof.AddSpill(bf.Bytes()+pf.Bytes(), 0, 0)
		if bf.Rows() == 0 || pf.Rows() == 0 {
			bf.Release()
			pf.Release()
			continue
		}
		j.stats.SpillRecursions.Add(1)
		buildSrc := spillSource(bf)
		probeSrc := spillSource(pf)
		sub := &PartitionedHashJoin{
			LeftKeys:   j.LeftKeys,
			RightKeys:  j.RightKeys,
			BuildLeft:  j.BuildLeft,
			Partitions: j.Partitions,
			Spill:      j.Spill,
			Level:      j.Level + 1,
		}
		// Past maxSpillDepth the partition cannot be subdivided further
		// (all rows share a key); build it in memory regardless of budget.
		if j.Level+1 < maxSpillDepth {
			sub.MemoryBudget = j.MemoryBudget
		}
		if j.BuildLeft {
			sub.Left, sub.Right = buildSrc, probeSrc
		} else {
			sub.Left, sub.Right = probeSrc, buildSrc
		}
		if err := sub.Open(j.ctx); err != nil {
			bf.Release()
			pf.Release()
			return false, err
		}
		j.sub, j.subBuild, j.subProbe = sub, bf, pf
		return true, nil
	}
	return false, nil
}

// finishSub closes the current recursive join and frees its spill files.
func (j *PartitionedHashJoin) finishSub() error {
	err := j.sub.Close()
	if rerr := j.subBuild.Release(); err == nil {
		err = rerr
	}
	if rerr := j.subProbe.Release(); err == nil {
		err = rerr
	}
	j.sub, j.subBuild, j.subProbe = nil, nil, nil
	return err
}

// spillSource adapts a spill file into a re-openable scan operator.
func spillSource(f SpillFile) *Source {
	return &Source{
		Label: "Spill Scan",
		Factory: func(*Context) (RowIterator, error) {
			return f.Iter()
		},
	}
}

// releaseSpills frees every live spill file (error paths and Close).
func (j *PartitionedHashJoin) releaseSpills() {
	for i := range j.buildSpill {
		if j.buildSpill[i] != nil {
			j.buildSpill[i].Release()
			j.buildSpill[i] = nil
		}
		if j.probeSpill[i] != nil {
			j.probeSpill[i].Release()
			j.probeSpill[i] = nil
		}
	}
}

// Close stops the probe, releases spill files and frees the tables.
func (j *PartitionedHashJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	var err error
	if j.gather != nil {
		err = j.gather.Close()
		j.gather = nil
	}
	if j.sub != nil {
		if serr := j.finishSub(); err == nil {
			err = serr
		}
	}
	j.releaseSpills()
	j.tables = nil
	j.bloom = nil
	return err
}

// phjProbe is one probe worker: it streams its chain, matches rows whose
// partition is in memory (the tables are read-only by now, so lookups are
// lock-free) and routes rows of spilled partitions to the partition's
// probe file (SpillFile.Append is concurrency-safe).
type phjProbe struct {
	j     *PartitionedHashJoin
	child Operator
	keys  []expr.Expr

	pending []sqltypes.Row
	current sqltypes.Row
	keyVals sqltypes.Row
	keyBuf  []byte
	out     sqltypes.Row
}

// Open opens the worker's probe chain.
func (w *phjProbe) Open(ctx *Context) error {
	w.keyVals = make(sqltypes.Row, len(w.keys))
	w.pending, w.current = nil, nil
	return w.child.Open(ctx)
}

// Next produces the worker's next matched row.
func (w *phjProbe) Next() (sqltypes.Row, bool, error) {
	j := w.j
	p := len(j.spilled)
	for {
		if len(w.pending) > 0 {
			build := w.pending[0]
			w.pending = w.pending[1:]
			return w.combine(w.current, build), true, nil
		}
		row, ok, err := w.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var null bool
		w.keyBuf, null, err = appendJoinKey(w.keyBuf, w.keys, w.keyVals, row)
		if err != nil {
			return nil, false, err
		}
		if null {
			continue
		}
		j.stats.ProbeRows.Add(1)
		// The Bloom check runs before any routing: a dropped row is never
		// partitioned and — the expensive case — never spilled. Dropped
		// rows still attribute to the partition they would have routed to,
		// so monitoring can see which partitions the filter spared.
		if j.bloom != nil {
			j.stats.BloomChecks.Add(1)
			j.prof.AddBloom(1, 0)
			if !j.bloom.MayContain(bloomKeyHash(w.keyBuf)) {
				j.stats.BloomDrops.Add(1)
				j.prof.AddBloom(0, 1)
				pt := int(partitionHash(w.keyBuf, j.Level) % uint64(p))
				j.stats.BloomDropsByPart[pt%DefaultJoinPartitions].Add(1)
				continue
			}
		}
		pt := int(partitionHash(w.keyBuf, j.Level) % uint64(p))
		if j.spilled[pt] {
			if err := j.probeSpill[pt].Append(row); err != nil {
				return nil, false, err
			}
			j.stats.SpilledProbeRows.Add(1)
			j.prof.AddSpill(0, 0, 1)
			continue
		}
		tab := j.tables[pt]
		if tab == nil {
			continue
		}
		matches := tab[string(w.keyBuf)]
		if len(matches) == 0 {
			continue
		}
		w.current = row.Clone()
		w.pending = matches
	}
}

// combine renders probe+build in left-then-right output order.
func (w *phjProbe) combine(probe, build sqltypes.Row) sqltypes.Row {
	left, right := probe, build
	if w.j.BuildLeft {
		left, right = build, probe
	}
	if cap(w.out) < len(left)+len(right) {
		w.out = make(sqltypes.Row, len(left)+len(right))
	}
	w.out = w.out[:len(left)+len(right)]
	copy(w.out, left)
	copy(w.out[len(left):], right)
	return w.out
}

// Close closes the probe chain.
func (w *phjProbe) Close() error { return w.child.Close() }
