package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// storageSpillStore adapts storage's spill manager to the exec interface
// (the same shape core uses in production).
type storageSpillStore struct{ m *storage.SpillManager }

type storageSpillFile struct{ *storage.SpillFile }

func (s storageSpillStore) Create() (SpillFile, error) {
	f, err := s.m.Create()
	if err != nil {
		return nil, err
	}
	return storageSpillFile{f}, nil
}

func (f storageSpillFile) Iter() (RowIterator, error) { return f.NewIterator(), nil }

// CreateRun, SealRun and IterRun mirror core's production adapter so the
// exec tests exercise the sequential run path and multi-run files.
func (s storageSpillStore) CreateRun() (SpillFile, error) {
	f, err := s.m.CreateRun()
	if err != nil {
		return nil, err
	}
	return storageSpillFile{f}, nil
}

func (f storageSpillFile) SealRun() (RunSpan, error) {
	start, end, rows, bytes, err := f.SpillFile.SealRun()
	return RunSpan{Start: start, End: end, Rows: rows, Bytes: bytes}, err
}

func (f storageSpillFile) IterRun(span RunSpan) (RowIterator, error) {
	return f.NewRunIterator(span.Start, span.End, span.Rows), nil
}

func newTestSpillStore(t testing.TB) SpillStore {
	t.Helper()
	return storageSpillStore{storage.NewSpillManager(t.TempDir(), storage.NewBufferPool(64))}
}

// nestedLoopJoin is the trivially-correct reference: every left row against
// every right row, SQL NULL semantics on the keys.
func nestedLoopJoin(t *testing.T, left, right []sqltypes.Row, lk, rk []expr.Expr) []sqltypes.Row {
	t.Helper()
	evalKey := func(keys []expr.Expr, row sqltypes.Row) (sqltypes.Row, bool) {
		out := make(sqltypes.Row, len(keys))
		for i, e := range keys {
			v, err := e.Eval(row)
			if err != nil {
				t.Fatal(err)
			}
			if v.IsNull() {
				return nil, false
			}
			out[i] = v
		}
		return out, true
	}
	var out []sqltypes.Row
	for _, l := range left {
		lkey, ok := evalKey(lk, l)
		if !ok {
			continue
		}
		for _, r := range right {
			rkey, ok := evalKey(rk, r)
			if !ok {
				continue
			}
			if sqltypes.CompareRows(lkey, rkey) != 0 {
				continue
			}
			combined := append(append(sqltypes.Row{}, l...), r...)
			out = append(out, combined)
		}
	}
	return out
}

func canonRows(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// splitRows deals rows into n chains round-robin.
func splitRows(rows []sqltypes.Row, n int) []Operator {
	parts := make([][]sqltypes.Row, n)
	for i, r := range rows {
		parts[i%n] = append(parts[i%n], r)
	}
	ops := make([]Operator, n)
	for i := range ops {
		ops[i] = NewValues(parts[i])
	}
	return ops
}

func randomJoinInput(rng *rand.Rand, n, keySpace int, side string) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		var key sqltypes.Value
		switch rng.Intn(10) {
		case 0:
			key = sqltypes.Null // NULL keys never join
		case 1:
			key = sqltypes.NewString(fmt.Sprintf("k%d", rng.Intn(keySpace)))
		default:
			key = i64(int64(rng.Intn(keySpace)))
		}
		rows[i] = sqltypes.Row{key, str(fmt.Sprintf("%s%d", side, i))}
	}
	return rows
}

// TestPartitionedJoinEquivalence fuzzes the partitioned join against the
// nested-loop reference: duplicate keys, NULL keys, mixed key kinds, with
// and without forced spill, serial and DOP-4 partitioned inputs.
func TestPartitionedJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	configs := []struct {
		name   string
		budget int64
		parts  int
		dop    int
		chains int
	}{
		{"inmem-serial", 0, 8, 1, 1},
		{"inmem-dop4", 0, 8, 4, 4},
		{"spill-serial", 4 << 10, 4, 1, 1},
		{"spill-dop4", 4 << 10, 4, 4, 4},
		{"spill-tiny-budget", 1, 4, 4, 4}, // every partition spills
	}
	for trial := 0; trial < 4; trial++ {
		nl := 100 + rng.Intn(400)
		nr := 100 + rng.Intn(400)
		keySpace := 1 + rng.Intn(60) // heavy duplication
		left := randomJoinInput(rng, nl, keySpace, "l")
		right := randomJoinInput(rng, nr, keySpace, "r")
		lk := []expr.Expr{col(0)}
		rk := []expr.Expr{col(0)}
		want := canonRows(nestedLoopJoin(t, left, right, lk, rk))
		for _, cfg := range configs {
			for _, buildLeft := range []bool{false, true} {
				name := fmt.Sprintf("trial%d/%s/buildLeft=%v", trial, cfg.name, buildLeft)
				stats := &ExecStats{}
				j := &PartitionedHashJoin{
					LeftKeys: lk, RightKeys: rk,
					BuildLeft:    buildLeft,
					Partitions:   cfg.parts,
					MemoryBudget: cfg.budget,
					Spill:        newTestSpillStore(t),
				}
				if cfg.chains > 1 {
					j.LeftParts = splitRows(left, cfg.chains)
					j.RightParts = splitRows(right, cfg.chains)
				} else {
					j.Left = NewValues(left)
					j.Right = NewValues(right)
				}
				rows, err := Run(&Context{DOP: cfg.dop, Stats: stats}, j)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := canonRows(rows)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %d rows, reference %d rows", name, len(got), len(want))
				}
				if cfg.budget > 0 && cfg.budget < 1024 && stats.Join.SpilledPartitions.Load() == 0 && len(left) > 0 {
					t.Errorf("%s: tiny budget but nothing spilled", name)
				}
			}
		}
	}
}

// TestPartitionedJoinSpillMatchesInMemory is the acceptance check: a join
// whose build side exceeds the budget completes, spills, and returns
// exactly the in-memory result.
func TestPartitionedJoinSpillMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var left, right []sqltypes.Row
	for i := 0; i < 4000; i++ {
		left = append(left, sqltypes.Row{i64(int64(rng.Intn(500))), str(fmt.Sprintf("payload-left-%d", i))})
	}
	for i := 0; i < 3000; i++ {
		right = append(right, sqltypes.Row{i64(int64(rng.Intn(500))), str(fmt.Sprintf("payload-right-%d", i))})
	}
	runJoin := func(budget int64, stats *ExecStats) []string {
		j := &PartitionedHashJoin{
			LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
			LeftParts: splitRows(left, 4), RightParts: splitRows(right, 4),
			Partitions: 8, MemoryBudget: budget, Spill: newTestSpillStore(t),
		}
		rows, err := Run(&Context{DOP: 4, Stats: stats}, j)
		if err != nil {
			t.Fatal(err)
		}
		return canonRows(rows)
	}
	inMem := runJoin(0, &ExecStats{})
	spillStats := &ExecStats{}
	spilled := runJoin(16<<10, spillStats) // ~16 KB budget << build side
	if spillStats.Join.SpilledPartitions.Load() == 0 {
		t.Fatal("expected spilled partitions with a 16 KB budget")
	}
	if spillStats.Join.SpilledBuildRows.Load() == 0 || spillStats.Join.SpilledProbeRows.Load() == 0 {
		t.Fatalf("expected spilled rows on both sides, got %+v", spillStats.Join.Snapshot())
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatalf("spilled join differs from in-memory: %d vs %d rows", len(spilled), len(inMem))
	}
}

// TestPartitionedJoinBudgetWithoutStore verifies the operator fails
// cleanly (rather than OOMing or hanging) when a budget is set but no
// spill store was configured.
func TestPartitionedJoinBudgetWithoutStore(t *testing.T) {
	var rows []sqltypes.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, sqltypes.Row{i64(int64(i)), str("x")})
	}
	j := &PartitionedHashJoin{
		LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
		Left: NewValues(rows), Right: NewValues(rows),
		Partitions: 4, MemoryBudget: 64,
	}
	if _, err := Run(&Context{DOP: 2}, j); err == nil {
		t.Fatal("expected budget-without-spill-store error")
	}
}

// --- Open/Close pairing audit ---

// trackedOp wraps an operator, counting opens/closes and optionally
// failing on demand.
type trackedOp struct {
	inner    Operator
	openErr  error
	nextErr  error
	failAt   int // fail Next after this many rows when nextErr set
	mu       sync.Mutex
	opens    int
	closes   int
	returned int
}

func (o *trackedOp) Open(ctx *Context) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.openErr != nil {
		return o.openErr
	}
	o.opens++
	return o.inner.Open(ctx)
}

func (o *trackedOp) Next() (sqltypes.Row, bool, error) {
	o.mu.Lock()
	if o.nextErr != nil && o.returned >= o.failAt {
		err := o.nextErr
		o.mu.Unlock()
		return nil, false, err
	}
	o.returned++
	o.mu.Unlock()
	return o.inner.Next()
}

func (o *trackedOp) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.closes++
	return o.inner.Close()
}

func (o *trackedOp) balanced() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.opens == o.closes
}

func someRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{i64(int64(i % 7)), str(fmt.Sprintf("v%d", i))}
	}
	return rows
}

// TestOperatorsCloseChildrenOnError audits that every child an operator
// opens is closed again, on happy paths and on error paths (a failed Open
// must not leak children the operator itself opened).
func TestOperatorsCloseChildrenOnError(t *testing.T) {
	boom := fmt.Errorf("boom")
	cases := []struct {
		name  string
		build func(l, r *trackedOp) Operator
	}{
		{"HashJoin", func(l, r *trackedOp) Operator {
			return &HashJoin{LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)}, Left: l, Right: r}
		}},
		{"MergeJoin", func(l, r *trackedOp) Operator {
			return &MergeJoin{LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)}, Left: l, Right: r}
		}},
		{"PartitionedHashJoin", func(l, r *trackedOp) Operator {
			return &PartitionedHashJoin{
				LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
				Left: l, Right: r, Partitions: 4, Spill: newTestSpillStore(t),
			}
		}},
	}
	scenarios := []struct {
		name string
		mut  func(l, r *trackedOp)
	}{
		{"happy", func(l, r *trackedOp) {}},
		{"left-open-fails", func(l, r *trackedOp) { l.openErr = boom }},
		{"right-open-fails", func(l, r *trackedOp) { r.openErr = boom }},
		{"left-next-fails", func(l, r *trackedOp) { l.nextErr = boom; l.failAt = 3 }},
		{"right-next-fails", func(l, r *trackedOp) { r.nextErr = boom; r.failAt = 3 }},
		{"both-next-fail-immediately", func(l, r *trackedOp) { l.nextErr = boom; r.nextErr = boom }},
	}
	for _, c := range cases {
		for _, sc := range scenarios {
			t.Run(c.name+"/"+sc.name, func(t *testing.T) {
				l := &trackedOp{inner: NewValues(someRows(50))}
				r := &trackedOp{inner: NewValues(someRows(60))}
				sc.mut(l, r)
				op := c.build(l, r)
				if err := op.Open(&Context{DOP: 2}); err == nil {
					_, drainErr := Drain(op)
					if cerr := op.Close(); cerr != nil && drainErr == nil {
						drainErr = cerr
					}
					_ = drainErr
				}
				if !l.balanced() {
					t.Errorf("left child opens=%d closes=%d", l.opens, l.closes)
				}
				if !r.balanced() {
					t.Errorf("right child opens=%d closes=%d", r.opens, r.closes)
				}
			})
		}
	}
}
