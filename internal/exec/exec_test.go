package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

func i64(v int64) sqltypes.Value     { return sqltypes.NewInt(v) }
func str(s string) sqltypes.Value    { return sqltypes.NewString(s) }
func lit(v sqltypes.Value) expr.Expr { return &expr.Lit{V: v} }
func col(i int) expr.Expr            { return &expr.Col{Idx: i} }

func rowsOf(vals ...[]sqltypes.Value) []sqltypes.Row {
	out := make([]sqltypes.Row, len(vals))
	for i, v := range vals {
		out[i] = sqltypes.Row(v)
	}
	return out
}

func run(t *testing.T, op Operator) []sqltypes.Row {
	t.Helper()
	rows, err := Run(&Context{DOP: 2}, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestValuesFilterProject(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{i64(1), str("a")},
		[]sqltypes.Value{i64(2), str("b")},
		[]sqltypes.Value{i64(3), str("c")},
	))
	op := &Project{
		Exprs: []expr.Expr{col(1), &expr.Arith{Op: expr.OpMul, L: col(0), R: lit(i64(10))}},
		Child: &Filter{
			Pred:  &expr.Cmp{Op: expr.CmpGt, L: col(0), R: lit(i64(1))},
			Child: src,
		},
	}
	rows := run(t, op)
	want := rowsOf(
		[]sqltypes.Value{str("b"), i64(20)},
		[]sqltypes.Value{str("c"), i64(30)},
	)
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("got %v, want %v", rows, want)
	}
}

func TestFilterNullFails(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{sqltypes.Null},
		[]sqltypes.Value{i64(5)},
	))
	op := &Filter{
		Pred:  &expr.Cmp{Op: expr.CmpEq, L: col(0), R: lit(i64(5))},
		Child: src,
	}
	rows := run(t, op)
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Errorf("NULL predicate row passed filter: %v", rows)
	}
}

func TestLimit(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{i64(1)}, []sqltypes.Value{i64(2)}, []sqltypes.Value{i64(3)},
	))
	rows := run(t, &Limit{N: 2, Child: src})
	if len(rows) != 2 {
		t.Errorf("limit kept %d rows", len(rows))
	}
}

func TestHashAggregate(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{str("a"), i64(1)},
		[]sqltypes.Value{str("b"), i64(2)},
		[]sqltypes.Value{str("a"), i64(3)},
		[]sqltypes.Value{str("a"), sqltypes.Null},
	))
	op := &HashAggregate{
		GroupBy: []expr.Expr{col(0)},
		Aggs: []AggSpec{
			{Name: "COUNT", Factory: BuiltinAggregate("count")},                            // COUNT(*)
			{Name: "COUNT", Factory: BuiltinAggregate("count"), Args: []expr.Expr{col(1)}}, // COUNT(x)
			{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(1)}},
			{Name: "MIN", Factory: BuiltinAggregate("min"), Args: []expr.Expr{col(1)}},
			{Name: "MAX", Factory: BuiltinAggregate("max"), Args: []expr.Expr{col(1)}},
			{Name: "AVG", Factory: BuiltinAggregate("avg"), Args: []expr.Expr{col(1)}},
		},
		Child: src,
	}
	rows := run(t, op)
	if len(rows) != 2 {
		t.Fatalf("%d groups", len(rows))
	}
	byGroup := map[string]sqltypes.Row{}
	for _, r := range rows {
		byGroup[r[0].S] = r
	}
	a := byGroup["a"]
	if a[1].I != 3 || a[2].I != 2 || a[3].I != 4 || a[4].I != 1 || a[5].I != 3 || a[6].F != 2 {
		t.Errorf("group a = %v", a)
	}
	b := byGroup["b"]
	if b[1].I != 1 || b[3].I != 2 {
		t.Errorf("group b = %v", b)
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	op := &HashAggregate{
		Aggs:  []AggSpec{{Name: "COUNT", Factory: BuiltinAggregate("count")}},
		Child: NewValues(nil),
	}
	rows := run(t, op)
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Errorf("global count over empty = %v", rows)
	}
}

func TestStreamAggregateMatchesHash(t *testing.T) {
	// Sorted input: stream agg must equal hash agg results.
	var vals []sqltypes.Row
	for g := 0; g < 5; g++ {
		for i := 0; i < 10; i++ {
			vals = append(vals, sqltypes.Row{str(fmt.Sprintf("g%d", g)), i64(int64(i))})
		}
	}
	mk := func() []AggSpec {
		return []AggSpec{
			{Name: "COUNT", Factory: BuiltinAggregate("count")},
			{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(1)}},
		}
	}
	sRows := run(t, &StreamAggregate{GroupBy: []expr.Expr{col(0)}, Aggs: mk(), Child: NewValues(vals)})
	hRows := run(t, &HashAggregate{GroupBy: []expr.Expr{col(0)}, Aggs: mk(), Child: NewValues(vals)})
	sortByFirst := func(rows []sqltypes.Row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].S < rows[j][0].S })
	}
	sortByFirst(sRows)
	sortByFirst(hRows)
	if !reflect.DeepEqual(sRows, hRows) {
		t.Errorf("stream %v != hash %v", sRows, hRows)
	}
}

func TestStreamAggregateEmitsEagerly(t *testing.T) {
	// The stream aggregate must emit group g0 before consuming all of g1.
	rows := rowsOf(
		[]sqltypes.Value{str("g0"), i64(1)},
		[]sqltypes.Value{str("g1"), i64(2)},
		[]sqltypes.Value{str("g1"), i64(3)},
	)
	op := &StreamAggregate{
		GroupBy: []expr.Expr{col(0)},
		Aggs:    []AggSpec{{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(1)}}},
		Child:   NewValues(rows),
	}
	if err := op.Open(&Context{}); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	first, ok, err := op.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if first[0].S != "g0" || first[1].I != 1 {
		t.Errorf("first group = %v", first)
	}
	second, ok, _ := op.Next()
	if !ok || second[0].S != "g1" || second[1].I != 5 {
		t.Errorf("second group = %v", second)
	}
	if _, ok, _ := op.Next(); ok {
		t.Error("extra group")
	}
}

// TestParallelAggregateMatchesSerial: the two-phase SpillableAggregate
// (one partial per worker, AggState.Merge final pass) must equal the
// serial hash aggregate.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all []sqltypes.Row
	var parts [2][]sqltypes.Row
	for i := 0; i < 2000; i++ {
		r := sqltypes.Row{str(fmt.Sprintf("g%d", rng.Intn(50))), i64(int64(rng.Intn(100)))}
		all = append(all, r)
		parts[i%2] = append(parts[i%2], r)
	}
	mk := func() []AggSpec {
		return []AggSpec{
			{Name: "COUNT", Factory: BuiltinAggregate("count")},
			{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(1)}},
			{Name: "MAX", Factory: BuiltinAggregate("max"), Args: []expr.Expr{col(1)}},
		}
	}
	serial := run(t, &HashAggregate{GroupBy: []expr.Expr{col(0)}, Aggs: mk(), Child: NewValues(all)})
	parallel := run(t, &SpillableAggregate{
		GroupBy: []expr.Expr{col(0)},
		Aggs:    mk(),
		Parts:   []Operator{NewValues(parts[0]), NewValues(parts[1])},
	})
	key := func(rows []sqltypes.Row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].S < rows[j][0].S })
	}
	key(serial)
	key(parallel)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel aggregate differs from serial")
	}
}

func TestSortAscDescAndNulls(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{i64(3), str("c")},
		[]sqltypes.Value{sqltypes.Null, str("n")},
		[]sqltypes.Value{i64(1), str("a")},
		[]sqltypes.Value{i64(2), str("b")},
	))
	rows := run(t, &Sort{Keys: []SortKey{{Expr: col(0)}}, Child: src})
	if !rows[0][0].IsNull() || rows[1][0].I != 1 || rows[3][0].I != 3 {
		t.Errorf("asc sort = %v", rows)
	}
	src2 := NewValues(rowsOf(
		[]sqltypes.Value{i64(1)}, []sqltypes.Value{i64(3)}, []sqltypes.Value{i64(2)},
	))
	rows2 := run(t, &Sort{Keys: []SortKey{{Expr: col(0), Desc: true}}, Child: src2})
	if rows2[0][0].I != 3 || rows2[2][0].I != 1 {
		t.Errorf("desc sort = %v", rows2)
	}
}

func TestSortStableMultiKey(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{str("b"), i64(1)},
		[]sqltypes.Value{str("a"), i64(2)},
		[]sqltypes.Value{str("a"), i64(1)},
		[]sqltypes.Value{str("b"), i64(0)},
	))
	rows := run(t, &Sort{
		Keys:  []SortKey{{Expr: col(0)}, {Expr: col(1), Desc: true}},
		Child: src,
	})
	want := rowsOf(
		[]sqltypes.Value{str("a"), i64(2)},
		[]sqltypes.Value{str("a"), i64(1)},
		[]sqltypes.Value{str("b"), i64(1)},
		[]sqltypes.Value{str("b"), i64(0)},
	)
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("multikey sort = %v", rows)
	}
}

func TestRowNumber(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{str("low"), i64(1)},
		[]sqltypes.Value{str("high"), i64(9)},
		[]sqltypes.Value{str("mid"), i64(5)},
	))
	rows := run(t, &RowNumber{
		OrderBy: []SortKey{{Expr: col(1), Desc: true}},
		Child:   src,
	})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0].S != "high" || rows[0][2].I != 1 {
		t.Errorf("first = %v", rows[0])
	}
	if rows[2][0].S != "low" || rows[2][2].I != 3 {
		t.Errorf("last = %v", rows[2])
	}
}

func TestTopN(t *testing.T) {
	var vals []sqltypes.Row
	for i := 0; i < 100; i++ {
		vals = append(vals, sqltypes.Row{i64(int64((i * 37) % 100))})
	}
	rows := run(t, &TopN{N: 5, Keys: []SortKey{{Expr: col(0)}}, Child: NewValues(vals)})
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Errorf("topn[%d] = %v", i, r)
		}
	}
}

func TestHashJoin(t *testing.T) {
	left := NewValues(rowsOf(
		[]sqltypes.Value{i64(1), str("l1")},
		[]sqltypes.Value{i64(2), str("l2")},
		[]sqltypes.Value{i64(3), str("l3")},
		[]sqltypes.Value{sqltypes.Null, str("lnull")},
	))
	right := NewValues(rowsOf(
		[]sqltypes.Value{i64(2), str("r2a")},
		[]sqltypes.Value{i64(2), str("r2b")},
		[]sqltypes.Value{i64(3), str("r3")},
		[]sqltypes.Value{sqltypes.Null, str("rnull")},
		[]sqltypes.Value{i64(9), str("r9")},
	))
	rows := run(t, &HashJoin{
		LeftKeys:  []expr.Expr{col(0)},
		RightKeys: []expr.Expr{col(0)},
		Left:      left,
		Right:     right,
	})
	if len(rows) != 3 {
		t.Fatalf("join produced %d rows: %v", len(rows), rows)
	}
	// NULL keys must not join.
	for _, r := range rows {
		if r[1].S == "lnull" || r[3].S == "rnull" {
			t.Errorf("NULL key joined: %v", r)
		}
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var left, right []sqltypes.Row
	for i := 0; i < 500; i++ {
		left = append(left, sqltypes.Row{i64(int64(rng.Intn(100))), str(fmt.Sprintf("l%d", i))})
	}
	for i := 0; i < 700; i++ {
		right = append(right, sqltypes.Row{i64(int64(rng.Intn(100))), str(fmt.Sprintf("r%d", i))})
	}
	sortByKey := func(rows []sqltypes.Row) {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
	}
	sortByKey(left)
	sortByKey(right)

	mergeRows := run(t, &MergeJoin{
		LeftKeys:  []expr.Expr{col(0)},
		RightKeys: []expr.Expr{col(0)},
		Left:      NewValues(left),
		Right:     NewValues(right),
	})
	hashRows := run(t, &HashJoin{
		LeftKeys:  []expr.Expr{col(0)},
		RightKeys: []expr.Expr{col(0)},
		Left:      NewValues(left),
		Right:     NewValues(right),
	})
	if len(mergeRows) != len(hashRows) {
		t.Fatalf("merge %d rows, hash %d rows", len(mergeRows), len(hashRows))
	}
	canon := func(rows []sqltypes.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(canon(mergeRows), canon(hashRows)) {
		t.Error("merge join result set differs from hash join")
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	empty := NewValues(nil)
	one := NewValues(rowsOf([]sqltypes.Value{i64(1)}))
	if rows := run(t, &MergeJoin{
		LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
		Left: empty, Right: one,
	}); len(rows) != 0 {
		t.Errorf("empty left joined: %v", rows)
	}
	if rows := run(t, &MergeJoin{
		LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
		Left: NewValues(rowsOf([]sqltypes.Value{i64(1)})), Right: NewValues(nil),
	}); len(rows) != 0 {
		t.Errorf("empty right joined: %v", rows)
	}
}

func TestApply(t *testing.T) {
	src := NewValues(rowsOf(
		[]sqltypes.Value{i64(2)},
		[]sqltypes.Value{i64(0)},
		[]sqltypes.Value{i64(3)},
	))
	// Inner: yields n rows (0..n-1) for outer value n - like PivotAlignment
	// yielding one row per base.
	op := &Apply{
		Child: src,
		Inner: func(ctx *Context, outer sqltypes.Row) (RowIterator, error) {
			n := outer[0].I
			var rows []sqltypes.Row
			for i := int64(0); i < n; i++ {
				rows = append(rows, sqltypes.Row{i64(i)})
			}
			return &SliceIterator{Rows: rows}, nil
		},
	}
	rows := run(t, op)
	if len(rows) != 5 {
		t.Fatalf("apply produced %d rows", len(rows))
	}
	if rows[0][0].I != 2 || rows[0][1].I != 0 || rows[4][0].I != 3 || rows[4][1].I != 2 {
		t.Errorf("apply rows = %v", rows)
	}
}

func TestGatherUnordered(t *testing.T) {
	parts := make([]Operator, 4)
	total := 0
	for i := range parts {
		var rows []sqltypes.Row
		for j := 0; j < 100; j++ {
			rows = append(rows, sqltypes.Row{i64(int64(i*1000 + j))})
			total++
		}
		parts[i] = NewValues(rows)
	}
	rows := run(t, &Gather{Children: parts})
	if len(rows) != total {
		t.Fatalf("gathered %d of %d", len(rows), total)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].I] = true
	}
	if len(seen) != total {
		t.Error("duplicate or lost rows in gather")
	}
}

func TestGatherOrderedPreservesPartitionOrder(t *testing.T) {
	parts := []Operator{
		NewValues(rowsOf([]sqltypes.Value{i64(1)}, []sqltypes.Value{i64(2)})),
		NewValues(rowsOf([]sqltypes.Value{i64(3)}, []sqltypes.Value{i64(4)})),
		NewValues(nil),
		NewValues(rowsOf([]sqltypes.Value{i64(5)})),
	}
	rows := run(t, &Gather{Children: parts, Ordered: true})
	for i, r := range rows {
		if r[0].I != int64(i+1) {
			t.Fatalf("ordered gather[%d] = %v", i, r)
		}
	}
}

func TestGatherPropagatesError(t *testing.T) {
	bad := &Source{Factory: func(*Context) (RowIterator, error) {
		return nil, fmt.Errorf("boom")
	}}
	op := &Gather{Children: []Operator{bad, NewValues(nil)}}
	if _, err := Run(&Context{}, op); err == nil {
		t.Error("gather swallowed child error")
	}
}

func TestGatherEarlyClose(t *testing.T) {
	// Closing a gather before draining must not deadlock producers.
	var rows []sqltypes.Row
	for i := 0; i < 10_000; i++ {
		rows = append(rows, sqltypes.Row{i64(int64(i))})
	}
	op := &Gather{Children: []Operator{NewValues(rows), NewValues(rows)}}
	if err := op.Open(&Context{}); err != nil {
		t.Fatal(err)
	}
	op.Next()
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}
