package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// TestBlockedBloomNoFalseNegatives is the correctness property the join
// relies on: every added hash must test positive.
func TestBlockedBloomNoFalseNegatives(t *testing.T) {
	b := NewBlockedBloom(10_000)
	rng := rand.New(rand.NewSource(99))
	hashes := make([]uint64, 10_000)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		b.Add(hashes[i])
	}
	for i, h := range hashes {
		if !b.MayContain(h) {
			t.Fatalf("false negative for hash %d (%#x)", i, h)
		}
	}
}

// TestBlockedBloomFalsePositiveRate checks the sizing keeps disjoint keys
// mostly out (16 bits/key, 8 probes: the rate should be well under 5%).
func TestBlockedBloomFalsePositiveRate(t *testing.T) {
	b := NewBlockedBloom(20_000)
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	for i := 0; i < 20_000; i++ {
		h := rng.Uint64()
		seen[h] = true
		b.Add(h)
	}
	fp := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		if seen[h] {
			continue
		}
		if b.MayContain(h) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f > 0.05", rate)
	}
}

// TestPartitionedJoinBloomEquivalence runs the same skewed join with the
// Bloom filter on and off: identical output, and — since most probe keys
// have no build-side match — a large BloomDrops count with the filter on.
func TestPartitionedJoinBloomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var build, probe []sqltypes.Row
	// Build keys live in [0, 200); probe keys in [0, 2000): ~90% of probe
	// rows cannot match. NULL keys ride along to check they never join.
	for i := 0; i < 1500; i++ {
		build = append(build, sqltypes.Row{i64(int64(rng.Intn(200))), str(fmt.Sprintf("b%d", i))})
	}
	for i := 0; i < 6000; i++ {
		key := sqltypes.Value(i64(int64(rng.Intn(2000))))
		if i%97 == 0 {
			key = sqltypes.Null
		}
		probe = append(probe, sqltypes.Row{key, str(fmt.Sprintf("p%d", i))})
	}
	run := func(bloom bool, budget int64, stats *ExecStats) []string {
		j := &PartitionedHashJoin{
			LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
			LeftParts: splitRows(build, 2), RightParts: splitRows(probe, 2),
			BuildLeft: true, Partitions: 8,
			MemoryBudget: budget, Spill: newTestSpillStore(t),
			Bloom: bloom, BuildRowsEstimate: int64(len(build)),
		}
		rows, err := Run(&Context{DOP: 2, Stats: stats}, j)
		if err != nil {
			t.Fatal(err)
		}
		return canonRows(rows)
	}
	for _, budget := range []int64{0, 8 << 10} {
		plain := run(false, budget, &ExecStats{})
		st := &ExecStats{}
		filtered := run(true, budget, st)
		if !reflect.DeepEqual(plain, filtered) {
			t.Fatalf("budget %d: bloom changed the result: %d vs %d rows", budget, len(filtered), len(plain))
		}
		drops := st.Join.BloomDrops.Load()
		checks := st.Join.BloomChecks.Load()
		if drops == 0 || checks == 0 {
			t.Fatalf("budget %d: expected bloom activity, got checks=%d drops=%d", budget, checks, drops)
		}
		// ~90% of probe keys are absent; demand at least half get dropped.
		if drops < checks/2 {
			t.Fatalf("budget %d: drops=%d of checks=%d, expected a majority", budget, drops, checks)
		}
		// The per-partition attribution must account for every drop, and —
		// with keys spread over [0, 2000) — across more than one partition.
		snap := st.Join.Snapshot()
		var perPart int64
		spread := 0
		for i, n := range snap.BloomDropsByPart {
			perPart += n
			if n > 0 {
				spread++
			}
			if n != st.Join.BloomDropsByPart[i].Load() {
				t.Fatalf("budget %d: snapshot partition %d diverges from live counter", budget, i)
			}
		}
		if perPart != drops {
			t.Fatalf("budget %d: per-partition drops sum to %d, total is %d", budget, perPart, drops)
		}
		if spread < 2 {
			t.Fatalf("budget %d: drops landed in %d partition(s), expected a spread", budget, spread)
		}
		if delta := snap.Sub(JoinStatsSnapshot{}); !reflect.DeepEqual(delta, snap) {
			t.Fatalf("budget %d: Sub(zero) changed the snapshot", budget)
		}
	}
}

// TestPartitionedJoinBloomReducesSpilledProbeRows is the point of pushing
// the filter in front of routing: under a forced-spill budget, dropped
// probe rows never reach the spill files.
func TestPartitionedJoinBloomReducesSpilledProbeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var build, probe []sqltypes.Row
	for i := 0; i < 3000; i++ {
		build = append(build, sqltypes.Row{i64(int64(rng.Intn(300))), str(fmt.Sprintf("payload-build-%06d", i))})
	}
	for i := 0; i < 9000; i++ {
		probe = append(probe, sqltypes.Row{i64(int64(rng.Intn(3000))), str(fmt.Sprintf("payload-probe-%06d", i))})
	}
	run := func(bloom bool) (int64, []string) {
		st := &ExecStats{}
		j := &PartitionedHashJoin{
			LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
			Left: NewValues(build), Right: NewValues(probe),
			BuildLeft: true, Partitions: 8,
			MemoryBudget: 8 << 10, Spill: newTestSpillStore(t),
			Bloom: bloom, BuildRowsEstimate: int64(len(build)),
		}
		rows, err := Run(&Context{DOP: 2, Stats: st}, j)
		if err != nil {
			t.Fatal(err)
		}
		return st.Join.SpilledProbeRows.Load(), canonRows(rows)
	}
	plainSpilled, plainRows := run(false)
	bloomSpilled, bloomRows := run(true)
	if !reflect.DeepEqual(plainRows, bloomRows) {
		t.Fatalf("bloom changed the result: %d vs %d rows", len(bloomRows), len(plainRows))
	}
	if plainSpilled == 0 {
		t.Fatal("test setup: expected the plain run to spill probe rows")
	}
	if bloomSpilled >= plainSpilled {
		t.Fatalf("bloom did not reduce spilled probe rows: %d vs %d", bloomSpilled, plainSpilled)
	}
}

// TestPartitionedJoinPrePartition verifies that planner-directed spill
// pre-partitioning routes build rows straight to disk (the partitions
// count as spilled from the start) and still produces the exact join.
func TestPartitionedJoinPrePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var left, right []sqltypes.Row
	for i := 0; i < 2000; i++ {
		left = append(left, sqltypes.Row{i64(int64(rng.Intn(400))), str(fmt.Sprintf("l%d", i))})
	}
	for i := 0; i < 2500; i++ {
		right = append(right, sqltypes.Row{i64(int64(rng.Intn(400))), str(fmt.Sprintf("r%d", i))})
	}
	lk, rk := []expr.Expr{col(0)}, []expr.Expr{col(0)}
	want := canonRows(nestedLoopJoin(t, left, right, lk, rk))
	st := &ExecStats{}
	j := &PartitionedHashJoin{
		LeftKeys: lk, RightKeys: rk,
		Left: NewValues(left), Right: NewValues(right),
		BuildLeft: true, Partitions: 8, PrePartition: 5,
		MemoryBudget: 1 << 20, Spill: newTestSpillStore(t),
	}
	rows, err := Run(&Context{DOP: 2, Stats: st}, j)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonRows(rows); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-partitioned join differs from reference: %d vs %d rows", len(got), len(want))
	}
	if n := st.Join.SpilledPartitions.Load(); n < 5 {
		t.Fatalf("expected >= 5 pre-spilled partitions, got %d", n)
	}
	if st.Join.SpilledBuildRows.Load() == 0 || st.Join.SpilledProbeRows.Load() == 0 {
		t.Fatalf("pre-partitioned join spilled nothing: %+v", st.Join.Snapshot())
	}
}
