package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// randomAggInput builds rows of (group INT or NULL, val INT, pad STRING)
// with heavy duplication inside keySpace.
func randomAggInput(rng *rand.Rand, n, keySpace int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		g := sqltypes.NewInt(int64(rng.Intn(keySpace)))
		if rng.Intn(25) == 0 {
			g = sqltypes.Null
		}
		rows[i] = sqltypes.Row{g, i64(int64(rng.Intn(1000))), str(fmt.Sprintf("pad-%04d", i%97))}
	}
	return rows
}

func testAggSpecs(t *testing.T) []AggSpec {
	t.Helper()
	specs := []AggSpec{
		{Name: "COUNT", Factory: BuiltinAggregate("count")},
		{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(1)}},
		{Name: "MIN", Factory: BuiltinAggregate("min"), Args: []expr.Expr{col(2)}},
		{Name: "AVG", Factory: BuiltinAggregate("avg"), Args: []expr.Expr{col(1)}},
	}
	return specs
}

// TestSpillableAggregateMatchesHashAggregate: the new operator must
// reproduce HashAggregate exactly — in memory, under a forced-spill
// budget, and with parallel partial inputs — including NULL group keys.
func TestSpillableAggregateMatchesHashAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	input := randomAggInput(rng, 6000, 800)
	groupBy := []expr.Expr{col(0)}

	want := canonRows(run(t, &HashAggregate{GroupBy: groupBy, Aggs: testAggSpecs(t), Child: NewValues(input)}))

	cases := []struct {
		name      string
		budget    int64
		chains    int
		wantSpill bool
	}{
		{"serial in-memory", 0, 0, false},
		{"serial forced spill", 8 << 10, 0, true},
		{"parallel in-memory", 0, 4, false},
		{"parallel forced spill", 16 << 10, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := &SpillableAggregate{
				GroupBy:      groupBy,
				Aggs:         testAggSpecs(t),
				Partitions:   8,
				MemoryBudget: tc.budget,
			}
			if tc.budget > 0 {
				a.Spill = newTestSpillStore(t)
			}
			if tc.chains > 0 {
				a.Parts = splitRows(input, tc.chains)
			} else {
				a.Child = NewValues(input)
			}
			stats := &ExecStats{}
			rows, err := Run(&Context{DOP: 4, Stats: stats}, a)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonRows(rows); !reflect.DeepEqual(got, want) {
				t.Fatalf("result differs from HashAggregate: %d vs %d groups", len(got), len(want))
			}
			spilledParts := stats.Agg.SpilledPartitions.Load()
			if tc.wantSpill && spilledParts == 0 {
				t.Fatalf("budget %d did not spill any partitions", tc.budget)
			}
			if !tc.wantSpill && spilledParts != 0 {
				t.Fatalf("unlimited budget spilled %d partitions", spilledParts)
			}
			if tc.wantSpill && (stats.Agg.SpilledRows.Load() == 0 || stats.Agg.SpillRecursions.Load() == 0) {
				t.Fatalf("spill counters did not advance: %+v", stats.Agg.Snapshot())
			}
		})
	}
}

// TestSpillableAggregateSkewDepthCap: one giant duplicate group key
// cannot be subdivided by any hash level; the recursion must hit the
// depth cap and finish in memory with the correct totals.
func TestSpillableAggregateSkewDepthCap(t *testing.T) {
	var input []sqltypes.Row
	for i := 0; i < 3000; i++ {
		input = append(input, sqltypes.Row{i64(7), i64(1), str("x")})
	}
	// A handful of other keys so freezing has something to choose from.
	for i := 0; i < 50; i++ {
		input = append(input, sqltypes.Row{i64(int64(100 + i)), i64(1), str("y")})
	}
	stats := &ExecStats{}
	a := &SpillableAggregate{
		GroupBy:      []expr.Expr{col(0)},
		Aggs:         []AggSpec{{Name: "COUNT", Factory: BuiltinAggregate("count")}},
		Child:        NewValues(input),
		Partitions:   4,
		MemoryBudget: 1, // freeze immediately: everything spills
		Spill:        newTestSpillStore(t),
	}
	rows, err := Run(&Context{DOP: 1, Stats: stats}, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 51 {
		t.Fatalf("got %d groups, want 51", len(rows))
	}
	for _, r := range rows {
		if r[0].I == 7 && r[1].I != 3000 {
			t.Fatalf("hot key count = %d, want 3000", r[1].I)
		}
	}
	if stats.Agg.SpillRecursions.Load() == 0 {
		t.Fatalf("expected recursive re-aggregation, got %+v", stats.Agg.Snapshot())
	}
}

// TestSpillableAggregateEmptyInput: grouped empty input yields no rows;
// a global aggregate yields its single row, serial and parallel.
func TestSpillableAggregateEmptyInput(t *testing.T) {
	grouped := run(t, &SpillableAggregate{
		GroupBy: []expr.Expr{col(0)},
		Aggs:    []AggSpec{{Name: "COUNT", Factory: BuiltinAggregate("count")}},
		Child:   NewValues(nil),
	})
	if len(grouped) != 0 {
		t.Fatalf("grouped empty input produced %d rows", len(grouped))
	}
	for _, parallel := range []bool{false, true} {
		a := &SpillableAggregate{
			Aggs: []AggSpec{
				{Name: "COUNT", Factory: BuiltinAggregate("count")},
				{Name: "SUM", Factory: BuiltinAggregate("sum"), Args: []expr.Expr{col(0)}},
			},
		}
		if parallel {
			a.Parts = []Operator{NewValues(nil), NewValues(nil)}
		} else {
			a.Child = NewValues(nil)
		}
		rows := run(t, a)
		if len(rows) != 1 {
			t.Fatalf("parallel=%v: global aggregate over empty input produced %d rows", parallel, len(rows))
		}
		if rows[0][0].I != 0 || !rows[0][1].IsNull() {
			t.Fatalf("parallel=%v: global row = %v, want [0 NULL]", parallel, rows[0])
		}
	}
}

// TestSpillableAggregateBudgetWithoutStore: exceeding the budget with no
// spill store must fail cleanly.
func TestSpillableAggregateBudgetWithoutStore(t *testing.T) {
	input := randomAggInput(rand.New(rand.NewSource(5)), 2000, 2000)
	a := &SpillableAggregate{
		GroupBy:      []expr.Expr{col(0)},
		Aggs:         []AggSpec{{Name: "COUNT", Factory: BuiltinAggregate("count")}},
		Child:        NewValues(input),
		MemoryBudget: 256,
	}
	if err := a.Open(&Context{DOP: 1}); err == nil {
		a.Close()
		t.Fatal("expected budget-without-store error")
	}
	a.Close()
}
