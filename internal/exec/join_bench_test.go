package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// benchJoinRows builds a deterministic input: n rows with keys drawn from
// keySpace and a short payload, mimicking the reads ⋈ alignments shape.
func benchJoinRows(n, keySpace int, seed int64, side string) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{
			i64(int64(rng.Intn(keySpace))),
			str(fmt.Sprintf("%s-%08d", side, i)),
		}
	}
	return rows
}

// BenchmarkPartitionedJoin measures the partitioned hash join at DOP
// 1/2/4/8 over warm in-memory inputs, plus a forced-spill configuration
// (budget far below the build side) at DOP 4. The bench harness
// (cmd/experiments -run join) runs the same shape through SQL and writes
// BENCH_join.json.
func BenchmarkPartitionedJoin(b *testing.B) {
	const (
		buildN   = 40_000
		probeN   = 80_000
		keySpace = 10_000
	)
	build := benchJoinRows(buildN, keySpace, 1, "b")
	probe := benchJoinRows(probeN, keySpace, 2, "p")

	run := func(b *testing.B, dop int, budget int64) {
		spill := newTestSpillStore(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := &PartitionedHashJoin{
				LeftKeys: []expr.Expr{col(0)}, RightKeys: []expr.Expr{col(0)},
				LeftParts:    splitRows(probe, dop),
				RightParts:   splitRows(build, dop),
				Partitions:   32,
				MemoryBudget: budget,
				Spill:        spill,
			}
			stats := &ExecStats{}
			rows, err := Run(&Context{DOP: dop, Stats: stats}, j)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("empty join result")
			}
			if budget > 0 && stats.Join.SpilledPartitions.Load() == 0 {
				b.Fatal("spill benchmark did not spill")
			}
		}
	}
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inmem/dop%d", dop), func(b *testing.B) { run(b, dop, 0) })
	}
	b.Run("spill/dop4", func(b *testing.B) { run(b, 4, 256<<10) })
}
