package exec

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqltypes"
)

// AggState is the accumulation contract of aggregate functions — identical
// for built-ins (COUNT, SUM, MIN, MAX, AVG) and user-defined aggregates,
// which is what lets the engine parallelize UDAs "just like built-in
// aggregates" (paper Section 2.3.4): partial states accumulate per worker
// and Merge combines them.
type AggState interface {
	Add(args []sqltypes.Value) error
	Merge(other AggState) error
	Result() (sqltypes.Value, error)
}

// AggFactory creates a fresh accumulator.
type AggFactory func() AggState

// AggSpec binds an aggregate function to its argument expressions.
type AggSpec struct {
	Name    string
	Factory AggFactory
	Args    []expr.Expr // empty for COUNT(*)
}

// --- Built-in aggregates ---

type countState struct{ n int64 }

func (s *countState) Add(args []sqltypes.Value) error {
	// COUNT(*) has no args; COUNT(x) skips NULLs.
	if len(args) > 0 && args[0].IsNull() {
		return nil
	}
	s.n++
	return nil
}
func (s *countState) Merge(o AggState) error { s.n += o.(*countState).n; return nil }
func (s *countState) Result() (sqltypes.Value, error) {
	return sqltypes.NewInt(s.n), nil
}

type sumState struct {
	isFloat bool
	i       int64
	f       float64
	seen    bool
}

func (s *sumState) Add(args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: SUM takes one argument")
	}
	v := args[0]
	if v.IsNull() {
		return nil
	}
	s.seen = true
	if v.K == sqltypes.KindFloat || s.isFloat {
		if !s.isFloat {
			s.isFloat = true
			s.f = float64(s.i)
		}
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		s.f += f
		return nil
	}
	n, err := v.AsInt()
	if err != nil {
		return err
	}
	s.i += n
	return nil
}
func (s *sumState) Merge(o AggState) error {
	other := o.(*sumState)
	if !other.seen {
		return nil
	}
	if other.isFloat {
		return s.Add([]sqltypes.Value{sqltypes.NewFloat(other.f)})
	}
	return s.Add([]sqltypes.Value{sqltypes.NewInt(other.i)})
}
func (s *sumState) Result() (sqltypes.Value, error) {
	if !s.seen {
		return sqltypes.Null, nil
	}
	if s.isFloat {
		return sqltypes.NewFloat(s.f), nil
	}
	return sqltypes.NewInt(s.i), nil
}

type minmaxState struct {
	max  bool
	best sqltypes.Value
	seen bool
}

func (s *minmaxState) Add(args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: MIN/MAX take one argument")
	}
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !s.seen {
		s.best, s.seen = v, true
		return nil
	}
	c := sqltypes.Compare(v, s.best)
	if (s.max && c > 0) || (!s.max && c < 0) {
		s.best = v
	}
	return nil
}
func (s *minmaxState) Merge(o AggState) error {
	other := o.(*minmaxState)
	if !other.seen {
		return nil
	}
	return s.Add([]sqltypes.Value{other.best})
}
func (s *minmaxState) Result() (sqltypes.Value, error) {
	if !s.seen {
		return sqltypes.Null, nil
	}
	return s.best, nil
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Add(args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: AVG takes one argument")
	}
	if args[0].IsNull() {
		return nil
	}
	f, err := args[0].AsFloat()
	if err != nil {
		return err
	}
	s.sum += f
	s.n++
	return nil
}
func (s *avgState) Merge(o AggState) error {
	other := o.(*avgState)
	s.sum += other.sum
	s.n += other.n
	return nil
}
func (s *avgState) Result() (sqltypes.Value, error) {
	if s.n == 0 {
		return sqltypes.Null, nil
	}
	return sqltypes.NewFloat(s.sum / float64(s.n)), nil
}

// BuiltinAggregate resolves a built-in aggregate by name, or nil.
func BuiltinAggregate(name string) AggFactory {
	switch strings.ToLower(name) {
	case "count":
		return func() AggState { return &countState{} }
	case "sum":
		return func() AggState { return &sumState{} }
	case "min":
		return func() AggState { return &minmaxState{} }
	case "max":
		return func() AggState { return &minmaxState{max: true} }
	case "avg":
		return func() AggState { return &avgState{} }
	}
	return nil
}

// --- Hash aggregation ---

type aggGroup struct {
	vals   sqltypes.Row // group-by values
	states []AggState
}

// HashAggregate evaluates GROUP BY with aggregate functions by building an
// in-memory hash table. Output rows are the group-by values followed by
// the aggregate results. With no group-by expressions it produces the
// single global aggregate row.
type HashAggregate struct {
	GroupBy []expr.Expr
	Aggs    []AggSpec
	Child   Operator

	groups map[string]*aggGroup
	order  []string
	pos    int
	out    sqltypes.Row
}

// Open drains the child and builds the hash table.
func (h *HashAggregate) Open(ctx *Context) error {
	if err := h.Child.Open(ctx); err != nil {
		return err
	}
	defer h.Child.Close()
	h.groups = make(map[string]*aggGroup)
	h.order = h.order[:0]
	h.pos = 0
	if err := accumulate(h.Child, h.GroupBy, h.Aggs, h.groups, &h.order); err != nil {
		return err
	}
	if len(h.GroupBy) == 0 && len(h.groups) == 0 {
		// Global aggregate over an empty input still yields one row.
		g := &aggGroup{states: newStates(h.Aggs)}
		h.groups[""] = g
		h.order = append(h.order, "")
	}
	h.out = make(sqltypes.Row, len(h.GroupBy)+len(h.Aggs))
	return nil
}

func newStates(aggs []AggSpec) []AggState {
	states := make([]AggState, len(aggs))
	for i, a := range aggs {
		states[i] = a.Factory()
	}
	return states
}

// accumulate drains an operator into a group table.
func accumulate(child Operator, groupBy []expr.Expr, aggs []AggSpec, groups map[string]*aggGroup, order *[]string) error {
	gvals := make(sqltypes.Row, len(groupBy))
	var keyBuf []byte
	for {
		row, ok, err := child.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i, e := range groupBy {
			v, err := e.Eval(row)
			if err != nil {
				return err
			}
			gvals[i] = v
		}
		keyBuf, err = appendGroupKey(keyBuf[:0], gvals)
		if err != nil {
			return err
		}
		g, okg := groups[string(keyBuf)]
		if !okg {
			g = &aggGroup{vals: gvals.Clone(), states: newStates(aggs)}
			groups[string(keyBuf)] = g
			if order != nil {
				*order = append(*order, string(keyBuf))
			}
		}
		for i, a := range aggs {
			args := make([]sqltypes.Value, len(a.Args))
			for j, ae := range a.Args {
				v, err := ae.Eval(row)
				if err != nil {
					return err
				}
				args[j] = v
			}
			if err := g.states[i].Add(args); err != nil {
				return err
			}
		}
	}
}

// Next emits one group.
func (h *HashAggregate) Next() (sqltypes.Row, bool, error) {
	if h.pos >= len(h.order) {
		return nil, false, nil
	}
	g := h.groups[h.order[h.pos]]
	h.pos++
	return renderGroup(h.out, g)
}

func renderGroup(out sqltypes.Row, g *aggGroup) (sqltypes.Row, bool, error) {
	copy(out, g.vals)
	for i, st := range g.states {
		v, err := st.Result()
		if err != nil {
			return nil, false, err
		}
		out[len(g.vals)+i] = v
	}
	return out, true, nil
}

// Close releases the hash table.
func (h *HashAggregate) Close() error {
	h.groups = nil
	h.order = nil
	return nil
}

// StreamAggregate evaluates GROUP BY over input already sorted by the
// group-by expressions, emitting each group as soon as it completes — the
// non-blocking aggregation strategy the paper's consensus pipeline needs
// ("the database needs to use a non-blocking, parallelized query plan and
// to process the alignments in order", Section 5.3.3).
type StreamAggregate struct {
	GroupBy []expr.Expr
	Aggs    []AggSpec
	Child   Operator

	cur     *aggGroup
	curKey  []byte
	done    bool
	out     sqltypes.Row
	pending sqltypes.Row
}

// Open opens the child.
func (s *StreamAggregate) Open(ctx *Context) error {
	s.cur, s.curKey, s.done, s.pending = nil, nil, false, nil
	s.out = make(sqltypes.Row, len(s.GroupBy)+len(s.Aggs))
	return s.Child.Open(ctx)
}

// Next emits the next completed group.
func (s *StreamAggregate) Next() (sqltypes.Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	gvals := make(sqltypes.Row, len(s.GroupBy))
	for {
		row, ok, err := s.Child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if s.cur != nil {
				g := s.cur
				s.cur = nil
				return renderGroup(s.out, g)
			}
			if len(s.GroupBy) == 0 {
				return renderGroup(s.out, &aggGroup{states: newStates(s.Aggs)})
			}
			return nil, false, nil
		}
		for i, e := range s.GroupBy {
			v, err := e.Eval(row)
			if err != nil {
				return nil, false, err
			}
			gvals[i] = v
		}
		key, err := appendGroupKey(nil, gvals)
		if err != nil {
			return nil, false, err
		}
		var completed *aggGroup
		if s.cur == nil || string(key) != string(s.curKey) {
			completed = s.cur
			s.cur = &aggGroup{vals: gvals.Clone(), states: newStates(s.Aggs)}
			s.curKey = key
		}
		for i, a := range s.Aggs {
			args := make([]sqltypes.Value, len(a.Args))
			for j, ae := range a.Args {
				v, err := ae.Eval(row)
				if err != nil {
					return nil, false, err
				}
				args[j] = v
			}
			if err := s.cur.states[i].Add(args); err != nil {
				return nil, false, err
			}
		}
		if completed != nil {
			return renderGroup(s.out, completed)
		}
	}
}

// Close closes the child.
func (s *StreamAggregate) Close() error { return s.Child.Close() }
