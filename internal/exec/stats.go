package exec

import "sync/atomic"

// ExecStats is the engine-wide operator counter block: one instance lives
// in core.Database and every query's Context points at it, so joins,
// sorts and aggregates report spill behavior through a single surface
// (Database.ExecStats()) instead of one accessor per operator family.
// All fields are atomics: parallel workers update them concurrently and
// monitoring can snapshot mid-query.
type ExecStats struct {
	Join JoinStats
	Sort SortStats
	Agg  AggStats
}

// discardExecStats absorbs counters when the context carries none.
var discardExecStats ExecStats

// statsFrom returns the context's counter block, or a discard block so
// operators never nil-check counters on hot paths.
func statsFrom(ctx *Context) *ExecStats {
	if ctx != nil && ctx.Stats != nil {
		return ctx.Stats
	}
	return &discardExecStats
}

// SortStats accumulates external-sort counters across queries.
type SortStats struct {
	Sorts        atomic.Int64 // sort/row-number operators that drained input
	Runs         atomic.Int64 // sorted runs spilled to temp files
	SpilledRows  atomic.Int64 // rows written to spilled runs
	SpilledBytes atomic.Int64 // encoded bytes written to spilled runs
	MergeRows    atomic.Int64 // rows emitted by k-way run merges
}

// SortStatsSnapshot is a point-in-time copy of SortStats.
type SortStatsSnapshot struct {
	Sorts        int64
	Runs         int64
	SpilledRows  int64
	SpilledBytes int64
	MergeRows    int64
}

// Snapshot reads the counters; safe to call during queries.
func (s *SortStats) Snapshot() SortStatsSnapshot {
	return SortStatsSnapshot{
		Sorts:        s.Sorts.Load(),
		Runs:         s.Runs.Load(),
		SpilledRows:  s.SpilledRows.Load(),
		SpilledBytes: s.SpilledBytes.Load(),
		MergeRows:    s.MergeRows.Load(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s SortStatsSnapshot) Sub(earlier SortStatsSnapshot) SortStatsSnapshot {
	return SortStatsSnapshot{
		Sorts:        s.Sorts - earlier.Sorts,
		Runs:         s.Runs - earlier.Runs,
		SpilledRows:  s.SpilledRows - earlier.SpilledRows,
		SpilledBytes: s.SpilledBytes - earlier.SpilledBytes,
		MergeRows:    s.MergeRows - earlier.MergeRows,
	}
}

// AggStats accumulates spillable-aggregate counters across queries.
type AggStats struct {
	SpilledPartitions atomic.Int64 // partitions frozen past the memory budget
	SpilledRows       atomic.Int64 // raw input rows written to partition files
	SpilledBytes      atomic.Int64 // encoded bytes written to partition files
	SpillRecursions   atomic.Int64 // spilled partitions re-aggregated from disk
}

// AggStatsSnapshot is a point-in-time copy of AggStats.
type AggStatsSnapshot struct {
	SpilledPartitions int64
	SpilledRows       int64
	SpilledBytes      int64
	SpillRecursions   int64
}

// Snapshot reads the counters; safe to call during queries.
func (s *AggStats) Snapshot() AggStatsSnapshot {
	return AggStatsSnapshot{
		SpilledPartitions: s.SpilledPartitions.Load(),
		SpilledRows:       s.SpilledRows.Load(),
		SpilledBytes:      s.SpilledBytes.Load(),
		SpillRecursions:   s.SpillRecursions.Load(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s AggStatsSnapshot) Sub(earlier AggStatsSnapshot) AggStatsSnapshot {
	return AggStatsSnapshot{
		SpilledPartitions: s.SpilledPartitions - earlier.SpilledPartitions,
		SpilledRows:       s.SpilledRows - earlier.SpilledRows,
		SpilledBytes:      s.SpilledBytes - earlier.SpilledBytes,
		SpillRecursions:   s.SpillRecursions - earlier.SpillRecursions,
	}
}

// ExecStatsSnapshot is a point-in-time copy of all operator counters.
type ExecStatsSnapshot struct {
	Join JoinStatsSnapshot
	Sort SortStatsSnapshot
	Agg  AggStatsSnapshot
}

// Snapshot reads every counter; safe to call during queries.
func (s *ExecStats) Snapshot() ExecStatsSnapshot {
	return ExecStatsSnapshot{
		Join: s.Join.Snapshot(),
		Sort: s.Sort.Snapshot(),
		Agg:  s.Agg.Snapshot(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s ExecStatsSnapshot) Sub(earlier ExecStatsSnapshot) ExecStatsSnapshot {
	return ExecStatsSnapshot{
		Join: s.Join.Sub(earlier.Join),
		Sort: s.Sort.Sub(earlier.Sort),
		Agg:  s.Agg.Sub(earlier.Agg),
	}
}
