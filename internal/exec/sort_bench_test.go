package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sqltypes"
)

// BenchmarkSortRows measures the stable row sort that TopN's lazy trim
// calls repeatedly. The previous implementation allocated an index slice
// plus two full permutation slices on every call (~3 allocations of
// O(n)); the in-place rowSorter reports 1 small allocation (its escaping
// header) regardless of n.
func BenchmarkSortRows(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	baseRows := make([]sqltypes.Row, n)
	baseKeys := make([]sqltypes.Row, n)
	for i := range baseRows {
		baseRows[i] = sqltypes.Row{i64(int64(rng.Intn(512))), str(fmt.Sprintf("p-%05d", i))}
		baseKeys[i] = sqltypes.Row{baseRows[i][0]}
	}
	by := []SortKey{{Expr: col(0)}}
	rows := make([]sqltypes.Row, n)
	keys := make([]sqltypes.Row, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(rows, baseRows)
		copy(keys, baseKeys)
		sortRows(rows, keys, by)
	}
}

// BenchmarkTopNTrim exercises the full TopN path (clone, key eval, lazy
// trims) whose per-trim allocations the reusable sorter removes.
func BenchmarkTopNTrim(b *testing.B) {
	const n = 20000
	rng := rand.New(rand.NewSource(2))
	input := make([]sqltypes.Row, n)
	for i := range input {
		input[i] = sqltypes.Row{i64(int64(rng.Intn(100000))), str("payload")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := &TopN{N: 10, Keys: []SortKey{{Expr: col(0)}}, Child: NewValues(input)}
		rows, err := Run(&Context{DOP: 1}, op)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkExternalSort measures the sort at DOP 1 vs parallel
// per-partition sorts under MergeSorted, in memory and with a budget
// that forces run spilling.
func BenchmarkExternalSort(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(3))
	input := make([]sqltypes.Row, n)
	for i := range input {
		input[i] = sqltypes.Row{i64(int64(rng.Intn(1 << 20))), str(fmt.Sprintf("payload-%07d", i))}
	}
	spans := func(parts int) []Operator {
		ops := make([]Operator, 0, parts)
		for i := 0; i < parts; i++ {
			lo, hi := n*i/parts, n*(i+1)/parts
			ops = append(ops, NewValues(input[lo:hi]))
		}
		return ops
	}
	keys := []SortKey{{Expr: col(0)}}
	for _, cfg := range []struct {
		name   string
		dop    int
		budget int64
	}{
		{"dop1-mem", 1, 0},
		{"dop4-mem", 4, 0},
		{"dop1-spill", 1, 256 << 10},
		{"dop4-spill", 4, 256 << 10},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var spill SpillStore
			if cfg.budget > 0 {
				spill = newTestSpillStore(b)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var op Operator
				if cfg.dop == 1 {
					op = &Sort{Keys: keys, Child: NewValues(input), MemoryBudget: cfg.budget, Spill: spill}
				} else {
					chains := spans(cfg.dop)
					sorts := make([]Operator, len(chains))
					per := cfg.budget
					if per > 0 {
						per /= int64(cfg.dop)
					}
					for j, ch := range chains {
						sorts[j] = &Sort{Keys: keys, Child: ch, MemoryBudget: per, Spill: spill}
					}
					op = &MergeSorted{Keys: keys, Children: sorts}
				}
				stats := &ExecStats{}
				rows, err := Run(&Context{DOP: cfg.dop, Stats: stats}, op)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n {
					b.Fatalf("got %d rows", len(rows))
				}
				if cfg.budget > 0 && stats.Sort.Runs.Load() == 0 {
					b.Fatal("expected spilled runs")
				}
			}
		})
	}
}
