// Package exec implements the physical query operators of the engine as
// Volcano-style pull iterators — the same iterator contract the paper's
// table-valued functions plug into ("The API for providing TVFs follows
// the standard iterator interface of a relational query engine", Section
// 4.1). It includes the parallel operators (gather exchange, parallel hash
// aggregation, partitioned merge join) that reproduce the paper's
// "parallelism for free" results (Figures 8-10).
package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// Context carries per-query execution state.
type Context struct {
	// DOP is the degree of parallelism granted to parallel operators.
	DOP int
	// Stats, when non-nil, accumulates operator counters (join, sort and
	// aggregate spill activity) for the engine's monitoring surface.
	Stats *ExecStats
	// Snapshot is the engine's opaque MVCC visibility token. The session
	// layer sets it when a statement runs under snapshot isolation; scan
	// factories type-assert it back to filter row versions. Operators
	// must thread the same Context down to their sources. nil means
	// "latest committed" (recovery, TVF side scans).
	Snapshot any
	// BatchSize is the target rows per batch for row-to-batch shims;
	// 0 means vec.DefaultBatchSize. Page-backed scans batch one page at
	// a time regardless.
	BatchSize int
	// Prof, when non-nil, is the profile of the nearest enclosing
	// instrumented plan operator. Instrument wrappers set it on the
	// Context they pass to their child, so spill/Bloom/pool activity
	// deep inside an operator subtree attributes to the right plan node.
	// All obs.OpProfile methods are nil-safe; tee sites use profFrom.
	Prof *obs.OpProfile
}

// Operator is a Volcano iterator: Open, a stream of Next calls, Close.
type Operator interface {
	Open(ctx *Context) error
	// Next returns the next row. ok=false signals the end of the stream.
	// Returned rows may be reused by the operator on subsequent calls;
	// callers that retain rows must Clone them.
	Next() (row sqltypes.Row, ok bool, err error)
	Close() error
}

// RowIterator is a minimal row stream used by Source factories (table
// scans, TVFs) so that storage-facing code does not depend on Operator.
type RowIterator interface {
	Next() (sqltypes.Row, bool, error)
	Close() error
}

// Source adapts a RowIterator factory into an Operator. The factory runs
// at Open time, so sources are re-openable.
type Source struct {
	Label   string
	Factory func(ctx *Context) (RowIterator, error)

	it        RowIterator
	batchSize int
}

// Open creates the underlying iterator.
func (s *Source) Open(ctx *Context) error {
	it, err := s.Factory(ctx)
	if err != nil {
		return err
	}
	s.it = it
	s.batchSize = ctx.BatchSize
	return nil
}

// Next pulls from the iterator.
func (s *Source) Next() (sqltypes.Row, bool, error) {
	return s.it.Next()
}

// Close releases the iterator.
func (s *Source) Close() error {
	if s.it == nil {
		return nil
	}
	err := s.it.Close()
	s.it = nil
	return err
}

// SliceIterator serves rows from memory; used for VALUES lists, tests, and
// materialized intermediates.
type SliceIterator struct {
	Rows []sqltypes.Row
	pos  int
}

// Next returns the next slice element.
func (s *SliceIterator) Next() (sqltypes.Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close is a no-op.
func (s *SliceIterator) Close() error { return nil }

// NewValues returns an operator yielding the given rows.
func NewValues(rows []sqltypes.Row) *Source {
	return &Source{
		Label: "Constant Scan",
		Factory: func(*Context) (RowIterator, error) {
			return &SliceIterator{Rows: rows}, nil
		},
	}
}

// Filter drops rows whose predicate is not TRUE (three-valued logic: NULL
// fails the filter). Constant conjuncts left behind by predicate pushdown
// are folded once at Open: a constant-TRUE predicate passes rows through
// untested, a constant non-TRUE predicate short-circuits the stream.
type Filter struct {
	Pred  expr.Expr
	Child Operator

	pred  expr.Expr
	pass  bool
	empty bool
}

// Open folds the predicate and opens the child.
func (f *Filter) Open(ctx *Context) error {
	f.pred = expr.FoldConstants(f.Pred)
	f.pass, f.empty = false, false
	if lit, ok := f.pred.(*expr.Lit); ok {
		if expr.Truthy(lit.V) {
			f.pass = true
		} else {
			f.empty = true
		}
	}
	return f.Child.Open(ctx)
}

// Next pulls until a row passes.
func (f *Filter) Next() (sqltypes.Row, bool, error) {
	if f.empty {
		return nil, false, nil
	}
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.pass {
			return row, true, nil
		}
		v, err := f.pred.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if expr.Truthy(v) {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// Project computes output expressions over each input row.
type Project struct {
	Exprs []expr.Expr
	Child Operator

	out sqltypes.Row
}

// Open opens the child.
func (p *Project) Open(ctx *Context) error {
	p.out = make(sqltypes.Row, len(p.Exprs))
	return p.Child.Open(ctx)
}

// Next evaluates the projection.
func (p *Project) Next() (sqltypes.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		p.out[i] = v
	}
	return p.out, true, nil
}

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Limit stops after N rows (TOP n).
type Limit struct {
	N     int64
	Child Operator
	seen  int64
}

// Open opens the child.
func (l *Limit) Open(ctx *Context) error {
	l.seen = 0
	return l.Child.Open(ctx)
}

// Next forwards up to N rows.
func (l *Limit) Next() (sqltypes.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Drain pulls every row from an operator (already opened), cloning them.
// Test and utility helper.
func Drain(op Operator) ([]sqltypes.Row, error) {
	var out []sqltypes.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row.Clone())
	}
}

// Run opens, drains and closes an operator.
func Run(ctx *Context, op Operator) ([]sqltypes.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	rows, err := Drain(op)
	if cerr := op.Close(); err == nil {
		err = cerr
	}
	return rows, err
}

// groupKey renders group-by values into a comparable map key.
func groupKey(vals sqltypes.Row) (string, error) {
	key, err := appendGroupKey(nil, vals)
	if err != nil {
		return "", err
	}
	return string(key), nil
}

func appendGroupKey(dst []byte, vals sqltypes.Row) ([]byte, error) {
	for _, v := range vals {
		switch v.K {
		case sqltypes.KindNull:
			dst = append(dst, 0)
		case sqltypes.KindInt, sqltypes.KindBool:
			dst = append(dst, 1)
			for i := 0; i < 8; i++ {
				dst = append(dst, byte(uint64(v.I)>>(8*i)))
			}
		case sqltypes.KindFloat:
			dst = append(dst, 2)
			dst = appendFloatKey(dst, v.F)
		case sqltypes.KindString:
			dst = append(dst, 3)
			dst = appendLenPrefixed(dst, v.S)
		case sqltypes.KindBytes:
			dst = append(dst, 4)
			dst = appendLenPrefixed(dst, string(v.B))
		default:
			return nil, fmt.Errorf("exec: cannot group on kind %s", v.K)
		}
	}
	return dst, nil
}

func appendLenPrefixed(dst []byte, s string) []byte {
	n := len(s)
	for n >= 0x80 {
		dst = append(dst, byte(n)|0x80)
		n >>= 7
	}
	dst = append(dst, byte(n))
	return append(dst, s...)
}

func appendFloatKey(dst []byte, f float64) []byte {
	// Group equality must match sqltypes.Equal: integral floats equal
	// ints. Encode integral floats as ints.
	if f == float64(int64(f)) {
		dst[len(dst)-1] = 1
		v := int64(f)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(uint64(v)>>(8*i)))
		}
		return dst
	}
	bits := fmt.Sprintf("%x", f)
	return appendLenPrefixed(dst, bits)
}
