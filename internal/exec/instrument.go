package exec

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sqltypes"
	"repro/internal/vec"
)

// instrumentFlushEvery bounds how many produced rows an Instrument
// buffers locally before flushing to the shared atomic counter. One
// wrapper is always driven by a single goroutine, so the local counter
// needs no synchronization; flushing in chunks keeps the always-on
// cost of row counting to roughly one atomic add per thousand rows.
const instrumentFlushEvery = 1024

// profFrom returns the profile of the nearest enclosing instrumented
// operator (nil when the query runs uninstrumented; obs.OpProfile
// methods are nil-safe).
func profFrom(ctx *Context) *obs.OpProfile {
	if ctx == nil {
		return nil
	}
	return ctx.Prof
}

// InstrumentOp wraps op so its output rows (and batches, for batch
// operators) count into prof, and so everything below it attributes
// spill/Bloom/pool work to prof through the Context. Batch operators
// keep their batch capability — the wrapper implements BatchOperator
// and forwards column pruning — so instrumented plans build exactly
// like uninstrumented ones. Wrapping is idempotent per profile: an op
// already instrumented for prof is returned unchanged (partition chains
// are wrapped inside the planner's parts closures, and the plan-level
// walk must not wrap them again).
func InstrumentOp(op Operator, prof *obs.OpProfile) Operator {
	switch w := op.(type) {
	case *Instrument:
		if w.Prof == prof {
			return op
		}
	case *VecInstrument:
		if w.Prof == prof {
			return op
		}
	}
	if bo, ok := op.(BatchOperator); ok {
		return &VecInstrument{Child: bo, Prof: prof}
	}
	return &Instrument{Child: op, Prof: prof}
}

// Instrument is the row-path profile wrapper: it counts rows out of
// Child into Prof and, when Prof.Timed is set, accumulates the wall
// time spent inside Open/Next calls (which is cumulative over the whole
// child subtree — the renderer subtracts child profiles to get self
// time).
type Instrument struct {
	Child Operator
	Prof  *obs.OpProfile

	// childCtx is the Context handed to Child: a copy of the parent's
	// with Prof swapped in. It must outlive Open — children retain the
	// pointer — so it lives on the wrapper, not on Open's stack.
	childCtx Context
	local    int64
}

// Open opens the child under a Context that attributes to Prof.
func (in *Instrument) Open(ctx *Context) error {
	in.local = 0
	in.childCtx = *ctx
	in.childCtx.Prof = in.Prof
	if in.Prof != nil && in.Prof.Timed {
		t0 := time.Now()
		err := in.Child.Open(&in.childCtx)
		in.Prof.WallNS.Add(int64(time.Since(t0)))
		return err
	}
	return in.Child.Open(&in.childCtx)
}

// Next forwards to the child, counting produced rows.
func (in *Instrument) Next() (sqltypes.Row, bool, error) {
	if in.Prof != nil && in.Prof.Timed {
		t0 := time.Now()
		row, ok, err := in.Child.Next()
		in.Prof.WallNS.Add(int64(time.Since(t0)))
		if ok {
			in.bump()
		}
		return row, ok, err
	}
	row, ok, err := in.Child.Next()
	if ok {
		in.bump()
	}
	return row, ok, err
}

func (in *Instrument) bump() {
	in.local++
	if in.local >= instrumentFlushEvery {
		in.Prof.AddRows(in.local)
		in.local = 0
	}
}

// Close flushes the buffered row count and closes the child. Profiles
// are read after the query finishes (every operator closed), so the
// flush here makes the counters exact.
func (in *Instrument) Close() error {
	if in.local > 0 {
		in.Prof.AddRows(in.local)
		in.local = 0
	}
	return in.Child.Close()
}

// PruneColumns forwards pruning to row-path children that support it
// (RowShim above a batch scan), so wrapping never hides the capability.
func (in *Instrument) PruneColumns(needed []bool) {
	if cp, ok := in.Child.(ColumnPruner); ok {
		cp.PruneColumns(needed)
	}
}

// VecInstrument is the batch-path profile wrapper. It implements
// BatchOperator so batch pipelines stay batch pipelines when
// instrumented, and forwards PruneColumns so column pruning below
// aggregates keeps working through the wrapper.
type VecInstrument struct {
	Child BatchOperator
	Prof  *obs.OpProfile

	childCtx Context
	local    int64
}

// Open opens the child under a Context that attributes to Prof.
func (in *VecInstrument) Open(ctx *Context) error {
	in.local = 0
	in.childCtx = *ctx
	in.childCtx.Prof = in.Prof
	if in.Prof != nil && in.Prof.Timed {
		t0 := time.Now()
		err := in.Child.Open(&in.childCtx)
		in.Prof.WallNS.Add(int64(time.Since(t0)))
		return err
	}
	return in.Child.Open(&in.childCtx)
}

// NextBatch forwards to the child, counting batches and their selected
// rows.
func (in *VecInstrument) NextBatch() (*vec.Batch, error) {
	if in.Prof != nil && in.Prof.Timed {
		t0 := time.Now()
		b, err := in.Child.NextBatch()
		in.Prof.WallNS.Add(int64(time.Since(t0)))
		in.bumpBatch(b)
		return b, err
	}
	b, err := in.Child.NextBatch()
	in.bumpBatch(b)
	return b, err
}

func (in *VecInstrument) bumpBatch(b *vec.Batch) {
	if b == nil {
		return
	}
	in.Prof.AddBatches(1)
	in.local += int64(b.Len())
	if in.local >= instrumentFlushEvery {
		in.Prof.AddRows(in.local)
		in.local = 0
	}
}

// Next forwards row-at-a-time pulls (consumers above the shim), still
// counting rows.
func (in *VecInstrument) Next() (sqltypes.Row, bool, error) {
	if in.Prof != nil && in.Prof.Timed {
		t0 := time.Now()
		row, ok, err := in.Child.Next()
		in.Prof.WallNS.Add(int64(time.Since(t0)))
		if ok {
			in.bumpRow()
		}
		return row, ok, err
	}
	row, ok, err := in.Child.Next()
	if ok {
		in.bumpRow()
	}
	return row, ok, err
}

func (in *VecInstrument) bumpRow() {
	in.local++
	if in.local >= instrumentFlushEvery {
		in.Prof.AddRows(in.local)
		in.local = 0
	}
}

// Close flushes the buffered row count and closes the child.
func (in *VecInstrument) Close() error {
	if in.local > 0 {
		in.Prof.AddRows(in.local)
		in.local = 0
	}
	return in.Child.Close()
}

// PruneColumns forwards pruning to the child when it supports it.
func (in *VecInstrument) PruneColumns(needed []bool) {
	if cp, ok := in.Child.(ColumnPruner); ok {
		cp.PruneColumns(needed)
	}
}
