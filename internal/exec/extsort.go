package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// External merge sort: Sort and RowNumber buffer rows up to a memory
// budget, spill stably-sorted runs to temp files, and k-way merge the
// runs with a loser tree on Next(). Runs are cut from consecutive input
// spans and the merge breaks key ties by run index, so ORDER BY stays
// stable for equal keys even when runs spill — the same observable order
// as the in-memory stable sort.

// RunStore is an optional SpillStore extension for sorted runs: files
// read exactly once, sequentially, whose iterators bypass the buffer
// pool so a wide merge fan-in cannot evict the workload's hot pages.
type RunStore interface {
	SpillStore
	CreateRun() (SpillFile, error)
}

// RunSpan locates one sealed sorted run inside a multi-run spill file.
type RunSpan struct {
	Start, End int64 // page range [Start, End)
	Rows       int64
	Bytes      int64 // encoded payload bytes
}

// MultiRunFile is a spill file that packs many sorted runs back to back:
// the sorter appends a run's rows, seals it, and later streams each run
// independently. One temp file per sort operator instead of one per run
// keeps a budget-constrained sort from drowning in file churn.
type MultiRunFile interface {
	SpillFile
	SealRun() (RunSpan, error)
	IterRun(RunSpan) (RowIterator, error)
}

// singleColKey reports the column index when the sort key is exactly one
// plain column reference.
func singleColKey(by []SortKey) (int, bool) {
	if len(by) != 1 {
		return 0, false
	}
	c, ok := by[0].Expr.(*expr.Col)
	if !ok {
		return 0, false
	}
	return c.Idx, true
}

// createRun picks the run-flavored file when the store offers one.
func createRun(store SpillStore) (SpillFile, error) {
	if rs, ok := store.(RunStore); ok {
		return rs.CreateRun()
	}
	return store.Create()
}

// extSorter is the shared engine of Sort and RowNumber: it accumulates
// (row, evaluated key) pairs and doubles as the reusable run-writer —
// when the buffer exceeds the budget it is stably sorted, written out as
// one run, and the buffer slices are recycled for the next run.
type extSorter struct {
	by     []SortKey
	budget int64
	spill  SpillStore
	stats  *SortStats
	prof   *obs.OpProfile

	rows   []sqltypes.Row
	keys   []sqltypes.Row
	seqs   []int32 // buffer insertion order, the pdqsort tie-break
	bytes  int64
	sorter runSorter

	// Spilled runs live in one multi-run file when the store supports it
	// (runFile + spans); otherwise one file per run (runs).
	runFile MultiRunFile
	spans   []RunSpan
	runs    []SpillFile
}

// runSorter sorts a run buffer with pdqsort (sort.Sort) instead of the
// O(n·log²n)-moves sort.Stable, using the insertion sequence as an
// explicit tie-break — the output order is identical to a stable sort,
// at a fraction of the element moves.
type runSorter struct {
	rows, keys []sqltypes.Row
	seqs       []int32
	by         []SortKey
}

func (s *runSorter) Len() int { return len(s.rows) }
func (s *runSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
}
func (s *runSorter) Less(i, j int) bool {
	if c := compareKeyRows(s.keys[i], s.keys[j], s.by); c != 0 {
		return c < 0
	}
	return s.seqs[i] < s.seqs[j]
}

func newExtSorter(by []SortKey, budget int64, spill SpillStore, stats *SortStats, prof *obs.OpProfile) *extSorter {
	return &extSorter{by: by, budget: budget, spill: spill, stats: stats, prof: prof}
}

// Add buffers one row (cloned) with its evaluated sort key, spilling a
// run when the buffered bytes exceed the budget. A single plain-column
// key (the dominant ORDER BY shape) borrows a one-value view of the
// cloned row instead of allocating a key row.
func (s *extSorter) Add(row sqltypes.Row) error {
	clone := row.Clone()
	var key sqltypes.Row
	if c, ok := singleColKey(s.by); ok && c < len(clone) {
		key = clone[c : c+1]
	} else {
		key = make(sqltypes.Row, len(s.by))
		for i, k := range s.by {
			v, err := k.Expr.Eval(clone)
			if err != nil {
				return err
			}
			key[i] = v
		}
	}
	s.rows = append(s.rows, clone)
	s.keys = append(s.keys, key)
	s.seqs = append(s.seqs, int32(len(s.seqs)))
	s.bytes += rowMemBytes(clone) + rowMemBytes(key)
	if s.budget > 0 && s.bytes > s.budget {
		return s.spillRun()
	}
	return nil
}

// spillRun sorts the buffer and writes it as one run, recycling the
// buffer for the next span of input. Runs pack into one multi-run file
// when the store's files support sealing; otherwise each run gets its
// own file.
func (s *extSorter) spillRun() error {
	if len(s.rows) == 0 {
		return nil
	}
	if s.spill == nil {
		return fmt.Errorf("exec: sort memory budget %d exceeded and no spill store configured", s.budget)
	}
	s.sortBuffer()
	var f SpillFile
	if s.runFile != nil {
		f = s.runFile
	} else {
		created, err := createRun(s.spill)
		if err != nil {
			return err
		}
		if mrf, ok := created.(MultiRunFile); ok {
			s.runFile = mrf
		}
		f = created
	}
	for _, r := range s.rows {
		if err := f.Append(r); err != nil {
			if s.runFile == nil {
				f.Release()
			}
			return err
		}
	}
	var runBytes int64
	if s.runFile != nil {
		span, err := s.runFile.SealRun()
		if err != nil {
			return err
		}
		s.spans = append(s.spans, span)
		runBytes = span.Bytes
	} else {
		s.runs = append(s.runs, f)
		runBytes = f.Bytes()
	}
	s.stats.SpilledBytes.Add(runBytes)
	s.stats.Runs.Add(1)
	s.stats.SpilledRows.Add(int64(len(s.rows)))
	s.prof.AddSpill(runBytes, 1, int64(len(s.rows)))
	for i := range s.rows {
		s.rows[i], s.keys[i] = nil, nil // release references, keep capacity
	}
	s.rows, s.keys, s.seqs = s.rows[:0], s.keys[:0], s.seqs[:0]
	s.bytes = 0
	return nil
}

func (s *extSorter) sortBuffer() {
	s.sorter.rows, s.sorter.keys, s.sorter.seqs, s.sorter.by = s.rows, s.keys, s.seqs, s.by
	sort.Sort(&s.sorter)
	s.sorter.rows, s.sorter.keys, s.sorter.seqs = nil, nil, nil
}

// keyedSource yields sorted rows together with their precomputed sort
// keys, so a merge exchange stacked on top never re-evaluates key
// expressions. Sort and both extSorter iterators implement it.
type keyedSource interface {
	NextKeyed() (row, key sqltypes.Row, ok bool, err error)
}

// keyedSliceIterator is the in-memory sorted result with its keys.
type keyedSliceIterator struct {
	rows, keys []sqltypes.Row
	pos        int
}

func (it *keyedSliceIterator) Next() (sqltypes.Row, bool, error) {
	row, _, ok, err := it.NextKeyed()
	return row, ok, err
}

func (it *keyedSliceIterator) NextKeyed() (sqltypes.Row, sqltypes.Row, bool, error) {
	if it.pos >= len(it.rows) {
		return nil, nil, false, nil
	}
	it.pos++
	return it.rows[it.pos-1], it.keys[it.pos-1], true, nil
}

func (it *keyedSliceIterator) Close() error { return nil }

// Finish seals the input and returns the sorted stream: a zero-copy
// in-memory iterator when nothing spilled, otherwise a loser-tree merge
// over the runs plus the sorted in-memory tail (which holds the latest
// input rows and therefore merges with the highest tie-break index).
func (s *extSorter) Finish() (RowIterator, error) {
	s.stats.Sorts.Add(1)
	s.sortBuffer()
	if len(s.runs) == 0 && len(s.spans) == 0 {
		return &keyedSliceIterator{rows: s.rows, keys: s.keys}, nil
	}
	cursors := make([]mergeCursor, 0, len(s.runs)+len(s.spans)+1)
	for _, span := range s.spans {
		it, err := s.runFile.IterRun(span)
		if err != nil {
			return nil, err
		}
		cursors = append(cursors, &streamCursor{next: it.Next, by: s.by})
	}
	for _, f := range s.runs {
		it, err := f.Iter()
		if err != nil {
			return nil, err
		}
		cursors = append(cursors, &streamCursor{next: it.Next, by: s.by})
	}
	if len(s.rows) > 0 {
		cursors = append(cursors, &memCursor{rows: s.rows, keys: s.keys})
	}
	return newLoserTree(cursors, s.by, s.stats), nil
}

// Release frees every spilled run (Close and error paths).
func (s *extSorter) Release() {
	if s.runFile != nil {
		s.runFile.Release()
		s.runFile = nil
	}
	for _, f := range s.runs {
		f.Release()
	}
	s.runs, s.spans = nil, nil
	s.rows, s.keys = nil, nil
}

// mergeCursor is one sorted input of a loser-tree merge. Cursors are
// advanced lazily — the previous winner's row stays valid until the next
// pull — so sources may reuse their row buffers per the Operator
// contract.
type mergeCursor interface {
	// advance steps to the next row; the cursor reports done once the
	// source is exhausted.
	advance() error
	done() bool
	// cur returns the current row and its evaluated sort key.
	cur() (row, key sqltypes.Row)
}

// streamCursor adapts a row stream, evaluating sort keys as rows arrive
// (single plain-column keys borrow a view of the row instead).
type streamCursor struct {
	next func() (sqltypes.Row, bool, error)
	by   []SortKey
	row  sqltypes.Row
	key  sqltypes.Row
	eof  bool
}

func (c *streamCursor) advance() error {
	row, ok, err := c.next()
	if err != nil {
		return err
	}
	if !ok {
		c.eof, c.row = true, nil
		return nil
	}
	c.row = row
	if ci, ok := singleColKey(c.by); ok && ci < len(row) {
		c.key = row[ci : ci+1]
		return nil
	}
	if c.key == nil || len(c.key) != len(c.by) {
		c.key = make(sqltypes.Row, len(c.by))
	}
	for i, k := range c.by {
		v, err := k.Expr.Eval(row)
		if err != nil {
			return err
		}
		c.key[i] = v
	}
	return nil
}

func (c *streamCursor) done() bool                        { return c.eof }
func (c *streamCursor) cur() (sqltypes.Row, sqltypes.Row) { return c.row, c.key }

// keyedCursor reads a keyedSource (a per-partition Sort), reusing its
// precomputed keys instead of re-evaluating the sort expressions per
// merged row.
type keyedCursor struct {
	src      keyedSource
	row, key sqltypes.Row
	eof      bool
}

func (c *keyedCursor) advance() error {
	row, key, ok, err := c.src.NextKeyed()
	if err != nil {
		return err
	}
	if !ok {
		c.eof, c.row, c.key = true, nil, nil
		return nil
	}
	c.row, c.key = row, key
	return nil
}

func (c *keyedCursor) done() bool                        { return c.eof }
func (c *keyedCursor) cur() (sqltypes.Row, sqltypes.Row) { return c.row, c.key }

// memCursor serves the sorter's in-memory tail, whose keys are already
// evaluated.
type memCursor struct {
	rows, keys []sqltypes.Row
	pos        int
	eof        bool
}

func (c *memCursor) advance() error {
	if c.pos >= len(c.rows) {
		c.eof = true
		return nil
	}
	c.pos++
	return nil
}

func (c *memCursor) done() bool { return c.eof }
func (c *memCursor) cur() (sqltypes.Row, sqltypes.Row) {
	return c.rows[c.pos-1], c.keys[c.pos-1]
}

// loserTree is a tournament tree over k sorted cursors: node[0] holds
// the overall winner and each internal node the loser of its subtree, so
// replacing the winner costs one leaf-to-root path of ⌈log₂k⌉
// comparisons instead of the 2·log₂k of a binary heap. Ties break by
// cursor index, which is what makes spilled sorts stable (earlier runs
// hold earlier input rows).
type loserTree struct {
	cursors []mergeCursor
	by      []SortKey
	node    []int // node[0] winner; node[1..k-1] subtree losers
	stats   *SortStats
	started bool
}

func newLoserTree(cursors []mergeCursor, by []SortKey, stats *SortStats) *loserTree {
	return &loserTree{cursors: cursors, by: by, node: make([]int, len(cursors)), stats: stats}
}

// beats reports whether cursor a's current row sorts before cursor b's.
// Exhausted cursors lose to everything, so they sink to the leaves.
func (t *loserTree) beats(a, b int) bool {
	ca, cb := t.cursors[a], t.cursors[b]
	if ca.done() {
		return false
	}
	if cb.done() {
		return true
	}
	_, ka := ca.cur()
	_, kb := cb.cur()
	if c := compareKeyRows(ka, kb, t.by); c != 0 {
		return c < 0
	}
	return a < b // stability: lower run index = earlier input
}

// replay re-runs the tournament along cursor i's leaf-to-root path. A -1
// node is an empty init slot: the incumbent parks there and the walk
// stops (the sibling's walk completes the comparison later).
func (t *loserTree) replay(i int) {
	winner := i
	for n := (len(t.cursors) + i) / 2; n >= 1; n /= 2 {
		if t.node[n] < 0 {
			t.node[n] = winner
			return
		}
		if t.beats(t.node[n], winner) {
			winner, t.node[n] = t.node[n], winner
		}
	}
	t.node[0] = winner
}

// Next pulls the merged stream. The previous winner advances lazily so
// its returned row stayed valid across the last pull.
func (t *loserTree) Next() (sqltypes.Row, bool, error) {
	row, _, ok, err := t.NextKeyed()
	return row, ok, err
}

// NextKeyed pulls the merged stream with the winner's sort key.
func (t *loserTree) NextKeyed() (sqltypes.Row, sqltypes.Row, bool, error) {
	if !t.started {
		t.started = true
		for i := 1; i < len(t.node); i++ {
			t.node[i] = -1
		}
		for i := range t.cursors {
			if err := t.cursors[i].advance(); err != nil {
				return nil, nil, false, err
			}
		}
		for i := range t.cursors {
			t.replay(i)
		}
	} else {
		w := t.node[0]
		if err := t.cursors[w].advance(); err != nil {
			return nil, nil, false, err
		}
		t.replay(w)
	}
	w := t.node[0]
	if t.cursors[w].done() {
		return nil, nil, false, nil
	}
	row, key := t.cursors[w].cur()
	t.stats.MergeRows.Add(1)
	return row, key, true, nil
}

// Close satisfies RowIterator; run files are released by their owner.
func (t *loserTree) Close() error { return nil }

// MergeSorted is the order-preserving exchange above per-partition
// sorts: children Open concurrently (each per-partition Sort drains and
// sorts during Open), then their sorted streams merge by the sort keys.
// Key ties break by child index, so a parallel sort over a heap's
// sequential page-range partitions emits equal keys in table order —
// identical to the serial stable sort.
//
// A child that sorted fully in memory hands its (rows, keys) buffers to
// the merge, which then indexes the arrays directly; children with
// spilled runs stream through their own run merge.
type MergeSorted struct {
	Keys     []SortKey
	Children []Operator

	it     RowIterator
	opened []bool
}

// Open opens all children in parallel and builds the merge tree. On a
// single-P runtime the opens run sequentially instead: the sorts are
// CPU-bound, so goroutines could only add scheduling latency and cache
// interleave.
func (m *MergeSorted) Open(ctx *Context) error {
	m.opened = make([]bool, len(m.Children))
	errs := make([]error, len(m.Children))
	if runtime.GOMAXPROCS(0) == 1 {
		for i, ch := range m.Children {
			errs[i] = ch.Open(ctx)
		}
	} else {
		var wg sync.WaitGroup
		for i, ch := range m.Children {
			wg.Add(1)
			go func(i int, ch Operator) {
				defer wg.Done()
				errs[i] = ch.Open(ctx)
			}(i, ch)
		}
		wg.Wait()
	}
	var firstErr error
	for i, err := range errs {
		if err == nil {
			m.opened[i] = true
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		m.closeChildren()
		return firstErr
	}
	cursors := make([]mergeCursor, len(m.Children))
	for i, ch := range m.Children {
		// Buffer fast path: a child that sorted fully in memory hands its
		// (rows, keys) arrays over, so merging indexes slices directly
		// instead of calling down the child's iterator chain per row.
		if s, ok := ch.(*Sort); ok {
			if rows, keys, ok := s.sortedBuffers(); ok {
				cursors[i] = &memCursor{rows: rows, keys: keys}
				continue
			}
		}
		if ks, ok := ch.(keyedSource); ok {
			cursors[i] = &keyedCursor{src: ks}
		} else {
			cursors[i] = &streamCursor{next: ch.Next, by: m.Keys}
		}
	}
	m.it = newLoserTree(cursors, m.Keys, &statsFrom(ctx).Sort)
	return nil
}

// Next returns the next globally ordered row.
func (m *MergeSorted) Next() (sqltypes.Row, bool, error) {
	if m.it == nil {
		return nil, false, nil
	}
	return m.it.Next()
}

// NextKeyed implements keyedSource for operators stacked above (a
// streaming RowNumber never re-evaluates the window ordering).
func (m *MergeSorted) NextKeyed() (sqltypes.Row, sqltypes.Row, bool, error) {
	if m.it == nil {
		return nil, nil, false, nil
	}
	return m.it.(keyedSource).NextKeyed()
}

func (m *MergeSorted) closeChildren() error {
	var firstErr error
	for i, ch := range m.Children {
		if !m.opened[i] {
			continue
		}
		m.opened[i] = false
		if err := ch.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close closes the children.
func (m *MergeSorted) Close() error {
	m.it = nil
	return m.closeChildren()
}
