package exec

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// randomSortInput builds rows of (key INT or NULL, tag STRING, seq INT)
// where seq records input position so tests can check stability.
func randomSortInput(rng *rand.Rand, n, keySpace int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		key := sqltypes.NewInt(int64(rng.Intn(keySpace)))
		if rng.Intn(20) == 0 {
			key = sqltypes.Null
		}
		rows[i] = sqltypes.Row{key, str(fmt.Sprintf("tag-%06d", rng.Intn(1000))), i64(int64(i))}
	}
	return rows
}

// splitSpans cuts rows into n contiguous spans — the shape of heap
// page-range partitions, whose order the MergeSorted child-index
// tie-break relies on (splitRows deals round-robin, which models a join
// exchange, not a partitioned scan).
func splitSpans(rows []sqltypes.Row, n int) []Operator {
	ops := make([]Operator, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := len(rows)*i/n, len(rows)*(i+1)/n
		ops = append(ops, NewValues(rows[lo:hi]))
	}
	return ops
}

func runStats(t *testing.T, op Operator, stats *ExecStats) []sqltypes.Row {
	t.Helper()
	rows, err := Run(&Context{DOP: 4, Stats: stats}, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestExternalSortSpillEquivalence: a sort whose input far exceeds the
// budget must spill runs and produce the exact sequence (including
// equal-key order) of the in-memory sort.
func TestExternalSortSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	input := randomSortInput(rng, 5000, 40)
	keys := []SortKey{{Expr: col(0)}, {Expr: col(1), Desc: true}}

	inMem := runStats(t, &Sort{Keys: keys, Child: NewValues(input)}, &ExecStats{})

	stats := &ExecStats{}
	spilled := runStats(t, &Sort{
		Keys: keys, Child: NewValues(input),
		MemoryBudget: 16 << 10, Spill: newTestSpillStore(t),
	}, stats)
	if stats.Sort.Runs.Load() == 0 {
		t.Fatal("16 KB budget over ~5000 rows did not spill any runs")
	}
	if stats.Sort.SpilledRows.Load() == 0 || stats.Sort.SpilledBytes.Load() == 0 {
		t.Fatalf("spill counters did not advance: %+v", stats.Sort.Snapshot())
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatalf("spilled sort differs from in-memory (%d vs %d rows)", len(spilled), len(inMem))
	}
	// Stability: among equal (key, tag) pairs, input sequence must ascend.
	for i := 1; i < len(spilled); i++ {
		if sqltypes.Compare(spilled[i-1][0], spilled[i][0]) == 0 &&
			sqltypes.Compare(spilled[i-1][1], spilled[i][1]) == 0 &&
			spilled[i-1][2].I >= spilled[i][2].I {
			t.Fatalf("row %d: equal keys out of input order (%v then %v)", i, spilled[i-1], spilled[i])
		}
	}
}

// TestMergeSortedParallelEquivalence: per-partition sorts merged by
// MergeSorted must equal the serial sort, including tie order (children
// are contiguous input spans, ties break by child index).
func TestMergeSortedParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	input := randomSortInput(rng, 3000, 25)
	keys := []SortKey{{Expr: col(0)}}
	want := runStats(t, &Sort{Keys: keys, Child: NewValues(input)}, &ExecStats{})

	for _, budget := range []int64{0, 8 << 10} {
		chains := splitSpans(input, 4)
		sorts := make([]Operator, len(chains))
		var spill SpillStore
		if budget > 0 {
			spill = newTestSpillStore(t)
		}
		for i, ch := range chains {
			sorts[i] = &Sort{Keys: keys, Child: ch, MemoryBudget: budget, Spill: spill}
		}
		stats := &ExecStats{}
		got := runStats(t, &MergeSorted{Keys: keys, Children: sorts}, stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget %d: parallel merge sort differs from serial (%d vs %d rows)",
				budget, len(got), len(want))
		}
		if budget > 0 && stats.Sort.Runs.Load() == 0 {
			t.Fatalf("budget %d: expected spilled runs", budget)
		}
	}
}

// TestExternalSortEmptyAndSingleRun covers the edge shapes: empty input,
// and an input that spills everything leaving an empty in-memory tail.
func TestExternalSortEmptyAndSingleRun(t *testing.T) {
	keys := []SortKey{{Expr: col(0)}}
	rows := runStats(t, &Sort{Keys: keys, Child: NewValues(nil)}, &ExecStats{})
	if len(rows) != 0 {
		t.Fatalf("empty input sorted to %d rows", len(rows))
	}
	// One run exactly: budget of 1 byte spills after every row.
	input := rowsOf(
		[]sqltypes.Value{i64(3)}, []sqltypes.Value{i64(1)}, []sqltypes.Value{i64(2)},
	)
	stats := &ExecStats{}
	rows = runStats(t, &Sort{
		Keys: keys, Child: NewValues(input),
		MemoryBudget: 1, Spill: newTestSpillStore(t),
	}, stats)
	want := []int64{1, 2, 3}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		if rows[i][0].I != w {
			t.Fatalf("rows = %v", rows)
		}
	}
	if stats.Sort.Runs.Load() == 0 {
		t.Fatal("1-byte budget did not spill")
	}
}

// TestSortBudgetWithoutStore: exceeding the budget with no spill store
// must fail cleanly rather than buffer unboundedly.
func TestSortBudgetWithoutStore(t *testing.T) {
	input := randomSortInput(rand.New(rand.NewSource(3)), 500, 10)
	s := &Sort{Keys: []SortKey{{Expr: col(0)}}, Child: NewValues(input), MemoryBudget: 128}
	if err := s.Open(&Context{DOP: 1}); err == nil {
		s.Close()
		t.Fatal("expected budget-without-store error")
	}
	s.Close()
}

// TestRowNumberSpillEquivalence: ROW_NUMBER over a spilled sort must
// number the same rows in the same order as the in-memory path, and the
// streaming (InputSorted) mode must match too.
func TestRowNumberSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	input := randomSortInput(rng, 2000, 30)
	keys := []SortKey{{Expr: col(0), Desc: true}}

	inMem := runStats(t, &RowNumber{OrderBy: keys, Child: NewValues(input)}, &ExecStats{})
	stats := &ExecStats{}
	spilled := runStats(t, &RowNumber{
		OrderBy: keys, Child: NewValues(input),
		MemoryBudget: 8 << 10, Spill: newTestSpillStore(t),
	}, stats)
	if stats.Sort.Runs.Load() == 0 {
		t.Fatal("row-number sort did not spill")
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatal("spilled ROW_NUMBER differs from in-memory")
	}

	chains := splitSpans(input, 3)
	sorts := make([]Operator, len(chains))
	for i, ch := range chains {
		sorts[i] = &Sort{Keys: keys, Child: ch}
	}
	streamed := runStats(t, &RowNumber{
		OrderBy:     keys,
		Child:       &MergeSorted{Keys: keys, Children: sorts},
		InputSorted: true,
	}, &ExecStats{})
	if !reflect.DeepEqual(inMem, streamed) {
		t.Fatal("streaming ROW_NUMBER over MergeSorted differs from in-memory")
	}
}

// failOnOpen errors if the tree ever opens it.
type failOnOpen struct{}

func (f *failOnOpen) Open(*Context) error { return fmt.Errorf("must not open") }
func (f *failOnOpen) Next() (sqltypes.Row, bool, error) {
	return nil, false, fmt.Errorf("must not pull")
}
func (f *failOnOpen) Close() error { return nil }

// TestTopNZeroShortCircuits: TOP 0 can produce no rows, so it must not
// open (let alone drain) its child.
func TestTopNZeroShortCircuits(t *testing.T) {
	op := &TopN{N: 0, Keys: []SortKey{{Expr: col(0)}}, Child: &failOnOpen{}}
	rows, err := Run(&Context{DOP: 1}, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("TOP 0 returned %d rows", len(rows))
	}
}

// TestTopNStillTrims guards the lazy-trim bound: far more input than N
// must never buffer more than 2N rows.
func TestTopNStillTrims(t *testing.T) {
	var input []sqltypes.Row
	for i := 0; i < 1000; i++ {
		input = append(input, sqltypes.Row{i64(int64(1000 - i))})
	}
	op := &TopN{N: 5, Keys: []SortKey{{Expr: col(0)}}, Child: NewValues(input)}
	if err := op.Open(&Context{DOP: 1}); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if len(op.rows) != 5 {
		t.Fatalf("kept %d rows, want 5", len(op.rows))
	}
	row, ok, err := op.Next()
	if err != nil || !ok || row[0].I != 1 {
		t.Fatalf("first = %v ok=%v err=%v", row, ok, err)
	}
}

// failAfter yields n rows then errors — exercises the Open error path
// after runs have spilled.
type failAfter struct {
	n    int
	seen int
}

func (f *failAfter) Open(*Context) error { f.seen = 0; return nil }
func (f *failAfter) Next() (sqltypes.Row, bool, error) {
	if f.seen >= f.n {
		return nil, false, fmt.Errorf("synthetic mid-drain failure")
	}
	f.seen++
	return sqltypes.Row{i64(int64(f.n - f.seen))}, true, nil
}
func (f *failAfter) Close() error { return nil }

// TestSortOpenErrorReleasesRuns: a child error after runs spilled must
// release the temp files even though callers never Close a failed Open.
func TestSortOpenErrorReleasesRuns(t *testing.T) {
	dir := t.TempDir()
	store := storageSpillStore{storage.NewSpillManager(dir, storage.NewBufferPool(64))}
	s := &Sort{
		Keys:  []SortKey{{Expr: col(0)}},
		Child: &failAfter{n: 500},
		// ~1 KB budget: plenty of runs spill before the failure.
		MemoryBudget: 1 << 10,
		Spill:        store,
	}
	err := s.Open(&Context{DOP: 1})
	if err == nil {
		s.Close()
		t.Fatal("expected mid-drain failure")
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill files leaked after failed Open", len(entries))
	}
}
