package consensus

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func q(n int) string { return string(rune(seq.PhredOffset + n)) }

func TestCallBaseMajority(t *testing.T) {
	b, qual := CallBase([]byte("AAAT"), []byte(strings.Repeat(q(30), 4)))
	if b != 'A' {
		t.Errorf("called %c", b)
	}
	if qual == 0 {
		t.Error("confident call with quality 0")
	}
}

func TestCallBaseQualityWeighted(t *testing.T) {
	// One high-quality G outvotes two low-quality As.
	b, _ := CallBase([]byte("AAG"), []byte(q(2)+q(2)+q(40)))
	if b != 'G' {
		t.Errorf("called %c, want G (quality-weighted)", b)
	}
}

func TestCallBaseAllN(t *testing.T) {
	b, qual := CallBase([]byte("NN"), []byte(q(30)+q(30)))
	if b != 'N' || qual != 0 {
		t.Errorf("called %c q%d", b, qual)
	}
}

func simpleReads() []AlignedRead {
	//            0123456789
	// ref-ish:   ACGTACGTAC
	return []AlignedRead{
		{Chrom: "chr1", Pos: 0, Seq: "ACGTA", Qual: strings.Repeat(q(30), 5)},
		{Chrom: "chr1", Pos: 2, Seq: "GTACG", Qual: strings.Repeat(q(30), 5)},
		{Chrom: "chr1", Pos: 5, Seq: "CGTAC", Qual: strings.Repeat(q(30), 5)},
	}
}

func TestSlidingCallerBasic(t *testing.T) {
	c := NewSlidingCaller()
	for _, r := range simpleReads() {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	res := c.Finish()
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	if string(res[0].Seq) != "ACGTACGTAC" {
		t.Errorf("consensus = %s", res[0].Seq)
	}
	if res[0].Start != 0 || res[0].Chrom != "chr1" {
		t.Errorf("span = %+v", res[0])
	}
}

func TestPivotMatchesSliding(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := genRef(rng, 2000)
	reads := sampleReads(rng, ref, 400, 36, 0.01)
	sortReads(reads)

	pivot, err := CallPivot(reads)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSlidingCaller()
	for _, r := range reads {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	sliding := c.Finish()
	if len(pivot) != len(sliding) {
		t.Fatalf("pivot %d results, sliding %d", len(pivot), len(sliding))
	}
	for i := range pivot {
		if pivot[i].Chrom != sliding[i].Chrom || pivot[i].Start != sliding[i].Start {
			t.Fatalf("span %d: %+v vs %+v", i, pivot[i], sliding[i])
		}
		if string(pivot[i].Seq) != string(sliding[i].Seq) {
			t.Fatalf("result %d sequences differ", i)
		}
		for j := range pivot[i].Quals {
			if pivot[i].Quals[j] != sliding[i].Quals[j] {
				t.Fatalf("result %d quality %d differs", i, j)
			}
		}
	}
}

func TestPivotMatchesSlidingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := genRef(rng, 300)
		reads := sampleReads(rng, ref, 60, 12, 0.05)
		sortReads(reads)
		pivot, err := CallPivot(reads)
		if err != nil {
			return false
		}
		c := NewSlidingCaller()
		for _, r := range reads {
			if err := c.Add(r); err != nil {
				return false
			}
		}
		sliding := c.Finish()
		if len(pivot) != len(sliding) {
			return false
		}
		for i := range pivot {
			if string(pivot[i].Seq) != string(sliding[i].Seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSlidingWindowBounded(t *testing.T) {
	// The whole point of the sliding window: state stays ~read-length even
	// over long chromosomes (vs the pivot's full materialization).
	rng := rand.New(rand.NewSource(5))
	ref := genRef(rng, 50_000)
	reads := sampleReads(rng, ref, 5000, 36, 0)
	sortReads(reads)
	c := NewSlidingCaller()
	maxWindow := 0
	for _, r := range reads {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
		if w := c.WindowSize(); w > maxWindow {
			maxWindow = w
		}
	}
	c.Finish()
	if maxWindow > 3*36 {
		t.Errorf("window grew to %d positions; not bounded by read length", maxWindow)
	}
}

func TestSlidingCallerRejectsUnsorted(t *testing.T) {
	c := NewSlidingCaller()
	c.Add(AlignedRead{Chrom: "chr1", Pos: 100, Seq: "ACGT", Qual: "IIII"})
	if err := c.Add(AlignedRead{Chrom: "chr1", Pos: 50, Seq: "ACGT", Qual: "IIII"}); err == nil {
		t.Error("out-of-order position accepted")
	}
	c2 := NewSlidingCaller()
	c2.Add(AlignedRead{Chrom: "chr2", Pos: 1, Seq: "AC", Qual: "II"})
	if err := c2.Add(AlignedRead{Chrom: "chr1", Pos: 1, Seq: "AC", Qual: "II"}); err == nil {
		t.Error("out-of-order chromosome accepted")
	}
}

func TestSlidingCallerGap(t *testing.T) {
	c := NewSlidingCaller()
	c.Add(AlignedRead{Chrom: "chr1", Pos: 0, Seq: "AAAA", Qual: strings.Repeat(q(30), 4)})
	c.Add(AlignedRead{Chrom: "chr1", Pos: 10, Seq: "CCCC", Qual: strings.Repeat(q(30), 4)})
	res := c.Finish()
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	if string(res[0].Seq) != "AAAANNNNNNCCCC" {
		t.Errorf("gapped consensus = %s", res[0].Seq)
	}
}

func TestMultipleChromosomes(t *testing.T) {
	c := NewSlidingCaller()
	c.Add(AlignedRead{Chrom: "chr1", Pos: 5, Seq: "AA", Qual: q(30) + q(30)})
	c.Add(AlignedRead{Chrom: "chr2", Pos: 0, Seq: "GG", Qual: q(30) + q(30)})
	res := c.Finish()
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Chrom != "chr1" || res[0].Start != 5 || string(res[0].Seq) != "AA" {
		t.Errorf("chr1 = %+v", res[0])
	}
	if res[1].Chrom != "chr2" || string(res[1].Seq) != "GG" {
		t.Errorf("chr2 = %+v", res[1])
	}
}

func TestFindSNPs(t *testing.T) {
	ref := map[string]string{"chr1": "AAAAAAAAAA"}
	results := []Result{{
		Chrom: "chr1", Start: 2,
		Seq:   []byte("AAGAN"),
		Quals: []seq.Quality{40, 40, 40, 2, 0},
	}}
	snps := FindSNPs(results, ref, 20)
	if len(snps) != 1 {
		t.Fatalf("snps = %+v", snps)
	}
	s := snps[0]
	if s.Pos != 4 || s.RefBase != 'A' || s.AltBase != 'G' || s.Quality != 40 {
		t.Errorf("snp = %+v", s)
	}
}

func TestEndToEndSNPRecovery(t *testing.T) {
	// Plant SNPs in an individual genome, sample reads, and verify that
	// consensus calling recovers them (the 1000 Genomes tertiary phase).
	rng := rand.New(rand.NewSource(33))
	ref := genRef(rng, 10_000)
	individual := []byte(ref)
	planted := map[int]byte{}
	for i := 0; i < 20; i++ {
		pos := 100 + i*450
		old := individual[pos]
		var alt byte
		for {
			alt = "ACGT"[rng.Intn(4)]
			if alt != old {
				break
			}
		}
		individual[pos] = alt
		planted[pos] = alt
	}
	reads := sampleReads(rng, string(individual), 4000, 36, 0.005)
	sortReads(reads)
	c := NewSlidingCaller()
	for _, r := range reads {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	snps := FindSNPs(c.Finish(), map[string]string{"chr1": ref}, 25)
	found := 0
	for _, s := range snps {
		if alt, ok := planted[s.Pos]; ok && alt == s.AltBase {
			found++
		} else {
			t.Errorf("false positive SNP at %d (%c->%c q%d)", s.Pos, s.RefBase, s.AltBase, s.Quality)
		}
	}
	if found < 15 {
		t.Errorf("recovered only %d/20 planted SNPs", found)
	}
}

// --- helpers ---

func genRef(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = "ACGT"[rng.Intn(4)]
	}
	return string(b)
}

// sampleReads samples error-prone reads from a reference (single "chr1").
func sampleReads(rng *rand.Rand, ref string, n, readLen int, errRate float64) []AlignedRead {
	var out []AlignedRead
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(ref) - readLen)
		s := []byte(ref[pos : pos+readLen])
		qual := make([]byte, readLen)
		for j := range s {
			qual[j] = byte(seq.PhredOffset + 25 + rng.Intn(15))
			if rng.Float64() < errRate {
				s[j] = "ACGT"[rng.Intn(4)]
				qual[j] = byte(seq.PhredOffset + 2 + rng.Intn(10))
			}
		}
		out = append(out, AlignedRead{Chrom: "chr1", Pos: pos, Seq: string(s), Qual: string(qual)})
	}
	return out
}

func sortReads(reads []AlignedRead) {
	sort.Slice(reads, func(a, b int) bool {
		if reads[a].Chrom != reads[b].Chrom {
			return reads[a].Chrom < reads[b].Chrom
		}
		return reads[a].Pos < reads[b].Pos
	})
}
