// Package consensus implements the tertiary analysis of the paper's
// Section 4.2.3 / 5.3.3: calling a consensus sequence from overlapping
// alignments. Two strategies are provided, matching the paper's
// discussion: the conceptually clean but blocking pivot approach
// (expand every alignment into per-position bases, group by position,
// call) and the streaming sliding-window approach that processes
// alignments in ascending position order with bounded state. Their
// results are identical; their cost profiles reproduce the paper's
// finding that the pivot plan "is not practical".
package consensus

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// AlignedRead is one alignment in reference orientation.
type AlignedRead struct {
	Chrom string
	Pos   int // 0-based start on the chromosome
	Seq   string
	Qual  string // Phred+33, same length as Seq
}

// posAccumulator collects quality-weighted votes for one position.
type posAccumulator struct {
	score [4]int32 // quality mass per base code
	nMass int32    // quality mass of N calls (counts toward coverage only)
	cover int32
}

func (p *posAccumulator) add(base byte, qual byte) {
	q := int32(qual) - seq.PhredOffset
	if q < 1 {
		q = 1
	}
	if code, ok := seq.CodeOf(base); ok {
		p.score[code] += q
	} else {
		p.nMass += q
	}
	p.cover++
}

// call picks the consensus base: the base with the largest quality mass;
// its quality is the margin over the runner-up (the standard consensus
// confidence), clamped to the Phred range. Uncovered or all-N positions
// call 'N'.
func (p *posAccumulator) call() (byte, seq.Quality) {
	best, second := -1, -1
	for c := 0; c < 4; c++ {
		if best < 0 || p.score[c] > p.score[best] {
			second = best
			best = c
		} else if second < 0 || p.score[c] > p.score[second] {
			second = c
		}
	}
	if best < 0 || p.score[best] == 0 {
		return 'N', 0
	}
	margin := p.score[best]
	if second >= 0 {
		margin -= p.score[second]
	}
	if margin > seq.MaxQuality {
		margin = seq.MaxQuality
	}
	return seq.SymbolOf(byte(best)), seq.Quality(margin)
}

// BaseAccumulator is the exported per-position accumulator behind the
// CallBase user-defined aggregate: bases are added with their qualities,
// partial accumulators merge (the UDA parallelization contract), and Call
// produces the consensus base with its confidence.
type BaseAccumulator struct {
	acc posAccumulator
}

// Add votes one base observation.
func (b *BaseAccumulator) Add(base, qual byte) { b.acc.add(base, qual) }

// Merge combines another accumulator into this one.
func (b *BaseAccumulator) Merge(o *BaseAccumulator) {
	for c := 0; c < 4; c++ {
		b.acc.score[c] += o.acc.score[c]
	}
	b.acc.nMass += o.acc.nMass
	b.acc.cover += o.acc.cover
}

// Empty reports whether no observation was added.
func (b *BaseAccumulator) Empty() bool { return b.acc.cover == 0 }

// Call produces the consensus base and its confidence.
func (b *BaseAccumulator) Call() (byte, seq.Quality) { return b.acc.call() }

// CallBase is the paper's CallBase(base, qual) building block: it
// aggregates the bases aligned to one position into the consensus call.
func CallBase(bases []byte, quals []byte) (byte, seq.Quality) {
	var acc posAccumulator
	for i := range bases {
		q := byte(seq.PhredOffset + 30)
		if i < len(quals) {
			q = quals[i]
		}
		acc.add(bases[i], q)
	}
	return acc.call()
}

// Result is the consensus for one chromosome.
type Result struct {
	Chrom string
	// Seq holds the called bases over [Start, Start+len(Seq)); positions
	// without coverage inside the span are 'N'.
	Start int
	Seq   []byte
	Quals []seq.Quality
}

// --- Pivot strategy ---

// pivotEntry is one (chrom, pos, base, qual) tuple of the huge
// intermediate result the pivot plan materializes.
type pivotEntry struct {
	chrom int32
	pos   int32
	base  byte
	qual  byte
}

// CallPivot implements Query 3's conceptually clean plan: pivot every
// alignment into per-base tuples, group by (chromosome, position), call
// each group, then assemble. It materializes len(read) tuples per
// alignment — the blocking, disk-heavy intermediate the paper calls out.
func CallPivot(reads []AlignedRead) ([]Result, error) {
	chromIdx := map[string]int32{}
	var chromNames []string
	var tuples []pivotEntry
	for _, r := range reads {
		if len(r.Qual) != len(r.Seq) {
			return nil, fmt.Errorf("consensus: read at %s:%d has qual length %d != seq %d",
				r.Chrom, r.Pos, len(r.Qual), len(r.Seq))
		}
		ci, ok := chromIdx[r.Chrom]
		if !ok {
			ci = int32(len(chromNames))
			chromIdx[r.Chrom] = ci
			chromNames = append(chromNames, r.Chrom)
		}
		for i := 0; i < len(r.Seq); i++ {
			tuples = append(tuples, pivotEntry{
				chrom: ci, pos: int32(r.Pos + i), base: r.Seq[i], qual: r.Qual[i],
			})
		}
	}
	// Group by (chrom, pos): sort the intermediate (the pivot plan's
	// blocking sort), then aggregate runs.
	sort.Slice(tuples, func(a, b int) bool {
		if tuples[a].chrom != tuples[b].chrom {
			return tuples[a].chrom < tuples[b].chrom
		}
		return tuples[a].pos < tuples[b].pos
	})
	var out []Result
	var cur *Result
	var acc posAccumulator
	var curChrom int32 = -1
	var curPos int32 = -1
	flush := func() {
		if cur == nil || curPos < 0 {
			return
		}
		b, q := acc.call()
		// Fill any uncovered gap since the previous called position.
		want := cur.Start + len(cur.Seq)
		for int32(want) < curPos {
			cur.Seq = append(cur.Seq, 'N')
			cur.Quals = append(cur.Quals, 0)
			want++
		}
		cur.Seq = append(cur.Seq, b)
		cur.Quals = append(cur.Quals, q)
		acc = posAccumulator{}
	}
	for _, t := range tuples {
		if t.chrom != curChrom {
			flush()
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &Result{Chrom: chromNames[t.chrom], Start: int(t.pos)}
			curChrom, curPos = t.chrom, t.pos
		} else if t.pos != curPos {
			flush()
			curPos = t.pos
		}
		acc.add(t.base, t.qual)
	}
	flush()
	if cur != nil {
		out = append(out, *cur)
	}
	return out, nil
}

// --- Sliding-window strategy ---

// SlidingCaller consumes alignments in ascending (chrom, pos) order and
// emits consensus with memory bounded by the maximum read length — the
// paper's proposed AssembleConsensus UDA ("a sliding window processing
// technique ... scan over the alignments in order of their starting
// position").
type SlidingCaller struct {
	curChrom string
	start    int // reference position of window[0]
	window   []posAccumulator
	out      []Result
	cur      *Result
	lastPos  int
}

// NewSlidingCaller returns an empty caller.
func NewSlidingCaller() *SlidingCaller {
	return &SlidingCaller{lastPos: -1}
}

// Add consumes one alignment. Alignments must arrive sorted by
// (chromosome, position); out-of-order input is an error.
func (s *SlidingCaller) Add(r AlignedRead) error {
	if len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("consensus: qual/seq length mismatch at %s:%d", r.Chrom, r.Pos)
	}
	if r.Chrom != s.curChrom {
		if s.curChrom != "" && r.Chrom < s.curChrom {
			return fmt.Errorf("consensus: chromosome %q after %q; input must be sorted", r.Chrom, s.curChrom)
		}
		s.flushAll()
		s.curChrom = r.Chrom
		s.start = r.Pos
		s.cur = &Result{Chrom: r.Chrom, Start: r.Pos}
		s.lastPos = r.Pos
	}
	if r.Pos < s.lastPos {
		return fmt.Errorf("consensus: position %d after %d on %s; input must be sorted", r.Pos, s.lastPos, r.Chrom)
	}
	s.lastPos = r.Pos
	// Positions before r.Pos are final: no later read can cover them.
	s.flushBefore(r.Pos)
	// Grow the window to cover the read.
	for s.start+len(s.window) < r.Pos+len(r.Seq) {
		s.window = append(s.window, posAccumulator{})
	}
	off := r.Pos - s.start
	for i := 0; i < len(r.Seq); i++ {
		s.window[off+i].add(r.Seq[i], r.Qual[i])
	}
	return nil
}

// flushBefore finalizes window positions below pos.
func (s *SlidingCaller) flushBefore(pos int) {
	n := pos - s.start
	if n <= 0 {
		return
	}
	if n > len(s.window) {
		n = len(s.window)
	}
	for i := 0; i < n; i++ {
		b, q := s.window[i].call()
		if s.window[i].cover == 0 {
			b, q = 'N', 0
		}
		s.cur.Seq = append(s.cur.Seq, b)
		s.cur.Quals = append(s.cur.Quals, q)
	}
	s.window = s.window[n:]
	s.start += n
	// An uncovered gap up to pos: emit N placeholders so coordinates stay
	// dense within the result span.
	for s.start < pos {
		s.cur.Seq = append(s.cur.Seq, 'N')
		s.cur.Quals = append(s.cur.Quals, 0)
		s.start++
	}
}

func (s *SlidingCaller) flushAll() {
	if s.cur == nil {
		return
	}
	for i := range s.window {
		b, q := s.window[i].call()
		if s.window[i].cover == 0 {
			b, q = 'N', 0
		}
		s.cur.Seq = append(s.cur.Seq, b)
		s.cur.Quals = append(s.cur.Quals, q)
	}
	s.window = s.window[:0]
	s.out = append(s.out, *s.cur)
	s.cur = nil
	s.curChrom = ""
	s.lastPos = -1
}

// Finish flushes remaining state and returns per-chromosome results.
func (s *SlidingCaller) Finish() []Result {
	s.flushAll()
	out := s.out
	s.out = nil
	return out
}

// WindowSize exposes the current window length (tests assert bounded
// state).
func (s *SlidingCaller) WindowSize() int { return len(s.window) }

// SNP is one difference between consensus and reference.
type SNP struct {
	Chrom   string
	Pos     int
	RefBase byte
	AltBase byte
	Quality seq.Quality
}

// FindSNPs compares consensus results against the reference, reporting
// confident differences (quality >= minQuality, excluding N calls) — the
// paper's "looks for variations between individual genomes (single
// nucleotide polymorphisms)".
func FindSNPs(results []Result, ref map[string]string, minQuality seq.Quality) []SNP {
	var out []SNP
	for _, res := range results {
		refSeq, ok := ref[res.Chrom]
		if !ok {
			continue
		}
		for i, b := range res.Seq {
			pos := res.Start + i
			if pos >= len(refSeq) || b == 'N' {
				continue
			}
			if res.Quals[i] < minQuality {
				continue
			}
			if refSeq[pos] != b {
				out = append(out, SNP{
					Chrom: res.Chrom, Pos: pos,
					RefBase: refSeq[pos], AltBase: b,
					Quality: res.Quals[i],
				})
			}
		}
	}
	return out
}
