package fastq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// SRF-style container (paper Section 5.3.1): the Sequence Read Format
// proposal packages level-1 short reads together with "core information
// from the image analysis steps such as intensity and signal-to-noise
// ratio values". This implementation is a compact binary container with
// the same content classes: read name, called bases, qualities, and the
// per-base 4-channel intensities the base caller saw.
//
// Layout:
//
//	header:  "SRF1" | uvarint record count
//	record:  uvarint nameLen | name
//	         uvarint seqLen  | bases | quals (Phred+33, seqLen bytes)
//	         intensities: seqLen * 4 * uint16 (little endian, fixed-point
//	         thousandths)

// SRFMagic identifies the container.
const SRFMagic = "SRF1"

// SRFRecord is one read with its image-analysis intensities.
type SRFRecord struct {
	Name        string
	Seq         string
	Qual        string
	Intensities [][4]uint16 // per base, channel order A,C,G,T
}

// Record converts to the plain FASTQ view.
func (r *SRFRecord) Record() Record {
	return Record{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
}

// Validate checks structural invariants.
func (r *SRFRecord) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("srf: record with empty name")
	}
	if len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("srf: record %q: qual length %d != seq length %d", r.Name, len(r.Qual), len(r.Seq))
	}
	if r.Intensities != nil && len(r.Intensities) != len(r.Seq) {
		return fmt.Errorf("srf: record %q: %d intensity tuples for %d bases", r.Name, len(r.Intensities), len(r.Seq))
	}
	return nil
}

// AvgIntensity returns the mean called-channel intensity (in raw units,
// 1.0 = nominal full signal) — a simple per-read signal summary.
func (r *SRFRecord) AvgIntensity() float64 {
	if len(r.Intensities) == 0 {
		return 0
	}
	total := 0.0
	for _, tuple := range r.Intensities {
		best := tuple[0]
		for _, v := range tuple[1:] {
			if v > best {
				best = v
			}
		}
		total += float64(best) / 1000
	}
	return total / float64(len(r.Intensities))
}

// WriteSRF writes a complete container.
func WriteSRF(w io.Writer, recs []SRFRecord) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	bw.WriteString(SRFMagic)
	writeUvarint(bw, uint64(len(recs)))
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return err
		}
		r := &recs[i]
		writeUvarint(bw, uint64(len(r.Name)))
		bw.WriteString(r.Name)
		writeUvarint(bw, uint64(len(r.Seq)))
		bw.WriteString(r.Seq)
		bw.WriteString(r.Qual)
		var b [2]byte
		for j := 0; j < len(r.Seq); j++ {
			var tuple [4]uint16
			if r.Intensities != nil {
				tuple = r.Intensities[j]
			}
			for _, v := range tuple {
				binary.LittleEndian.PutUint16(b[:], v)
				bw.Write(b[:])
			}
		}
	}
	return bw.Flush()
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [10]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

// ReadSRF parses a complete container.
func ReadSRF(r io.Reader) ([]SRFRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(SRFMagic) || string(data[:4]) != SRFMagic {
		return nil, fmt.Errorf("srf: bad magic")
	}
	pos := 4
	count, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("srf: truncated header")
	}
	pos += n
	out := make([]SRFRecord, 0, count)
	var rec SRFRecord
	for i := uint64(0); i < count; i++ {
		consumed, err := srfEntry(data[pos:], true, &rec)
		if err != nil {
			return nil, err
		}
		if consumed == 0 {
			return nil, fmt.Errorf("srf: truncated record %d", i)
		}
		pos += consumed
		out = append(out, rec)
	}
	return out, nil
}

// SRFRecordEntry returns an EntryFunc for ChunkedScanner that decodes SRF
// records into *rec, skipping the container header transparently — so the
// same streaming TVF machinery that serves FASTQ FileStreams serves SRF
// FileStreams (the paper: "our hybrid approach would naturally extend to
// encapsulate SRF files as FileStreams too").
func SRFRecordEntry(rec *SRFRecord) EntryFunc {
	headerDone := false
	remaining := uint64(0)
	return func(data []byte, atEOF bool) (int, error) {
		if !headerDone {
			if len(data) < 5 {
				if atEOF {
					return 0, fmt.Errorf("srf: truncated header")
				}
				return 0, nil
			}
			if string(data[:4]) != SRFMagic {
				return 0, fmt.Errorf("srf: bad magic")
			}
			count, n := binary.Uvarint(data[4:])
			if n <= 0 {
				if atEOF {
					return 0, fmt.Errorf("srf: truncated header")
				}
				return 0, nil
			}
			headerDone = true
			remaining = count
			return 4 + n, ErrSkipEntry
		}
		if remaining == 0 {
			if len(data) > 0 {
				return 0, fmt.Errorf("srf: %d trailing bytes after final record", len(data))
			}
			return 0, fmt.Errorf("srf: read past declared record count")
		}
		consumed, err := srfEntry(data, atEOF, rec)
		if err != nil || consumed == 0 {
			return 0, err
		}
		remaining--
		return consumed, nil
	}
}

// srfEntry decodes one record; returns 0 when data is incomplete.
func srfEntry(data []byte, atEOF bool, rec *SRFRecord) (int, error) {
	pos := 0
	nameLen, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return srfMore(atEOF)
	}
	pos += n
	if pos+int(nameLen) > len(data) {
		return srfMore(atEOF)
	}
	name := data[pos : pos+int(nameLen)]
	pos += int(nameLen)
	seqLen, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return srfMore(atEOF)
	}
	pos += n
	need := int(seqLen)*2 + int(seqLen)*8
	if pos+need > len(data) {
		return srfMore(atEOF)
	}
	seqB := data[pos : pos+int(seqLen)]
	pos += int(seqLen)
	qualB := data[pos : pos+int(seqLen)]
	pos += int(seqLen)
	intens := make([][4]uint16, seqLen)
	for i := 0; i < int(seqLen); i++ {
		for c := 0; c < 4; c++ {
			intens[i][c] = binary.LittleEndian.Uint16(data[pos:])
			pos += 2
		}
	}
	rec.Name = string(name)
	rec.Seq = string(seqB)
	rec.Qual = string(qualB)
	rec.Intensities = intens
	return pos, nil
}

func srfMore(atEOF bool) (int, error) {
	if atEOF {
		return 0, fmt.Errorf("srf: truncated record at end of file")
	}
	return 0, nil
}
