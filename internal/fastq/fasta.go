package fastq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// FASTAWrap is the conventional line width for FASTA sequence data; the
// paper calls out the "line-wrapped sequences to 60 base pairs per line for
// better readability" as an example of display-oriented formats.
const FASTAWrap = 60

// FastaRecord is one FASTA entry: a ">" header and a (possibly wrapped)
// sequence body.
type FastaRecord struct {
	Name string // header up to the first space
	Desc string // remainder of the header
	Seq  string
}

// FastaReader parses FASTA records.
type FastaReader struct {
	br      *bufio.Reader
	pending string // header of the next record, already consumed
	started bool
	done    bool
}

// NewFastaReader returns a reader consuming r.
func NewFastaReader(r io.Reader) *FastaReader {
	return &FastaReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record, or io.EOF after the last one.
func (r *FastaReader) Next() (FastaRecord, error) {
	if r.done {
		return FastaRecord{}, io.EOF
	}
	header := r.pending
	if !r.started {
		// Find the first header line.
		for {
			line, err := r.readLine()
			if err != nil {
				r.done = true
				return FastaRecord{}, err
			}
			if line == "" {
				continue
			}
			if line[0] != '>' {
				return FastaRecord{}, fmt.Errorf("fasta: expected '>' header, got %q", line)
			}
			header = line
			break
		}
		r.started = true
	}
	var body strings.Builder
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return FastaRecord{}, err
		}
		if line == "" {
			continue
		}
		if line[0] == '>' {
			r.pending = line
			break
		}
		body.WriteString(line)
	}
	rec := FastaRecord{Seq: body.String()}
	head := strings.TrimPrefix(header, ">")
	if i := strings.IndexByte(head, ' '); i >= 0 {
		rec.Name, rec.Desc = head[:i], head[i+1:]
	} else {
		rec.Name = head
	}
	if rec.Name == "" {
		return FastaRecord{}, fmt.Errorf("fasta: record with empty name")
	}
	return rec, nil
}

func (r *FastaReader) readLine() (string, error) {
	line, err := r.br.ReadString('\n')
	if len(line) == 0 && err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// ReadAllFasta slurps all records.
func ReadAllFasta(r io.Reader) ([]FastaRecord, error) {
	fr := NewFastaReader(r)
	var out []FastaRecord
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// FastaWriter emits FASTA records wrapped at FASTAWrap columns.
type FastaWriter struct {
	bw   *bufio.Writer
	Wrap int // columns per sequence line; FASTAWrap if 0
}

// NewFastaWriter returns a writer on w.
func NewFastaWriter(w io.Writer) *FastaWriter {
	return &FastaWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write appends one record.
func (w *FastaWriter) Write(rec FastaRecord) error {
	wrap := w.Wrap
	if wrap <= 0 {
		wrap = FASTAWrap
	}
	w.bw.WriteByte('>')
	w.bw.WriteString(rec.Name)
	if rec.Desc != "" {
		w.bw.WriteByte(' ')
		w.bw.WriteString(rec.Desc)
	}
	w.bw.WriteByte('\n')
	for i := 0; i < len(rec.Seq); i += wrap {
		end := i + wrap
		if end > len(rec.Seq) {
			end = len(rec.Seq)
		}
		w.bw.WriteString(rec.Seq[i:end])
		w.bw.WriteByte('\n')
	}
	return w.flushErr()
}

func (w *FastaWriter) flushErr() error {
	// bufio.Writer latches the first error; surface it without forcing a
	// full flush on every record.
	_, err := w.bw.Write(nil)
	return err
}

// Flush commits buffered output.
func (w *FastaWriter) Flush() error { return w.bw.Flush() }
