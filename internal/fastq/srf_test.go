package fastq

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func sampleSRF(n int, seed int64) []SRFRecord {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SRFRecord, n)
	for i := range out {
		ln := rng.Intn(30) + 6
		seqB := make([]byte, ln)
		qualB := make([]byte, ln)
		intens := make([][4]uint16, ln)
		for j := 0; j < ln; j++ {
			seqB[j] = "ACGTN"[rng.Intn(5)]
			qualB[j] = byte(33 + rng.Intn(40))
			for c := 0; c < 4; c++ {
				intens[j][c] = uint16(rng.Intn(2000))
			}
		}
		out[i] = SRFRecord{
			Name:        itoa(i) + ":read",
			Seq:         string(seqB),
			Qual:        string(qualB),
			Intensities: intens,
		}
	}
	return out
}

func TestSRFRoundTrip(t *testing.T) {
	recs := sampleSRF(50, 1)
	var buf bytes.Buffer
	if err := WriteSRF(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSRF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d mismatched", i)
		}
	}
}

func TestSRFEmptyContainer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSRF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSRF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("%d records from empty container", len(got))
	}
	// Streaming over an empty container yields no entries cleanly.
	var rec SRFRecord
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(buf.Bytes())), SRFRecordEntry(&rec), 16)
	if sc.MoveNext() {
		t.Error("entry from empty container")
	}
	if sc.Err() != nil {
		t.Error(sc.Err())
	}
}

func TestSRFChunkedStreamingMatchesReadSRF(t *testing.T) {
	recs := sampleSRF(120, 2)
	var buf bytes.Buffer
	if err := WriteSRF(&buf, recs); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{32, 256, 1 << 20} {
		var rec SRFRecord
		sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(buf.Bytes())), SRFRecordEntry(&rec), chunk)
		i := 0
		for sc.MoveNext() {
			if rec.Name != recs[i].Name || rec.Seq != recs[i].Seq {
				t.Fatalf("chunk %d: record %d mismatched", chunk, i)
			}
			if !reflect.DeepEqual(rec.Intensities, recs[i].Intensities) {
				t.Fatalf("chunk %d: record %d intensities mismatched", chunk, i)
			}
			i++
		}
		if sc.Err() != nil {
			t.Fatalf("chunk %d: %v", chunk, sc.Err())
		}
		if i != len(recs) {
			t.Fatalf("chunk %d: scanned %d of %d", chunk, i, len(recs))
		}
	}
}

func TestSRFErrors(t *testing.T) {
	if _, err := ReadSRF(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	recs := sampleSRF(3, 3)
	var buf bytes.Buffer
	WriteSRF(&buf, recs)
	data := buf.Bytes()
	// Mid-record truncations must be detected by both readers. (A cut at
	// exactly the header boundary is undetectable for the streaming
	// parser — it sees a well-formed empty stream — so cuts start at 7.)
	for _, cut := range []int{len(data) - 1, len(data) / 2, 7} {
		if _, err := ReadSRF(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("ReadSRF accepted truncation at %d", cut)
		}
		var rec SRFRecord
		sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data[:cut])), SRFRecordEntry(&rec), 64)
		for sc.MoveNext() {
		}
		if sc.Err() == nil {
			t.Errorf("scanner accepted truncation at %d", cut)
		}
	}
	// Trailing garbage after the declared count: ReadSRF is count-driven
	// and ignores it; the scanner rejects it.
	var rec SRFRecord
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(append(append([]byte{}, data...), 0xFF))), SRFRecordEntry(&rec), 64)
	for sc.MoveNext() {
	}
	if sc.Err() == nil {
		t.Error("scanner accepted trailing garbage")
	}
}

func TestSRFValidate(t *testing.T) {
	bad := []SRFRecord{
		{Name: "", Seq: "AC", Qual: "II"},
		{Name: "r", Seq: "AC", Qual: "I"},
		{Name: "r", Seq: "AC", Qual: "II", Intensities: make([][4]uint16, 3)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	var buf bytes.Buffer
	if err := WriteSRF(&buf, bad[:1]); err == nil {
		t.Error("WriteSRF accepted invalid record")
	}
}

func TestSRFAvgIntensity(t *testing.T) {
	rec := SRFRecord{
		Name: "r", Seq: "AC", Qual: "II",
		Intensities: [][4]uint16{{1000, 100, 100, 100}, {100, 2000, 100, 100}},
	}
	if got := rec.AvgIntensity(); got != 1.5 {
		t.Errorf("AvgIntensity = %v, want 1.5", got)
	}
	empty := SRFRecord{Name: "r", Seq: "", Qual: ""}
	if empty.AvgIntensity() != 0 {
		t.Error("empty record intensity != 0")
	}
}
