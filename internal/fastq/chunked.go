package fastq

import (
	"errors"
	"fmt"
	"io"
)

// ByteSource is the random-access contract a FileStream BLOB exposes to the
// query engine — the SqlBytes.GetBytes(offset, buffer, ...) call of the
// paper. GetBytes fills buf starting at file offset off and returns the
// number of bytes copied; 0 (with or without io.EOF) signals end of data.
type ByteSource interface {
	GetBytes(off int64, buf []byte) (int, error)
}

// EntryFunc attempts to parse one file entry from data. It returns the
// number of bytes consumed, which is 0 when data holds only an incomplete
// entry and more input is needed. When atEOF is true no more data will
// come: the function must either consume the remainder or return an error.
// Returning ErrSkipEntry with consumed > 0 advances past non-record bytes
// (container headers) without yielding an entry.
//
// This is the ParseShortReadEntry(...) contract from the paper's iterator
// pseudocode (Section 4.1), generalized over entry formats.
type EntryFunc func(data []byte, atEOF bool) (consumed int, err error)

// ErrSkipEntry signals that the parser consumed bytes that do not form a
// record (e.g. a container header); the scanner advances and parses again.
var ErrSkipEntry = errors.New("fastq: skip entry")

// DefaultChunkSize is the paging buffer size. The paper reads FileStreams
// "in larger chunks of data" rather than line by line; 1 MiB amortizes the
// per-call overhead while staying cache friendly.
const DefaultChunkSize = 1 << 20

// ChunkedScanner implements the streaming paging algorithm of the paper's
// Figure 5 / Section 4.1: a large byte buffer is filled with ReadChunk
// calls, entries are parsed in place, and when the end of the chunk cuts an
// entry in half the incomplete tail is copied to the start of the buffer
// before the next chunk is appended ("paging algorithm").
type ChunkedScanner struct {
	src   ByteSource
	parse EntryFunc

	buf          []byte
	filePos      int64 // next offset to read from src
	bufferPos    int   // parse cursor within buf
	bytesRead    int   // number of valid bytes in buf
	bufferOffset int   // length of the carried-over incomplete entry
	eof          bool
	err          error

	// Entries counts successfully parsed entries; the Section 5.2
	// COUNT(*) experiments read it directly.
	Entries int64
}

// NewChunkedScanner returns a scanner over src using the given entry parser
// and chunk size (DefaultChunkSize if chunkSize <= 0).
func NewChunkedScanner(src ByteSource, parse EntryFunc, chunkSize int) *ChunkedScanner {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ChunkedScanner{src: src, parse: parse, buf: make([]byte, chunkSize)}
}

// readChunk is the paper's Iterator::ReadChunk(): it tops up the buffer
// after bufferOffset carry-over bytes and accounts for them in the count of
// valid bytes.
func (s *ChunkedScanner) readChunk() (int, error) {
	length := len(s.buf) - s.bufferOffset
	read, err := s.src.GetBytes(s.filePos, s.buf[s.bufferOffset:s.bufferOffset+length])
	if err != nil && err != io.EOF {
		return 0, err
	}
	s.filePos += int64(read)
	s.bufferPos = 0
	if read > 0 && s.bufferOffset > 0 {
		read += s.bufferOffset
		s.bufferOffset = 0
	}
	return read, nil
}

// MoveNext advances to the next entry, following the paper's
// Iterator::MoveNext() control flow. It returns false at end of input or on
// error; check Err afterwards.
func (s *ChunkedScanner) MoveNext() bool {
	if s.err != nil {
		return false
	}
	if s.bytesRead == 0 && !s.eof && s.filePos == 0 && s.bufferPos == 0 {
		// Iterator::Create(): prime the buffer on first use.
		s.bytesRead, s.err = s.readChunk()
		if s.err != nil {
			return false
		}
	}
	for s.bytesRead > 0 || s.bufferOffset > 0 {
		if s.bufferPos >= s.bytesRead && !s.eof {
			n, err := s.readChunk()
			if err != nil {
				s.err = err
				return false
			}
			if n == 0 {
				s.eof = true
				if s.bufferOffset == 0 {
					return false
				}
				// Final partial entry: reparse what we carried with atEOF.
				s.bytesRead = s.bufferOffset
				s.bufferOffset = 0
				s.bufferPos = 0
			} else {
				s.bytesRead = n
			}
		}
		if s.bufferPos >= s.bytesRead {
			return false
		}
		consumed, err := s.parse(s.buf[s.bufferPos:s.bytesRead], s.eof)
		if err == ErrSkipEntry && consumed > 0 {
			s.bufferPos += consumed
			continue
		}
		if err != nil {
			s.err = err
			return false
		}
		if consumed > 0 {
			s.bufferPos += consumed
			s.Entries++
			return true
		}
		if s.eof {
			s.err = errors.New("fastq: parser made no progress on final partial entry")
			return false
		}
		// Paging algorithm: move the incomplete entry to the buffer start
		// and trigger the next ReadChunk.
		tail := s.bytesRead - s.bufferPos
		if tail >= len(s.buf) {
			// A single entry larger than the whole buffer: grow it, the
			// equivalent of the paper's 2 GB state headroom for UDTs.
			grown := make([]byte, 2*len(s.buf))
			copy(grown, s.buf[s.bufferPos:s.bytesRead])
			s.buf = grown
		} else {
			copy(s.buf, s.buf[s.bufferPos:s.bytesRead])
		}
		s.bufferOffset = tail
		s.bufferPos = s.bytesRead // forces readChunk on next loop
	}
	return false
}

// Err returns the first error encountered, or nil at clean EOF.
func (s *ChunkedScanner) Err() error { return s.err }

// readerAtSource adapts io.ReaderAt (plain files, in-memory data) to
// ByteSource, so the same scanner serves command-line tools and tests.
type readerAtSource struct{ r io.ReaderAt }

// SourceFromReaderAt wraps an io.ReaderAt as a ByteSource.
func SourceFromReaderAt(r io.ReaderAt) ByteSource { return readerAtSource{r} }

func (s readerAtSource) GetBytes(off int64, buf []byte) (int, error) {
	n, err := s.r.ReadAt(buf, off)
	if err == io.EOF {
		return n, io.EOF
	}
	return n, err
}

// FASTQEntry parses one 4-line FASTQ entry and reports its length in bytes.
// It allocates nothing; use it for COUNT(*)-style scans. The record content
// can be recovered by the caller from the same window if needed.
func FASTQEntry(data []byte, atEOF bool) (int, error) {
	return fastqEntrySpan(data, atEOF, nil)
}

// FASTQRecordEntry returns an EntryFunc that additionally decodes each
// entry into *rec. The strings are copied out of the scan buffer so they
// remain valid after the next MoveNext.
func FASTQRecordEntry(rec *Record) EntryFunc {
	return func(data []byte, atEOF bool) (int, error) {
		return fastqEntrySpan(data, atEOF, rec)
	}
}

func fastqEntrySpan(data []byte, atEOF bool, rec *Record) (int, error) {
	pos := 0
	var lines [4][2]int // start, end offsets of the four lines
	for i := 0; i < 4; i++ {
		start := pos
		for pos < len(data) && data[pos] != '\n' {
			pos++
		}
		if pos >= len(data) {
			if !atEOF {
				return 0, nil // incomplete entry: page in more data
			}
			if i < 3 {
				return 0, fmt.Errorf("fastq: truncated entry: only %d of 4 lines", i+1)
			}
		}
		end := pos
		if end > start && data[end-1] == '\r' {
			end--
		}
		lines[i] = [2]int{start, end}
		if pos < len(data) {
			pos++ // consume '\n'
		}
	}
	nameL, seqL, plusL, qualL := lines[0], lines[1], lines[2], lines[3]
	if nameL[1] == nameL[0] || data[nameL[0]] != '@' {
		return 0, fmt.Errorf("fastq: entry does not start with '@': %q", data[nameL[0]:min(nameL[1], nameL[0]+20)])
	}
	if plusL[1] == plusL[0] || data[plusL[0]] != '+' {
		return 0, fmt.Errorf("fastq: missing '+' separator")
	}
	if seqL[1]-seqL[0] != qualL[1]-qualL[0] {
		return 0, fmt.Errorf("fastq: sequence/quality length mismatch (%d vs %d)",
			seqL[1]-seqL[0], qualL[1]-qualL[0])
	}
	if rec != nil {
		rec.Name = string(data[nameL[0]+1 : nameL[1]])
		rec.Seq = string(data[seqL[0]:seqL[1]])
		rec.Comment = string(data[plusL[0]+1 : plusL[1]])
		rec.Qual = string(data[qualL[0]:qualL[1]])
	}
	return pos, nil
}

// LineEntry counts newline-terminated lines; the simplest EntryFunc, used
// by FASTA scans that only need line counts (Section 5.2's experiment notes
// "the function did not perform any record conversions").
func LineEntry(data []byte, atEOF bool) (int, error) {
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			return i + 1, nil
		}
	}
	if atEOF && len(data) > 0 {
		return len(data), nil
	}
	return 0, nil
}
