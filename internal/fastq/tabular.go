package fastq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AlignmentRecord is one line of the level-2 alignment text format — the
// "human readable text file" a MAQ-style aligner emits after its binary
// output is converted (paper Section 2.1). Tab-separated columns:
//
//	read_name  ref_name  pos  strand  mismatches  mapq  seq  quals
//
// pos is the 0-based position on the reference; strand is '+' or '-'; for
// '-' alignments seq/quals are already reverse-complemented into reference
// orientation.
type AlignmentRecord struct {
	ReadName   string
	RefName    string
	Pos        int64
	Strand     byte
	Mismatches int
	MapQ       int
	Seq        string
	Qual       string
}

// WriteAlignments emits records in the tab-separated text format.
func WriteAlignments(w io.Writer, recs []AlignmentRecord) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for i := range recs {
		if err := writeAlignment(bw, &recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AlignmentWriter streams alignment records to w.
type AlignmentWriter struct{ bw *bufio.Writer }

// NewAlignmentWriter returns a writer on w.
func NewAlignmentWriter(w io.Writer) *AlignmentWriter {
	return &AlignmentWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write appends one record.
func (w *AlignmentWriter) Write(rec *AlignmentRecord) error { return writeAlignment(w.bw, rec) }

// Flush commits buffered output.
func (w *AlignmentWriter) Flush() error { return w.bw.Flush() }

func writeAlignment(bw *bufio.Writer, r *AlignmentRecord) error {
	bw.WriteString(r.ReadName)
	bw.WriteByte('\t')
	bw.WriteString(r.RefName)
	bw.WriteByte('\t')
	bw.WriteString(strconv.FormatInt(r.Pos, 10))
	bw.WriteByte('\t')
	bw.WriteByte(r.Strand)
	bw.WriteByte('\t')
	bw.WriteString(strconv.Itoa(r.Mismatches))
	bw.WriteByte('\t')
	bw.WriteString(strconv.Itoa(r.MapQ))
	bw.WriteByte('\t')
	bw.WriteString(r.Seq)
	bw.WriteByte('\t')
	bw.WriteString(r.Qual)
	return bw.WriteByte('\n')
}

// AlignmentReader parses the alignment text format.
type AlignmentReader struct {
	br   *bufio.Reader
	line int
}

// NewAlignmentReader returns a reader consuming r.
func NewAlignmentReader(r io.Reader) *AlignmentReader {
	return &AlignmentReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record, or io.EOF after the last one.
func (r *AlignmentReader) Next() (AlignmentRecord, error) {
	var rec AlignmentRecord
	line, err := r.br.ReadString('\n')
	if len(line) == 0 && err != nil {
		return rec, err
	}
	r.line++
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Split(line, "\t")
	if len(fields) != 8 {
		return rec, fmt.Errorf("alignment: line %d: %d fields, want 8", r.line, len(fields))
	}
	rec.ReadName, rec.RefName = fields[0], fields[1]
	rec.Pos, err = strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("alignment: line %d: bad pos %q", r.line, fields[2])
	}
	if len(fields[3]) != 1 || (fields[3][0] != '+' && fields[3][0] != '-') {
		return rec, fmt.Errorf("alignment: line %d: bad strand %q", r.line, fields[3])
	}
	rec.Strand = fields[3][0]
	rec.Mismatches, err = strconv.Atoi(fields[4])
	if err != nil {
		return rec, fmt.Errorf("alignment: line %d: bad mismatch count %q", r.line, fields[4])
	}
	rec.MapQ, err = strconv.Atoi(fields[5])
	if err != nil {
		return rec, fmt.Errorf("alignment: line %d: bad mapq %q", r.line, fields[5])
	}
	rec.Seq, rec.Qual = fields[6], fields[7]
	if len(rec.Seq) != len(rec.Qual) {
		return rec, fmt.Errorf("alignment: line %d: seq/qual length mismatch", r.line)
	}
	return rec, nil
}

// ReadAllAlignments slurps every record.
func ReadAllAlignments(r io.Reader) ([]AlignmentRecord, error) {
	ar := NewAlignmentReader(r)
	var out []AlignmentRecord
	for {
		rec, err := ar.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// TagRecord is one line of the unique-tag ("binning") output of a digital
// gene expression study: the tag sequence and its observed frequency.
type TagRecord struct {
	Seq       string
	Frequency int64
}

// WriteTags emits tags as "seq<TAB>frequency" lines.
func WriteTags(w io.Writer, tags []TagRecord) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, t := range tags {
		bw.WriteString(t.Seq)
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(t.Frequency, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTags parses the tag format.
func ReadTags(r io.Reader) ([]TagRecord, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []TagRecord
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		lineNo++
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, '\t')
		if i < 0 {
			return nil, fmt.Errorf("tags: line %d: missing tab", lineNo)
		}
		freq, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tags: line %d: bad frequency %q", lineNo, line[i+1:])
		}
		out = append(out, TagRecord{Seq: line[:i], Frequency: freq})
	}
}

// ExpressionRecord is one line of the level-3 gene expression output: a
// gene and the total frequency and count of tags aligned to it (the result
// rows of the paper's Query 2).
type ExpressionRecord struct {
	Gene           string
	TotalFrequency int64
	TagCount       int64
}

// WriteExpression emits expression records as tab-separated lines.
func WriteExpression(w io.Writer, recs []ExpressionRecord) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, e := range recs {
		bw.WriteString(e.Gene)
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(e.TotalFrequency, 10))
		bw.WriteByte('\t')
		bw.WriteString(strconv.FormatInt(e.TagCount, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadExpression parses the expression format.
func ReadExpression(r io.Reader) ([]ExpressionRecord, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []ExpressionRecord
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		lineNo++
		fields := strings.Split(strings.TrimRight(line, "\r\n"), "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("expression: line %d: %d fields, want 3", lineNo, len(fields))
		}
		tf, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expression: line %d: bad total %q", lineNo, fields[1])
		}
		tc, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expression: line %d: bad count %q", lineNo, fields[2])
		}
		out = append(out, ExpressionRecord{Gene: fields[0], TotalFrequency: tf, TagCount: tc})
	}
}
