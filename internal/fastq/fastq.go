// Package fastq implements the text formats of the sequencing pipeline —
// FASTQ and FASTA for level-1 short reads, the tab-separated alignment and
// tag formats for level-2/3 data — together with the chunked, paging file
// parser of the paper's Figure 5 that lets a table-valued function stream
// through a FileStream BLOB without reading individual lines.
package fastq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is one FASTQ entry: four lines, "@name", the sequence, "+comment",
// and the printable Phred+33 quality string (paper Figure 3).
type Record struct {
	Name    string // without the leading '@'
	Seq     string
	Comment string // content of the '+' line, usually empty
	Qual    string // same length as Seq
}

// Validate checks the structural invariants of a record.
func (r *Record) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("fastq: record with empty name")
	}
	if len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("fastq: record %q: quality length %d != sequence length %d",
			r.Name, len(r.Qual), len(r.Seq))
	}
	return nil
}

// Reader parses FASTQ records from a buffered stream. It is the simple
// line-oriented reader ("StreamReader" in the paper's Section 5.2
// comparison); see ChunkedScanner for the high-throughput variant.
type Reader struct {
	br   *bufio.Reader
	line int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record, or io.EOF after the last one.
func (r *Reader) Next() (Record, error) {
	name, err := r.readLine()
	if err != nil {
		return Record{}, err // io.EOF here means clean end of file
	}
	if len(name) == 0 || name[0] != '@' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '@name', got %q", r.line, name)
	}
	seqLine, err := r.contentLine("sequence")
	if err != nil {
		return Record{}, err
	}
	plus, err := r.contentLine("'+' separator")
	if err != nil {
		return Record{}, err
	}
	if len(plus) == 0 || plus[0] != '+' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '+', got %q", r.line, plus)
	}
	qual, err := r.contentLine("quality")
	if err != nil {
		return Record{}, err
	}
	rec := Record{Name: name[1:], Seq: seqLine, Comment: plus[1:], Qual: qual}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func (r *Reader) readLine() (string, error) {
	for {
		line, err := r.br.ReadString('\n')
		if len(line) == 0 && err != nil {
			return "", err
		}
		r.line++
		line = strings.TrimRight(line, "\r\n")
		if line == "" && err == nil {
			continue // tolerate blank lines between records
		}
		return line, nil
	}
}

// contentLine reads a mandatory line mid-record, turning EOF into a
// truncation error.
func (r *Reader) contentLine(what string) (string, error) {
	line, err := r.readLine()
	if err == io.EOF {
		return "", fmt.Errorf("fastq: unexpected end of file, missing %s line", what)
	}
	return line, err
}

// ReadAll slurps every record; convenient in tests and the sequential
// script baselines that "first read all data into main memory" (Figure 7).
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewReader(r)
	var out []Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Writer emits FASTQ records.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	w.bw.WriteByte('@')
	w.bw.WriteString(rec.Name)
	w.bw.WriteByte('\n')
	w.bw.WriteString(rec.Seq)
	w.bw.WriteString("\n+")
	w.bw.WriteString(rec.Comment)
	w.bw.WriteByte('\n')
	w.bw.WriteString(rec.Qual)
	return w.bw.WriteByte('\n')
}

// Flush commits buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }
