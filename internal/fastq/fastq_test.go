package fastq

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample is the FASTQ sample from the paper's Figure 3 (completed
// with the second record's remaining lines).
const paperExample = `@IL4_855:1:1:954:659
GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA
+
>>>>>>>>>>>>>>>6>>>>>>>;>>>>>>;>>;>;
@IL4_855:1:1:497:759
ACGTACGTACGTACGTACGTACGTACGTACGTACGT
+
IIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII
`

func TestReaderPaperExample(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "IL4_855:1:1:954:659" {
		t.Errorf("name = %q", recs[0].Name)
	}
	if recs[0].Seq != "GTTTTTATGGTTTTAGATCTTAAGTCTTTAATCCAA" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
	if recs[0].Qual != ">>>>>>>>>>>>>>>6>>>>>>>;>>>>>>;>>;>;" {
		t.Errorf("qual = %q", recs[0].Qual)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing at", "IL4\nACGT\n+\nIIII\n"},
		{"missing plus", "@r\nACGT\nIIII\nIIII\n"},
		{"qual length mismatch", "@r\nACGT\n+\nII\n"},
		{"truncated", "@r\nACGT\n+\n"},
	}
	for _, c := range cases {
		if _, err := ReadAll(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: "ACGT", Qual: "IIII"},
		{Name: "r2 desc", Seq: "NNNN", Comment: "r2", Qual: "!!!!"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestChunkedScannerMatchesReader(t *testing.T) {
	// Generate a file, then compare the chunked scanner against the
	// line-oriented reader with several chunk sizes, including ones small
	// enough to force the paging (buffer-wrap) path on every record.
	data := genFastqData(t, 500)
	want, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{16, 64, 256, 4096, 1 << 20} {
		var rec Record
		sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQRecordEntry(&rec), chunk)
		var got []Record
		for sc.MoveNext() {
			got = append(got, rec)
		}
		if sc.Err() != nil {
			t.Fatalf("chunk %d: %v", chunk, sc.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d records, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: record %d = %+v, want %+v", chunk, i, got[i], want[i])
			}
		}
		if sc.Entries != int64(len(want)) {
			t.Errorf("chunk %d: Entries = %d", chunk, sc.Entries)
		}
	}
}

func TestChunkedScannerNoTrailingNewline(t *testing.T) {
	data := []byte("@r1\nACGT\n+\nIIII\n@r2\nGGGG\n+\nJJJJ") // no final \n
	var rec Record
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQRecordEntry(&rec), 8)
	var names []string
	for sc.MoveNext() {
		names = append(names, rec.Name)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(names) != 2 || names[1] != "r2" {
		t.Errorf("names = %v", names)
	}
}

func TestChunkedScannerEmpty(t *testing.T) {
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(nil)), FASTQEntry, 64)
	if sc.MoveNext() {
		t.Error("MoveNext on empty input returned true")
	}
	if sc.Err() != nil {
		t.Error(sc.Err())
	}
}

func TestChunkedScannerGrowsForHugeEntry(t *testing.T) {
	// A single record larger than the chunk buffer must be handled by
	// growing the paging buffer.
	long := strings.Repeat("A", 10_000)
	data := []byte("@big\n" + long + "\n+\n" + strings.Repeat("I", 10_000) + "\n")
	var rec Record
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQRecordEntry(&rec), 64)
	if !sc.MoveNext() {
		t.Fatalf("MoveNext = false, err = %v", sc.Err())
	}
	if len(rec.Seq) != 10_000 {
		t.Errorf("seq length = %d", len(rec.Seq))
	}
	if sc.MoveNext() {
		t.Error("unexpected extra record")
	}
}

func TestChunkedScannerPropagatesParseError(t *testing.T) {
	data := []byte("@r1\nACGT\n+\nIIII\nGARBAGE\nACGT\n+\nIIII\n")
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQEntry, 1<<20)
	if !sc.MoveNext() {
		t.Fatal("first record should parse")
	}
	if sc.MoveNext() {
		t.Error("second record should fail")
	}
	if sc.Err() == nil {
		t.Error("Err() = nil after malformed record")
	}
}

func TestLineEntryCounts(t *testing.T) {
	data := []byte("a\nbb\nccc\nno-newline")
	sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), LineEntry, 4)
	n := 0
	for sc.MoveNext() {
		n++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if n != 4 {
		t.Errorf("lines = %d, want 4", n)
	}
}

func TestChunkedScannerQuickAgainstReader(t *testing.T) {
	f := func(nRecs uint8, chunkSeed uint16) bool {
		n := int(nRecs)%40 + 1
		data := genFastqBytes(int64(chunkSeed), n)
		chunk := int(chunkSeed)%512 + 10
		var rec Record
		sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQRecordEntry(&rec), chunk)
		count := 0
		for sc.MoveNext() {
			count++
		}
		return sc.Err() == nil && count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []FastaRecord{
		{Name: "chr1", Desc: "test chromosome", Seq: strings.Repeat("ACGT", 50)},
		{Name: "chr2", Seq: "A"},
		{Name: "chr3", Seq: strings.Repeat("G", 61)}, // forces a 1-char wrap line
	}
	var buf bytes.Buffer
	w := NewFastaWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Verify 60-column wrapping of the first record body.
	lines := strings.Split(buf.String(), "\n")
	if len(lines[1]) != FASTAWrap {
		t.Errorf("first body line is %d cols, want %d", len(lines[1]), FASTAWrap)
	}
	got, err := ReadAllFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestFastaRejectsHeaderless(t *testing.T) {
	if _, err := ReadAllFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("headerless FASTA accepted")
	}
}

func TestFastaEmpty(t *testing.T) {
	recs, err := ReadAllFasta(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("%d records from empty input", len(recs))
	}
}

func TestAlignmentRoundTrip(t *testing.T) {
	recs := []AlignmentRecord{
		{ReadName: "r1", RefName: "chr1", Pos: 12345, Strand: '+', Mismatches: 0, MapQ: 60, Seq: "ACGT", Qual: "IIII"},
		{ReadName: "r2", RefName: "chr2", Pos: 0, Strand: '-', Mismatches: 2, MapQ: 13, Seq: "GGTT", Qual: "!!II"},
	}
	var buf bytes.Buffer
	if err := WriteAlignments(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllAlignments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestAlignmentReaderErrors(t *testing.T) {
	cases := []string{
		"r1\tchr1\t5\t+\t0\t60\tACGT\n",          // 7 fields
		"r1\tchr1\tx\t+\t0\t60\tACGT\tIIII\n",    // bad pos
		"r1\tchr1\t5\t*\t0\t60\tACGT\tIIII\n",    // bad strand
		"r1\tchr1\t5\t+\t0\t60\tACGT\tII\n",      // len mismatch
		"r1\tchr1\t5\t+\tzero\t60\tACGT\tIIII\n", // bad mismatches
		"r1\tchr1\t5\t+\t0\tmapq\tACGT\tIIII\n",  // bad mapq
	}
	for i, in := range cases {
		if _, err := ReadAllAlignments(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestTagsRoundTrip(t *testing.T) {
	tags := []TagRecord{{Seq: "ACGT", Frequency: 100}, {Seq: "GGGG", Frequency: 1}}
	var buf bytes.Buffer
	if err := WriteTags(&buf, tags); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTags(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != tags[0] || got[1] != tags[1] {
		t.Errorf("got %+v", got)
	}
}

func TestExpressionRoundTrip(t *testing.T) {
	recs := []ExpressionRecord{{Gene: "GENE1", TotalFrequency: 500, TagCount: 12}}
	var buf bytes.Buffer
	if err := WriteExpression(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExpression(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Errorf("got %+v", got)
	}
}

// genFastqData produces n deterministic records serialized as FASTQ bytes.
func genFastqData(t *testing.T, n int) []byte {
	t.Helper()
	return genFastqBytes(7, n)
}

func genFastqBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		ln := rng.Intn(60) + 4
		seqB := make([]byte, ln)
		qualB := make([]byte, ln)
		for j := 0; j < ln; j++ {
			seqB[j] = "ACGTN"[rng.Intn(5)]
			qualB[j] = byte(33 + rng.Intn(40))
		}
		w.Write(Record{
			Name: "IL4_855:1:1:" + itoa(rng.Intn(2000)) + ":" + itoa(rng.Intn(2000)),
			Seq:  string(seqB),
			Qual: string(qualB),
		})
	}
	w.Flush()
	return buf.Bytes()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func BenchmarkChunkedScanner(b *testing.B) {
	data := genFastqBytes(7, 5000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := NewChunkedScanner(SourceFromReaderAt(bytes.NewReader(data)), FASTQEntry, DefaultChunkSize)
		for sc.MoveNext() {
		}
		if sc.Err() != nil {
			b.Fatal(sc.Err())
		}
	}
}

func BenchmarkLineReader(b *testing.B) {
	data := genFastqBytes(7, 5000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
