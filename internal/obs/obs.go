// Package obs is the engine's observability substrate: per-operator
// execution profiles (the numbers behind EXPLAIN ANALYZE), a named
// metrics registry snapshotable as JSON, and a ring-buffer query log
// with a threshold-based slow-query capture.
//
// The package is a dependency leaf — it imports only the standard
// library — so every layer of the engine (exec, storage, plan, core)
// can attribute work to a profile without import cycles.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpProfile accumulates one plan operator's actual execution counters.
// All counter fields are atomics: parallel partition workers under an
// exchange share the display node's profile and update it concurrently.
//
// Every method is safe on a nil receiver (a no-op), so hot paths tee
// into "the current profile" without a nil branch at each call site.
type OpProfile struct {
	Rows    atomic.Int64 // rows returned by the operator
	Batches atomic.Int64 // batches returned (vectorized path)

	SpillBytes atomic.Int64 // bytes written to spill files by this operator
	SpillRuns  atomic.Int64 // spill runs / spilled partitions
	SpillRows  atomic.Int64 // rows written to spill files

	BloomChecks atomic.Int64 // probe rows tested against a Bloom filter
	BloomDrops  atomic.Int64 // probe rows dropped by the Bloom filter

	PoolHits   atomic.Int64 // buffer-pool hits attributed to this operator
	PoolMisses atomic.Int64 // buffer-pool misses (page reads from disk)

	// WallNS is cumulative wall time spent inside the operator subtree,
	// summed across parallel workers sharing the profile. Only recorded
	// when Timed is set (EXPLAIN ANALYZE); the always-on path keeps
	// counters only, so instrumentation stays off the clock.
	WallNS atomic.Int64
	Timed  bool
}

// AddRows adds n produced rows; nil-safe.
func (p *OpProfile) AddRows(n int64) {
	if p != nil {
		p.Rows.Add(n)
	}
}

// AddBatches adds n produced batches; nil-safe.
func (p *OpProfile) AddBatches(n int64) {
	if p != nil {
		p.Batches.Add(n)
	}
}

// AddSpill records a spill write of bytes/runs/rows; nil-safe.
func (p *OpProfile) AddSpill(bytes, runs, rows int64) {
	if p == nil {
		return
	}
	if bytes != 0 {
		p.SpillBytes.Add(bytes)
	}
	if runs != 0 {
		p.SpillRuns.Add(runs)
	}
	if rows != 0 {
		p.SpillRows.Add(rows)
	}
}

// AddBloom records Bloom-filter activity; nil-safe.
func (p *OpProfile) AddBloom(checks, drops int64) {
	if p == nil {
		return
	}
	if checks != 0 {
		p.BloomChecks.Add(checks)
	}
	if drops != 0 {
		p.BloomDrops.Add(drops)
	}
}

// AddWall adds wall time; nil-safe (callers gate on Timed themselves to
// avoid the clock reads, but the add is harmless either way).
func (p *OpProfile) AddWall(d time.Duration) {
	if p != nil {
		p.WallNS.Add(int64(d))
	}
}

// HasDetail reports whether the profile recorded any spill, Bloom or
// buffer-pool activity worth a detail line.
func (p *OpProfile) HasDetail() bool {
	if p == nil {
		return false
	}
	return p.SpillBytes.Load() != 0 || p.SpillRuns.Load() != 0 || p.SpillRows.Load() != 0 ||
		p.BloomChecks.Load() != 0 || p.PoolHits.Load() != 0 || p.PoolMisses.Load() != 0
}

// Registry is a named gauge registry: engine subsystems register
// functions that read their live counters, and Snapshot evaluates them
// all into a plain map (JSON-marshalable, sorted by Names). Reads never
// lock the underlying counters — every gauge is expected to be an
// atomic load.
type Registry struct {
	mu     sync.RWMutex
	gauges map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: make(map[string]func() int64)}
}

// RegisterFunc installs (or replaces) a named gauge.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Snapshot evaluates every gauge into a fresh map.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.gauges))
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	return out
}

// Names returns the registered gauge names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// QueryRecord is one executed statement in the query history.
type QueryRecord struct {
	SQL      string        `json:"sql"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int64         `json:"rows"`
	// SpillBytes is the total spill volume the statement's operators
	// reported (0 when the statement ran uninstrumented).
	SpillBytes int64  `json:"spill_bytes"`
	Err        string `json:"err,omitempty"`
	// Profile holds the rendered per-operator profile (the EXPLAIN
	// ANALYZE tree) for statements the slow-query log captured.
	Profile string `json:"profile,omitempty"`
}

// QueryLog is a fixed-size ring of recent statements plus a bounded
// slow-query log: records at or above the threshold keep their full
// profile. Safe for concurrent sessions.
type QueryLog struct {
	mu    sync.Mutex
	ring  []QueryRecord
	next  int
	total int64

	threshold time.Duration
	slow      []QueryRecord
	slowCap   int
	slowTotal int64
}

// NewQueryLog returns a log keeping the last size statements and the
// last slowCap slow statements at or over threshold (threshold <= 0
// disables slow capture).
func NewQueryLog(size, slowCap int, threshold time.Duration) *QueryLog {
	if size < 1 {
		size = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	return &QueryLog{
		ring:      make([]QueryRecord, 0, size),
		threshold: threshold,
		slowCap:   slowCap,
	}
}

// Threshold returns the slow-query threshold (0 = disabled).
func (l *QueryLog) Threshold() time.Duration { return l.threshold }

// Record appends one statement to the history; if it ran at or over the
// slow threshold it is also kept in the slow log (with rec.Profile).
// Fast statements drop their Profile to keep the ring small.
func (l *QueryLog) Record(rec QueryRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	slow := l.threshold > 0 && rec.Duration >= l.threshold
	if slow {
		l.slowTotal++
		l.slow = append(l.slow, rec)
		if len(l.slow) > l.slowCap {
			copy(l.slow, l.slow[len(l.slow)-l.slowCap:])
			l.slow = l.slow[:l.slowCap]
		}
	}
	rec.Profile = "" // history keeps the cheap fields only
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
}

// Recent returns the history newest-first.
func (l *QueryLog) Recent() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Slow returns the captured slow queries, newest last.
func (l *QueryLog) Slow() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, len(l.slow))
	copy(out, l.slow)
	return out
}

// Total returns the number of statements ever recorded.
func (l *QueryLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowTotal returns the number of statements that crossed the threshold.
func (l *QueryLog) SlowTotal() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slowTotal
}
