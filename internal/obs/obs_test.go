package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestOpProfileNilSafe(t *testing.T) {
	var p *OpProfile
	p.AddRows(5)
	p.AddBatches(1)
	p.AddSpill(100, 1, 10)
	p.AddBloom(4, 2)
	p.AddWall(time.Millisecond)
	if p.HasDetail() {
		t.Fatal("nil profile reported detail")
	}
}

func TestOpProfileCounters(t *testing.T) {
	p := &OpProfile{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddRows(1)
				p.AddSpill(2, 0, 1)
				p.AddBloom(1, 0)
			}
		}()
	}
	wg.Wait()
	if got := p.Rows.Load(); got != 8000 {
		t.Fatalf("rows = %d, want 8000", got)
	}
	if got := p.SpillBytes.Load(); got != 16000 {
		t.Fatalf("spill bytes = %d, want 16000", got)
	}
	if got := p.SpillRows.Load(); got != 8000 {
		t.Fatalf("spill rows = %d, want 8000", got)
	}
	if got := p.BloomChecks.Load(); got != 8000 {
		t.Fatalf("bloom checks = %d, want 8000", got)
	}
	if !p.HasDetail() {
		t.Fatal("profile with spill activity reported no detail")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	var v int64
	r.RegisterFunc("a.count", func() int64 { return v })
	r.RegisterFunc("b.count", func() int64 { return 7 })
	v = 3
	snap := r.Snapshot()
	if snap["a.count"] != 3 || snap["b.count"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a.count" || names[1] != "b.count" {
		t.Fatalf("names = %v", names)
	}
	// Re-registering replaces.
	r.RegisterFunc("b.count", func() int64 { return 8 })
	if got := r.Snapshot()["b.count"]; got != 8 {
		t.Fatalf("replaced gauge = %d, want 8", got)
	}
}

func TestQueryLogRing(t *testing.T) {
	l := NewQueryLog(3, 2, 0)
	for i := 0; i < 5; i++ {
		l.Record(QueryRecord{SQL: fmt.Sprintf("q%d", i), Duration: time.Duration(i)})
	}
	got := l.Recent()
	if len(got) != 3 {
		t.Fatalf("recent len = %d, want 3", len(got))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].SQL != want {
			t.Fatalf("recent[%d] = %q, want %q", i, got[i].SQL, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	if len(l.Slow()) != 0 || l.SlowTotal() != 0 {
		t.Fatal("slow log captured with threshold disabled")
	}
}

func TestQueryLogSlowCapture(t *testing.T) {
	l := NewQueryLog(8, 2, 10*time.Millisecond)
	l.Record(QueryRecord{SQL: "fast", Duration: time.Millisecond, Profile: "p"})
	l.Record(QueryRecord{SQL: "slow1", Duration: 10 * time.Millisecond, Profile: "p1"})
	l.Record(QueryRecord{SQL: "slow2", Duration: 20 * time.Millisecond, Profile: "p2"})
	l.Record(QueryRecord{SQL: "slow3", Duration: 30 * time.Millisecond, Profile: "p3"})
	slow := l.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow len = %d, want 2 (capped)", len(slow))
	}
	if slow[0].SQL != "slow2" || slow[1].SQL != "slow3" {
		t.Fatalf("slow = %q,%q", slow[0].SQL, slow[1].SQL)
	}
	if slow[1].Profile != "p3" {
		t.Fatal("slow record lost its profile")
	}
	if l.SlowTotal() != 3 {
		t.Fatalf("slow total = %d, want 3", l.SlowTotal())
	}
	// History records never keep the profile.
	for _, rec := range l.Recent() {
		if rec.Profile != "" {
			t.Fatalf("history record %q kept a profile", rec.SQL)
		}
	}
}

func TestQueryLogConcurrent(t *testing.T) {
	l := NewQueryLog(16, 4, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(QueryRecord{SQL: "q", Duration: time.Duration(i%3) * time.Millisecond})
				l.Recent()
				l.Slow()
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", l.Total())
	}
}
