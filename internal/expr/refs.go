package expr

// MarkCols sets mark[i] for every input column the expression reads.
// An unrecognized node type conservatively marks every column, so
// callers pruning unmarked columns stay correct as node types are
// added.
func MarkCols(e Expr, mark []bool) {
	switch t := e.(type) {
	case *Col:
		if t.Idx >= 0 && t.Idx < len(mark) {
			mark[t.Idx] = true
		}
	case *Lit:
	case *Arith:
		MarkCols(t.L, mark)
		MarkCols(t.R, mark)
	case *Cmp:
		MarkCols(t.L, mark)
		MarkCols(t.R, mark)
	case *Logic:
		MarkCols(t.L, mark)
		MarkCols(t.R, mark)
	case *Not:
		MarkCols(t.X, mark)
	case *IsNull:
		MarkCols(t.X, mark)
	case *Like:
		MarkCols(t.X, mark)
	case *Call:
		for _, a := range t.Args {
			MarkCols(a, mark)
		}
	default:
		for i := range mark {
			mark[i] = true
		}
	}
}
