package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqltypes"
)

// ScalarFunc is the signature of scalar functions — both engine built-ins
// and registered user-defined functions (the paper's CLR scalar UDFs).
type ScalarFunc func(args []sqltypes.Value) (sqltypes.Value, error)

// Registry resolves scalar function names case-insensitively.
type Registry struct {
	fns map[string]ScalarFunc
}

// NewRegistry returns a registry pre-loaded with the T-SQL built-ins used
// by the paper's queries.
func NewRegistry() *Registry {
	r := &Registry{fns: map[string]ScalarFunc{}}
	for name, fn := range builtins {
		r.fns[name] = fn
	}
	return r
}

// Register adds (or replaces) a scalar function.
func (r *Registry) Register(name string, fn ScalarFunc) {
	r.fns[strings.ToLower(name)] = fn
}

// Lookup resolves a function by name.
func (r *Registry) Lookup(name string) (ScalarFunc, bool) {
	fn, ok := r.fns[strings.ToLower(name)]
	return fn, ok
}

func argCheck(name string, args []sqltypes.Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("expr: %s expects %d arguments, got %d", name, want, len(args))
	}
	return nil
}

var builtins = map[string]ScalarFunc{
	// CHARINDEX(substring, string [, start]) — 1-based position, 0 when
	// absent; the optional T-SQL start offset begins the search there.
	// Query 1 uses CHARINDEX('N', short_read_seq) = 0 to skip uncertain
	// reads.
	"charindex": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return sqltypes.Null, fmt.Errorf("expr: CHARINDEX expects 2 or 3 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[1].AsString()
		from := int64(1)
		if len(args) == 3 {
			if args[2].IsNull() {
				return sqltypes.Null, nil
			}
			var err error
			from, err = args[2].AsInt()
			if err != nil {
				return sqltypes.Null, err
			}
			if from < 1 {
				from = 1
			}
		}
		if from > int64(len(s)) {
			return sqltypes.NewInt(0), nil
		}
		idx := strings.Index(s[from-1:], args[0].AsString())
		if idx < 0 {
			return sqltypes.NewInt(0), nil
		}
		return sqltypes.NewInt(from + int64(idx)), nil
	},
	// DATALENGTH(x) — byte length of the value.
	"datalength": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("DATALENGTH", args, 1); err != nil {
			return sqltypes.Null, err
		}
		v := args[0]
		switch v.K {
		case sqltypes.KindNull:
			return sqltypes.Null, nil
		case sqltypes.KindString:
			return sqltypes.NewInt(int64(len(v.S))), nil
		case sqltypes.KindBytes:
			return sqltypes.NewInt(int64(len(v.B))), nil
		case sqltypes.KindInt, sqltypes.KindFloat:
			return sqltypes.NewInt(8), nil
		case sqltypes.KindBool:
			return sqltypes.NewInt(1), nil
		}
		return sqltypes.Null, nil
	},
	"len": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("LEN", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt(int64(len(args[0].AsString()))), nil
	},
	"upper": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("UPPER", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToUpper(args[0].AsString())), nil
	},
	"lower": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("LOWER", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToLower(args[0].AsString())), nil
	},
	// SUBSTRING(s, start, len) — 1-based start, T-SQL clamping.
	"substring": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("SUBSTRING", args, 3); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[0].AsString()
		start, err := args[1].AsInt()
		if err != nil {
			return sqltypes.Null, err
		}
		length, err := args[2].AsInt()
		if err != nil {
			return sqltypes.Null, err
		}
		if length < 0 {
			return sqltypes.Null, fmt.Errorf("expr: SUBSTRING length must be non-negative")
		}
		lo := start - 1
		if lo < 0 {
			length += lo
			lo = 0
		}
		if lo >= int64(len(s)) || length <= 0 {
			return sqltypes.NewString(""), nil
		}
		hi := lo + length
		if hi > int64(len(s)) {
			hi = int64(len(s))
		}
		return sqltypes.NewString(s[lo:hi]), nil
	},
	"abs": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("ABS", args, 1); err != nil {
			return sqltypes.Null, err
		}
		v := args[0]
		switch v.K {
		case sqltypes.KindNull:
			return sqltypes.Null, nil
		case sqltypes.KindInt:
			if v.I < 0 {
				return sqltypes.NewInt(-v.I), nil
			}
			return v, nil
		case sqltypes.KindFloat:
			return sqltypes.NewFloat(math.Abs(v.F)), nil
		}
		return sqltypes.Null, fmt.Errorf("expr: ABS requires a number")
	},
	"round": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("ROUND", args, 2); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return sqltypes.Null, err
		}
		d, err := args[1].AsInt()
		if err != nil {
			return sqltypes.Null, err
		}
		scale := math.Pow(10, float64(d))
		return sqltypes.NewFloat(math.Round(f*scale) / scale), nil
	},
	"reverse": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("REVERSE", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[0].AsString()
		b := []byte(s)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return sqltypes.NewString(string(b)), nil
	},
	"coalesce": func(args []sqltypes.Value) (sqltypes.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	},
	"cast_int": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("CAST_INT", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		n, err := args[0].AsInt()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(n), nil
	},
	"cast_float": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if err := argCheck("CAST_FLOAT", args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(f), nil
	},
}
