// Package expr implements scalar expression evaluation over rows: column
// references, literals, arithmetic with T-SQL coercions (integer division,
// '+' as string concatenation), comparisons with SQL three-valued logic,
// and the scalar function registry that hosts both built-ins (CHARINDEX,
// DATALENGTH, ...) and user-defined scalar functions — the engine's
// equivalent of CLR scalar UDFs (paper Section 2.3.2).
//
// Expressions are interpreted by walking the tree, boxing every
// intermediate into a Value. This is deliberately the "T-SQL interpreter"
// cost model of the paper's Section 5.2: per-row interpretation is what
// makes the T-SQL stored procedure orders of magnitude slower than the
// compiled ("CLR") chunked scan.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// Expr is a scalar expression evaluable against a row.
type Expr interface {
	Eval(row sqltypes.Row) (sqltypes.Value, error)
	String() string
}

// Col references an input column by position.
type Col struct {
	Idx  int
	Name string // for display only
}

// Eval returns the column value.
func (c *Col) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return sqltypes.Null, fmt.Errorf("expr: column index %d out of range (%d columns)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("[%d]", c.Idx)
}

// Lit is a constant.
type Lit struct{ V sqltypes.Value }

// Eval returns the constant.
func (l *Lit) Eval(sqltypes.Row) (sqltypes.Value, error) { return l.V, nil }

func (l *Lit) String() string {
	if l.V.K == sqltypes.KindString {
		return "'" + strings.ReplaceAll(l.V.S, "'", "''") + "'"
	}
	return l.V.String()
}

// BinOp enumerates arithmetic operators.
type BinOp byte

// Arithmetic operators.
const (
	OpAdd BinOp = '+'
	OpSub BinOp = '-'
	OpMul BinOp = '*'
	OpDiv BinOp = '/'
	OpMod BinOp = '%'
)

// Arith applies an arithmetic operator with T-SQL semantics: NULL
// propagates; '+' concatenates strings; integer op integer stays integer
// (including division).
type Arith struct {
	Op   BinOp
	L, R Expr
}

// Eval applies the operator.
func (a *Arith) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	if a.Op == OpAdd && (l.K == sqltypes.KindString || r.K == sqltypes.KindString) {
		return sqltypes.NewString(l.AsString() + r.AsString()), nil
	}
	if l.K == sqltypes.KindFloat || r.K == sqltypes.KindFloat {
		lf, err := l.AsFloat()
		if err != nil {
			return sqltypes.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return sqltypes.Null, err
		}
		switch a.Op {
		case OpAdd:
			return sqltypes.NewFloat(lf + rf), nil
		case OpSub:
			return sqltypes.NewFloat(lf - rf), nil
		case OpMul:
			return sqltypes.NewFloat(lf * rf), nil
		case OpDiv:
			if rf == 0 {
				return sqltypes.Null, fmt.Errorf("expr: division by zero")
			}
			return sqltypes.NewFloat(lf / rf), nil
		case OpMod:
			return sqltypes.Null, fmt.Errorf("expr: %% requires integers")
		}
	}
	li, err := l.AsInt()
	if err != nil {
		return sqltypes.Null, err
	}
	ri, err := r.AsInt()
	if err != nil {
		return sqltypes.Null, err
	}
	switch a.Op {
	case OpAdd:
		return sqltypes.NewInt(li + ri), nil
	case OpSub:
		return sqltypes.NewInt(li - ri), nil
	case OpMul:
		return sqltypes.NewInt(li * ri), nil
	case OpDiv:
		if ri == 0 {
			return sqltypes.Null, fmt.Errorf("expr: division by zero")
		}
		return sqltypes.NewInt(li / ri), nil
	case OpMod:
		if ri == 0 {
			return sqltypes.Null, fmt.Errorf("expr: modulo by zero")
		}
		return sqltypes.NewInt(li % ri), nil
	}
	return sqltypes.Null, fmt.Errorf("expr: unknown operator %c", a.Op)
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R)
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Cmp compares two expressions under three-valued logic: any NULL operand
// yields NULL (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval compares.
func (c *Cmp) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	cmp := sqltypes.Compare(l, r)
	var out bool
	switch c.Op {
	case CmpEq:
		out = cmp == 0
	case CmpNe:
		out = cmp != 0
	case CmpLt:
		out = cmp < 0
	case CmpLe:
		out = cmp <= 0
	case CmpGt:
		out = cmp > 0
	case CmpGe:
		out = cmp >= 0
	}
	return sqltypes.NewBool(out), nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// Logic is AND/OR with SQL three-valued semantics.
type Logic struct {
	And  bool
	L, R Expr
}

// Eval applies Kleene logic.
func (g *Logic) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := g.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short circuits that are valid under 3VL.
	if g.And && l.K == sqltypes.KindBool && !l.Bool() {
		return sqltypes.NewBool(false), nil
	}
	if !g.And && l.K == sqltypes.KindBool && l.Bool() {
		return sqltypes.NewBool(true), nil
	}
	r, err := g.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	lb, lNull := l.Bool(), l.IsNull()
	rb, rNull := r.Bool(), r.IsNull()
	if g.And {
		switch {
		case !lNull && !rNull:
			return sqltypes.NewBool(lb && rb), nil
		case (!lNull && !lb) || (!rNull && !rb):
			return sqltypes.NewBool(false), nil
		default:
			return sqltypes.Null, nil
		}
	}
	switch {
	case !lNull && !rNull:
		return sqltypes.NewBool(lb || rb), nil
	case (!lNull && lb) || (!rNull && rb):
		return sqltypes.NewBool(true), nil
	default:
		return sqltypes.Null, nil
	}
}

func (g *Logic) String() string {
	op := "OR"
	if g.And {
		op = "AND"
	}
	return fmt.Sprintf("(%s %s %s)", g.L, op, g.R)
}

// Not negates a boolean; NULL stays NULL.
type Not struct{ X Expr }

// Eval negates.
func (n *Not) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil || v.IsNull() {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// IsNull implements IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Eval tests nullness.
func (i *IsNull) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := i.X.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(v.IsNull() != i.Negate), nil
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.X)
	}
	return fmt.Sprintf("(%s IS NULL)", i.X)
}

// Like implements the SQL LIKE operator with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern string
}

// Eval matches the pattern.
func (l *Like) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := l.X.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(likeMatch(v.AsString(), l.Pattern)), nil
}

func (l *Like) String() string { return fmt.Sprintf("(%s LIKE '%s')", l.X, l.Pattern) }

// likeMatch performs case-insensitive LIKE matching.
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// Call invokes a scalar function.
type Call struct {
	Name string
	Fn   ScalarFunc
	Args []Expr
}

// Eval evaluates arguments then applies the function.
func (c *Call) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	args := make([]sqltypes.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	return c.Fn(args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// Truthy reports whether a predicate value passes a WHERE filter (NULL and
// false both fail).
func Truthy(v sqltypes.Value) bool {
	return v.K == sqltypes.KindBool && v.I != 0
}
