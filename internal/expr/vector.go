// Vectorized expression evaluation: predicates compile to tri-state mask
// evaluators that process a batch column-at-a-time and shrink the
// selection vector, and projections compile to per-expression vector
// builders. Dictionary-encoded columns evaluate a predicate once per
// dictionary entry and then map codes through the verdict table, so rows
// dropped by the filter are never decompressed; packed 2-bit sequence
// columns evaluate equality against the packed wire bytes without
// unpacking a single base.
package expr

import (
	"bytes"

	"repro/internal/seq"
	"repro/internal/sqltypes"
	"repro/internal/vec"
)

// Tri-state mask values. A plain boolean mask cannot express NOT under
// SQL three-valued logic (NOT NULL is NULL, not true), so masks carry
// the third state explicitly and only kTrue survives a filter.
const (
	kFalse uint8 = 0
	kTrue  uint8 = 1
	kNull  uint8 = 2
)

// maskEval computes the tri-state truth value of a predicate for the
// rows listed in sel, writing out[i] for sel[i].
type maskEval interface {
	mask(b *vec.Batch, sel []int, out []uint8) error
}

// FilterEval is a compiled vectorized predicate.
type FilterEval struct {
	root    maskEval
	scratch []uint8
}

// CompileFilter compiles a predicate for batch evaluation. Every
// expression compiles: subtrees with no specialized kernel fall back to
// row-at-a-time evaluation over the selected rows only.
func CompileFilter(e Expr) *FilterEval {
	return &FilterEval{root: compileMask(e)}
}

// Apply evaluates the predicate over the batch's selected rows and
// shrinks the selection vector to the rows where it is true.
func (f *FilterEval) Apply(b *vec.Batch) error {
	n := len(b.Sel)
	if n == 0 {
		return nil
	}
	if cap(f.scratch) < n {
		f.scratch = make([]uint8, n)
	}
	out := f.scratch[:n]
	if err := f.root.mask(b, b.Sel, out); err != nil {
		return err
	}
	k := 0
	for i, s := range b.Sel {
		if out[i] == kTrue {
			b.Sel[k] = s
			k++
		}
	}
	b.Sel = b.Sel[:k]
	return nil
}

func compileMask(e Expr) maskEval {
	switch t := e.(type) {
	case *Lit:
		return &constMask{v: classify(t.V)}
	case *Logic:
		return &logicMask{and: t.And, l: compileMask(t.L), r: compileMask(t.R)}
	case *Not:
		return &notMask{child: compileMask(t.X)}
	case *IsNull:
		if c, ok := t.X.(*Col); ok {
			return &isNullMask{col: c.Idx, negate: t.Negate}
		}
	case *Cmp:
		if col, lit, op, ok := colLitCmp(t); ok {
			if lit.IsNull() {
				return &constMask{v: kNull}
			}
			return &cmpMask{op: op, col: col, lit: lit}
		}
	case *Like:
		if c, ok := t.X.(*Col); ok {
			return &likeMask{col: c.Idx, pattern: t.Pattern}
		}
	}
	return &genericMask{e: e}
}

// colLitCmp recognizes column-vs-literal comparisons in either operand
// order, flipping the operator when the literal is on the left.
func colLitCmp(c *Cmp) (col int, lit sqltypes.Value, op CmpOp, ok bool) {
	if cl, o1 := c.L.(*Col); o1 {
		if ll, o2 := c.R.(*Lit); o2 {
			return cl.Idx, ll.V, c.Op, true
		}
	}
	if ll, o1 := c.L.(*Lit); o1 {
		if cl, o2 := c.R.(*Col); o2 {
			return cl.Idx, ll.V, flipCmp(c.Op), true
		}
	}
	return 0, sqltypes.Null, 0, false
}

func flipCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op // =, <> are symmetric
}

// classify maps a scalar predicate result to its mask value, matching
// the row path exactly: NULL is unknown, and a non-null value passes iff
// Value.Bool() — so a non-boolean value classifies as false, just as the
// row path's Truthy/Bool coercion does.
func classify(v sqltypes.Value) uint8 {
	if v.IsNull() {
		return kNull
	}
	if v.Bool() {
		return kTrue
	}
	return kFalse
}

type constMask struct{ v uint8 }

func (m *constMask) mask(_ *vec.Batch, sel []int, out []uint8) error {
	for i := range sel {
		out[i] = m.v
	}
	return nil
}

// logicMask is Kleene AND/OR. The right side is evaluated only for rows
// the left side did not decide (false for AND, true for OR) — the
// vectorized equivalent of the row path's short-circuit, so rows whose
// right operand would error are skipped in exactly the same cases.
type logicMask struct {
	and  bool
	l, r maskEval
	sub  []int
	rout []uint8
}

func (m *logicMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	if err := m.l.mask(b, sel, out); err != nil {
		return err
	}
	decided := kFalse
	if !m.and {
		decided = kTrue
	}
	m.sub = m.sub[:0]
	for i, s := range sel {
		if out[i] != decided {
			m.sub = append(m.sub, s)
		}
	}
	if len(m.sub) == 0 {
		return nil
	}
	if cap(m.rout) < len(m.sub) {
		m.rout = make([]uint8, len(m.sub))
	}
	rout := m.rout[:len(m.sub)]
	if err := m.r.mask(b, m.sub, rout); err != nil {
		return err
	}
	j := 0
	for i := range sel {
		if out[i] == decided {
			continue
		}
		rv := rout[j]
		j++
		if m.and {
			out[i] = kleeneAnd(out[i], rv)
		} else {
			out[i] = kleeneOr(out[i], rv)
		}
	}
	return nil
}

func kleeneAnd(a, b uint8) uint8 {
	if a == kFalse || b == kFalse {
		return kFalse
	}
	if a == kTrue && b == kTrue {
		return kTrue
	}
	return kNull
}

func kleeneOr(a, b uint8) uint8 {
	if a == kTrue || b == kTrue {
		return kTrue
	}
	if a == kFalse && b == kFalse {
		return kFalse
	}
	return kNull
}

type notMask struct{ child maskEval }

func (m *notMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	if err := m.child.mask(b, sel, out); err != nil {
		return err
	}
	for i := range sel {
		switch out[i] {
		case kTrue:
			out[i] = kFalse
		case kFalse:
			out[i] = kTrue
		}
	}
	return nil
}

type isNullMask struct {
	col    int
	negate bool
}

func (m *isNullMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	v := b.Cols[m.col]
	for i, s := range sel {
		isNull := v.IsNull(s)
		if !isNull && v.Vals != nil {
			isNull = v.Vals[s].IsNull()
		}
		if isNull != m.negate {
			out[i] = kTrue
		} else {
			out[i] = kFalse
		}
	}
	return nil
}

// cmpMask is a column-vs-literal comparison with type-specialized
// kernels for flat int/float/string vectors, a verdict-table kernel for
// dictionary vectors, and a packed-bytes equality kernel for 2-bit
// sequence columns. Anything else (cross-kind comparisons, generic
// vectors) takes the boxed loop, which is still selection-driven.
type cmpMask struct {
	op  CmpOp
	col int
	lit sqltypes.Value

	packedLit     []byte // encoded seq.Pack of a string literal
	packedLitBad  bool   // literal not a packable sequence: never equal
	packedLitInit bool

	verdict []uint8
}

func (m *cmpMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	v := b.Cols[m.col]
	// A lazy column under a comparison is about to be read for every
	// selected row — decode it once into its typed array so the tight
	// loops below apply, instead of boxing cell by cell.
	if err := v.Materialize(); err != nil {
		return err
	}
	switch {
	case v.Codes != nil:
		return m.maskDict(v, sel, out)
	case v.Packed && v.Byts != nil && (m.op == CmpEq || m.op == CmpNe) && m.lit.K == sqltypes.KindString:
		return m.maskPackedBytes(v, sel, out)
	case v.Ints != nil && v.Kind == sqltypes.KindInt && m.lit.K == sqltypes.KindInt:
		lit := m.lit.I
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			out[i] = m.verdictCmp(compareInt64(v.Ints[s], lit))
		}
		return nil
	case v.Ints != nil && v.Kind == sqltypes.KindInt && m.lit.K == sqltypes.KindFloat:
		lit := m.lit.F
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			out[i] = m.verdictCmp(compareFloat64(float64(v.Ints[s]), lit))
		}
		return nil
	case v.Floats != nil && (m.lit.K == sqltypes.KindFloat || m.lit.K == sqltypes.KindInt):
		lit := m.lit.F
		if m.lit.K == sqltypes.KindInt {
			lit = float64(m.lit.I)
		}
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			out[i] = m.verdictCmp(compareFloat64(v.Floats[s], lit))
		}
		return nil
	case v.Strs != nil && m.lit.K == sqltypes.KindString:
		lit := m.lit.S
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			out[i] = m.verdictCmp(compareString(v.Strs[s], lit))
		}
		return nil
	}
	// Boxed fallback: correct for every remaining shape (generic
	// vectors, cross-kind comparisons) via sqltypes.Compare.
	for i, s := range sel {
		cv, err := v.Value(s)
		if err != nil {
			return err
		}
		if cv.IsNull() {
			out[i] = kNull
			continue
		}
		out[i] = m.verdictCmp(sqltypes.Compare(cv, m.lit))
	}
	return nil
}

// maskDict evaluates the comparison once per dictionary entry, then maps
// codes through the verdict table. For a packed-sequence dictionary with
// an equality operator, each entry compares by its packed wire bytes —
// seq.Pack is deterministic, so byte equality is string equality — and
// nothing is ever unpacked.
func (m *cmpMask) maskDict(v *vec.Vector, sel []int, out []uint8) error {
	nd := len(v.Dict)
	if cap(m.verdict) < nd {
		m.verdict = make([]uint8, nd)
	}
	verdict := m.verdict[:nd]
	for d, dv := range v.Dict {
		switch {
		case v.Packed && dv.K == sqltypes.KindBytes && (m.op == CmpEq || m.op == CmpNe) && m.lit.K == sqltypes.KindString:
			m.ensurePackedLit()
			eq := !m.packedLitBad && bytes.Equal(dv.B, m.packedLit)
			if m.op == CmpNe {
				eq = !eq
			}
			if eq {
				verdict[d] = kTrue
			} else {
				verdict[d] = kFalse
			}
		case v.Packed && dv.K == sqltypes.KindBytes:
			uv, err := vec.UnpackValue(dv)
			if err != nil {
				return err
			}
			verdict[d] = m.verdictCmp(sqltypes.Compare(uv, m.lit))
		default:
			verdict[d] = m.verdictCmp(sqltypes.Compare(dv, m.lit))
		}
	}
	for i, s := range sel {
		if v.IsNull(s) {
			out[i] = kNull
			continue
		}
		c := v.Codes[s]
		if int(c) >= nd {
			return errDictCode(c, nd)
		}
		out[i] = verdict[c]
	}
	return nil
}

func (m *cmpMask) maskPackedBytes(v *vec.Vector, sel []int, out []uint8) error {
	m.ensurePackedLit()
	for i, s := range sel {
		if v.IsNull(s) {
			out[i] = kNull
			continue
		}
		eq := !m.packedLitBad && bytes.Equal(v.Byts[s], m.packedLit)
		if m.op == CmpNe {
			eq = !eq
		}
		if eq {
			out[i] = kTrue
		} else {
			out[i] = kFalse
		}
	}
	return nil
}

func (m *cmpMask) ensurePackedLit() {
	if m.packedLitInit {
		return
	}
	m.packedLitInit = true
	p, err := seq.Pack(m.lit.S)
	if err != nil {
		// A literal that is not a valid sequence can never equal any
		// stored (packable) sequence value.
		m.packedLitBad = true
		return
	}
	m.packedLit = p.Encode()
}

func (m *cmpMask) verdictCmp(cmp int) uint8 {
	var out bool
	switch m.op {
	case CmpEq:
		out = cmp == 0
	case CmpNe:
		out = cmp != 0
	case CmpLt:
		out = cmp < 0
	case CmpLe:
		out = cmp <= 0
	case CmpGt:
		out = cmp > 0
	case CmpGe:
		out = cmp >= 0
	}
	if out {
		return kTrue
	}
	return kFalse
}

func compareInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// likeMask evaluates LIKE against a string column; dictionary vectors
// match the pattern once per distinct entry.
type likeMask struct {
	col     int
	pattern string
	verdict []uint8
}

func (m *likeMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	v := b.Cols[m.col]
	if err := v.Materialize(); err != nil {
		return err
	}
	if v.Codes != nil {
		nd := len(v.Dict)
		if cap(m.verdict) < nd {
			m.verdict = make([]uint8, nd)
		}
		verdict := m.verdict[:nd]
		for d, dv := range v.Dict {
			if v.Packed && dv.K == sqltypes.KindBytes {
				uv, err := vec.UnpackValue(dv)
				if err != nil {
					return err
				}
				dv = uv
			}
			if likeMatch(dv.AsString(), m.pattern) {
				verdict[d] = kTrue
			} else {
				verdict[d] = kFalse
			}
		}
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			c := v.Codes[s]
			if int(c) >= nd {
				return errDictCode(c, nd)
			}
			out[i] = verdict[c]
		}
		return nil
	}
	if v.Strs != nil {
		for i, s := range sel {
			if v.IsNull(s) {
				out[i] = kNull
				continue
			}
			if likeMatch(v.Strs[s], m.pattern) {
				out[i] = kTrue
			} else {
				out[i] = kFalse
			}
		}
		return nil
	}
	for i, s := range sel {
		cv, err := v.Value(s)
		if err != nil {
			return err
		}
		if cv.IsNull() {
			out[i] = kNull
			continue
		}
		if likeMatch(cv.AsString(), m.pattern) {
			out[i] = kTrue
		} else {
			out[i] = kFalse
		}
	}
	return nil
}

// genericMask is the row-at-a-time fallback: it materializes only the
// selected rows and reuses one scratch row across calls.
type genericMask struct {
	e   Expr
	row sqltypes.Row
}

func (m *genericMask) mask(b *vec.Batch, sel []int, out []uint8) error {
	for i, s := range sel {
		row, err := b.ReadRow(s, m.row)
		if err != nil {
			return err
		}
		m.row = row
		v, err := m.e.Eval(row)
		if err != nil {
			return err
		}
		out[i] = classify(v)
	}
	return nil
}

func errDictCode(c int32, nd int) error {
	return &dictCodeError{code: c, entries: nd}
}

type dictCodeError struct {
	code    int32
	entries int
}

func (e *dictCodeError) Error() string {
	return "expr: dictionary code out of range"
}

// Projection is a compiled list of output-column expressions evaluated
// batch-at-a-time.
type Projection struct {
	evals []vecEval
}

type vecEval interface {
	eval(b *vec.Batch) (*vec.Vector, error)
}

// CompileProjection compiles one vector builder per output expression:
// column references pass the input vector through untouched (keeping its
// encoding, so a projected dictionary column stays dictionary-encoded),
// literals become a one-entry dictionary, and everything else evaluates
// row-at-a-time over selected rows only.
func CompileProjection(exprs []Expr) *Projection {
	p := &Projection{evals: make([]vecEval, len(exprs))}
	for i, e := range exprs {
		switch t := e.(type) {
		case *Col:
			p.evals[i] = &colEval{idx: t.Idx}
		case *Lit:
			p.evals[i] = &litEval{v: t.V}
		default:
			p.evals[i] = &genericEval{e: e}
		}
	}
	return p
}

// Eval produces the projected column vectors for a batch. The output
// vectors are defined for the selected rows; unselected entries are
// unspecified.
func (p *Projection) Eval(b *vec.Batch) ([]*vec.Vector, error) {
	out := make([]*vec.Vector, len(p.evals))
	for i, ev := range p.evals {
		v, err := ev.eval(b)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type colEval struct{ idx int }

func (c *colEval) eval(b *vec.Batch) (*vec.Vector, error) {
	return b.Cols[c.idx], nil
}

// litEval produces a constant column as a one-entry dictionary over a
// shared all-zero code array (read-only, safe to share across batches).
type litEval struct {
	v     sqltypes.Value
	codes []int32
	nulls []uint64
}

func (l *litEval) eval(b *vec.Batch) (*vec.Vector, error) {
	n := b.Rows()
	if cap(l.codes) < n {
		l.codes = make([]int32, n)
	}
	out := &vec.Vector{Kind: l.v.K, Codes: l.codes[:n], Dict: []sqltypes.Value{l.v}}
	if l.v.IsNull() {
		words := (n + 63) / 64
		if cap(l.nulls) < words {
			l.nulls = make([]uint64, words)
			for i := range l.nulls {
				l.nulls[i] = ^uint64(0)
			}
		}
		out.Nulls = l.nulls[:words]
	}
	return out, nil
}

type genericEval struct {
	e   Expr
	row sqltypes.Row
}

func (g *genericEval) eval(b *vec.Batch) (*vec.Vector, error) {
	out := &vec.Vector{Kind: sqltypes.KindNull, Vals: make([]sqltypes.Value, b.Rows())}
	for _, s := range b.Sel {
		row, err := b.ReadRow(s, g.row)
		if err != nil {
			return nil, err
		}
		g.row = row
		v, err := g.e.Eval(row)
		if err != nil {
			return nil, err
		}
		out.Vals[s] = v
		if v.IsNull() {
			out.SetNull(s)
		}
	}
	return out, nil
}
