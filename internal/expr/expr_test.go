package expr

import (
	"testing"

	"repro/internal/sqltypes"
)

func i64(v int64) sqltypes.Value   { return sqltypes.NewInt(v) }
func f64(v float64) sqltypes.Value { return sqltypes.NewFloat(v) }
func str(s string) sqltypes.Value  { return sqltypes.NewString(s) }
func lit(v sqltypes.Value) Expr    { return &Lit{V: v} }
func col(i int) Expr               { return &Col{Idx: i} }
func mustEval(t *testing.T, e Expr, row sqltypes.Row) sqltypes.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return v
}

func TestColAndLit(t *testing.T) {
	row := sqltypes.Row{i64(7), str("x")}
	if v := mustEval(t, col(0), row); v.I != 7 {
		t.Errorf("col 0 = %v", v)
	}
	if v := mustEval(t, lit(str("c")), row); v.S != "c" {
		t.Errorf("lit = %v", v)
	}
	if _, err := col(5).Eval(row); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestArithInts(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r int64
		want int64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpMul, 4, 3, 12},
		{OpDiv, 7, 2, 3}, // T-SQL integer division
		{OpMod, 7, 2, 1},
	}
	for _, c := range cases {
		e := &Arith{Op: c.op, L: lit(i64(c.l)), R: lit(i64(c.r))}
		if v := mustEval(t, e, nil); v.K != sqltypes.KindInt || v.I != c.want {
			t.Errorf("%d %c %d = %v, want %d", c.l, c.op, c.r, v, c.want)
		}
	}
}

func TestArithFloatsAndMixed(t *testing.T) {
	e := &Arith{Op: OpDiv, L: lit(i64(7)), R: lit(f64(2))}
	if v := mustEval(t, e, nil); v.K != sqltypes.KindFloat || v.F != 3.5 {
		t.Errorf("7 / 2.0 = %v", v)
	}
	if _, err := (&Arith{Op: OpDiv, L: lit(i64(1)), R: lit(i64(0))}).Eval(nil); err == nil {
		t.Error("integer division by zero accepted")
	}
	if _, err := (&Arith{Op: OpDiv, L: lit(f64(1)), R: lit(f64(0))}).Eval(nil); err == nil {
		t.Error("float division by zero accepted")
	}
}

func TestStringConcat(t *testing.T) {
	e := &Arith{Op: OpAdd, L: lit(str("chr")), R: lit(i64(7))}
	if v := mustEval(t, e, nil); v.S != "chr7" {
		t.Errorf("concat = %v", v)
	}
}

func TestArithNullPropagates(t *testing.T) {
	e := &Arith{Op: OpAdd, L: lit(sqltypes.Null), R: lit(i64(1))}
	if v := mustEval(t, e, nil); !v.IsNull() {
		t.Errorf("NULL + 1 = %v", v)
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r sqltypes.Value
		want bool
	}{
		{CmpEq, i64(1), i64(1), true},
		{CmpNe, i64(1), i64(2), true},
		{CmpLt, str("a"), str("b"), true},
		{CmpLe, i64(2), i64(2), true},
		{CmpGt, f64(2.5), i64(2), true},
		{CmpGe, i64(1), i64(2), false},
	}
	for _, c := range cases {
		e := &Cmp{Op: c.op, L: lit(c.l), R: lit(c.r)}
		if v := mustEval(t, e, nil); v.Bool() != c.want {
			t.Errorf("%v %s %v = %v", c.l, c.op, c.r, v)
		}
	}
	// NULL comparisons are unknown.
	e := &Cmp{Op: CmpEq, L: lit(sqltypes.Null), R: lit(sqltypes.Null)}
	if v := mustEval(t, e, nil); !v.IsNull() {
		t.Errorf("NULL = NULL evaluated to %v", v)
	}
}

func TestLogicThreeValued(t *testing.T) {
	tr, fa, nu := lit(sqltypes.NewBool(true)), lit(sqltypes.NewBool(false)), lit(sqltypes.Null)
	// AND truth table rows with NULL.
	if v := mustEval(t, &Logic{And: true, L: fa, R: nu}, nil); v.Bool() || v.IsNull() {
		if v.IsNull() {
			t.Error("FALSE AND NULL should be FALSE")
		}
	}
	if v := mustEval(t, &Logic{And: true, L: nu, R: fa}, nil); v.IsNull() || v.Bool() {
		t.Error("NULL AND FALSE should be FALSE")
	}
	if v := mustEval(t, &Logic{And: true, L: tr, R: nu}, nil); !v.IsNull() {
		t.Error("TRUE AND NULL should be NULL")
	}
	if v := mustEval(t, &Logic{And: false, L: nu, R: tr}, nil); v.IsNull() || !v.Bool() {
		t.Error("NULL OR TRUE should be TRUE")
	}
	if v := mustEval(t, &Logic{And: false, L: nu, R: fa}, nil); !v.IsNull() {
		t.Error("NULL OR FALSE should be NULL")
	}
	if v := mustEval(t, &Not{X: nu}, nil); !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
	if v := mustEval(t, &Not{X: tr}, nil); v.Bool() {
		t.Error("NOT TRUE = TRUE")
	}
}

func TestIsNull(t *testing.T) {
	if v := mustEval(t, &IsNull{X: lit(sqltypes.Null)}, nil); !v.Bool() {
		t.Error("NULL IS NULL = false")
	}
	if v := mustEval(t, &IsNull{X: lit(i64(1)), Negate: true}, nil); !v.Bool() {
		t.Error("1 IS NOT NULL = false")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"chr12", "chr%", true},
		{"chr12", "CHR1_", true},
		{"chr12", "chr", false},
		{"GATTACA", "%TTA%", true},
		{"GATTACA", "G_T%", true},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
	}
	for _, c := range cases {
		e := &Like{X: lit(str(c.s)), Pattern: c.p}
		if v := mustEval(t, e, nil); v.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, v.Bool(), c.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	reg := NewRegistry()
	callv := func(name string, args ...sqltypes.Value) sqltypes.Value {
		t.Helper()
		fn, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("missing builtin %s", name)
		}
		v, err := fn(args)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	// CHARINDEX: the Query 1 predicate.
	if v := callv("CHARINDEX", str("N"), str("ACGT")); v.I != 0 {
		t.Errorf("CHARINDEX(N, ACGT) = %v", v)
	}
	if v := callv("charindex", str("N"), str("ACNGT")); v.I != 3 {
		t.Errorf("CHARINDEX(N, ACNGT) = %v", v)
	}
	if v := callv("DATALENGTH", str("abcd")); v.I != 4 {
		t.Errorf("DATALENGTH = %v", v)
	}
	if v := callv("LEN", str("acgt")); v.I != 4 {
		t.Errorf("LEN = %v", v)
	}
	if v := callv("UPPER", str("acgt")); v.S != "ACGT" {
		t.Errorf("UPPER = %v", v)
	}
	if v := callv("SUBSTRING", str("GATTACA"), i64(2), i64(3)); v.S != "ATT" {
		t.Errorf("SUBSTRING = %v", v)
	}
	if v := callv("SUBSTRING", str("GATTACA"), i64(6), i64(10)); v.S != "CA" {
		t.Errorf("SUBSTRING clamp = %v", v)
	}
	if v := callv("ABS", i64(-5)); v.I != 5 {
		t.Errorf("ABS = %v", v)
	}
	if v := callv("ROUND", f64(2.567), i64(2)); v.F != 2.57 {
		t.Errorf("ROUND = %v", v)
	}
	if v := callv("REVERSE", str("ACGT")); v.S != "TGCA" {
		t.Errorf("REVERSE = %v", v)
	}
	if v := callv("COALESCE", sqltypes.Null, str("x")); v.S != "x" {
		t.Errorf("COALESCE = %v", v)
	}
}

func TestRegistryUserFunctions(t *testing.T) {
	reg := NewRegistry()
	reg.Register("ReverseComplement", func(args []sqltypes.Value) (sqltypes.Value, error) {
		return str("TGCA"), nil
	})
	fn, ok := reg.Lookup("reversecomplement")
	if !ok {
		t.Fatal("UDF not found case-insensitively")
	}
	v, _ := fn(nil)
	if v.S != "TGCA" {
		t.Error("UDF result wrong")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("unknown function resolved")
	}
}

func TestCallEval(t *testing.T) {
	reg := NewRegistry()
	fn, _ := reg.Lookup("charindex")
	e := &Call{Name: "CHARINDEX", Fn: fn, Args: []Expr{lit(str("N")), col(0)}}
	v := mustEval(t, e, sqltypes.Row{str("ACNGT")})
	if v.I != 3 {
		t.Errorf("call = %v", v)
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(sqltypes.Null) {
		t.Error("NULL is truthy")
	}
	if Truthy(sqltypes.NewBool(false)) {
		t.Error("false is truthy")
	}
	if !Truthy(sqltypes.NewBool(true)) {
		t.Error("true is not truthy")
	}
	if Truthy(sqltypes.NewInt(1)) {
		t.Error("int 1 is truthy (predicates must be boolean)")
	}
}
