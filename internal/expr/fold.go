package expr

import "repro/internal/sqltypes"

// FoldConstants rewrites column-free pure subtrees into literals, so a
// filter evaluates planner-introduced constant conjuncts (WHERE 1=1 AND
// ...) once at Open instead of per row. Scalar function calls are never
// folded (they may be non-deterministic), and a subtree whose constant
// evaluation errors (1/0) is left in place so the error still surfaces
// at row-evaluation time exactly as before.
func FoldConstants(e Expr) Expr {
	switch t := e.(type) {
	case *Lit, *Col:
		return e
	case *Arith:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		if out, ok := foldBinary(&Arith{Op: t.Op, L: l, R: r}); ok {
			return out
		}
		return &Arith{Op: t.Op, L: l, R: r}
	case *Cmp:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		if out, ok := foldBinary(&Cmp{Op: t.Op, L: l, R: r}); ok {
			return out
		}
		return &Cmp{Op: t.Op, L: l, R: r}
	case *Logic:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		// Partial folds valid under 3VL: TRUE is the AND identity and
		// the OR absorber; FALSE is the OR identity and the AND
		// absorber (FALSE AND NULL = FALSE, TRUE OR NULL = TRUE).
		if lv, ok := l.(*Lit); ok {
			if folded, ok := foldLogicSide(t.And, lv.V, r); ok {
				return folded
			}
		}
		if rv, ok := r.(*Lit); ok {
			if folded, ok := foldLogicSide(t.And, rv.V, l); ok {
				return folded
			}
		}
		return &Logic{And: t.And, L: l, R: r}
	case *Not:
		x := FoldConstants(t.X)
		if out, ok := foldBinary(&Not{X: x}); ok {
			return out
		}
		return &Not{X: x}
	case *IsNull:
		x := FoldConstants(t.X)
		if out, ok := foldBinary(&IsNull{X: x, Negate: t.Negate}); ok {
			return out
		}
		return &IsNull{X: x, Negate: t.Negate}
	case *Like:
		x := FoldConstants(t.X)
		if out, ok := foldBinary(&Like{X: x, Pattern: t.Pattern}); ok {
			return out
		}
		return &Like{X: x, Pattern: t.Pattern}
	}
	return e
}

// foldLogicSide folds one constant operand of AND/OR: the identity
// constant yields the other side, the absorbing constant yields itself.
// NULL constants do not fold (NULL AND x depends on x).
func foldLogicSide(and bool, v sqltypes.Value, other Expr) (Expr, bool) {
	if v.K != sqltypes.KindBool {
		return nil, false
	}
	truthy := v.I != 0
	if and {
		if truthy {
			return other, true
		}
		return &Lit{V: sqltypes.NewBool(false)}, true
	}
	if truthy {
		return &Lit{V: sqltypes.NewBool(true)}, true
	}
	return other, true
}

// foldBinary evaluates a node whose children are all literals; ok=false
// when any child is non-constant or evaluation errors.
func foldBinary(e Expr) (Expr, bool) {
	if !allLits(e) {
		return nil, false
	}
	v, err := e.Eval(nil)
	if err != nil {
		return nil, false
	}
	return &Lit{V: v}, true
}

func allLits(e Expr) bool {
	switch t := e.(type) {
	case *Lit:
		return true
	case *Arith:
		return allLits(t.L) && allLits(t.R)
	case *Cmp:
		return allLits(t.L) && allLits(t.R)
	case *Not:
		return allLits(t.X)
	case *IsNull:
		return allLits(t.X)
	case *Like:
		return allLits(t.X)
	}
	return false
}
