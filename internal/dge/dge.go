// Package dge implements digital gene expression analysis (paper Section
// 2.1.2 and Queries 1-2): binning unique short-read tags by frequency,
// aggregating tag alignments into per-gene expression levels, and the
// differential expression comparison of two samples that motivates the
// whole workflow ("e.g. comparing healthy cells with cancer cells").
package dge

import (
	"math"
	"sort"

	"repro/internal/fastq"
	"repro/internal/seq"
)

// BinTags performs the unique-read binning of the paper's Query 1: count
// distinct tag sequences, skipping reads that contain an uncertain 'N'
// call, and rank them by descending frequency (ties broken by sequence
// for determinism).
func BinTags(reads []fastq.Record) []fastq.TagRecord {
	counts := make(map[string]int64)
	for i := range reads {
		s := reads[i].Seq
		if seq.HasN(s) {
			continue
		}
		counts[s]++
	}
	out := make([]fastq.TagRecord, 0, len(counts))
	for s, n := range counts {
		out = append(out, fastq.TagRecord{Seq: s, Frequency: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Frequency != out[b].Frequency {
			return out[a].Frequency > out[b].Frequency
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// GeneResolver maps an alignment locus to a gene name; ok=false when the
// locus is intergenic. The caller derives it from the annotation (in our
// pipeline, from the generator's gene table).
type GeneResolver func(refName string, pos int64) (gene string, ok bool)

// Expression aggregates tag alignments into per-gene expression — the
// paper's Query 2: group alignments by gene, summing tag frequencies and
// counting distinct tags.
func Expression(alignments []fastq.AlignmentRecord, freq map[string]int64, resolve GeneResolver) []fastq.ExpressionRecord {
	type acc struct {
		total int64
		tags  int64
	}
	byGene := map[string]*acc{}
	for i := range alignments {
		a := &alignments[i]
		gene, ok := resolve(a.RefName, a.Pos)
		if !ok {
			continue
		}
		g := byGene[gene]
		if g == nil {
			g = &acc{}
			byGene[gene] = g
		}
		f := freq[a.Seq]
		if f == 0 {
			f = 1 // unbinned tag: count the single observation
		}
		g.total += f
		g.tags++
	}
	out := make([]fastq.ExpressionRecord, 0, len(byGene))
	for gene, g := range byGene {
		out = append(out, fastq.ExpressionRecord{Gene: gene, TotalFrequency: g.total, TagCount: g.tags})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TotalFrequency != out[b].TotalFrequency {
			return out[a].TotalFrequency > out[b].TotalFrequency
		}
		return out[a].Gene < out[b].Gene
	})
	return out
}

// DiffRecord is one gene's differential expression between two samples.
type DiffRecord struct {
	Gene string
	// A and B are the raw total frequencies in each sample.
	A, B int64
	// Log2Fold is the library-size-normalized log2 fold change (B vs A)
	// with a pseudocount of 1.
	Log2Fold float64
	// Score is |Log2Fold| scaled by evidence (log total counts) — a
	// simple ranking statistic for the comparison.
	Score float64
}

// Differential compares two expression profiles (the paper's tertiary
// "differential expression analysis of different samples"). Genes present
// in either sample are reported, ranked by Score descending.
func Differential(a, b []fastq.ExpressionRecord) []DiffRecord {
	am := map[string]int64{}
	bm := map[string]int64{}
	var aTotal, bTotal int64
	for _, e := range a {
		am[e.Gene] = e.TotalFrequency
		aTotal += e.TotalFrequency
	}
	for _, e := range b {
		bm[e.Gene] = e.TotalFrequency
		bTotal += e.TotalFrequency
	}
	if aTotal == 0 {
		aTotal = 1
	}
	if bTotal == 0 {
		bTotal = 1
	}
	genes := map[string]bool{}
	for g := range am {
		genes[g] = true
	}
	for g := range bm {
		genes[g] = true
	}
	out := make([]DiffRecord, 0, len(genes))
	for g := range genes {
		av, bv := am[g], bm[g]
		// Normalize to counts-per-million with a pseudocount.
		aNorm := (float64(av) + 1) / float64(aTotal) * 1e6
		bNorm := (float64(bv) + 1) / float64(bTotal) * 1e6
		lf := math.Log2(bNorm / aNorm)
		out = append(out, DiffRecord{
			Gene: g, A: av, B: bv,
			Log2Fold: lf,
			Score:    math.Abs(lf) * math.Log1p(float64(av+bv)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Gene < out[j].Gene
	})
	return out
}
