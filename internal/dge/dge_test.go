package dge

import (
	"strings"
	"testing"

	"repro/internal/fastq"
)

func reads(seqs ...string) []fastq.Record {
	out := make([]fastq.Record, len(seqs))
	for i, s := range seqs {
		out[i] = fastq.Record{Name: "r", Seq: s, Qual: strings.Repeat("I", len(s))}
	}
	return out
}

func TestBinTags(t *testing.T) {
	tags := BinTags(reads("ACGT", "ACGT", "GGGG", "ACGT", "ACNT", "TTTT", "GGGG"))
	if len(tags) != 3 {
		t.Fatalf("tags = %+v", tags)
	}
	if tags[0].Seq != "ACGT" || tags[0].Frequency != 3 {
		t.Errorf("top tag = %+v", tags[0])
	}
	if tags[1].Seq != "GGGG" || tags[1].Frequency != 2 {
		t.Errorf("second = %+v", tags[1])
	}
	if tags[2].Seq != "TTTT" || tags[2].Frequency != 1 {
		t.Errorf("third = %+v", tags[2])
	}
}

func TestBinTagsEmptyAndAllN(t *testing.T) {
	if got := BinTags(nil); len(got) != 0 {
		t.Errorf("nil reads -> %v", got)
	}
	if got := BinTags(reads("NNNN", "ANAN")); len(got) != 0 {
		t.Errorf("all-N reads -> %v", got)
	}
}

func testResolver(ref string, pos int64) (string, bool) {
	if ref != "chr1" {
		return "", false
	}
	switch {
	case pos >= 100 && pos < 200:
		return "GENE_A", true
	case pos >= 300 && pos < 400:
		return "GENE_B", true
	}
	return "", false
}

func TestExpression(t *testing.T) {
	aligns := []fastq.AlignmentRecord{
		{RefName: "chr1", Pos: 150, Seq: "AAAA"},
		{RefName: "chr1", Pos: 160, Seq: "CCCC"},
		{RefName: "chr1", Pos: 350, Seq: "GGGG"},
		{RefName: "chr1", Pos: 990, Seq: "TTTT"}, // intergenic
		{RefName: "chr2", Pos: 150, Seq: "AAAA"}, // other chrom
	}
	freq := map[string]int64{"AAAA": 10, "CCCC": 5, "GGGG": 2}
	recs := Expression(aligns, freq, testResolver)
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Gene != "GENE_A" || recs[0].TotalFrequency != 15 || recs[0].TagCount != 2 {
		t.Errorf("GENE_A = %+v", recs[0])
	}
	if recs[1].Gene != "GENE_B" || recs[1].TotalFrequency != 2 || recs[1].TagCount != 1 {
		t.Errorf("GENE_B = %+v", recs[1])
	}
}

func TestExpressionUnknownTagCountsOnce(t *testing.T) {
	aligns := []fastq.AlignmentRecord{{RefName: "chr1", Pos: 150, Seq: "ZZZZ"}}
	recs := Expression(aligns, map[string]int64{}, testResolver)
	if len(recs) != 1 || recs[0].TotalFrequency != 1 {
		t.Errorf("recs = %+v", recs)
	}
}

func TestDifferential(t *testing.T) {
	// Library sizes are balanced (230 each) so CPM normalization leaves
	// FLAT at fold ~0.
	a := []fastq.ExpressionRecord{
		{Gene: "UP", TotalFrequency: 10},
		{Gene: "FLAT", TotalFrequency: 100},
		{Gene: "ONLY_A", TotalFrequency: 120},
	}
	b := []fastq.ExpressionRecord{
		{Gene: "UP", TotalFrequency: 100},
		{Gene: "FLAT", TotalFrequency: 100},
		{Gene: "ONLY_B", TotalFrequency: 30},
	}
	diffs := Differential(a, b)
	byGene := map[string]DiffRecord{}
	for _, d := range diffs {
		byGene[d.Gene] = d
	}
	if len(diffs) != 4 {
		t.Fatalf("%d diff records", len(diffs))
	}
	if byGene["UP"].Log2Fold <= 2 {
		t.Errorf("UP fold = %v, want > 2 (10x change + normalization)", byGene["UP"].Log2Fold)
	}
	if f := byGene["FLAT"].Log2Fold; f < -0.5 || f > 0.5 {
		t.Errorf("FLAT fold = %v, want ~0", f)
	}
	if byGene["ONLY_A"].Log2Fold >= 0 {
		t.Errorf("ONLY_A fold = %v, want negative", byGene["ONLY_A"].Log2Fold)
	}
	if byGene["ONLY_B"].Log2Fold <= 0 {
		t.Errorf("ONLY_B fold = %v, want positive", byGene["ONLY_B"].Log2Fold)
	}
	// Ranking: UP should rank above FLAT.
	upRank, flatRank := -1, -1
	for i, d := range diffs {
		switch d.Gene {
		case "UP":
			upRank = i
		case "FLAT":
			flatRank = i
		}
	}
	if upRank > flatRank {
		t.Error("UP ranked below FLAT")
	}
}

func TestDifferentialEmpty(t *testing.T) {
	if d := Differential(nil, nil); len(d) != 0 {
		t.Errorf("empty diff = %+v", d)
	}
}
