// Package blob implements the engine's FileStream store — the hybrid
// physical design at the heart of the paper (Section 2.3.6): BLOBs are kept
// as ordinary files in an engine-managed directory, under transactional
// control of the database (creation and deletion are WAL-logged by the
// engine), while external tools can still read and write them directly
// through their file path (reads.PathName() in the paper's T-SQL example).
//
// Stream provides the SqlBytes-style GetBytes interface used by table-
// valued wrapper functions, including the SequentialAccess mode "that
// implements pre-fetching on FileStream data" (Section 4.1).
package blob

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store manages FileStream blobs in a directory.
type Store struct {
	dir string
	mu  sync.Mutex
}

// OpenStore opens (creating if needed) a blob store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: create store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// NewGUID returns a fresh random identifier in UUID format — the engine's
// NEWID().
func NewGUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("blob: crypto/rand failed: " + err.Error())
	}
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// validGUID guards against path traversal through hostile identifiers.
func validGUID(guid string) error {
	if guid == "" || strings.ContainsAny(guid, "/\\") || strings.Contains(guid, "..") {
		return fmt.Errorf("blob: invalid guid %q", guid)
	}
	return nil
}

// PathName returns the file path of a blob — the dual-access hook that
// lets existing bioinformatics tools work on the data in place.
func (s *Store) PathName(guid string) (string, error) {
	if err := validGUID(guid); err != nil {
		return "", err
	}
	return filepath.Join(s.dir, guid), nil
}

// Create streams r into a new blob. The write goes to a temporary file
// that is atomically renamed, so a crash never leaves a half-written blob
// under a valid GUID. Returns the blob size.
func (s *Store) Create(guid string, r io.Reader) (int64, error) {
	path, err := s.PathName(guid)
	if err != nil {
		return 0, err
	}
	if _, err := os.Stat(path); err == nil {
		return 0, fmt.Errorf("blob: %s already exists", guid)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(tmp, r)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("blob: write %s: %w", guid, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return n, nil
}

// CreateFromFile imports an existing file as a blob by copying it — the
// engine's OPENROWSET(BULK ..., SINGLE_BLOB).
func (s *Store) CreateFromFile(guid, srcPath string) (int64, error) {
	f, err := os.Open(srcPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.Create(guid, f)
}

// Delete removes a blob. Missing blobs are not an error (delete must be
// idempotent for WAL redo).
func (s *Store) Delete(guid string) error {
	path, err := s.PathName(guid)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Exists reports whether a blob is present.
func (s *Store) Exists(guid string) bool {
	path, err := s.PathName(guid)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// Size returns a blob's length in bytes — DATALENGTH(reads) in the
// paper's metadata query.
func (s *Store) Size(guid string) (int64, error) {
	path, err := s.PathName(guid)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// List returns every blob GUID in the store.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		out = append(out, e.Name())
	}
	return out, nil
}

// TotalSize sums all blob sizes, for the storage-efficiency experiments.
func (s *Store) TotalSize() (int64, error) {
	guids, err := s.List()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, g := range guids {
		n, err := s.Size(g)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Open returns a Stream over a blob.
func (s *Store) Open(guid string) (*Stream, error) {
	path, err := s.PathName(guid)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Stream{f: f, size: st.Size()}, nil
}

// PrefetchChunk is the read-ahead window of SequentialAccess streams.
const PrefetchChunk = 1 << 20

// Stream is random access over one blob — the SqlBytes of the paper's TVF
// wrapper. With SetSequential(true) it prefetches the next window in the
// background while the caller parses the current one.
type Stream struct {
	f    *os.File
	size int64

	mu  sync.Mutex
	seq bool
	// Current prefetched window.
	win    []byte
	winOff int64
	// In-flight background fetch.
	next chan fetchResult
}

type fetchResult struct {
	off  int64
	data []byte
	err  error
}

// Size returns the blob length.
func (st *Stream) Size() int64 { return st.size }

// SetSequential toggles read-ahead prefetching (the SequentialAccess flag
// of Section 4.1).
func (st *Stream) SetSequential(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq = on
	if !on {
		st.drainLocked()
		st.win, st.winOff = nil, 0
	}
}

// GetBytes copies blob content starting at off into buf, returning the
// byte count; 0 with io.EOF signals end of blob. Implements
// fastq.ByteSource.
func (st *Stream) GetBytes(off int64, buf []byte) (int, error) {
	if off < 0 {
		return 0, errors.New("blob: negative offset")
	}
	if off >= st.size {
		return 0, io.EOF
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.seq {
		return st.f.ReadAt(buf, off) // may return short read + io.EOF at end
	}
	total := 0
	for total < len(buf) && off < st.size {
		if err := st.ensureWindowLocked(off); err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		rel := int(off - st.winOff)
		n := copy(buf[total:], st.win[rel:])
		total += n
		off += int64(n)
	}
	return total, nil
}

// ensureWindowLocked makes the prefetch window cover off.
func (st *Stream) ensureWindowLocked(off int64) error {
	if st.win != nil && off >= st.winOff && off < st.winOff+int64(len(st.win)) {
		return nil
	}
	want := off
	// Sequential continuation: the background fetch should hold it.
	if st.next != nil {
		res := <-st.next
		st.next = nil
		if res.err == nil && want >= res.off && want < res.off+int64(len(res.data)) {
			st.win, st.winOff = res.data, res.off
			st.startFetchLocked(res.off + int64(len(res.data)))
			return nil
		}
		// Mismatch (random access): discard and fetch synchronously.
	}
	data, err := st.fetch(want)
	if err != nil {
		return err
	}
	st.win, st.winOff = data, want
	st.startFetchLocked(want + int64(len(data)))
	return nil
}

func (st *Stream) fetch(off int64) ([]byte, error) {
	if off >= st.size {
		return nil, io.EOF
	}
	n := int64(PrefetchChunk)
	if off+n > st.size {
		n = st.size - off
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(st.f, off, n), data); err != nil {
		return nil, err
	}
	return data, nil
}

func (st *Stream) startFetchLocked(off int64) {
	if off >= st.size {
		return
	}
	ch := make(chan fetchResult, 1)
	st.next = ch
	go func() {
		data, err := st.fetch(off)
		ch <- fetchResult{off: off, data: data, err: err}
	}()
}

func (st *Stream) drainLocked() {
	if st.next != nil {
		<-st.next
		st.next = nil
	}
}

// Close releases the stream (draining any in-flight prefetch).
func (st *Stream) Close() error {
	st.mu.Lock()
	st.drainLocked()
	st.mu.Unlock()
	return st.f.Close()
}
