package blob

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewGUIDFormatAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		g := NewGUID()
		if len(g) != 36 || strings.Count(g, "-") != 4 {
			t.Fatalf("bad guid format %q", g)
		}
		if seen[g] {
			t.Fatal("duplicate guid")
		}
		seen[g] = true
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	s := openTestStore(t)
	content := []byte("@r1\nACGT\n+\nIIII\n")
	guid := NewGUID()
	n, err := s.Create(guid, bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Errorf("Create returned %d bytes", n)
	}
	if !s.Exists(guid) {
		t.Error("blob does not exist after create")
	}
	if sz, _ := s.Size(guid); sz != int64(len(content)) {
		t.Errorf("Size = %d", sz)
	}
	st, err := s.Open(guid)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	buf := make([]byte, len(content))
	got, err := st.GetBytes(0, buf)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got != len(content) || !bytes.Equal(buf, content) {
		t.Errorf("GetBytes = %d, %q", got, buf[:got])
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	s := openTestStore(t)
	guid := NewGUID()
	s.Create(guid, strings.NewReader("a"))
	if _, err := s.Create(guid, strings.NewReader("b")); err == nil {
		t.Error("duplicate create succeeded")
	}
}

func TestPathNameExternalAccess(t *testing.T) {
	// The hybrid design's core property: external tools read and write
	// the blob through its path.
	s := openTestStore(t)
	guid := NewGUID()
	s.Create(guid, strings.NewReader("external tools can read this"))
	path, err := s.PathName(guid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "external tools can read this" {
		t.Errorf("external read got %q", data)
	}
}

func TestGUIDValidation(t *testing.T) {
	s := openTestStore(t)
	for _, bad := range []string{"", "../etc/passwd", "a/b", `a\b`, ".."} {
		if _, err := s.PathName(bad); err == nil {
			t.Errorf("PathName(%q) accepted", bad)
		}
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := openTestStore(t)
	guid := NewGUID()
	s.Create(guid, strings.NewReader("x"))
	if err := s.Delete(guid); err != nil {
		t.Fatal(err)
	}
	if s.Exists(guid) {
		t.Error("blob exists after delete")
	}
	if err := s.Delete(guid); err != nil {
		t.Errorf("second delete errored: %v", err)
	}
}

func TestListAndTotalSize(t *testing.T) {
	s := openTestStore(t)
	s.Create("g1", strings.NewReader("aaa"))
	s.Create("g2", strings.NewReader("bbbbb"))
	guids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(guids) != 2 {
		t.Fatalf("List = %v", guids)
	}
	total, err := s.TotalSize()
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Errorf("TotalSize = %d", total)
	}
}

func TestCreateFromFile(t *testing.T) {
	s := openTestStore(t)
	src := filepath.Join(t.TempDir(), "input.fastq")
	os.WriteFile(src, []byte("@r\nAC\n+\nII\n"), 0o644)
	n, err := s.CreateFromFile("imported", src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Errorf("imported %d bytes", n)
	}
}

func TestStreamRandomAccess(t *testing.T) {
	s := openTestStore(t)
	content := make([]byte, 100_000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(content)
	s.Create("g", bytes.NewReader(content))
	st, _ := s.Open("g")
	defer st.Close()
	buf := make([]byte, 777)
	for trial := 0; trial < 50; trial++ {
		off := rng.Int63n(int64(len(content) - len(buf)))
		n, err := st.GetBytes(off, buf)
		if err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:n], content[off:off+int64(n)]) {
			t.Fatalf("random read at %d mismatched", off)
		}
	}
	// Past-end read.
	if n, err := st.GetBytes(int64(len(content)), buf); n != 0 || err != io.EOF {
		t.Errorf("past-end = %d, %v", n, err)
	}
	if _, err := st.GetBytes(-1, buf); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestStreamSequentialPrefetch(t *testing.T) {
	s := openTestStore(t)
	content := make([]byte, 3*PrefetchChunk+12345)
	rng := rand.New(rand.NewSource(4))
	rng.Read(content)
	s.Create("g", bytes.NewReader(content))
	st, _ := s.Open("g")
	defer st.Close()
	st.SetSequential(true)
	var got []byte
	buf := make([]byte, 64*1024)
	off := int64(0)
	for {
		n, err := st.GetBytes(off, buf)
		if n > 0 {
			got = append(got, buf[:n]...)
			off += int64(n)
		}
		if err == io.EOF || n == 0 {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("sequential read mismatch: got %d bytes, want %d", len(got), len(content))
	}
}

func TestStreamSequentialThenRandom(t *testing.T) {
	// Random access while in sequential mode must still return correct
	// data (the prefetcher discards its window).
	s := openTestStore(t)
	content := make([]byte, 2*PrefetchChunk)
	rand.New(rand.NewSource(5)).Read(content)
	s.Create("g", bytes.NewReader(content))
	st, _ := s.Open("g")
	defer st.Close()
	st.SetSequential(true)
	buf := make([]byte, 1000)
	st.GetBytes(0, buf)
	n, err := st.GetBytes(int64(len(content))-500, buf[:500])
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != 500 || !bytes.Equal(buf[:500], content[len(content)-500:]) {
		t.Error("random access in sequential mode returned wrong data")
	}
	// And back to sequential from the start.
	st.GetBytes(0, buf)
}

func TestStreamCrossesWindowBoundary(t *testing.T) {
	s := openTestStore(t)
	content := make([]byte, PrefetchChunk+500)
	for i := range content {
		content[i] = byte(i)
	}
	s.Create("g", bytes.NewReader(content))
	st, _ := s.Open("g")
	defer st.Close()
	st.SetSequential(true)
	// A single read spanning the prefetch boundary.
	buf := make([]byte, 1000)
	off := int64(PrefetchChunk - 500)
	n, err := st.GetBytes(off, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || !bytes.Equal(buf, content[off:off+1000]) {
		t.Errorf("boundary read = %d bytes, mismatch", n)
	}
}
