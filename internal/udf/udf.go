// Package udf implements the paper's genomics extensibility functions and
// registers them with the engine: the ListShortReads FileStream wrapper
// TVF (Section 3.3/4.1), the PivotAlignment TVF and the CallBase /
// AssembleSequence / AssembleConsensus user-defined aggregates of Query 3
// (Section 4.2.3), plus sequence scalar UDFs.
package udf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/sqltypes"
)

// RegisterAll installs every function of this package into the engine.
func RegisterAll(db *core.Database) {
	db.RegisterTVF("ListShortReads", &ListShortReads{DB: db})
	db.RegisterTVF("PivotAlignment", PivotAlignment{})
	db.RegisterAggregate("CallBase", func() exec.AggState { return &CallBaseAgg{} })
	db.RegisterAggregate("AssembleSequence", func() exec.AggState { return &AssembleSequenceAgg{} })
	db.RegisterAggregate("AssembleConsensus", func() exec.AggState { return NewAssembleConsensusAgg() })
	db.RegisterScalar("ReverseComplement", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("udf: REVERSECOMPLEMENT takes one argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(seq.ReverseComplement(args[0].AsString())), nil
	})
	db.RegisterScalar("GCContent", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("udf: GCCONTENT takes one argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(seq.GCContent(args[0].AsString())), nil
	})
	db.RegisterScalar("AvgQuality", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("udf: AVGQUALITY takes one argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(seq.AverageQuality(args[0].AsString())), nil
	})
}

// ListShortReads is the paper's file-wrapper TVF: ListShortReads(sample,
// lane, format) resolves the FileStream blob registered for that sample
// and lane in ShortReadFiles and streams its records through the chunked
// paging parser of Figure 5. format is 'FastQ' or 'Fasta'.
type ListShortReads struct {
	DB *core.Database
	// Table overrides the metadata table name (default ShortReadFiles).
	Table string
}

func (l *ListShortReads) table() string {
	if l.Table != "" {
		return l.Table
	}
	return "ShortReadFiles"
}

// Schema returns (read_name, seq, quals); the SRF format adds the
// avg_intensity column carried by the container's image-analysis data.
func (l *ListShortReads) Schema(args []sqltypes.Value) ([]catalog.Column, error) {
	vc, _ := catalog.ParseType("VARCHAR(MAX)")
	cols := []catalog.Column{
		{Name: "read_name", Type: vc},
		{Name: "seq", Type: vc},
		{Name: "quals", Type: vc},
	}
	if len(args) == 3 && !args[2].IsNull() && strings.EqualFold(args[2].AsString(), "srf") {
		fl, _ := catalog.ParseType("FLOAT")
		cols = append(cols, catalog.Column{Name: "avg_intensity", Type: fl})
	}
	return cols, nil
}

// Iterator resolves the blob and opens the streaming parser.
func (l *ListShortReads) Iterator(args []sqltypes.Value) (exec.RowIterator, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("udf: ListShortReads(sample, lane, format) takes 3 arguments")
	}
	sample, err := args[0].AsInt()
	if err != nil {
		return nil, err
	}
	lane, err := args[1].AsInt()
	if err != nil {
		return nil, err
	}
	format := strings.ToLower(args[2].AsString())
	if format != "fastq" && format != "fasta" && format != "srf" {
		return nil, fmt.Errorf("udf: unknown format %q (want FastQ, Fasta or SRF)", args[2].AsString())
	}

	// Resolve (sample, lane) -> blob guid via the metadata table.
	def := l.DB.Catalog().Get(l.table())
	if def == nil {
		return nil, fmt.Errorf("udf: metadata table %s does not exist", l.table())
	}
	sampleIdx := def.ColumnIndex("sample")
	laneIdx := def.ColumnIndex("lane")
	readsIdx := def.ColumnIndex("reads")
	if sampleIdx < 0 || laneIdx < 0 || readsIdx < 0 {
		return nil, fmt.Errorf("udf: %s needs sample, lane and reads columns", l.table())
	}
	var guid string
	err = l.DB.ScanTableNoLock(l.table(), func(row sqltypes.Row) error {
		s, _ := row[sampleIdx].AsInt()
		ln, _ := row[laneIdx].AsInt()
		if s == sample && ln == lane && guid == "" {
			guid = row[readsIdx].AsString()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if guid == "" {
		return nil, fmt.Errorf("udf: no FileStream registered for sample %d lane %d", sample, lane)
	}
	stream, err := l.DB.OpenBlob(guid)
	if err != nil {
		return nil, err
	}
	stream.SetSequential(true) // the paper's SequentialAccess pre-fetching
	switch format {
	case "fasta":
		return newFastaBlobIterator(stream), nil
	case "srf":
		return newSRFBlobIterator(stream), nil
	}
	return newFastqBlobIterator(stream), nil
}

// srfBlobIterator streams SRF records (with intensities) out of a blob.
type srfBlobIterator struct {
	stream *core.BlobStream
	sc     *fastq.ChunkedScanner
	rec    fastq.SRFRecord
	row    sqltypes.Row
}

func newSRFBlobIterator(stream *core.BlobStream) *srfBlobIterator {
	it := &srfBlobIterator{stream: stream, row: make(sqltypes.Row, 4)}
	it.sc = fastq.NewChunkedScanner(stream, fastq.SRFRecordEntry(&it.rec), 0)
	return it
}

func (it *srfBlobIterator) Next() (sqltypes.Row, bool, error) {
	if !it.sc.MoveNext() {
		return nil, false, it.sc.Err()
	}
	it.row[0] = sqltypes.NewString(it.rec.Name)
	it.row[1] = sqltypes.NewString(it.rec.Seq)
	it.row[2] = sqltypes.NewString(it.rec.Qual)
	it.row[3] = sqltypes.NewFloat(it.rec.AvgIntensity())
	return it.row, true, nil
}

func (it *srfBlobIterator) Close() error { return it.stream.Close() }

// fastqBlobIterator streams FASTQ records out of a blob.
type fastqBlobIterator struct {
	stream *core.BlobStream
	sc     *fastq.ChunkedScanner
	rec    fastq.Record
	row    sqltypes.Row
}

func newFastqBlobIterator(stream *core.BlobStream) *fastqBlobIterator {
	it := &fastqBlobIterator{stream: stream, row: make(sqltypes.Row, 3)}
	it.sc = fastq.NewChunkedScanner(stream, fastq.FASTQRecordEntry(&it.rec), 0)
	return it
}

// Next implements the pull-model MoveNext + FillRow contract.
func (it *fastqBlobIterator) Next() (sqltypes.Row, bool, error) {
	if !it.sc.MoveNext() {
		return nil, false, it.sc.Err()
	}
	it.row[0] = sqltypes.NewString(it.rec.Name)
	it.row[1] = sqltypes.NewString(it.rec.Seq)
	it.row[2] = sqltypes.NewString(it.rec.Qual)
	return it.row, true, nil
}

func (it *fastqBlobIterator) Close() error { return it.stream.Close() }

// fastaBlobIterator streams FASTA records (quals empty).
type fastaBlobIterator struct {
	stream *core.BlobStream
	recs   []fastq.FastaRecord
	pos    int
	row    sqltypes.Row
	err    error
	loaded bool
}

func newFastaBlobIterator(stream *core.BlobStream) *fastaBlobIterator {
	return &fastaBlobIterator{stream: stream, row: make(sqltypes.Row, 3)}
}

func (it *fastaBlobIterator) Next() (sqltypes.Row, bool, error) {
	if !it.loaded {
		it.loaded = true
		// FASTA records span many lines; parse via the reader over a
		// stream adapter.
		it.recs, it.err = fastq.ReadAllFasta(&blobReader{stream: it.stream})
	}
	if it.err != nil {
		return nil, false, it.err
	}
	if it.pos >= len(it.recs) {
		return nil, false, nil
	}
	r := it.recs[it.pos]
	it.pos++
	it.row[0] = sqltypes.NewString(r.Name)
	it.row[1] = sqltypes.NewString(r.Seq)
	it.row[2] = sqltypes.NewString("")
	return it.row, true, nil
}

func (it *fastaBlobIterator) Close() error { return it.stream.Close() }

// blobReader adapts a BlobStream to io.Reader.
type blobReader struct {
	stream *core.BlobStream
	off    int64
}

func (b *blobReader) Read(p []byte) (int, error) {
	n, err := b.stream.GetBytes(b.off, p)
	b.off += int64(n)
	return n, err
}

// PivotAlignment is Query 3's TVF: PivotAlignment(pos, seq, quals)
// transforms one alignment into (position, base, qual) rows, one per base.
type PivotAlignment struct{}

// Schema returns (position, base, qual).
func (PivotAlignment) Schema(args []sqltypes.Value) ([]catalog.Column, error) {
	bi, _ := catalog.ParseType("BIGINT")
	vc, _ := catalog.ParseType("VARCHAR(1)")
	it, _ := catalog.ParseType("INT")
	return []catalog.Column{
		{Name: "position", Type: bi},
		{Name: "base", Type: vc},
		{Name: "qual", Type: it},
	}, nil
}

// Iterator expands the alignment.
func (PivotAlignment) Iterator(args []sqltypes.Value) (exec.RowIterator, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("udf: PivotAlignment(pos, seq, quals) takes 3 arguments")
	}
	pos, err := args[0].AsInt()
	if err != nil {
		return nil, err
	}
	s := args[1].AsString()
	q := args[2].AsString()
	rows := make([]sqltypes.Row, len(s))
	for i := 0; i < len(s); i++ {
		qual := 30
		if i < len(q) {
			qual = int(q[i]) - seq.PhredOffset
			if qual < 0 {
				qual = 0
			}
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(pos + int64(i)),
			sqltypes.NewString(string(s[i])),
			sqltypes.NewInt(int64(qual)),
		}
	}
	return &exec.SliceIterator{Rows: rows}, nil
}

// CallBaseAgg is the CallBase(base, qual) user-defined aggregate: the
// quality-weighted consensus call for one position.
type CallBaseAgg struct {
	acc consensus.BaseAccumulator
}

// Add accumulates one (base, qual) observation.
func (c *CallBaseAgg) Add(args []sqltypes.Value) error {
	if len(args) != 2 {
		return fmt.Errorf("udf: CALLBASE takes (base, qual)")
	}
	if args[0].IsNull() {
		return nil
	}
	b := args[0].AsString()
	if len(b) != 1 {
		return fmt.Errorf("udf: CALLBASE base must be a single symbol, got %q", b)
	}
	q, err := args[1].AsInt()
	if err != nil {
		return err
	}
	if q < 0 {
		q = 0
	}
	if q > seq.MaxQuality {
		q = seq.MaxQuality
	}
	c.acc.Add(b[0], byte(q)+seq.PhredOffset)
	return nil
}

// Merge combines partial accumulators (parallel aggregation).
func (c *CallBaseAgg) Merge(o exec.AggState) error {
	c.acc.Merge(&o.(*CallBaseAgg).acc)
	return nil
}

// Result returns the called base as a 1-character string.
func (c *CallBaseAgg) Result() (sqltypes.Value, error) {
	if c.acc.Empty() {
		return sqltypes.Null, nil
	}
	b, _ := c.acc.Call()
	return sqltypes.NewString(string(b)), nil
}

// AssembleSequenceAgg is AssembleSequence(pos, base): it concatenates
// per-position called bases into the final consensus string, ordering by
// position and filling uncovered gaps with N.
type AssembleSequenceAgg struct {
	entries []posBase
}

type posBase struct {
	pos  int64
	base byte
}

// Add collects one (position, base) pair.
func (a *AssembleSequenceAgg) Add(args []sqltypes.Value) error {
	if len(args) != 2 {
		return fmt.Errorf("udf: ASSEMBLESEQUENCE takes (pos, base)")
	}
	if args[0].IsNull() || args[1].IsNull() {
		return nil
	}
	pos, err := args[0].AsInt()
	if err != nil {
		return err
	}
	b := args[1].AsString()
	if len(b) != 1 {
		return fmt.Errorf("udf: ASSEMBLESEQUENCE base must be a single symbol, got %q", b)
	}
	a.entries = append(a.entries, posBase{pos, b[0]})
	return nil
}

// Merge appends another partial state.
func (a *AssembleSequenceAgg) Merge(o exec.AggState) error {
	a.entries = append(a.entries, o.(*AssembleSequenceAgg).entries...)
	return nil
}

// Result sorts by position and concatenates.
func (a *AssembleSequenceAgg) Result() (sqltypes.Value, error) {
	if len(a.entries) == 0 {
		return sqltypes.Null, nil
	}
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i].pos < a.entries[j].pos })
	var sb strings.Builder
	prev := a.entries[0].pos - 1
	for _, e := range a.entries {
		if e.pos == prev {
			continue // duplicate position: first call wins
		}
		for prev+1 < e.pos {
			sb.WriteByte('N')
			prev++
		}
		sb.WriteByte(e.base)
		prev = e.pos
	}
	return sqltypes.NewString(sb.String()), nil
}

// AssembleConsensusAgg is the paper's optimized AssembleConsensus(pos,
// seq, quals) UDA: it consumes whole alignments in ascending position
// order and builds the consensus with a sliding window, avoiding the
// pivot plan's "large intermediate result". It requires ordered input per
// group — the planner provides it via a stream aggregate over a clustered
// scan.
type AssembleConsensusAgg struct {
	caller *consensus.SlidingCaller
	any    bool
}

// NewAssembleConsensusAgg returns an empty state.
func NewAssembleConsensusAgg() *AssembleConsensusAgg {
	return &AssembleConsensusAgg{caller: consensus.NewSlidingCaller()}
}

// Add consumes one alignment (pos, seq, quals).
func (a *AssembleConsensusAgg) Add(args []sqltypes.Value) error {
	if len(args) != 3 {
		return fmt.Errorf("udf: ASSEMBLECONSENSUS takes (pos, seq, quals)")
	}
	if args[0].IsNull() || args[1].IsNull() {
		return nil
	}
	pos, err := args[0].AsInt()
	if err != nil {
		return err
	}
	a.any = true
	return a.caller.Add(consensus.AlignedRead{
		Chrom: "group",
		Pos:   int(pos),
		Seq:   args[1].AsString(),
		Qual:  args[2].AsString(),
	})
}

// Merge rejects non-trivial merges: a sliding window cannot be merged out
// of order. The planner's range partitioning never splits a group across
// partitions, so only empty-state merges occur in practice.
func (a *AssembleConsensusAgg) Merge(o exec.AggState) error {
	other := o.(*AssembleConsensusAgg)
	if !other.any {
		return nil
	}
	if !a.any {
		*a = *other
		return nil
	}
	return fmt.Errorf("udf: ASSEMBLECONSENSUS cannot merge partial windows; group input must be ordered and unpartitioned")
}

// Result finalizes the window into the consensus string.
func (a *AssembleConsensusAgg) Result() (sqltypes.Value, error) {
	if !a.any {
		return sqltypes.Null, nil
	}
	res := a.caller.Finish()
	if len(res) != 1 {
		return sqltypes.Null, fmt.Errorf("udf: ASSEMBLECONSENSUS produced %d spans", len(res))
	}
	return sqltypes.NewString(string(res[0].Seq)), nil
}
