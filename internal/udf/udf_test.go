package udf

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/sequencer"
	"repro/internal/sqltypes"
)

func openTestDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(filepath.Join(t.TempDir(), "db"), core.Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	RegisterAll(db)
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *core.Database, sql string) *core.Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestListShortReadsTVF(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)

	// Write a FASTQ file and import it, as in the paper's Section 3.3.
	src := filepath.Join(t.TempDir(), "855_s_1.fastq")
	f, _ := os.Create(src)
	w := fastq.NewWriter(f)
	for i := 0; i < 100; i++ {
		w.Write(fastq.Record{
			Name: fmt.Sprintf("IL4_855:1:1:%d:%d", i, i*2),
			Seq:  strings.Repeat("ACGT", 9),
			Qual: strings.Repeat("I", 36),
		})
	}
	w.Flush()
	f.Close()
	if _, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"guid":   sqltypes.NewString("meta"),
		"sample": sqltypes.NewInt(855),
		"lane":   sqltypes.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}

	// The paper's example: SELECT * FROM ListShortReads(855, 1, 'FastQ').
	res := mustExec(t, db, `SELECT * FROM ListShortReads(855, 1, 'FastQ')`)
	if len(res.Rows) != 100 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][0].S != "IL4_855:1:1:0:0" || len(res.Rows[0][1].S) != 36 {
		t.Errorf("first row = %v", res.Rows[0])
	}
	// Aggregation over the TVF.
	cnt := mustExec(t, db, `SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ') WHERE CHARINDEX('N', seq) = 0`)
	if cnt.Rows[0][0].I != 100 {
		t.Errorf("count = %v", cnt.Rows)
	}
	// Unknown sample errors.
	if _, err := db.Exec(`SELECT * FROM ListShortReads(999, 1, 'FastQ')`); err == nil {
		t.Error("unknown sample accepted")
	}
	if _, err := db.Exec(`SELECT * FROM ListShortReads(855, 1, 'SRF')`); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestListShortReadsFasta(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)
	src := filepath.Join(t.TempDir(), "ref.fasta")
	f, _ := os.Create(src)
	w := fastq.NewFastaWriter(f)
	w.Write(fastq.FastaRecord{Name: "chr1", Seq: strings.Repeat("ACGT", 40)})
	w.Write(fastq.FastaRecord{Name: "chr2", Seq: "GGGG"})
	w.Flush()
	f.Close()
	if _, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(1), "lane": sqltypes.NewInt(2),
	}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT read_name, LEN(seq) FROM ListShortReads(1, 2, 'Fasta')`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "chr1" || res.Rows[0][1].I != 160 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestListShortReadsSRF(t *testing.T) {
	// The paper's Section 5.3.1: SRF containers (reads + image-analysis
	// intensities) wrap as FileStreams exactly like FASTQ.
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)
	ins := sequencer.NewInstrument("IL4", 12)
	srfRecs, err := ins.RunSRF(sequencer.DefaultFlowcell(1), 1, 900,
		[]string{"ACGTACGTACGT", "GGGGTTTTCCCC", "TTTTACGTAAAA"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "lane.srf")
	f, _ := os.Create(src)
	if err := fastq.WriteSRF(f, srfRecs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(900), "lane": sqltypes.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT read_name, seq, quals, avg_intensity
	                          FROM ListShortReads(900, 1, 'SRF')`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, row := range res.Rows {
		if row[0].S != srfRecs[i].Name || row[1].S != srfRecs[i].Seq {
			t.Errorf("row %d = %v, want %q/%q", i, row, srfRecs[i].Name, srfRecs[i].Seq)
		}
		if row[3].K != sqltypes.KindFloat || row[3].F <= 0 {
			t.Errorf("row %d avg_intensity = %v", i, row[3])
		}
	}
	// SRF rows aggregate like any table: mean signal over the lane.
	agg := mustExec(t, db, `SELECT AVG(avg_intensity), COUNT(*)
	                          FROM ListShortReads(900, 1, 'SRF')
	                         WHERE CHARINDEX('N', seq) = 0`)
	if agg.Rows[0][1].I == 0 {
		t.Error("no clean reads in SRF aggregate")
	}
	// RunSRF's reads must exactly match Run's for the same seed.
	plain, err := ins.Run(sequencer.DefaultFlowcell(1), 1, 900,
		[]string{"ACGTACGTACGT", "GGGGTTTTCCCC", "TTTTACGTAAAA"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != srfRecs[i].Record() {
			t.Errorf("SRF read %d differs from plain run", i)
		}
	}
}

func TestPivotAlignmentTVF(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE a (pos BIGINT, seq VARCHAR(50), quals VARCHAR(50))`)
	mustExec(t, db, `INSERT INTO a VALUES (100, 'ACG', 'I5+')`)
	res := mustExec(t, db, `
	  SELECT position, base, qual FROM a CROSS APPLY PivotAlignment(pos, seq, quals) p`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// 'I' = Q40, '5' = Q20, '+' = Q10.
	want := []struct {
		pos  int64
		base string
		qual int64
	}{{100, "A", 40}, {101, "C", 20}, {102, "G", 10}}
	for i, w := range want {
		r := res.Rows[i]
		if r[0].I != w.pos || r[1].S != w.base || r[2].I != w.qual {
			t.Errorf("row %d = %v, want %+v", i, r, w)
		}
	}
}

func TestQuery3PivotConsensusInSQL(t *testing.T) {
	// The full Query 3 shape from the paper: pivot, group by position with
	// CallBase, then assemble per chromosome.
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE Alignments (chromosome VARCHAR(10), pos BIGINT, seq VARCHAR(50), quals VARCHAR(50))`)
	q30 := func(n int) string { return strings.Repeat("?", n) } // '?' = Q30
	mustExec(t, db, fmt.Sprintf(`INSERT INTO Alignments VALUES
	  ('chr1', 0, 'ACGTA', '%s'),
	  ('chr1', 2, 'GTACG', '%s'),
	  ('chr1', 5, 'CGTAC', '%s'),
	  ('chr2', 0, 'TTTT', '%s')`,
		q30(5), q30(5), q30(5), q30(4)))
	res := mustExec(t, db, `
	  SELECT chromosome, AssembleSequence(position, b)
	    FROM (SELECT chromosome, position, CallBase(base, qual) AS b
	            FROM Alignments
	            CROSS APPLY PivotAlignment(pos, seq, quals) AS p
	           GROUP BY chromosome, position) t
	   GROUP BY chromosome
	   ORDER BY chromosome`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "chr1" || res.Rows[0][1].S != "ACGTACGTAC" {
		t.Errorf("chr1 = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "chr2" || res.Rows[1][1].S != "TTTT" {
		t.Errorf("chr2 = %v", res.Rows[1])
	}
}

func TestQuery3SlidingWindowInSQL(t *testing.T) {
	// The optimized plan: alignments clustered by (chromosome id, pos),
	// stream-aggregated into AssembleConsensus without pivoting.
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE Alignment (
	    a_g_id INT NOT NULL, a_pos BIGINT NOT NULL, a_id BIGINT NOT NULL,
	    seq VARCHAR(100), quals VARCHAR(100),
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id))`)
	q30 := strings.Repeat("?", 5)
	mustExec(t, db, fmt.Sprintf(`INSERT INTO Alignment VALUES
	  (1, 0, 1, 'ACGTA', '%s'),
	  (1, 2, 2, 'GTACG', '%s'),
	  (1, 5, 3, 'CGTAC', '%s'),
	  (2, 0, 4, 'GGGG', '%s')`, q30, q30, q30, strings.Repeat("?", 4)))

	ex := mustExec(t, db, `EXPLAIN SELECT a_g_id, AssembleConsensus(a_pos, seq, quals) FROM Alignment GROUP BY a_g_id`)
	if !strings.Contains(ex.Plan, "Stream Aggregate") {
		t.Errorf("expected stream aggregate over clustered order, got:\n%s", ex.Plan)
	}
	res := mustExec(t, db, `
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals)
	    FROM Alignment GROUP BY a_g_id ORDER BY a_g_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "ACGTACGTAC" {
		t.Errorf("group 1 consensus = %v", res.Rows[0])
	}
	if res.Rows[1][1].S != "GGGG" {
		t.Errorf("group 2 consensus = %v", res.Rows[1])
	}
}

func TestSQLConsensusMatchesLibrary(t *testing.T) {
	// Property: the SQL pivot plan, the SQL sliding-window plan and the
	// library's direct implementations all agree on noisy data.
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE Alignment (
	    a_g_id INT NOT NULL, a_pos BIGINT NOT NULL, a_id BIGINT NOT NULL,
	    seq VARCHAR(100), quals VARCHAR(100),
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id))`)
	reads := []consensus.AlignedRead{}
	rngSeqs := []string{"ACGTACGTAC", "CGTACGTACG", "GTACGTACGT"}
	id := 0
	var rows []sqltypes.Row
	for pos := 0; pos < 30; pos += 3 {
		s := rngSeqs[(pos/3)%3]
		q := strings.Repeat("?", len(s))
		reads = append(reads, consensus.AlignedRead{Chrom: "g1", Pos: pos, Seq: s, Qual: q})
		id++
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(1), sqltypes.NewInt(int64(pos)), sqltypes.NewInt(int64(id)),
			sqltypes.NewString(s), sqltypes.NewString(q),
		})
	}
	if err := db.InsertRows("Alignment", rows); err != nil {
		t.Fatal(err)
	}
	caller := consensus.NewSlidingCaller()
	sort.Slice(reads, func(i, j int) bool { return reads[i].Pos < reads[j].Pos })
	for _, r := range reads {
		if err := caller.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	want := string(caller.Finish()[0].Seq)

	sql1 := mustExec(t, db, `
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals) FROM Alignment GROUP BY a_g_id`)
	if sql1.Rows[0][1].S != want {
		t.Errorf("sliding SQL = %q, library = %q", sql1.Rows[0][1].S, want)
	}
	sql2 := mustExec(t, db, `
	  SELECT AssembleSequence(position, b)
	    FROM (SELECT position, CallBase(base, qual) AS b
	            FROM Alignment CROSS APPLY PivotAlignment(a_pos, seq, quals) AS p
	           GROUP BY position) t`)
	if sql2.Rows[0][0].S != want {
		t.Errorf("pivot SQL = %q, library = %q", sql2.Rows[0][0].S, want)
	}
}

func TestScalarUDFs(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR(50), q VARCHAR(50))`)
	mustExec(t, db, `INSERT INTO t VALUES ('AACG', 'II!!')`)
	res := mustExec(t, db, `SELECT ReverseComplement(s), GCContent(s), AvgQuality(q) FROM t`)
	r := res.Rows[0]
	if r[0].S != "CGTT" {
		t.Errorf("revcomp = %v", r[0])
	}
	if r[1].F != 0.5 {
		t.Errorf("gc = %v", r[1])
	}
	if r[2].F != 20 { // (40+40+0+0)/4
		t.Errorf("avgq = %v", r[2])
	}
}

func TestCallBaseAggQualityWeighting(t *testing.T) {
	agg := &CallBaseAgg{}
	agg.Add([]sqltypes.Value{sqltypes.NewString("A"), sqltypes.NewInt(2)})
	agg.Add([]sqltypes.Value{sqltypes.NewString("A"), sqltypes.NewInt(2)})
	agg.Add([]sqltypes.Value{sqltypes.NewString("G"), sqltypes.NewInt(40)})
	v, err := agg.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "G" {
		t.Errorf("called %v, want G", v)
	}
	// Merge path.
	a1, a2 := &CallBaseAgg{}, &CallBaseAgg{}
	for i := 0; i < 3; i++ {
		a1.Add([]sqltypes.Value{sqltypes.NewString("T"), sqltypes.NewInt(30)})
		a2.Add([]sqltypes.Value{sqltypes.NewString("C"), sqltypes.NewInt(10)})
	}
	a1.Merge(a2)
	v, _ = a1.Result()
	if v.S != "T" {
		t.Errorf("merged call = %v", v)
	}
}

func TestAssembleConsensusRejectsUnordered(t *testing.T) {
	agg := NewAssembleConsensusAgg()
	agg.Add([]sqltypes.Value{sqltypes.NewInt(10), sqltypes.NewString("ACGT"), sqltypes.NewString("IIII")})
	if err := agg.Add([]sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewString("ACGT"), sqltypes.NewString("IIII")}); err == nil {
		t.Error("unordered input accepted")
	}
}

func TestAssembleSequenceGapFill(t *testing.T) {
	agg := &AssembleSequenceAgg{}
	for _, e := range []struct {
		pos  int64
		base string
	}{{5, "A"}, {3, "G"}, {7, "T"}} {
		agg.Add([]sqltypes.Value{sqltypes.NewInt(e.pos), sqltypes.NewString(e.base)})
	}
	v, err := agg.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "GNANT" {
		t.Errorf("assembled = %q", v.S)
	}
}

func TestCallBaseQ30Encoding(t *testing.T) {
	// Sanity: '?' is Phred+33 for Q30, used throughout these tests.
	if q := seq.Quality('?' - seq.PhredOffset); q != 30 {
		t.Fatalf("'?' = Q%d", q)
	}
}
