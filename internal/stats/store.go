package stats

import (
	"encoding/json"
	"os"
	"sync"
)

// Store holds the statistics of every analyzed table and persists them as
// JSON next to the catalog (atomic tmp+rename, like the catalog itself).
// ANALYZE also WAL-logs each TableStats image, so stats written after the
// last checkpoint survive a crash that loses the file: recovery replays
// the records through Apply and re-saves.
type Store struct {
	mu   sync.RWMutex
	path string
	byID map[uint32]*TableStats
}

// OpenStore loads (or initializes) the stats persisted at path.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, byID: map[uint32]*TableStats{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var disk struct {
		Tables []*TableStats `json:"tables"`
	}
	if err := json.Unmarshal(data, &disk); err != nil {
		// Statistics are advisory and re-collectable (ANALYZE, plus the
		// WAL images recovery replays), so a torn or corrupt file must
		// not make the database unopenable: set it aside and start empty.
		_ = os.Rename(path, path+".corrupt")
		return s, nil
	}
	for _, t := range disk.Tables {
		s.byID[t.TableID] = t
	}
	return s, nil
}

// Get returns the stored stats for a table id, or nil.
func (s *Store) Get(id uint32) *TableStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[id]
}

// Apply installs stats without saving (WAL replay during recovery).
func (s *Store) Apply(ts *TableStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[ts.TableID] = ts
}

// Put installs stats and persists the store.
func (s *Store) Put(ts *TableStats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[ts.TableID] = ts
	return s.saveLocked()
}

// Drop removes a dropped table's stats (missing ids are a no-op).
func (s *Store) Drop(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return nil
	}
	delete(s.byID, id)
	return s.saveLocked()
}

// Save persists the current contents (used after recovery replay).
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked()
}

func (s *Store) saveLocked() error {
	var disk struct {
		Tables []*TableStats `json:"tables"`
	}
	for _, t := range s.byID {
		disk.Tables = append(disk.Tables, t)
	}
	data, err := json.MarshalIndent(disk, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
