// Package stats implements table statistics for the cost-aware planner:
// ANALYZE collects per-column row counts, null fractions, min/max bounds,
// NDV estimates (HyperLogLog sketches), most-common values and equi-depth
// histograms from a sampled parallel scan; the planner consumes them to
// estimate predicate selectivity and join output cardinality. Genomics
// workloads are pathologically skewed (read depth, chromosome coverage,
// duplicate reads), which is exactly what raw row counts cannot see and
// histograms + MCVs can.
package stats

import (
	"math"
	"strings"

	"repro/internal/sqltypes"
)

// MCV is one most-common value with its estimated total row count.
type MCV struct {
	Value sqltypes.Value `json:"value"`
	Count int64          `json:"count"`
}

// Bucket is one equi-depth histogram bucket: rows with values greater
// than the previous bucket's upper bound (or >= the column minimum for
// the first bucket) and <= Upper. NDV is the distinct-value count seen in
// the bucket's sample slice (diagnostic; overall NDV drives equality
// estimates).
type Bucket struct {
	Upper sqltypes.Value `json:"upper"`
	Rows  int64          `json:"rows"`
	NDV   int64          `json:"ndv"`
}

// ColumnStats is the collected distribution of one column.
type ColumnStats struct {
	Name      string          `json:"name"`
	NullCount int64           `json:"null_count"`
	NDV       int64           `json:"ndv"`
	Min       *sqltypes.Value `json:"min,omitempty"`
	Max       *sqltypes.Value `json:"max,omitempty"`
	MCVs      []MCV           `json:"mcvs,omitempty"`
	Histogram []Bucket        `json:"histogram,omitempty"`
	// HistRows is the row count the histogram represents (non-null rows
	// not covered by the MCV list).
	HistRows int64 `json:"hist_rows"`
}

// TableStats is one table's collected statistics.
type TableStats struct {
	TableID     uint32 `json:"table_id"`
	Table       string `json:"table"`
	RowCount    int64  `json:"row_count"`
	SampleRows  int64  `json:"sample_rows"`
	AvgRowBytes int64  `json:"avg_row_bytes"`
	// ModCount is the table's modification counter at ANALYZE time; the
	// engine invalidates the stats when the live counter drifts too far.
	ModCount int64         `json:"mod_count"`
	Columns  []ColumnStats `json:"columns"`
}

// Column returns the named column's stats (case-insensitive), or nil.
func (t *TableStats) Column(name string) *ColumnStats {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnNDV returns the column's estimated number of distinct values, or
// 0 when unknown.
func (t *TableStats) ColumnNDV(name string) int64 {
	if c := t.Column(name); c != nil {
		return c.NDV
	}
	return 0
}

// NullSelectivity estimates the fraction of rows passing `col IS [NOT]
// NULL`. ok=false when the column has no stats.
func (t *TableStats) NullSelectivity(col string, negate bool) (float64, bool) {
	c := t.Column(col)
	if c == nil || t.RowCount <= 0 {
		return 0, false
	}
	nullFrac := float64(c.NullCount) / float64(t.RowCount)
	if negate {
		return clampSel(1 - nullFrac), true
	}
	return clampSel(nullFrac), true
}

// CmpSelectivity estimates the fraction of rows passing `col op v` for op
// in =, <>, <, <=, >, >=. ok=false when the column has no stats or the
// operator is unknown.
func (t *TableStats) CmpSelectivity(col, op string, v sqltypes.Value) (float64, bool) {
	c := t.Column(col)
	if c == nil || t.RowCount <= 0 || v.IsNull() {
		return 0, false
	}
	nonNull := float64(t.RowCount-c.NullCount) / float64(t.RowCount)
	eq := c.eqFraction(v, t.RowCount)
	switch op {
	case "=":
		return clampSel(eq), true
	case "<>":
		return clampSel(nonNull - eq), true
	case "<":
		return clampSel(c.belowFraction(v, t.RowCount)), true
	case "<=":
		return clampSel(c.belowFraction(v, t.RowCount) + eq), true
	case ">":
		return clampSel(nonNull - c.belowFraction(v, t.RowCount) - eq), true
	case ">=":
		return clampSel(nonNull - c.belowFraction(v, t.RowCount)), true
	}
	return 0, false
}

// eqFraction estimates the fraction of rows equal to v: exact-ish from
// the MCV list, otherwise uniform across the non-MCV distinct values.
func (c *ColumnStats) eqFraction(v sqltypes.Value, rowCount int64) float64 {
	if rowCount <= 0 {
		return 0
	}
	total := float64(rowCount)
	var mcvRows int64
	for _, m := range c.MCVs {
		if sqltypes.Equal(m.Value, v) {
			return float64(m.Count) / total
		}
		mcvRows += m.Count
	}
	// Outside the recorded range the value cannot exist (min/max are exact
	// over the scanned rows).
	if c.Min != nil && sqltypes.Compare(v, *c.Min) < 0 {
		return 0
	}
	if c.Max != nil && sqltypes.Compare(v, *c.Max) > 0 {
		return 0
	}
	otherRows := rowCount - c.NullCount - mcvRows
	otherNDV := c.NDV - int64(len(c.MCVs))
	if otherRows <= 0 {
		return 0
	}
	if otherNDV <= 0 {
		// All observed values are MCVs and v is not among them.
		return 1 / total
	}
	return float64(otherRows) / float64(otherNDV) / total
}

// belowFraction estimates the fraction of rows strictly less than v,
// combining the MCV list with histogram interpolation.
func (c *ColumnStats) belowFraction(v sqltypes.Value, rowCount int64) float64 {
	if rowCount <= 0 {
		return 0
	}
	total := float64(rowCount)
	var below float64
	for _, m := range c.MCVs {
		if sqltypes.Compare(m.Value, v) < 0 {
			below += float64(m.Count)
		}
	}
	if len(c.Histogram) > 0 && c.HistRows > 0 {
		lower := c.Min
		for i := range c.Histogram {
			b := &c.Histogram[i]
			cmpU := sqltypes.Compare(b.Upper, v)
			if cmpU < 0 {
				below += float64(b.Rows)
				lower = &b.Upper
				continue
			}
			// v falls inside this bucket: interpolate numerically when the
			// bounds allow it, otherwise assume half the bucket.
			below += float64(b.Rows) * bucketFraction(lower, b.Upper, v)
			break
		}
	}
	return below / total
}

// bucketFraction estimates what fraction of a bucket's rows fall strictly
// below v, by linear interpolation over numeric bounds.
func bucketFraction(lower *sqltypes.Value, upper, v sqltypes.Value) float64 {
	if lower == nil {
		return 0.5
	}
	lo, errL := lower.AsFloat()
	hi, errH := upper.AsFloat()
	val, errV := v.AsFloat()
	if errL != nil || errH != nil || errV != nil || hi <= lo {
		return 0.5
	}
	f := (val - lo) / (hi - lo)
	if math.IsNaN(f) {
		return 0.5
	}
	return clampSel(f)
}

func clampSel(s float64) float64 {
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	}
	return s
}

// JoinCardinality estimates the output rows of an equi-join between
// inputs of lRows and rRows rows whose join keys have lNDV and rNDV
// distinct values: rows pair up through the common key domain, which
// containment bounds by the larger NDV. Unknown NDVs (<= 0) fall back to
// the pre-stats guess max(lRows, rRows) — exact for key/foreign-key
// joins.
func JoinCardinality(lRows, rRows, lNDV, rNDV int64) int64 {
	if lNDV <= 0 || rNDV <= 0 {
		if lRows > rRows {
			return lRows
		}
		return rRows
	}
	maxNDV := lNDV
	if rNDV > maxNDV {
		maxNDV = rNDV
	}
	est := float64(lRows) * float64(rRows) / float64(maxNDV)
	if est < 1 {
		return 1
	}
	if est > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(est + 0.5)
}
