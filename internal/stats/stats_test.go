package stats_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/sqltypes"
	"repro/internal/stats"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

// TestHLLAccuracy: the NDV sketch must land within a few percent at the
// cardinalities the planner cares about (the 2^12-register configuration
// has ~1.6% standard error).
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 500, 10_000, 250_000} {
		h := stats.NewHLL()
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			h.Add(rng.Uint64())
		}
		got := float64(h.Estimate())
		tol := 0.06
		if n <= 500 {
			tol = 0.02 // linear-counting range is near exact
		}
		if e := relErr(got, float64(n)); e > tol {
			t.Errorf("n=%d: estimate %v, relative error %.3f > %.2f", n, got, e, tol)
		}
	}
}

// zipfRows draws `n` rows of (key BIGINT, depth BIGINT, name VARCHAR)
// with a Zipfian key — the read-depth / duplicate-read skew shape — plus
// a uniform depth column and occasional NULLs.
func zipfRows(n int, seed int64) ([]sqltypes.Row, map[int64]int64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 4, 40_000)
	counts := map[int64]int64{}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		k := int64(z.Uint64())
		counts[k]++
		depth := sqltypes.NewInt(int64(rng.Intn(1000)))
		if rng.Intn(50) == 0 {
			depth = sqltypes.Null
		}
		rows[i] = sqltypes.Row{sqltypes.NewInt(k), depth, sqltypes.NewString("r")}
	}
	return rows, counts
}

// TestCollectorZipfAccuracy bounds the estimation error over a Zipfian
// read-depth-style dataset: NDV, null fraction, equality selectivity of
// the hottest key (an MCV), and histogram range selectivity.
func TestCollectorZipfAccuracy(t *testing.T) {
	const n = 200_000
	rows, counts := zipfRows(n, 42)
	c := stats.NewCollector([]string{"k", "depth", "name"}, 0, 1)
	for _, r := range rows {
		c.Add(r)
	}
	ts := c.Finalize(1, "reads", 0, stats.DefaultHistogramBuckets, stats.DefaultMCVs)
	if ts.RowCount != n {
		t.Fatalf("RowCount = %d, want %d", ts.RowCount, n)
	}

	// NDV of the skewed key within 10%.
	if e := relErr(float64(ts.ColumnNDV("k")), float64(len(counts))); e > 0.10 {
		t.Errorf("k NDV %d vs actual %d: relative error %.3f", ts.ColumnNDV("k"), len(counts), e)
	}

	// The hottest key must surface as an MCV with a usable frequency.
	var hotKey, hotCount int64
	for k, cnt := range counts {
		if cnt > hotCount {
			hotKey, hotCount = k, cnt
		}
	}
	sel, ok := ts.CmpSelectivity("k", "=", sqltypes.NewInt(hotKey))
	if !ok {
		t.Fatal("no selectivity for the hottest key")
	}
	actual := float64(hotCount) / n
	if e := relErr(sel, actual); e > 0.25 {
		t.Errorf("hot-key selectivity %.5f vs actual %.5f: relative error %.3f", sel, actual, e)
	}

	// Uniform depth column: range selectivity within 5 points absolute.
	for _, bound := range []int64{100, 500, 900} {
		sel, ok := ts.CmpSelectivity("depth", "<", sqltypes.NewInt(bound))
		if !ok {
			t.Fatalf("no range selectivity for depth < %d", bound)
		}
		var want float64
		for _, r := range rows {
			if !r[1].IsNull() && r[1].I < bound {
				want++
			}
		}
		want /= n
		if math.Abs(sel-want) > 0.05 {
			t.Errorf("depth < %d: selectivity %.4f vs actual %.4f", bound, sel, want)
		}
	}

	// Null fraction of depth (~2%).
	nullSel, ok := ts.NullSelectivity("depth", false)
	if !ok || math.Abs(nullSel-0.02) > 0.005 {
		t.Errorf("depth null fraction %.4f (ok=%v), want ~0.02", nullSel, ok)
	}

	// Out-of-range equality must estimate ~zero rows.
	if sel, ok := ts.CmpSelectivity("k", "=", sqltypes.NewInt(99_999_999)); !ok || sel != 0 {
		t.Errorf("out-of-range equality selectivity %.6f (ok=%v), want 0", sel, ok)
	}
}

// TestCollectorMergeMatchesSingle: partition-parallel collection (the
// ANALYZE shape) must agree with a single collector over the same rows.
func TestCollectorMergeMatchesSingle(t *testing.T) {
	const n = 80_000
	rows, _ := zipfRows(n, 7)
	names := []string{"k", "depth", "name"}

	single := stats.NewCollector(names, 0, 1)
	for _, r := range rows {
		single.Add(r)
	}
	one := single.Finalize(1, "t", 0, stats.DefaultHistogramBuckets, stats.DefaultMCVs)

	parts := make([]*stats.Collector, 4)
	for i := range parts {
		parts[i] = stats.NewCollector(names, 0, int64(i+2))
	}
	for i, r := range rows {
		parts[i%4].Add(r)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	four := merged.Finalize(1, "t", 0, stats.DefaultHistogramBuckets, stats.DefaultMCVs)

	if four.RowCount != one.RowCount {
		t.Fatalf("merged RowCount %d, single %d", four.RowCount, one.RowCount)
	}
	for _, col := range names {
		a, b := one.Column(col), four.Column(col)
		if a.NullCount != b.NullCount {
			t.Errorf("%s: null counts differ: %d vs %d", col, a.NullCount, b.NullCount)
		}
		// The HLL merge is exact (register max), so NDVs must be close;
		// reservoir-derived numbers may wobble slightly.
		if e := relErr(float64(b.NDV), float64(a.NDV)); e > 0.02 {
			t.Errorf("%s: merged NDV %d vs single %d", col, b.NDV, a.NDV)
		}
		if (a.Min == nil) != (b.Min == nil) || (a.Min != nil && sqltypes.Compare(*a.Min, *b.Min) != 0) {
			t.Errorf("%s: min differs", col)
		}
		if (a.Max == nil) != (b.Max == nil) || (a.Max != nil && sqltypes.Compare(*a.Max, *b.Max) != 0) {
			t.Errorf("%s: max differs", col)
		}
	}
	// Range estimates from the merged sample stay close to the single
	// collector's.
	for _, bound := range []int64{250, 750} {
		s1, _ := one.CmpSelectivity("depth", "<", sqltypes.NewInt(bound))
		s4, _ := four.CmpSelectivity("depth", "<", sqltypes.NewInt(bound))
		if math.Abs(s1-s4) > 0.05 {
			t.Errorf("depth < %d: single %.4f vs merged %.4f", bound, s1, s4)
		}
	}
}

// TestStatsJSONRoundTrip: stats persist through the catalog's JSON file;
// estimates must survive the trip bit-for-bit.
func TestStatsJSONRoundTrip(t *testing.T) {
	rows, _ := zipfRows(30_000, 3)
	c := stats.NewCollector([]string{"k", "depth", "name"}, 0, 1)
	for _, r := range rows {
		c.Add(r)
	}
	ts := c.Finalize(9, "t", 123, stats.DefaultHistogramBuckets, stats.DefaultMCVs)
	data, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back stats.TableStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ModCount != 123 || back.RowCount != ts.RowCount || back.TableID != 9 {
		t.Fatalf("header fields lost: %+v", back)
	}
	for _, probe := range []int64{0, 5, 100, 700} {
		a, aok := ts.CmpSelectivity("depth", "<=", sqltypes.NewInt(probe))
		b, bok := back.CmpSelectivity("depth", "<=", sqltypes.NewInt(probe))
		if aok != bok || a != b {
			t.Fatalf("selectivity changed across JSON round trip: %.6f/%v vs %.6f/%v", a, aok, b, bok)
		}
	}
}

// TestJoinCardinality checks the containment formula and its fallback.
func TestJoinCardinality(t *testing.T) {
	// Key/foreign-key: every left key distinct, right references them.
	if got := stats.JoinCardinality(1000, 5000, 1000, 1000); relErr(float64(got), 5000) > 0.01 {
		t.Errorf("FK join estimate %d, want ~5000", got)
	}
	// Unknown NDVs fall back to max(l, r).
	if got := stats.JoinCardinality(1000, 5000, 0, 0); got != 5000 {
		t.Errorf("fallback estimate %d, want 5000", got)
	}
	// Many-to-many through a small shared domain.
	if got := stats.JoinCardinality(1000, 1000, 10, 10); relErr(float64(got), 100_000) > 0.01 {
		t.Errorf("m:n estimate %d, want ~100000", got)
	}
}

// TestDuplicateReadDatasetAccuracy runs the collector over the DGE
// duplicate-read dataset (Zipf tag frequencies, the paper's Table 1
// shape): the sequence column's NDV estimate must track the actual
// unique-tag count, and the tag-frequency skew must surface in the MCVs.
func TestDuplicateReadDatasetAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds, err := bench.BuildDGE(20_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.NewCollector([]string{"read_name", "seq"}, 0, 1)
	actual := map[string]int64{}
	for _, r := range ds.Reads {
		c.Add(sqltypes.Row{sqltypes.NewString(r.Name), sqltypes.NewString(r.Seq)})
		actual[r.Seq]++
	}
	ts := c.Finalize(1, "reads", 0, stats.DefaultHistogramBuckets, stats.DefaultMCVs)
	if ts.RowCount != int64(len(ds.Reads)) {
		t.Fatalf("RowCount %d, want %d", ts.RowCount, len(ds.Reads))
	}
	if e := relErr(float64(ts.ColumnNDV("seq")), float64(len(actual))); e > 0.10 {
		t.Errorf("seq NDV %d vs actual %d uniques: relative error %.3f",
			ts.ColumnNDV("seq"), len(actual), e)
	}
	// read_name is unique per read: NDV ~ RowCount.
	if e := relErr(float64(ts.ColumnNDV("read_name")), float64(ts.RowCount)); e > 0.10 {
		t.Errorf("read_name NDV %d vs %d rows: relative error %.3f",
			ts.ColumnNDV("read_name"), ts.RowCount, e)
	}
	// The most duplicated read must be an MCV whose estimate tracks its
	// true frequency (the duplicate-detection skew the planner needs).
	var hotSeq string
	var hotCount int64
	for s, cnt := range actual {
		if cnt > hotCount {
			hotSeq, hotCount = s, cnt
		}
	}
	sel, ok := ts.CmpSelectivity("seq", "=", sqltypes.NewString(hotSeq))
	if !ok {
		t.Fatal("no selectivity for the hottest read")
	}
	want := float64(hotCount) / float64(ts.RowCount)
	if e := relErr(sel, want); e > 0.35 {
		t.Errorf("hot read selectivity %.5f vs actual %.5f: relative error %.3f", sel, want, e)
	}
}
