package stats

import "math"

// hllPrecision is the register-index bit width: 2^12 = 4096 registers
// (~4 KB per column sketch, ~1.6% standard error) — small enough to
// persist per column in the catalog stats file, accurate enough that the
// planner's NDV-driven decisions (join cardinality, build side) are
// stable.
const hllPrecision = 12

const hllRegisters = 1 << hllPrecision

// HLL is a HyperLogLog distinct-count sketch. Registers are exported so
// the sketch round-trips through the JSON stats file. Add and Merge are
// not safe for concurrent use; ANALYZE gives each scan partition its own
// sketch and merges.
type HLL struct {
	Registers []byte `json:"registers"`
}

// NewHLL returns an empty sketch.
func NewHLL() *HLL {
	return &HLL{Registers: make([]byte, hllRegisters)}
}

// Add observes one value by its 64-bit hash.
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - hllPrecision)
	// Rank of the first set bit in the remaining bits (1-based), capped so
	// a zero suffix still yields a valid register value.
	rest := hash<<hllPrecision | 1<<(hllPrecision-1)
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if h.Registers[idx] < rank {
		h.Registers[idx] = rank
	}
}

// Merge folds another sketch into h (register-wise max).
func (h *HLL) Merge(o *HLL) {
	if o == nil || len(o.Registers) != len(h.Registers) {
		return
	}
	for i, r := range o.Registers {
		if r > h.Registers[i] {
			h.Registers[i] = r
		}
	}
}

// Estimate returns the approximate number of distinct values observed.
func (h *HLL) Estimate() int64 {
	if len(h.Registers) == 0 {
		return 0
	}
	m := float64(len(h.Registers))
	alpha := 0.7213 / (1 + 1.079/m)
	var sum float64
	zeros := 0
	for _, r := range h.Registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		return 0
	}
	return int64(est + 0.5)
}
