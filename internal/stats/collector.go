package stats

import (
	"math/rand"
	"sort"

	"repro/internal/sqltypes"
)

// DefaultSampleSize is the per-column reservoir capacity: large enough
// that a 64-bucket equi-depth histogram gets ~128 sample values per
// bucket, small enough that ANALYZE never holds more than a few MB per
// column.
const DefaultSampleSize = 8192

// DefaultHistogramBuckets is the equi-depth bucket count.
const DefaultHistogramBuckets = 64

// DefaultMCVs is the most-common-values list length.
const DefaultMCVs = 16

// reservoir is a uniform row sample of one column's non-null values
// (Vitter's algorithm R), mergeable across scan partitions.
type reservoir struct {
	cap  int
	seen int64
	vals []sqltypes.Value
	rng  *rand.Rand
}

func (r *reservoir) add(v sqltypes.Value) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.vals[j] = v
	}
}

// merge folds o into r, drawing from each side proportionally to how many
// values it has seen, so the merged reservoir stays ~uniform over the
// union stream.
func (r *reservoir) merge(o *reservoir) {
	if o.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.seen, r.vals = o.seen, o.vals
		return
	}
	a, b := r.vals, o.vals
	r.rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	r.rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	merged := make([]sqltypes.Value, 0, r.cap)
	for len(merged) < r.cap && (len(a) > 0 || len(b) > 0) {
		takeA := len(b) == 0 || (len(a) > 0 && r.rng.Int63n(r.seen+o.seen) < r.seen)
		if takeA {
			merged = append(merged, a[0])
			a = a[1:]
		} else {
			merged = append(merged, b[0])
			b = b[1:]
		}
	}
	r.vals = merged
	r.seen += o.seen
}

// colAcc accumulates one column's statistics.
type colAcc struct {
	nulls    int64
	hasRange bool
	min, max sqltypes.Value
	hll      *HLL
	sample   *reservoir
}

// Collector accumulates per-column statistics over one scan partition.
// It is not safe for concurrent use: ANALYZE runs one collector per
// partition and merges them.
type Collector struct {
	names []string
	cols  []colAcc
	rows  int64
	bytes int64
}

// NewCollector returns a collector for the named columns. sampleCap
// bounds the per-column reservoir (<= 0 uses DefaultSampleSize); seed
// makes the sampling deterministic for tests.
func NewCollector(names []string, sampleCap int, seed int64) *Collector {
	if sampleCap <= 0 {
		sampleCap = DefaultSampleSize
	}
	c := &Collector{names: names, cols: make([]colAcc, len(names))}
	for i := range c.cols {
		c.cols[i].hll = NewHLL()
		c.cols[i].sample = &reservoir{
			cap: sampleCap,
			rng: rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
	}
	return c
}

// Add observes one row. Retained values are cloned, so callers may reuse
// the row buffer.
func (c *Collector) Add(row sqltypes.Row) {
	c.rows++
	for i := range c.cols {
		if i >= len(row) {
			break
		}
		v := row[i]
		c.bytes += int64(len(v.S)) + int64(len(v.B)) + 48
		a := &c.cols[i]
		if v.IsNull() {
			a.nulls++
			continue
		}
		a.hll.Add(sqltypes.Hash(v))
		v = cloneValue(v)
		if !a.hasRange {
			a.min, a.max, a.hasRange = v, v, true
		} else {
			if sqltypes.Compare(v, a.min) < 0 {
				a.min = v
			}
			if sqltypes.Compare(v, a.max) > 0 {
				a.max = v
			}
		}
		a.sample.add(v)
	}
	c.bytes += 24
}

// Rows returns the observed row count.
func (c *Collector) Rows() int64 { return c.rows }

// Merge folds another collector (same column layout) into c.
func (c *Collector) Merge(o *Collector) {
	c.rows += o.rows
	c.bytes += o.bytes
	for i := range c.cols {
		if i >= len(o.cols) {
			break
		}
		a, b := &c.cols[i], &o.cols[i]
		a.nulls += b.nulls
		a.hll.Merge(b.hll)
		if b.hasRange {
			if !a.hasRange {
				a.min, a.max, a.hasRange = b.min, b.max, true
			} else {
				if sqltypes.Compare(b.min, a.min) < 0 {
					a.min = b.min
				}
				if sqltypes.Compare(b.max, a.max) > 0 {
					a.max = b.max
				}
			}
		}
		a.sample.merge(b.sample)
	}
}

// Finalize builds the persistent statistics: NDV from the sketch, MCVs
// and an equi-depth histogram from the sorted reservoir sample, scaled to
// the full table.
func (c *Collector) Finalize(tableID uint32, table string, modCount int64, buckets, mcvCap int) *TableStats {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	if mcvCap < 0 {
		mcvCap = DefaultMCVs
	}
	ts := &TableStats{
		TableID:  tableID,
		Table:    table,
		RowCount: c.rows,
		ModCount: modCount,
		Columns:  make([]ColumnStats, len(c.cols)),
	}
	if c.rows > 0 {
		ts.AvgRowBytes = c.bytes / c.rows
	}
	for i := range c.cols {
		a := &c.cols[i]
		cs := ColumnStats{Name: c.names[i], NullCount: a.nulls}
		nonNull := c.rows - a.nulls
		if ndv := a.hll.Estimate(); ndv < nonNull {
			cs.NDV = ndv
		} else {
			cs.NDV = nonNull
		}
		if a.hasRange {
			mn, mx := a.min, a.max
			cs.Min, cs.Max = &mn, &mx
		}
		if int64(len(a.sample.vals)) > ts.SampleRows {
			ts.SampleRows = int64(len(a.sample.vals))
		}
		finalizeDistribution(&cs, a.sample.vals, nonNull, buckets, mcvCap)
		ts.Columns[i] = cs
	}
	return ts
}

// valueRun is one distinct sample value and its sample frequency.
type valueRun struct {
	v sqltypes.Value
	n int
}

// finalizeDistribution fills the MCV list and equi-depth histogram of one
// column from its sorted sample, scaling sample frequencies to nonNull
// total rows.
func finalizeDistribution(cs *ColumnStats, sample []sqltypes.Value, nonNull int64, buckets, mcvCap int) {
	if len(sample) == 0 || nonNull <= 0 {
		return
	}
	sort.Slice(sample, func(i, j int) bool { return sqltypes.Compare(sample[i], sample[j]) < 0 })
	var runs []valueRun
	for _, v := range sample {
		if n := len(runs); n > 0 && sqltypes.Equal(runs[n-1].v, v) {
			runs[n-1].n++
		} else {
			runs = append(runs, valueRun{v: v, n: 1})
		}
	}
	scale := float64(nonNull) / float64(len(sample))

	// MCVs: values clearly more frequent than the uniform expectation.
	// Sort candidate runs by frequency without disturbing `runs` order.
	idx := make([]int, len(runs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return runs[idx[a]].n > runs[idx[b]].n })
	minCount := 2
	if u := 2 * len(sample) / len(runs); u+1 > minCount {
		minCount = u + 1 // at least 2x the average sample frequency
	}
	isMCV := make(map[int]bool)
	for _, ri := range idx {
		if len(cs.MCVs) >= mcvCap || runs[ri].n < minCount {
			break
		}
		isMCV[ri] = true
		cs.MCVs = append(cs.MCVs, MCV{
			Value: runs[ri].v,
			Count: int64(float64(runs[ri].n)*scale + 0.5),
		})
	}
	sort.Slice(cs.MCVs, func(a, b int) bool { return cs.MCVs[a].Count > cs.MCVs[b].Count })

	// Equi-depth histogram over the non-MCV remainder of the sample.
	var rest []valueRun
	restLen := 0
	for ri, r := range runs {
		if !isMCV[ri] {
			rest = append(rest, r)
			restLen += r.n
		}
	}
	if restLen == 0 {
		return
	}
	var mcvRows int64
	for _, m := range cs.MCVs {
		mcvRows += m.Count
	}
	cs.HistRows = nonNull - mcvRows
	if cs.HistRows < 0 {
		cs.HistRows = 0
	}
	if buckets > restLen {
		buckets = restLen
	}
	per := float64(restLen) / float64(buckets)
	rowScale := float64(cs.HistRows) / float64(restLen)
	filled, bNDV, bRows := 0, int64(0), 0
	target := per
	for _, r := range rest {
		bNDV++
		bRows += r.n
		filled += r.n
		if float64(filled) >= target-0.5 {
			cs.Histogram = append(cs.Histogram, Bucket{
				Upper: r.v,
				Rows:  int64(float64(bRows)*rowScale + 0.5),
				NDV:   bNDV,
			})
			bNDV, bRows = 0, 0
			target = per * float64(len(cs.Histogram)+1)
		}
	}
	if bRows > 0 {
		cs.Histogram = append(cs.Histogram, Bucket{
			Upper: rest[len(rest)-1].v,
			Rows:  int64(float64(bRows)*rowScale + 0.5),
			NDV:   bNDV,
		})
	}
}

func cloneValue(v sqltypes.Value) sqltypes.Value {
	if v.K == sqltypes.KindBytes && v.B != nil {
		v.B = append([]byte(nil), v.B...)
	}
	return v
}
