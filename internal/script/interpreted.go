package script

import (
	"io"
	"sort"
	"time"

	"repro/internal/expr"
	"repro/internal/fastq"
	"repro/internal/sqltypes"
)

// BinUniqueReadsInterpreted is the honest stand-in for the paper's Perl
// script: the same slurp-process-write algorithm as BinUniqueReads, but
// every string operation runs through a boxed, tree-walking expression
// interpreter with copy-on-extract semantics — the execution model of a
// scripting-language interpreter (Perl opcodes over SVs), which is what
// made the paper's 26-line script take 10 minutes. The compiled-Go
// BinUniqueReads is reported alongside as the "compiled tool" ablation.
func BinUniqueReadsInterpreted(in io.Reader, out io.Writer) (Trace, int, error) {
	var tr Trace
	start := time.Now()

	// Phase 1: slurp the whole file, as the Perl script does.
	content, err := io.ReadAll(in)
	if err != nil {
		return tr, 0, err
	}
	tRead := time.Now()
	tr.Phases = append(tr.Phases, Phase{"read", tRead.Sub(start)})

	// Phase 2: interpreted line loop.
	reg := expr.NewRegistry()
	charindexFn, _ := reg.Lookup("charindex")
	substringFn, _ := reg.Lookup("substring")
	// Extracting a value in an interpreter copies it out of the buffer.
	substringCopy := func(args []sqltypes.Value) (sqltypes.Value, error) {
		v, err := substringFn(args)
		if err != nil {
			return v, err
		}
		return sqltypes.NewString(string(append([]byte(nil), v.S...))), nil
	}

	// Interpreter "variables": $content, $off, $line.
	vars := sqltypes.Row{sqltypes.NewString(string(content)), sqltypes.NewInt(1), sqltypes.Null}
	colContent := &expr.Col{Idx: 0, Name: "$content"}
	colOff := &expr.Col{Idx: 1, Name: "$off"}
	colLine := &expr.Col{Idx: 2, Name: "$line"}
	newline := &expr.Lit{V: sqltypes.NewString("\n")}
	nSym := &expr.Lit{V: sqltypes.NewString("N")}
	// $idx = index($content, "\n", $off)
	idxExpr := &expr.Call{Name: "CHARINDEX", Fn: charindexFn, Args: []expr.Expr{newline, colContent, colOff}}
	// $has_n = index($line, "N") > 0
	hasNExpr := &expr.Cmp{Op: expr.CmpGt,
		L: &expr.Call{Name: "CHARINDEX", Fn: charindexFn, Args: []expr.Expr{nSym, colLine}},
		R: &expr.Lit{V: sqltypes.NewInt(0)}}

	counts := make(map[string]int64)
	lineNo := 0
	for {
		idxV, err := idxExpr.Eval(vars)
		if err != nil {
			return tr, 0, err
		}
		if idxV.I == 0 {
			break
		}
		lineExpr := &expr.Call{Name: "SUBSTRING", Fn: expr.ScalarFunc(substringCopy), Args: []expr.Expr{
			colContent, colOff,
			&expr.Arith{Op: expr.OpSub, L: &expr.Lit{V: idxV}, R: colOff},
		}}
		lineV, err := lineExpr.Eval(vars)
		if err != nil {
			return tr, 0, err
		}
		if lineNo%4 == 1 { // the sequence line of the FASTQ record
			vars[2] = lineV
			hasN, err := hasNExpr.Eval(vars)
			if err != nil {
				return tr, 0, err
			}
			if !expr.Truthy(hasN) {
				counts[lineV.S]++
			}
		}
		lineNo++
		vars[1] = sqltypes.NewInt(idxV.I + 1)
	}
	type kv struct {
		s string
		n int64
	}
	sorted := make([]kv, 0, len(counts))
	for s, n := range counts {
		sorted = append(sorted, kv{s, n})
	}
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].n != sorted[b].n {
			return sorted[a].n > sorted[b].n
		}
		return sorted[a].s < sorted[b].s
	})
	tProc := time.Now()
	tr.Phases = append(tr.Phases, Phase{"process", tProc.Sub(tRead)})

	// Phase 3: write.
	tags := make([]fastq.TagRecord, len(sorted))
	for i, e := range sorted {
		tags[i] = fastq.TagRecord{Seq: e.s, Frequency: e.n}
	}
	if err := fastq.WriteTags(out, tags); err != nil {
		return tr, 0, err
	}
	tr.Phases = append(tr.Phases, Phase{"write", time.Since(tProc)})
	tr.Total = time.Since(start)
	return tr, len(tags), nil
}
