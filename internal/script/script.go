// Package script reimplements the paper's sequential "Perl script"
// baselines: single-threaded slurp-process-write programs whose resource
// profile (Figure 7: read everything into memory, then process on one
// core, then write) contrasts with the engine's parallel plans (Figure 8).
// Phase timings are recorded so the experiment harness can render the
// paper's resource-consumption comparison.
package script

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/fastq"
	"repro/internal/seq"
)

// Phase is one timed stage of a script run.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Trace is the phase breakdown of a run.
type Trace struct {
	Phases []Phase
	Total  time.Duration
}

// String renders the trace as a one-line summary.
func (t Trace) String() string {
	s := ""
	for i, p := range t.Phases {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%.2fs", p.Name, p.Duration.Seconds())
	}
	return fmt.Sprintf("total=%.2fs (%s)", t.Total.Seconds(), s)
}

// BinUniqueReads is the 26-line-Perl-script equivalent from Section 4.2.1:
// read the entire FASTQ input into memory, count distinct sequences
// (skipping reads with 'N'), sort by descending frequency, and write
// "seq<TAB>count" lines. Deliberately sequential and memory-hungry.
func BinUniqueReads(in io.Reader, out io.Writer) (Trace, int, error) {
	var tr Trace
	start := time.Now()

	// Phase 1: slurp ("it first reads all data into main memory").
	reads, err := fastq.ReadAll(in)
	if err != nil {
		return tr, 0, err
	}
	tRead := time.Now()
	tr.Phases = append(tr.Phases, Phase{"read", tRead.Sub(start)})

	// Phase 2: process on one core.
	counts := make(map[string]int64)
	for i := range reads {
		s := reads[i].Seq
		if seq.HasN(s) {
			continue
		}
		counts[s]++
	}
	type kv struct {
		s string
		n int64
	}
	sorted := make([]kv, 0, len(counts))
	for s, n := range counts {
		sorted = append(sorted, kv{s, n})
	}
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].n != sorted[b].n {
			return sorted[a].n > sorted[b].n
		}
		return sorted[a].s < sorted[b].s
	})
	tProc := time.Now()
	tr.Phases = append(tr.Phases, Phase{"process", tProc.Sub(tRead)})

	// Phase 3: write the result.
	tags := make([]fastq.TagRecord, len(sorted))
	for i, e := range sorted {
		tags[i] = fastq.TagRecord{Seq: e.s, Frequency: e.n}
	}
	if err := fastq.WriteTags(out, tags); err != nil {
		return tr, 0, err
	}
	tr.Phases = append(tr.Phases, Phase{"write", time.Since(tProc)})
	tr.Total = time.Since(start)
	return tr, len(tags), nil
}

// ExpressionScript is the sequential version of the paper's Query 2
// workflow: read an alignment file and a tag-frequency file, join them in
// memory, group by gene, and write the expression table.
func ExpressionScript(alignments io.Reader, tags io.Reader, out io.Writer,
	resolve func(ref string, pos int64) (string, bool)) (Trace, int, error) {
	var tr Trace
	start := time.Now()
	aligns, err := fastq.ReadAllAlignments(alignments)
	if err != nil {
		return tr, 0, err
	}
	tagList, err := fastq.ReadTags(tags)
	if err != nil {
		return tr, 0, err
	}
	tRead := time.Now()
	tr.Phases = append(tr.Phases, Phase{"read", tRead.Sub(start)})

	freq := make(map[string]int64, len(tagList))
	for _, t := range tagList {
		freq[t.Seq] = t.Frequency
	}
	type acc struct{ total, tags int64 }
	byGene := map[string]*acc{}
	for i := range aligns {
		gene, ok := resolve(aligns[i].RefName, aligns[i].Pos)
		if !ok {
			continue
		}
		g := byGene[gene]
		if g == nil {
			g = &acc{}
			byGene[gene] = g
		}
		f := freq[aligns[i].Seq]
		if f == 0 {
			f = 1
		}
		g.total += f
		g.tags++
	}
	var recs []fastq.ExpressionRecord
	for gene, g := range byGene {
		recs = append(recs, fastq.ExpressionRecord{Gene: gene, TotalFrequency: g.total, TagCount: g.tags})
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].TotalFrequency != recs[b].TotalFrequency {
			return recs[a].TotalFrequency > recs[b].TotalFrequency
		}
		return recs[a].Gene < recs[b].Gene
	})
	tProc := time.Now()
	tr.Phases = append(tr.Phases, Phase{"process", tProc.Sub(tRead)})
	if err := fastq.WriteExpression(out, recs); err != nil {
		return tr, 0, err
	}
	tr.Phases = append(tr.Phases, Phase{"write", time.Since(tProc)})
	tr.Total = time.Since(start)
	return tr, len(recs), nil
}
