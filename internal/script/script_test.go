package script

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fastq"
)

func TestBinUniqueReadsMatchesExpectation(t *testing.T) {
	var in bytes.Buffer
	w := fastq.NewWriter(&in)
	for _, s := range []string{"ACGT", "ACGT", "GGGG", "ACNT", "ACGT"} {
		w.Write(fastq.Record{Name: "r", Seq: s, Qual: strings.Repeat("I", len(s))})
	}
	w.Flush()

	var out bytes.Buffer
	trace, n, err := BinUniqueReads(&in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("unique tags = %d", n)
	}
	if len(trace.Phases) != 3 {
		t.Errorf("phases = %+v", trace.Phases)
	}
	for i, want := range []string{"read", "process", "write"} {
		if trace.Phases[i].Name != want {
			t.Errorf("phase %d = %s", i, trace.Phases[i].Name)
		}
	}
	tags, err := fastq.ReadTags(&out)
	if err != nil {
		t.Fatal(err)
	}
	if tags[0].Seq != "ACGT" || tags[0].Frequency != 3 {
		t.Errorf("top = %+v", tags[0])
	}
	if trace.Total <= 0 {
		t.Error("total duration not recorded")
	}
	if trace.String() == "" {
		t.Error("empty trace string")
	}
}

func TestExpressionScript(t *testing.T) {
	var aligns bytes.Buffer
	fastq.WriteAlignments(&aligns, []fastq.AlignmentRecord{
		{ReadName: "t1", RefName: "chr1", Pos: 10, Strand: '+', MapQ: 60, Seq: "AAAA", Qual: "IIII"},
		{ReadName: "t2", RefName: "chr1", Pos: 12, Strand: '+', MapQ: 60, Seq: "CCCC", Qual: "IIII"},
	})
	var tags bytes.Buffer
	fastq.WriteTags(&tags, []fastq.TagRecord{{Seq: "AAAA", Frequency: 7}, {Seq: "CCCC", Frequency: 3}})

	var out bytes.Buffer
	_, n, err := ExpressionScript(&aligns, &tags, &out, func(ref string, pos int64) (string, bool) {
		return "G1", true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("genes = %d", n)
	}
	recs, _ := fastq.ReadExpression(&out)
	if recs[0].Gene != "G1" || recs[0].TotalFrequency != 10 || recs[0].TagCount != 2 {
		t.Errorf("rec = %+v", recs[0])
	}
}
