package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestNilInjectorPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OpenFile(nil, "test", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var nilInj *Injector
	if nilInj.Crashed() || nilInj.Point("x") != nil || nilInj.Points() != 0 {
		t.Fatal("nil injector must be inert")
	}
}

func TestInjectEIOAndENOSPC(t *testing.T) {
	in := New(
		&Rule{Site: "wal", Op: OpSync, Nth: 2, Kind: Kind(KindErrIO)},
		&Rule{Site: "spill", Op: OpWrite, Kind: KindErrNoSpace},
	)
	dir := t.TempDir()
	wal, err := OpenFile(in, "wal", filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	spill, err := OpenFile(in, "spill", filepath.Join(dir, "spill"))
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	if err := wal.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := wal.Sync(); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("second sync: want ErrInjectedIO, got %v", err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("third sync should pass (Nth=2 fires once): %v", err)
	}
	if _, err := spill.WriteAt([]byte("x"), 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("spill write: want ErrNoSpace, got %v", err)
	}
	if in.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", in.Fired())
	}
}

func TestTornWrite(t *testing.T) {
	in := New(&Rule{Op: OpWrite, Nth: 1, Kind: KindTorn, TornFrac: 0.5})
	dir := t.TempDir()
	f, err := OpenFile(in, "heap", filepath.Join(dir, "h"))
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	n, err := f.WriteAt(bytes.Repeat([]byte{0xAB}, 100), 0)
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("want ErrInjectedIO, got %v", err)
	}
	if n != 50 {
		t.Fatalf("torn write applied %d bytes, want 50", n)
	}
	if sz, _ := f.Size(); sz != 50 {
		t.Fatalf("size = %d, want 50", sz)
	}
}

// TestCrashDiscardsUnsynced is the core power-loss contract: synced bytes
// survive, buffered bytes vanish, and all later I/O fails with ErrCrashed.
func TestCrashDiscardsUnsynced(t *testing.T) {
	in := New(&Rule{Op: OpSync, Nth: 2, Kind: KindCrash})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OpenFile(in, "heap", path)
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("lost bytes"), 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
	if err := in.PersistErr(); err != nil {
		t.Fatalf("persist failed: %v", err)
	}
	if _, err := f.WriteAt([]byte("z"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: want ErrCrashed, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("on-disk content after crash = %q, want %q", got, "durable")
	}
}

// TestTornCrashKeepsBufferedPrefix checks torn power loss: buffered
// writes survive, and the write at the crash point is applied partially.
func TestTornCrashKeepsBufferedPrefix(t *testing.T) {
	in := New(&Rule{Op: OpWrite, Nth: 2, Kind: KindCrash, TornFrac: 0.5})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OpenFile(in, "wal", path)
	if err != nil {
		t.Fatal(err)
	}
	in.Arm()
	if _, err := f.WriteAt([]byte("unsynced"), 0); err != nil {
		t.Fatal(err)
	}
	n, err := f.WriteAt([]byte("TORNTORN"), 8)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if n != 4 {
		t.Fatalf("crash write applied %d bytes, want 4", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "unsyncedTORN" {
		t.Fatalf("on-disk content = %q, want %q", got, "unsyncedTORN")
	}
}

func TestReopenResumesBufferedState(t *testing.T) {
	in := New()
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OpenFile(in, "heap", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("buffered"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(in, "heap", path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "buffered" {
		t.Fatalf("reopen lost buffered state: %q", buf)
	}
}

func TestRenameTransfersShim(t *testing.T) {
	in := New()
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old")
	newPath := filepath.Join(dir, "new")
	f, err := OpenFile(in, "btree", oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("shadow"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Rename(in, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(in, "btree", newPath)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shadow" {
		t.Fatalf("rename lost content: %q", buf)
	}
	// Crash now: the renamed file must persist at its new path.
	in.Arm()
	crash := New(&Rule{Nth: 1, Kind: KindCrash})
	_ = crash // rename-then-crash persists via the original injector:
	in.mu.Lock()
	in.crashed = true
	in.mu.Unlock()
	in.persistCrash()
	got, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shadow" {
		t.Fatalf("persisted content at new path = %q", got)
	}
}

func TestCrashPointSweepIsDeterministic(t *testing.T) {
	run := func(k int64) (int64, bool) {
		in := New(&Rule{Nth: k, Kind: KindCrash})
		dir := t.TempDir()
		f, _ := OpenFile(in, "heap", filepath.Join(dir, "f"))
		in.Arm()
		for i := 0; i < 5; i++ {
			if _, err := f.WriteAt([]byte{1}, int64(i)); err != nil {
				return in.Points(), true
			}
			if err := f.Sync(); err != nil {
				return in.Points(), true
			}
		}
		return in.Points(), false
	}
	total, crashed := run(1 << 30) // no crash: count points
	if crashed || total != 10 {
		t.Fatalf("baseline run: points=%d crashed=%v, want 10/false", total, crashed)
	}
	for k := int64(1); k <= total; k++ {
		at, crashed := run(k)
		if !crashed || at != k {
			t.Fatalf("k=%d: crashed=%v at point %d", k, crashed, at)
		}
	}
}
