package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the I/O surface the storage layer uses. With a nil injector,
// OpenFile returns a thin wrapper over *os.File; with an injector, a
// memory-buffered shim that models the OS page cache: writes are buffered,
// Sync marks the current image durable, and a simulated crash discards
// whatever was never synced.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
	Size() (int64, error)
}

// OpenFile opens (creating if absent) the file at path for read/write.
// site labels the failpoints this file's I/O evaluates ("heap", "wal",
// "spill", "btree"). Reopening a path already tracked by the injector
// resumes its buffered state — the file a crash-free process would see.
func OpenFile(in *Injector, site, path string) (File, error) {
	if in == nil {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		return (*osFile)(f), nil
	}
	return in.openShim(site, path)
}

// osFile adapts *os.File to File.
type osFile os.File

func (o *osFile) ReadAt(p []byte, off int64) (int, error)  { return (*os.File)(o).ReadAt(p, off) }
func (o *osFile) WriteAt(p []byte, off int64) (int, error) { return (*os.File)(o).WriteAt(p, off) }
func (o *osFile) Sync() error                              { return (*os.File)(o).Sync() }
func (o *osFile) Truncate(size int64) error                { return (*os.File)(o).Truncate(size) }
func (o *osFile) Close() error                             { return (*os.File)(o).Close() }
func (o *osFile) Size() (int64, error) {
	st, err := (*os.File)(o).Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func cleanPath(path string) string { return filepath.Clean(path) }

func osRemove(path string) error { return os.Remove(path) }

func osRename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// shimFile buffers a file in memory. mem is the logical content every
// read sees; synced is the image as of the last successful Sync — the
// only bytes guaranteed to survive a simulated power loss.
type shimFile struct {
	in   *Injector
	site string

	// mu guards the fields below. Lock order: never take in.mu while
	// holding a shim's mu (hit() and persistCrash() take in.mu first).
	mu      sync.Mutex
	path    string
	mem     []byte
	synced  []byte
	pending bool // writes or truncates since the last Sync
	closed  bool
}

func (in *Injector) openShim(site, path string) (*shimFile, error) {
	key := cleanPath(path)
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, fmt.Errorf("open %s: %w", path, ErrCrashed)
	}
	if f, ok := in.files[key]; ok {
		in.mu.Unlock()
		f.mu.Lock()
		f.closed = false
		f.mu.Unlock()
		return f, nil
	}
	in.mu.Unlock()
	// Ensure the real file exists (so Remove/persist have a target) and
	// capture its current content as the durable baseline.
	rf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	content, err := io.ReadAll(rf)
	rf.Close()
	if err != nil {
		return nil, err
	}
	f := &shimFile{
		in:     in,
		site:   site,
		path:   path,
		mem:    content,
		synced: append([]byte(nil), content...),
	}
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, fmt.Errorf("open %s: %w", path, ErrCrashed)
	}
	if prev, ok := in.files[key]; ok {
		in.mu.Unlock()
		return prev, nil
	}
	in.files[key] = f
	in.mu.Unlock()
	return f, nil
}

func (f *shimFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.in.hit(f.site, f.path, OpRead, len(p)); err != nil {
		if errors.Is(err, ErrCrashed) {
			f.in.persistCrash()
		}
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.mem)) {
		return 0, io.EOF
	}
	n := copy(p, f.mem[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *shimFile) WriteAt(p []byte, off int64) (int, error) {
	limit, err := f.in.hit(f.site, f.path, OpWrite, len(p))
	if limit < 0 || limit > len(p) {
		limit = len(p)
	}
	if limit > 0 {
		f.mu.Lock()
		end := off + int64(limit)
		if int64(len(f.mem)) < end {
			grown := make([]byte, end)
			copy(grown, f.mem)
			f.mem = grown
		}
		copy(f.mem[off:end], p[:limit])
		f.pending = true
		f.mu.Unlock()
	}
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			f.in.persistCrash()
		}
		return limit, err
	}
	return limit, nil
}

func (f *shimFile) Sync() error {
	if _, err := f.in.hit(f.site, f.path, OpSync, 0); err != nil {
		if errors.Is(err, ErrCrashed) {
			f.in.persistCrash()
		}
		return err
	}
	f.mu.Lock()
	f.synced = append(f.synced[:0], f.mem...)
	f.pending = false
	f.mu.Unlock()
	return nil
}

func (f *shimFile) Truncate(size int64) error {
	if _, err := f.in.hit(f.site, f.path, OpTruncate, 0); err != nil {
		if errors.Is(err, ErrCrashed) {
			f.in.persistCrash()
		}
		return err
	}
	f.mu.Lock()
	if size <= int64(len(f.mem)) {
		f.mem = f.mem[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.mem)
		f.mem = grown
	}
	f.pending = true
	f.mu.Unlock()
	return nil
}

func (f *shimFile) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return nil
}

func (f *shimFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.mem)), nil
}

// persist writes the file's crash-surviving image over the real file.
// torn=false keeps only the last-synced image (clean power loss);
// torn=true keeps the buffered image too — the OS had flushed its cache
// up to (and partially into) the write the crash fired on.
func (f *shimFile) persist(torn bool) error {
	f.mu.Lock()
	img := f.synced
	if torn {
		img = f.mem
	}
	img = append([]byte(nil), img...)
	path := f.path
	f.mu.Unlock()
	rf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer rf.Close()
	if err := rf.Truncate(int64(len(img))); err != nil {
		return err
	}
	if len(img) > 0 {
		if _, err := rf.WriteAt(img, 0); err != nil {
			return err
		}
	}
	return rf.Sync()
}
