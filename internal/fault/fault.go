// Package fault is a deterministic fault-injection layer for the storage
// engine. Storage hot spots (page writes, WAL appends and fsyncs, spill
// writes, checkpoint steps) consult an Injector at named failpoints; rules
// select the Nth matching point and inject an I/O error, a short (torn)
// write, or a simulated power loss.
//
// Power loss is simulated without killing the process: files opened
// through the injector are backed by an in-memory shim that buffers every
// write and only marks bytes durable at Sync. When a crash rule fires, the
// durable image of every file — everything up to its last successful fsync
// — is written back to the real filesystem and all further I/O on the shim
// fails with ErrCrashed. Reopening the directory without the injector then
// sees exactly what a machine would after losing power at that point.
//
// The injector is deterministic: points are numbered in hit order, so a
// harness can sweep "crash at point k" for every k of a fixed workload and
// replay any failure exactly.
package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Injected error classes. Rules return them wrapped with the failing
// point's site and path; match with errors.Is.
var (
	// ErrInjectedIO is a simulated EIO.
	ErrInjectedIO = errors.New("fault: injected I/O error")
	// ErrNoSpace is a simulated ENOSPC.
	ErrNoSpace = errors.New("fault: injected no space left on device")
	// ErrCrashed reports that a simulated power loss already happened;
	// every I/O after the crash point fails with it.
	ErrCrashed = errors.New("fault: simulated crash (power loss)")
)

// Op classifies a failpoint.
type Op uint8

// Failpoint operation kinds.
const (
	// OpAny matches every operation in a rule.
	OpAny Op = iota
	// OpWrite is a file write (page write, WAL batch write).
	OpWrite
	// OpRead is a file read.
	OpRead
	// OpSync is an fsync.
	OpSync
	// OpTruncate is a file truncation.
	OpTruncate
	// OpPoint is an engine code point (WAL append, checkpoint step).
	OpPoint
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpPoint:
		return "point"
	}
	return "any"
}

// Kind is what a fired rule injects.
type Kind uint8

// Injection kinds.
const (
	// KindErrIO fails the operation with ErrInjectedIO; no bytes reach
	// the file.
	KindErrIO Kind = iota + 1
	// KindErrNoSpace fails the operation with ErrNoSpace.
	KindErrNoSpace
	// KindTorn applies only TornFrac of a write's bytes, then fails with
	// ErrInjectedIO — a short write that leaves a torn page or log tail.
	KindTorn
	// KindCrash simulates power loss: with TornFrac == 0 every file keeps
	// only its last-synced image (clean pull-the-plug); with TornFrac > 0
	// buffered-but-unsynced writes survive too, and the write at the
	// crash point itself is applied only partially (the OS flushed its
	// cache up to the middle of a write, then died).
	KindCrash
)

// Rule selects failpoints and the fault to inject. Zero fields match
// everything: an empty Rule with Nth=k crashes nothing (Kind required) —
// a typical crash-sweep rule is &Rule{Nth: k, Kind: KindCrash}.
type Rule struct {
	// Site matches by substring against the point's site label
	// ("heap", "wal", "spill", "btree", "checkpoint.*"); "" matches all.
	Site string
	// Path matches by substring against the file path; "" matches all.
	Path string
	// Op restricts the operation kind; OpAny matches all.
	Op Op
	// Nth fires the rule on the Nth matching hit only (1-based);
	// 0 fires on every matching hit.
	Nth int64
	// Kind is the fault to inject.
	Kind Kind
	// TornFrac is the fraction of a write's bytes that reach the file
	// for KindTorn and torn KindCrash (clamped to [0,1)).
	TornFrac float64

	hits int64
}

func (r *Rule) matches(site, path string, op Op) bool {
	if r.Site != "" && !strings.Contains(site, r.Site) {
		return false
	}
	if r.Path != "" && !strings.Contains(path, r.Path) {
		return false
	}
	if r.Op != OpAny && r.Op != op {
		return false
	}
	return true
}

// Injector is a failpoint registry plus the shim-file table that backs
// crash simulation. A nil *Injector is valid everywhere and injects
// nothing. Arm starts failpoint evaluation; points hit before Arm (or
// after Disarm) pass through but still route I/O through the shim, so a
// workload can set up cleanly and then enter the fault window.
type Injector struct {
	mu      sync.Mutex
	rules   []*Rule
	armed   bool
	seq     int64 // armed points evaluated so far
	fired   int64 // rules fired
	crashed bool
	torn    float64 // TornFrac of the crash rule that fired
	crashOp Op      // operation the crash fired on
	files   map[string]*shimFile

	persist sync.Once
	// persistErr records a failed crash write-back; surfaced by Crashed
	// callers via PersistErr.
	persistErr error
}

// New returns an injector with the given rules. The injector starts
// disarmed; call Arm once the workload's setup phase is durable.
func New(rules ...*Rule) *Injector {
	return &Injector{rules: rules, files: map[string]*shimFile{}}
}

// Arm enables failpoint evaluation and resets the point counter.
func (in *Injector) Arm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.armed = true
	in.seq = 0
	in.mu.Unlock()
}

// Disarm stops failpoint evaluation (shim routing continues).
func (in *Injector) Disarm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.armed = false
	in.mu.Unlock()
}

// Points returns how many armed failpoints have been evaluated.
func (in *Injector) Points() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Fired returns how many rules have fired.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Crashed reports whether a KindCrash rule has fired.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// PersistErr returns the error of a failed crash write-back (nil when the
// simulated power loss persisted cleanly).
func (in *Injector) PersistErr() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.persistErr
}

// Point evaluates a code failpoint (no file attached): checkpoint steps,
// WAL appends. Returns nil to proceed or the injected error.
func (in *Injector) Point(site string) error {
	if in == nil {
		return nil
	}
	_, err := in.hit(site, "", OpPoint, 0)
	if errors.Is(err, ErrCrashed) {
		in.persistCrash()
	}
	return err
}

// hit evaluates one failpoint. It returns (limit, err): limit < 0 means
// the whole operation proceeds; limit >= 0 means only the first limit
// bytes of a write are applied before err is returned. Callers that hold
// no shim lock and receive ErrCrashed must call persistCrash after
// applying their partial effect.
func (in *Injector) hit(site, path string, op Op, size int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, fmt.Errorf("%s %s %s: %w", site, op, path, ErrCrashed)
	}
	if !in.armed {
		return -1, nil
	}
	in.seq++
	for _, r := range in.rules {
		if !r.matches(site, path, op) {
			continue
		}
		r.hits++
		if r.Nth != 0 && r.hits != r.Nth {
			continue
		}
		in.fired++
		wrap := func(base error) error {
			return fmt.Errorf("%s %s %s (point %d): %w", site, op, path, in.seq, base)
		}
		switch r.Kind {
		case KindErrIO:
			return 0, wrap(ErrInjectedIO)
		case KindErrNoSpace:
			return 0, wrap(ErrNoSpace)
		case KindTorn:
			return tornBytes(size, r.TornFrac), wrap(ErrInjectedIO)
		case KindCrash:
			in.crashed = true
			in.torn = r.TornFrac
			in.crashOp = op
			limit := 0
			if r.TornFrac > 0 && op == OpWrite {
				limit = tornBytes(size, r.TornFrac)
			}
			return limit, wrap(ErrCrashed)
		}
	}
	return -1, nil
}

func tornBytes(size int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		frac = 0.99
	}
	n := int(float64(size) * frac)
	if n >= size && size > 0 {
		n = size - 1
	}
	return n
}

// persistCrash writes every shim file's surviving image back to the real
// filesystem — the state the machine would reboot with. Idempotent; safe
// to call from any failpoint caller after ErrCrashed.
func (in *Injector) persistCrash() {
	if in == nil {
		return
	}
	in.persist.Do(func() {
		in.mu.Lock()
		torn := in.torn > 0
		files := make([]*shimFile, 0, len(in.files))
		for _, f := range in.files {
			files = append(files, f)
		}
		in.mu.Unlock()
		var firstErr error
		for _, f := range files {
			if err := f.persist(torn); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		in.mu.Lock()
		in.persistErr = firstErr
		in.mu.Unlock()
	})
}

// WriteBack flushes every shim file's full buffered image to the real
// filesystem — the state after a clean shutdown with all OS caches
// flushed. Harnesses call it when a run finishes WITHOUT crashing so an
// uninjected reopen of the directory sees the run's final state. After a
// crash it is an error: the crash image already on disk is the truth.
func (in *Injector) WriteBack() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return fmt.Errorf("write back: %w", ErrCrashed)
	}
	files := make([]*shimFile, 0, len(in.files))
	for _, f := range in.files {
		files = append(files, f)
	}
	in.mu.Unlock()
	var firstErr error
	for _, f := range files {
		if err := f.persist(true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Remove deletes a file: the shim entry (if any) and the real file. With
// a nil injector it is plain os.Remove.
func Remove(in *Injector, path string) error {
	if in == nil {
		return osRemove(path)
	}
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return fmt.Errorf("remove %s: %w", path, ErrCrashed)
	}
	delete(in.files, cleanPath(path))
	in.mu.Unlock()
	return osRemove(path)
}

// Rename moves a file, shim entry included — the durable-by-convention
// swap step of shadow checkpoints. With a nil injector it is os.Rename.
func Rename(in *Injector, oldpath, newpath string) error {
	if in == nil {
		return osRename(oldpath, newpath)
	}
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return fmt.Errorf("rename %s -> %s: %w", oldpath, newpath, ErrCrashed)
	}
	oldKey, newKey := cleanPath(oldpath), cleanPath(newpath)
	if f, ok := in.files[oldKey]; ok {
		delete(in.files, oldKey)
		f.mu.Lock()
		f.path = newpath
		// A rename is treated as atomic and immediately durable (the
		// engine only renames fully-synced shadow files): the moved
		// file's current image is its crash-survivable image.
		f.synced = append([]byte(nil), f.mem...)
		f.pending = false
		f.mu.Unlock()
		in.files[newKey] = f
	}
	in.mu.Unlock()
	return osRename(oldpath, newpath)
}
