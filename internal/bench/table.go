package bench

import (
	"fmt"
	"strings"
	"time"
)

// FormatBytes renders a byte count in the paper's MB style.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// RenderStorageTable renders a Table 1 / Table 2 style comparison.
func RenderStorageTable(title string, rows []StorageRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	header := fmt.Sprintf("%-26s %12s %12s %12s %12s %12s %12s\n",
		"data item", "Files", "FileStream", "1:1 import", "normalized", "norm+ROW", "norm+PAGE")
	sb.WriteString(header)
	sb.WriteString(strings.Repeat("-", len(header)-1) + "\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-26s %12s %12s %12s %12s %12s %12s\n",
			r.Item,
			FormatBytes(r.Files), FormatBytes(r.FileStream), FormatBytes(r.OneToOne),
			FormatBytes(r.Normalized), FormatBytes(r.NormRow), FormatBytes(r.NormPage)))
		sb.WriteString(fmt.Sprintf("%-26s %12s %12s %12s %12s %12s %12s\n", "  (x of Files)",
			ratio(r.Files, r.Files), ratio(r.FileStream, r.Files), ratio(r.OneToOne, r.Files),
			ratio(r.Normalized, r.Files), ratio(r.NormRow, r.Files), ratio(r.NormPage, r.Files)))
	}
	return sb.String()
}

func ratio(n, base int64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(n)/float64(base))
}

// RenderWrapTable renders the Section 5.2 timing list.
func RenderWrapTable(title string, rows []WrapResult) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	var base time.Duration
	for _, r := range rows {
		if base == 0 {
			base = r.Elapsed
		}
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.1fx", float64(r.Elapsed)/float64(base))
		}
		sb.WriteString(fmt.Sprintf("  %-40s %10.3fs  %8s  (%d records)\n",
			r.Method, r.Elapsed.Seconds(), rel, r.Records))
	}
	return sb.String()
}
