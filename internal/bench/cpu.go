package bench

import (
	"fmt"
	"strings"
	"sync"
	"syscall"
	"time"
)

// CPUSample is one point of a utilization trace: the number of cores this
// process kept busy over the sampling interval (1.0 = one core
// saturated).
type CPUSample struct {
	At   time.Duration
	Busy float64
}

// CPUSampler records the process's CPU utilization over a run via
// getrusage — the observable behind the paper's Figures 7 and 8 (their
// perfmon screenshots of one core vs all cores busy).
type CPUSampler struct {
	interval time.Duration
	stop     chan struct{}
	done     sync.WaitGroup
	mu       sync.Mutex
	samples  []CPUSample
	start    time.Time
}

// StartCPUSampler begins sampling at the given interval.
func StartCPUSampler(interval time.Duration) *CPUSampler {
	s := &CPUSampler{
		interval: interval,
		stop:     make(chan struct{}),
		start:    time.Now(),
	}
	s.done.Add(1)
	go s.loop()
	return s
}

func (s *CPUSampler) loop() {
	defer s.done.Done()
	prevCPU, ok := processCPUTime()
	if !ok {
		return
	}
	prevWall := time.Now()
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			cpu, ok := processCPUTime()
			if !ok {
				return
			}
			now := time.Now()
			dWall := now.Sub(prevWall)
			if dWall <= 0 {
				continue
			}
			busy := float64(cpu-prevCPU) / float64(dWall)
			prevCPU, prevWall = cpu, now
			s.mu.Lock()
			s.samples = append(s.samples, CPUSample{At: now.Sub(s.start), Busy: busy})
			s.mu.Unlock()
		}
	}
}

// processCPUTime returns the process's cumulative user+system CPU time.
func processCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	user := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	sys := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return user + sys, true
}

// Stop ends sampling and returns the trace.
func (s *CPUSampler) Stop() []CPUSample {
	close(s.stop)
	s.done.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// RenderCPUTrace draws an ASCII utilization timeline (cores busy over
// time), the harness's stand-in for the paper's perfmon screenshots.
func RenderCPUTrace(samples []CPUSample, width int) string {
	if len(samples) == 0 {
		return "(no CPU samples: run too short for the sampling interval)\n"
	}
	if width <= 0 {
		width = 60
	}
	maxBusy := 1.0
	for _, s := range samples {
		if s.Busy > maxBusy {
			maxBusy = s.Busy
		}
	}
	var sb strings.Builder
	step := len(samples) / width
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(&sb, "cores busy (max %.1f) over %.1fs:\n", maxBusy, samples[len(samples)-1].At.Seconds())
	for lvl := 4; lvl >= 1; lvl-- {
		threshold := maxBusy * float64(lvl) / 4
		sb.WriteString(fmt.Sprintf("%4.1f |", threshold))
		for i := 0; i < len(samples); i += step {
			if samples[i].Busy >= threshold-maxBusy/8 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("     +" + strings.Repeat("-", (len(samples)+step-1)/step) + "> time\n")
	return sb.String()
}

// AverageBusy returns the mean busy-core count of a trace.
func AverageBusy(samples []CPUSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.Busy
	}
	return sum / float64(len(samples))
}
