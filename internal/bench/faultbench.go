package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
)

// FaultBenchConfig sizes the checksum-overhead experiment: the same
// sealed reads table scanned through the warm vectorized path (pool hits
// skip verification entirely) and the cold path (every pool miss
// verifies its page's CRC32C).
type FaultBenchConfig struct {
	Rows  int
	Flows int // distinct flowcell ids
	Iters int // timed repetitions; best is reported
}

// DefaultFaultBenchConfig matches the vectorized-scan benchmark's table
// so the two reports are comparable.
func DefaultFaultBenchConfig() FaultBenchConfig {
	// Best-of-N over interleaved runs: N is high because the overhead
	// being measured is ~0 and must be separable from scheduler noise
	// even on a single-core CI worker.
	return FaultBenchConfig{Rows: 300_000, Flows: 8, Iters: 25}
}

// FaultBenchRun is one checksums-{on,off} configuration of the scan.
type FaultBenchRun struct {
	Checksums bool    `json:"checksums"`
	WarmMS    float64 `json:"warm_ms"` // best warm scan (pool hits only)
	ColdMS    float64 `json:"cold_ms"` // first scan after reopen (all misses)
	// PagesVerified counts CRC verifications during the cold scan; zero
	// with checksums off (and zero on every warm scan either way).
	PagesVerified int64 `json:"pages_verified"`
	Matches       int64 `json:"matches"`
}

// FaultBenchResult is the full experiment.
type FaultBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Rows       int `json:"rows"`
	Iters      int `json:"iters"`
	// WarmOverheadPct is the headline number: extra warm-scan time paid
	// for page checksums. Warm hits never touch the verifier, so this
	// must stay under 3%.
	WarmOverheadPct float64 `json:"warm_overhead_pct"`
	// ColdOverheadPct is the verification cost when every page is read
	// from disk and CRC-checked — the real price of integrity, paid once
	// per pool miss.
	ColdOverheadPct float64         `json:"cold_overhead_pct"`
	Runs            []FaultBenchRun `json:"runs"`
}

// FaultExperiment loads identical sealed tables with checksums on and
// off, then times the same vectorized filter scan warm (buffer-pool
// hits) and cold (reopen, every page a verified miss).
func FaultExperiment(workDir string, cfg FaultBenchConfig) (*FaultBenchResult, error) {
	res := &FaultBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       cfg.Rows,
		Iters:      cfg.Iters,
	}
	query := fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE flow = 'flow_%d'", cfg.Flows/2)

	// Build both sealed tables first, then measure with the two databases
	// open side by side, alternating timed runs — clock drift, GC pauses
	// and cache effects land on both configurations instead of biasing
	// whichever ran second.
	type side struct {
		db  *core.Database
		run FaultBenchRun
	}
	sides := []*side{{run: FaultBenchRun{Checksums: true}}, {run: FaultBenchRun{Checksums: false}}}
	for _, sd := range sides {
		dir := filepath.Join(workDir, fmt.Sprintf("checksums_%v", sd.run.Checksums))
		opts := core.Options{DOP: 1, DisablePageChecksums: !sd.run.Checksums}
		db, err := core.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		vcfg := VectorBenchConfig{Rows: cfg.Rows, Flows: cfg.Flows}
		if err := loadVectorTable(db, vcfg, "PAGE"); err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		// Reopen with a fresh pool: the first scan is the cold
		// measurement — every page is a miss, CRC-verified when
		// checksums are on. It also warms the pool for the warm phase.
		db, err = core.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		before := db.ExecStats()
		t0 := time.Now()
		r, err := db.Query(query)
		if err != nil {
			db.Close()
			return nil, err
		}
		sd.run.ColdMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		sd.run.Matches = r.Rows[0][0].I
		sd.run.PagesVerified = db.ExecStats().Sub(before).Integrity.PagesVerified
		sd.db = db
		defer db.Close()
	}
	if sides[0].run.Matches != sides[1].run.Matches {
		return nil, fmt.Errorf("bench: checksums on found %d matches, off found %d",
			sides[0].run.Matches, sides[1].run.Matches)
	}

	// Warm phase: pure buffer-pool hits, which skip verification by
	// design. Alternate the two configurations within each iteration and
	// keep the best of each.
	// Each sample times a burst of queries so one sample is long enough
	// to amortize timer and scheduler noise; the side order flips every
	// iteration to cancel periodic interference. The burst is sized from
	// a calibration query so small smoke-test tables (single-digit-ms
	// scans) get the same ~50ms sample length as the full-size run.
	t0 := time.Now()
	for _, sd := range sides {
		if _, err := sd.db.Query(query); err != nil {
			return nil, err
		}
	}
	perQuery := time.Since(t0) / time.Duration(len(sides))
	burst := 3
	if perQuery > 0 {
		if b := int(50*time.Millisecond/perQuery) + 1; b > burst {
			burst = b
		}
	}
	if burst > 64 {
		burst = 64
	}
	runtime.GC()
	best := []time.Duration{1<<63 - 1, 1<<63 - 1}
	for i := 0; i < cfg.Iters; i++ {
		for o := 0; o < len(sides); o++ {
			j := o
			if i%2 == 1 {
				j = len(sides) - 1 - o
			}
			sd := sides[j]
			t0 := time.Now()
			for b := 0; b < burst; b++ {
				if _, err := sd.db.Query(query); err != nil {
					return nil, err
				}
			}
			if d := time.Since(t0); d < best[j] {
				best[j] = d
			}
		}
	}
	for j, sd := range sides {
		sd.run.WarmMS = float64(best[j].Nanoseconds()) / 1e6 / float64(burst)
		res.Runs = append(res.Runs, sd.run)
	}
	on, off := &res.Runs[0], &res.Runs[1]
	res.WarmOverheadPct = 100 * (on.WarmMS - off.WarmMS) / off.WarmMS
	res.ColdOverheadPct = 100 * (on.ColdMS - off.ColdMS) / off.ColdMS
	if res.WarmOverheadPct >= 3 {
		return nil, fmt.Errorf("bench: page checksums cost %.2f%% on the warm vectorized scan (budget 3%%) — verification leaked into the pool-hit path",
			res.WarmOverheadPct)
	}
	if on.PagesVerified == 0 {
		return nil, fmt.Errorf("bench: cold scan with checksums on verified no pages — the miss-path verifier is not wired")
	}
	if off.PagesVerified != 0 {
		return nil, fmt.Errorf("bench: checksums-off run verified %d pages", off.PagesVerified)
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *FaultBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
