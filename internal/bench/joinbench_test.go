package bench

import "testing"

// TestJoinExperimentSmoke runs the join harness at a reduced scale: every
// DOP must return the same row count and the forced-spill runs must spill.
func TestJoinExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("join experiment in short mode")
	}
	cfg := JoinBenchConfig{
		BuildRows:   6_000,
		ProbeRows:   12_000,
		KeySpace:    2_000,
		DOPs:        []int{1, 2},
		SpillBudget: 64 << 10,
	}
	res, err := JoinExperiment(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InMemory) != 2 || len(res.Spill) != 2 {
		t.Fatalf("runs missing: %+v", res)
	}
	for _, r := range append(res.InMemory, res.Spill...) {
		if r.Rows != res.InMemory[0].Rows {
			t.Errorf("DOP %d returned %d rows, want %d", r.DOP, r.Rows, res.InMemory[0].Rows)
		}
	}
	for _, r := range res.InMemory {
		if r.SpilledPartitions != 0 {
			t.Errorf("in-memory run at DOP %d spilled %d partitions", r.DOP, r.SpilledPartitions)
		}
	}
	for _, r := range res.Spill {
		if r.SpilledPartitions == 0 {
			t.Errorf("forced-spill run at DOP %d did not spill", r.DOP)
		}
	}
}
