package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
)

// JoinBenchConfig sizes the partitioned-join experiment.
type JoinBenchConfig struct {
	BuildRows int   // rows in the smaller (build) table
	ProbeRows int   // rows in the larger (probe) table
	KeySpace  int   // distinct join keys (duplicates join fan-out)
	DOPs      []int // degrees of parallelism to measure
	// SpillBudget is the forced-spill join memory budget in bytes; it
	// should be far below the build side's in-memory footprint.
	SpillBudget int64
}

// DefaultJoinBenchConfig mirrors the reads ⋈ alignments shape at a scale
// that completes in seconds.
func DefaultJoinBenchConfig() JoinBenchConfig {
	return JoinBenchConfig{
		BuildRows:   60_000,
		ProbeRows:   120_000,
		KeySpace:    20_000,
		DOPs:        []int{1, 2, 4, 8},
		SpillBudget: 512 << 10,
	}
}

// JoinBenchRun is one timed configuration.
type JoinBenchRun struct {
	DOP               int     `json:"dop"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	Rows              int64   `json:"rows"`
	SpilledPartitions int64   `json:"spilled_partitions"`
	SpilledBuildRows  int64   `json:"spilled_build_rows"`
	SpilledProbeRows  int64   `json:"spilled_probe_rows"`
	SpillRecursions   int64   `json:"spill_recursions"`
	PoolHitRate       float64 `json:"pool_hit_rate"`
}

// JoinBenchResult is the full experiment: the same SQL join measured warm
// at each DOP, in memory and with a budget that forces partition spill.
type JoinBenchResult struct {
	GOMAXPROCS  int            `json:"gomaxprocs"`
	BuildRows   int            `json:"build_rows"`
	ProbeRows   int            `json:"probe_rows"`
	KeySpace    int            `json:"key_space"`
	SpillBudget int64          `json:"spill_budget_bytes"`
	Plan        string         `json:"plan"`
	InMemory    []JoinBenchRun `json:"in_memory"`
	Spill       []JoinBenchRun `json:"forced_spill"`
}

const joinBenchSQL = `SELECT r_payload, a_payload FROM aligns JOIN reads ON aligns.k = reads.k`

// loadJoinBenchTables creates and fills the two heap tables.
func loadJoinBenchTables(db *core.Database, cfg JoinBenchConfig) error {
	if _, err := db.Exec(`CREATE TABLE aligns (k BIGINT, a_payload VARCHAR(40))`); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE TABLE reads (k BIGINT, r_payload VARCHAR(40))`); err != nil {
		return err
	}
	mk := func(n int, side string, stride int) []sqltypes.Row {
		rows := make([]sqltypes.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = sqltypes.Row{
				// Deterministic key mix without a shared RNG.
				sqltypes.NewInt(int64((i * stride) % cfg.KeySpace)),
				sqltypes.NewString(fmt.Sprintf("%s-%08d", side, i)),
			}
		}
		return rows
	}
	if err := db.InsertRows("aligns", mk(cfg.BuildRows, "a", 7)); err != nil {
		return err
	}
	if err := db.InsertRows("reads", mk(cfg.ProbeRows, "r", 13)); err != nil {
		return err
	}
	_, err := db.Exec("CHECKPOINT")
	return err
}

// runJoinBench measures the join at each DOP against one database,
// discarding a warm-up run per DOP so timings reflect a warm buffer pool.
func runJoinBench(db *core.Database, dops []int) ([]JoinBenchRun, error) {
	var out []JoinBenchRun
	for _, dop := range dops {
		db.SetDOP(dop)
		if _, err := db.Query(joinBenchSQL); err != nil { // warm-up
			return nil, err
		}
		before := db.ExecStats()
		start := time.Now()
		res, err := db.Query(joinBenchSQL)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		delta := db.ExecStats().Sub(before)
		jd, pd := delta.Join, delta.Pool
		out = append(out, JoinBenchRun{
			DOP:               dop,
			ElapsedMS:         float64(elapsed.Microseconds()) / 1e3,
			Rows:              int64(len(res.Rows)),
			SpilledPartitions: jd.SpilledPartitions,
			SpilledBuildRows:  jd.SpilledBuildRows,
			SpilledProbeRows:  jd.SpilledProbeRows,
			SpillRecursions:   jd.SpillRecursions,
			PoolHitRate:       pd.HitRate(),
		})
	}
	return out, nil
}

// JoinExperiment measures the parallel partitioned hash join through the
// full SQL stack: warm in-memory runs at each DOP, then the same join
// with a memory budget far below the build side so every run spills and
// recurses. The spilled runs must produce the same row count.
func JoinExperiment(workDir string, cfg JoinBenchConfig) (*JoinBenchResult, error) {
	res := &JoinBenchResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BuildRows:   cfg.BuildRows,
		ProbeRows:   cfg.ProbeRows,
		KeySpace:    cfg.KeySpace,
		SpillBudget: cfg.SpillBudget,
	}
	open := func(name string, budget int64) (*core.Database, error) {
		db, err := core.Open(filepath.Join(workDir, name), core.Options{
			DOP:               maxDOP(cfg.DOPs),
			ParallelThreshold: 2_048,
			JoinMemoryBudget:  budget,
			JoinPartitions:    32,
		})
		if err != nil {
			return nil, err
		}
		return db, loadJoinBenchTables(db, cfg)
	}

	memDB, err := open("join_mem", -1) // unlimited
	if err != nil {
		return nil, err
	}
	defer memDB.Close()
	if expl, err := memDB.Query("EXPLAIN " + joinBenchSQL); err == nil {
		res.Plan = expl.Plan
	}
	if res.InMemory, err = runJoinBench(memDB, cfg.DOPs); err != nil {
		return nil, err
	}

	spillDB, err := open("join_spill", cfg.SpillBudget)
	if err != nil {
		return nil, err
	}
	defer spillDB.Close()
	if res.Spill, err = runJoinBench(spillDB, cfg.DOPs); err != nil {
		return nil, err
	}
	for i := range res.Spill {
		if res.Spill[i].SpilledPartitions == 0 {
			return nil, fmt.Errorf("bench: forced-spill run at DOP %d did not spill", res.Spill[i].DOP)
		}
		if res.Spill[i].Rows != res.InMemory[0].Rows {
			return nil, fmt.Errorf("bench: spilled join returned %d rows, in-memory %d",
				res.Spill[i].Rows, res.InMemory[0].Rows)
		}
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *JoinBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func maxDOP(dops []int) int {
	m := 1
	for _, d := range dops {
		if d > m {
			m = d
		}
	}
	return m
}
