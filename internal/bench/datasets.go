// Package bench is the experiment harness: it builds the synthetic
// datasets for the paper's two scenarios, runs every experiment behind the
// tables and figures of the evaluation section, and renders paper-style
// result tables. The cmd/experiments binary and the repository-root
// benchmarks drive it.
package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/align"
	"repro/internal/dge"
	"repro/internal/fastq"
	"repro/internal/gen"
	"repro/internal/sequencer"
)

// DGEDataset is a complete digital gene expression lane: level-1 reads,
// the unique-tag analysis, alignments against the reference, and the
// gene-expression result (paper Table 1's four data items).
type DGEDataset struct {
	Genome     *gen.Genome
	Genes      []gen.Gene
	Reads      []fastq.Record
	Tags       []fastq.TagRecord
	Alignments []fastq.AlignmentRecord
	Expression []fastq.ExpressionRecord

	ReadsFASTQ []byte // the original lane file
}

// BuildDGE generates a DGE lane with the given number of sequenced tags.
// Tag frequencies follow the Zipf expression model, so the read file is
// highly repetitive — the property behind Table 1's compression results.
func BuildDGE(reads int, seed int64) (*DGEDataset, error) {
	genome := gen.GenerateGenome(gen.GenomeSpec{
		Chromosomes: 4, ChromLength: 250_000, Seed: seed,
	})
	genes := gen.GenerateGenes(genome, gen.DGESpec{
		Genes: 600, TagLen: 21, ZipfS: 1.25, Seed: seed + 1,
	})
	templates, _ := gen.SampleTags(genome, genes, reads, seed+2)
	ins := sequencer.NewInstrument("IL4", 21)
	// Production-grade base calling: ~Q35 with a mild cycle decay, the
	// quality band of a well-tuned lane.
	ins.Sigma, ins.Phasing = 0.14, 0.006
	fc := sequencer.DefaultFlowcell(1)
	recs, err := ins.Run(fc, 1, 855, templates, seed+3)
	if err != nil {
		return nil, err
	}
	ds := &DGEDataset{Genome: genome, Genes: genes, Reads: recs}

	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	ds.ReadsFASTQ = buf.Bytes()

	// Unique-tag analysis (Query 1's output).
	ds.Tags = dge.BinTags(recs)

	// Align the unique tags against the reference (the MAQ step); tags
	// are aligned once, weighted by frequency downstream.
	idx, err := align.BuildIndex(chromsOf(genome), 16)
	if err != nil {
		return nil, err
	}
	aligner := align.NewAligner(idx)
	tagReads := make([]fastq.Record, len(ds.Tags))
	for i, t := range ds.Tags {
		tagReads[i] = fastq.Record{
			Name: fmt.Sprintf("tag_%d", i+1),
			Seq:  t.Seq,
			Qual: strings.Repeat("I", len(t.Seq)),
		}
	}
	ds.Alignments, _ = aligner.AlignAll(tagReads, 0)

	// Gene expression (Query 2's output).
	freq := make(map[string]int64, len(ds.Tags))
	for _, t := range ds.Tags {
		freq[t.Seq] = t.Frequency
	}
	ds.Expression = dge.Expression(ds.Alignments, freq, GeneResolver(genes))
	return ds, nil
}

// GeneResolver builds a dge.GeneResolver from the generator's gene table:
// an alignment hits a gene when it lands on the gene's tag site.
func GeneResolver(genes []gen.Gene) dge.GeneResolver {
	type site struct {
		pos  int
		name string
	}
	byChrom := map[string][]site{}
	for _, g := range genes {
		byChrom[g.Chrom] = append(byChrom[g.Chrom], site{g.TagPos, g.Name})
	}
	for _, sites := range byChrom {
		sort.Slice(sites, func(a, b int) bool { return sites[a].pos < sites[b].pos })
	}
	return func(ref string, pos int64) (string, bool) {
		sites := byChrom[ref]
		i := sort.Search(len(sites), func(i int) bool { return sites[i].pos >= int(pos) })
		if i < len(sites) && int64(sites[i].pos) == pos {
			return sites[i].name, true
		}
		return "", false
	}
}

func chromsOf(g *gen.Genome) []align.Chrom {
	out := make([]align.Chrom, len(g.Chroms))
	for i, c := range g.Chroms {
		out[i] = align.Chrom{Name: c.Name, Seq: c.Seq}
	}
	return out
}

// ResequencingDataset is a 1000-Genomes-style lane: near-unique reads
// sampled across an individual genome (reference + SNPs) and their
// alignments (paper Table 2).
type ResequencingDataset struct {
	Genome     *gen.Genome
	Reads      []fastq.Record
	Alignments []fastq.AlignmentRecord
	ReadsFASTQ []byte
}

// Build1000G generates a re-sequencing lane of the given read count.
func Build1000G(reads int, seed int64) (*ResequencingDataset, error) {
	genome := gen.GenerateGenome(gen.GenomeSpec{
		Chromosomes: 8, ChromLength: 300_000, Seed: seed,
	})
	frags := gen.SampleFragments(genome, gen.ResequencingSpec{
		Reads: reads, ReadLen: 36, Seed: seed + 1,
		SNPRate: 0.001, BothStrands: true,
	})
	templates := make([]string, len(frags))
	for i, f := range frags {
		templates[i] = f.Seq
	}
	ins := sequencer.NewInstrument("IL4", 36)
	ins.Sigma, ins.Phasing = 0.14, 0.006
	fc := sequencer.DefaultFlowcell(2)
	recs, err := ins.Run(fc, 2, 901, templates, seed+2)
	if err != nil {
		return nil, err
	}
	ds := &ResequencingDataset{Genome: genome, Reads: recs}

	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	ds.ReadsFASTQ = buf.Bytes()

	idx, err := align.BuildIndex(chromsOf(genome), 20)
	if err != nil {
		return nil, err
	}
	aligner := align.NewAligner(idx)
	ds.Alignments, _ = aligner.AlignAll(recs, 0)
	return ds, nil
}

// RenderTagsFile serializes the unique-tag analysis as its text file.
func RenderTagsFile(tags []fastq.TagRecord) []byte {
	var buf bytes.Buffer
	fastq.WriteTags(&buf, tags)
	return buf.Bytes()
}

// RenderAlignmentsFile serializes alignments as their text file.
func RenderAlignmentsFile(aligns []fastq.AlignmentRecord) []byte {
	var buf bytes.Buffer
	fastq.WriteAlignments(&buf, aligns)
	return buf.Bytes()
}

// RenderExpressionFile serializes expression records as their text file.
func RenderExpressionFile(recs []fastq.ExpressionRecord) []byte {
	var buf bytes.Buffer
	fastq.WriteExpression(&buf, recs)
	return buf.Bytes()
}
