package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
)

// IndexBenchConfig sizes the secondary-index experiment: one table loaded
// twice — with and without an index on its random-valued column — probed
// by the same queries on both databases.
type IndexBenchConfig struct {
	Rows  int
	Iters int // timed repetitions; best is reported
}

// DefaultIndexBenchConfig is large enough that a DOP-4 heap scan of the
// table takes milliseconds while an index point lookup stays in
// microseconds — the separation the experiment exists to show.
func DefaultIndexBenchConfig() IndexBenchConfig {
	return IndexBenchConfig{Rows: 200_000, Iters: 15}
}

// IndexBenchQuery is one probe timed against both databases.
type IndexBenchQuery struct {
	Name    string  `json:"name"`
	Query   string  `json:"query"`
	HeapMS  float64 `json:"heap_ms"`  // no-index database (DOP-4 heap scan)
	IndexMS float64 `json:"index_ms"` // indexed database, cost-based plan
	Speedup float64 `json:"speedup"`  // HeapMS / IndexMS
	Path    string  `json:"path"`     // access-path line of the indexed plan
	Matches int64   `json:"matches"`
}

// IndexBenchResult is the full experiment.
type IndexBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Rows       int `json:"rows"`
	Iters      int `json:"iters"`
	// BuildMS times CREATE INDEX end to end: parallel sort, shadow
	// bulk-load, rename, catalog commit, closing checkpoint.
	BuildMS float64 `json:"build_ms"`
	// PointSpeedup is the headline number: DOP-4 heap scan over index
	// point lookup on the same point predicate. Must be >= 10.
	PointSpeedup float64 `json:"point_speedup"`
	// ZoneSkipPct is pages skipped by zone maps on a range over the
	// insertion-clustered column. Must be >= 50.
	ZoneSkipPct    float64           `json:"zone_skip_pct"`
	ZonePagesKept  int64             `json:"zone_pages_kept"`
	ZonePagesTotal int64             `json:"zone_pages_total"`
	Queries        []IndexBenchQuery `json:"queries"`
	PointPlan      string            `json:"point_plan"`
	ClusteredPlan  string            `json:"clustered_plan"`
}

// scanLine extracts the access-path line of an EXPLAIN plan.
func scanLine(plan string) string {
	for _, ln := range strings.Split(plan, "\n") {
		if strings.Contains(ln, "Scan") {
			return strings.TrimSpace(ln)
		}
	}
	return strings.TrimSpace(plan)
}

// IndexExperiment loads the same table into two databases — `pos` is
// random, so zone maps cannot prune it and the no-index side must scan —
// builds idx_pos on one, and times point, narrow-range and wide-range
// probes on both. A fourth probe ranges over the insertion-ordered `id`
// column to measure zone-map page skipping, which works on either side.
func IndexExperiment(workDir string, cfg IndexBenchConfig) (*IndexBenchResult, error) {
	res := &IndexBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       cfg.Rows,
		Iters:      cfg.Iters,
	}
	type side struct {
		name    string
		indexed bool
		db      *core.Database
	}
	sides := []*side{{name: "heap"}, {name: "indexed", indexed: true}}
	// lcg is a fixed-seed generator so both databases hold identical rows.
	load := func(sd *side) error {
		db, err := core.Open(filepath.Join(workDir, sd.name), core.Options{DOP: 4, ParallelThreshold: 1024})
		if err != nil {
			return err
		}
		sd.db = db
		if _, err := db.Exec(`CREATE TABLE reads (id BIGINT, pos BIGINT, tag VARCHAR(8))`); err != nil {
			return err
		}
		lcg := uint64(2009)
		var vals []string
		for i := 0; i < cfg.Rows; i++ {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			pos := int64(lcg>>33) % int64(cfg.Rows)
			vals = append(vals, fmt.Sprintf("(%d, %d, 't%d')", i, pos, i%5))
			if len(vals) == 500 || i == cfg.Rows-1 {
				if _, err := db.Exec("INSERT INTO reads VALUES " + strings.Join(vals, ", ")); err != nil {
					return err
				}
				vals = vals[:0]
			}
		}
		if _, err := db.Exec("CHECKPOINT"); err != nil { // seal pages -> zone maps
			return err
		}
		if sd.indexed {
			t0 := time.Now()
			if _, err := db.Exec(`CREATE INDEX idx_pos ON reads(pos)`); err != nil {
				return err
			}
			res.BuildMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		}
		_, err = db.Exec("ANALYZE")
		return err
	}
	for _, sd := range sides {
		if err := load(sd); err != nil {
			if sd.db != nil {
				sd.db.Close()
			}
			return nil, err
		}
		defer sd.db.Close()
	}

	p := int64(cfg.Rows / 2)
	probes := []IndexBenchQuery{
		{Name: "point", Query: fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE pos = %d", p)},
		{Name: "narrow_range", Query: fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE pos >= %d AND pos < %d", p, p+int64(cfg.Rows/200))},
		{Name: "wide_range", Query: fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE pos >= %d AND pos < %d", p, p+int64(cfg.Rows/5))},
		{Name: "clustered_range", Query: fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE id >= %d AND id < %d", p, p+int64(cfg.Rows/10))},
	}
	for qi := range probes {
		q := &probes[qi]
		// Each sample times a burst sized from a calibration run, so
		// microsecond index lookups still get samples long enough to
		// amortize timer noise; sides alternate within each iteration.
		matches := [2]int64{}
		perQuery := time.Duration(0)
		for j, sd := range sides {
			t0 := time.Now()
			r, err := sd.db.Query(q.Query)
			if err != nil {
				return nil, err
			}
			perQuery += time.Since(t0)
			matches[j] = r.Rows[0][0].I
		}
		if matches[0] != matches[1] {
			return nil, fmt.Errorf("bench: %s: heap found %d, indexed found %d", q.Name, matches[0], matches[1])
		}
		q.Matches = matches[0]
		burst := 3
		if per := perQuery / 2; per > 0 {
			if b := int(30*time.Millisecond/per) + 1; b > burst {
				burst = b
			}
		}
		if burst > 512 {
			burst = 512
		}
		runtime.GC()
		best := [2]time.Duration{1<<63 - 1, 1<<63 - 1}
		for i := 0; i < cfg.Iters; i++ {
			for o := 0; o < len(sides); o++ {
				j := o
				if i%2 == 1 {
					j = len(sides) - 1 - o
				}
				t0 := time.Now()
				for b := 0; b < burst; b++ {
					if _, err := sides[j].db.Query(q.Query); err != nil {
						return nil, err
					}
				}
				if d := time.Since(t0); d < best[j] {
					best[j] = d
				}
			}
		}
		q.HeapMS = float64(best[0].Nanoseconds()) / 1e6 / float64(burst)
		q.IndexMS = float64(best[1].Nanoseconds()) / 1e6 / float64(burst)
		q.Speedup = q.HeapMS / q.IndexMS
		pr, err := sides[1].db.Query("EXPLAIN " + q.Query)
		if err != nil {
			return nil, err
		}
		q.Path = scanLine(pr.Plan)
		switch q.Name {
		case "point":
			res.PointPlan = pr.Plan
			res.PointSpeedup = q.Speedup
		case "clustered_range":
			res.ClusteredPlan = pr.Plan
			if _, err := fmt.Sscanf(pr.Plan[strings.Index(pr.Plan, "zonemap-pruned(")+len("zonemap-pruned("):],
				"%d/%d pages", &res.ZonePagesKept, &res.ZonePagesTotal); err != nil {
				return nil, fmt.Errorf("bench: clustered range did not report zone pruning:\n%s", pr.Plan)
			}
			res.ZoneSkipPct = 100 * float64(res.ZonePagesTotal-res.ZonePagesKept) / float64(res.ZonePagesTotal)
		}
		res.Queries = append(res.Queries, *q)
	}

	if !strings.Contains(res.PointPlan, "Index Scan") {
		return nil, fmt.Errorf("bench: point query on the indexed table did not choose the index:\n%s", res.PointPlan)
	}
	if res.PointSpeedup < 10 {
		return nil, fmt.Errorf("bench: index point lookup only %.1fx faster than the DOP-4 heap scan (floor 10x)", res.PointSpeedup)
	}
	if res.ZoneSkipPct < 50 {
		return nil, fmt.Errorf("bench: zone maps skipped only %.1f%% of pages on the clustered range (floor 50%%)", res.ZoneSkipPct)
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *IndexBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
