package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
)

// ObsBenchConfig sizes the instrumentation-overhead experiment: the same
// sealed reads table scanned through the warm vectorized path with
// always-on per-operator counters (the default) and with
// DisableInstrumentation set.
type ObsBenchConfig struct {
	Rows  int
	Flows int // distinct flowcell ids
	Iters int // timed repetitions; best is reported
}

// DefaultObsBenchConfig matches the vectorized-scan and checksum
// benchmarks' table so the three reports are comparable.
func DefaultObsBenchConfig() ObsBenchConfig {
	// Best-of-N over interleaved runs: the overhead being measured is a
	// handful of atomic adds per 1024-row batch and must be separable
	// from scheduler noise even on a single-core CI worker.
	return ObsBenchConfig{Rows: 300_000, Flows: 8, Iters: 25}
}

// ObsBenchRun is one instrumentation-{on,off} configuration of the scan.
type ObsBenchRun struct {
	Instrumented bool    `json:"instrumented"`
	WarmMS       float64 `json:"warm_ms"` // best warm scan (pool hits only)
	Matches      int64   `json:"matches"`
	// ProbeSpillBytes is the spill size the query log recorded for a
	// deliberately spilling ORDER BY: positive exactly when per-operator
	// profiles are live, zero when instrumentation is disabled. It is the
	// liveness check that keeps this benchmark honest — a regression that
	// stops wrapping operators would otherwise measure 0% overhead.
	ProbeSpillBytes int64 `json:"probe_spill_bytes"`
	QueryCount      int64 `json:"query_count"` // metrics registry, both sides
}

// ObsBenchResult is the full experiment.
type ObsBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Rows       int `json:"rows"`
	Iters      int `json:"iters"`
	// WarmOverheadPct is the headline number: extra warm-scan time paid
	// for the always-on counters (row/batch tallies flushed to atomics
	// every 1024 rows). Timing clocks only run under EXPLAIN ANALYZE, so
	// this must stay under 3%.
	WarmOverheadPct float64       `json:"warm_overhead_pct"`
	Runs            []ObsBenchRun `json:"runs"`
}

// ObsExperiment loads identical sealed tables with instrumentation on
// and off, then times the same warm vectorized filter scan side by side.
func ObsExperiment(workDir string, cfg ObsBenchConfig) (*ObsBenchResult, error) {
	res := &ObsBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       cfg.Rows,
		Iters:      cfg.Iters,
	}
	query := fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE flow = 'flow_%d'", cfg.Flows/2)
	// A sort over one flow's rows against a budget far below its size:
	// guaranteed to spill, so the instrumented side's query log must
	// report spill bytes for it and the disabled side must not.
	probe := "SELECT id FROM reads WHERE flow = 'flow_0' ORDER BY id"

	// Build both sealed tables first, then measure with the two databases
	// open side by side, alternating timed runs — clock drift, GC pauses
	// and cache effects land on both configurations instead of biasing
	// whichever ran second.
	type side struct {
		db  *core.Database
		run ObsBenchRun
	}
	sides := []*side{{run: ObsBenchRun{Instrumented: true}}, {run: ObsBenchRun{Instrumented: false}}}
	for _, sd := range sides {
		dir := filepath.Join(workDir, fmt.Sprintf("instrumented_%v", sd.run.Instrumented))
		opts := core.Options{
			DOP:                    1,
			SortMemoryBudget:       16 << 10,
			DisableInstrumentation: !sd.run.Instrumented,
		}
		db, err := core.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		vcfg := VectorBenchConfig{Rows: cfg.Rows, Flows: cfg.Flows}
		if err := loadVectorTable(db, vcfg, "PAGE"); err != nil {
			db.Close()
			return nil, err
		}
		// The spill probe doubles as the pool warm-up for the warm phase.
		if _, err := db.Query(probe); err != nil {
			db.Close()
			return nil, err
		}
		hist := db.QueryHistory()
		if len(hist) == 0 {
			db.Close()
			return nil, fmt.Errorf("bench: query history empty after the spill probe")
		}
		sd.run.ProbeSpillBytes = hist[0].SpillBytes
		r, err := db.Query(query)
		if err != nil {
			db.Close()
			return nil, err
		}
		sd.run.Matches = r.Rows[0][0].I
		sd.db = db
		defer db.Close()
	}
	if sides[0].run.Matches != sides[1].run.Matches {
		return nil, fmt.Errorf("bench: instrumented scan found %d matches, disabled found %d",
			sides[0].run.Matches, sides[1].run.Matches)
	}
	if sides[0].run.ProbeSpillBytes <= 0 {
		return nil, fmt.Errorf("bench: instrumented side recorded no spill bytes for the spilling probe — operator profiles are not wired")
	}
	if sides[1].run.ProbeSpillBytes != 0 {
		return nil, fmt.Errorf("bench: DisableInstrumentation side still recorded %d spill bytes",
			sides[1].run.ProbeSpillBytes)
	}

	// Warm phase: pure buffer-pool hits. Each sample times a burst of
	// queries so one sample is long enough to amortize timer and
	// scheduler noise; the side order flips every iteration to cancel
	// periodic interference. The burst is sized from a calibration query
	// so small smoke-test tables get the same ~50ms sample length as the
	// full-size run.
	t0 := time.Now()
	for _, sd := range sides {
		if _, err := sd.db.Query(query); err != nil {
			return nil, err
		}
	}
	perQuery := time.Since(t0) / time.Duration(len(sides))
	burst := 3
	if perQuery > 0 {
		if b := int(50*time.Millisecond/perQuery) + 1; b > burst {
			burst = b
		}
	}
	if burst > 64 {
		burst = 64
	}
	runtime.GC()
	best := []time.Duration{1<<63 - 1, 1<<63 - 1}
	for i := 0; i < cfg.Iters; i++ {
		for o := 0; o < len(sides); o++ {
			j := o
			if i%2 == 1 {
				j = len(sides) - 1 - o
			}
			sd := sides[j]
			t0 := time.Now()
			for b := 0; b < burst; b++ {
				if _, err := sd.db.Query(query); err != nil {
					return nil, err
				}
			}
			if d := time.Since(t0); d < best[j] {
				best[j] = d
			}
		}
	}
	for j, sd := range sides {
		sd.run.WarmMS = float64(best[j].Nanoseconds()) / 1e6 / float64(burst)
		sd.run.QueryCount = sd.db.Metrics()["query.count"]
		if sd.run.QueryCount == 0 {
			return nil, fmt.Errorf("bench: metrics registry reports query.count=0 after %d queries (instrumented=%v)",
				cfg.Iters*burst, sd.run.Instrumented)
		}
		res.Runs = append(res.Runs, sd.run)
	}
	on, off := &res.Runs[0], &res.Runs[1]
	res.WarmOverheadPct = 100 * (on.WarmMS - off.WarmMS) / off.WarmMS
	if res.WarmOverheadPct >= 3 {
		return nil, fmt.Errorf("bench: always-on instrumentation costs %.2f%% on the warm vectorized scan (budget 3%%) — counters leaked onto the per-row path",
			res.WarmOverheadPct)
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *ObsBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
