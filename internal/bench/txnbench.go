package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
)

// TxnBenchConfig sizes the transaction experiment: W writer sessions each
// committing TxnsPerWriter explicit transactions of BatchRows rows, while
// one reader session scans the same table the whole time.
type TxnBenchConfig struct {
	TxnsPerWriter int
	BatchRows     int
	Writers       []int
}

// DefaultTxnBenchConfig keeps individual transactions small (a handful of
// rows, one fsync's worth of log) so commit-path overhead — not row
// ingest — dominates, which is what the pipeline is supposed to hide.
func DefaultTxnBenchConfig() TxnBenchConfig {
	return TxnBenchConfig{
		TxnsPerWriter: 200,
		BatchRows:     16,
		Writers:       []int{1, 2, 4},
	}
}

// TxnBenchRun is one writer-count configuration.
type TxnBenchRun struct {
	Writers       int     `json:"writers"`
	Commits       int64   `json:"commits"`
	RowsCommitted int64   `json:"rows_committed"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// WALSyncs counts fsyncs during the run; SyncsPerCommit < 1 means
	// commits shared fsyncs (group commit at work).
	WALSyncs       int64   `json:"wal_syncs"`
	SyncsPerCommit float64 `json:"syncs_per_commit"`
	// Concurrent-scan evidence: the reader session ran SELECT COUNT(*)
	// against the write-hot table for the whole run. Scans completing at
	// all proves reads don't queue behind writers; every observed count
	// being a whole number of batches proves snapshot isolation (no torn
	// reads of half-committed transactions).
	Scans      int64   `json:"concurrent_scans"`
	MeanScanMS float64 `json:"mean_scan_ms"`
}

// TxnBenchResult is the full experiment.
type TxnBenchResult struct {
	GOMAXPROCS    int   `json:"gomaxprocs"`
	TxnsPerWriter int   `json:"txns_per_writer"`
	BatchRows     int   `json:"batch_rows"`
	Writers       []int `json:"writers"`
	// SpeedupBest is the best multi-writer commit throughput over the
	// single-writer baseline; > 1 means concurrent commits overlapped.
	SpeedupBest float64       `json:"speedup_best_vs_1_writer"`
	Runs        []TxnBenchRun `json:"runs"`
}

// TxnExperiment measures MVCC commit-pipeline scaling: for each writer
// count, W sessions run explicit BEGIN/INSERT/COMMIT loops against one
// table while a reader session continuously counts it. Reported per
// configuration: commit throughput, fsyncs per commit, and concurrent
// scan count/latency.
func TxnExperiment(workDir string, cfg TxnBenchConfig) (*TxnBenchResult, error) {
	db, err := core.Open(workDir, core.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	res := &TxnBenchResult{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		TxnsPerWriter: cfg.TxnsPerWriter,
		BatchRows:     cfg.BatchRows,
		Writers:       cfg.Writers,
	}
	for _, w := range cfg.Writers {
		run, err := runTxnBench(db, cfg, w)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
		// Compact the table and truncate the WAL between configurations so
		// each one starts from the same storage state.
		if _, err := db.Exec("CHECKPOINT"); err != nil {
			return nil, err
		}
	}
	var base float64
	for _, r := range res.Runs {
		if r.Writers == 1 {
			base = r.CommitsPerSec
		} else if base > 0 {
			if s := r.CommitsPerSec / base; s > res.SpeedupBest {
				res.SpeedupBest = s
			}
		}
	}
	if res.SpeedupBest <= 1.0 {
		return nil, fmt.Errorf("bench: no multi-writer config beat 1 writer (best %.2fx) — commit pipeline not overlapping", res.SpeedupBest)
	}
	return res, nil
}

// runTxnBench runs one writer-count configuration against its own table.
func runTxnBench(db *core.Database, cfg TxnBenchConfig, writers int) (*TxnBenchRun, error) {
	table := fmt.Sprintf("txns_w%d", writers)
	if _, err := db.Exec(fmt.Sprintf(
		"CREATE TABLE %s (id BIGINT, writer BIGINT, payload VARCHAR(24))", table)); err != nil {
		return nil, err
	}

	syncs0 := db.WALSyncs()
	writerErrs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			batch := make([]sqltypes.Row, cfg.BatchRows)
			for i := 0; i < cfg.TxnsPerWriter; i++ {
				if err := sess.Begin(); err != nil {
					writerErrs[w] = err
					return
				}
				for j := range batch {
					id := int64(w*cfg.TxnsPerWriter*cfg.BatchRows + i*cfg.BatchRows + j)
					batch[j] = sqltypes.Row{
						sqltypes.NewInt(id),
						sqltypes.NewInt(int64(w)),
						sqltypes.NewString(fmt.Sprintf("p-%012d", id)),
					}
				}
				if err := sess.InsertRows(table, batch); err != nil {
					writerErrs[w] = err
					_ = sess.Rollback()
					return
				}
				if err := sess.Commit(); err != nil {
					writerErrs[w] = err
					return
				}
			}
		}(w)
	}

	// The reader hammers the write-hot table until the writers finish;
	// under MVCC it must never block behind them nor see a torn batch.
	stopRead := make(chan struct{})
	readerDone := make(chan struct{})
	var scans int64
	var scanTotal time.Duration
	var readErr error
	go func() {
		defer close(readerDone)
		sess := db.NewSession()
		sql := "SELECT COUNT(*) FROM " + table
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			t0 := time.Now()
			r, err := sess.Query(sql)
			if err != nil {
				readErr = err
				return
			}
			scanTotal += time.Since(t0)
			scans++
			if n := r.Rows[0][0].I; n%int64(cfg.BatchRows) != 0 {
				readErr = fmt.Errorf("bench: torn read: saw %d rows, not a multiple of batch %d", n, cfg.BatchRows)
				return
			}
		}
	}()

	wg.Wait()
	elapsed := time.Since(start)
	close(stopRead)
	<-readerDone
	for _, err := range writerErrs {
		if err != nil {
			return nil, err
		}
	}
	if readErr != nil {
		return nil, readErr
	}
	if scans == 0 {
		return nil, fmt.Errorf("bench: reader completed no scans while %d writers ran", writers)
	}

	commits := int64(writers) * int64(cfg.TxnsPerWriter)
	wantRows := commits * int64(cfg.BatchRows)
	final, err := db.Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return nil, err
	}
	if got := final.Rows[0][0].I; got != wantRows {
		return nil, fmt.Errorf("bench: %s has %d rows after commit, want %d", table, got, wantRows)
	}

	run := &TxnBenchRun{
		Writers:       writers,
		Commits:       commits,
		RowsCommitted: wantRows,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1e3,
		CommitsPerSec: float64(commits) / elapsed.Seconds(),
		WALSyncs:      db.WALSyncs() - syncs0,
		Scans:         scans,
		MeanScanMS:    float64(scanTotal.Microseconds()) / 1e3 / float64(scans),
	}
	run.SyncsPerCommit = float64(run.WALSyncs) / float64(commits)
	return run, nil
}

// WriteJSON writes the result as indented JSON.
func (r *TxnBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
