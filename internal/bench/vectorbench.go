package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
)

// VectorBenchConfig sizes the vectorized-scan experiment: a reads table
// with a low-NDV flowcell column (dictionary-encoded on sealed pages)
// filtered at DOP 1, so the row-at-a-time and batch-at-a-time executors
// compare on pure per-tuple overhead.
type VectorBenchConfig struct {
	Rows  int
	Flows int // distinct flowcell ids (dictionary size)
	Iters int // timed repetitions per configuration; best is reported
}

// DefaultVectorBenchConfig selects 1/Flows of the table — enough
// survivors to keep the output path honest, enough dropped rows for
// compression-aware scans to show.
func DefaultVectorBenchConfig() VectorBenchConfig {
	return VectorBenchConfig{Rows: 300_000, Flows: 8, Iters: 5}
}

// VectorBenchRun is one engine x page-compression configuration of the
// same filter scan.
type VectorBenchRun struct {
	Engine      string  `json:"engine"`      // "row" or "vectorized"
	Compression string  `json:"compression"` // "PAGE" or "NONE"
	ElapsedMS   float64 `json:"elapsed_ms"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	Matches     int64   `json:"matches"`
	// Decode counters from the vectorized scan layer (zero on the row
	// engine, which has no batch path). On PAGE compression,
	// ValuesDecoded excludes the dictionary column entirely: predicates
	// compare codes, and only DictEntriesDecoded dictionary slots are
	// ever materialized — dropped rows cost no decompression.
	Batches            int64 `json:"batches"`
	ValuesDecoded      int64 `json:"values_decoded"`
	DictEntriesDecoded int64 `json:"dict_entries_decoded"`
}

// VectorBenchResult is the full experiment.
type VectorBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Rows       int `json:"rows"`
	Flows      int `json:"flows"`
	Iters      int `json:"iters"`
	// SpeedupVectorized is single-core batch over row throughput on the
	// dictionary-encoded (PAGE) table — the headline number.
	SpeedupVectorized float64 `json:"speedup_vectorized_vs_row"`
	// SpeedupCompressed is the vectorized engine on dictionary pages over
	// the vectorized engine on uncompressed pages: the gain from
	// evaluating predicates on codes instead of decoded cells.
	SpeedupCompressed float64          `json:"speedup_compressed_vs_decompressed"`
	Runs              []VectorBenchRun `json:"runs"`
	PlanVectorized    string           `json:"-"`
}

// VectorExperiment loads identical data into four engines — {row,
// vectorized} x {PAGE, NONE} page compression, all DOP 1 — seals every
// page via CHECKPOINT, and times the same dictionary-column filter scan
// on each. All four must agree on the match count.
func VectorExperiment(workDir string, cfg VectorBenchConfig) (*VectorBenchResult, error) {
	res := &VectorBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       cfg.Rows,
		Flows:      cfg.Flows,
		Iters:      cfg.Iters,
	}
	type engineCfg struct {
		engine, compression string
		opts                core.Options
	}
	configs := []engineCfg{
		{"row", "PAGE", core.Options{DOP: 1, DisableVectorized: true}},
		{"vectorized", "PAGE", core.Options{DOP: 1}},
		{"vectorized", "NONE", core.Options{DOP: 1}},
		{"row", "NONE", core.Options{DOP: 1, DisableVectorized: true}},
	}
	query := fmt.Sprintf("SELECT COUNT(*) FROM reads WHERE flow = 'flow_%d'", cfg.Flows/2)
	var matches int64 = -1
	for _, ec := range configs {
		db, err := core.Open(filepath.Join(workDir, ec.engine+"_"+ec.compression), ec.opts)
		if err != nil {
			return nil, err
		}
		if err := loadVectorTable(db, cfg, ec.compression); err != nil {
			db.Close()
			return nil, err
		}
		if ec.engine == "vectorized" && ec.compression == "PAGE" {
			if r, err := db.Query("EXPLAIN " + query); err == nil {
				res.PlanVectorized = r.Plan
			}
		}
		run, err := timeVectorScan(db, query, cfg.Iters)
		db.Close()
		if err != nil {
			return nil, err
		}
		run.Engine, run.Compression = ec.engine, ec.compression
		run.RowsPerSec = float64(cfg.Rows) / (run.ElapsedMS / 1e3)
		if matches == -1 {
			matches = run.Matches
		} else if run.Matches != matches {
			return nil, fmt.Errorf("bench: %s/%s found %d matches, first engine found %d",
				ec.engine, ec.compression, run.Matches, matches)
		}
		res.Runs = append(res.Runs, *run)
	}
	byKey := func(engine, comp string) *VectorBenchRun {
		for i := range res.Runs {
			if res.Runs[i].Engine == engine && res.Runs[i].Compression == comp {
				return &res.Runs[i]
			}
		}
		return nil
	}
	res.SpeedupVectorized = byKey("row", "PAGE").ElapsedMS / byKey("vectorized", "PAGE").ElapsedMS
	res.SpeedupCompressed = byKey("vectorized", "NONE").ElapsedMS / byKey("vectorized", "PAGE").ElapsedMS
	if res.SpeedupVectorized < 2 {
		return nil, fmt.Errorf("bench: vectorized filter scan only %.2fx over row path — batch execution regressed",
			res.SpeedupVectorized)
	}
	if vec := byKey("vectorized", "PAGE"); vec.ValuesDecoded >= int64(cfg.Rows) {
		return nil, fmt.Errorf("bench: vectorized scan decoded %d cells over %d rows — the dictionary column was decompressed per-row",
			vec.ValuesDecoded, cfg.Rows)
	}
	return res, nil
}

// loadVectorTable creates and fills the reads table, then checkpoints so
// every row sits on a sealed page in the table's native encoding.
func loadVectorTable(db *core.Database, cfg VectorBenchConfig, compression string) error {
	ddl := "CREATE TABLE reads (id BIGINT, flow VARCHAR(16), qual INT)"
	if compression != "NONE" {
		ddl += fmt.Sprintf(" WITH (DATA_COMPRESSION = %s)", compression)
	}
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	sess := db.NewSession()
	const chunk = 10_000
	batch := make([]sqltypes.Row, 0, chunk)
	for i := 0; i < cfg.Rows; i++ {
		batch = append(batch, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("flow_%d", i%cfg.Flows)),
			sqltypes.NewInt(int64(i % 42)),
		})
		if len(batch) == chunk || i == cfg.Rows-1 {
			if err := sess.Begin(); err != nil {
				return err
			}
			if err := sess.InsertRows("reads", batch); err != nil {
				_ = sess.Rollback()
				return err
			}
			if err := sess.Commit(); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	_, err := db.Exec("CHECKPOINT")
	return err
}

// timeVectorScan reports the best of iters warm runs plus the scan-layer
// decode counters for exactly one run.
func timeVectorScan(db *core.Database, query string, iters int) (*VectorBenchRun, error) {
	run := &VectorBenchRun{}
	if _, err := db.Query(query); err != nil { // warm the buffer pool
		return nil, err
	}
	before := db.ExecStats()
	r, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	run.Matches = r.Rows[0][0].I
	d := db.ExecStats().Sub(before)
	run.Batches = d.Scan.Batches
	run.ValuesDecoded = d.Scan.ValuesDecoded
	run.DictEntriesDecoded = d.Scan.DictEntriesDecoded

	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if _, err := db.Query(query); err != nil {
			return nil, err
		}
		if el := time.Since(t0); el < best {
			best = el
		}
	}
	run.ElapsedMS = float64(best.Microseconds()) / 1e3
	return run, nil
}

// WriteJSON writes the result as indented JSON.
func (r *VectorBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
