package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
)

// StatsBenchConfig sizes the statistics experiment: a filtered join whose
// planner decisions (build side, Bloom filter, spill pre-partitioning)
// depend on ANALYZE.
type StatsBenchConfig struct {
	BigRows     int   // fact-side table (filtered by v < FilterBound)
	DimRows     int   // dimension table
	KeySpace    int   // join-key domain
	FilterBound int64 // big.v < FilterBound (v is uniform over [0, BigRows))
	DOPs        []int
	// JoinMemoryBudget is sized so the *wrong* build side (dim, chosen
	// without statistics) spills, while the right one (filtered big) fits.
	JoinMemoryBudget int64
}

// DefaultStatsBenchConfig: without ANALYZE the planner estimates the
// filtered big side at BigRows/3 (default range selectivity), picks dim
// (~5 MB build) and spills against the 1 MB budget; with ANALYZE the
// histogram prices the filter at 2.5%, builds on ~5k rows, and the Bloom
// filter drops the ~90% of dim probe rows with no matching key.
func DefaultStatsBenchConfig() StatsBenchConfig {
	return StatsBenchConfig{
		BigRows:          200_000,
		DimRows:          40_000,
		KeySpace:         100_000,
		FilterBound:      5_000,
		DOPs:             []int{1, 4},
		JoinMemoryBudget: 1 << 20,
	}
}

// StatsBenchRun is one timed configuration.
type StatsBenchRun struct {
	Analyzed          bool    `json:"analyzed"`
	Bloom             bool    `json:"bloom"`
	DOP               int     `json:"dop"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	Rows              int64   `json:"rows"`
	BloomChecks       int64   `json:"bloom_checks"`
	BloomDrops        int64   `json:"bloom_drops"`
	SpilledPartitions int64   `json:"spilled_partitions"`
	SpilledBuildRows  int64   `json:"spilled_build_rows"`
	SpilledProbeRows  int64   `json:"spilled_probe_rows"`
}

// StatsBenchResult is the full experiment: the same filtered join with
// and without ANALYZE, with the Bloom filter on and off, at each DOP.
type StatsBenchResult struct {
	GOMAXPROCS       int     `json:"gomaxprocs"`
	BigRows          int     `json:"big_rows"`
	DimRows          int     `json:"dim_rows"`
	KeySpace         int     `json:"key_space"`
	FilterBound      int64   `json:"filter_bound"`
	JoinMemoryBudget int64   `json:"join_memory_budget_bytes"`
	AnalyzeMS        float64 `json:"analyze_ms"`
	PlanBefore       string  `json:"plan_before_analyze"`
	PlanAfter        string  `json:"plan_after_analyze"`
	// BuildFlipSpeedupDOP4 compares the unanalyzed plan (wrong build
	// side, mid-build spill) against the analyzed plan at DOP 4, Bloom on
	// in both. BloomSpeedupDOP4 compares Bloom off vs on, both analyzed.
	BuildFlipSpeedupDOP4 float64         `json:"build_flip_speedup_dop4"`
	BloomSpeedupDOP4     float64         `json:"bloom_speedup_dop4"`
	Runs                 []StatsBenchRun `json:"runs"`
}

const statsBenchSQL = `SELECT COUNT(*) FROM big JOIN dim ON big.k = dim.k WHERE big.v < %d`

// statsBenchTimedRuns per configuration; the minimum is reported.
const statsBenchTimedRuns = 3

func loadStatsBenchTables(db *core.Database, cfg StatsBenchConfig) error {
	if _, err := db.Exec(`CREATE TABLE big (k BIGINT, v BIGINT, payload VARCHAR(24))`); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE TABLE dim (k BIGINT, name VARCHAR(24))`); err != nil {
		return err
	}
	const batch = 20_000
	rows := make([]sqltypes.Row, 0, batch)
	flush := func(table string) error {
		if len(rows) == 0 {
			return nil
		}
		err := db.InsertRows(table, rows)
		rows = rows[:0]
		return err
	}
	for i := 0; i < cfg.BigRows; i++ {
		rows = append(rows, sqltypes.Row{
			// Deterministic key mix without a shared RNG.
			sqltypes.NewInt(int64((i * 13) % cfg.KeySpace)),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("b-%012d", i)),
		})
		if len(rows) == batch {
			if err := flush("big"); err != nil {
				return err
			}
		}
	}
	if err := flush("big"); err != nil {
		return err
	}
	for i := 0; i < cfg.DimRows; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64((i * 7) % cfg.KeySpace)),
			sqltypes.NewString(fmt.Sprintf("d-%012d", i)),
		})
		if len(rows) == batch {
			if err := flush("dim"); err != nil {
				return err
			}
		}
	}
	if err := flush("dim"); err != nil {
		return err
	}
	_, err := db.Exec("CHECKPOINT")
	return err
}

// runStatsBench measures the join at each DOP (warm-up discarded, best of
// statsBenchTimedRuns kept) and tags the runs with the configuration.
func runStatsBench(db *core.Database, sql string, cfg StatsBenchConfig, analyzed, bloom bool, wantRows int64) ([]StatsBenchRun, int64, error) {
	var out []StatsBenchRun
	for _, dop := range cfg.DOPs {
		db.SetDOP(dop)
		if _, err := db.Query(sql); err != nil { // warm-up
			return nil, 0, err
		}
		var best StatsBenchRun
		for i := 0; i < statsBenchTimedRuns; i++ {
			before := db.ExecStats()
			start := time.Now()
			res, err := db.Query(sql)
			if err != nil {
				return nil, 0, err
			}
			elapsed := time.Since(start)
			d := db.ExecStats().Sub(before)
			if len(res.Rows) != 1 {
				return nil, 0, fmt.Errorf("bench: stats join returned %d rows", len(res.Rows))
			}
			count := res.Rows[0][0].I
			if wantRows == 0 {
				wantRows = count
			} else if count != wantRows {
				return nil, 0, fmt.Errorf("bench: stats join count %d, want %d (analyzed=%v bloom=%v dop=%d)",
					count, wantRows, analyzed, bloom, dop)
			}
			run := StatsBenchRun{
				Analyzed:          analyzed,
				Bloom:             bloom,
				DOP:               dop,
				ElapsedMS:         float64(elapsed.Microseconds()) / 1e3,
				Rows:              count,
				BloomChecks:       d.Join.BloomChecks,
				BloomDrops:        d.Join.BloomDrops,
				SpilledPartitions: d.Join.SpilledPartitions,
				SpilledBuildRows:  d.Join.SpilledBuildRows,
				SpilledProbeRows:  d.Join.SpilledProbeRows,
			}
			if i == 0 || run.ElapsedMS < best.ElapsedMS {
				best = run
			}
		}
		out = append(out, best)
	}
	return out, wantRows, nil
}

// StatsExperiment measures what ANALYZE buys the planner on a skewed
// filtered join: build-side choice (wrong side spills against the
// budget), Bloom filter drops, and EXPLAIN estimates — with and without
// statistics, Bloom on and off, at each DOP.
func StatsExperiment(workDir string, cfg StatsBenchConfig) (*StatsBenchResult, error) {
	res := &StatsBenchResult{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		BigRows:          cfg.BigRows,
		DimRows:          cfg.DimRows,
		KeySpace:         cfg.KeySpace,
		FilterBound:      cfg.FilterBound,
		JoinMemoryBudget: cfg.JoinMemoryBudget,
	}
	sql := fmt.Sprintf(statsBenchSQL, cfg.FilterBound)
	open := func(name string, disableBloom bool) (*core.Database, error) {
		db, err := core.Open(filepath.Join(workDir, name), core.Options{
			DOP:              maxDOP(cfg.DOPs),
			JoinMemoryBudget: cfg.JoinMemoryBudget,
			DisableJoinBloom: disableBloom,
		})
		if err != nil {
			return nil, err
		}
		return db, loadStatsBenchTables(db, cfg)
	}

	bloomDB, err := open("stats_bloom", false)
	if err != nil {
		return nil, err
	}
	defer bloomDB.Close()
	plainDB, err := open("stats_plain", true)
	if err != nil {
		return nil, err
	}
	defer plainDB.Close()

	if expl, err := bloomDB.Query("EXPLAIN " + sql); err == nil {
		res.PlanBefore = expl.Plan
	}
	var wantRows int64
	collect := func(db *core.Database, analyzed, bloom bool) error {
		runs, want, err := runStatsBench(db, sql, cfg, analyzed, bloom, wantRows)
		if err != nil {
			return err
		}
		wantRows = want
		res.Runs = append(res.Runs, runs...)
		return nil
	}
	if err := collect(bloomDB, false, true); err != nil {
		return nil, err
	}
	if err := collect(plainDB, false, false); err != nil {
		return nil, err
	}

	start := time.Now()
	if _, err := bloomDB.Exec("ANALYZE"); err != nil {
		return nil, err
	}
	res.AnalyzeMS = float64(time.Since(start).Microseconds()) / 1e3
	if _, err := plainDB.Exec("ANALYZE"); err != nil {
		return nil, err
	}
	if expl, err := bloomDB.Query("EXPLAIN " + sql); err == nil {
		res.PlanAfter = expl.Plan
	}
	if err := collect(bloomDB, true, true); err != nil {
		return nil, err
	}
	if err := collect(plainDB, true, false); err != nil {
		return nil, err
	}

	// Structural acceptance: ANALYZE must flip the build side from dim
	// (right) to the filtered big side (left), and the analyzed plan must
	// carry estimates.
	if !strings.Contains(res.PlanBefore, "BUILD:right") {
		return nil, fmt.Errorf("bench: pre-ANALYZE plan did not build on dim:\n%s", res.PlanBefore)
	}
	if !strings.Contains(res.PlanAfter, "BUILD:left") {
		return nil, fmt.Errorf("bench: post-ANALYZE plan did not flip the build side:\n%s", res.PlanAfter)
	}
	if !strings.Contains(res.PlanAfter, "est=") {
		return nil, fmt.Errorf("bench: post-ANALYZE plan has no estimates:\n%s", res.PlanAfter)
	}
	find := func(analyzed, bloom bool, dop int) *StatsBenchRun {
		for i := range res.Runs {
			r := &res.Runs[i]
			if r.Analyzed == analyzed && r.Bloom == bloom && r.DOP == dop {
				return r
			}
		}
		return nil
	}
	topDOP := maxDOP(cfg.DOPs)
	if r := find(true, true, topDOP); r != nil {
		if r.BloomDrops == 0 {
			return nil, fmt.Errorf("bench: analyzed bloom run dropped no probe rows")
		}
		if before := find(false, true, topDOP); before != nil && r.ElapsedMS > 0 {
			res.BuildFlipSpeedupDOP4 = before.ElapsedMS / r.ElapsedMS
		}
		if off := find(true, false, topDOP); off != nil && r.ElapsedMS > 0 {
			res.BloomSpeedupDOP4 = off.ElapsedMS / r.ElapsedMS
		}
	}
	if r := find(false, true, topDOP); r != nil && r.SpilledPartitions == 0 {
		return nil, fmt.Errorf("bench: unanalyzed run did not spill (budget too large for the wrong build side)")
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *StatsBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
