package bench

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/align"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sequencer"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

// TestEndToEndSNPPipeline runs the paper's complete Figure 1 pipeline as
// one assertion: simulate an individual genome with known SNPs, sequence
// it, align, load the clustered schema, call the consensus with the
// sliding-window UDA through SQL, and verify the planted SNPs come back.
func TestEndToEndSNPPipeline(t *testing.T) {
	reference := gen.GenerateGenome(gen.GenomeSpec{Chromosomes: 2, ChromLength: 30_000, Seed: 10})
	individual, planted := gen.MutateGenome(reference, 0.001, 11)
	if len(planted) == 0 {
		t.Fatal("no SNPs planted")
	}

	// Phase 0/1: sequencing at 10x coverage.
	const readLen = 36
	frags := gen.SampleFragments(individual, gen.ResequencingSpec{
		Reads: reference.TotalLength() * 10 / readLen, ReadLen: readLen,
		Seed: 12, BothStrands: true,
	})
	templates := make([]string, len(frags))
	for i, f := range frags {
		templates[i] = f.Seq
	}
	ins := sequencer.NewInstrument("ILT", readLen)
	ins.Sigma = 0.14
	reads, err := ins.Run(sequencer.DefaultFlowcell(1), 1, 1, templates, 13)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: alignment.
	chroms := make([]align.Chrom, len(reference.Chroms))
	for i, c := range reference.Chroms {
		chroms[i] = align.Chrom{Name: c.Name, Seq: c.Seq}
	}
	idx, err := align.BuildIndex(chroms, 20)
	if err != nil {
		t.Fatal(err)
	}
	aligner := align.NewAligner(idx)
	alignments, stats := aligner.AlignAll(reads, 0)
	if float64(stats.Aligned) < 0.9*float64(stats.Reads) {
		t.Fatalf("only %d/%d aligned", stats.Aligned, stats.Reads)
	}

	// Load the clustered schema and consensus-call through SQL.
	db, err := core.Open(filepath.Join(t.TempDir(), "db"), core.Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	udf.RegisterAll(db)
	if _, err := db.Exec(`CREATE TABLE Alignment (
	    a_g_id INT NOT NULL, a_pos BIGINT NOT NULL, a_id BIGINT NOT NULL,
	    seq VARCHAR(100), quals VARCHAR(100),
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id))`); err != nil {
		t.Fatal(err)
	}
	chromID := map[string]int64{}
	for i, c := range reference.Chroms {
		chromID[c.Name] = int64(i + 1)
	}
	sort.Slice(alignments, func(i, j int) bool {
		a, b := alignments[i], alignments[j]
		if chromID[a.RefName] != chromID[b.RefName] {
			return chromID[a.RefName] < chromID[b.RefName]
		}
		return a.Pos < b.Pos
	})
	rows := make([]sqltypes.Row, len(alignments))
	for i, a := range alignments {
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(chromID[a.RefName]), sqltypes.NewInt(a.Pos), sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(a.Seq), sqltypes.NewString(a.Qual),
		}
	}
	if err := insertBatches(db, "Alignment", rows); err != nil {
		t.Fatal(err)
	}

	res, err := db.Exec(`
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals)
	    FROM Alignment GROUP BY a_g_id ORDER BY a_g_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("consensus rows = %d", len(res.Rows))
	}

	// Phase 3: SNP recovery against the reference.
	refMap := map[string]string{}
	for _, c := range reference.Chroms {
		refMap[c.Name] = c.Seq
	}
	found := map[gen.PlantedSNP]bool{}
	falsePositives := 0
	for _, row := range res.Rows {
		gid := row[0].I
		name := reference.Chroms[gid-1].Name
		startRes, err := db.Exec(
			`SELECT MIN(a_pos) FROM Alignment WHERE a_g_id = ` + row[0].String())
		if err != nil {
			t.Fatal(err)
		}
		start := int(startRes.Rows[0][0].I)
		cons := row[1].S
		refSeq := refMap[name]
		for i := 0; i < len(cons); i++ {
			pos := start + i
			if pos >= len(refSeq) || cons[i] == 'N' || cons[i] == refSeq[pos] {
				continue
			}
			snp := gen.PlantedSNP{Chrom: name, Pos: pos, Ref: refSeq[pos], Alt: cons[i]}
			match := false
			for _, p := range planted {
				if p == snp {
					match = true
					break
				}
			}
			if match {
				found[snp] = true
			} else {
				falsePositives++
			}
		}
	}
	if len(found) < len(planted)*8/10 {
		t.Errorf("recovered %d/%d planted SNPs", len(found), len(planted))
	}
	if falsePositives > len(planted)/2 {
		t.Errorf("%d false-positive SNPs (planted %d)", falsePositives, len(planted))
	}
	// Cross-check one chromosome against the library's sliding caller.
	caller := consensus.NewSlidingCaller()
	for _, a := range alignments {
		if chromID[a.RefName] != 1 {
			continue
		}
		if err := caller.Add(consensus.AlignedRead{
			Chrom: a.RefName, Pos: int(a.Pos), Seq: a.Seq, Qual: a.Qual,
		}); err != nil {
			t.Fatal(err)
		}
	}
	lib := caller.Finish()
	if string(lib[0].Seq) != res.Rows[0][1].S {
		t.Error("SQL consensus differs from library consensus")
	}
}
