package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
)

// SortAggBenchConfig sizes the external sort / spillable aggregate
// experiment.
type SortAggBenchConfig struct {
	Rows     int   // table size
	KeySpace int   // distinct ORDER BY keys (duplicates exercise stability)
	Groups   int   // distinct GROUP BY keys
	DOPs     []int // degrees of parallelism to measure
	// SortSpillBudget / AggSpillBudget are the forced-spill budgets in
	// bytes; far below the in-memory footprint of the table.
	SortSpillBudget int64
	AggSpillBudget  int64
}

// DefaultSortAggBenchConfig mirrors the paper's ranking (Query 1 ORDER
// BY) and rollup (GROUP BY) shapes at a scale that completes in seconds.
func DefaultSortAggBenchConfig() SortAggBenchConfig {
	return SortAggBenchConfig{
		Rows:            400_000,
		KeySpace:        100_000,
		Groups:          60_000,
		DOPs:            []int{1, 2, 4, 8},
		SortSpillBudget: 1 << 20,
		AggSpillBudget:  512 << 10,
	}
}

// SortAggRun is one timed configuration.
type SortAggRun struct {
	DOP                  int     `json:"dop"`
	ElapsedMS            float64 `json:"elapsed_ms"`
	Rows                 int64   `json:"rows"`
	SortRuns             int64   `json:"sort_runs"`
	SortSpilledRows      int64   `json:"sort_spilled_rows"`
	SortSpilledBytes     int64   `json:"sort_spilled_bytes"`
	AggSpilledPartitions int64   `json:"agg_spilled_partitions"`
	AggSpilledRows       int64   `json:"agg_spilled_rows"`
	AggSpillRecursions   int64   `json:"agg_spill_recursions"`
	PoolHitRate          float64 `json:"pool_hit_rate"`
}

// SortAggBenchResult is the full experiment: ORDER BY and GROUP BY over
// the same table, measured warm at each DOP, in memory and with budgets
// that force run/partition spilling. Spilled runs must reproduce the
// in-memory results bit-for-bit (the sort comparison is order-sensitive,
// so it also proves stability of equal keys across spilled runs).
type SortAggBenchResult struct {
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Rows            int          `json:"rows"`
	KeySpace        int          `json:"key_space"`
	Groups          int          `json:"groups"`
	SortSpillBudget int64        `json:"sort_spill_budget_bytes"`
	AggSpillBudget  int64        `json:"agg_spill_budget_bytes"`
	SortPlan        string       `json:"sort_plan"`
	AggPlan         string       `json:"agg_plan"`
	SortInMemory    []SortAggRun `json:"sort_in_memory"`
	SortSpill       []SortAggRun `json:"sort_forced_spill"`
	AggInMemory     []SortAggRun `json:"agg_in_memory"`
	AggSpill        []SortAggRun `json:"agg_forced_spill"`
}

const (
	sortBenchSQL = `SELECT k, seq FROM events ORDER BY k`
	aggBenchSQL  = `SELECT grp, COUNT(*), SUM(seq), MIN(payload) FROM events GROUP BY grp`
	// sortAggTimedRuns per configuration; the minimum is reported, which
	// filters scheduler noise on small shared machines.
	sortAggTimedRuns = 5
)

// loadSortAggTable creates and fills the events heap table.
func loadSortAggTable(db *core.Database, cfg SortAggBenchConfig) error {
	if _, err := db.Exec(`CREATE TABLE events (k BIGINT, grp BIGINT, seq BIGINT, payload VARCHAR(24))`); err != nil {
		return err
	}
	const batch = 20_000
	rows := make([]sqltypes.Row, 0, batch)
	for i := 0; i < cfg.Rows; i++ {
		rows = append(rows, sqltypes.Row{
			// Deterministic key mix without a shared RNG.
			sqltypes.NewInt(int64((i * 13) % cfg.KeySpace)),
			sqltypes.NewInt(int64((i * 7) % cfg.Groups)),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("ev-%010d", i)),
		})
		if len(rows) == batch {
			if err := db.InsertRows("events", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := db.InsertRows("events", rows); err != nil {
			return err
		}
	}
	_, err := db.Exec("CHECKPOINT")
	return err
}

// resultChecksum hashes the result sequence; ordered=true keeps row
// order significant (sorts), false canonicalizes it (aggregates).
func resultChecksum(res *core.Result, orderedRows bool) uint64 {
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = fmt.Sprint(r)
	}
	if !orderedRows {
		sort.Strings(lines)
	}
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// runSortAggBench measures one SQL statement at each DOP against one
// database, discarding a warm-up run per DOP, and checks every run's
// checksum against want (0 = derive from the first run).
func runSortAggBench(db *core.Database, sql string, dops []int, orderedRows bool, want uint64) ([]SortAggRun, uint64, error) {
	var out []SortAggRun
	for _, dop := range dops {
		db.SetDOP(dop)
		if _, err := db.Query(sql); err != nil { // warm-up
			return nil, 0, err
		}
		var res *core.Result
		var elapsed time.Duration
		var d core.ExecStatsSnapshot
		for i := 0; i < sortAggTimedRuns; i++ {
			before := db.ExecStats()
			start := time.Now()
			r, err := db.Query(sql)
			if err != nil {
				return nil, 0, err
			}
			e := time.Since(start)
			if res == nil || e < elapsed {
				res, elapsed = r, e
				d = db.ExecStats().Sub(before)
			}
			sum := resultChecksum(r, orderedRows)
			if want == 0 {
				want = sum
			} else if sum != want {
				return nil, 0, fmt.Errorf("bench: DOP %d result checksum %x, want %x (%q)", dop, sum, want, sql)
			}
		}
		out = append(out, SortAggRun{
			DOP:                  dop,
			ElapsedMS:            float64(elapsed.Microseconds()) / 1e3,
			Rows:                 int64(len(res.Rows)),
			SortRuns:             d.Sort.Runs,
			SortSpilledRows:      d.Sort.SpilledRows,
			SortSpilledBytes:     d.Sort.SpilledBytes,
			AggSpilledPartitions: d.Agg.SpilledPartitions,
			AggSpilledRows:       d.Agg.SpilledRows,
			AggSpillRecursions:   d.Agg.SpillRecursions,
			PoolHitRate:          d.Pool.HitRate(),
		})
	}
	return out, want, nil
}

// SortAggExperiment measures the external sort and the spillable
// aggregate through the full SQL stack: warm in-memory runs at each DOP,
// then the same statements with budgets far below the table so every run
// spills. All runs must produce checksum-identical results — the ordered
// sort checksum doubles as the equal-key stability check.
func SortAggExperiment(workDir string, cfg SortAggBenchConfig) (*SortAggBenchResult, error) {
	res := &SortAggBenchResult{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Rows:            cfg.Rows,
		KeySpace:        cfg.KeySpace,
		Groups:          cfg.Groups,
		SortSpillBudget: cfg.SortSpillBudget,
		AggSpillBudget:  cfg.AggSpillBudget,
	}
	open := func(name string, sortBudget, aggBudget int64) (*core.Database, error) {
		db, err := core.Open(filepath.Join(workDir, name), core.Options{
			DOP:               maxDOP(cfg.DOPs),
			ParallelThreshold: 2_048,
			SortMemoryBudget:  sortBudget,
			AggMemoryBudget:   aggBudget,
		})
		if err != nil {
			return nil, err
		}
		return db, loadSortAggTable(db, cfg)
	}

	memDB, err := open("sortagg_mem", -1, -1) // unlimited
	if err != nil {
		return nil, err
	}
	defer memDB.Close()
	if expl, err := memDB.Query("EXPLAIN " + sortBenchSQL); err == nil {
		res.SortPlan = expl.Plan
	}
	if expl, err := memDB.Query("EXPLAIN " + aggBenchSQL); err == nil {
		res.AggPlan = expl.Plan
	}
	var sortSum, aggSum uint64
	if res.SortInMemory, sortSum, err = runSortAggBench(memDB, sortBenchSQL, cfg.DOPs, true, 0); err != nil {
		return nil, err
	}
	if res.AggInMemory, aggSum, err = runSortAggBench(memDB, aggBenchSQL, cfg.DOPs, false, 0); err != nil {
		return nil, err
	}

	spillDB, err := open("sortagg_spill", cfg.SortSpillBudget, cfg.AggSpillBudget)
	if err != nil {
		return nil, err
	}
	defer spillDB.Close()
	if res.SortSpill, _, err = runSortAggBench(spillDB, sortBenchSQL, cfg.DOPs, true, sortSum); err != nil {
		return nil, err
	}
	if res.AggSpill, _, err = runSortAggBench(spillDB, aggBenchSQL, cfg.DOPs, false, aggSum); err != nil {
		return nil, err
	}
	for _, r := range res.SortSpill {
		if r.SortRuns == 0 {
			return nil, fmt.Errorf("bench: forced-spill sort at DOP %d spilled no runs", r.DOP)
		}
	}
	for _, r := range res.AggSpill {
		if r.AggSpilledPartitions == 0 {
			return nil, fmt.Errorf("bench: forced-spill aggregate at DOP %d spilled no partitions", r.DOP)
		}
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *SortAggBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
