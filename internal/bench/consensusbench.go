package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/udf"
)

// ConsensusResult captures the Section 5.3.3 experiments: the parallel
// merge-join rate for retrieving sequences per alignment (Figure 10) and
// the pivot-vs-sliding-window consensus comparison.
type ConsensusResult struct {
	Alignments       int64
	MergeJoinElapsed time.Duration
	MergeJoinRate    float64 // alignments per second
	MergeJoinPlan    string
	// MergeJoinPoolStats is the buffer-pool activity of the measured
	// (warm) join run.
	MergeJoinPoolStats storage.PoolStats
	PivotElapsed       time.Duration
	SlidingElapsed     time.Duration
	SlidingPlan        string
	ConsensusMatch     bool
}

// ConsensusExperiment loads a re-sequencing dataset into clustered tables
// and runs the merge-join and consensus measurements.
func ConsensusExperiment(ds *ResequencingDataset, workDir string, dop int) (*ConsensusResult, error) {
	db, err := core.Open(filepath.Join(workDir, "consensusdb"), core.Options{DOP: dop})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	udf.RegisterAll(db)

	// Physical design for the join (Figure 10): Read clustered by r_id,
	// Alignment clustered by its read id.
	if _, err := db.Exec(`CREATE TABLE [Read] (
	    r_id BIGINT NOT NULL PRIMARY KEY CLUSTERED,
	    short_read_seq VARCHAR(300), quals VARCHAR(300))`); err != nil {
		return nil, err
	}
	if _, err := db.Exec(`CREATE TABLE Alignment (
	    a_r_id BIGINT NOT NULL PRIMARY KEY CLUSTERED,
	    a_g_id INT, a_pos BIGINT, a_strand BIT, a_mapq INT)`); err != nil {
		return nil, err
	}
	readID := readIDResolver(ds.Reads)
	chromID := map[string]int64{}
	for i, c := range ds.Genome.Chroms {
		chromID[c.Name] = int64(i + 1)
	}
	readRows := make([]sqltypes.Row, len(ds.Reads))
	for i, r := range ds.Reads {
		readRows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(r.Seq), sqltypes.NewString(r.Qual),
		}
	}
	if err := insertBatches(db, "Read", readRows); err != nil {
		return nil, err
	}
	alignRows := make([]sqltypes.Row, 0, len(ds.Alignments))
	for _, a := range ds.Alignments {
		alignRows = append(alignRows, sqltypes.Row{
			sqltypes.NewInt(readID(a.ReadName)),
			sqltypes.NewInt(chromID[a.RefName]),
			sqltypes.NewInt(a.Pos),
			sqltypes.NewBool(a.Strand == '-'),
			sqltypes.NewInt(int64(a.MapQ)),
		})
	}
	if err := insertBatches(db, "Alignment", alignRows); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CHECKPOINT"); err != nil {
		return nil, err
	}

	res := &ConsensusResult{Alignments: int64(len(alignRows))}

	// Merge-join rate ("about 1.6 million alignments per second" on the
	// paper's box), measured with a warm buffer pool.
	joinSQL := `SELECT COUNT(*) FROM Alignment JOIN [Read] ON a_r_id = r_id`
	plan, err := db.Exec("EXPLAIN " + joinSQL)
	if err != nil {
		return nil, err
	}
	res.MergeJoinPlan = plan.Plan
	if _, err := db.Exec(joinSQL); err != nil { // warm the pool
		return nil, err
	}
	poolBefore := db.PoolStats()
	start := time.Now()
	jr, err := db.Exec(joinSQL)
	res.MergeJoinElapsed = time.Since(start)
	res.MergeJoinPoolStats = db.PoolStats().Sub(poolBefore)
	if err != nil {
		return nil, err
	}
	if jr.Rows[0][0].I != res.Alignments {
		return nil, fmt.Errorf("bench: join produced %d rows, want %d", jr.Rows[0][0].I, res.Alignments)
	}
	res.MergeJoinRate = float64(res.Alignments) / res.MergeJoinElapsed.Seconds()

	// Consensus input: alignments with their sequences in position order
	// (clustered by chromosome, position).
	if _, err := db.Exec(`CREATE TABLE AlignmentSorted (
	    a_g_id INT NOT NULL, a_pos BIGINT NOT NULL, a_id BIGINT NOT NULL,
	    seq VARCHAR(300), quals VARCHAR(300),
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id))`); err != nil {
		return nil, err
	}
	type sortedAlign struct {
		g    int64
		pos  int64
		seq  string
		qual string
	}
	sorted := make([]sortedAlign, 0, len(ds.Alignments))
	for _, a := range ds.Alignments {
		sorted = append(sorted, sortedAlign{chromID[a.RefName], a.Pos, a.Seq, a.Qual})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].g != sorted[j].g {
			return sorted[i].g < sorted[j].g
		}
		return sorted[i].pos < sorted[j].pos
	})
	sortedRows := make([]sqltypes.Row, len(sorted))
	for i, a := range sorted {
		sortedRows[i] = sqltypes.Row{
			sqltypes.NewInt(a.g), sqltypes.NewInt(a.pos), sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(a.seq), sqltypes.NewString(a.qual),
		}
	}
	if err := insertBatches(db, "AlignmentSorted", sortedRows); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CHECKPOINT"); err != nil {
		return nil, err
	}

	// Pivot plan (Query 3 as written): expand every alignment into
	// per-base rows, hash-group by position, call, assemble.
	pivotSQL := `
	  SELECT a_g_id, AssembleSequence(position, b)
	    FROM (SELECT a_g_id, position, CallBase(base, qual) AS b
	            FROM AlignmentSorted
	            CROSS APPLY PivotAlignment(a_pos, seq, quals) AS p
	           GROUP BY a_g_id, position) t
	   GROUP BY a_g_id`
	start = time.Now()
	pres, err := db.Exec(pivotSQL)
	res.PivotElapsed = time.Since(start)
	if err != nil {
		return nil, err
	}

	// Sliding-window plan: stream aggregate over the clustered order with
	// the AssembleConsensus UDA - no pivot, no blocking sort.
	slidingSQL := `
	  SELECT a_g_id, AssembleConsensus(a_pos, seq, quals)
	    FROM AlignmentSorted
	   GROUP BY a_g_id`
	plan, err = db.Exec("EXPLAIN " + slidingSQL)
	if err != nil {
		return nil, err
	}
	res.SlidingPlan = plan.Plan
	start = time.Now()
	sres, err := db.Exec(slidingSQL)
	res.SlidingElapsed = time.Since(start)
	if err != nil {
		return nil, err
	}

	// Both plans must produce identical consensus strings.
	res.ConsensusMatch = consensusEqual(pres.Rows, sres.Rows)
	if !res.ConsensusMatch {
		return res, fmt.Errorf("bench: pivot and sliding-window consensus differ")
	}
	return res, nil
}

func consensusEqual(a, b []sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(rows []sqltypes.Row) map[int64]string {
		m := make(map[int64]string, len(rows))
		for _, r := range rows {
			m[r[0].I] = r[1].S
		}
		return m
	}
	am, bm := key(a), key(b)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}
