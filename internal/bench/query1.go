package bench

import (
	"bytes"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Query1Result captures the Section 5.3.2 comparison: the sequential
// interpreted script (the paper's Perl baseline) versus the declarative,
// automatically parallelized SQL query, with CPU utilization traces
// (Figures 7 and 8). A compiled-Go version of the same script is measured
// as an ablation separating interpreter overhead from parallelism.
type Query1Result struct {
	// InterpretedElapsed is the Perl-equivalent baseline.
	InterpretedElapsed time.Duration
	InterpretedTrace   script.Trace
	ScriptCPU          []CPUSample // sampled during the interpreted run
	// CompiledElapsed is the same algorithm in compiled Go.
	CompiledElapsed time.Duration
	CompiledTrace   script.Trace
	SQLElapsed      time.Duration
	SQLCPU          []CPUSample
	SQLPlan         string
	// SQLPoolStats is the buffer-pool activity during the measured SQL
	// run; a warm run should be near 100% hits.
	SQLPoolStats storage.PoolStats
	UniqueTags   int64
	// Speedup is interpreted-script time over SQL time (the paper's
	// 10min vs 44s ≈ 13.6x).
	Speedup float64
}

// Query1SQL is the paper's Query 1 over the loaded Read table.
const Query1SQL = `
SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank,
       COUNT(*) AS freq,
       short_read_seq
  FROM [Read]
 WHERE CHARINDEX('N', short_read_seq) = 0
 GROUP BY short_read_seq`

// LoadReadTable loads a DGE read set into the normalized Read table.
func LoadReadTable(db *core.Database, ds *DGEDataset) error {
	if _, err := db.Exec(`CREATE TABLE [Read] (
	    r_id BIGINT, fc_id INT, lane INT, tile INT, x INT, y INT,
	    short_read_seq VARCHAR(300), quals VARCHAR(300))`); err != nil {
		return err
	}
	rows := make([]sqltypes.Row, len(ds.Reads))
	for i, r := range ds.Reads {
		_, _, fc, lane, tile, x, y, ok := parseReadName(r.Name)
		if !ok {
			return fmt.Errorf("bench: bad read name %q", r.Name)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewInt(fc), sqltypes.NewInt(lane), sqltypes.NewInt(tile),
			sqltypes.NewInt(x), sqltypes.NewInt(y),
			sqltypes.NewString(r.Seq), sqltypes.NewString(r.Qual),
		}
	}
	if err := insertBatches(db, "Read", rows); err != nil {
		return err
	}
	_, err := db.Exec("CHECKPOINT")
	return err
}

// Query1Experiment runs all three implementations over the same dataset.
func Query1Experiment(ds *DGEDataset, workDir string, dop int) (*Query1Result, error) {
	res := &Query1Result{}

	// Sequential interpreted script (Figure 7): slurp, process on one
	// core through the expression interpreter, write.
	sampler := StartCPUSampler(50 * time.Millisecond)
	var out bytes.Buffer
	trace, nTags, err := script.BinUniqueReadsInterpreted(bytes.NewReader(ds.ReadsFASTQ), &out)
	res.ScriptCPU = sampler.Stop()
	if err != nil {
		return nil, err
	}
	res.InterpretedTrace = trace
	res.InterpretedElapsed = trace.Total
	res.UniqueTags = int64(nTags)

	// The same script compiled (Go): isolates interpreter overhead.
	out.Reset()
	trace, nCompiled, err := script.BinUniqueReads(bytes.NewReader(ds.ReadsFASTQ), &out)
	if err != nil {
		return nil, err
	}
	if nCompiled != nTags {
		return nil, fmt.Errorf("bench: compiled script found %d tags, interpreted %d", nCompiled, nTags)
	}
	res.CompiledTrace = trace
	res.CompiledElapsed = trace.Total

	// Declarative SQL (Figure 8): the engine parallelizes the scan and
	// aggregation across cores. Measured warm (the load just wrote the
	// pool), matching the paper's warm-pool methodology.
	db, err := core.Open(filepath.Join(workDir, "query1db"), core.Options{DOP: dop})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := LoadReadTable(db, ds); err != nil {
		return nil, err
	}
	plan, err := db.Exec("EXPLAIN " + Query1SQL)
	if err != nil {
		return nil, err
	}
	res.SQLPlan = plan.Plan
	if _, err := db.Exec(Query1SQL); err != nil { // warm the pool
		return nil, err
	}

	sampler = StartCPUSampler(50 * time.Millisecond)
	poolBefore := db.PoolStats()
	start := time.Now()
	qres, err := db.Exec(Query1SQL)
	res.SQLElapsed = time.Since(start)
	res.SQLPoolStats = db.PoolStats().Sub(poolBefore)
	res.SQLCPU = sampler.Stop()
	if err != nil {
		return nil, err
	}
	if int64(len(qres.Rows)) != res.UniqueTags {
		return nil, fmt.Errorf("bench: SQL found %d unique tags, script found %d",
			len(qres.Rows), res.UniqueTags)
	}
	if res.SQLElapsed > 0 {
		res.Speedup = float64(res.InterpretedElapsed) / float64(res.SQLElapsed)
	}
	return res, nil
}

// Query1DOPAblation measures Query 1 at several degrees of parallelism.
func Query1DOPAblation(ds *DGEDataset, workDir string, dops []int) (map[int]time.Duration, error) {
	db, err := core.Open(filepath.Join(workDir, "query1dop"), core.Options{DOP: 1})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := LoadReadTable(db, ds); err != nil {
		return nil, err
	}
	out := map[int]time.Duration{}
	for _, dop := range dops {
		db.SetDOP(dop)
		// Warm once, then measure.
		if _, err := db.Exec(Query1SQL); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := db.Exec(Query1SQL); err != nil {
			return nil, err
		}
		out[dop] = time.Since(start)
	}
	return out, nil
}
