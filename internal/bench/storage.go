package bench

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/gen"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// StorageRow is one line of a Table 1 / Table 2 style comparison: the
// bytes needed by each physical design for one data item.
type StorageRow struct {
	Item       string
	Files      int64
	FileStream int64
	OneToOne   int64
	Normalized int64
	NormRow    int64
	NormPage   int64
}

// insertBatches bulk-loads rows in chunks (bounding per-transaction undo
// state).
func insertBatches(db *core.Database, table string, rows []sqltypes.Row) error {
	const batch = 20000
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := db.InsertRows(table, rows[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// loadVariant creates a table under each compression mode and loads the
// same rows, returning sizes for (none, row, page).
func loadVariant(db *core.Database, baseName, ddlCols string, rows []sqltypes.Row) (none, rowC, pageC int64, err error) {
	type variant struct {
		suffix string
		with   string
	}
	variants := []variant{
		{"_plain", ""},
		{"_row", " WITH (DATA_COMPRESSION = ROW)"},
		{"_page", " WITH (DATA_COMPRESSION = PAGE)"},
	}
	sizes := make([]int64, 3)
	for i, v := range variants {
		name := baseName + v.suffix
		if _, err := db.Exec("CREATE TABLE " + name + " (" + ddlCols + ")" + v.with); err != nil {
			return 0, 0, 0, err
		}
		if err := insertBatches(db, name, rows); err != nil {
			return 0, 0, 0, err
		}
		if _, err := db.Exec("CHECKPOINT"); err != nil {
			return 0, 0, 0, err
		}
		sz, err := db.TableSizeBytes(name)
		if err != nil {
			return 0, 0, 0, err
		}
		sizes[i] = sz
	}
	return sizes[0], sizes[1], sizes[2], nil
}

// loadOneToOne loads rows into an uncompressed table and returns its size.
func loadOneToOne(db *core.Database, name, ddlCols string, rows []sqltypes.Row) (int64, error) {
	if _, err := db.Exec("CREATE TABLE " + name + " (" + ddlCols + ")"); err != nil {
		return 0, err
	}
	if err := insertBatches(db, name, rows); err != nil {
		return 0, err
	}
	if _, err := db.Exec("CHECKPOINT"); err != nil {
		return 0, err
	}
	return db.TableSizeBytes(name)
}

// parseReadName decomposes the composite textual identifier
// machine_run:flowcell:lane:tile:x:y into its numeric parts — the
// normalization step of Section 5.1.1.
func parseReadName(name string) (machine string, run, fc, lane, tile, x, y int64, ok bool) {
	head, rest, found := strings.Cut(name, ":")
	if !found {
		return "", 0, 0, 0, 0, 0, 0, false
	}
	m, runStr, found := strings.Cut(head, "_")
	if !found {
		return "", 0, 0, 0, 0, 0, 0, false
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 5 {
		return "", 0, 0, 0, 0, 0, 0, false
	}
	nums := make([]int64, 6)
	fields := append([]string{runStr}, parts...)
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return "", 0, 0, 0, 0, 0, 0, false
		}
		nums[i] = v
	}
	return m, nums[0], nums[1], nums[2], nums[3], nums[4], nums[5], true
}

// StorageExperimentDGE reproduces Table 1 over a DGE dataset.
func StorageExperimentDGE(ds *DGEDataset, workDir string) ([]StorageRow, error) {
	db, err := core.Open(filepath.Join(workDir, "storagedge"), core.Options{DOP: 1})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	var out []StorageRow

	readsRow, err := storageReads(db, "reads", ds.Reads, ds.ReadsFASTQ)
	if err != nil {
		return nil, err
	}
	out = append(out, readsRow)

	tagsRow, err := storageTags(db, ds.Tags)
	if err != nil {
		return nil, err
	}
	out = append(out, tagsRow)

	alignRow, err := storageAlignments(db, "aligns", ds.Alignments, ds.Genome, tagIDResolver(ds.Tags))
	if err != nil {
		return nil, err
	}
	out = append(out, alignRow)

	exprRow, err := storageExpression(db, ds.Expression)
	if err != nil {
		return nil, err
	}
	out = append(out, exprRow)
	return out, nil
}

// StorageExperiment1000G reproduces Table 2 over a re-sequencing dataset.
func StorageExperiment1000G(ds *ResequencingDataset, workDir string) ([]StorageRow, error) {
	db, err := core.Open(filepath.Join(workDir, "storage1000g"), core.Options{DOP: 1})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	var out []StorageRow

	readsRow, err := storageReads(db, "reads", ds.Reads, ds.ReadsFASTQ)
	if err != nil {
		return nil, err
	}
	out = append(out, readsRow)

	alignRow, err := storageAlignments(db, "aligns", ds.Alignments, ds.Genome, readIDResolver(ds.Reads))
	if err != nil {
		return nil, err
	}
	out = append(out, alignRow)
	return out, nil
}

func storageReads(db *core.Database, base string, reads []fastq.Record, file []byte) (StorageRow, error) {
	row := StorageRow{Item: "Short reads (level 1)"}
	row.Files = int64(len(file))
	// FileStream stores the identical bytes as a blob.
	row.FileStream = int64(len(file))

	// 1:1 import: the textual composite identifier is repeated per row,
	// exactly as in the file.
	oneRows := make([]sqltypes.Row, len(reads))
	for i, r := range reads {
		oneRows[i] = sqltypes.Row{
			sqltypes.NewString(r.Name),
			sqltypes.NewString(r.Seq),
			sqltypes.NewString(r.Qual),
		}
	}
	var err error
	row.OneToOne, err = loadOneToOne(db, base+"_1to1",
		"read_name VARCHAR(100), seq VARCHAR(300), quals VARCHAR(300)", oneRows)
	if err != nil {
		return row, err
	}

	// Normalized: synthetic integer ids, composite name decomposed.
	normRows := make([]sqltypes.Row, len(reads))
	for i, r := range reads {
		_, _, fc, lane, tile, x, y, ok := parseReadName(r.Name)
		if !ok {
			return row, fmt.Errorf("bench: unparseable read name %q", r.Name)
		}
		normRows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewInt(fc), sqltypes.NewInt(lane), sqltypes.NewInt(tile),
			sqltypes.NewInt(x), sqltypes.NewInt(y),
			sqltypes.NewString(r.Seq),
			sqltypes.NewString(r.Qual),
		}
	}
	ddl := "r_id BIGINT, fc_id INT, lane INT, tile INT, x INT, y INT, seq VARCHAR(300), quals VARCHAR(300)"
	row.Normalized, row.NormRow, row.NormPage, err = loadVariant(db, base+"_norm", ddl, normRows)
	return row, err
}

func storageTags(db *core.Database, tags []fastq.TagRecord) (StorageRow, error) {
	row := StorageRow{Item: "Unique tags (binning)"}
	file := RenderTagsFile(tags)
	row.Files = int64(len(file))
	row.FileStream = int64(len(file))
	oneRows := make([]sqltypes.Row, len(tags))
	normRows := make([]sqltypes.Row, len(tags))
	for i, t := range tags {
		oneRows[i] = sqltypes.Row{sqltypes.NewString(t.Seq), sqltypes.NewInt(t.Frequency)}
		normRows[i] = sqltypes.Row{sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(t.Seq), sqltypes.NewInt(t.Frequency)}
	}
	var err error
	row.OneToOne, err = loadOneToOne(db, "tags_1to1", "t_seq VARCHAR(100), freq BIGINT", oneRows)
	if err != nil {
		return row, err
	}
	row.Normalized, row.NormRow, row.NormPage, err = loadVariant(db, "tags_norm",
		"t_id BIGINT, t_seq VARCHAR(100), freq BIGINT", normRows)
	return row, err
}

// tagIDResolver maps alignment read-names ("tag_N") to tag ids.
func tagIDResolver(tags []fastq.TagRecord) func(name string) int64 {
	return func(name string) int64 {
		n, err := strconv.ParseInt(strings.TrimPrefix(name, "tag_"), 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
}

// readIDResolver maps read names to their 1-based index.
func readIDResolver(reads []fastq.Record) func(name string) int64 {
	idx := make(map[string]int64, len(reads))
	for i, r := range reads {
		idx[r.Name] = int64(i + 1)
	}
	return func(name string) int64 { return idx[name] }
}

func storageAlignments(db *core.Database, base string, aligns []fastq.AlignmentRecord, genome *gen.Genome, readID func(string) int64) (StorageRow, error) {
	row := StorageRow{Item: "Alignments (level 2)"}
	file := RenderAlignmentsFile(aligns)
	row.Files = int64(len(file))
	row.FileStream = int64(len(file))

	chromID := map[string]int64{}
	for i, c := range genome.Chroms {
		chromID[c.Name] = int64(i + 1)
	}

	// 1:1: repeats the read name, the reference name AND the sequence
	// data, exactly as the alignment text file does.
	oneRows := make([]sqltypes.Row, len(aligns))
	for i, a := range aligns {
		oneRows[i] = sqltypes.Row{
			sqltypes.NewString(a.ReadName),
			sqltypes.NewString(a.RefName),
			sqltypes.NewInt(a.Pos),
			sqltypes.NewString(string(a.Strand)),
			sqltypes.NewInt(int64(a.Mismatches)),
			sqltypes.NewInt(int64(a.MapQ)),
			sqltypes.NewString(a.Seq),
			sqltypes.NewString(a.Qual),
		}
	}
	var err error
	row.OneToOne, err = loadOneToOne(db, base+"_1to1",
		"read_name VARCHAR(100), ref_name VARCHAR(50), pos BIGINT, strand VARCHAR(1), mm INT, mapq INT, seq VARCHAR(300), quals VARCHAR(300)",
		oneRows)
	if err != nil {
		return row, err
	}

	// Normalized: foreign keys replace the textual ids, and the sequence
	// is NOT repeated — it lives in the Read table ("they are linked back
	// to the base relation ... by foreign-key relationships").
	normRows := make([]sqltypes.Row, len(aligns))
	for i, a := range aligns {
		strand := int64(0)
		if a.Strand == '-' {
			strand = 1
		}
		normRows[i] = sqltypes.Row{
			sqltypes.NewInt(readID(a.ReadName)),
			sqltypes.NewInt(chromID[a.RefName]),
			sqltypes.NewInt(a.Pos),
			sqltypes.NewBool(strand == 1),
			sqltypes.NewInt(int64(a.Mismatches)),
			sqltypes.NewInt(int64(a.MapQ)),
		}
	}
	row.Normalized, row.NormRow, row.NormPage, err = loadVariant(db, base+"_norm",
		"a_r_id BIGINT, a_g_id INT, a_pos BIGINT, a_strand BIT, a_mm INT, a_mapq INT", normRows)
	return row, err
}

func storageExpression(db *core.Database, recs []fastq.ExpressionRecord) (StorageRow, error) {
	row := StorageRow{Item: "Gene expression (level 3)"}
	file := RenderExpressionFile(recs)
	row.Files = int64(len(file))
	row.FileStream = int64(len(file))
	oneRows := make([]sqltypes.Row, len(recs))
	normRows := make([]sqltypes.Row, len(recs))
	for i, e := range recs {
		oneRows[i] = sqltypes.Row{
			sqltypes.NewString(e.Gene), sqltypes.NewInt(e.TotalFrequency), sqltypes.NewInt(e.TagCount),
		}
		normRows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)), sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(1),
			sqltypes.NewInt(e.TotalFrequency), sqltypes.NewInt(e.TagCount),
		}
	}
	var err error
	row.OneToOne, err = loadOneToOne(db, "expr_1to1", "gene VARCHAR(50), total BIGINT, cnt BIGINT", oneRows)
	if err != nil {
		return row, err
	}
	row.Normalized, row.NormRow, row.NormPage, err = loadVariant(db, "expr_norm",
		"g_id INT, e_id INT, sg_id INT, s_id INT, total BIGINT, cnt BIGINT", normRows)
	return row, err
}

// SequenceUDTExperiment is the Section 5.1.2 ablation: the proposed
// bit-encoded SEQUENCE type versus VARCHAR storage for read sequences.
// Returns (varcharBytes, sequenceBytes).
func SequenceUDTExperiment(reads []fastq.Record, workDir string) (int64, int64, error) {
	db, err := core.Open(filepath.Join(workDir, "seqtype"), core.Options{DOP: 1})
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	mkRows := func() []sqltypes.Row {
		rows := make([]sqltypes.Row, len(reads))
		for i, r := range reads {
			rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(r.Seq)}
		}
		return rows
	}
	vc, err := loadOneToOne(db, "seq_varchar", "r_id BIGINT, seq VARCHAR(300)", mkRows())
	if err != nil {
		return 0, 0, err
	}
	sq, err := loadOneToOne(db, "seq_udt", "r_id BIGINT, seq SEQUENCE", mkRows())
	if err != nil {
		return 0, 0, err
	}
	_ = storage.PageSize // documented unit of the sizes above
	return vc, sq, nil
}
