package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/fastq"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

// WrapResult is one row of the Section 5.2 comparison: the wall time of a
// COUNT(*)-style scan over a FileStream with a given access method.
type WrapResult struct {
	Method  string
	Elapsed time.Duration
	Records int64
}

// WrapExperiment reproduces the Section 5.2 list: scanning a short-read
// FileStream with (1) a command-line program, (2) an interpreted "T-SQL"
// stored procedure, (3) a line-oriented StreamReader procedure, (4) a
// chunked procedure and (5) a chunked table-valued function.
func WrapExperiment(readsFASTQ []byte, workDir string) ([]WrapResult, error) {
	db, err := core.Open(filepath.Join(workDir, "wrapdb"), core.Options{DOP: 1})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	udf.RegisterAll(db)
	if _, err := db.Exec(`CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`); err != nil {
		return nil, err
	}
	srcPath := filepath.Join(workDir, "lane.fastq")
	if err := os.WriteFile(srcPath, readsFASTQ, 0o644); err != nil {
		return nil, err
	}
	guid, err := db.ImportFileStream("ShortReadFiles", srcPath, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(855), "lane": sqltypes.NewInt(1),
	})
	if err != nil {
		return nil, err
	}

	var out []WrapResult
	run := func(method string, fn func() (int64, error)) error {
		start := time.Now()
		n, err := fn()
		if err != nil {
			return fmt.Errorf("bench: %s: %w", method, err)
		}
		out = append(out, WrapResult{Method: method, Elapsed: time.Since(start), Records: n})
		return nil
	}

	// 1. Command-line program: direct buffered scan of the file.
	if err := run("Command line program", func() (int64, error) {
		f, err := os.Open(srcPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		sc := fastq.NewChunkedScanner(fastq.SourceFromReaderAt(f), fastq.FASTQEntry, 0)
		for sc.MoveNext() {
		}
		return sc.Entries, sc.Err()
	}); err != nil {
		return nil, err
	}

	// 2. "T-SQL" stored procedure: a WHILE loop over the blob content
	// using interpreted CHARINDEX/SUBSTRING expression evaluation with
	// T-SQL copy semantics for every extracted line - the row-at-a-time
	// interpreter overhead the paper measures in minutes.
	if err := run("T-SQL stored procedure (interpreted)", func() (int64, error) {
		return tsqlProcCount(db, guid)
	}); err != nil {
		return nil, err
	}

	// 3. CLR-style procedure with a StreamReader: line-at-a-time reads
	// with per-line allocations.
	if err := run("CLR proc, StreamReader", func() (int64, error) {
		stream, err := db.OpenBlob(guid)
		if err != nil {
			return 0, err
		}
		defer stream.Close()
		stream.SetSequential(true)
		br := bufio.NewReaderSize(&blobReaderAt{stream: stream}, 64<<10)
		var lines int64
		for {
			_, err := br.ReadString('\n')
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, err
			}
			lines++
		}
		return lines / 4, nil
	}); err != nil {
		return nil, err
	}

	// 4. CLR-style procedure with chunking: the paper's paging algorithm,
	// parsing in place with no per-row conversion.
	if err := run("CLR proc, chunking", func() (int64, error) {
		stream, err := db.OpenBlob(guid)
		if err != nil {
			return 0, err
		}
		defer stream.Close()
		stream.SetSequential(true)
		sc := fastq.NewChunkedScanner(stream, fastq.FASTQEntry, 0)
		for sc.MoveNext() {
		}
		return sc.Entries, sc.Err()
	}); err != nil {
		return nil, err
	}

	// 5. Chunked TVF: the same paging parser behind the full iterator
	// contract - MoveNext + FillRow into SQL values, consumed by the
	// query processor (SELECT COUNT(*) FROM ListShortReads(...)).
	if err := run("CLR TVF, chunking", func() (int64, error) {
		res, err := db.Exec(`SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')`)
		if err != nil {
			return 0, err
		}
		return res.Rows[0][0].I, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// blobReaderAt adapts the blob stream to io.Reader for bufio.
type blobReaderAt struct {
	stream *core.BlobStream
	off    int64
}

func (b *blobReaderAt) Read(p []byte) (int, error) {
	n, err := b.stream.GetBytes(b.off, p)
	b.off += int64(n)
	if n == 0 && err == nil {
		return 0, io.EOF
	}
	return n, err
}

// tsqlProcCount emulates an interpreted T-SQL procedure: the blob is held
// in a VARCHAR(MAX) variable and a WHILE loop extracts one line at a time
// with CHARINDEX and SUBSTRING, every operation going through the boxed
// expression interpreter. SUBSTRING copies its result, matching T-SQL
// value semantics.
func tsqlProcCount(db *core.Database, guid string) (int64, error) {
	stream, err := db.OpenBlob(guid)
	if err != nil {
		return 0, err
	}
	content := make([]byte, stream.Size())
	if _, err := stream.GetBytes(0, content); err != nil && err != io.EOF {
		stream.Close()
		return 0, err
	}
	stream.Close()

	reg := expr.NewRegistry()
	charindex, _ := reg.Lookup("charindex")
	substring, _ := reg.Lookup("substring")
	copyString := func(args []sqltypes.Value) (sqltypes.Value, error) {
		v, err := substring(args)
		if err != nil {
			return v, err
		}
		// T-SQL materializes a fresh string; Go slicing would alias.
		return sqltypes.NewString(string(append([]byte(nil), v.S...))), nil
	}

	// DECLARE @content VARCHAR(MAX), @off INT, @lines INT
	contentVal := sqltypes.NewString(string(content))
	row := sqltypes.Row{contentVal, sqltypes.NewInt(1)} // [@content, @off]
	colContent := &expr.Col{Idx: 0, Name: "@content"}
	colOff := &expr.Col{Idx: 1, Name: "@off"}
	newline := &expr.Lit{V: sqltypes.NewString("\n")}

	// @idx = CHARINDEX('\n', @content, @off)
	idxExpr := &expr.Call{Name: "CHARINDEX", Fn: charindex, Args: []expr.Expr{newline, colContent, colOff}}
	var lines int64
	for {
		idxV, err := idxExpr.Eval(row)
		if err != nil {
			return 0, err
		}
		if idxV.I == 0 {
			break
		}
		// @line = SUBSTRING(@content, @off, @idx - @off)
		lineExpr := &expr.Call{Name: "SUBSTRING", Fn: expr.ScalarFunc(copyString), Args: []expr.Expr{
			colContent, colOff,
			&expr.Arith{Op: expr.OpSub, L: &expr.Lit{V: idxV}, R: colOff},
		}}
		if _, err := lineExpr.Eval(row); err != nil {
			return 0, err
		}
		lines++
		// @off = @idx + 1
		row[1] = sqltypes.NewInt(idxV.I + 1)
	}
	return lines / 4, nil
}

// ChunkSizeAblation measures the chunked scan at several paging buffer
// sizes (the design-choice ablation of DESIGN.md).
func ChunkSizeAblation(readsFASTQ []byte, workDir string, sizes []int) ([]WrapResult, error) {
	path := filepath.Join(workDir, "ablate.fastq")
	if err := os.WriteFile(path, readsFASTQ, 0o644); err != nil {
		return nil, err
	}
	var out []WrapResult
	for _, size := range sizes {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sc := fastq.NewChunkedScanner(fastq.SourceFromReaderAt(f), fastq.FASTQEntry, size)
		for sc.MoveNext() {
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, WrapResult{
			Method:  fmt.Sprintf("chunk=%dKiB", size/1024),
			Elapsed: time.Since(start),
			Records: sc.Entries,
		})
	}
	return out, nil
}
