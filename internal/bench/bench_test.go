package bench

import (
	"strings"
	"testing"
	"time"
)

func smallDGE(t *testing.T) *DGEDataset {
	t.Helper()
	ds, err := BuildDGE(4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func small1000G(t *testing.T) *ResequencingDataset {
	t.Helper()
	ds, err := Build1000G(3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildDGEShape(t *testing.T) {
	ds := smallDGE(t)
	if len(ds.Reads) != 4000 {
		t.Fatalf("%d reads", len(ds.Reads))
	}
	// DGE property: tags repeat heavily, so unique tags << reads.
	if len(ds.Tags) >= len(ds.Reads)/2 {
		t.Errorf("%d unique tags from %d reads: not repetitive", len(ds.Tags), len(ds.Reads))
	}
	if len(ds.Alignments) == 0 || len(ds.Expression) == 0 {
		t.Error("missing alignments or expression results")
	}
	if len(ds.ReadsFASTQ) == 0 {
		t.Error("missing FASTQ rendering")
	}
}

func TestBuild1000GShape(t *testing.T) {
	ds := small1000G(t)
	if len(ds.Reads) != 3000 {
		t.Fatalf("%d reads", len(ds.Reads))
	}
	// Re-sequencing property: almost all reads unique.
	uniq := map[string]bool{}
	for _, r := range ds.Reads {
		uniq[r.Seq] = true
	}
	if float64(len(uniq)) < 0.9*float64(len(ds.Reads)) {
		t.Errorf("only %d/%d unique reads", len(uniq), len(ds.Reads))
	}
	if float64(len(ds.Alignments)) < 0.8*float64(len(ds.Reads)) {
		t.Errorf("only %d/%d reads aligned", len(ds.Alignments), len(ds.Reads))
	}
}

func TestStorageExperimentDGEShape(t *testing.T) {
	ds := smallDGE(t)
	rows, err := StorageExperimentDGE(ds, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	reads := rows[0]
	// Paper Table 1 shape: FileStream == Files; 1:1 larger than files;
	// normalized competitive; page compression effective on repetitive
	// DGE data.
	if reads.FileStream != reads.Files {
		t.Errorf("FileStream %d != Files %d", reads.FileStream, reads.Files)
	}
	if reads.OneToOne <= reads.Files {
		t.Errorf("1:1 import %d not larger than files %d", reads.OneToOne, reads.Files)
	}
	// The paper: "In a plain normalized relational schema we achieve the
	// same storage efficiency as with the original files" — normalized
	// must not exceed the 1:1 import.
	if reads.Normalized > reads.OneToOne {
		t.Errorf("normalized %d larger than 1:1 %d", reads.Normalized, reads.OneToOne)
	}
	if reads.NormPage >= reads.NormRow {
		t.Errorf("page %d not smaller than row %d on repetitive DGE reads", reads.NormPage, reads.NormRow)
	}
	if float64(reads.NormPage) > 0.8*float64(reads.Files) {
		t.Errorf("page-compressed %d vs files %d: dictionary should win clearly on DGE", reads.NormPage, reads.Files)
	}
	table := RenderStorageTable("Table 1", rows)
	if !strings.Contains(table, "Short reads") {
		t.Error("table rendering broken")
	}
}

func TestStorageExperiment1000GShape(t *testing.T) {
	ds := small1000G(t)
	rows, err := StorageExperiment1000G(ds, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	reads, aligns := rows[0], rows[1]
	// Paper Table 2 shape: compression much less effective on unique
	// reads than in the DGE case; normalized alignments save vs 1:1.
	if float64(reads.NormPage) < 0.5*float64(reads.NormRow) {
		t.Errorf("page compression on unique reads too effective: %d vs %d (suspicious)",
			reads.NormPage, reads.NormRow)
	}
	if float64(aligns.Normalized) > 0.7*float64(aligns.OneToOne) {
		t.Errorf("normalized alignments %d vs 1:1 %d: want >=30%% saving (paper: 40%%)",
			aligns.Normalized, aligns.OneToOne)
	}
}

func TestWrapExperimentShape(t *testing.T) {
	ds := smallDGE(t)
	rows, err := WrapExperiment(ds.ReadsFASTQ, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// All methods must agree on the record count.
	for _, r := range rows[1:] {
		if r.Records != rows[0].Records {
			t.Errorf("%s counted %d records, command line counted %d",
				r.Method, r.Records, rows[0].Records)
		}
	}
	if out := RenderWrapTable("5.2", rows); !strings.Contains(out, "Command line") {
		t.Error("wrap table rendering broken")
	}
}

func TestChunkSizeAblation(t *testing.T) {
	ds := smallDGE(t)
	rows, err := ChunkSizeAblation(ds.ReadsFASTQ, t.TempDir(), []int{4096, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Records != rows[1].Records {
		t.Errorf("ablation rows = %+v", rows)
	}
}

func TestQuery1ExperimentAgreesAndParallelizes(t *testing.T) {
	ds := smallDGE(t)
	res, err := Query1Experiment(ds, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueTags == 0 {
		t.Error("no unique tags")
	}
	if !strings.Contains(res.SQLPlan, "Hash Match") {
		t.Errorf("plan missing aggregate:\n%s", res.SQLPlan)
	}
	if len(res.InterpretedTrace.Phases) != 3 {
		t.Errorf("script trace = %+v", res.InterpretedTrace)
	}
	// The paper's headline: the declarative query beats the interpreted
	// script (10 min vs 44 s). Shapes only - require any win at all.
	if res.Speedup < 1 {
		t.Errorf("SQL (%.3fs) did not beat the interpreted script (%.3fs)",
			res.SQLElapsed.Seconds(), res.InterpretedElapsed.Seconds())
	}
	// And the compiled ablation separates interpreter overhead.
	if res.InterpretedElapsed < res.CompiledElapsed {
		t.Error("interpreted script faster than compiled script (implausible)")
	}
}

func TestConsensusExperimentShape(t *testing.T) {
	ds := small1000G(t)
	res, err := ConsensusExperiment(ds, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConsensusMatch {
		t.Error("pivot and sliding consensus differ")
	}
	if !strings.Contains(res.MergeJoinPlan, "Merge Join") {
		t.Errorf("join plan missing merge join:\n%s", res.MergeJoinPlan)
	}
	if !strings.Contains(res.SlidingPlan, "Stream Aggregate") {
		t.Errorf("sliding plan missing stream aggregate:\n%s", res.SlidingPlan)
	}
	if res.MergeJoinRate <= 0 {
		t.Error("merge join rate not measured")
	}
	// The sliding window should beat the pivot plan (the paper's central
	// performance claim for consensus); allow generous slack on tiny data.
	if res.SlidingElapsed > res.PivotElapsed*2 {
		t.Errorf("sliding %.3fs much slower than pivot %.3fs",
			res.SlidingElapsed.Seconds(), res.PivotElapsed.Seconds())
	}
}

func TestSequenceUDTExperiment(t *testing.T) {
	ds := small1000G(t)
	vc, sq, err := SequenceUDTExperiment(ds.Reads, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if sq >= vc {
		t.Errorf("SEQUENCE %d not smaller than VARCHAR %d", sq, vc)
	}
}

func TestCPUSamplerSmoke(t *testing.T) {
	s := StartCPUSampler(10 * time.Millisecond)
	busyLoop(60 * time.Millisecond)
	samples := s.Stop()
	// /proc/stat may be missing on exotic platforms; only assert when
	// samples exist.
	if len(samples) > 0 {
		if AverageBusy(samples) <= 0 {
			t.Error("zero busy during a spin loop")
		}
		if out := RenderCPUTrace(samples, 40); !strings.Contains(out, "cores busy") {
			t.Error("trace rendering broken")
		}
	}
}

func busyLoop(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0
	for time.Now().Before(deadline) {
		x++
	}
	_ = x
}
