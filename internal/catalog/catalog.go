// Package catalog holds table metadata: columns, SQL types, primary keys,
// physical options (compression, clustering, FILESTREAM columns) and their
// persistence. It is the implementation of the paper's normalized
// relational schema design (Section 3.2) plus the physical design choices
// of Section 3.3.
package catalog

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"

	"repro/internal/seq"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// TypeName enumerates supported SQL scalar types.
type TypeName string

// Supported SQL types. SEQUENCE is the paper's proposed domain-specific
// genomic sequence UDT: it is queried as a string but stored 2-bit packed
// (Section 5.1.2: "a bit-encoding of the sequences could reduce the size
// to just about a quarter").
const (
	TypeInt       TypeName = "INT"
	TypeBigInt    TypeName = "BIGINT"
	TypeFloat     TypeName = "FLOAT"
	TypeBit       TypeName = "BIT"
	TypeVarchar   TypeName = "VARCHAR"
	TypeVarbinary TypeName = "VARBINARY"
	TypeGUID      TypeName = "UNIQUEIDENTIFIER"
	TypeSequence  TypeName = "SEQUENCE"
)

// ColumnType is a resolved SQL type.
type ColumnType struct {
	Name TypeName `json:"name"`
	// MaxLen bounds VARCHAR/VARBINARY lengths; 0 means MAX (unbounded).
	MaxLen int `json:"max_len,omitempty"`
	// FileStream marks VARBINARY(MAX) FILESTREAM columns whose value is a
	// blob GUID resolved through the blob store.
	FileStream bool `json:"filestream,omitempty"`
}

// Kind returns the runtime value kind queries see for this type.
func (t ColumnType) Kind() sqltypes.Kind {
	switch t.Name {
	case TypeInt, TypeBigInt:
		return sqltypes.KindInt
	case TypeFloat:
		return sqltypes.KindFloat
	case TypeBit:
		return sqltypes.KindBool
	case TypeVarchar, TypeGUID, TypeSequence:
		return sqltypes.KindString
	case TypeVarbinary:
		return sqltypes.KindBytes
	}
	return sqltypes.KindNull
}

// StorageKind returns the kind persisted in pages. SEQUENCE columns store
// packed bytes; everything else stores its query kind.
func (t ColumnType) StorageKind() sqltypes.Kind {
	if t.Name == TypeSequence {
		return sqltypes.KindBytes
	}
	return t.Kind()
}

// String renders the T-SQL spelling.
func (t ColumnType) String() string {
	s := string(t.Name)
	if (t.Name == TypeVarchar || t.Name == TypeVarbinary) && t.MaxLen > 0 {
		s += fmt.Sprintf("(%d)", t.MaxLen)
	} else if t.Name == TypeVarchar || t.Name == TypeVarbinary {
		s += "(MAX)"
	}
	if t.FileStream {
		s += " FILESTREAM"
	}
	return s
}

// Column is one table column.
type Column struct {
	Name    string     `json:"name"`
	Type    ColumnType `json:"type"`
	NotNull bool       `json:"not_null,omitempty"`
}

// Index is a secondary index over a heap table: a B+-tree keyed by the
// indexed column values with the heap row position as a key suffix.
type Index struct {
	Name    string `json:"name"`
	Columns []int  `json:"columns"` // column indexes, in key order
}

// Table is a table definition plus physical options.
type Table struct {
	ID          uint32              `json:"id"`
	Name        string              `json:"name"`
	Columns     []Column            `json:"columns"`
	PrimaryKey  []int               `json:"primary_key,omitempty"` // column indexes
	Clustered   bool                `json:"clustered,omitempty"`   // PK is a clustered B+-tree
	Compression storage.Compression `json:"compression,omitempty"`
	Indexes     []Index             `json:"indexes,omitempty"` // secondary (heap tables only)
}

// IndexByName returns the named secondary index (case-insensitive), or nil.
func (t *Table) IndexByName(name string) *Index {
	for i := range t.Indexes {
		if strings.EqualFold(t.Indexes[i].Name, name) {
			return &t.Indexes[i]
		}
	}
	return nil
}

// ColumnIndex returns the index of the named column (case-insensitive), or
// -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Kinds returns the query-level value kinds of all columns.
func (t *Table) Kinds() []sqltypes.Kind {
	out := make([]sqltypes.Kind, len(t.Columns))
	for i := range t.Columns {
		out[i] = t.Columns[i].Type.Kind()
	}
	return out
}

// StorageKinds returns the persisted kinds of all columns.
func (t *Table) StorageKinds() []sqltypes.Kind {
	out := make([]sqltypes.Kind, len(t.Columns))
	for i := range t.Columns {
		out[i] = t.Columns[i].Type.StorageKind()
	}
	return out
}

// StorageWidths returns fixed integer widths per column for the
// uncompressed row format: INT stores 4 bytes (as in SQL Server), BIGINT
// 8; non-integer columns report 0.
func (t *Table) StorageWidths() []uint8 {
	out := make([]uint8, len(t.Columns))
	for i := range t.Columns {
		switch t.Columns[i].Type.Name {
		case TypeInt:
			out[i] = 4
		case TypeBigInt:
			out[i] = 8
		}
	}
	return out
}

// HasSequenceColumns reports whether any column uses the SEQUENCE UDT.
func (t *Table) HasSequenceColumns() bool {
	for i := range t.Columns {
		if t.Columns[i].Type.Name == TypeSequence {
			return true
		}
	}
	return false
}

// ToStorageRow validates a query row against the schema and converts it to
// the persisted representation (packing SEQUENCE columns). The input row
// is not modified.
func (t *Table) ToStorageRow(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("catalog: %s expects %d columns, got %d", t.Name, len(t.Columns), len(row))
	}
	out := make(sqltypes.Row, len(row))
	for i, v := range row {
		col := &t.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("catalog: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			out[i] = sqltypes.Null
			continue
		}
		cv, err := coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: column %s.%s: %w", t.Name, col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// FromStorageRow converts a persisted row back to its query representation
// (unpacking SEQUENCE columns). The row is converted in place and returned.
func (t *Table) FromStorageRow(row sqltypes.Row) (sqltypes.Row, error) {
	for i := range row {
		if t.Columns[i].Type.Name != TypeSequence || row[i].IsNull() {
			continue
		}
		p, err := seq.Decode(row[i].B)
		if err != nil {
			return nil, fmt.Errorf("catalog: column %s.%s: %w", t.Name, t.Columns[i].Name, err)
		}
		row[i] = sqltypes.NewString(p.Unpack())
	}
	return row, nil
}

// coerce converts v to the declared type, enforcing length bounds.
func coerce(v sqltypes.Value, ct ColumnType) (sqltypes.Value, error) {
	switch ct.Name {
	case TypeInt, TypeBigInt:
		n, err := v.AsInt()
		if err != nil {
			return sqltypes.Null, err
		}
		if ct.Name == TypeInt && (n > math.MaxInt32 || n < math.MinInt32) {
			return sqltypes.Null, fmt.Errorf("value %d overflows INT (use BIGINT)", n)
		}
		return sqltypes.NewInt(n), nil
	case TypeFloat:
		f, err := v.AsFloat()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(f), nil
	case TypeBit:
		switch v.K {
		case sqltypes.KindBool:
			return v, nil
		case sqltypes.KindInt:
			return sqltypes.NewBool(v.I != 0), nil
		}
		return sqltypes.Null, fmt.Errorf("cannot convert %s to BIT", v.K)
	case TypeVarchar, TypeGUID:
		if v.K != sqltypes.KindString {
			v = sqltypes.NewString(v.AsString())
		}
		if ct.MaxLen > 0 && len(v.S) > ct.MaxLen {
			return sqltypes.Null, fmt.Errorf("value of length %d exceeds %s", len(v.S), ct)
		}
		return v, nil
	case TypeVarbinary:
		var b []byte
		switch v.K {
		case sqltypes.KindBytes:
			b = v.B
		case sqltypes.KindString:
			b = []byte(v.S)
		default:
			return sqltypes.Null, fmt.Errorf("cannot convert %s to VARBINARY", v.K)
		}
		if ct.MaxLen > 0 && len(b) > ct.MaxLen {
			return sqltypes.Null, fmt.Errorf("value of length %d exceeds %s", len(b), ct)
		}
		return sqltypes.NewBytes(b), nil
	case TypeSequence:
		if v.K != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("SEQUENCE requires a string value, got %s", v.K)
		}
		p, err := seq.Pack(v.S)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBytes(p.Encode()), nil
	}
	return sqltypes.Null, fmt.Errorf("unknown type %s", ct.Name)
}

// ParseType resolves a SQL type spelling ("VARCHAR(50)", "VARBINARY(MAX)",
// "INT", "SEQUENCE") into a ColumnType.
func ParseType(spec string) (ColumnType, error) {
	s := strings.ToUpper(strings.TrimSpace(spec))
	fileStream := false
	if strings.HasSuffix(s, " FILESTREAM") {
		fileStream = true
		s = strings.TrimSuffix(s, " FILESTREAM")
		s = strings.TrimSpace(s)
	}
	base, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return ColumnType{}, fmt.Errorf("catalog: malformed type %q", spec)
		}
		base, arg = s[:i], s[i+1:len(s)-1]
	}
	base = strings.TrimSpace(base)
	ct := ColumnType{FileStream: fileStream}
	switch base {
	case "INT", "INTEGER", "SMALLINT":
		ct.Name = TypeInt
	case "BIGINT":
		ct.Name = TypeBigInt
	case "FLOAT", "REAL", "DOUBLE":
		ct.Name = TypeFloat
	case "BIT":
		ct.Name = TypeBit
	case "VARCHAR", "NVARCHAR", "CHAR", "TEXT":
		ct.Name = TypeVarchar
	case "VARBINARY":
		ct.Name = TypeVarbinary
	case "UNIQUEIDENTIFIER":
		ct.Name = TypeGUID
	case "SEQUENCE":
		ct.Name = TypeSequence
	default:
		return ColumnType{}, fmt.Errorf("catalog: unknown type %q", spec)
	}
	if arg != "" && arg != "MAX" {
		var n int
		if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n <= 0 {
			return ColumnType{}, fmt.Errorf("catalog: bad type length in %q", spec)
		}
		ct.MaxLen = n
	}
	if ct.FileStream && ct.Name != TypeVarbinary {
		return ColumnType{}, fmt.Errorf("catalog: FILESTREAM requires VARBINARY(MAX), got %s", base)
	}
	return ct, nil
}

// Catalog is the set of table definitions, persisted as JSON.
type Catalog struct {
	mu     sync.RWMutex
	path   string
	tables map[string]*Table
	nextID uint32
}

// Open loads (or initializes) the catalog persisted at path.
func Open(path string) (*Catalog, error) {
	c := &Catalog{path: path, tables: map[string]*Table{}, nextID: 1}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var disk struct {
		NextID uint32   `json:"next_id"`
		Tables []*Table `json:"tables"`
	}
	if err := json.Unmarshal(data, &disk); err != nil {
		return nil, fmt.Errorf("catalog: parse %s: %w", path, err)
	}
	c.nextID = disk.NextID
	for _, t := range disk.Tables {
		c.tables[strings.ToLower(t.Name)] = t
	}
	return c, nil
}

// save persists atomically (tmp + rename).
func (c *Catalog) save() error {
	var disk struct {
		NextID uint32   `json:"next_id"`
		Tables []*Table `json:"tables"`
	}
	disk.NextID = c.nextID
	for _, t := range c.tables {
		disk.Tables = append(disk.Tables, t)
	}
	data, err := json.MarshalIndent(disk, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// Create registers a new table and persists the catalog.
func (c *Catalog) Create(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, col := range t.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: duplicate column %s in %s", col.Name, t.Name)
		}
		seen[lc] = true
	}
	for _, pk := range t.PrimaryKey {
		if pk < 0 || pk >= len(t.Columns) {
			return fmt.Errorf("catalog: primary key column index %d out of range", pk)
		}
	}
	if t.Clustered && len(t.PrimaryKey) == 0 {
		return fmt.Errorf("catalog: clustered table %s needs a primary key", t.Name)
	}
	t.ID = c.nextID
	c.nextID++
	c.tables[key] = t
	return c.save()
}

// Drop removes a table definition.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, key)
	return c.save()
}

// AddIndex records a secondary index on a table and persists the catalog.
// This is the commit point of an index build: once the catalog names the
// index, recovery keeps its file; before, the file is an orphan and is
// deleted at open.
func (c *Catalog) AddIndex(table string, idx Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", table)
	}
	if t.IndexByName(idx.Name) != nil {
		return fmt.Errorf("catalog: index %s already exists on %s", idx.Name, table)
	}
	if len(idx.Columns) == 0 {
		return fmt.Errorf("catalog: index %s has no columns", idx.Name)
	}
	for _, ci := range idx.Columns {
		if ci < 0 || ci >= len(t.Columns) {
			return fmt.Errorf("catalog: index %s column index %d out of range", idx.Name, ci)
		}
	}
	t.Indexes = append(t.Indexes, idx)
	return c.save()
}

// DropIndex removes a secondary index definition and persists the catalog.
func (c *Catalog) DropIndex(table, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", table)
	}
	for i := range t.Indexes {
		if strings.EqualFold(t.Indexes[i].Name, name) {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return c.save()
		}
	}
	return fmt.Errorf("catalog: index %s does not exist on %s", name, table)
}

// Get returns a table definition, or nil.
func (c *Catalog) Get(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[strings.ToLower(name)]
}

// ByID returns a table definition by id, or nil.
func (c *Catalog) ByID(id uint32) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// List returns all table names (sorted order not guaranteed).
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}
