package catalog

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func TestParseType(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"INT", "INT", true},
		{"int", "INT", true},
		{"BIGINT", "BIGINT", true},
		{"FLOAT", "FLOAT", true},
		{"BIT", "BIT", true},
		{"VARCHAR(50)", "VARCHAR(50)", true},
		{"VARCHAR(MAX)", "VARCHAR(MAX)", true},
		{"nvarchar(36)", "VARCHAR(36)", true},
		{"VARBINARY(MAX)", "VARBINARY(MAX)", true},
		{"VARBINARY(MAX) FILESTREAM", "VARBINARY(MAX) FILESTREAM", true},
		{"UNIQUEIDENTIFIER", "UNIQUEIDENTIFIER", true},
		{"SEQUENCE", "SEQUENCE", true},
		{"BLOB", "", false},
		{"VARCHAR(x)", "", false},
		{"VARCHAR(0)", "", false},
		{"INT FILESTREAM", "", false},
		{"VARCHAR(5", "", false},
	}
	for _, c := range cases {
		ct, err := ParseType(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseType(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && ct.String() != c.want {
			t.Errorf("ParseType(%q) = %s, want %s", c.in, ct, c.want)
		}
	}
}

func TestKinds(t *testing.T) {
	ct, _ := ParseType("SEQUENCE")
	if ct.Kind() != sqltypes.KindString {
		t.Error("SEQUENCE query kind should be STRING")
	}
	if ct.StorageKind() != sqltypes.KindBytes {
		t.Error("SEQUENCE storage kind should be BYTES")
	}
	it, _ := ParseType("INT")
	if it.Kind() != sqltypes.KindInt || it.StorageKind() != sqltypes.KindInt {
		t.Error("INT kinds wrong")
	}
}

func readTable() *Table {
	idT, _ := ParseType("BIGINT")
	strT, _ := ParseType("VARCHAR(100)")
	seqT, _ := ParseType("SEQUENCE")
	return &Table{
		Name: "Read",
		Columns: []Column{
			{Name: "r_id", Type: idT, NotNull: true},
			{Name: "short_read_seq", Type: seqT},
			{Name: "quals", Type: strT},
		},
		PrimaryKey:  []int{0},
		Clustered:   true,
		Compression: storage.CompressRow,
	}
}

func TestToFromStorageRow(t *testing.T) {
	tab := readTable()
	row := sqltypes.Row{
		sqltypes.NewInt(1),
		sqltypes.NewString("ACGTNACGT"),
		sqltypes.NewString("IIIIIIIII"),
	}
	st, err := tab.ToStorageRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if st[1].K != sqltypes.KindBytes {
		t.Fatalf("SEQUENCE column stored as %s", st[1].K)
	}
	if len(st[1].B) >= len("ACGTNACGT") {
		t.Errorf("packed sequence not smaller: %d bytes", len(st[1].B))
	}
	back, err := tab.FromStorageRow(st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if back[1].S != "ACGTNACGT" {
		t.Errorf("unpacked = %q", back[1].S)
	}
}

func TestToStorageRowValidation(t *testing.T) {
	tab := readTable()
	if _, err := tab.ToStorageRow(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tab.ToStorageRow(sqltypes.Row{sqltypes.Null, sqltypes.NewString("A"), sqltypes.Null}); err == nil {
		t.Error("NULL in NOT NULL column accepted")
	}
	// Coercion: string int into BIGINT works.
	st, err := tab.ToStorageRow(sqltypes.Row{sqltypes.NewString("42"), sqltypes.Null, sqltypes.Null})
	if err != nil {
		t.Fatal(err)
	}
	if st[0].I != 42 {
		t.Errorf("coerced id = %v", st[0])
	}
	// Bad sequence symbol rejected.
	if _, err := tab.ToStorageRow(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("ACGU"), sqltypes.Null}); err == nil {
		t.Error("invalid sequence accepted")
	}
	// VARCHAR(100) length bound.
	long := sqltypes.NewString(strings.Repeat("x", 200))
	if _, err := tab.ToStorageRow(sqltypes.Row{sqltypes.NewInt(1), sqltypes.Null, long}); err == nil {
		t.Error("over-length VARCHAR accepted")
	}
}

func TestCatalogCreateGetDropPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tab := readTable()
	if err := c.Create(tab); err != nil {
		t.Fatal(err)
	}
	if tab.ID == 0 {
		t.Error("table did not get an id")
	}
	if c.Get("READ") == nil || c.Get("read") == nil {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.Create(readTable()); err == nil {
		t.Error("duplicate table accepted")
	}

	// Reload from disk.
	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := c2.Get("Read")
	if got == nil {
		t.Fatal("table lost on reload")
	}
	if got.ID != tab.ID || len(got.Columns) != 3 || !got.Clustered {
		t.Errorf("reloaded table = %+v", got)
	}
	if got.Columns[1].Type.Name != TypeSequence {
		t.Error("SEQUENCE type lost on reload")
	}
	if c2.ByID(tab.ID) == nil {
		t.Error("ByID failed")
	}
	if err := c2.Drop("read"); err != nil {
		t.Fatal(err)
	}
	if c2.Get("Read") != nil {
		t.Error("table survived drop")
	}
	if err := c2.Drop("read"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestCatalogValidation(t *testing.T) {
	c, _ := Open(filepath.Join(t.TempDir(), "c.json"))
	intT, _ := ParseType("INT")
	if err := c.Create(&Table{Name: "t"}); err == nil {
		t.Error("empty table accepted")
	}
	if err := c.Create(&Table{Name: "t", Columns: []Column{
		{Name: "a", Type: intT}, {Name: "A", Type: intT},
	}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := c.Create(&Table{Name: "t", Columns: []Column{{Name: "a", Type: intT}},
		PrimaryKey: []int{5}}); err == nil {
		t.Error("out-of-range pk accepted")
	}
	if err := c.Create(&Table{Name: "t", Columns: []Column{{Name: "a", Type: intT}},
		Clustered: true}); err == nil {
		t.Error("clustered without pk accepted")
	}
}

func TestColumnIndex(t *testing.T) {
	tab := readTable()
	if tab.ColumnIndex("SHORT_READ_SEQ") != 1 {
		t.Error("case-insensitive column lookup failed")
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("missing column found")
	}
}

func TestFileStreamColumnRoundTrip(t *testing.T) {
	fsT, err := ParseType("VARBINARY(MAX) FILESTREAM")
	if err != nil {
		t.Fatal(err)
	}
	if !fsT.FileStream {
		t.Fatal("FileStream flag lost")
	}
	path := filepath.Join(t.TempDir(), "c.json")
	c, _ := Open(path)
	guidT, _ := ParseType("UNIQUEIDENTIFIER")
	intT, _ := ParseType("INT")
	err = c.Create(&Table{
		Name: "ShortReadFiles",
		Columns: []Column{
			{Name: "guid", Type: guidT, NotNull: true},
			{Name: "sample", Type: intT},
			{Name: "lane", Type: intT},
			{Name: "reads", Type: fsT},
		},
		PrimaryKey: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(path)
	got := c2.Get("ShortReadFiles")
	if !got.Columns[3].Type.FileStream {
		t.Error("FILESTREAM flag lost in persistence")
	}
}
