package gen

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func testGenome(t *testing.T) *Genome {
	t.Helper()
	return GenerateGenome(GenomeSpec{Chromosomes: 3, ChromLength: 10_000, Seed: 42})
}

func TestGenerateGenome(t *testing.T) {
	g := testGenome(t)
	if len(g.Chroms) != 3 {
		t.Fatalf("%d chromosomes", len(g.Chroms))
	}
	if g.TotalLength() != 30_000 {
		t.Errorf("total length %d", g.TotalLength())
	}
	for _, c := range g.Chroms {
		if !seq.IsValid(c.Seq) {
			t.Errorf("%s contains invalid symbols", c.Name)
		}
		gc := seq.GCContent(c.Seq)
		if gc < 0.35 || gc > 0.47 {
			t.Errorf("%s GC content %.3f outside human-like band", c.Name, gc)
		}
	}
	if g.Chrom("chr2") == nil {
		t.Error("Chrom(chr2) = nil")
	}
	if g.Chrom("chrX") != nil {
		t.Error("Chrom(chrX) != nil")
	}
}

func TestGenerateGenomeDeterministic(t *testing.T) {
	a := GenerateGenome(GenomeSpec{Chromosomes: 1, ChromLength: 1000, Seed: 7})
	b := GenerateGenome(GenomeSpec{Chromosomes: 1, ChromLength: 1000, Seed: 7})
	if a.Chroms[0].Seq != b.Chroms[0].Seq {
		t.Error("same seed, different genome")
	}
	c := GenerateGenome(GenomeSpec{Chromosomes: 1, ChromLength: 1000, Seed: 8})
	if a.Chroms[0].Seq == c.Chroms[0].Seq {
		t.Error("different seeds, same genome")
	}
}

func TestSampleFragmentsGroundTruth(t *testing.T) {
	g := testGenome(t)
	frags := SampleFragments(g, ResequencingSpec{Reads: 200, ReadLen: 36, Seed: 1})
	if len(frags) != 200 {
		t.Fatalf("%d fragments", len(frags))
	}
	for i, f := range frags {
		c := g.Chrom(f.Chrom)
		if c == nil {
			t.Fatalf("fragment %d on unknown chromosome %q", i, f.Chrom)
		}
		want := c.Seq[f.Pos : f.Pos+36]
		if f.Seq != want {
			t.Errorf("fragment %d seq does not match origin (no SNPs requested)", i)
		}
	}
}

func TestSampleFragmentsSNPs(t *testing.T) {
	g := testGenome(t)
	frags := SampleFragments(g, ResequencingSpec{Reads: 500, ReadLen: 36, Seed: 1, SNPRate: 0.01})
	mismatches := 0
	for _, f := range frags {
		c := g.Chrom(f.Chrom)
		mismatches += seq.Hamming(f.Seq, c.Seq[f.Pos:f.Pos+36])
	}
	// Expect ~0.01 * 500 * 36 = 180 mutations; allow wide tolerance.
	if mismatches < 60 || mismatches > 400 {
		t.Errorf("SNP count %d far from expectation ~180", mismatches)
	}
}

func TestSampleFragmentsBothStrands(t *testing.T) {
	g := testGenome(t)
	frags := SampleFragments(g, ResequencingSpec{Reads: 300, ReadLen: 36, Seed: 5, BothStrands: true})
	minus := 0
	for _, f := range frags {
		c := g.Chrom(f.Chrom)
		fwd := c.Seq[f.Pos : f.Pos+36]
		if f.Minus {
			minus++
			if f.Seq != seq.ReverseComplement(fwd) {
				t.Fatal("minus-strand fragment is not the reverse complement of its origin")
			}
		} else if f.Seq != fwd {
			t.Fatal("plus-strand fragment does not match origin")
		}
	}
	if minus < 100 || minus > 200 {
		t.Errorf("minus-strand fraction %d/300 not ~half", minus)
	}
}

func TestSampleFragmentsMostlyUnique(t *testing.T) {
	// The defining property of the 1000 Genomes workload (Section 5.1.2):
	// "almost all short reads are unique".
	g := GenerateGenome(GenomeSpec{Chromosomes: 2, ChromLength: 100_000, Seed: 3})
	frags := SampleFragments(g, ResequencingSpec{Reads: 2000, ReadLen: 36, Seed: 9})
	uniq := map[string]bool{}
	for _, f := range frags {
		uniq[f.Seq] = true
	}
	if float64(len(uniq)) < 0.95*float64(len(frags)) {
		t.Errorf("only %d/%d unique reads; want ~all unique", len(uniq), len(frags))
	}
}

func TestGenerateGenesAndTags(t *testing.T) {
	g := testGenome(t)
	genes := GenerateGenes(g, DGESpec{Genes: 50, TagLen: 21, ZipfS: 1.3, Seed: 2})
	if len(genes) != 50 {
		t.Fatalf("%d genes", len(genes))
	}
	for _, gene := range genes {
		tag := gene.Tag(g)
		if len(tag) != 21 {
			t.Errorf("%s tag length %d", gene.Name, len(tag))
		}
	}
	// Weights must be strictly decreasing (Zipf by rank).
	for i := 1; i < len(genes); i++ {
		if genes[i].Weight >= genes[i-1].Weight {
			t.Errorf("weights not decreasing at rank %d", i)
		}
	}
	templates, truth := SampleTags(g, genes, 5000, 4)
	if len(templates) != 5000 {
		t.Fatalf("%d templates", len(templates))
	}
	// The defining property of the DGE workload: tags repeat heavily.
	uniq := map[string]bool{}
	for _, tpl := range templates {
		uniq[tpl] = true
	}
	if len(uniq) > 60 {
		t.Errorf("%d unique tags from 50 genes; tags should repeat", len(uniq))
	}
	// Truth counts sum to the number of templates.
	sum := 0
	for _, c := range truth {
		sum += c
	}
	if sum != 5000 {
		t.Errorf("truth counts sum to %d", sum)
	}
	// Expression skew: the top gene should dominate.
	if truth[genes[0].Name] < truth[genes[len(genes)-1].Name] {
		t.Error("rank-1 gene not more expressed than last-rank gene")
	}
}

func TestMutateGenome(t *testing.T) {
	ref := GenerateGenome(GenomeSpec{Chromosomes: 2, ChromLength: 20_000, Seed: 4})
	ind, snps := MutateGenome(ref, 0.001, 5)
	if len(ind.Chroms) != 2 || ind.TotalLength() != ref.TotalLength() {
		t.Fatal("individual genome shape changed")
	}
	// Expect ~40 SNPs; allow wide tolerance.
	if len(snps) < 10 || len(snps) > 120 {
		t.Errorf("%d SNPs planted, expected ~40", len(snps))
	}
	// Every reported SNP is a real difference, and every difference is
	// reported.
	diffs := 0
	for i, c := range ref.Chroms {
		for p := range c.Seq {
			if c.Seq[p] != ind.Chroms[i].Seq[p] {
				diffs++
			}
		}
	}
	if diffs != len(snps) {
		t.Errorf("%d actual differences, %d reported", diffs, len(snps))
	}
	for _, s := range snps {
		c := ref.Chrom(s.Chrom)
		ic := ind.Chrom(s.Chrom)
		if c.Seq[s.Pos] != s.Ref || ic.Seq[s.Pos] != s.Alt {
			t.Fatalf("SNP record %+v does not match genomes", s)
		}
	}
	// Zero rate mutates nothing.
	same, none := MutateGenome(ref, 0, 5)
	if len(none) != 0 || same.Chroms[0].Seq != ref.Chroms[0].Seq {
		t.Error("zero-rate mutation changed the genome")
	}
}

func TestReadName1000G(t *testing.T) {
	name := ReadName1000G("IL4", 855, 1, 1, 954, 659, 12)
	if !strings.HasPrefix(name, "IL4_855:1:1:954:659") {
		t.Errorf("name = %q", name)
	}
}
