// Package gen generates the synthetic genomics workloads of the paper's two
// scenarios: re-sequencing for the 1000 Genomes Project (Section 2.1.1,
// mostly-unique reads sampled across a reference genome) and digital gene
// expression studies (Section 2.1.2, heavily repeating tags whose frequency
// reflects gene activity). All generation is deterministic in a seed so the
// benchmark tables are reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/seq"
)

// Chromosome is one reference sequence.
type Chromosome struct {
	Name string
	Seq  string
}

// Genome is a set of reference sequences — the role of the Human reference
// genome ("the 25 chromosomes", Section 5.1.2) in the paper's experiments.
type Genome struct {
	Chroms []Chromosome
}

// TotalLength is the summed chromosome length in base pairs.
func (g *Genome) TotalLength() int {
	n := 0
	for _, c := range g.Chroms {
		n += len(c.Seq)
	}
	return n
}

// Chrom returns the chromosome with the given name, or nil.
func (g *Genome) Chrom(name string) *Chromosome {
	for i := range g.Chroms {
		if g.Chroms[i].Name == name {
			return &g.Chroms[i]
		}
	}
	return nil
}

// GenomeSpec configures GenerateGenome.
type GenomeSpec struct {
	Chromosomes int     // number of chromosomes
	ChromLength int     // bases per chromosome
	GCContent   float64 // target G+C fraction, 0 means 0.41 (human-like)
	Seed        int64
}

// GenerateGenome produces a random reference genome. To keep alignment
// realistic a small fraction of each chromosome is duplicated segments
// (repeats), so some reads map ambiguously, as on real genomes.
func GenerateGenome(spec GenomeSpec) *Genome {
	gc := spec.GCContent
	if gc == 0 {
		gc = 0.41
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &Genome{}
	for c := 0; c < spec.Chromosomes; c++ {
		b := make([]byte, spec.ChromLength)
		for i := range b {
			r := rng.Float64()
			switch {
			case r < gc/2:
				b[i] = 'G'
			case r < gc:
				b[i] = 'C'
			case r < gc+(1-gc)/2:
				b[i] = 'A'
			default:
				b[i] = 'T'
			}
		}
		// Sprinkle a few repeated segments (~2% of the chromosome).
		if spec.ChromLength > 2000 {
			segLen := 500
			copies := spec.ChromLength / 50 / segLen
			for r := 0; r < copies; r++ {
				src := rng.Intn(spec.ChromLength - segLen)
				dst := rng.Intn(spec.ChromLength - segLen)
				copy(b[dst:dst+segLen], b[src:src+segLen])
			}
		}
		g.Chroms = append(g.Chroms, Chromosome{
			Name: fmt.Sprintf("chr%d", c+1),
			Seq:  string(b),
		})
	}
	return g
}

// FragmentOrigin records where a sampled template fragment came from, so
// tests can verify aligner output against ground truth.
type FragmentOrigin struct {
	Chrom string
	Pos   int  // 0-based position of the fragment on the forward strand
	Minus bool // true when the template is the reverse-complement strand
	Seq   string
}

// ResequencingSpec configures SampleFragments for the 1000 Genomes style
// workload: reads sampled uniformly across the genome ("individual genomes
// are sequenced with 40x coverage"); almost all resulting reads are unique.
type ResequencingSpec struct {
	Reads   int
	ReadLen int
	Seed    int64
	// SNPRate introduces individual variation against the reference: each
	// base of a sampled fragment is flipped with this probability, making
	// consensus/SNP calling meaningful. Typical human variation ~0.001.
	SNPRate float64
	// BothStrands samples the reverse complement half the time.
	BothStrands bool
}

// SampleFragments draws template fragments from the genome.
func SampleFragments(g *Genome, spec ResequencingSpec) []FragmentOrigin {
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]FragmentOrigin, 0, spec.Reads)
	type span struct {
		chrom string
		seq   string
	}
	var spans []span
	total := 0
	for _, c := range g.Chroms {
		if len(c.Seq) >= spec.ReadLen {
			spans = append(spans, span{c.Name, c.Seq})
			total += len(c.Seq) - spec.ReadLen + 1
		}
	}
	if total == 0 {
		return nil
	}
	for i := 0; i < spec.Reads; i++ {
		// Pick a chromosome weighted by its sampleable length.
		k := rng.Intn(total)
		var sp span
		for _, s := range spans {
			n := len(s.seq) - spec.ReadLen + 1
			if k < n {
				sp = s
				break
			}
			k -= n
		}
		pos := k
		frag := sp.seq[pos : pos+spec.ReadLen]
		if spec.SNPRate > 0 {
			frag = mutate(rng, frag, spec.SNPRate)
		}
		minus := spec.BothStrands && rng.Intn(2) == 1
		if minus {
			frag = seq.ReverseComplement(frag)
		}
		out = append(out, FragmentOrigin{Chrom: sp.chrom, Pos: pos, Minus: minus, Seq: frag})
	}
	return out
}

func mutate(rng *rand.Rand, s string, rate float64) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		if rng.Float64() < rate {
			if b == nil {
				b = []byte(s)
			}
			old := b[i]
			for {
				nb := seq.Alphabet[rng.Intn(4)]
				if nb != old {
					b[i] = nb
					break
				}
			}
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// PlantedSNP records one substitution introduced by MutateGenome.
type PlantedSNP struct {
	Chrom string
	Pos   int
	Ref   byte
	Alt   byte
}

// MutateGenome derives an individual genome from a reference by planting
// SNPs at the given per-base rate — the coherent individual variation a
// re-sequencing project recovers (as opposed to ResequencingSpec.SNPRate,
// which models independent per-read errors).
func MutateGenome(ref *Genome, rate float64, seed int64) (*Genome, []PlantedSNP) {
	rng := rand.New(rand.NewSource(seed))
	out := &Genome{}
	var snps []PlantedSNP
	for _, c := range ref.Chroms {
		b := []byte(c.Seq)
		for i := range b {
			if rng.Float64() >= rate {
				continue
			}
			old := b[i]
			if _, ok := seq.CodeOf(old); !ok {
				continue
			}
			for {
				nb := seq.Alphabet[rng.Intn(4)]
				if nb != old {
					b[i] = nb
					break
				}
			}
			snps = append(snps, PlantedSNP{Chrom: c.Name, Pos: i, Ref: old, Alt: b[i]})
		}
		out.Chroms = append(out.Chroms, Chromosome{Name: c.Name, Seq: string(b)})
	}
	return out, snps
}

// Gene is a transcribed region with a fixed tag site, the unit of a digital
// gene expression study. The tag is the fragment sequenced when this gene's
// mRNA is sampled, so its observed frequency measures the gene's activity.
type Gene struct {
	Name   string
	Chrom  string
	TagPos int // 0-based tag-site position on the chromosome
	TagLen int
	Weight float64 // relative expression level
}

// Tag returns the gene's tag sequence from the genome.
func (g *Gene) Tag(genome *Genome) string {
	c := genome.Chrom(g.Chrom)
	if c == nil || g.TagPos+g.TagLen > len(c.Seq) {
		return ""
	}
	return c.Seq[g.TagPos : g.TagPos+g.TagLen]
}

// DGESpec configures the digital gene expression workload.
type DGESpec struct {
	Genes  int
	TagLen int
	// ZipfS is the skew of the expression distribution; gene expression is
	// famously heavy-tailed ("only a fraction of the genome is active in a
	// cell and tags are repeating", Section 2.1.2). Must be > 1.
	ZipfS float64
	Seed  int64
}

// GenerateGenes places genes with Zipf-distributed expression weights on
// the genome. Gene i's weight is 1/rank^s, so a few genes dominate the
// sampled tags — this drives the strong page-compression results of
// Table 1.
func GenerateGenes(g *Genome, spec DGESpec) []Gene {
	if spec.ZipfS <= 1 {
		spec.ZipfS = 1.3
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	genes := make([]Gene, 0, spec.Genes)
	for i := 0; i < spec.Genes; i++ {
		c := g.Chroms[rng.Intn(len(g.Chroms))]
		if len(c.Seq) < spec.TagLen {
			continue
		}
		pos := rng.Intn(len(c.Seq) - spec.TagLen)
		genes = append(genes, Gene{
			Name:   fmt.Sprintf("GENE%04d", i+1),
			Chrom:  c.Name,
			TagPos: pos,
			TagLen: spec.TagLen,
			Weight: 1 / math.Pow(float64(i+1), spec.ZipfS),
		})
	}
	return genes
}

// SampleTags draws n tag templates according to gene expression weights and
// returns the templates plus the ground-truth per-gene counts.
func SampleTags(genome *Genome, genes []Gene, n int, seed int64) (templates []string, truth map[string]int) {
	rng := rand.New(rand.NewSource(seed))
	cum := make([]float64, len(genes))
	total := 0.0
	for i, g := range genes {
		total += g.Weight
		cum[i] = total
	}
	truth = make(map[string]int, len(genes))
	templates = make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		// Binary search the cumulative weights.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		g := genes[lo]
		tag := g.Tag(genome)
		if tag == "" {
			continue
		}
		templates = append(templates, tag)
		truth[g.Name]++
	}
	return templates, truth
}

// ReadName1000G builds paper-style composite textual identifiers
// ("the name of the sequencer machine with the flowcell id, the lane and
// tile numbers ... and the x and y coordinates", Section 5.1.1) for
// synthetic reads when the sequencer simulation is bypassed.
func ReadName1000G(machine string, run, flowcell, lane, tile, x, y int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s_%d:%d:%d:%d:%d:%d", machine, run, flowcell, lane, tile, x, y)
	return b.String()
}
