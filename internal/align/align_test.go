package align

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fastq"
	"repro/internal/gen"
)

func testReference(t *testing.T) (*gen.Genome, []Chrom) {
	t.Helper()
	g := gen.GenerateGenome(gen.GenomeSpec{Chromosomes: 2, ChromLength: 50_000, Seed: 17})
	chroms := make([]Chrom, len(g.Chroms))
	for i, c := range g.Chroms {
		chroms[i] = Chrom{Name: c.Name, Seq: c.Seq}
	}
	return g, chroms
}

func TestAlignExactReads(t *testing.T) {
	g, chroms := testReference(t)
	idx, err := BuildIndex(chroms, 20)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAligner(idx)
	frags := gen.SampleFragments(g, gen.ResequencingSpec{Reads: 300, ReadLen: 36, Seed: 5})
	correct := 0
	for i, f := range frags {
		rec := fastq.Record{
			Name: "r", Seq: f.Seq,
			Qual: strings.Repeat("I", len(f.Seq)),
		}
		out, ok := a.Align(rec)
		if !ok {
			continue
		}
		if out.RefName == f.Chrom && out.Pos == int64(f.Pos) {
			correct++
		} else if out.MapQ > 10 {
			// A confident wrong placement is a bug; low-MapQ wrong
			// placements can happen in the duplicated segments.
			t.Errorf("read %d confidently misplaced: got %s:%d q%d, want %s:%d",
				i, out.RefName, out.Pos, out.MapQ, f.Chrom, f.Pos)
		}
	}
	if correct < 280 {
		t.Errorf("only %d/300 exact reads placed correctly", correct)
	}
}

func TestAlignReverseStrand(t *testing.T) {
	g, chroms := testReference(t)
	idx, _ := BuildIndex(chroms, 20)
	a := NewAligner(idx)
	frags := gen.SampleFragments(g, gen.ResequencingSpec{Reads: 200, ReadLen: 36, Seed: 6, BothStrands: true})
	placed := 0
	for _, f := range frags {
		rec := fastq.Record{Name: "r", Seq: f.Seq, Qual: strings.Repeat("I", len(f.Seq))}
		out, ok := a.Align(rec)
		if !ok {
			continue
		}
		if out.RefName == f.Chrom && out.Pos == int64(f.Pos) {
			placed++
			wantStrand := byte('+')
			if f.Minus {
				wantStrand = '-'
			}
			if out.Strand != wantStrand {
				t.Fatalf("strand = %c, want %c", out.Strand, wantStrand)
			}
			if f.Minus {
				// Output is in reference orientation.
				c := g.Chrom(f.Chrom)
				if out.Seq != c.Seq[f.Pos:f.Pos+36] {
					t.Fatal("minus-strand alignment not in reference orientation")
				}
			}
		}
	}
	if placed < 180 {
		t.Errorf("placed %d/200 stranded reads", placed)
	}
}

func TestAlignWithMismatches(t *testing.T) {
	g, chroms := testReference(t)
	idx, _ := BuildIndex(chroms, 20)
	a := NewAligner(idx)
	c := g.Chroms[0]
	// Take a fragment and mutate position 30 (outside the seed).
	frag := []byte(c.Seq[1000:1036])
	orig := frag[30]
	for _, alt := range []byte("ACGT") {
		if alt != orig {
			frag[30] = alt
			break
		}
	}
	out, ok := a.Align(fastq.Record{Name: "m", Seq: string(frag), Qual: strings.Repeat("I", 36)})
	if !ok {
		t.Fatal("1-mismatch read did not align")
	}
	if out.Pos != 1000 || out.Mismatches != 1 {
		t.Errorf("got pos %d with %d mismatches", out.Pos, out.Mismatches)
	}
	// Three mismatches exceeds the default budget of 2.
	frag3 := []byte(c.Seq[2000:2036])
	for _, i := range []int{25, 30, 34} {
		if frag3[i] != 'A' {
			frag3[i] = 'A'
		} else {
			frag3[i] = 'C'
		}
	}
	if _, ok := a.Align(fastq.Record{Name: "x", Seq: string(frag3), Qual: strings.Repeat("I", 36)}); ok {
		t.Error("3-mismatch read aligned despite MaxMismatches=2")
	}
}

func TestAlignTailSeedRescuesHeadError(t *testing.T) {
	// An 'N' in the head seed hides the read from the head lookup; the
	// tail seed must rescue it, with the N counted as one mismatch.
	_, chroms := testReference(t)
	idx, _ := BuildIndex(chroms, 20)
	a := NewAligner(idx)
	read := "N" + chroms[0].Seq[100:135]
	out, ok := a.Align(fastq.Record{Name: "n", Seq: read, Qual: strings.Repeat("I", len(read))})
	if !ok {
		t.Fatal("tail seed did not rescue the read")
	}
	if out.Pos != 99 || out.Mismatches != 1 {
		t.Errorf("got pos %d with %d mismatches, want 99 with 1", out.Pos, out.Mismatches)
	}
	// A fully ambiguous read can never align.
	if _, ok := a.Align(fastq.Record{Name: "nn", Seq: strings.Repeat("N", 36), Qual: strings.Repeat("I", 36)}); ok {
		t.Error("all-N read aligned")
	}
}

func TestMapQualityRepeatsAreZero(t *testing.T) {
	// A read from inside a duplicated segment must get MapQ 0.
	chroms := []Chrom{{
		Name: "c",
		Seq:  strings.Repeat("ACGTTGCATTGCAGGACTGATCGGCTAAGCTGGCTA", 4), // 4 identical copies
	}}
	idx, _ := BuildIndex(chroms, 20)
	a := NewAligner(idx)
	read := chroms[0].Seq[0:36]
	out, ok := a.Align(fastq.Record{Name: "rep", Seq: read, Qual: strings.Repeat("I", 36)})
	if !ok {
		t.Fatal("repeat read did not align")
	}
	if out.MapQ != 0 {
		t.Errorf("repeat MapQ = %d, want 0", out.MapQ)
	}
}

func TestAlignAllParallelMatchesSerial(t *testing.T) {
	g, chroms := testReference(t)
	idx, _ := BuildIndex(chroms, 20)
	a := NewAligner(idx)
	frags := gen.SampleFragments(g, gen.ResequencingSpec{Reads: 500, ReadLen: 36, Seed: 8})
	reads := make([]fastq.Record, len(frags))
	for i, f := range frags {
		reads[i] = fastq.Record{Name: "r", Seq: f.Seq, Qual: strings.Repeat("I", 36)}
	}
	serial, st1 := a.AlignAll(reads, 1)
	parallel, st2 := a.AlignAll(reads, 4)
	if st1 != st2 || len(serial) != len(parallel) {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("alignment %d differs between serial and parallel", i)
		}
	}
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil, 40); err == nil {
		t.Error("seed length 40 accepted")
	}
	idx, err := BuildIndex([]Chrom{{Name: "tiny", Seq: "ACG"}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.seeds[0]; ok && len(idx.seeds) != 0 {
		t.Error("tiny chromosome indexed")
	}
}

func TestAlignFilesExternalToolMode(t *testing.T) {
	g, chroms := testReference(t)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fasta")
	readsPath := filepath.Join(dir, "reads.fastq")
	outPath := filepath.Join(dir, "alignments.txt")

	refF, _ := os.Create(refPath)
	w := fastq.NewFastaWriter(refF)
	for _, c := range chroms {
		w.Write(fastq.FastaRecord{Name: c.Name, Seq: c.Seq})
	}
	w.Flush()
	refF.Close()

	frags := gen.SampleFragments(g, gen.ResequencingSpec{Reads: 100, ReadLen: 36, Seed: 9})
	readsF, _ := os.Create(readsPath)
	fw := fastq.NewWriter(readsF)
	for i, f := range frags {
		fw.Write(fastq.Record{
			Name: gen.ReadName1000G("IL4", 855, 1, 1, 1, i, i),
			Seq:  f.Seq, Qual: strings.Repeat("I", 36),
		})
	}
	fw.Flush()
	readsF.Close()

	stats, err := AlignFiles(refPath, readsPath, outPath, 20, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aligned < 95 {
		t.Errorf("aligned %d/100", stats.Aligned)
	}
	outF, _ := os.Open(outPath)
	defer outF.Close()
	recs, err := fastq.ReadAllAlignments(outF)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != stats.Aligned {
		t.Errorf("file has %d records, stats say %d", len(recs), stats.Aligned)
	}
}
