// Package align implements the short-read aligner that stands in for MAQ
// in the paper's secondary data analysis (Section 2.1): a k-mer seed index
// over the reference genome with ungapped extension, quality-aware
// mismatch scoring and MAQ-style mapping qualities. It runs both as an
// "external tool" over FASTQ/FASTA files (the file-centric workflow) and
// in-process against engine data (the database-centric workflow).
package align

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fastq"
	"repro/internal/seq"
)

// Chrom is one reference sequence.
type Chrom struct {
	Name string
	Seq  string
}

// location is a position on the reference.
type location struct {
	chrom int32
	pos   int32
}

// Index is the seed index over a reference genome.
type Index struct {
	chroms  []Chrom
	seedLen int
	seeds   map[uint64][]location
}

// DefaultSeedLength matches MAQ's use of the first 28 bp as the seed; we
// default shorter so short synthetic reads still index well.
const DefaultSeedLength = 20

// BuildIndex indexes every seed-length substring of the reference.
func BuildIndex(chroms []Chrom, seedLen int) (*Index, error) {
	if seedLen <= 0 {
		seedLen = DefaultSeedLength
	}
	if seedLen > 31 {
		return nil, fmt.Errorf("align: seed length %d exceeds 31 (packed into uint64)", seedLen)
	}
	idx := &Index{chroms: chroms, seedLen: seedLen, seeds: make(map[uint64][]location)}
	for ci, c := range chroms {
		if len(c.Seq) < seedLen {
			continue
		}
		var h uint64
		valid := 0 // consecutive unambiguous bases ending at i
		mask := uint64(1)<<(2*uint(seedLen)) - 1
		for i := 0; i < len(c.Seq); i++ {
			code, ok := seq.CodeOf(c.Seq[i])
			if !ok {
				valid = 0
				h = 0
				continue
			}
			h = ((h << 2) | uint64(code)) & mask
			valid++
			if valid >= seedLen {
				start := i - seedLen + 1
				idx.seeds[h] = append(idx.seeds[h], location{chrom: int32(ci), pos: int32(start)})
			}
		}
	}
	return idx, nil
}

// SeedLength returns the index's seed length.
func (idx *Index) SeedLength() int { return idx.seedLen }

// Chroms returns the indexed reference sequences.
func (idx *Index) Chroms() []Chrom { return idx.chroms }

// packSeed packs the first seedLen bases; ok=false when ambiguous.
func packSeed(s string, seedLen int) (uint64, bool) {
	if len(s) < seedLen {
		return 0, false
	}
	var h uint64
	for i := 0; i < seedLen; i++ {
		code, ok := seq.CodeOf(s[i])
		if !ok {
			return 0, false
		}
		h = (h << 2) | uint64(code)
	}
	return h, true
}

// Aligner aligns reads against an Index.
type Aligner struct {
	Index *Index
	// MaxMismatches bounds accepted alignments (MAQ's default is 2).
	MaxMismatches int
}

// NewAligner returns an aligner with MAQ-like defaults.
func NewAligner(idx *Index) *Aligner {
	return &Aligner{Index: idx, MaxMismatches: 2}
}

// candidate is one scored alignment candidate.
type candidate struct {
	loc        location
	minus      bool
	mismatches int
	// qualSum is the summed Phred quality at mismatching positions — the
	// MAQ alignment score (lower is better).
	qualSum int
}

// Align maps one read. ok=false when the read has no acceptable hit.
// Reads are tried on both strands; for minus-strand hits the returned
// record holds the reverse-complemented sequence and reversed qualities,
// expressed in reference coordinates. Two seed positions (read head and
// tail) are probed per strand, so one sequencing error cannot hide a read
// from both seeds — the spaced-seed sensitivity trick of MAQ.
func (a *Aligner) Align(rec fastq.Record) (fastq.AlignmentRecord, bool) {
	best, second := candidate{mismatches: -1}, candidate{mismatches: -1}
	bestCount := 0
	seen := map[location]bool{}
	try := func(s, q string, offset int, minus bool) {
		if offset+a.Index.seedLen > len(s) {
			return
		}
		h, ok := packSeed(s[offset:], a.Index.seedLen)
		if !ok {
			return
		}
		for _, hit := range a.Index.seeds[h] {
			loc := location{chrom: hit.chrom, pos: hit.pos - int32(offset)}
			if loc.pos < 0 {
				continue
			}
			// Deduplicate candidates found by both seeds; strands are
			// distinguished by complementing the chromosome id.
			key := loc
			if minus {
				key.chrom = ^key.chrom
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			c, ok := a.extend(s, q, loc)
			if !ok {
				continue
			}
			c.minus = minus
			switch {
			case best.mismatches < 0 || less(c, best):
				if best.mismatches >= 0 {
					second = best
				}
				if best.mismatches >= 0 && c.qualSum == best.qualSum && c.mismatches == best.mismatches {
					bestCount++
				} else {
					bestCount = 1
				}
				best = c
			case second.mismatches < 0 || less(c, second):
				if c.qualSum == best.qualSum && c.mismatches == best.mismatches {
					bestCount++
				}
				second = c
			}
		}
	}
	rc := seq.ReverseComplement(rec.Seq)
	rq := reverseString(rec.Qual)
	for _, offset := range []int{0, len(rec.Seq) - a.Index.seedLen} {
		if offset < 0 {
			continue
		}
		try(rec.Seq, rec.Qual, offset, false)
		try(rc, rq, offset, true)
		if offset == 0 && len(rec.Seq) == a.Index.seedLen {
			break
		}
	}
	if best.mismatches < 0 {
		return fastq.AlignmentRecord{}, false
	}
	out := fastq.AlignmentRecord{
		ReadName:   rec.Name,
		RefName:    a.Index.chroms[best.loc.chrom].Name,
		Pos:        int64(best.loc.pos),
		Strand:     '+',
		Mismatches: best.mismatches,
		MapQ:       a.mapQuality(best, second, bestCount),
		Seq:        rec.Seq,
		Qual:       rec.Qual,
	}
	if best.minus {
		out.Strand = '-'
		out.Seq = rc
		out.Qual = rq
	}
	return out, true
}

func less(a, b candidate) bool {
	if a.mismatches != b.mismatches {
		return a.mismatches < b.mismatches
	}
	return a.qualSum < b.qualSum
}

// extend verifies the full read at a seed hit, counting mismatches.
func (a *Aligner) extend(s, q string, loc location) (candidate, bool) {
	ref := a.Index.chroms[loc.chrom].Seq
	start := int(loc.pos)
	if start+len(s) > len(ref) {
		return candidate{}, false
	}
	c := candidate{loc: loc}
	for i := 0; i < len(s); i++ {
		if s[i] != ref[start+i] {
			c.mismatches++
			if c.mismatches > a.MaxMismatches {
				return candidate{}, false
			}
			qv := 0
			if i < len(q) {
				qv = int(q[i]) - seq.PhredOffset
				if qv < 0 {
					qv = 0
				}
			}
			c.qualSum += qv
		}
	}
	return c, true
}

// mapQuality derives a MAQ-style mapping quality: high when the best hit
// is unique and clean, degraded by competing hits and by the quality mass
// of its mismatches.
func (a *Aligner) mapQuality(best, second candidate, bestCount int) int {
	if bestCount > 1 {
		return 0 // repeat region: placement is arbitrary
	}
	q := 60
	if second.mismatches >= 0 {
		gap := (second.mismatches - best.mismatches) * 10
		if d := second.qualSum - best.qualSum; d < gap*10 {
			gap += d / 10
		}
		if gap < q {
			q = gap
		}
	}
	q -= best.qualSum / 10
	if q < 0 {
		q = 0
	}
	return q
}

func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// Stats summarizes an alignment run.
type Stats struct {
	Reads     int
	Aligned   int
	Unaligned int
}

// AlignAll aligns a batch of reads across worker goroutines, preserving
// input order in the output (unaligned reads are skipped).
func (a *Aligner) AlignAll(reads []fastq.Record, workers int) ([]fastq.AlignmentRecord, Stats) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	type slot struct {
		rec fastq.AlignmentRecord
		ok  bool
	}
	slots := make([]slot, len(reads))
	var wg sync.WaitGroup
	chunk := (len(reads) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(reads) {
			break
		}
		hi := lo + chunk
		if hi > len(reads) {
			hi = len(reads)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rec, ok := a.Align(reads[i])
				slots[i] = slot{rec, ok}
			}
		}(lo, hi)
	}
	wg.Wait()
	out := make([]fastq.AlignmentRecord, 0, len(reads))
	st := Stats{Reads: len(reads)}
	for i := range slots {
		if slots[i].ok {
			out = append(out, slots[i].rec)
			st.Aligned++
		} else {
			st.Unaligned++
		}
	}
	return out, st
}
