package align

import (
	"fmt"
	"io"
	"os"

	"repro/internal/fastq"
)

// The file-mode entry points below make the aligner behave like the
// external tools of the paper's file-centric pipeline (MAQ and friends):
// FASTA reference in, FASTQ reads in, alignment text out. In the hybrid
// design the same paths point into the engine's FileStream store.

// LoadReferenceFasta reads a FASTA reference into alignment chromosomes.
func LoadReferenceFasta(r io.Reader) ([]Chrom, error) {
	recs, err := fastq.ReadAllFasta(r)
	if err != nil {
		return nil, err
	}
	out := make([]Chrom, len(recs))
	for i, rec := range recs {
		out[i] = Chrom{Name: rec.Name, Seq: rec.Seq}
	}
	return out, nil
}

// AlignFiles aligns readsPath (FASTQ) against refPath (FASTA), writing the
// alignment text format to outPath — one run of the "external tool".
func AlignFiles(refPath, readsPath, outPath string, seedLen, maxMismatches, workers int) (Stats, error) {
	refF, err := os.Open(refPath)
	if err != nil {
		return Stats{}, err
	}
	defer refF.Close()
	chroms, err := LoadReferenceFasta(refF)
	if err != nil {
		return Stats{}, err
	}
	idx, err := BuildIndex(chroms, seedLen)
	if err != nil {
		return Stats{}, err
	}
	a := NewAligner(idx)
	if maxMismatches > 0 {
		a.MaxMismatches = maxMismatches
	}

	readsF, err := os.Open(readsPath)
	if err != nil {
		return Stats{}, err
	}
	defer readsF.Close()
	reads, err := fastq.ReadAll(readsF)
	if err != nil {
		return Stats{}, err
	}
	alignments, stats := a.AlignAll(reads, workers)

	outF, err := os.Create(outPath)
	if err != nil {
		return Stats{}, err
	}
	if err := fastq.WriteAlignments(outF, alignments); err != nil {
		outF.Close()
		return Stats{}, err
	}
	if err := outF.Close(); err != nil {
		return Stats{}, err
	}
	if stats.Reads == 0 {
		return stats, fmt.Errorf("align: no reads in %s", readsPath)
	}
	return stats, nil
}
