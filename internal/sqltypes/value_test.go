package sqltypes

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndPredicates(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null not null")
	}
	if NewInt(5).IsNull() {
		t.Error("int is null")
	}
	if !NewBool(true).Bool() {
		t.Error("true is false")
	}
	if NewBool(false).Bool() {
		t.Error("false is true")
	}
	if NewInt(1).Bool() {
		t.Error("int Bool() should be false (not a bool kind)")
	}
}

func TestAsInt(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
		ok   bool
	}{
		{NewInt(42), 42, true},
		{NewFloat(3.9), 3, true},
		{NewBool(true), 1, true},
		{NewString("17"), 17, true},
		{NewString("x"), 0, false},
		{NewBytes([]byte("1")), 0, false},
		{Null, 0, false},
	}
	for _, c := range cases {
		got, err := c.v.AsInt()
		if (err == nil) != c.ok {
			t.Errorf("AsInt(%v) error = %v, ok = %v", c.v, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("AsInt(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, err := NewInt(2).AsFloat(); err != nil || f != 2 {
		t.Errorf("AsFloat(int 2) = %v, %v", f, err)
	}
	if f, err := NewString("2.5").AsFloat(); err != nil || f != 2.5 {
		t.Errorf("AsFloat(\"2.5\") = %v, %v", f, err)
	}
	if _, err := Null.AsFloat(); err == nil {
		t.Error("AsFloat(NULL) succeeded")
	}
}

func TestAsStringAndString(t *testing.T) {
	cases := []struct {
		v          Value
		as, String string
	}{
		{Null, "", "NULL"},
		{NewInt(-3), "-3", "-3"},
		{NewFloat(2.5), "2.5", "2.5"},
		{NewString("hi"), "hi", "hi"},
		{NewBytes([]byte{0xab}), "\xab", "0xab"},
		{NewBool(true), "1", "1"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.as {
			t.Errorf("AsString(%#v) = %q, want %q", c.v, got, c.as)
		}
		if got := c.v.String(); got != c.String {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.String)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewInt(999), NewString("0"), -1}, // numbers sort before strings
		{NewBytes([]byte{1}), NewBytes([]byte{2}), -1},
		{NewString("z"), NewBytes([]byte("a")), -1}, // strings before bytes
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(1), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewInt(7)},
		{NewInt(7), NewFloat(7)},
		{NewBool(true), NewInt(1)},
		{NewString("ab"), NewString("ab")},
		{NewBytes([]byte("ab")), NewBytes([]byte("ab"))},
		{Null, Null},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("Equal(%v, %v) = false", p[0], p[1])
			continue
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%v) != Hash(%v) but Equal", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Hash(NewInt(i))] = true
	}
	if len(seen) < 990 {
		t.Errorf("only %d distinct hashes over 1000 ints", len(seen))
	}
}

func TestCompareQuickProperties(t *testing.T) {
	// Transitivity-ish sanity: Compare is a total order over random ints
	// and strings.
	f := func(a, b int64) bool {
		c := Compare(NewInt(a), NewInt(b))
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		}
		return c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		c := Compare(NewString(a), NewString(b))
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		}
		return c == 0
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewBytes([]byte{1, 2})}
	c := r.Clone()
	c[0] = NewInt(9)
	c[1].B[0] = 99
	if r[0].I != 1 {
		t.Error("clone aliases scalar")
	}
	if r[1].B[0] != 1 {
		t.Error("clone aliases byte slice")
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("c")}
	if CompareRows(a, b) != -1 {
		t.Error("row compare by second column failed")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row self-compare != 0")
	}
	if CompareRows(a, Row{NewInt(1)}) != 1 {
		t.Error("longer row should sort after its prefix")
	}
	if CompareRows(Row{NewInt(1)}, a) != -1 {
		t.Error("prefix row should sort before")
	}
}

func TestHashRowConsistency(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewFloat(1), NewString("x")}
	if CompareRows(a, b) != 0 {
		t.Fatal("rows should compare equal")
	}
	if HashRow(a) != HashRow(b) {
		t.Error("equal rows hash differently")
	}
	if HashRow(a) == HashRow(Row{NewInt(2), NewString("x")}) {
		t.Error("different rows hash identically (likely collision bug)")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindBytes: "BYTES", KindBool: "BOOL",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}
