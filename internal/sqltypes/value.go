// Package sqltypes defines the runtime value model of the relational
// engine: the tagged Value union, rows, comparison/hash semantics, and the
// SQL scalar type descriptors shared by the catalog, storage and execution
// layers.
package sqltypes

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
)

// Kind enumerates runtime value kinds.
type Kind uint8

// Value kinds. KindBool values store 0/1 in the I field.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBytes
	KindBool
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBytes:
		return "BYTES"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is the engine's scalar. The zero Value is SQL NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B []byte
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{K: KindFloat, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewBytes returns a binary value.
func NewBytes(v []byte) Value { return Value{K: KindBytes, B: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the truth value of a KindBool value.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsInt coerces numeric values to int64.
func (v Value) AsInt() (int64, error) {
	switch v.K {
	case KindInt, KindBool:
		return v.I, nil
	case KindFloat:
		return int64(v.F), nil
	case KindString:
		n, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sqltypes: cannot convert %q to INT", v.S)
		}
		return n, nil
	}
	return 0, fmt.Errorf("sqltypes: cannot convert %s to INT", v.K)
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0, fmt.Errorf("sqltypes: cannot convert %q to FLOAT", v.S)
		}
		return f, nil
	}
	return 0, fmt.Errorf("sqltypes: cannot convert %s to FLOAT", v.K)
}

// AsString renders the value for string contexts (CONCAT etc.).
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBytes:
		return string(v.B)
	case KindBool:
		if v.I != 0 {
			return "1"
		}
		return "0"
	}
	return ""
}

// String implements fmt.Stringer for diagnostics and result rendering.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindString:
		return v.S
	case KindBytes:
		return fmt.Sprintf("0x%x", v.B)
	default:
		return v.AsString()
	}
}

// numericRank orders kinds for cross-kind comparison: NULL < numbers <
// strings < bytes, matching a pragmatic subset of SQL Server behaviour
// (booleans compare as their numeric value).
func numericRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat, KindBool:
		return 1
	case KindString:
		return 2
	case KindBytes:
		return 3
	}
	return 4
}

// Compare orders two values: -1, 0, +1. NULL sorts first (SQL Server ORDER
// BY default). Int and Float compare numerically with each other.
func Compare(a, b Value) int {
	ra, rb := numericRank(a.K), numericRank(b.K)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		if a.K == KindFloat || b.K == KindFloat {
			af, _ := a.AsFloat()
			bf, _ := b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case 2:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	default:
		return bytes.Compare(a.B, b.B)
	}
}

// Equal reports value equality under Compare semantics (NULL equals NULL
// here; predicate three-valued logic is handled by the expression layer).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a hash consistent with Equal: ints and floats holding the
// same numeric value hash identically.
func Hash(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.K {
	case KindNull:
		h.WriteByte(0)
	case KindInt, KindBool:
		h.WriteByte(1)
		writeUint64(&h, uint64(v.I))
	case KindFloat:
		h.WriteByte(1)
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			writeUint64(&h, uint64(int64(v.F)))
		} else {
			writeUint64(&h, math.Float64bits(v.F))
		}
	case KindString:
		h.WriteByte(2)
		h.WriteString(v.S)
	case KindBytes:
		h.WriteByte(3)
		h.Write(v.B)
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// Row is a tuple of values.
type Row []Value

// Clone deep-copies a row (the B slices are copied too).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i := range out {
		if out[i].K == KindBytes && out[i].B != nil {
			out[i].B = append([]byte(nil), out[i].B...)
		}
	}
	return out
}

// CompareRows orders rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// HashRow hashes a row consistently with CompareRows equality.
func HashRow(r Row) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range r {
		h ^= Hash(v)
		h *= 1099511628211
	}
	return h
}
