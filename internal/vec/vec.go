// Package vec defines the columnar batch representation of the
// vectorized executor: a Batch of ~1024 rows holds one Vector per
// column (typed arrays plus a null bitmap), and a selection vector of
// surviving row indexes that filters shrink instead of copying rows.
// Vectors may stay dictionary-encoded straight off a compressed page, so
// predicates compare small integer codes and dropped rows are never
// decompressed — the executor-side counterpart of the paper's page
// compression observations (Section 2.3.5 / 5.1.2).
package vec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/seq"
	"repro/internal/sqltypes"
)

// DefaultBatchSize is the target number of rows per batch: large enough
// to amortize per-batch dispatch, small enough that a batch's working
// set stays cache-resident.
const DefaultBatchSize = 1024

// Vector is one column of a batch in one of three physical encodings:
//
//   - typed flat: the kind-matched array (Ints, Floats, Strs, Byts)
//     holds one entry per row;
//   - dictionary: Codes holds one small integer per row indexing Dict
//     (run-length pages expand to codes on read — runs of equal codes);
//   - generic: Vals holds boxed values (the row-shim fallback for
//     streams whose column kinds are unknown).
//
// Nulls, when non-nil, marks NULL rows; their array entries are
// undefined. Packed marks a BYTES column (flat or dictionary) holding
// 2-bit packed sequences (seq.Packed wire format) whose query-level
// representation is the unpacked string; Value unpacks lazily, so rows
// dropped by a selection vector are never unpacked.
type Vector struct {
	Kind   sqltypes.Kind
	Nulls  []uint64 // bitmap, nil = no nulls
	Packed bool     // BYTES entries are packed sequences (query kind STRING)

	// Typed flat arrays (exactly one is populated for a flat vector).
	Ints   []int64 // INT and BOOL (0/1)
	Floats []float64
	Strs   []string
	Byts   [][]byte

	// Dictionary encoding: Codes[i] indexes Dict.
	Codes []int32
	Dict  []sqltypes.Value

	// Generic boxed fallback.
	Vals []sqltypes.Value

	// Lazy flat encoding: Imgs[i] is row i's encoded cell image (nil
	// under a null bit), decoded through DecodeImg on first access. A
	// scan hands out lazy vectors so columns never touched by the query
	// — and rows dropped by the selection vector — are never decoded.
	Imgs      [][]byte
	DecodeImg func(img []byte) (sqltypes.Value, error)
	Decodes   *atomic.Int64    // optional decoded-cell counter
	lazy      []sqltypes.Value // decode cache
}

// NewVector returns an empty flat vector of the given kind with capacity
// for n rows.
func NewVector(kind sqltypes.Kind, n int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case sqltypes.KindInt, sqltypes.KindBool:
		v.Ints = make([]int64, 0, n)
	case sqltypes.KindFloat:
		v.Floats = make([]float64, 0, n)
	case sqltypes.KindString:
		v.Strs = make([]string, 0, n)
	case sqltypes.KindBytes:
		v.Byts = make([][]byte, 0, n)
	default:
		v.Vals = make([]sqltypes.Value, 0, n)
	}
	return v
}

// NewGenericVector returns an empty boxed-value vector (used by the
// row-to-batch shim where column kinds are unknown).
func NewGenericVector(n int) *Vector {
	return &Vector{Kind: sqltypes.KindNull, Vals: make([]sqltypes.Value, 0, n)}
}

// Len returns the physical row count.
func (v *Vector) Len() int {
	switch {
	case v.Codes != nil:
		return len(v.Codes)
	case v.Imgs != nil:
		return len(v.Imgs)
	case v.Ints != nil:
		return len(v.Ints)
	case v.Floats != nil:
		return len(v.Floats)
	case v.Strs != nil:
		return len(v.Strs)
	case v.Byts != nil:
		return len(v.Byts)
	}
	return len(v.Vals)
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	w := i >> 6
	if w >= len(v.Nulls) {
		// The bitmap grows lazily to the last NULL row; rows past it are
		// non-null.
		return false
	}
	return v.Nulls[w]&(1<<uint(i&63)) != 0
}

// SetNull marks row i NULL, growing the bitmap to cover at least i+1
// rows.
func (v *Vector) SetNull(i int) {
	for len(v.Nulls) <= i>>6 {
		v.Nulls = append(v.Nulls, 0)
	}
	v.Nulls[i>>6] |= 1 << uint(i&63)
}

// Append adds one boxed value to a flat or generic vector.
func (v *Vector) Append(val sqltypes.Value) {
	i := v.Len()
	if val.IsNull() {
		v.SetNull(i)
		val = sqltypes.Value{} // zero entry under the null bit
	}
	switch {
	case v.Vals != nil || (v.Ints == nil && v.Floats == nil && v.Strs == nil && v.Byts == nil):
		v.Vals = append(v.Vals, val)
	case v.Ints != nil:
		v.Ints = append(v.Ints, val.I)
	case v.Floats != nil:
		v.Floats = append(v.Floats, val.F)
	case v.Strs != nil:
		v.Strs = append(v.Strs, val.S)
	case v.Byts != nil:
		v.Byts = append(v.Byts, val.B)
	}
}

// Value boxes row i into the query-level representation: dictionary
// codes resolve through the dictionary, and packed sequence bytes unpack
// to their textual form. Only rows reached through the selection vector
// are ever materialized, so filtered-out rows cost nothing here.
func (v *Vector) Value(i int) (sqltypes.Value, error) {
	if v.IsNull(i) {
		return sqltypes.Null, nil
	}
	var val sqltypes.Value
	switch {
	case v.Codes != nil:
		c := v.Codes[i]
		if int(c) >= len(v.Dict) {
			return sqltypes.Null, fmt.Errorf("vec: dictionary code %d out of range (%d entries)", c, len(v.Dict))
		}
		val = v.Dict[c]
	case v.Imgs != nil:
		if v.lazy == nil {
			v.lazy = make([]sqltypes.Value, len(v.Imgs))
		}
		if cached := v.lazy[i]; cached.K != sqltypes.KindNull {
			val = cached
		} else {
			var err error
			val, err = v.DecodeImg(v.Imgs[i])
			if err != nil {
				return sqltypes.Null, err
			}
			if v.Decodes != nil {
				v.Decodes.Add(1)
			}
			v.lazy[i] = val
		}
	case v.Ints != nil:
		if v.Kind == sqltypes.KindBool {
			return sqltypes.NewBool(v.Ints[i] != 0), nil
		}
		return sqltypes.NewInt(v.Ints[i]), nil
	case v.Floats != nil:
		return sqltypes.NewFloat(v.Floats[i]), nil
	case v.Strs != nil:
		return sqltypes.NewString(v.Strs[i]), nil
	case v.Byts != nil:
		val = sqltypes.NewBytes(v.Byts[i])
	default:
		val = v.Vals[i]
	}
	if v.Packed && val.K == sqltypes.KindBytes {
		return UnpackValue(val)
	}
	return val, nil
}

// Materialize converts a lazy vector to its typed flat form, decoding
// every non-null cell. Predicate kernels that want a typed array over
// all physical rows call this; projections and row reads go through
// Value and stay lazy.
func (v *Vector) Materialize() error {
	if v.Imgs == nil {
		return nil
	}
	nv := NewVector(v.Kind, len(v.Imgs))
	decoded := int64(0)
	for i, img := range v.Imgs {
		if v.IsNull(i) {
			nv.Append(sqltypes.Null)
			continue
		}
		val, err := v.DecodeImg(img)
		if err != nil {
			return err
		}
		nv.Append(val)
		decoded++
	}
	if v.Decodes != nil {
		v.Decodes.Add(decoded)
	}
	v.Ints, v.Floats, v.Strs, v.Byts, v.Vals = nv.Ints, nv.Floats, nv.Strs, nv.Byts, nv.Vals
	v.Imgs, v.DecodeImg, v.lazy = nil, nil, nil
	return nil
}

// UnpackValue converts a packed-sequence BYTES value to its query-level
// string form.
func UnpackValue(val sqltypes.Value) (sqltypes.Value, error) {
	p, err := seq.Decode(val.B)
	if err != nil {
		return sqltypes.Null, fmt.Errorf("vec: bad packed sequence: %w", err)
	}
	return sqltypes.NewString(p.Unpack()), nil
}

// Batch is a horizontal slice of a table in columnar form. Sel is the
// selection vector: the physical row indexes (ascending) still alive
// after filters and limits; operators iterate Sel, never 0..n. Base is
// the global row index of physical row 0 — the coordinate MVCC
// visibility ranges are expressed in.
type Batch struct {
	Cols []*Vector
	Sel  []int
	Base int64
}

// NewBatch returns a batch over the given columns with all rows
// selected.
func NewBatch(cols []*Vector, n int) *Batch {
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return &Batch{Cols: cols, Sel: sel}
}

// Len returns the number of selected rows.
func (b *Batch) Len() int { return len(b.Sel) }

// Rows returns the physical row count (selected or not).
func (b *Batch) Rows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// ReadRow materializes physical row i into dst (grown as needed),
// boxing only this row's cells.
func (b *Batch) ReadRow(i int, dst sqltypes.Row) (sqltypes.Row, error) {
	return b.ReadRowCols(i, dst, nil)
}

// ReadRowCols is ReadRow restricted to the columns marked in needed
// (nil = all): unneeded cells are set to NULL without decoding, so a
// pruned consumer never pays for columns it will not read.
func (b *Batch) ReadRowCols(i int, dst sqltypes.Row, needed []bool) (sqltypes.Row, error) {
	if cap(dst) < len(b.Cols) {
		dst = make(sqltypes.Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for c, col := range b.Cols {
		if needed != nil && (c >= len(needed) || !needed[c]) {
			dst[c] = sqltypes.Null
			continue
		}
		v, err := col.Value(i)
		if err != nil {
			return nil, err
		}
		dst[c] = v
	}
	return dst, nil
}
