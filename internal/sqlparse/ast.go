package sqlparse

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE with the paper's physical options.
type CreateTable struct {
	Name        string
	Cols        []ColDef
	PK          []string // from a table-level PRIMARY KEY (...) clause or column flags
	Clustered   bool
	Compression string // "", "ROW", "PAGE" (DATA_COMPRESSION option)
	FileGroup   string // FILESTREAM_ON target (recorded, informational)
}

func (*CreateTable) stmt() {}

// ColDef is one column definition.
type ColDef struct {
	Name        string
	Type        string // raw type spelling, resolved by the catalog
	NotNull     bool
	PK          bool // inline PRIMARY KEY
	PKClustered bool // inline PRIMARY KEY CLUSTERED
	RowGUID     bool // ROWGUIDCOL, informational
}

// DropTable is DROP TABLE.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

// CreateIndex is CREATE INDEX name ON table(col[, ...]): a secondary
// index over heap columns, built bottom-up and maintained by inserts.
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
}

func (*CreateIndex) stmt() {}

// DropIndex is DROP INDEX name ON table.
type DropIndex struct {
	Name  string
	Table string
}

func (*DropIndex) stmt() {}

// Insert is INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type Insert struct {
	Table string
	Cols  []string // optional explicit column list
	Rows  [][]Expr // VALUES form
	Query *Select  // SELECT form
}

func (*Insert) stmt() {}

// Select is a SELECT query.
type Select struct {
	Top     int64 // -1 when absent
	Items   []SelectItem
	From    TableRef // nil for FROM-less selects
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
}

func (*Select) stmt() {}

// SelectItem is one projection.
type SelectItem struct {
	Star      bool
	Qualifier string // t.* qualifier
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface{ tableRef() }

// NamedTable references a base table.
type NamedTable struct{ Name, Alias string }

func (*NamedTable) tableRef() {}

// SubqueryRef is a derived table.
type SubqueryRef struct {
	Query *Select
	Alias string
}

func (*SubqueryRef) tableRef() {}

// FuncRef is a table-valued function source.
type FuncRef struct {
	Name  string
	Args  []Expr
	Alias string
}

func (*FuncRef) tableRef() {}

// JoinRef is an INNER JOIN with an ON condition.
type JoinRef struct {
	Left, Right TableRef
	On          Expr
}

func (*JoinRef) tableRef() {}

// ApplyRef is CROSS APPLY of a table-valued function whose arguments may
// reference the outer row (Query 3's PivotAlignment).
type ApplyRef struct {
	Left TableRef
	Fn   *FuncRef
}

func (*ApplyRef) tableRef() {}

// BeginTxn, CommitTxn, RollbackTxn, Checkpoint are transaction control.
type BeginTxn struct{}

func (*BeginTxn) stmt() {}

// CommitTxn commits the open transaction.
type CommitTxn struct{}

func (*CommitTxn) stmt() {}

// RollbackTxn aborts the open transaction.
type RollbackTxn struct{}

func (*RollbackTxn) stmt() {}

// Checkpoint forces a storage checkpoint (CHECKPOINT statement).
type Checkpoint struct{}

func (*Checkpoint) stmt() {}

// Explain wraps a statement to print its plan instead of running it.
// With Analyze set (EXPLAIN ANALYZE), the statement is executed and the
// plan is rendered with per-operator actual row counts, timings and
// spill/Bloom/buffer-pool detail.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

// Analyze is ANALYZE [TABLE t]: collect planner statistics for one table,
// or for every table when Table is empty.
type Analyze struct{ Table string }

func (*Analyze) stmt() {}

// --- Expressions ---

// Expr is a parsed scalar expression.
type Expr interface{ expr() }

// NumberLit is an integer or float literal.
type NumberLit struct {
	IsFloat bool
	I       int64
	F       float64
}

func (*NumberLit) expr() {}

// StringLit is a string literal.
type StringLit struct{ S string }

func (*StringLit) expr() {}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) expr() {}

// Ident is a possibly-qualified column reference.
type Ident struct{ Qualifier, Name string }

func (*Ident) expr() {}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-" or "NOT"
	X  Expr
}

func (*Unary) expr() {}

// Binary covers arithmetic, comparison, AND and OR.
type Binary struct {
	Op   string // + - * / % = <> < <= > >= AND OR
	L, R Expr
}

func (*Binary) expr() {}

// FuncCall is a scalar function or aggregate invocation; Star marks
// COUNT(*); Over marks window functions.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
	Over *OverClause
}

func (*FuncCall) expr() {}

// OverClause is the OVER (ORDER BY ...) of a window function.
type OverClause struct{ OrderBy []OrderItem }

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// LikeExpr is x [NOT] LIKE 'pattern'.
type LikeExpr struct {
	X       Expr
	Pattern string
	Not     bool
}

func (*LikeExpr) expr() {}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*InExpr) expr() {}
