package sqlparse

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseCreateTablePaperExample(t *testing.T) {
	// The ShortReadFiles DDL from Section 3.3 (modulo the paper's own
	// typo FILSTREAMGROUP).
	src := `CREATE TABLE ShortReadFiles (
	    guid   uniqueidentifier ROWGUIDCOL PRIMARY KEY,
	    sample INT,
	    lane   INT,
	    reads  VARBINARY(MAX) FILESTREAM
	) FILESTREAM_ON FileStreamGroup`
	ct := parseOne(t, src).(*CreateTable)
	if ct.Name != "ShortReadFiles" || len(ct.Cols) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Cols[0].RowGUID || !ct.Cols[0].PK {
		t.Error("guid column flags lost")
	}
	if len(ct.PK) != 1 || ct.PK[0] != "guid" {
		t.Errorf("PK = %v", ct.PK)
	}
	if ct.Cols[3].Type != "VARBINARY(MAX) FILESTREAM" {
		t.Errorf("reads type = %q", ct.Cols[3].Type)
	}
	if ct.FileGroup != "FileStreamGroup" {
		t.Errorf("filegroup = %q", ct.FileGroup)
	}
}

func TestParseCreateTableCompression(t *testing.T) {
	src := `CREATE TABLE T1 (c1 int, c2 nvarchar(50)) WITH (DATA_COMPRESSION = ROW)`
	ct := parseOne(t, src).(*CreateTable)
	if ct.Compression != "ROW" {
		t.Errorf("compression = %q", ct.Compression)
	}
	src2 := `CREATE TABLE T2 (c1 int, c2 nvarchar(50)) WITH (DATA_COMPRESSION = PAGE)`
	if ct2 := parseOne(t, src2).(*CreateTable); ct2.Compression != "PAGE" {
		t.Errorf("compression = %q", ct2.Compression)
	}
}

func TestParseCreateTableCompositePK(t *testing.T) {
	src := `CREATE TABLE Alignment (
	    a_id BIGINT NOT NULL, a_g_id INT, a_pos BIGINT,
	    PRIMARY KEY CLUSTERED (a_g_id, a_pos, a_id)
	)`
	ct := parseOne(t, src).(*CreateTable)
	if !ct.Clustered || len(ct.PK) != 3 {
		t.Fatalf("%+v", ct)
	}
	if !ct.Cols[0].NotNull {
		t.Error("NOT NULL lost")
	}
}

func TestParseQuery1FromPaper(t *testing.T) {
	src := `SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC),
	       COUNT(*), short_read_seq
	  FROM [Read]
	 WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1
	       AND CHARINDEX('N', short_read_seq)=0
	 GROUP BY short_read_seq`
	sel := parseOne(t, src).(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("%d select items", len(sel.Items))
	}
	rn, ok := sel.Items[0].Expr.(*FuncCall)
	if !ok || !strings.EqualFold(rn.Name, "row_number") || rn.Over == nil {
		t.Fatalf("item 0 = %+v", sel.Items[0].Expr)
	}
	if len(rn.Over.OrderBy) != 1 || !rn.Over.OrderBy[0].Desc {
		t.Error("OVER (ORDER BY ... DESC) lost")
	}
	if _, ok := rn.Over.OrderBy[0].Expr.(*FuncCall); !ok {
		t.Error("window order expr should be COUNT(*)")
	}
	nt, ok := sel.From.(*NamedTable)
	if !ok || nt.Name != "Read" {
		t.Errorf("FROM = %+v", sel.From)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 {
		t.Error("WHERE/GROUP BY lost")
	}
}

func TestParseQuery2FromPaper(t *testing.T) {
	src := `INSERT INTO GeneExpression
	  SELECT a_g_id, a_e_id, a_sg_id, a_s_id,
	         SUM(t_frequency), COUNT(a_t_id)
	    FROM Alignment JOIN Tag ON (a_t_id = t_id)
	   WHERE a_e_id=1 AND a_sg_id=1 AND a_s_id=1
	   GROUP BY a_g_id, a_e_id, a_sg_id, a_s_id`
	ins := parseOne(t, src).(*Insert)
	if ins.Table != "GeneExpression" || ins.Query == nil {
		t.Fatalf("%+v", ins)
	}
	join, ok := ins.Query.From.(*JoinRef)
	if !ok {
		t.Fatalf("FROM = %+v", ins.Query.From)
	}
	if _, ok := join.On.(*Binary); !ok {
		t.Error("ON condition lost")
	}
	if len(ins.Query.GroupBy) != 4 {
		t.Errorf("GROUP BY arity = %d", len(ins.Query.GroupBy))
	}
}

func TestParseQuery3CrossApply(t *testing.T) {
	src := `SELECT chromosome, AssembleSequence(pos, b)
	  FROM (SELECT chromosome, pos, CallBase(base, qual) b
	          FROM Alignments JOIN [Read] ON (a_r_id = r_id)
	          CROSS APPLY PivotAlignment(pos, seq, quals) AS pa
	         WHERE a_e_id = 1
	         GROUP BY chromosome, pos) t
	 GROUP BY chromosome`
	sel := parseOne(t, src).(*Select)
	sub, ok := sel.From.(*SubqueryRef)
	if !ok || sub.Alias != "t" {
		t.Fatalf("FROM = %+v", sel.From)
	}
	apply, ok := sub.Query.From.(*ApplyRef)
	if !ok {
		t.Fatalf("inner FROM = %+v", sub.Query.From)
	}
	if apply.Fn.Name != "PivotAlignment" || len(apply.Fn.Args) != 3 {
		t.Errorf("apply fn = %+v", apply.Fn)
	}
	if _, ok := apply.Left.(*JoinRef); !ok {
		t.Error("apply left should be a join")
	}
}

func TestParseTVFInFrom(t *testing.T) {
	src := `SELECT * FROM ListShortReads(855, 1, 'FastQ')`
	sel := parseOne(t, src).(*Select)
	fn, ok := sel.From.(*FuncRef)
	if !ok || fn.Name != "ListShortReads" || len(fn.Args) != 3 {
		t.Fatalf("FROM = %+v", sel.From)
	}
	if !sel.Items[0].Star {
		t.Error("star lost")
	}
}

func TestParseInsertValues(t *testing.T) {
	src := `INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)`
	ins := parseOne(t, src).(*Insert)
	if len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if _, ok := ins.Rows[1][1].(*NullLit); !ok {
		t.Error("NULL literal lost")
	}
}

func TestParseSelectFeatures(t *testing.T) {
	src := `SELECT TOP 10 t.a AS x, u.*, COUNT(b), 2.5 * -c
	  FROM t JOIN u ON t.id = u.id
	 WHERE a LIKE 'chr%' OR b IS NOT NULL AND NOT c = 3
	 GROUP BY a HAVING COUNT(*) > 5
	 ORDER BY x DESC, a ASC`
	sel := parseOne(t, src).(*Select)
	if sel.Top != 10 {
		t.Errorf("TOP = %d", sel.Top)
	}
	if len(sel.Items) != 4 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[0].Alias != "x" {
		t.Error("alias lost")
	}
	if !sel.Items[1].Star || sel.Items[1].Qualifier != "u" {
		t.Error("qualified star lost")
	}
	if sel.Having == nil {
		t.Error("HAVING lost")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("ORDER BY = %+v", sel.OrderBy)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseOne(t, `SELECT 1 + 2 * 3`).(*Select)
	add := sel.Items[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Error("* should bind tighter than +")
	}
	sel2 := parseOne(t, `SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`).(*Select)
	or := sel2.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top logical = %s", or.Op)
	}
	if and, ok := or.R.(*Binary); !ok || and.Op != "AND" {
		t.Error("AND should bind tighter than OR")
	}
}

func TestParseTransactionStatements(t *testing.T) {
	if _, ok := parseOne(t, "BEGIN TRANSACTION").(*BeginTxn); !ok {
		t.Error("BEGIN TRANSACTION")
	}
	if _, ok := parseOne(t, "BEGIN TRAN").(*BeginTxn); !ok {
		t.Error("BEGIN TRAN")
	}
	if _, ok := parseOne(t, "COMMIT").(*CommitTxn); !ok {
		t.Error("COMMIT")
	}
	if _, ok := parseOne(t, "ROLLBACK").(*RollbackTxn); !ok {
		t.Error("ROLLBACK")
	}
	if _, ok := parseOne(t, "CHECKPOINT").(*Checkpoint); !ok {
		t.Error("CHECKPOINT")
	}
	if _, ok := parseOne(t, "DROP TABLE t").(*DropTable); !ok {
		t.Error("DROP TABLE")
	}
}

func TestParseExplain(t *testing.T) {
	ex := parseOne(t, "EXPLAIN SELECT * FROM t").(*Explain)
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Error("EXPLAIN payload lost")
	}
	if ex.Analyze {
		t.Error("plain EXPLAIN flagged as ANALYZE")
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	ex := parseOne(t, "EXPLAIN ANALYZE SELECT * FROM t").(*Explain)
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Error("EXPLAIN ANALYZE payload lost")
	}
	if !ex.Analyze {
		t.Error("ANALYZE modifier not set")
	}

	// EXPLAIN ANALYZE [TABLE t] still means "explain the ANALYZE
	// statement" when no query follows.
	ex = parseOne(t, "EXPLAIN ANALYZE TABLE Reads").(*Explain)
	if ex.Analyze {
		t.Error("EXPLAIN ANALYZE TABLE consumed the modifier")
	}
	if a, ok := ex.Stmt.(*Analyze); !ok || a.Table != "Reads" {
		t.Errorf("payload = %#v", ex.Stmt)
	}
	ex = parseOne(t, "EXPLAIN ANALYZE").(*Explain)
	if ex.Analyze {
		t.Error("bare EXPLAIN ANALYZE consumed the modifier")
	}
	if _, ok := ex.Stmt.(*Analyze); !ok {
		t.Errorf("payload = %#v", ex.Stmt)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
	  CREATE TABLE t (a INT);
	  INSERT INTO t VALUES (1);
	  -- a comment
	  SELECT * FROM t; /* block comment */
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("%d statements", len(stmts))
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := parseOne(t, `SELECT 'it''s a FASTQ'`).(*Select)
	s := sel.Items[0].Expr.(*StringLit)
	if s.S != "it's a FASTQ" {
		t.Errorf("string = %q", s.S)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"CREATE TABLE t",
		"CREATE TABLE t (a )",
		"INSERT INTO t",
		"SELECT 'unterminated",
		"SELECT [unterminated",
		"SELECT * FROM t GROUP a",
		"FROBNICATE",
		"SELECT a FROM t; garbage",
		"CREATE TABLE t (a INT) WITH (DATA_COMPRESSION = LZ4)",
	}
	for _, src := range bad {
		if _, err := ParseAll(src); err == nil {
			// Empty scripts parse to zero statements - that case is fine.
			if src == "" {
				continue
			}
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseQualifiedIdent(t *testing.T) {
	sel := parseOne(t, "SELECT t.a FROM t").(*Select)
	id := sel.Items[0].Expr.(*Ident)
	if id.Qualifier != "t" || id.Name != "a" {
		t.Errorf("ident = %+v", id)
	}
}

func TestParseAnalyze(t *testing.T) {
	stmt, err := Parse("ANALYZE")
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := stmt.(*Analyze); !ok || a.Table != "" {
		t.Fatalf("ANALYZE parsed as %#v", stmt)
	}
	stmt, err = Parse("ANALYZE TABLE Reads")
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := stmt.(*Analyze); !ok || a.Table != "Reads" {
		t.Fatalf("ANALYZE TABLE parsed as %#v", stmt)
	}
	stmt, err = Parse("analyze alignments;")
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := stmt.(*Analyze); !ok || a.Table != "alignments" {
		t.Fatalf("analyze t parsed as %#v", stmt)
	}
	// Scripts mix ANALYZE with other statements.
	stmts, err := ParseAll("ANALYZE; SELECT 1")
	if err != nil || len(stmts) != 2 {
		t.Fatalf("script parse: %v (%d stmts)", err, len(stmts))
	}
	// ANALYZE TABLE without a name is a syntax error, not analyze-all.
	if _, err := Parse("ANALYZE TABLE"); err == nil {
		t.Error("ANALYZE TABLE without a name parsed")
	}
	if _, err := Parse("ANALYZE TABLE; SELECT 1"); err == nil {
		t.Error("ANALYZE TABLE; parsed")
	}
}

func TestParseIn(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(*Select).Where
	in, ok := where.(*InExpr)
	if !ok || in.Not || len(in.List) != 3 {
		t.Fatalf("IN parsed as %#v", where)
	}
	if id, ok := in.X.(*Ident); !ok || id.Name != "a" {
		t.Fatalf("IN subject parsed as %#v", in.X)
	}

	stmt, err = Parse("SELECT a FROM t WHERE t.a NOT IN ('x', 'y')")
	if err != nil {
		t.Fatal(err)
	}
	in, ok = stmt.(*Select).Where.(*InExpr)
	if !ok || !in.Not || len(in.List) != 2 {
		t.Fatalf("NOT IN parsed as %#v", stmt.(*Select).Where)
	}

	// IN composes with AND/OR as a comparison-level operator.
	stmt, err = Parse("SELECT a FROM t WHERE a IN (1) AND b > 2")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := stmt.(*Select).Where.(*Binary); !ok || b.Op != "AND" {
		t.Fatalf("IN AND cmp parsed as %#v", stmt.(*Select).Where)
	}

	// Errors: empty list, missing parens.
	if _, err := Parse("SELECT a FROM t WHERE a IN ()"); err == nil {
		t.Error("empty IN list parsed")
	}
	if _, err := Parse("SELECT a FROM t WHERE a IN 1, 2"); err == nil {
		t.Error("IN without parens parsed")
	}
}

func TestParseScriptSpans(t *testing.T) {
	src := "  CREATE TABLE t (a BIGINT); \n\n SELECT a\n FROM t ;; INSERT INTO t VALUES (1)"
	spans, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d statements", len(spans))
	}
	want := []string{"CREATE TABLE t (a BIGINT)", "SELECT a\n FROM t", "INSERT INTO t VALUES (1)"}
	for i, w := range want {
		if spans[i].SQL != w {
			t.Errorf("span %d = %q, want %q", i, spans[i].SQL, w)
		}
	}
	if _, ok := spans[1].Stmt.(*Select); !ok {
		t.Errorf("span 1 stmt = %T", spans[1].Stmt)
	}
}
