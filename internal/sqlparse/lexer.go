// Package sqlparse implements the lexer and recursive-descent parser for
// the engine's T-SQL dialect: CREATE TABLE with compression and FILESTREAM
// options, INSERT ... VALUES/SELECT, SELECT with JOIN / CROSS APPLY /
// GROUP BY / ORDER BY / TOP, window functions (ROW_NUMBER() OVER), and the
// transaction statements. It covers every statement in the paper.
package sqlparse

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct
)

type token struct {
	kind tokenKind
	text string // identifiers are unquoted; strings are unescaped
	pos  int
}

// lexer produces tokens from SQL text.
type lexer struct {
	src string
	pos int
}

// Error is a parse error with position context.
type Error struct {
	Pos     int
	Msg     string
	Context string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s at position %d near %q", e.Msg, e.Pos, e.Context)
}

func (l *lexer) errorf(pos int, format string, args ...interface{}) error {
	end := pos + 20
	if end > len(l.src) {
		end = len(l.src)
	}
	start := pos
	if start > len(l.src) {
		start = len(l.src)
	}
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Context: l.src[start:end]}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
			continue
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errorf(l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tkIdent, text: l.src[start:l.pos], pos: start}, nil
	case c == '[':
		// Bracket-quoted identifier, e.g. [Read] in the paper's Query 1.
		end := strings.IndexByte(l.src[l.pos:], ']')
		if end < 0 {
			return token{}, l.errorf(start, "unterminated [identifier]")
		}
		text := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		if text == "" {
			return token{}, l.errorf(start, "empty [identifier]")
		}
		return token{kind: tkIdent, text: text, pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return token{kind: tkNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		var sb strings.Builder
		l.pos++
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tkString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, l.errorf(start, "unterminated string literal")
	default:
		// Multi-char operators first.
		for _, op := range []string{"<>", "!=", "<=", ">="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tkPunct, text: op, pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
			l.pos++
			return token{kind: tkPunct, text: string(c), pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tkEOF {
			return out, nil
		}
	}
}
