package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	spans, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	out := make([]Statement, len(spans))
	for i, sp := range spans {
		out[i] = sp.Stmt
	}
	return out, nil
}

// ScriptStmt is one statement of a script together with its source text
// (semicolon excluded) — callers that log or display per-statement SQL
// want the text, not a re-rendering of the AST.
type ScriptStmt struct {
	Stmt Statement
	SQL  string
}

// ParseScript parses a semicolon-separated script, keeping each
// statement's original text span.
func ParseScript(src string) ([]ScriptStmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []ScriptStmt
	for {
		for p.acceptPunct(";") {
		}
		if p.peek().kind == tkEOF {
			return out, nil
		}
		start := p.peek().pos
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		end := p.peek().pos // the ';' or EOF token after the statement
		out = append(out, ScriptStmt{Stmt: s, SQL: strings.TrimSpace(src[start:end])})
		if !p.acceptPunct(";") && p.peek().kind != tkEOF {
			return nil, p.errHere("expected ';' or end of input")
		}
	}
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errHere(format string, args ...interface{}) error {
	t := p.peek()
	ctx := t.text
	if t.kind == tkEOF {
		ctx = "<end>"
	}
	return &Error{Pos: t.pos, Msg: fmt.Sprintf(format, args...), Context: ctx}
}

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errHere("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tkPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errHere("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", p.errHere("expected identifier")
	}
	p.advance()
	return t.text, nil
}

// reserved keywords that terminate identifier-ish contexts.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"having": true, "join": true, "inner": true, "cross": true, "apply": true,
	"on": true, "and": true, "or": true, "not": true, "as": true, "by": true,
	"insert": true, "into": true, "values": true, "create": true, "drop": true,
	"table": true, "top": true, "like": true, "is": true, "null": true,
	"asc": true, "desc": true, "with": true, "primary": true, "key": true,
	"begin": true, "commit": true, "rollback": true, "checkpoint": true,
	"explain": true, "over": true, "union": true, "in": true,
	"analyze": true,
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.isKw("explain"):
		p.advance()
		// EXPLAIN ANALYZE <select>: "analyze" is consumed as the modifier
		// only when a statement keyword follows, so "EXPLAIN ANALYZE
		// [TABLE t]" still parses as explaining the ANALYZE statement.
		analyze := false
		if p.isKw("analyze") {
			if t := p.peek2(); t.kind == tkIdent && strings.EqualFold(t.text, "select") {
				p.advance()
				analyze = true
			}
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	case p.isKw("select"):
		return p.selectStmt()
	case p.isKw("create"):
		// "index" is contextual (not reserved): branch on the next token.
		if t := p.peek2(); t.kind == tkIdent && strings.EqualFold(t.text, "index") {
			return p.createIndex()
		}
		return p.createTable()
	case p.isKw("drop"):
		p.advance()
		if p.acceptKw("index") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			tbl, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &DropIndex{Name: name, Table: tbl}, nil
		}
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.isKw("insert"):
		return p.insert()
	case p.isKw("begin"):
		p.advance()
		if !p.acceptKw("transaction") {
			p.acceptKw("tran")
		}
		return &BeginTxn{}, nil
	case p.isKw("commit"):
		p.advance()
		if !p.acceptKw("transaction") {
			p.acceptKw("tran")
		}
		return &CommitTxn{}, nil
	case p.isKw("rollback"):
		p.advance()
		if !p.acceptKw("transaction") {
			p.acceptKw("tran")
		}
		return &RollbackTxn{}, nil
	case p.isKw("checkpoint"):
		p.advance()
		return &Checkpoint{}, nil
	case p.isKw("analyze"):
		p.advance()
		explicitTable := p.acceptKw("table")
		a := &Analyze{}
		if t := p.peek(); t.kind == tkIdent && !reserved[strings.ToLower(t.text)] {
			a.Table = t.text
			p.advance()
		} else if explicitTable {
			// Having written TABLE, the user meant exactly one table.
			return nil, p.errHere("expected a table name after ANALYZE TABLE")
		}
		return a, nil
	}
	return nil, p.errHere("expected a statement")
}

// createIndex parses CREATE INDEX name ON table(col[, ...]).
func (p *parser) createIndex() (Statement, error) {
	p.advance() // CREATE
	p.advance() // INDEX
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: tbl}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Cols = append(ci.Cols, col)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) createTable() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.isKw("primary") {
			p.advance()
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			if p.acceptKw("clustered") {
				ct.Clustered = true
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, col)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.colDef()
			if err != nil {
				return nil, err
			}
			if col.PK {
				ct.PK = append(ct.PK, col.Name)
			}
			if col.PKClustered {
				ct.Clustered = true
			}
			ct.Cols = append(ct.Cols, *col)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isKw("with"):
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			opt, err := p.ident()
			if err != nil {
				return nil, err
			}
			if !strings.EqualFold(opt, "data_compression") {
				return nil, p.errHere("unknown table option %q", opt)
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			mode, err := p.ident()
			if err != nil {
				return nil, err
			}
			mode = strings.ToUpper(mode)
			if mode != "ROW" && mode != "PAGE" && mode != "NONE" {
				return nil, p.errHere("DATA_COMPRESSION must be NONE, ROW or PAGE")
			}
			ct.Compression = mode
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		case p.isKw("filestream_on"):
			p.advance()
			fg, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct.FileGroup = fg
		default:
			return ct, nil
		}
	}
}

func (p *parser) colDef() (*ColDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typeName, err := p.ident()
	if err != nil {
		return nil, err
	}
	spec := strings.ToUpper(typeName)
	if p.acceptPunct("(") {
		t := p.peek()
		if t.kind == tkNumber || (t.kind == tkIdent && strings.EqualFold(t.text, "max")) {
			p.advance()
			spec += "(" + strings.ToUpper(t.text) + ")"
		} else {
			return nil, p.errHere("expected a length or MAX")
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	col := &ColDef{Name: name, Type: spec}
	for {
		switch {
		case p.isKw("filestream"):
			p.advance()
			col.Type += " FILESTREAM"
		case p.isKw("rowguidcol"):
			p.advance()
			col.RowGUID = true
		case p.isKw("not"):
			p.advance()
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.isKw("null"):
			p.advance()
		case p.isKw("primary"):
			p.advance()
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			col.PK = true
			if p.acceptKw("clustered") {
				col.PKClustered = true
			}
		default:
			return col, nil
		}
	}
}

func (p *parser) insert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.acceptPunct("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if p.isKw("values") {
		p.advance()
		for {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.acceptPunct(",") {
				break
			}
		}
		return ins, nil
	}
	if p.isKw("select") {
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = q.(*Select)
		return ins, nil
	}
	return nil, p.errHere("expected VALUES or SELECT")
}

func (p *parser) selectStmt() (Statement, error) {
	sel, err := p.selectBody()
	if err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *parser) selectBody() (*Select, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	sel := &Select{Top: -1}
	if p.acceptKw("top") {
		t := p.peek()
		if t.kind != tkNumber {
			return nil, p.errHere("expected a number after TOP")
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errHere("bad TOP count %q", t.text)
		}
		p.advance()
		sel.Top = n
	}
	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKw("from") {
		from, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.isKw("group") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.isKw("order") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		items, err := p.orderList()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = items
	}
	return sel, nil
}

func (p *parser) orderList() ([]OrderItem, error) {
	var out []OrderItem
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Expr: e}
		if p.acceptKw("desc") {
			item.Desc = true
		} else {
			p.acceptKw("asc")
		}
		out = append(out, item)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

func (p *parser) selectItem() (*SelectItem, error) {
	if p.acceptPunct("*") {
		return &SelectItem{Star: true}, nil
	}
	// t.* form.
	if p.peek().kind == tkIdent && !reserved[strings.ToLower(p.peek().text)] &&
		p.peek2().kind == tkPunct && p.peek2().text == "." {
		save := p.pos
		q, _ := p.ident()
		p.advance() // '.'
		if p.acceptPunct("*") {
			return &SelectItem{Star: true, Qualifier: q}, nil
		}
		p.pos = save
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tkIdent && !reserved[strings.ToLower(t.text)] {
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

// tableRef parses a FROM item with left-associative JOIN / CROSS APPLY.
func (p *parser) tableRef() (TableRef, error) {
	left, err := p.tablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isKw("join") || p.isKw("inner"):
			p.acceptKw("inner")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			right, err := p.tablePrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Left: left, Right: right, On: on}
		case p.isKw("cross"):
			p.advance()
			if err := p.expectKw("apply"); err != nil {
				return nil, err
			}
			fnRef, err := p.tablePrimary()
			if err != nil {
				return nil, err
			}
			fn, ok := fnRef.(*FuncRef)
			if !ok {
				return nil, p.errHere("CROSS APPLY requires a table-valued function")
			}
			left = &ApplyRef{Left: left, Fn: fn}
		default:
			return left, nil
		}
	}
}

func (p *parser) tablePrimary() (TableRef, error) {
	if p.acceptPunct("(") {
		q, err := p.selectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		alias := ""
		p.acceptKw("as")
		if t := p.peek(); t.kind == tkIdent && !reserved[strings.ToLower(t.text)] {
			alias = t.text
			p.advance()
		}
		return &SubqueryRef{Query: q, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		// Table-valued function.
		fn := &FuncRef{Name: name}
		if !p.acceptPunct(")") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		p.acceptKw("as")
		if t := p.peek(); t.kind == tkIdent && !reserved[strings.ToLower(t.text)] {
			fn.Alias = t.text
			p.advance()
		}
		return fn, nil
	}
	ref := &NamedTable{Name: name}
	p.acceptKw("as")
	if t := p.peek(); t.kind == tkIdent && !reserved[strings.ToLower(t.text)] {
		ref.Alias = t.text
		p.advance()
	}
	return ref, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.isKw("is") {
		p.advance()
		not := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: not}, nil
	}
	// [NOT] LIKE 'pattern'
	notLike := false
	if p.isKw("not") && strings.EqualFold(p.peek2().text, "like") {
		p.advance()
		notLike = true
	}
	if p.acceptKw("like") {
		t := p.peek()
		if t.kind != tkString {
			return nil, p.errHere("LIKE requires a string literal pattern")
		}
		p.advance()
		return &LikeExpr{X: left, Pattern: t.text, Not: notLike}, nil
	}
	// [NOT] IN (e1, e2, ...)
	notIn := false
	if p.isKw("not") && strings.EqualFold(p.peek2().text, "in") {
		p.advance()
		notIn = true
	}
	if p.acceptKw("in") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		in := &InExpr{X: left, Not: notIn}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	t := p.peek()
	if t.kind == tkPunct {
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) additive() (Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkPunct && (t.text == "+" || t.text == "-") {
			p.advance()
			right, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) multiplicative() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			right, err := p.unary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.advance()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errHere("bad number %q", t.text)
			}
			return &NumberLit{IsFloat: true, F: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errHere("bad number %q", t.text)
		}
		return &NumberLit{I: n}, nil
	case tkString:
		p.advance()
		return &StringLit{S: t.text}, nil
	case tkPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		if strings.EqualFold(t.text, "null") {
			p.advance()
			return &NullLit{}, nil
		}
		name := t.text
		p.advance()
		// Function call?
		if p.acceptPunct("(") {
			fc := &FuncCall{Name: name}
			if p.acceptPunct("*") {
				fc.Star = true
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			} else if !p.acceptPunct(")") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.acceptPunct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			if p.acceptKw("over") {
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				over := &OverClause{}
				if p.isKw("order") {
					p.advance()
					if err := p.expectKw("by"); err != nil {
						return nil, err
					}
					items, err := p.orderList()
					if err != nil {
						return nil, err
					}
					over.OrderBy = items
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				fc.Over = over
			}
			return fc, nil
		}
		// Qualified column a.b?
		if p.acceptPunct(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errHere("expected an expression")
}
