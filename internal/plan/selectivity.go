package plan

import (
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
)

// Default selectivities for predicate shapes the statistics cannot
// resolve (no ANALYZE yet, or no histogram for the column) — the classic
// System R magic numbers. Predicates the estimator does not understand at
// all (function calls, column-to-column comparisons) contribute 1.0, so
// an unestimable WHERE never talks a scan out of parallelism.
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3
	defaultLikeSel  = 0.25
	defaultNullSel  = 0.1
)

// conjunctsSelectivity estimates the combined selectivity of AND-ed
// conjuncts pushed into a base-table scan, multiplying the per-conjunct
// estimates (the usual independence assumption).
func conjunctsSelectivity(ts *stats.TableStats, conjuncts []sqlparse.Expr) float64 {
	sel := 1.0
	for _, c := range conjuncts {
		sel *= conjunctSelectivity(ts, c)
	}
	return clampSel01(sel)
}

// conjunctSelectivity estimates one predicate's selectivity over a base
// table, treating unestimable predicates as 1.0 (no reduction).
func conjunctSelectivity(ts *stats.TableStats, e sqlparse.Expr) float64 {
	if s, known := estimateSelectivity(ts, e); known {
		return s
	}
	return 1.0
}

// estimateSelectivity prices one predicate: equality/range/IN via the
// histograms, MCVs and NDV sketches when ts is non-nil, defaults
// otherwise. known=false marks shapes the estimator cannot price at all
// (function calls, column-to-column comparisons) — callers must NOT
// invert or combine an unknown as if it were a number (NOT of unknown is
// still unknown, not selectivity zero).
func estimateSelectivity(ts *stats.TableStats, e sqlparse.Expr) (float64, bool) {
	switch t := e.(type) {
	case *sqlparse.Binary:
		switch t.Op {
		case "AND":
			// Known only when BOTH branches are: a partially-unknown AND
			// is merely an upper bound, and a NOT above it would invert
			// that bound into a near-zero underestimate. (Top-level ANDs
			// are split into separate conjuncts before reaching here, so
			// the strictness only affects ANDs nested under NOT/OR.)
			l, lok := estimateSelectivity(ts, t.L)
			r, rok := estimateSelectivity(ts, t.R)
			if !lok || !rok {
				return 1, false
			}
			return clampSel01(l * r), true
		case "OR":
			l, lok := estimateSelectivity(ts, t.L)
			r, rok := estimateSelectivity(ts, t.R)
			if !lok || !rok {
				// An unknown branch may keep every row.
				return 1, false
			}
			return clampSel01(l + r - l*r), true
		case "=", "<>", "<", "<=", ">", ">=":
			return cmpSelectivity(ts, t)
		}
	case *sqlparse.Unary:
		if t.Op == "NOT" {
			if s, known := estimateSelectivity(ts, t.X); known {
				return clampSel01(1 - s), true
			}
		}
	case *sqlparse.IsNullExpr:
		if id, ok := t.X.(*sqlparse.Ident); ok && ts != nil {
			if s, ok := ts.NullSelectivity(id.Name, t.Not); ok {
				return s, true
			}
		}
		if t.Not {
			return 1 - defaultNullSel, true
		}
		return defaultNullSel, true
	case *sqlparse.LikeExpr:
		if t.Not {
			return 1 - defaultLikeSel, true
		}
		return defaultLikeSel, true
	case *sqlparse.InExpr:
		// IN is a disjunction of equalities on the same column: sum the
		// per-value estimates (the values are disjoint events).
		id, idOK := t.X.(*sqlparse.Ident)
		sel := 0.0
		for _, item := range t.List {
			s := defaultEqSel
			if v, isConst := constValue(item); idOK && isConst && ts != nil {
				if est, statOK := ts.CmpSelectivity(id.Name, "=", v); statOK {
					s = est
				}
			}
			sel += s
		}
		if t.Not {
			return clampSel01(1 - sel), true
		}
		return clampSel01(sel), true
	}
	return 1, false
}

// cmpSelectivity estimates `col op const` (either operand order);
// known=false for column-to-column or computed comparisons.
func cmpSelectivity(ts *stats.TableStats, t *sqlparse.Binary) (float64, bool) {
	id, lok := t.L.(*sqlparse.Ident)
	v, rconst := constValue(t.R)
	op := t.Op
	if !lok || !rconst {
		// Try the flipped orientation: const op col.
		id, lok = t.R.(*sqlparse.Ident)
		v, rconst = constValue(t.L)
		if !lok || !rconst {
			return 1, false
		}
		op = flipCmp(op)
	}
	if ts != nil {
		if s, ok := ts.CmpSelectivity(id.Name, op, v); ok {
			return s, true
		}
	}
	switch op {
	case "=":
		return defaultEqSel, true
	case "<>":
		return 1 - defaultEqSel, true
	default:
		return defaultRangeSel, true
	}
}

// constValue evaluates simple constant expressions (literals and negated
// number literals) without a binder.
func constValue(e sqlparse.Expr) (sqltypes.Value, bool) {
	switch t := e.(type) {
	case *sqlparse.NumberLit:
		if t.IsFloat {
			return sqltypes.NewFloat(t.F), true
		}
		return sqltypes.NewInt(t.I), true
	case *sqlparse.StringLit:
		return sqltypes.NewString(t.S), true
	case *sqlparse.NullLit:
		return sqltypes.Null, true
	case *sqlparse.Unary:
		if t.Op == "-" {
			if n, ok := t.X.(*sqlparse.NumberLit); ok {
				if n.IsFloat {
					return sqltypes.NewFloat(-n.F), true
				}
				return sqltypes.NewInt(-n.I), true
			}
		}
	}
	return sqltypes.Null, false
}

// flipCmp mirrors a comparison operator for the const-op-column form.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

func clampSel01(s float64) float64 {
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	}
	return s
}

// scaleEst applies a selectivity to a row estimate, keeping at least one
// row so downstream ratios stay finite.
func scaleEst(est int64, sel float64) int64 {
	if est <= 0 || sel >= 1 {
		return est
	}
	scaled := int64(float64(est)*sel + 0.5)
	if scaled < 1 {
		return 1
	}
	return scaled
}

// keysNDV estimates the number of distinct join-key combinations a
// relation produces: the product of the key columns' NDVs (from the
// relation's base-table statistics), capped by the relation's estimated
// row count. Returns 0 when unknown (derived inputs, no ANALYZE, or a
// missing column).
func keysNDV(rel *relation, keys []*sqlparse.Ident) int64 {
	if rel.stats == nil {
		return 0
	}
	ndv := int64(1)
	for _, k := range keys {
		n := rel.stats.ColumnNDV(k.Name)
		if n <= 0 {
			return 0
		}
		// Saturating product: NDVs multiply fast.
		if ndv > 1<<31 || n > 1<<31 {
			ndv = 1 << 62
		} else {
			ndv *= n
		}
	}
	if rel.est > 0 && ndv > rel.est {
		ndv = rel.est
	}
	return ndv
}

// nextPow2 rounds up to a power of two (minimum 1).
func nextPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}
