package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// scope resolves column names to positions in the current row layout.
type scope struct {
	cols []ColMeta
}

// resolve finds a column by (optional) qualifier and name.
func (s *scope) resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: ambiguous column %q", displayName(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", displayName(qual, name))
	}
	return found, nil
}

func displayName(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}

// binder converts sqlparse expressions to executable expr trees.
type binder struct {
	pl    *Planner
	scope *scope
	// aggSubst maps rendered aggregate-call keys to output column
	// positions; set while binding post-aggregation expressions.
	aggSubst map[string]int
	// allowAggs permits aggregate calls (they are collected, not bound).
	sawAggregate bool
}

// bind converts one expression.
func (b *binder) bind(e sqlparse.Expr) (expr.Expr, error) {
	switch t := e.(type) {
	case *sqlparse.NumberLit:
		if t.IsFloat {
			return &expr.Lit{V: sqltypes.NewFloat(t.F)}, nil
		}
		return &expr.Lit{V: sqltypes.NewInt(t.I)}, nil
	case *sqlparse.StringLit:
		return &expr.Lit{V: sqltypes.NewString(t.S)}, nil
	case *sqlparse.NullLit:
		return &expr.Lit{V: sqltypes.Null}, nil
	case *sqlparse.Ident:
		if b.aggSubst != nil {
			if idx, ok := b.aggSubst[exprKey(t)]; ok {
				return &expr.Col{Idx: idx, Name: displayName(t.Qualifier, t.Name)}, nil
			}
		}
		if b.scope == nil {
			return nil, fmt.Errorf("plan: column %q referenced without a FROM clause", displayName(t.Qualifier, t.Name))
		}
		idx, err := b.scope.resolve(t.Qualifier, t.Name)
		if err != nil {
			return nil, err
		}
		return &expr.Col{Idx: idx, Name: displayName(t.Qualifier, t.Name)}, nil
	case *sqlparse.Unary:
		x, err := b.bind(t.X)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return &expr.Not{X: x}, nil
		}
		return &expr.Arith{Op: expr.OpSub, L: &expr.Lit{V: sqltypes.NewInt(0)}, R: x}, nil
	case *sqlparse.Binary:
		return b.bindBinary(t)
	case *sqlparse.IsNullExpr:
		x, err := b.bind(t.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: x, Negate: t.Not}, nil
	case *sqlparse.LikeExpr:
		x, err := b.bind(t.X)
		if err != nil {
			return nil, err
		}
		var out expr.Expr = &expr.Like{X: x, Pattern: t.Pattern}
		if t.Not {
			out = &expr.Not{X: out}
		}
		return out, nil
	case *sqlparse.InExpr:
		// IN expands to an OR chain of equalities (NOT IN negates it), so
		// execution reuses the comparison operators and three-valued logic.
		if len(t.List) == 0 {
			return nil, fmt.Errorf("plan: IN requires at least one value")
		}
		x, err := b.bind(t.X)
		if err != nil {
			return nil, err
		}
		var out expr.Expr
		for _, item := range t.List {
			rhs, err := b.bind(item)
			if err != nil {
				return nil, err
			}
			eq := &expr.Cmp{Op: expr.CmpEq, L: x, R: rhs}
			if out == nil {
				out = eq
			} else {
				out = &expr.Logic{L: out, R: eq}
			}
		}
		if t.Not {
			out = &expr.Not{X: out}
		}
		return out, nil
	case *sqlparse.FuncCall:
		return b.bindCall(t)
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", e)
}

func (b *binder) bindBinary(t *sqlparse.Binary) (expr.Expr, error) {
	l, err := b.bind(t.L)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(t.R)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case "AND":
		return &expr.Logic{And: true, L: l, R: r}, nil
	case "OR":
		return &expr.Logic{L: l, R: r}, nil
	case "+", "-", "*", "/", "%":
		return &expr.Arith{Op: expr.BinOp(t.Op[0]), L: l, R: r}, nil
	case "=":
		return &expr.Cmp{Op: expr.CmpEq, L: l, R: r}, nil
	case "<>":
		return &expr.Cmp{Op: expr.CmpNe, L: l, R: r}, nil
	case "<":
		return &expr.Cmp{Op: expr.CmpLt, L: l, R: r}, nil
	case "<=":
		return &expr.Cmp{Op: expr.CmpLe, L: l, R: r}, nil
	case ">":
		return &expr.Cmp{Op: expr.CmpGt, L: l, R: r}, nil
	case ">=":
		return &expr.Cmp{Op: expr.CmpGe, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("plan: unsupported operator %q", t.Op)
}

func (b *binder) bindCall(t *sqlparse.FuncCall) (expr.Expr, error) {
	// Aggregates and window calls are replaced by their output column
	// when binding post-aggregation/post-window expressions.
	if b.aggSubst != nil {
		if idx, ok := b.aggSubst[exprKey(t)]; ok {
			return &expr.Col{Idx: idx, Name: strings.ToUpper(t.Name) + "(...)"}, nil
		}
	}
	if t.Over != nil {
		return nil, fmt.Errorf("plan: window function %s not allowed here", t.Name)
	}
	if _, isAgg := b.pl.Provider.Agg(t.Name); isAgg {
		b.sawAggregate = true
		return nil, fmt.Errorf("plan: aggregate %s is not valid in this context", strings.ToUpper(t.Name))
	}
	fn, ok := b.pl.Provider.Scalar(t.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown function %s", strings.ToUpper(t.Name))
	}
	if t.Star {
		return nil, fmt.Errorf("plan: %s(*) is not valid", strings.ToUpper(t.Name))
	}
	args := make([]expr.Expr, len(t.Args))
	for i, a := range t.Args {
		x, err := b.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = x
	}
	return &expr.Call{Name: strings.ToUpper(t.Name), Fn: fn, Args: args}, nil
}

// exprKey renders a parsed expression into a canonical string for
// structural equality (aggregate dedup, GROUP BY matching).
func exprKey(e sqlparse.Expr) string {
	switch t := e.(type) {
	case nil:
		return "<nil>"
	case *sqlparse.NumberLit:
		if t.IsFloat {
			return fmt.Sprintf("f:%v", t.F)
		}
		return fmt.Sprintf("i:%d", t.I)
	case *sqlparse.StringLit:
		return fmt.Sprintf("s:%q", t.S)
	case *sqlparse.NullLit:
		return "null"
	case *sqlparse.Ident:
		return "id:" + strings.ToLower(displayName(t.Qualifier, t.Name))
	case *sqlparse.Unary:
		return fmt.Sprintf("u:%s(%s)", t.Op, exprKey(t.X))
	case *sqlparse.Binary:
		return fmt.Sprintf("b:%s(%s,%s)", t.Op, exprKey(t.L), exprKey(t.R))
	case *sqlparse.IsNullExpr:
		return fmt.Sprintf("isnull:%v(%s)", t.Not, exprKey(t.X))
	case *sqlparse.LikeExpr:
		return fmt.Sprintf("like:%v(%s,%q)", t.Not, exprKey(t.X), t.Pattern)
	case *sqlparse.InExpr:
		parts := make([]string, len(t.List))
		for i, item := range t.List {
			parts[i] = exprKey(item)
		}
		return fmt.Sprintf("in:%v(%s;%s)", t.Not, exprKey(t.X), strings.Join(parts, ","))
	case *sqlparse.FuncCall:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = exprKey(a)
		}
		star := ""
		if t.Star {
			star = "*"
		}
		over := ""
		if t.Over != nil {
			var ov []string
			for _, o := range t.Over.OrderBy {
				ov = append(ov, fmt.Sprintf("%s:%v", exprKey(o.Expr), o.Desc))
			}
			over = " over(" + strings.Join(ov, ",") + ")"
		}
		return fmt.Sprintf("fn:%s(%s%s)%s", strings.ToLower(t.Name), star, strings.Join(parts, ","), over)
	}
	return fmt.Sprintf("?%T", e)
}

// collectAggCalls walks an expression collecting aggregate invocations
// (deduplicated by exprKey) in deterministic order.
func (pl *Planner) collectAggCalls(e sqlparse.Expr, seen map[string]*sqlparse.FuncCall, order *[]string) {
	switch t := e.(type) {
	case *sqlparse.Unary:
		pl.collectAggCalls(t.X, seen, order)
	case *sqlparse.Binary:
		pl.collectAggCalls(t.L, seen, order)
		pl.collectAggCalls(t.R, seen, order)
	case *sqlparse.IsNullExpr:
		pl.collectAggCalls(t.X, seen, order)
	case *sqlparse.LikeExpr:
		pl.collectAggCalls(t.X, seen, order)
	case *sqlparse.InExpr:
		pl.collectAggCalls(t.X, seen, order)
		for _, item := range t.List {
			pl.collectAggCalls(item, seen, order)
		}
	case *sqlparse.FuncCall:
		if t.Over != nil {
			// Window functions aggregate over the window, not the group;
			// their ORDER BY may still contain aggregates.
			for _, o := range t.Over.OrderBy {
				pl.collectAggCalls(o.Expr, seen, order)
			}
			return
		}
		if _, ok := pl.Provider.Agg(t.Name); ok {
			key := exprKey(t)
			if _, dup := seen[key]; !dup {
				seen[key] = t
				*order = append(*order, key)
			}
			return
		}
		for _, a := range t.Args {
			pl.collectAggCalls(a, seen, order)
		}
	}
}

// hasWindow reports whether the expression contains a window function.
func hasWindow(e sqlparse.Expr) bool {
	switch t := e.(type) {
	case *sqlparse.Unary:
		return hasWindow(t.X)
	case *sqlparse.Binary:
		return hasWindow(t.L) || hasWindow(t.R)
	case *sqlparse.IsNullExpr:
		return hasWindow(t.X)
	case *sqlparse.FuncCall:
		if t.Over != nil {
			return true
		}
		for _, a := range t.Args {
			if hasWindow(a) {
				return true
			}
		}
	}
	return false
}

// columnRefs collects the distinct (qualifier, name) pairs referenced.
func columnRefs(e sqlparse.Expr, out map[string]bool) {
	switch t := e.(type) {
	case *sqlparse.Ident:
		out[strings.ToLower(displayName(t.Qualifier, t.Name))] = true
	case *sqlparse.Unary:
		columnRefs(t.X, out)
	case *sqlparse.Binary:
		columnRefs(t.L, out)
		columnRefs(t.R, out)
	case *sqlparse.IsNullExpr:
		columnRefs(t.X, out)
	case *sqlparse.LikeExpr:
		columnRefs(t.X, out)
	case *sqlparse.InExpr:
		columnRefs(t.X, out)
		for _, item := range t.List {
			columnRefs(item, out)
		}
	case *sqlparse.FuncCall:
		for _, a := range t.Args {
			columnRefs(a, out)
		}
		if t.Over != nil {
			for _, o := range t.Over.OrderBy {
				columnRefs(o.Expr, out)
			}
		}
	}
}

// refsResolvableIn reports whether every column reference in e resolves in
// the given scope (used to decide predicate pushdown sides).
func refsResolvableIn(e sqlparse.Expr, s *scope) bool {
	refs := map[string]bool{}
	columnRefs(e, refs)
	for ref := range refs {
		qual, name := "", ref
		if i := strings.IndexByte(ref, '.'); i >= 0 {
			qual, name = ref[:i], ref[i+1:]
		}
		if _, err := s.resolve(qual, name); err != nil {
			return false
		}
	}
	return true
}

// splitConjuncts flattens a WHERE tree into AND-ed conjuncts.
func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparse.Expr{e}
}

// joinConjuncts rebuilds an expression from conjuncts.
func joinConjuncts(list []sqlparse.Expr) sqlparse.Expr {
	if len(list) == 0 {
		return nil
	}
	out := list[0]
	for _, e := range list[1:] {
		out = &sqlparse.Binary{Op: "AND", L: out, R: e}
	}
	return out
}

// BindConstant binds an expression that may not reference any columns
// (INSERT ... VALUES items, TVF arguments outside APPLY).
func (pl *Planner) BindConstant(e sqlparse.Expr) (expr.Expr, error) {
	b := &binder{pl: pl}
	return b.bind(e)
}

// bindAll binds a list of expressions with the same binder.
func (b *binder) bindAll(list []sqlparse.Expr) ([]expr.Expr, error) {
	out := make([]expr.Expr, len(list))
	for i, e := range list {
		x, err := b.bind(e)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}
