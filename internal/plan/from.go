package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// planFrom plans a FROM item. conjuncts are WHERE terms available for
// pushdown; terms consumed by a scan are removed from the returned
// remainder.
func (pl *Planner) planFrom(ref sqlparse.TableRef, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	switch t := ref.(type) {
	case *sqlparse.NamedTable:
		return pl.planNamedTable(t, conjuncts)
	case *sqlparse.FuncRef:
		rel, err := pl.planTVF(t, nil)
		return rel, conjuncts, err
	case *sqlparse.SubqueryRef:
		node, err := pl.PlanSelect(t.Query)
		if err != nil {
			return nil, nil, err
		}
		cols := make([]ColMeta, len(node.Cols))
		for i, c := range node.Cols {
			cols[i] = ColMeta{Qual: t.Alias, Name: c.Name}
		}
		return &relation{node: node, cols: cols}, conjuncts, nil
	case *sqlparse.JoinRef:
		return pl.planJoin(t, conjuncts)
	case *sqlparse.ApplyRef:
		left, remaining, err := pl.planFrom(t.Left, conjuncts)
		if err != nil {
			return nil, nil, err
		}
		rel, err := pl.planApply(left, t.Fn)
		return rel, remaining, err
	}
	return nil, nil, fmt.Errorf("plan: unsupported FROM item %T", ref)
}

// planNamedTable builds a (possibly parallel) scan with pushed predicates.
func (pl *Planner) planNamedTable(t *sqlparse.NamedTable, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	tab := pl.Provider.Table(t.Name)
	if tab == nil {
		return nil, nil, fmt.Errorf("plan: unknown table %q", t.Name)
	}
	qual := t.Alias
	if qual == "" {
		qual = t.Name
	}
	cols := make([]ColMeta, len(tab.Columns))
	for i, c := range tab.Columns {
		cols[i] = ColMeta{Qual: qual, Name: c.Name}
	}
	sc := &scope{cols: cols}

	// Consume pushable conjuncts.
	var pushed []sqlparse.Expr
	var remaining []sqlparse.Expr
	for _, c := range conjuncts {
		if refsResolvableIn(c, sc) {
			pushed = append(pushed, c)
		} else {
			remaining = append(remaining, c)
		}
	}
	var pred expr.Expr
	if len(pushed) > 0 {
		b := &binder{pl: pl, scope: sc}
		var err error
		pred, err = b.bind(joinConjuncts(pushed))
		if err != nil {
			return nil, nil, err
		}
	}

	est := pl.Provider.RowCountEstimate(tab)
	partsN := pl.partitionCount(est)
	parts := func() ([]exec.Operator, error) {
		ops, err := pl.Provider.ScanPartitions(tab, partsN)
		if err != nil {
			return nil, err
		}
		if pred != nil {
			for i := range ops {
				ops[i] = &exec.Filter{Pred: pred, Child: ops[i]}
			}
		}
		return ops, nil
	}

	scanOp := "Table Scan"
	var ordered []ColMeta
	if tab.Clustered {
		scanOp = "Clustered Index Scan"
		for _, pk := range tab.PrimaryKey {
			ordered = append(ordered, ColMeta{Qual: qual, Name: tab.Columns[pk].Name})
		}
	}
	detail := fmt.Sprintf("[%s]", tab.Name)
	if pred != nil {
		detail += fmt.Sprintf(" WHERE:(%s)", pred)
	}
	var node *Node
	scanLeaf := &Node{Op: scanOp, Detail: detail, Cols: cols}
	scanLeaf.Build = func() (exec.Operator, error) {
		ops, err := parts()
		if err != nil {
			return nil, err
		}
		return ops[0], nil
	}
	if partsN > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams)",
			Detail:   fmt.Sprintf("DOP %d", partsN),
			Children: []*Node{scanLeaf},
			Cols:     cols,
			Build: func() (exec.Operator, error) {
				ops, err := parts()
				if err != nil {
					return nil, err
				}
				return &exec.Gather{Children: ops, Ordered: tab.Clustered}, nil
			},
		}
	} else {
		node = scanLeaf
	}
	rel := &relation{node: node, cols: cols, ordered: ordered, est: est}
	if partsN > 1 {
		rel.parts = parts
		rel.partsN = partsN
	}
	return rel, remaining, nil
}

// planTVF builds a table-valued function scan. outer, when non-nil, is
// the scope for correlated arguments (CROSS APPLY); otherwise arguments
// must be constants.
func (pl *Planner) planTVF(fn *sqlparse.FuncRef, outer *scope) (*relation, error) {
	tvf, ok := pl.Provider.TVF(fn.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table-valued function %q", fn.Name)
	}
	b := &binder{pl: pl, scope: outer}
	args, err := b.bindAll(fn.Args)
	if err != nil {
		return nil, err
	}
	// Constant argument values, where known, inform the schema.
	constArgs := make([]sqltypes.Value, len(args))
	for i, a := range args {
		if lit, ok := a.(*expr.Lit); ok {
			constArgs[i] = lit.V
		}
	}
	schema, err := tvf.Schema(constArgs)
	if err != nil {
		return nil, err
	}
	qual := fn.Alias
	if qual == "" {
		qual = fn.Name
	}
	cols := make([]ColMeta, len(schema))
	for i, c := range schema {
		cols[i] = ColMeta{Qual: qual, Name: c.Name}
	}
	node := &Node{
		Op:     "Table-valued Function",
		Detail: fmt.Sprintf("[%s]", fn.Name),
		Cols:   cols,
		Build: func() (exec.Operator, error) {
			vals := make([]sqltypes.Value, len(args))
			for i, a := range args {
				v, err := a.Eval(nil)
				if err != nil {
					return nil, fmt.Errorf("plan: TVF %s argument %d: %w", fn.Name, i+1, err)
				}
				vals[i] = v
			}
			return &exec.Source{
				Label: fn.Name,
				Factory: func(*exec.Context) (exec.RowIterator, error) {
					return tvf.Iterator(vals)
				},
			}, nil
		},
	}
	return &relation{node: node, cols: cols}, nil
}

// planApply plans CROSS APPLY fn(...) where arguments reference the outer
// row (Query 3's per-alignment PivotAlignment expansion).
func (pl *Planner) planApply(left *relation, fn *sqlparse.FuncRef) (*relation, error) {
	tvf, ok := pl.Provider.TVF(fn.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table-valued function %q", fn.Name)
	}
	b := &binder{pl: pl, scope: &scope{cols: left.cols}}
	args, err := b.bindAll(fn.Args)
	if err != nil {
		return nil, err
	}
	schema, err := tvf.Schema(make([]sqltypes.Value, len(args)))
	if err != nil {
		return nil, err
	}
	qual := fn.Alias
	if qual == "" {
		qual = fn.Name
	}
	cols := append([]ColMeta{}, left.cols...)
	for _, c := range schema {
		cols = append(cols, ColMeta{Qual: qual, Name: c.Name})
	}
	leftNode := left.node
	node := &Node{
		Op:       "Nested Loops (Cross Apply)",
		Detail:   fmt.Sprintf("TVF:[%s]", fn.Name),
		Children: []*Node{leftNode, {Op: "Table-valued Function", Detail: fmt.Sprintf("[%s]", fn.Name)}},
		Cols:     cols,
		Build: func() (exec.Operator, error) {
			c, err := buildChild(leftNode)
			if err != nil {
				return nil, err
			}
			return &exec.Apply{
				Child: c,
				Inner: func(ctx *exec.Context, outer sqltypes.Row) (exec.RowIterator, error) {
					vals := make([]sqltypes.Value, len(args))
					for i, a := range args {
						v, err := a.Eval(outer)
						if err != nil {
							return nil, err
						}
						vals[i] = v
					}
					return tvf.Iterator(vals)
				},
			}, nil
		},
	}
	// Ordering of the outer input is preserved by the nested-loops apply.
	return &relation{node: node, cols: cols, ordered: left.ordered}, nil
}

// planJoin plans an inner join, preferring a (possibly parallel,
// range-partitioned) merge join when both sides are clustered on the join
// key — the paper's Figure 10 plan — and falling back to hash join.
func (pl *Planner) planJoin(j *sqlparse.JoinRef, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	left, remaining, err := pl.planFrom(j.Left, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	right, remaining, err := pl.planFrom(j.Right, remaining)
	if err != nil {
		return nil, nil, err
	}
	combined := append(append([]ColMeta{}, left.cols...), right.cols...)
	leftScope := &scope{cols: left.cols}
	rightScope := &scope{cols: right.cols}

	// Split the ON condition into equi-join keys and residual predicates.
	var leftKeyIdents, rightKeyIdents []*sqlparse.Ident
	var residual []sqlparse.Expr
	for _, c := range splitConjuncts(j.On) {
		if b, ok := c.(*sqlparse.Binary); ok && b.Op == "=" {
			lid, lok := b.L.(*sqlparse.Ident)
			rid, rok := b.R.(*sqlparse.Ident)
			if lok && rok {
				switch {
				case refsResolvableIn(lid, leftScope) && refsResolvableIn(rid, rightScope):
					leftKeyIdents = append(leftKeyIdents, lid)
					rightKeyIdents = append(rightKeyIdents, rid)
					continue
				case refsResolvableIn(rid, leftScope) && refsResolvableIn(lid, rightScope):
					leftKeyIdents = append(leftKeyIdents, rid)
					rightKeyIdents = append(rightKeyIdents, lid)
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	if len(leftKeyIdents) == 0 {
		return nil, nil, fmt.Errorf("plan: join requires at least one equi-join condition")
	}
	lb := &binder{pl: pl, scope: leftScope}
	leftKeys, err := lb.bindAll(identExprs(leftKeyIdents))
	if err != nil {
		return nil, nil, err
	}
	rb := &binder{pl: pl, scope: rightScope}
	rightKeys, err := rb.bindAll(identExprs(rightKeyIdents))
	if err != nil {
		return nil, nil, err
	}

	var rel *relation
	if mj := pl.tryMergeJoin(j, left, right, leftKeyIdents, rightKeyIdents, leftKeys, rightKeys, remaining); mj != nil {
		rel = &mj.relation
		// tryMergeJoin consumed the pushable conjuncts itself.
		remaining = mj.leftoverConjuncts
	} else if left.est >= pl.ParallelThreshold || right.est >= pl.ParallelThreshold {
		// Either input is past the parallel threshold: Grace-style
		// partitioned hash join, building on the smaller estimated side,
		// spilling partitions past the join memory budget. Chosen even at
		// DOP 1 — the spill path is what keeps large joins out-of-core
		// rather than OOM.
		rel = pl.partitionedJoinRelation(left, right, leftKeys, rightKeys, combined)
	} else {
		leftNode, rightNode := left.node, right.node
		node := &Node{
			Op:       "Hash Match (Inner Join)",
			Detail:   fmt.Sprintf("HASH:[%s]=[%s]", describeExprs(leftKeys), describeExprs(rightKeys)),
			Children: []*Node{leftNode, rightNode},
			Cols:     combined,
			Build: func() (exec.Operator, error) {
				l, err := buildChild(leftNode)
				if err != nil {
					return nil, err
				}
				r, err := buildChild(rightNode)
				if err != nil {
					return nil, err
				}
				return &exec.HashJoin{
					LeftKeys: leftKeys, RightKeys: rightKeys,
					Left: l, Right: r,
				}, nil
			},
		}
		rel = &relation{node: node, cols: combined, est: joinEstimate(left.est, right.est)}
	}
	rel.cols = combined

	if len(residual) > 0 {
		b := &binder{pl: pl, scope: &scope{cols: combined}}
		pred, err := b.bind(joinConjuncts(residual))
		if err != nil {
			return nil, nil, err
		}
		rel = filterRelation(rel, pred)
	}
	return rel, remaining, nil
}

// joinEstimate is the (crude) output cardinality guess for an equi-join:
// the larger input, which is exact for key/foreign-key joins and keeps
// nested joins choosing sensible build sides.
func joinEstimate(l, r int64) int64 {
	if l > r {
		return l
	}
	return r
}

// partitionedJoinRelation plans the Grace-style parallel partitioned hash
// join: both sides hash-partition, DOP workers own disjoint partitions,
// and partitions whose build side exceeds the planner's JoinMemoryBudget
// spill to the engine's spill store and are re-joined per partition.
func (pl *Planner) partitionedJoinRelation(left, right *relation,
	leftKeys, rightKeys []expr.Expr, combined []ColMeta) *relation {

	// Build on the smaller estimated input; ties (and two unknowns) keep
	// the right side, matching the serial hash join's convention.
	buildLeft := left.est < right.est
	buildSide := "right"
	if buildLeft {
		buildSide = "left"
	}
	partitions := pl.JoinPartitions
	if partitions <= 0 {
		partitions = DefaultJoinPartitions
	}
	leftNode, rightNode := left.node, right.node
	build := func() (exec.Operator, error) {
		j := &exec.PartitionedHashJoin{
			LeftKeys:     leftKeys,
			RightKeys:    rightKeys,
			BuildLeft:    buildLeft,
			Partitions:   partitions,
			MemoryBudget: pl.JoinMemoryBudget,
			Spill:        pl.Provider.SpillStore(),
		}
		if left.parts != nil && left.partsN > 1 {
			ops, err := left.parts()
			if err != nil {
				return nil, err
			}
			j.LeftParts = ops
		} else {
			op, err := buildChild(leftNode)
			if err != nil {
				return nil, err
			}
			j.Left = op
		}
		if right.parts != nil && right.partsN > 1 {
			ops, err := right.parts()
			if err != nil {
				return nil, err
			}
			j.RightParts = ops
		} else {
			op, err := buildChild(rightNode)
			if err != nil {
				return nil, err
			}
			j.Right = op
		}
		return j, nil
	}
	inner := &Node{
		Op: "Hash Match (Partitioned Inner Join)",
		Detail: fmt.Sprintf("HASH:[%s]=[%s] BUILD:%s PARTITIONS:%d",
			describeExprs(leftKeys), describeExprs(rightKeys), buildSide, partitions),
		Children: []*Node{leftNode, rightNode},
		Cols:     combined,
	}
	node := inner
	if pl.DOP > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams)",
			Detail:   fmt.Sprintf("DOP %d", pl.DOP),
			Children: []*Node{inner},
			Cols:     combined,
			Build:    build,
		}
	} else {
		// Serial DOP still uses the partitioned operator: partitioning is
		// what lets an over-budget build side spill instead of OOM.
		inner.Build = build
	}
	return &relation{node: node, cols: combined, est: joinEstimate(left.est, right.est)}
}

func identExprs(ids []*sqlparse.Ident) []sqlparse.Expr {
	out := make([]sqlparse.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// tryMergeJoin returns a merge-join relation when both join inputs are
// base tables clustered on their single join key column; otherwise nil.
func (pl *Planner) tryMergeJoin(j *sqlparse.JoinRef, left, right *relation,
	leftKeyIdents, rightKeyIdents []*sqlparse.Ident,
	leftKeys, rightKeys []expr.Expr, conjuncts []sqlparse.Expr) *relationWithLeftovers {

	if len(leftKeyIdents) != 1 {
		return nil
	}
	lt, lok := j.Left.(*sqlparse.NamedTable)
	rt, rok := j.Right.(*sqlparse.NamedTable)
	if !lok || !rok {
		return nil
	}
	ltab, rtab := pl.Provider.Table(lt.Name), pl.Provider.Table(rt.Name)
	if ltab == nil || rtab == nil || !ltab.Clustered || !rtab.Clustered {
		return nil
	}
	if !clusteredOnKey(ltab, leftKeyIdents[0].Name) || !clusteredOnKey(rtab, rightKeyIdents[0].Name) {
		return nil
	}
	if keyType(ltab) != catalog.TypeInt && keyType(ltab) != catalog.TypeBigInt {
		return nil
	}

	// Pushdown into either side.
	lqual := tableQual(lt)
	rqual := tableQual(rt)
	leftScope := &scope{cols: left.cols}
	rightScope := &scope{cols: right.cols}
	var leftPred, rightPred expr.Expr
	var leftovers []sqlparse.Expr
	for _, c := range conjuncts {
		switch {
		case refsResolvableIn(c, leftScope):
			b := &binder{pl: pl, scope: leftScope}
			p, err := b.bind(c)
			if err != nil {
				return nil
			}
			leftPred = andExpr(leftPred, p)
		case refsResolvableIn(c, rightScope):
			b := &binder{pl: pl, scope: rightScope}
			p, err := b.bind(c)
			if err != nil {
				return nil
			}
			rightPred = andExpr(rightPred, p)
		default:
			leftovers = append(leftovers, c)
		}
	}

	est := pl.Provider.RowCountEstimate(ltab)
	if r := pl.Provider.RowCountEstimate(rtab); r > est {
		est = r
	}
	partsN := pl.partitionCount(est)

	combined := append(append([]ColMeta{}, left.cols...), right.cols...)
	buildParts := func() ([]exec.Operator, error) {
		var ranges [][2]*sqltypes.Value
		if partsN > 1 {
			var err error
			ranges, err = pl.Provider.KeyRanges(ltab, partsN)
			if err != nil {
				return nil, err
			}
		} else {
			ranges = [][2]*sqltypes.Value{{nil, nil}}
		}
		ops := make([]exec.Operator, 0, len(ranges))
		for _, rg := range ranges {
			lscan, err := pl.Provider.OrderedScanRange(ltab, rg[0], rg[1])
			if err != nil {
				return nil, err
			}
			rscan, err := pl.Provider.OrderedScanRange(rtab, rg[0], rg[1])
			if err != nil {
				return nil, err
			}
			var lop exec.Operator = lscan
			if leftPred != nil {
				lop = &exec.Filter{Pred: leftPred, Child: lop}
			}
			var rop exec.Operator = rscan
			if rightPred != nil {
				rop = &exec.Filter{Pred: rightPred, Child: rop}
			}
			ops = append(ops, &exec.MergeJoin{
				LeftKeys: leftKeys, RightKeys: rightKeys,
				Left: lop, Right: rop,
			})
		}
		return ops, nil
	}

	mjDetail := fmt.Sprintf("MERGE:[%s.%s]=[%s.%s]", lqual, leftKeyIdents[0].Name, rqual, rightKeyIdents[0].Name)
	scanDetail := func(tab *catalog.Table, pred expr.Expr) string {
		d := fmt.Sprintf("[%s] (ordered)", tab.Name)
		if pred != nil {
			d += fmt.Sprintf(" WHERE:(%s)", pred)
		}
		return d
	}
	mjNode := &Node{
		Op:     "Merge Join (Inner Join)",
		Detail: mjDetail,
		Children: []*Node{
			{Op: "Clustered Index Scan", Detail: scanDetail(ltab, leftPred)},
			{Op: "Clustered Index Scan", Detail: scanDetail(rtab, rightPred)},
		},
		Cols: combined,
	}
	var node *Node
	if partsN > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams, ordered)",
			Detail:   fmt.Sprintf("DOP %d, range-partitioned on %s.%s", partsN, lqual, leftKeyIdents[0].Name),
			Children: []*Node{mjNode},
			Cols:     combined,
			Build: func() (exec.Operator, error) {
				ops, err := buildParts()
				if err != nil {
					return nil, err
				}
				return &exec.Gather{Children: ops, Ordered: true}, nil
			},
		}
	} else {
		node = mjNode
		mjNode.Build = func() (exec.Operator, error) {
			ops, err := buildParts()
			if err != nil {
				return nil, err
			}
			return ops[0], nil
		}
	}
	rel := &relationWithLeftovers{
		relation: relation{
			node: node,
			cols: combined,
			// Output is ordered by the join key.
			ordered: []ColMeta{{Qual: lqual, Name: leftKeyIdents[0].Name}},
			est:     est,
		},
		leftoverConjuncts: leftovers,
	}
	if partsN > 1 {
		rel.parts = buildParts
		rel.partsN = partsN
	}
	return rel
}

// relationWithLeftovers carries unpushed conjuncts out of tryMergeJoin.
type relationWithLeftovers struct {
	relation
	leftoverConjuncts []sqlparse.Expr
}

func clusteredOnKey(t *catalog.Table, col string) bool {
	if len(t.PrimaryKey) == 0 {
		return false
	}
	return strings.EqualFold(t.Columns[t.PrimaryKey[0]].Name, col)
}

func keyType(t *catalog.Table) catalog.TypeName {
	return t.Columns[t.PrimaryKey[0]].Type.Name
}

func tableQual(t *sqlparse.NamedTable) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

func andExpr(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	return &expr.Logic{And: true, L: a, R: b}
}
