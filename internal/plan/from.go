package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
)

// planFrom plans a FROM item. conjuncts are WHERE terms available for
// pushdown; terms consumed by a scan are removed from the returned
// remainder.
func (pl *Planner) planFrom(ref sqlparse.TableRef, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	switch t := ref.(type) {
	case *sqlparse.NamedTable:
		return pl.planNamedTable(t, conjuncts)
	case *sqlparse.FuncRef:
		rel, err := pl.planTVF(t, nil)
		return rel, conjuncts, err
	case *sqlparse.SubqueryRef:
		node, err := pl.PlanSelect(t.Query)
		if err != nil {
			return nil, nil, err
		}
		cols := make([]ColMeta, len(node.Cols))
		for i, c := range node.Cols {
			cols[i] = ColMeta{Qual: t.Alias, Name: c.Name}
		}
		return &relation{node: node, cols: cols}, conjuncts, nil
	case *sqlparse.JoinRef:
		return pl.planJoin(t, conjuncts)
	case *sqlparse.ApplyRef:
		left, remaining, err := pl.planFrom(t.Left, conjuncts)
		if err != nil {
			return nil, nil, err
		}
		rel, err := pl.planApply(left, t.Fn)
		return rel, remaining, err
	}
	return nil, nil, fmt.Errorf("plan: unsupported FROM item %T", ref)
}

// planNamedTable builds a (possibly parallel) scan with pushed predicates.
func (pl *Planner) planNamedTable(t *sqlparse.NamedTable, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	tab := pl.Provider.Table(t.Name)
	if tab == nil {
		return nil, nil, fmt.Errorf("plan: unknown table %q", t.Name)
	}
	qual := t.Alias
	if qual == "" {
		qual = t.Name
	}
	cols := make([]ColMeta, len(tab.Columns))
	for i, c := range tab.Columns {
		cols[i] = ColMeta{Qual: qual, Name: c.Name}
	}
	sc := &scope{cols: cols}

	// Consume pushable conjuncts.
	var pushed []sqlparse.Expr
	var remaining []sqlparse.Expr
	for _, c := range conjuncts {
		if refsResolvableIn(c, sc) {
			pushed = append(pushed, c)
		} else {
			remaining = append(remaining, c)
		}
	}
	var pred expr.Expr
	if len(pushed) > 0 {
		b := &binder{pl: pl, scope: sc}
		var err error
		pred, err = b.bind(joinConjuncts(pushed))
		if err != nil {
			return nil, nil, err
		}
	}

	// Post-filter cardinality: the raw row count scaled by the estimated
	// selectivity of the pushed predicates (histograms/NDV/MCVs once
	// ANALYZE ran, System R defaults otherwise).
	ts := pl.Provider.Stats(tab)
	rawEst := pl.Provider.RowCountEstimate(tab)
	est := rawEst
	if len(pushed) > 0 {
		est = scaleEst(est, conjunctsSelectivity(ts, pushed))
	}

	// Access-path selection (see access.go): sargable bounds from the
	// pushed conjuncts yield zone filters and index candidates, priced by
	// estimated page I/O against the full scan.
	var zoneFilters []storage.ZoneFilter
	var idxCand *indexChoice
	if !tab.Clustered {
		ranges := sargableRanges(sc, tab, ts, pushed)
		zoneFilters = zoneFiltersFrom(ranges)
		idxCand = pickIndex(tab, ranges)
	}
	keptPages, totalPages := int64(0), int64(0)
	if len(zoneFilters) > 0 {
		keptPages, totalPages = pl.Provider.HeapPageStats(tab, zoneFilters)
	}
	useIndex := false
	if idxCand != nil {
		idxRows := scaleEst(rawEst, idxCand.rng.sel)
		useIndex = indexScanCost(idxRows) < heapScanCost(rawEst, keptPages, totalPages)
	}
	switch pl.ForcePath {
	case "full":
		useIndex, zoneFilters = false, nil
		keptPages, totalPages = 0, 0
	case "zonemap":
		useIndex = false
	case "index":
		useIndex = idxCand != nil
	}
	switch {
	case useIndex:
		pl.PathPicks.pickIndex()
	case len(zoneFilters) > 0:
		pl.PathPicks.pickZoneMap()
	default:
		pl.PathPicks.pickFull()
	}
	if useIndex {
		return pl.indexScanNode(tab, qual, cols, idxCand, pred, est, ts), remaining, nil
	}

	// Heap/clustered scan. The partition count follows the pages the scan
	// actually reads — the raw table size shrunk by zone pruning — NOT the
	// post-filter output estimate: a selective unindexed predicate still
	// reads every page, and those reads are what parallelism amortizes.
	scanBasis := rawEst
	if totalPages > 0 && keptPages < totalPages {
		scanBasis = rawEst * keptPages / totalPages
	}
	partsN := pl.partitionCount(scanBasis)
	// Vectorized scans deliver columnar batches; pushed predicates become
	// selection-vector filters that evaluate dictionary-encoded columns
	// once per distinct value. The operators still serve the row interface,
	// so unmigrated consumers (joins, aggregates) compose unchanged.
	vectorized := pl.Provider.VectorizedScan(tab)

	scanOp := "Table Scan"
	var ordered []ColMeta
	if tab.Clustered {
		scanOp = "Clustered Index Scan"
		for _, pk := range tab.PrimaryKey {
			ordered = append(ordered, ColMeta{Qual: qual, Name: tab.Columns[pk].Name})
		}
	}
	detail := fmt.Sprintf("[%s]", tab.Name)
	if pred != nil {
		detail += fmt.Sprintf(" WHERE:(%s)", pred)
	}
	// Annotate the access path whenever a choice was live: zone pruning
	// with its exact page arithmetic, or an explicit "full scan" marker
	// when an applicable index lost the cost race.
	if totalPages > 0 && keptPages < totalPages {
		detail += fmt.Sprintf(" zonemap-pruned(%d/%d pages)", keptPages, totalPages)
	} else if idxCand != nil {
		detail += " full scan"
	}
	// The leaf is declared before the parts closure so parts can read its
	// profile at build time: consumers that take the partition chains
	// directly (exchanges, partitioned joins) bypass the leaf's Build, so
	// this is where the chains bind to the node that displays them.
	scanLeaf := &Node{Op: scanOp, Detail: detail, Cols: cols, Est: est, Vec: vectorized}
	parts := func() ([]exec.Operator, error) {
		ops, err := pl.Provider.ScanPartitionsPruned(tab, partsN, zoneFilters)
		if err != nil {
			return nil, err
		}
		if pred != nil {
			for i := range ops {
				if bo, ok := ops[i].(exec.BatchOperator); ok && vectorized {
					ops[i] = &exec.VecFilter{Pred: pred, Child: bo}
				} else {
					ops[i] = &exec.Filter{Pred: pred, Child: ops[i]}
				}
			}
		}
		if scanLeaf.Prof != nil {
			for i := range ops {
				ops[i] = exec.InstrumentOp(ops[i], scanLeaf.Prof)
			}
		}
		return ops, nil
	}
	batchParts := func() ([]exec.BatchOperator, error) {
		ops, err := parts()
		if err != nil {
			return nil, err
		}
		bops := make([]exec.BatchOperator, len(ops))
		for i, op := range ops {
			bo, ok := op.(exec.BatchOperator)
			if !ok {
				return nil, fmt.Errorf("plan: scan partition %d of %s is not batch-capable", i, tab.Name)
			}
			bops[i] = bo
		}
		return bops, nil
	}
	var node *Node
	scanLeaf.Build = func() (exec.Operator, error) {
		ops, err := parts()
		if err != nil {
			return nil, err
		}
		return ops[0], nil
	}
	if partsN > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams)",
			Detail:   fmt.Sprintf("DOP %d", partsN),
			Children: []*Node{scanLeaf},
			Cols:     cols,
			Est:      est,
			// The batch exchange is unordered; clustered scans keep the
			// row exchange so the merge-preserved key order survives.
			Vec: vectorized && !tab.Clustered,
			Build: func() (exec.Operator, error) {
				if vectorized && !tab.Clustered {
					bops, err := batchParts()
					if err != nil {
						return nil, err
					}
					return &exec.VecGather{Children: bops}, nil
				}
				ops, err := parts()
				if err != nil {
					return nil, err
				}
				return &exec.Gather{Children: ops, Ordered: tab.Clustered}, nil
			},
		}
	} else {
		node = scanLeaf
	}
	rel := &relation{node: node, cols: cols, ordered: ordered, est: est, stats: ts}
	if partsN > 1 {
		rel.parts = parts
		rel.partsN = partsN
	}
	return rel, remaining, nil
}

// planTVF builds a table-valued function scan. outer, when non-nil, is
// the scope for correlated arguments (CROSS APPLY); otherwise arguments
// must be constants.
func (pl *Planner) planTVF(fn *sqlparse.FuncRef, outer *scope) (*relation, error) {
	tvf, ok := pl.Provider.TVF(fn.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table-valued function %q", fn.Name)
	}
	b := &binder{pl: pl, scope: outer}
	args, err := b.bindAll(fn.Args)
	if err != nil {
		return nil, err
	}
	// Constant argument values, where known, inform the schema.
	constArgs := make([]sqltypes.Value, len(args))
	for i, a := range args {
		if lit, ok := a.(*expr.Lit); ok {
			constArgs[i] = lit.V
		}
	}
	schema, err := tvf.Schema(constArgs)
	if err != nil {
		return nil, err
	}
	qual := fn.Alias
	if qual == "" {
		qual = fn.Name
	}
	cols := make([]ColMeta, len(schema))
	for i, c := range schema {
		cols[i] = ColMeta{Qual: qual, Name: c.Name}
	}
	node := &Node{
		Op:     "Table-valued Function",
		Detail: fmt.Sprintf("[%s]", fn.Name),
		Cols:   cols,
		Build: func() (exec.Operator, error) {
			vals := make([]sqltypes.Value, len(args))
			for i, a := range args {
				v, err := a.Eval(nil)
				if err != nil {
					return nil, fmt.Errorf("plan: TVF %s argument %d: %w", fn.Name, i+1, err)
				}
				vals[i] = v
			}
			return &exec.Source{
				Label: fn.Name,
				Factory: func(*exec.Context) (exec.RowIterator, error) {
					return tvf.Iterator(vals)
				},
			}, nil
		},
	}
	return &relation{node: node, cols: cols}, nil
}

// planApply plans CROSS APPLY fn(...) where arguments reference the outer
// row (Query 3's per-alignment PivotAlignment expansion).
func (pl *Planner) planApply(left *relation, fn *sqlparse.FuncRef) (*relation, error) {
	tvf, ok := pl.Provider.TVF(fn.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table-valued function %q", fn.Name)
	}
	b := &binder{pl: pl, scope: &scope{cols: left.cols}}
	args, err := b.bindAll(fn.Args)
	if err != nil {
		return nil, err
	}
	schema, err := tvf.Schema(make([]sqltypes.Value, len(args)))
	if err != nil {
		return nil, err
	}
	qual := fn.Alias
	if qual == "" {
		qual = fn.Name
	}
	cols := append([]ColMeta{}, left.cols...)
	for _, c := range schema {
		cols = append(cols, ColMeta{Qual: qual, Name: c.Name})
	}
	leftNode := left.node
	node := &Node{
		Op:       "Nested Loops (Cross Apply)",
		Detail:   fmt.Sprintf("TVF:[%s]", fn.Name),
		Children: []*Node{leftNode, {Op: "Table-valued Function", Detail: fmt.Sprintf("[%s]", fn.Name)}},
		Cols:     cols,
		Build: func() (exec.Operator, error) {
			c, err := buildChild(leftNode)
			if err != nil {
				return nil, err
			}
			return &exec.Apply{
				Child: c,
				Inner: func(ctx *exec.Context, outer sqltypes.Row) (exec.RowIterator, error) {
					vals := make([]sqltypes.Value, len(args))
					for i, a := range args {
						v, err := a.Eval(outer)
						if err != nil {
							return nil, err
						}
						vals[i] = v
					}
					return tvf.Iterator(vals)
				},
			}, nil
		},
	}
	// Ordering of the outer input is preserved by the nested-loops apply.
	return &relation{node: node, cols: cols, ordered: left.ordered}, nil
}

// planJoin plans an inner join, preferring a (possibly parallel,
// range-partitioned) merge join when both sides are clustered on the join
// key — the paper's Figure 10 plan — and falling back to hash join.
func (pl *Planner) planJoin(j *sqlparse.JoinRef, conjuncts []sqlparse.Expr) (*relation, []sqlparse.Expr, error) {
	left, remaining, err := pl.planFrom(j.Left, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	right, remaining, err := pl.planFrom(j.Right, remaining)
	if err != nil {
		return nil, nil, err
	}
	combined := append(append([]ColMeta{}, left.cols...), right.cols...)
	leftScope := &scope{cols: left.cols}
	rightScope := &scope{cols: right.cols}

	// Split the ON condition into equi-join keys and residual predicates.
	var leftKeyIdents, rightKeyIdents []*sqlparse.Ident
	var residual []sqlparse.Expr
	for _, c := range splitConjuncts(j.On) {
		if b, ok := c.(*sqlparse.Binary); ok && b.Op == "=" {
			lid, lok := b.L.(*sqlparse.Ident)
			rid, rok := b.R.(*sqlparse.Ident)
			if lok && rok {
				switch {
				case refsResolvableIn(lid, leftScope) && refsResolvableIn(rid, rightScope):
					leftKeyIdents = append(leftKeyIdents, lid)
					rightKeyIdents = append(rightKeyIdents, rid)
					continue
				case refsResolvableIn(rid, leftScope) && refsResolvableIn(lid, rightScope):
					leftKeyIdents = append(leftKeyIdents, rid)
					rightKeyIdents = append(rightKeyIdents, lid)
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	if len(leftKeyIdents) == 0 {
		return nil, nil, fmt.Errorf("plan: join requires at least one equi-join condition")
	}
	lb := &binder{pl: pl, scope: leftScope}
	leftKeys, err := lb.bindAll(identExprs(leftKeyIdents))
	if err != nil {
		return nil, nil, err
	}
	rb := &binder{pl: pl, scope: rightScope}
	rightKeys, err := rb.bindAll(identExprs(rightKeyIdents))
	if err != nil {
		return nil, nil, err
	}

	var rel *relation
	// tryMergeJoin discards the generic scan plans (and the predicates
	// planFrom pushed into them) and builds its own ordered range scans,
	// so it must re-push from the ORIGINAL conjunct list — not from
	// `remaining`, which no longer holds the terms the generic scans
	// consumed.
	if mj := pl.tryMergeJoin(j, left, right, leftKeyIdents, rightKeyIdents, leftKeys, rightKeys, conjuncts); mj != nil {
		rel = &mj.relation
		// tryMergeJoin consumed the pushable conjuncts itself.
		remaining = mj.leftoverConjuncts
	} else if omj := pl.orderedMergeJoin(left, right, leftKeyIdents, rightKeyIdents, leftKeys, rightKeys, combined); omj != nil {
		rel = omj
	} else if left.est >= pl.ParallelThreshold || right.est >= pl.ParallelThreshold {
		// Either input is past the parallel threshold: Grace-style
		// partitioned hash join, building on the smaller estimated side,
		// spilling partitions past the join memory budget. Chosen even at
		// DOP 1 — the spill path is what keeps large joins out-of-core
		// rather than OOM.
		rel = pl.partitionedJoinRelation(left, right, leftKeyIdents, rightKeyIdents, leftKeys, rightKeys, combined)
	} else {
		est := joinOutputEstimate(left, right, leftKeyIdents, rightKeyIdents)
		leftNode, rightNode := left.node, right.node
		node := &Node{
			Op:       "Hash Match (Inner Join)",
			Detail:   fmt.Sprintf("HASH:[%s]=[%s]", describeExprs(leftKeys), describeExprs(rightKeys)),
			Children: []*Node{leftNode, rightNode},
			Cols:     combined,
			Est:      est,
			Build: func() (exec.Operator, error) {
				l, err := buildChild(leftNode)
				if err != nil {
					return nil, err
				}
				r, err := buildChild(rightNode)
				if err != nil {
					return nil, err
				}
				return &exec.HashJoin{
					LeftKeys: leftKeys, RightKeys: rightKeys,
					Left: l, Right: r,
				}, nil
			},
		}
		rel = &relation{node: node, cols: combined, est: est}
	}
	rel.cols = combined

	if len(residual) > 0 {
		b := &binder{pl: pl, scope: &scope{cols: combined}}
		pred, err := b.bind(joinConjuncts(residual))
		if err != nil {
			return nil, nil, err
		}
		rel = filterRelation(rel, pred)
	}
	return rel, remaining, nil
}

// orderedMergeJoin exploits interesting orders: when both serial inputs
// already stream in join-key order — index scans, whose key order the
// relation advertises, or clustered scans — a merge join consumes them
// directly: no hash table, no sort, and the key order survives for
// consumers above. Both sides may hold duplicate keys (the operator
// buffers right groups and replays them), and NULL keys never join on
// either the hash or the merge path, so results are identical.
func (pl *Planner) orderedMergeJoin(left, right *relation,
	leftKeyIdents, rightKeyIdents []*sqlparse.Ident,
	leftKeys, rightKeys []expr.Expr, combined []ColMeta) *relation {

	if len(leftKeyIdents) != 1 || left.parts != nil || right.parts != nil {
		return nil
	}
	if !orderedOnIdent(left, leftKeyIdents[0]) || !orderedOnIdent(right, rightKeyIdents[0]) {
		return nil
	}
	est := joinOutputEstimate(left, right, leftKeyIdents, rightKeyIdents)
	leftNode, rightNode := left.node, right.node
	node := &Node{
		Op:       "Merge Join (Inner Join)",
		Detail:   fmt.Sprintf("MERGE:[%s]=[%s] (interesting order)", describeExprs(leftKeys), describeExprs(rightKeys)),
		Children: []*Node{leftNode, rightNode},
		Cols:     combined,
		Est:      est,
		Build: func() (exec.Operator, error) {
			l, err := buildChild(leftNode)
			if err != nil {
				return nil, err
			}
			r, err := buildChild(rightNode)
			if err != nil {
				return nil, err
			}
			return &exec.MergeJoin{
				LeftKeys: leftKeys, RightKeys: rightKeys,
				Left: l, Right: r,
			}, nil
		},
	}
	return &relation{node: node, cols: combined, ordered: left.ordered[:1], est: est}
}

// joinOutputEstimate estimates an equi-join's output cardinality from
// the post-filter input estimates and the join keys' NDVs (containment
// assumption: the smaller key domain is contained in the larger, so rows
// pair through max(NDV) distinct keys). Falls back to max(l, r) — exact
// for key/foreign-key joins — when either NDV is unknown.
func joinOutputEstimate(left, right *relation, leftKeyIdents, rightKeyIdents []*sqlparse.Ident) int64 {
	return stats.JoinCardinality(left.est, right.est,
		keysNDV(left, leftKeyIdents), keysNDV(right, rightKeyIdents))
}

// partitionedJoinRelation plans the Grace-style parallel partitioned hash
// join: both sides hash-partition, DOP workers own disjoint partitions,
// and partitions whose build side exceeds the planner's JoinMemoryBudget
// spill to the engine's spill store and are re-joined per partition.
// Statistics steer every physical knob: the build side comes from the
// post-filter estimates, the fan-out and spill pre-partitioning from the
// estimated build footprint, and the probe-side Bloom filter is dropped
// when nearly every probe row would pass it anyway.
func (pl *Planner) partitionedJoinRelation(left, right *relation,
	leftKeyIdents, rightKeyIdents []*sqlparse.Ident,
	leftKeys, rightKeys []expr.Expr, combined []ColMeta) *relation {

	// Build on the smaller estimated input; ties (and two unknowns) keep
	// the right side, matching the serial hash join's convention.
	buildLeft := left.est < right.est
	buildSide := "right"
	build, probe := right, left
	buildIdents, probeIdents := rightKeyIdents, leftKeyIdents
	if buildLeft {
		buildSide = "left"
		build, probe = left, right
		buildIdents, probeIdents = leftKeyIdents, rightKeyIdents
	}
	outEst := joinOutputEstimate(left, right, leftKeyIdents, rightKeyIdents)

	// Partition fan-out: when the estimated build footprint exceeds half
	// the memory budget per default partition, widen the fan-out so each
	// partition's build side still fits comfortably.
	partitions := pl.JoinPartitions
	if partitions <= 0 {
		partitions = DefaultJoinPartitions
	}
	prePartition := 0
	var buildBytes int64
	if build.stats != nil && build.stats.AvgRowBytes > 0 && build.est > 0 {
		buildBytes = build.est * build.stats.AvgRowBytes
	}
	if buildBytes > 0 && pl.JoinMemoryBudget > 0 {
		if need := buildBytes/(pl.JoinMemoryBudget/2+1) + 1; need > int64(partitions) {
			partitions = int(nextPow2(need))
			if partitions > 256 {
				partitions = 256
			}
		}
		if buildBytes > pl.JoinMemoryBudget {
			// The build side cannot fit even after widening: pre-spill
			// enough partitions that the resident remainder fits, instead
			// of buffering everything and evicting mid-build.
			resident := int64(partitions) * pl.JoinMemoryBudget / buildBytes
			if pre := partitions - int(resident); pre > 0 {
				prePartition = pre
			}
		}
	}

	// Probe-side Bloom filter: skip it only when statistics say its pass
	// rate would be ~1 (nearly every probe key exists on the build side).
	bloom := pl.EnableJoinBloom
	if bloom {
		bNDV, pNDV := keysNDV(build, buildIdents), keysNDV(probe, probeIdents)
		if bNDV > 0 && pNDV > 0 {
			common := bNDV
			if pNDV < common {
				common = pNDV
			}
			if float64(common)/float64(pNDV) >= 0.75 {
				bloom = false
			}
		}
	}

	buildEst := build.est
	leftNode, rightNode := left.node, right.node
	// Declared before buildOp: under DOP > 1 the Build factory lives on
	// the gather node above, so the closure binds the join operator to
	// this display node's profile (spill and Bloom activity then renders
	// on the join line, not the exchange line).
	inner := &Node{
		Op:      "Hash Match (Partitioned Inner Join)",
		Cols:    combined,
		Est:     outEst,
		OwnProf: true,
	}
	buildOp := func() (exec.Operator, error) {
		j := &exec.PartitionedHashJoin{
			LeftKeys:          leftKeys,
			RightKeys:         rightKeys,
			BuildLeft:         buildLeft,
			Partitions:        partitions,
			MemoryBudget:      pl.JoinMemoryBudget,
			Spill:             pl.Provider.SpillStore(),
			Bloom:             bloom,
			BuildRowsEstimate: buildEst,
			PrePartition:      prePartition,
		}
		if left.parts != nil && left.partsN > 1 {
			ops, err := left.parts()
			if err != nil {
				return nil, err
			}
			j.LeftParts = ops
		} else {
			op, err := buildChild(leftNode)
			if err != nil {
				return nil, err
			}
			j.Left = op
		}
		if right.parts != nil && right.partsN > 1 {
			ops, err := right.parts()
			if err != nil {
				return nil, err
			}
			j.RightParts = ops
		} else {
			op, err := buildChild(rightNode)
			if err != nil {
				return nil, err
			}
			j.Right = op
		}
		if inner.Prof != nil {
			return exec.InstrumentOp(j, inner.Prof), nil
		}
		return j, nil
	}
	detail := fmt.Sprintf("HASH:[%s]=[%s] BUILD:%s PARTITIONS:%d",
		describeExprs(leftKeys), describeExprs(rightKeys), buildSide, partitions)
	if bloom {
		detail += " BLOOM"
	}
	if prePartition > 0 {
		detail += fmt.Sprintf(" PRESPILL:%d", prePartition)
	}
	inner.Detail = detail
	inner.Children = []*Node{leftNode, rightNode}
	node := inner
	if pl.DOP > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams)",
			Detail:   fmt.Sprintf("DOP %d", pl.DOP),
			Children: []*Node{inner},
			Cols:     combined,
			Est:      outEst,
			Build:    buildOp,
		}
	} else {
		// Serial DOP still uses the partitioned operator: partitioning is
		// what lets an over-budget build side spill instead of OOM.
		inner.Build = buildOp
	}
	return &relation{node: node, cols: combined, est: outEst}
}

func identExprs(ids []*sqlparse.Ident) []sqlparse.Expr {
	out := make([]sqlparse.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// tryMergeJoin returns a merge-join relation when both join inputs are
// base tables clustered on their single join key column; otherwise nil.
func (pl *Planner) tryMergeJoin(j *sqlparse.JoinRef, left, right *relation,
	leftKeyIdents, rightKeyIdents []*sqlparse.Ident,
	leftKeys, rightKeys []expr.Expr, conjuncts []sqlparse.Expr) *relationWithLeftovers {

	if len(leftKeyIdents) != 1 {
		return nil
	}
	lt, lok := j.Left.(*sqlparse.NamedTable)
	rt, rok := j.Right.(*sqlparse.NamedTable)
	if !lok || !rok {
		return nil
	}
	ltab, rtab := pl.Provider.Table(lt.Name), pl.Provider.Table(rt.Name)
	if ltab == nil || rtab == nil || !ltab.Clustered || !rtab.Clustered {
		return nil
	}
	if !clusteredOnKey(ltab, leftKeyIdents[0].Name) || !clusteredOnKey(rtab, rightKeyIdents[0].Name) {
		return nil
	}
	if keyType(ltab) != catalog.TypeInt && keyType(ltab) != catalog.TypeBigInt {
		return nil
	}

	// Pushdown into either side, tracking each side's estimated
	// selectivity for the post-filter input cardinalities.
	lqual := tableQual(lt)
	rqual := tableQual(rt)
	lts, rts := pl.Provider.Stats(ltab), pl.Provider.Stats(rtab)
	leftScope := &scope{cols: left.cols}
	rightScope := &scope{cols: right.cols}
	var leftPred, rightPred expr.Expr
	var leftovers []sqlparse.Expr
	selL, selR := 1.0, 1.0
	for _, c := range conjuncts {
		switch {
		case refsResolvableIn(c, leftScope):
			b := &binder{pl: pl, scope: leftScope}
			p, err := b.bind(c)
			if err != nil {
				return nil
			}
			leftPred = andExpr(leftPred, p)
			selL *= conjunctSelectivity(lts, c)
		case refsResolvableIn(c, rightScope):
			b := &binder{pl: pl, scope: rightScope}
			p, err := b.bind(c)
			if err != nil {
				return nil
			}
			rightPred = andExpr(rightPred, p)
			selR *= conjunctSelectivity(rts, c)
		default:
			leftovers = append(leftovers, c)
		}
	}

	lest := scaleEst(pl.Provider.RowCountEstimate(ltab), selL)
	rest := scaleEst(pl.Provider.RowCountEstimate(rtab), selR)
	// The post-filter estimates price the join output, but parallelism
	// follows the raw scan sizes: a merge join reads its full key ranges
	// even when the pushed filters drop most rows.
	scanRows := pl.Provider.RowCountEstimate(ltab)
	if r := pl.Provider.RowCountEstimate(rtab); r > scanRows {
		scanRows = r
	}
	partsN := pl.partitionCount(scanRows)
	colNDV := func(ts *stats.TableStats, name string, capRows int64) int64 {
		if ts == nil {
			return 0
		}
		n := ts.ColumnNDV(name)
		if n > 0 && capRows > 0 && n > capRows {
			n = capRows
		}
		return n
	}
	est := stats.JoinCardinality(lest, rest,
		colNDV(lts, leftKeyIdents[0].Name, lest), colNDV(rts, rightKeyIdents[0].Name, rest))

	combined := append(append([]ColMeta{}, left.cols...), right.cols...)
	mjDetail := fmt.Sprintf("MERGE:[%s.%s]=[%s.%s]", lqual, leftKeyIdents[0].Name, rqual, rightKeyIdents[0].Name)
	scanDetail := func(tab *catalog.Table, pred expr.Expr) string {
		d := fmt.Sprintf("[%s] (ordered)", tab.Name)
		if pred != nil {
			d += fmt.Sprintf(" WHERE:(%s)", pred)
		}
		return d
	}
	// The display nodes are declared before buildParts so the closure can
	// bind the per-range scan and join chains to them at build time
	// (OwnProf makes Instrument allocate profiles although only the root
	// node carries a Build factory).
	lleaf := &Node{Op: "Clustered Index Scan", Detail: scanDetail(ltab, leftPred), Est: lest, OwnProf: true}
	rleaf := &Node{Op: "Clustered Index Scan", Detail: scanDetail(rtab, rightPred), Est: rest, OwnProf: true}
	mjNode := &Node{
		Op:       "Merge Join (Inner Join)",
		Detail:   mjDetail,
		Children: []*Node{lleaf, rleaf},
		Cols:     combined,
		Est:      est,
		OwnProf:  true,
	}
	buildParts := func() ([]exec.Operator, error) {
		var ranges [][2]*sqltypes.Value
		if partsN > 1 {
			var err error
			ranges, err = pl.Provider.KeyRanges(ltab, partsN)
			if err != nil {
				return nil, err
			}
		} else {
			ranges = [][2]*sqltypes.Value{{nil, nil}}
		}
		ops := make([]exec.Operator, 0, len(ranges))
		for _, rg := range ranges {
			lscan, err := pl.Provider.OrderedScanRange(ltab, rg[0], rg[1])
			if err != nil {
				return nil, err
			}
			rscan, err := pl.Provider.OrderedScanRange(rtab, rg[0], rg[1])
			if err != nil {
				return nil, err
			}
			var lop exec.Operator = lscan
			if leftPred != nil {
				lop = &exec.Filter{Pred: leftPred, Child: lop}
			}
			var rop exec.Operator = rscan
			if rightPred != nil {
				rop = &exec.Filter{Pred: rightPred, Child: rop}
			}
			if lleaf.Prof != nil {
				lop = exec.InstrumentOp(lop, lleaf.Prof)
			}
			if rleaf.Prof != nil {
				rop = exec.InstrumentOp(rop, rleaf.Prof)
			}
			var mj exec.Operator = &exec.MergeJoin{
				LeftKeys: leftKeys, RightKeys: rightKeys,
				Left: lop, Right: rop,
			}
			if mjNode.Prof != nil {
				mj = exec.InstrumentOp(mj, mjNode.Prof)
			}
			ops = append(ops, mj)
		}
		return ops, nil
	}
	var node *Node
	if partsN > 1 {
		node = &Node{
			Op:       "Parallelism (Gather Streams, ordered)",
			Detail:   fmt.Sprintf("DOP %d, range-partitioned on %s.%s", partsN, lqual, leftKeyIdents[0].Name),
			Children: []*Node{mjNode},
			Cols:     combined,
			Est:      est,
			Build: func() (exec.Operator, error) {
				ops, err := buildParts()
				if err != nil {
					return nil, err
				}
				return &exec.Gather{Children: ops, Ordered: true}, nil
			},
		}
	} else {
		node = mjNode
		mjNode.Build = func() (exec.Operator, error) {
			ops, err := buildParts()
			if err != nil {
				return nil, err
			}
			return ops[0], nil
		}
	}
	rel := &relationWithLeftovers{
		relation: relation{
			node: node,
			cols: combined,
			// Output is ordered by the join key.
			ordered: []ColMeta{{Qual: lqual, Name: leftKeyIdents[0].Name}},
			est:     est,
		},
		leftoverConjuncts: leftovers,
	}
	if partsN > 1 {
		rel.parts = buildParts
		rel.partsN = partsN
	}
	return rel
}

// relationWithLeftovers carries unpushed conjuncts out of tryMergeJoin.
type relationWithLeftovers struct {
	relation
	leftoverConjuncts []sqlparse.Expr
}

func clusteredOnKey(t *catalog.Table, col string) bool {
	if len(t.PrimaryKey) == 0 {
		return false
	}
	return strings.EqualFold(t.Columns[t.PrimaryKey[0]].Name, col)
}

func keyType(t *catalog.Table) catalog.TypeName {
	return t.Columns[t.PrimaryKey[0]].Type.Name
}

func tableQual(t *sqlparse.NamedTable) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

func andExpr(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	return &expr.Logic{And: true, L: a, R: b}
}
