package plan

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
)

// fakeProvider serves two in-memory tables: a heap "t" and a clustered
// pair "left"/"right" keyed by their first column.
type fakeProvider struct {
	scalars *expr.Registry
	tables  map[string]*catalog.Table
	rows    map[string][]sqltypes.Row
	// tstats are per-table statistics served by Stats (nil = no ANALYZE);
	// rowCounts overrides RowCountEstimate for tables whose in-memory row
	// slice stands in for a much larger table.
	tstats    map[string]*stats.TableStats
	rowCounts map[string]int64
	// pageStats, when set, answers HeapPageStats; nil = (0, 0) ("no
	// information", the planner's cardinality fallback).
	pageStats func(t *catalog.Table, filters []storage.ZoneFilter) (kept, total int64)
	// prunedCalls counts ScanPartitionsPruned invocations that carried
	// zone filters (observability for access-path tests).
	prunedCalls int
}

func newFakeProvider() *fakeProvider {
	intT, _ := catalog.ParseType("BIGINT")
	strT, _ := catalog.ParseType("VARCHAR(50)")
	p := &fakeProvider{
		scalars:   expr.NewRegistry(),
		tables:    map[string]*catalog.Table{},
		rows:      map[string][]sqltypes.Row{},
		tstats:    map[string]*stats.TableStats{},
		rowCounts: map[string]int64{},
	}
	p.tables["t"] = &catalog.Table{
		ID: 1, Name: "t",
		Columns: []catalog.Column{{Name: "a", Type: intT}, {Name: "s", Type: strT}},
	}
	p.tables["u"] = &catalog.Table{
		ID: 4, Name: "u",
		Columns: []catalog.Column{{Name: "b", Type: intT}, {Name: "v", Type: strT}},
	}
	p.tables["left"] = &catalog.Table{
		ID: 2, Name: "left_t",
		Columns:    []catalog.Column{{Name: "id", Type: intT}, {Name: "lv", Type: strT}},
		PrimaryKey: []int{0}, Clustered: true,
	}
	p.tables["right_t"] = &catalog.Table{
		ID: 3, Name: "right_t",
		Columns:    []catalog.Column{{Name: "rid", Type: intT}, {Name: "rv", Type: strT}},
		PrimaryKey: []int{0}, Clustered: true,
	}
	for i := 0; i < 10; i++ {
		p.rows["t"] = append(p.rows["t"], sqltypes.Row{
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("s%d", i%3)),
		})
		if i < 4 {
			p.rows["u"] = append(p.rows["u"], sqltypes.Row{
				sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("U%d", i)),
			})
		}
		p.rows["left_t"] = append(p.rows["left_t"], sqltypes.Row{
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("L%d", i)),
		})
		if i%2 == 0 {
			p.rows["right_t"] = append(p.rows["right_t"], sqltypes.Row{
				sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("R%d", i)),
			})
		}
	}
	return p
}

func (p *fakeProvider) Table(name string) *catalog.Table {
	if t, ok := p.tables[strings.ToLower(name)]; ok {
		return t
	}
	return nil
}
func (p *fakeProvider) Scalar(name string) (expr.ScalarFunc, bool) { return p.scalars.Lookup(name) }
func (p *fakeProvider) Agg(name string) (exec.AggFactory, bool) {
	if f := exec.BuiltinAggregate(name); f != nil {
		return f, true
	}
	return nil, false
}
func (p *fakeProvider) TVF(string) (TVF, bool) { return nil, false }
func (p *fakeProvider) ScanPartitions(t *catalog.Table, parts int) ([]exec.Operator, error) {
	rows := p.rows[strings.ToLower(t.Name)]
	if parts < 1 {
		parts = 1
	}
	var ops []exec.Operator
	for i := 0; i < parts; i++ {
		lo, hi := len(rows)*i/parts, len(rows)*(i+1)/parts
		ops = append(ops, exec.NewValues(rows[lo:hi]))
	}
	return ops, nil
}
func (p *fakeProvider) ScanPartitionsPruned(t *catalog.Table, parts int, filters []storage.ZoneFilter) ([]exec.Operator, error) {
	if len(filters) > 0 {
		p.prunedCalls++
	}
	return p.ScanPartitions(t, parts)
}
func (p *fakeProvider) HeapPageStats(t *catalog.Table, filters []storage.ZoneFilter) (int64, int64) {
	if p.pageStats == nil {
		return 0, 0
	}
	return p.pageStats(t, filters)
}

// IndexScan serves rows whose first-index-column value falls in the
// bounds, sorted by that column — the same contract as the engine's
// B-tree-backed scan (NULLs never match a bound).
func (p *fakeProvider) IndexScan(t *catalog.Table, name string, lo, hi *sqltypes.Value, loInc, hiInc bool) (exec.Operator, error) {
	ix := t.IndexByName(name)
	if ix == nil {
		return nil, fmt.Errorf("fake: no index %q on %s", name, t.Name)
	}
	col := ix.Columns[0]
	var out []sqltypes.Row
	for _, r := range p.rows[strings.ToLower(t.Name)] {
		v := r[col]
		if v.IsNull() {
			continue
		}
		if lo != nil {
			if c := sqltypes.Compare(v, *lo); c < 0 || (c == 0 && !loInc) {
				continue
			}
		}
		if hi != nil {
			if c := sqltypes.Compare(v, *hi); c > 0 || (c == 0 && !hiInc) {
				continue
			}
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return sqltypes.Compare(out[i][col], out[j][col]) < 0
	})
	return exec.NewValues(out), nil
}

func (p *fakeProvider) OrderedScanRange(t *catalog.Table, lo, hi *sqltypes.Value) (exec.Operator, error) {
	var out []sqltypes.Row
	for _, r := range p.rows[strings.ToLower(t.Name)] {
		if lo != nil && sqltypes.Compare(r[0], *lo) < 0 {
			continue
		}
		if hi != nil && sqltypes.Compare(r[0], *hi) >= 0 {
			continue
		}
		out = append(out, r)
	}
	return exec.NewValues(out), nil
}
func (p *fakeProvider) KeyRanges(t *catalog.Table, parts int) ([][2]*sqltypes.Value, error) {
	mid := sqltypes.NewInt(5)
	if parts <= 1 {
		return [][2]*sqltypes.Value{{nil, nil}}, nil
	}
	return [][2]*sqltypes.Value{{nil, &mid}, {&mid, nil}}, nil
}
func (p *fakeProvider) RowCountEstimate(t *catalog.Table) int64 {
	if n, ok := p.rowCounts[strings.ToLower(t.Name)]; ok {
		return n
	}
	return int64(len(p.rows[strings.ToLower(t.Name)]))
}

func (p *fakeProvider) Stats(t *catalog.Table) *stats.TableStats {
	return p.tstats[strings.ToLower(t.Name)]
}

// memSpillStore is an in-memory exec.SpillStore for planner tests.
type memSpillStore struct{}

type memSpillFile struct {
	mu   sync.Mutex
	rows []sqltypes.Row
	size int64
}

func (memSpillStore) Create() (exec.SpillFile, error) { return &memSpillFile{}, nil }

func (f *memSpillFile) Append(r sqltypes.Row) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rows = append(f.rows, r.Clone())
	f.size += int64(len(r)) * 16
	return nil
}
func (f *memSpillFile) Rows() int64  { f.mu.Lock(); defer f.mu.Unlock(); return int64(len(f.rows)) }
func (f *memSpillFile) Bytes() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.size }
func (f *memSpillFile) Iter() (exec.RowIterator, error) {
	return &exec.SliceIterator{Rows: f.rows}, nil
}
func (f *memSpillFile) Release() error { return nil }

func (p *fakeProvider) SpillStore() exec.SpillStore { return memSpillStore{} }

// The fake's scan partitions are row slices, not page-backed batch
// sources, so plans stay row-at-a-time (row-to-batch shims would only
// add overhead here).
func (p *fakeProvider) VectorizedScan(*catalog.Table) bool { return false }

func planQuery(t *testing.T, pl *Planner, sql string) *Node {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := pl.PlanSelect(stmt.(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func runPlan(t *testing.T, node *Node) []sqltypes.Row {
	t.Helper()
	op, err := node.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(&exec.Context{DOP: 2}, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestPlanSimpleSelect(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT a, s FROM t WHERE a >= 7")
	rows := runPlan(t, node)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if node.Cols[0].Name != "a" || node.Cols[1].Name != "s" {
		t.Errorf("cols = %v", node.Cols)
	}
}

func TestPlanPushdownShowsInScan(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT a FROM t WHERE a = 1")
	text := node.Explain()
	if !strings.Contains(text, "Table Scan") || !strings.Contains(text, "WHERE:") {
		t.Errorf("predicate not pushed into scan:\n%s", text)
	}
	if strings.Contains(text, "|--Filter") {
		t.Errorf("stray filter node above pushed scan:\n%s", text)
	}
}

func TestPlanParallelDecision(t *testing.T) {
	p := newFakeProvider()
	pl := NewPlanner(p, 2)
	pl.ParallelThreshold = 5 // our fake table has 10 rows
	node := planQuery(t, pl, "SELECT COUNT(*) FROM t")
	if !strings.Contains(node.Explain(), "Parallelism (Gather Streams)") {
		t.Errorf("expected parallel plan:\n%s", node.Explain())
	}
	rows := runPlan(t, node)
	if rows[0][0].I != 10 {
		t.Errorf("count = %v", rows)
	}
	// Small tables stay serial.
	pl.ParallelThreshold = 1000
	node2 := planQuery(t, pl, "SELECT COUNT(*) FROM t")
	if strings.Contains(node2.Explain(), "Parallelism") {
		t.Errorf("small table got a parallel plan:\n%s", node2.Explain())
	}
}

func TestPlanMergeJoinSelection(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT lv, rv FROM left JOIN right_t ON id = rid")
	text := node.Explain()
	if !strings.Contains(text, "Merge Join") {
		t.Fatalf("clustered join did not choose merge join:\n%s", text)
	}
	rows := runPlan(t, node)
	if len(rows) != 5 {
		t.Errorf("join rows = %v", rows)
	}
}

func TestPlanHashJoinFallback(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	// Heap table on one side: no merge join possible.
	node := planQuery(t, pl, "SELECT s, rv FROM t JOIN right_t ON a = rid")
	text := node.Explain()
	if !strings.Contains(text, "Hash Match (Inner Join)") {
		t.Fatalf("expected hash join:\n%s", text)
	}
	rows := runPlan(t, node)
	if len(rows) != 5 {
		t.Errorf("join rows = %v", rows)
	}
}

func TestPlanParallelMergeJoinRanges(t *testing.T) {
	p := newFakeProvider()
	pl := NewPlanner(p, 2)
	pl.ParallelThreshold = 5
	node := planQuery(t, pl, "SELECT COUNT(*) FROM left JOIN right_t ON id = rid")
	text := node.Explain()
	// The aggregate absorbs the merge-join partitions: each worker runs
	// its own range's merge join and the partials merge.
	if !strings.Contains(text, "Merge Join") || !strings.Contains(text, "Partial Aggregate") {
		t.Fatalf("expected parallel aggregate over merge-join partitions:\n%s", text)
	}
	// Without aggregation the ordered gather shows its partitioning.
	plain := planQuery(t, pl, "SELECT lv, rv FROM left JOIN right_t ON id = rid")
	if !strings.Contains(plain.Explain(), "range-partitioned") {
		t.Fatalf("expected range-partitioned gather:\n%s", plain.Explain())
	}
	rows := runPlan(t, node)
	if rows[0][0].I != 5 {
		t.Errorf("count = %v", rows)
	}
}

func TestPlanStreamAggregateOverClusteredOrder(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT id, COUNT(*) FROM left GROUP BY id")
	if !strings.Contains(node.Explain(), "Stream Aggregate") {
		t.Errorf("group-by on clustered key should stream aggregate:\n%s", node.Explain())
	}
	// Grouping a heap column hashes instead.
	node2 := planQuery(t, pl, "SELECT s, COUNT(*) FROM t GROUP BY s")
	if !strings.Contains(node2.Explain(), "Hash Match (Aggregate)") {
		t.Errorf("heap group-by should hash aggregate:\n%s", node2.Explain())
	}
}

func TestPlanErrors(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	cases := []string{
		"SELECT nope FROM t",
		"SELECT a FROM missing",
		"SELECT t.a FROM t JOIN right_t ON a < rid", // no equi conjunct
		"SELECT UNKNOWNFN(a) FROM t",
		"SELECT a FROM t HAVING COUNT(*) > 1 ORDER BY a", // HAVING w/o group: collected agg makes it grouped; 'a' unresolvable
		"SELECT * FROM t GROUP BY a",
		"SELECT COUNT(*) FROM t WHERE COUNT(*) > 1", // aggregate in WHERE
	}
	for _, sql := range cases {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := pl.PlanSelect(stmt.(*sqlparse.Select)); err == nil {
			t.Errorf("PlanSelect(%q) succeeded", sql)
		}
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	stmt, _ := sqlparse.Parse("SELECT id FROM left l1 JOIN left l2 ON l1.id = l2.id")
	if _, err := pl.PlanSelect(stmt.(*sqlparse.Select)); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column error missing, got %v", err)
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT a * 2 AS dbl FROM t ORDER BY dbl DESC")
	rows := runPlan(t, node)
	if rows[0][0].I != 18 || rows[len(rows)-1][0].I != 0 {
		t.Errorf("alias order-by rows = %v", rows)
	}
}

func TestExplainTreeShape(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s")
	text := node.Explain()
	// Indentation encodes the tree.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 3 {
		t.Fatalf("explain too shallow:\n%s", text)
	}
	if !strings.HasPrefix(lines[0], "|--") {
		t.Errorf("root line = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "|--") {
			t.Errorf("line missing branch marker: %q", l)
		}
	}
}

// TestPlanPartitionedJoin verifies the planner emits the parallel
// partitioned hash join once either input passes the parallel threshold,
// picks the smaller estimated side as the build side, and that the plan
// executes to the same rows as the serial hash join.
func TestPlanPartitionedJoin(t *testing.T) {
	serial := NewPlanner(newFakeProvider(), 1)
	want := runPlan(t, planQuery(t, serial, "SELECT b, s FROM u JOIN t ON u.b = t.a"))

	par := NewPlanner(newFakeProvider(), 4)
	par.ParallelThreshold = 4 // t has 10 rows, u has 4
	node := planQuery(t, par, "SELECT b, s FROM u JOIN t ON u.b = t.a")
	text := node.Explain()
	if !strings.Contains(text, "Hash Match (Partitioned Inner Join)") {
		t.Fatalf("expected partitioned join plan:\n%s", text)
	}
	// u (4 rows) is smaller than t (10): it becomes the build side.
	if !strings.Contains(text, "BUILD:left") {
		t.Errorf("expected BUILD:left in plan:\n%s", text)
	}
	if !strings.Contains(text, "Parallelism (Gather Streams)") {
		t.Errorf("expected gather exchange in plan:\n%s", text)
	}
	got := runPlan(t, node)
	canon := func(rows []sqltypes.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	if gs, ws := canon(got), canon(want); !reflect.DeepEqual(gs, ws) {
		t.Errorf("partitioned join rows %v, serial %v", gs, ws)
	}
}

// TestPlanPartitionedJoinBelowThreshold keeps small joins on the serial
// hash join (no exchange overhead for a few pages of rows).
func TestPlanPartitionedJoinBelowThreshold(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 4) // default threshold 2048 >> 10 rows
	node := planQuery(t, pl, "SELECT b, s FROM u JOIN t ON u.b = t.a")
	if text := node.Explain(); !strings.Contains(text, "Hash Match (Inner Join)") {
		t.Errorf("expected serial hash join below threshold:\n%s", text)
	}
}

// uniformIntStats hand-builds table statistics for an integer column
// uniformly distributed over [0, max): NDV = max, a 10-bucket equi-depth
// histogram, exact min/max.
func uniformIntStats(tableID uint32, table, col string, rows, max int64) *stats.TableStats {
	ts := &stats.TableStats{
		TableID: tableID, Table: table,
		RowCount: rows, AvgRowBytes: 64,
		Columns: []stats.ColumnStats{{Name: col, NDV: max, HistRows: rows}},
	}
	mn, mx := sqltypes.NewInt(0), sqltypes.NewInt(max-1)
	c := &ts.Columns[0]
	c.Min, c.Max = &mn, &mx
	const buckets = 10
	for b := int64(1); b <= buckets; b++ {
		c.Histogram = append(c.Histogram, stats.Bucket{
			Upper: sqltypes.NewInt(max*b/buckets - 1),
			Rows:  rows / buckets,
			NDV:   max / buckets,
		})
	}
	return ts
}

// TestPlanPostFilterPartitionCount: scan parallelism follows the pages a
// scan actually reads, not the post-filter output estimate. A selective
// point query over a large indexed table avoids DOP exchange workers by
// taking the index (serial); the same predicate without a usable index
// keeps the parallel scan, because it still reads every page.
func TestPlanPostFilterPartitionCount(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	p.tables["t"].Indexes = []catalog.Index{{Name: "idx_a", Columns: []int{0}}}
	pl := NewPlanner(p, 4) // default threshold 2048

	// Without statistics the default equality selectivity (0.1) leaves
	// 10k estimated index rows — costlier than the ~1.6k-page full scan,
	// so the parallel heap scan stays.
	node := planQuery(t, pl, "SELECT s FROM t WHERE a = 1")
	if !strings.Contains(node.Explain(), "Parallelism (Gather Streams)") {
		t.Fatalf("pre-stats point query should stay a parallel scan:\n%s", node.Explain())
	}

	// With NDV statistics the estimate collapses to ~2 rows: the index
	// point lookup wins and runs serial.
	p.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	node = planQuery(t, pl, "SELECT s FROM t WHERE a = 1")
	text := node.Explain()
	if !strings.Contains(text, "Index Scan") || strings.Contains(text, "Parallelism") {
		t.Fatalf("post-stats point query should be a serial index scan:\n%s", text)
	}
	// The unfiltered scan stays parallel.
	node = planQuery(t, pl, "SELECT s FROM t")
	if !strings.Contains(node.Explain(), "Parallelism (Gather Streams)") {
		t.Fatalf("unfiltered scan lost parallelism:\n%s", node.Explain())
	}
}

// TestPlanAccessPathCostRegression is the satellite-1 regression: the
// same selective predicate picks the index on a large table but stays on
// the full scan for a tiny one, because page I/O — not output rows — is
// the cost basis.
func TestPlanAccessPathCostRegression(t *testing.T) {
	large := newFakeProvider()
	large.rowCounts["t"] = 100_000
	large.tables["t"].Indexes = []catalog.Index{{Name: "idx_a", Columns: []int{0}}}
	large.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	pl := NewPlanner(large, 4)
	text := planQuery(t, pl, "SELECT s FROM t WHERE a = 1").Explain()
	if !strings.Contains(text, "Index Scan") || !strings.Contains(text, "idx_a") {
		t.Fatalf("selective predicate on large table should take the index:\n%s", text)
	}

	tiny := newFakeProvider() // 10 rows
	tiny.tables["t"].Indexes = []catalog.Index{{Name: "idx_a", Columns: []int{0}}}
	tiny.tstats["t"] = uniformIntStats(1, "t", "a", 10, 10)
	pl = NewPlanner(tiny, 4)
	text = planQuery(t, pl, "SELECT s FROM t WHERE a = 1").Explain()
	if strings.Contains(text, "Index Scan") {
		t.Fatalf("tiny table should stay on the full scan:\n%s", text)
	}
	if !strings.Contains(text, "full scan") {
		t.Fatalf("losing index candidate should annotate the full scan:\n%s", text)
	}
	// The chosen plans execute to the same rows.
	if rows := runPlan(t, planQuery(t, pl, "SELECT s FROM t WHERE a = 1")); len(rows) != 1 {
		t.Fatalf("full-scan rows = %v", rows)
	}
	pl.ForcePath = "index"
	if rows := runPlan(t, planQuery(t, pl, "SELECT s FROM t WHERE a = 1")); len(rows) != 1 {
		t.Fatalf("forced index rows = %v", rows)
	}
}

// TestPlanZoneMapPruning: zone-map page statistics show up in the scan
// annotation, shrink the parallelism basis, and route the filters into
// ScanPartitionsPruned.
func TestPlanZoneMapPruning(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	p.pageStats = func(_ *catalog.Table, filters []storage.ZoneFilter) (int64, int64) {
		if len(filters) > 0 {
			return 100, 1600 // the range predicate prunes ieq 94% of pages
		}
		return 1600, 1600
	}
	pl := NewPlanner(p, 4)
	node := planQuery(t, pl, "SELECT s FROM t WHERE a >= 7 AND a <= 8")
	text := node.Explain()
	if !strings.Contains(text, "zonemap-pruned(100/1600 pages)") {
		t.Fatalf("zone pruning not annotated:\n%s", text)
	}
	// 100k rows * 100/1600 pages = 6250 scan basis -> parallel but narrow
	// (6250/2048 = 3 partitions, not the full DOP... still parallel).
	if !strings.Contains(text, "Parallelism (Gather Streams)") {
		t.Fatalf("pruned scan of 6k rows should stay parallel:\n%s", text)
	}
	runPlan(t, node)
	if p.prunedCalls == 0 {
		t.Fatal("zone filters never reached ScanPartitionsPruned")
	}
}

// TestPlanExplainAccessPathFlip: EXPLAIN flips from full scan to index
// scan as the predicate tightens from a wide range to a point.
func TestPlanExplainAccessPathFlip(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	p.tables["t"].Indexes = []catalog.Index{{Name: "idx_a", Columns: []int{0}}}
	p.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	pl := NewPlanner(p, 4)

	wide := planQuery(t, pl, "SELECT s FROM t WHERE a >= 0").Explain()
	if strings.Contains(wide, "Index Scan") || !strings.Contains(wide, "Table Scan") {
		t.Fatalf("wide range should full-scan:\n%s", wide)
	}
	point := planQuery(t, pl, "SELECT s FROM t WHERE a = 123").Explain()
	if !strings.Contains(point, "Index Scan") || !strings.Contains(point, "idx_a (123..123)") {
		t.Fatalf("point predicate should flip to the index with bounds shown:\n%s", point)
	}
	narrow := planQuery(t, pl, "SELECT s FROM t WHERE a > 100 AND a <= 140").Explain()
	if !strings.Contains(narrow, "Index Scan") || !strings.Contains(narrow, "(100..140)") {
		t.Fatalf("narrow range should flip to the index:\n%s", narrow)
	}
}

// TestPlanIndexOrderFeedsConsumers: index-provided order elides ORDER BY
// sorts, streams ROW_NUMBER, and feeds a merge join when both sides
// arrive index-ordered.
func TestPlanIndexOrderFeedsConsumers(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	p.tables["t"].Indexes = []catalog.Index{{Name: "idx_a", Columns: []int{0}}}
	p.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	pl := NewPlanner(p, 4)

	// ORDER BY on the index column above an index scan: no Sort node.
	node := planQuery(t, pl, "SELECT a FROM t WHERE a = 3 ORDER BY a")
	if text := node.Explain(); strings.Contains(text, "Sort") || !strings.Contains(text, "Index Scan") {
		t.Fatalf("index order should elide the sort:\n%s", text)
	}
	if rows := runPlan(t, node); len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("sort-elided rows = %v", rows)
	}

	// ROW_NUMBER over the index order streams without buffering.
	node = planQuery(t, pl, "SELECT a, ROW_NUMBER() OVER (ORDER BY a) FROM t WHERE a >= 7 AND a <= 8")
	if text := node.Explain(); !strings.Contains(text, "(input ordered)") {
		t.Fatalf("ROW_NUMBER should ride the index order:\n%s", text)
	}
	rows := runPlan(t, node)
	if len(rows) != 2 || rows[0][1].I != 1 || rows[1][1].I != 2 {
		t.Fatalf("windowed rows = %v", rows)
	}

	// Both sides index-ordered on the join key: merge join, no hash.
	p.rowCounts["u"] = 100_000
	p.tables["u"].Indexes = []catalog.Index{{Name: "idx_b", Columns: []int{0}}}
	p.tstats["u"] = uniformIntStats(4, "u", "b", 100_000, 50_000)
	node = planQuery(t, pl, "SELECT s, v FROM t JOIN u ON a = b WHERE a >= 1 AND a <= 3 AND b >= 1 AND b <= 3")
	text := node.Explain()
	if !strings.Contains(text, "Merge Join") || !strings.Contains(text, "interesting order") {
		t.Fatalf("index-ordered join sides should merge join:\n%s", text)
	}
	if rows := runPlan(t, node); len(rows) != 3 {
		t.Fatalf("merge join rows = %v", rows)
	}
}

// TestPlanEstimateAnnotations: EXPLAIN must carry est=N rows on scans,
// joins and aggregates so estimate quality is visible.
func TestPlanEstimateAnnotations(t *testing.T) {
	p := newFakeProvider()
	pl := NewPlanner(p, 1)
	text := planQuery(t, pl, "SELECT a FROM t").Explain()
	if !strings.Contains(text, "(est=10 rows)") {
		t.Errorf("scan estimate missing:\n%s", text)
	}
	text = planQuery(t, pl, "SELECT b, s FROM u JOIN t ON u.b = t.a").Explain()
	if !strings.Contains(text, "est=") {
		t.Errorf("join estimate missing:\n%s", text)
	}
	p.tstats["t"] = uniformIntStats(1, "t", "a", 10, 10)
	text = planQuery(t, pl, "SELECT a, COUNT(*) FROM t GROUP BY a").Explain()
	if !strings.Contains(text, "Hash Match (Aggregate)") || !strings.Contains(text, "(est=10 rows)") {
		t.Errorf("aggregate group estimate missing:\n%s", text)
	}
}

// TestPlanStatsBuildSideFlip: the same skewed join must flip its build
// side once statistics reveal the filtered side is tiny.
func TestPlanStatsBuildSideFlip(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 10_000
	p.rowCounts["u"] = 3_000
	pl := NewPlanner(p, 4)
	sql := "SELECT b, s FROM u JOIN t ON u.b = t.a WHERE t.a < 5"

	// Pre-stats: default range selectivity (1/3) keeps t's estimate at
	// ~3333 > u's 3000, so the build side is u (the left input).
	text := planQuery(t, pl, sql).Explain()
	if !strings.Contains(text, "Hash Match (Partitioned Inner Join)") {
		t.Fatalf("expected partitioned join:\n%s", text)
	}
	if !strings.Contains(text, "BUILD:left") {
		t.Fatalf("pre-stats build side should be left (u):\n%s", text)
	}

	// Post-ANALYZE: the histogram knows a < 5 keeps ~5 of 10000 rows, so
	// the filtered t becomes the build side (the right input).
	p.tstats["t"] = uniformIntStats(1, "t", "a", 10_000, 10_000)
	node := planQuery(t, pl, sql)
	text = node.Explain()
	if !strings.Contains(text, "BUILD:right") {
		t.Fatalf("post-stats build side should flip to right (filtered t):\n%s", text)
	}
	// The flipped plan still executes correctly over the backing rows.
	rows := runPlan(t, node)
	if len(rows) != 4 { // u.b in 0..3 joins t.a in 0..4
		t.Errorf("flipped join rows = %v", rows)
	}
}

// TestPlanJoinBloomDecision: the Bloom filter stays on by default, is
// dropped when statistics say nearly every probe row matches, and obeys
// the global switch.
func TestPlanJoinBloomDecision(t *testing.T) {
	sql := "SELECT b, s FROM u JOIN t ON u.b = t.a"
	fresh := func() (*fakeProvider, *Planner) {
		p := newFakeProvider()
		p.rowCounts["t"] = 10_000
		p.rowCounts["u"] = 3_000
		return p, NewPlanner(p, 4)
	}

	p, pl := fresh()
	if text := planQuery(t, pl, sql).Explain(); !strings.Contains(text, "BLOOM") {
		t.Fatalf("bloom should default on without stats:\n%s", text)
	}

	// Build side u has 3000 distinct keys, probe t has 10000: only ~30%
	// of probe rows can match — bloom stays on.
	p.tstats["t"] = uniformIntStats(1, "t", "a", 10_000, 10_000)
	p.tstats["u"] = uniformIntStats(4, "u", "b", 3_000, 3_000)
	if text := planQuery(t, pl, sql).Explain(); !strings.Contains(text, "BLOOM") {
		t.Fatalf("selective bloom should stay on:\n%s", text)
	}

	// Probe keys drawn from the same tiny domain as the build keys: the
	// filter would pass ~every row, so the planner drops it.
	p.tstats["t"] = uniformIntStats(1, "t", "a", 10_000, 2_000)
	p.tstats["u"] = uniformIntStats(4, "u", "b", 3_000, 2_000)
	if text := planQuery(t, pl, sql).Explain(); strings.Contains(text, "BLOOM") {
		t.Fatalf("bloom should auto-disable at ~1 selectivity:\n%s", text)
	}

	_, pl2 := fresh()
	pl2.EnableJoinBloom = false
	if text := planQuery(t, pl2, sql).Explain(); strings.Contains(text, "BLOOM") {
		t.Fatalf("bloom should honor the global switch:\n%s", text)
	}
}

// TestPlanJoinPrePartition: when the estimated build footprint exceeds
// the join budget, the plan pre-spills partitions (and widens the
// fan-out) instead of relying on mid-build eviction.
func TestPlanJoinPrePartition(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 200_000
	p.rowCounts["u"] = 100_000
	// u is the build side: 100k rows * 64 B/row = 6.4 MB >> 256 KB budget.
	p.tstats["u"] = uniformIntStats(4, "u", "b", 100_000, 50_000)
	pl := NewPlanner(p, 4)
	pl.JoinMemoryBudget = 256 << 10
	text := planQuery(t, pl, "SELECT b, s FROM u JOIN t ON u.b = t.a").Explain()
	if !strings.Contains(text, "PRESPILL:") {
		t.Fatalf("expected spill pre-partitioning in plan:\n%s", text)
	}
	// 6.4 MB / (128 KB per partition) ≈ 50 -> widened to the next power
	// of two above the default 32.
	if !strings.Contains(text, "PARTITIONS:64") {
		t.Fatalf("expected widened fan-out for the over-budget build:\n%s", text)
	}
}

// TestPlanInExpression: IN plans as an OR of equalities, executes, and
// narrows the estimate via the column's NDV.
func TestPlanInExpression(t *testing.T) {
	p := newFakeProvider()
	pl := NewPlanner(p, 1)
	node := planQuery(t, pl, "SELECT a FROM t WHERE a IN (1, 3, 7)")
	rows := runPlan(t, node)
	if len(rows) != 3 {
		t.Fatalf("IN rows = %v", rows)
	}
	node = planQuery(t, pl, "SELECT a FROM t WHERE a NOT IN (1, 3)")
	if rows := runPlan(t, node); len(rows) != 8 {
		t.Fatalf("NOT IN rows = %v", rows)
	}

	// Estimate: 100k rows, NDV 50k, 3-value IN -> ~6 rows.
	p.rowCounts["t"] = 100_000
	p.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	node = planQuery(t, pl, "SELECT a FROM t WHERE a IN (1, 3, 7)")
	if text := node.Explain(); !strings.Contains(text, "(est=6 rows)") {
		t.Errorf("IN estimate should use NDV (want ~6 rows):\n%s", text)
	}
}

// TestPlanMergeJoinKeepsPushedPredicates is the regression test for a
// dropped-WHERE bug: tryMergeJoin rebuilds its own ordered scans, so it
// must re-push the single-table conjuncts that the discarded generic
// scan plans had already consumed.
func TestPlanMergeJoinKeepsPushedPredicates(t *testing.T) {
	pl := NewPlanner(newFakeProvider(), 1)
	node := planQuery(t, pl, "SELECT lv, rv FROM left JOIN right_t ON id = rid WHERE id = 4")
	text := node.Explain()
	if !strings.Contains(text, "Merge Join") {
		t.Fatalf("expected merge join:\n%s", text)
	}
	if !strings.Contains(text, "WHERE:") {
		t.Fatalf("pushed predicate missing from merge-join scans:\n%s", text)
	}
	rows := runPlan(t, node)
	if len(rows) != 1 || rows[0][0].S != "L4" || rows[0][1].S != "R4" {
		t.Fatalf("WHERE dropped by merge join: rows = %v", rows)
	}
	// Predicates on both sides, plus one the join must keep as residual.
	node = planQuery(t, pl, "SELECT lv, rv FROM left JOIN right_t ON id = rid WHERE id >= 2 AND rid <= 6 AND lv <> rv")
	rows = runPlan(t, node)
	if len(rows) != 3 { // ids 2, 4, 6
		t.Fatalf("two-sided pushdown rows = %v", rows)
	}
}

// TestPlanNotOfUnknownPredicate: NOT over a predicate the estimator
// cannot price must stay unknown (selectivity 1.0), not invert to zero
// and collapse the estimate to one row.
func TestPlanNotOfUnknownPredicate(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	pl := NewPlanner(p, 4)
	for _, sql := range []string{
		"SELECT s FROM t WHERE NOT (a = a)",          // column-to-column: unknown
		"SELECT s FROM t WHERE NOT (a = a) OR a = a", // OR with unknown branch
	} {
		node := planQuery(t, pl, sql)
		text := node.Explain()
		if !strings.Contains(text, "(est=100000 rows)") {
			t.Errorf("%s: unknown predicate changed the estimate:\n%s", sql, text)
		}
		if !strings.Contains(text, "Parallelism (Gather Streams)") {
			t.Errorf("%s: unknown predicate killed parallelism:\n%s", sql, text)
		}
	}
	// A NOT over an estimable predicate still inverts.
	node := planQuery(t, pl, "SELECT s FROM t WHERE NOT a = 1")
	if text := node.Explain(); !strings.Contains(text, "(est=90000 rows)") {
		t.Errorf("NOT of estimable predicate not inverted:\n%s", text)
	}
}

// TestPlanNotOfPartiallyUnknownAnd: an AND with one unestimable branch
// is only an upper bound, so NOT over it must stay unknown rather than
// inverting to ~zero selectivity.
func TestPlanNotOfPartiallyUnknownAnd(t *testing.T) {
	p := newFakeProvider()
	p.rowCounts["t"] = 100_000
	p.tstats["t"] = uniformIntStats(1, "t", "a", 100_000, 50_000)
	pl := NewPlanner(p, 4)
	node := planQuery(t, pl, "SELECT s FROM t WHERE NOT (a >= 0 AND a = a)")
	text := node.Explain()
	if !strings.Contains(text, "(est=100000 rows)") || strings.Contains(text, "est=1 rows") {
		t.Errorf("NOT over partially-unknown AND collapsed the estimate:\n%s", text)
	}
}
