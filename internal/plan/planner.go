package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
)

// relation is an intermediate planning result: a materialized node plus
// physical properties the planner exploits (partitionability for parallel
// aggregation, ordering for stream aggregation and merge joins).
type relation struct {
	node *Node
	cols []ColMeta
	// parts builds n independent partition chains that together produce
	// the relation exactly once; nil when the relation cannot be
	// partitioned.
	parts  func() ([]exec.Operator, error)
	partsN int
	// ordered is the prefix column ordering of the output, if any.
	ordered []ColMeta
	// est is the estimated output cardinality (0 = unknown), post-filter
	// when predicates were pushed; join planning uses it to pick the
	// build side and decide on a parallel join.
	est int64
	// stats backs est with per-column distributions when the relation is
	// a (possibly filtered) base-table scan; join estimation reads key
	// NDVs and average row widths from it.
	stats *stats.TableStats
}

// PlanSelect plans a SELECT into a physical plan tree.
func (pl *Planner) PlanSelect(sel *sqlparse.Select) (*Node, error) {
	// FROM (with WHERE pushdown).
	var rel *relation
	var remaining []sqlparse.Expr
	if sel.From != nil {
		var conjuncts []sqlparse.Expr
		if sel.Where != nil {
			conjuncts = splitConjuncts(sel.Where)
		}
		var err error
		rel, remaining, err = pl.planFrom(sel.From, conjuncts)
		if err != nil {
			return nil, err
		}
	} else {
		if sel.Where != nil {
			return nil, fmt.Errorf("plan: WHERE without FROM")
		}
		rel = &relation{
			node: &Node{
				Op: "Constant Scan",
				Build: func() (exec.Operator, error) {
					return exec.NewValues([]sqltypes.Row{{}}), nil
				},
			},
		}
		rel.node.Cols = nil
	}
	// Residual WHERE that could not be pushed into any single side.
	if len(remaining) > 0 {
		b := &binder{pl: pl, scope: &scope{cols: rel.cols}}
		pred, err := b.bind(joinConjuncts(remaining))
		if err != nil {
			return nil, err
		}
		rel = filterRelation(rel, pred)
	}

	// Aggregation.
	subst := map[string]int{}
	aggSeen := map[string]*sqlparse.FuncCall{}
	var aggOrder []string
	for _, item := range sel.Items {
		if !item.Star {
			pl.collectAggCalls(item.Expr, aggSeen, &aggOrder)
		}
	}
	if sel.Having != nil {
		pl.collectAggCalls(sel.Having, aggSeen, &aggOrder)
	}
	for _, o := range sel.OrderBy {
		pl.collectAggCalls(o.Expr, aggSeen, &aggOrder)
	}
	grouped := len(sel.GroupBy) > 0 || len(aggOrder) > 0
	if grouped {
		var err error
		rel, err = pl.planAggregate(sel, rel, aggSeen, aggOrder, subst)
		if err != nil {
			return nil, err
		}
	}

	// HAVING.
	if sel.Having != nil {
		if !grouped {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		b := &binder{pl: pl, scope: &scope{}, aggSubst: subst}
		pred, err := b.bind(sel.Having)
		if err != nil {
			return nil, err
		}
		rel = filterRelation(rel, pred)
	}

	// Window functions (ROW_NUMBER() OVER (ORDER BY ...)).
	var windowCall *sqlparse.FuncCall
	for _, item := range sel.Items {
		if item.Star {
			continue
		}
		if err := findWindow(item.Expr, &windowCall); err != nil {
			return nil, err
		}
	}
	if windowCall != nil {
		if !strings.EqualFold(windowCall.Name, "row_number") {
			return nil, fmt.Errorf("plan: unsupported window function %s", windowCall.Name)
		}
		b := pl.postBinder(rel, grouped, subst)
		var keys []exec.SortKey
		for _, o := range windowCall.Over.OrderBy {
			e, err := b.bind(o.Expr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{Expr: e, Desc: o.Desc})
		}
		appendAt := len(rel.cols)
		if grouped {
			appendAt = groupedWidth(subst)
		}
		rel = pl.windowRelation(rel, keys, grouped)
		subst[exprKey(windowCall)] = appendAt
	}

	// Projection.
	var outExprs []expr.Expr
	var outCols []ColMeta
	b := pl.postBinder(rel, grouped, subst)
	for _, item := range sel.Items {
		if item.Star {
			if grouped {
				return nil, fmt.Errorf("plan: SELECT * is not valid with GROUP BY")
			}
			for i, c := range rel.cols {
				if item.Qualifier != "" && !strings.EqualFold(c.Qual, item.Qualifier) {
					continue
				}
				outExprs = append(outExprs, &expr.Col{Idx: i, Name: c.Name})
				outCols = append(outCols, c)
			}
			continue
		}
		e, err := b.bind(item.Expr)
		if err != nil {
			return nil, err
		}
		outExprs = append(outExprs, e)
		outCols = append(outCols, ColMeta{Name: outputName(item)})
	}

	// ORDER BY: bind pre-projection (aliases fall back to select items).
	var sortKeys []exec.SortKey
	for _, o := range sel.OrderBy {
		e, err := b.bind(o.Expr)
		if err != nil {
			// Alias reference?
			if id, ok := o.Expr.(*sqlparse.Ident); ok && id.Qualifier == "" {
				found := false
				for i, item := range sel.Items {
					if strings.EqualFold(item.Alias, id.Name) {
						e, found = outExprs[i], true
						break
					}
				}
				if found {
					sortKeys = append(sortKeys, exec.SortKey{Expr: e, Desc: o.Desc})
					continue
				}
			}
			return nil, err
		}
		sortKeys = append(sortKeys, exec.SortKey{Expr: e, Desc: o.Desc})
	}
	node := rel.node
	if len(sortKeys) > 0 {
		if sel.Top >= 0 {
			node = pl.topNNode(sel.Top, sortKeys, rel)
		} else {
			node = pl.sortNode(sortKeys, rel)
		}
	} else if sel.Top >= 0 {
		child := node
		node = &Node{
			Op: "Top", Detail: fmt.Sprintf("TOP %d", sel.Top),
			Children: []*Node{child}, Cols: child.Cols,
			Est: limitEst(sel.Top, child.Est),
			Vec: child.Vec,
		}
		if child.Vec {
			top := sel.Top
			node.Build = func() (exec.Operator, error) {
				c, err := buildBatchChild(child)
				if err != nil {
					return nil, err
				}
				return &exec.VecLimit{N: top, Child: c}, nil
			}
		} else {
			node.Build = func() (exec.Operator, error) {
				c, err := buildChild(child)
				if err != nil {
					return nil, err
				}
				return &exec.Limit{N: sel.Top, Child: c}, nil
			}
		}
	}
	return newProjectNode(outExprs, outCols, node), nil
}

// limitEst caps a child estimate by a TOP N count.
func limitEst(n, childEst int64) int64 {
	if childEst > 0 && childEst < n {
		return childEst
	}
	return n
}

// groupedWidth returns the row width of an aggregate output given its
// substitution map (max index + 1).
func groupedWidth(subst map[string]int) int {
	w := 0
	for _, idx := range subst {
		if idx+1 > w {
			w = idx + 1
		}
	}
	return w
}

// postBinder returns a binder for expressions evaluated above the
// aggregation boundary (or above the base relation when not grouped).
func (pl *Planner) postBinder(rel *relation, grouped bool, subst map[string]int) *binder {
	if grouped {
		return &binder{pl: pl, scope: &scope{}, aggSubst: subst}
	}
	return &binder{pl: pl, scope: &scope{cols: rel.cols}, aggSubst: subst}
}

func outputName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*sqlparse.Ident); ok {
		return id.Name
	}
	if fc, ok := item.Expr.(*sqlparse.FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return ""
}

func findWindow(e sqlparse.Expr, out **sqlparse.FuncCall) error {
	switch t := e.(type) {
	case *sqlparse.Unary:
		return findWindow(t.X, out)
	case *sqlparse.Binary:
		if err := findWindow(t.L, out); err != nil {
			return err
		}
		return findWindow(t.R, out)
	case *sqlparse.FuncCall:
		if t.Over != nil {
			if *out != nil && exprKey(*out) != exprKey(t) {
				return fmt.Errorf("plan: multiple distinct window functions are not supported")
			}
			*out = t
			return nil
		}
		for _, a := range t.Args {
			if err := findWindow(a, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// planAggregate builds the grouping node, choosing between parallel hash
// aggregation (Figure 9's plan), stream aggregation over ordered input
// (the consensus pipeline of Section 5.3.3), and plain hash aggregation.
func (pl *Planner) planAggregate(sel *sqlparse.Select, rel *relation,
	aggSeen map[string]*sqlparse.FuncCall, aggOrder []string, subst map[string]int) (*relation, error) {

	inputBinder := &binder{pl: pl, scope: &scope{cols: rel.cols}}
	groupExprs, err := inputBinder.bindAll(sel.GroupBy)
	if err != nil {
		return nil, err
	}
	for i, g := range sel.GroupBy {
		subst[exprKey(g)] = i
	}
	var aggSpecs []exec.AggSpec
	for j, key := range aggOrder {
		call := aggSeen[key]
		factory, _ := pl.Provider.Agg(call.Name)
		spec := exec.AggSpec{Name: strings.ToUpper(call.Name), Factory: factory}
		if !call.Star {
			args, err := inputBinder.bindAll(call.Args)
			if err != nil {
				return nil, err
			}
			spec.Args = args
		}
		aggSpecs = append(aggSpecs, spec)
		subst[key] = len(groupExprs) + j
	}

	// The aggregate touches only its grouping and argument columns, so
	// input rows served through a batch-to-row shim can leave every other
	// column unmaterialized — on lazy columnar scans those cells are never
	// decoded at all (COUNT(*) over a filtered scan decodes nothing).
	aggNeeds := make([]bool, len(rel.cols))
	for _, g := range groupExprs {
		expr.MarkCols(g, aggNeeds)
	}
	for _, spec := range aggSpecs {
		for _, a := range spec.Args {
			expr.MarkCols(a, aggNeeds)
		}
	}
	pruneCols := func(ops ...exec.Operator) {
		for _, op := range ops {
			if cp, ok := op.(exec.ColumnPruner); ok {
				cp.PruneColumns(aggNeeds)
			}
		}
	}

	outCols := make([]ColMeta, 0, len(groupExprs)+len(aggSpecs))
	for _, g := range sel.GroupBy {
		name := ""
		if id, ok := g.(*sqlparse.Ident); ok {
			name = id.Name
		}
		outCols = append(outCols, ColMeta{Name: name})
	}
	for _, key := range aggOrder {
		outCols = append(outCols, ColMeta{Name: strings.ToLower(aggSeen[key].Name)})
	}

	groupDesc := describeExprs(groupExprs)
	aggDesc := describeAggs(aggSpecs)
	estGroups := groupCountEstimate(rel, sel.GroupBy)

	// Stream aggregation when the input ordering covers the group-by
	// columns as a prefix.
	if len(groupExprs) > 0 && orderedCovers(rel, sel.GroupBy) {
		child := rel.node
		node := &Node{
			Op:       "Stream Aggregate",
			Detail:   fmt.Sprintf("GROUP BY:[%s] AGG:[%s]", groupDesc, aggDesc),
			Children: []*Node{child},
			Cols:     outCols,
			Est:      estGroups,
			Build: func() (exec.Operator, error) {
				c, err := buildChild(child)
				if err != nil {
					return nil, err
				}
				pruneCols(c)
				return &exec.StreamAggregate{GroupBy: groupExprs, Aggs: aggSpecs, Child: c}, nil
			},
		}
		return &relation{node: node, cols: outCols, est: estGroups}, nil
	}

	// Partial/final parallel hash aggregation over a partitionable input:
	// one budgeted partial aggregate per worker below the exchange, a
	// final AggState.Merge pass above it. Partials that exceed the agg
	// memory budget freeze partitions and spill raw rows to temp files.
	if rel.parts != nil && rel.partsN > 1 {
		parts := rel.parts
		partsN := rel.partsN
		scanChildren := rel.node.Children
		node := &Node{
			Op:     "Hash Match (Final Aggregate, merge partials)",
			Detail: fmt.Sprintf("GROUP BY:[%s] AGG:[%s]", groupDesc, aggDesc),
			Children: []*Node{{
				Op:     "Parallelism (Gather Streams)",
				Detail: fmt.Sprintf("DOP %d", partsN),
				Children: []*Node{{
					Op:       "Hash Match (Partial Aggregate, spillable)",
					Detail:   fmt.Sprintf("GROUP BY:[%s] BUDGET:%d", groupDesc, pl.AggMemoryBudget),
					Children: scanChildren,
					Cols:     outCols,
				}},
				Cols: outCols,
			}},
			Cols: outCols,
			Est:  estGroups,
			Build: func() (exec.Operator, error) {
				children, err := parts()
				if err != nil {
					return nil, err
				}
				pruneCols(children...)
				return &exec.SpillableAggregate{
					GroupBy:      groupExprs,
					Aggs:         aggSpecs,
					Parts:        children,
					Partitions:   DefaultAggPartitions,
					MemoryBudget: pl.AggMemoryBudget,
					Spill:        pl.Provider.SpillStore(),
				}, nil
			},
		}
		return &relation{node: node, cols: outCols, est: estGroups}, nil
	}

	child := rel.node
	node := &Node{
		Op:       "Hash Match (Aggregate)",
		Detail:   fmt.Sprintf("GROUP BY:[%s] AGG:[%s]", groupDesc, aggDesc),
		Children: []*Node{child},
		Cols:     outCols,
		Est:      estGroups,
		Build: func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			pruneCols(c)
			return &exec.SpillableAggregate{
				GroupBy:      groupExprs,
				Aggs:         aggSpecs,
				Child:        c,
				Partitions:   DefaultAggPartitions,
				MemoryBudget: pl.AggMemoryBudget,
				Spill:        pl.Provider.SpillStore(),
			}, nil
		},
	}
	return &relation{node: node, cols: outCols, est: estGroups}, nil
}

// groupCountEstimate estimates the number of GROUP BY groups: the NDV
// product of the grouping columns when the input is a base-table scan
// with statistics (capped by the input estimate), 1 for a global
// aggregate, 0 when unknown.
func groupCountEstimate(rel *relation, groupBy []sqlparse.Expr) int64 {
	if len(groupBy) == 0 {
		return 1
	}
	if rel.stats == nil {
		return 0
	}
	idents := make([]*sqlparse.Ident, 0, len(groupBy))
	for _, g := range groupBy {
		id, ok := g.(*sqlparse.Ident)
		if !ok {
			return 0
		}
		idents = append(idents, id)
	}
	return keysNDV(rel, idents)
}

func describeExprs(list []expr.Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func describeAggs(specs []exec.AggSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		if len(s.Args) == 0 {
			parts[i] = s.Name + "(*)"
		} else {
			parts[i] = s.Name + "(" + describeExprs(s.Args) + ")"
		}
	}
	return strings.Join(parts, ", ")
}

// orderedCovers reports whether rel's physical ordering starts with the
// GROUP BY columns (simple identifiers only).
func orderedCovers(rel *relation, groupBy []sqlparse.Expr) bool {
	if len(rel.ordered) < len(groupBy) {
		return false
	}
	for i, g := range groupBy {
		id, ok := g.(*sqlparse.Ident)
		if !ok {
			return false
		}
		c := rel.ordered[i]
		if !strings.EqualFold(c.Name, id.Name) {
			return false
		}
		if id.Qualifier != "" && !strings.EqualFold(c.Qual, id.Qualifier) {
			return false
		}
	}
	return true
}

func filterRelation(rel *relation, pred expr.Expr) *relation {
	node := newFilterNode(pred, rel.node)
	out := &relation{node: node, cols: rel.cols, ordered: rel.ordered, est: rel.est, stats: rel.stats}
	if rel.parts != nil {
		inner := rel.parts
		vec := rel.node.Vec
		out.partsN = rel.partsN
		out.parts = func() ([]exec.Operator, error) {
			children, err := inner()
			if err != nil {
				return nil, err
			}
			for i := range children {
				if bo, ok := children[i].(exec.BatchOperator); ok && vec {
					children[i] = &exec.VecFilter{Pred: pred, Child: bo}
				} else {
					children[i] = &exec.Filter{Pred: pred, Child: children[i]}
				}
				if node.Prof != nil {
					children[i] = exec.InstrumentOp(children[i], node.Prof)
				}
			}
			return children, nil
		}
	}
	return out
}

// windowRelation plans ROW_NUMBER() OVER (ORDER BY ...). Over a
// partitionable input the ordering comes from per-partition external
// sorts merged by an order-preserving exchange, and the numbering
// streams; otherwise the operator sorts its input itself (externally,
// under the sort memory budget).
func (pl *Planner) windowRelation(rel *relation, keys []exec.SortKey, grouped bool) *relation {
	cols := append(append([]ColMeta{}, rel.cols...), ColMeta{Name: "row_number"})
	if !grouped && rel.parts != nil && rel.partsN > 1 {
		node := &Node{
			Op:       "Sequence Project (ROW_NUMBER)",
			Detail:   fmt.Sprintf("ORDER BY:[%s]", describeSortKeys(keys)),
			Children: []*Node{pl.parallelSortNode(keys, rel)},
			Cols:     cols,
			Est:      rel.est,
			Build: func() (exec.Operator, error) {
				ms, err := pl.buildParallelSort(keys, rel)
				if err != nil {
					return nil, err
				}
				return &exec.RowNumber{OrderBy: keys, Child: ms, InputSorted: true}, nil
			},
		}
		return &relation{node: node, cols: cols, est: rel.est}
	}
	child := rel.node
	// Interesting order: when the input already streams in the window
	// order (index or clustered scans), the numbering is a pure pass-
	// through counter — no sort, no buffering.
	inputSorted := !grouped && sortKeysCoveredBy(rel, keys)
	detail := fmt.Sprintf("ORDER BY:[%s]", describeSortKeys(keys))
	if inputSorted {
		detail += " (input ordered)"
	}
	node := &Node{
		Op:       "Sequence Project (ROW_NUMBER)",
		Detail:   detail,
		Children: []*Node{child},
		Cols:     cols,
		Est:      rel.est,
		Build: func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.RowNumber{
				OrderBy:      keys,
				Child:        c,
				MemoryBudget: pl.SortMemoryBudget,
				Spill:        pl.Provider.SpillStore(),
				InputSorted:  inputSorted,
			}, nil
		},
	}
	return &relation{node: node, cols: cols, est: rel.est}
}

func describeSortKeys(keys []exec.SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		parts[i] = k.Expr.String() + " " + dir
	}
	return strings.Join(parts, ", ")
}

// sortNode plans ORDER BY: an external merge sort under the sort memory
// budget, parallelized into per-partition sorts below an order-
// preserving merge exchange when the input is partitionable.
func (pl *Planner) sortNode(keys []exec.SortKey, rel *relation) *Node {
	if rel.parts != nil && rel.partsN > 1 {
		return pl.parallelSortNode(keys, rel)
	}
	// Interesting order: a serial input already streaming in the requested
	// order (index scan, clustered scan, ordered merge join) needs no sort
	// at all.
	if sortKeysCoveredBy(rel, keys) {
		return rel.node
	}
	child := rel.node
	return &Node{
		Op:       "Sort",
		Detail:   fmt.Sprintf("ORDER BY:[%s]", describeSortKeys(keys)),
		Children: []*Node{child},
		Cols:     child.Cols,
		Est:      rel.est,
		Build: func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.Sort{
				Keys:         keys,
				Child:        c,
				MemoryBudget: pl.SortMemoryBudget,
				Spill:        pl.Provider.SpillStore(),
			}, nil
		},
	}
}

// parallelSortNode is the paper-style parallel sort plan: each partition
// chain sorts independently (sharing the sort budget), and a loser-tree
// merge exchange preserves the global order above them. Key ties break
// by partition index, so equal keys keep table order — the same output
// as the serial stable sort.
func (pl *Planner) parallelSortNode(keys []exec.SortKey, rel *relation) *Node {
	inner := &Node{
		Op:       "Sort",
		Detail:   fmt.Sprintf("ORDER BY:[%s] BUDGET:%d", describeSortKeys(keys), pl.SortMemoryBudget),
		Children: rel.node.Children,
		Cols:     rel.node.Cols,
	}
	return &Node{
		Op:       "Parallelism (Merge Gather, ordered)",
		Detail:   fmt.Sprintf("DOP %d ORDER BY:[%s]", rel.partsN, describeSortKeys(keys)),
		Children: []*Node{inner},
		Cols:     rel.node.Cols,
		Est:      rel.est,
		Build: func() (exec.Operator, error) {
			return pl.buildParallelSort(keys, rel)
		},
	}
}

// buildParallelSort instantiates the per-partition sorts and their merge
// exchange.
func (pl *Planner) buildParallelSort(keys []exec.SortKey, rel *relation) (*exec.MergeSorted, error) {
	ops, err := rel.parts()
	if err != nil {
		return nil, err
	}
	perBudget := pl.SortMemoryBudget
	if perBudget > 0 && len(ops) > 1 {
		perBudget /= int64(len(ops))
		if perBudget < 1 {
			perBudget = 1
		}
	}
	spill := pl.Provider.SpillStore()
	sorts := make([]exec.Operator, len(ops))
	for i, op := range ops {
		sorts[i] = &exec.Sort{
			Keys:         keys,
			Child:        op,
			MemoryBudget: perBudget,
			Spill:        spill,
		}
	}
	return &exec.MergeSorted{Keys: keys, Children: sorts}, nil
}

// topNNode plans TOP n ORDER BY. Over an unordered partitionable input
// the TopN is pushed below the exchange: each partition keeps its own
// top n, so the gather merges DOP·n candidate rows instead of the whole
// input, and the final TopN reduces those to n. Ordered inputs (merge
// gathers off clustered scans) keep the serial TopN above the exchange
// so key-order tie-breaking is preserved.
func (pl *Planner) topNNode(n int64, keys []exec.SortKey, rel *relation) *Node {
	child := rel.node
	if rel.parts != nil && rel.partsN > 1 && rel.ordered == nil && n > 0 {
		parts := rel.parts
		below := child.Children
		if len(below) == 0 {
			below = []*Node{child}
		}
		return &Node{
			Op:     "Top N Sort",
			Detail: fmt.Sprintf("TOP %d ORDER BY:[%s] (merge partials)", n, describeSortKeys(keys)),
			Children: []*Node{{
				Op:     "Parallelism (Gather Streams)",
				Detail: fmt.Sprintf("DOP %d", rel.partsN),
				Children: []*Node{{
					Op:       "Top N Sort (per-partition)",
					Detail:   fmt.Sprintf("TOP %d ORDER BY:[%s]", n, describeSortKeys(keys)),
					Children: below,
					Cols:     child.Cols,
					Est:      limitEst(n, child.Est),
					Vec:      child.Vec,
				}},
				Cols: child.Cols,
			}},
			Cols: child.Cols,
			Est:  limitEst(n, child.Est),
			Build: func() (exec.Operator, error) {
				ops, err := parts()
				if err != nil {
					return nil, err
				}
				tops := make([]exec.Operator, len(ops))
				for i, op := range ops {
					if bo, ok := op.(exec.BatchOperator); ok && child.Vec {
						tops[i] = &exec.VecTopN{N: n, Keys: keys, Child: bo}
					} else {
						tops[i] = &exec.TopN{N: n, Keys: keys, Child: op}
					}
				}
				g := &exec.Gather{Children: tops}
				return &exec.TopN{N: n, Keys: keys, Child: g}, nil
			},
		}
	}
	node := &Node{
		Op:       "Top N Sort",
		Detail:   fmt.Sprintf("TOP %d ORDER BY:[%s]", n, describeSortKeys(keys)),
		Children: []*Node{child},
		Cols:     child.Cols,
		Est:      limitEst(n, child.Est),
	}
	if child.Vec {
		node.Build = func() (exec.Operator, error) {
			c, err := buildBatchChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.VecTopN{N: n, Keys: keys, Child: c}, nil
		}
	} else {
		node.Build = func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.TopN{N: n, Keys: keys, Child: c}, nil
		}
	}
	return node
}
