// Package plan binds parsed SQL against the catalog and produces physical
// plans: operator trees that execute via package exec and render as the
// indented plan text of the paper's Figures 9 and 10. The planner makes
// the same physical decisions the paper highlights — predicate pushdown,
// hash vs merge join based on clustered keys, parallel hash aggregation
// with partial/final merge, and parallel range-partitioned merge joins.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
)

// TVF is a table-valued function — the pull-model extension of the paper's
// Section 4.1. Schema must tolerate nil argument values (CROSS APPLY binds
// arguments per row).
type TVF interface {
	Schema(args []sqltypes.Value) ([]catalog.Column, error)
	Iterator(args []sqltypes.Value) (exec.RowIterator, error)
}

// Provider supplies catalog lookups and physical access paths; implemented
// by the engine (package core).
type Provider interface {
	// Table resolves a base table, or nil.
	Table(name string) *catalog.Table
	// Scalar resolves a scalar function (built-in or UDF).
	Scalar(name string) (expr.ScalarFunc, bool)
	// Agg resolves an aggregate function (built-in or UDA).
	Agg(name string) (exec.AggFactory, bool)
	// TVF resolves a table-valued function.
	TVF(name string) (TVF, bool)
	// ScanPartitions returns `parts` independent operators that together
	// scan the whole table exactly once (heap page ranges, or a single
	// full scan when parts == 1).
	ScanPartitions(t *catalog.Table, parts int) ([]exec.Operator, error)
	// ScanPartitionsPruned is ScanPartitions with zone-map filters: sealed
	// heap pages whose min/max summaries provably cannot satisfy every
	// filter are skipped without a read. Filters are advisory (engines
	// without zone maps may ignore them) and strictly conservative, so a
	// pruned scan returns exactly the rows the full scan would.
	ScanPartitionsPruned(t *catalog.Table, parts int, filters []storage.ZoneFilter) ([]exec.Operator, error)
	// HeapPageStats prices a zone-map-pruned heap scan: how many sealed
	// pages survive the filters, and the total page count. (0, 0) means
	// "no information" and the planner falls back to cardinality-based
	// page costing.
	HeapPageStats(t *catalog.Table, filters []storage.ZoneFilter) (kept, total int64)
	// IndexScan returns a serial operator scanning a named secondary
	// index over [lo, hi] bounds on its first key column (nil = open,
	// loInc/hiInc select inclusive bounds), emitting heap rows in
	// index-key order.
	IndexScan(t *catalog.Table, idxName string, lo, hi *sqltypes.Value, loInc, hiInc bool) (exec.Operator, error)
	// OrderedScanRange returns an operator scanning a clustered table in
	// primary-key order restricted to [lo, hi) on the first key column;
	// nil bounds are unbounded.
	OrderedScanRange(t *catalog.Table, lo, hi *sqltypes.Value) (exec.Operator, error)
	// KeyRanges splits a clustered table's first (integer) key column
	// into up to `parts` contiguous ranges for partitioned merge joins.
	KeyRanges(t *catalog.Table, parts int) ([][2]*sqltypes.Value, error)
	// RowCountEstimate guides parallelism decisions.
	RowCountEstimate(t *catalog.Table) int64
	// Stats returns the table's collected statistics (ANALYZE), or nil
	// when none exist or the table has drifted too far since collection.
	// The planner uses them for predicate selectivity, join output
	// cardinality, build-side choice and spill pre-partitioning.
	Stats(t *catalog.Table) *stats.TableStats
	// SpillStore creates temp files for joins that exceed the join memory
	// budget; may return nil when the engine cannot spill (joins then fail
	// rather than exceed the budget).
	SpillStore() exec.SpillStore
	// VectorizedScan reports whether the table's scan partitions can
	// deliver columnar batches (exec.BatchIterator), letting the planner
	// run filters and projections above them as vectorized tight loops.
	VectorizedScan(t *catalog.Table) bool
}

// ColMeta describes one output column of a plan node.
type ColMeta struct {
	Qual string // table alias/qualifier, may be empty
	Name string
}

// Node is a physical plan node: display metadata plus a Build factory that
// instantiates fresh exec operators (parallel plans call Build once per
// partition chain).
type Node struct {
	Op       string
	Detail   string
	Children []*Node
	Cols     []ColMeta
	// Est is the planner's estimated output cardinality (0 = unknown);
	// EXPLAIN renders it so estimate quality is visible and testable.
	Est int64
	// Vec marks a node whose Build returns an exec.BatchOperator —
	// EXPLAIN renders it and vectorized parents compose batch-to-batch.
	Vec   bool
	Build func() (exec.Operator, error)
	// Prof is the node's execution profile, allocated by Instrument
	// before the plan builds. Planner closures that construct operators
	// outside the Build chain (per-partition chains handed to exchanges)
	// read it at build time to attribute those operators to the node
	// that displays them; it stays nil on uninstrumented plans.
	Prof *obs.OpProfile
	// OwnProf marks a display-only node (Build == nil) whose profile is
	// still populated — a planner closure wraps the operators it stands
	// for. Instrument allocates profiles for these too.
	OwnProf bool
}

// Explain renders the plan in the indented style of the paper's plan
// figures.
func (n *Node) Explain() string {
	var sb strings.Builder
	n.explain(&sb, 0)
	return sb.String()
}

func (n *Node) explain(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("   ", depth))
	sb.WriteString("|--")
	sb.WriteString(n.Op)
	if n.Detail != "" {
		sb.WriteString(" ")
		sb.WriteString(n.Detail)
	}
	if n.Est > 0 {
		fmt.Fprintf(sb, " (est=%d rows)", n.Est)
	}
	if n.Vec {
		sb.WriteString(" vectorized")
	}
	sb.WriteString("\n")
	for _, c := range n.Children {
		c.explain(sb, depth+1)
	}
}

// Planner turns SELECT ASTs into physical plans.
type Planner struct {
	Provider Provider
	// DOP is the maximum degree of parallelism (usually NumCPU).
	DOP int
	// ParallelThreshold is the minimum estimated row count before the
	// planner considers a parallel plan.
	ParallelThreshold int64
	// JoinMemoryBudget caps the bytes of build-side rows a hash join may
	// hold in memory before partitions spill to disk (0 = unlimited).
	JoinMemoryBudget int64
	// JoinPartitions is the hash fan-out of partitioned joins.
	JoinPartitions int
	// SortMemoryBudget caps the bytes a sort (ORDER BY, ROW_NUMBER) may
	// buffer before spilling sorted runs to disk (0 = unlimited). A
	// parallel sort divides it across its per-partition sorts.
	SortMemoryBudget int64
	// AggMemoryBudget caps the bytes of resident group state a hash
	// aggregate may hold before partitions spill (0 = unlimited), divided
	// across the partial aggregates of a parallel plan.
	AggMemoryBudget int64
	// EnableJoinBloom lets partitioned joins build a Bloom filter over
	// their build keys and drop probe rows before routing/spilling. The
	// planner auto-disables it per join when statistics estimate that
	// nearly every probe row matches.
	EnableJoinBloom bool
	// ForcePath overrides base-table access-path costing for testing:
	// "full" (heap scan, no zone filters, no index), "zonemap" (heap scan
	// with zone filters) or "index" (index scan whenever one applies).
	// Empty selects by estimated page I/O. A forced path that does not
	// apply (no sargable index, no filters) degrades to the full scan.
	ForcePath string
	// PathPicks, when non-nil, counts the access path chosen for each
	// planned base-table scan. The engine passes one long-lived instance
	// so the counts survive planner rebuilds.
	PathPicks *PathPickCounters
}

// Default join knobs: a 64 MB build budget keeps even DOP-wide joins
// inside a fraction of the default buffer pool, and the operator's
// default fan-out (32 partitions) keeps every spilled partition
// re-joinable in one recursion at that budget.
const (
	DefaultJoinMemoryBudget = 64 << 20
	DefaultJoinPartitions   = exec.DefaultJoinPartitions
)

// Default sort/aggregate budgets: like the join budget, 64 MB keeps the
// blocking operators inside a fraction of the default buffer pool while
// staying far above anything the paper's queries buffer in memory —
// spilling is the out-of-core escape hatch, not the common path.
const (
	DefaultSortMemoryBudget = 64 << 20
	DefaultAggMemoryBudget  = 64 << 20
	DefaultAggPartitions    = exec.DefaultAggPartitions
)

// NewPlanner returns a planner with the given provider and DOP.
//
// The default ParallelThreshold is low: with the sharded buffer pool,
// parallel workers no longer serialize on a pool mutex, so the
// break-even table size for a parallel scan is a few pages of rows, not
// tens of thousands.
func NewPlanner(p Provider, dop int) *Planner {
	if dop < 1 {
		dop = 1
	}
	return &Planner{
		Provider:          p,
		DOP:               dop,
		ParallelThreshold: 2_048,
		JoinMemoryBudget:  DefaultJoinMemoryBudget,
		JoinPartitions:    DefaultJoinPartitions,
		SortMemoryBudget:  DefaultSortMemoryBudget,
		AggMemoryBudget:   DefaultAggMemoryBudget,
		EnableJoinBloom:   true,
	}
}

// partitionCount decides the degree of parallelism for a scan over an
// estimated est rows: serial below the threshold, then one partition per
// ParallelThreshold rows up to DOP, so small-but-parallel tables do not
// pay exchange overhead for idle workers.
func (pl *Planner) partitionCount(est int64) int {
	if pl.DOP <= 1 || est < pl.ParallelThreshold {
		return 1
	}
	n := int64(pl.DOP)
	if pl.ParallelThreshold > 0 {
		if maxUseful := est / pl.ParallelThreshold; maxUseful < n {
			n = maxUseful
		}
	}
	if n < 2 {
		n = 2
	}
	return int(n)
}

func buildChild(n *Node) (exec.Operator, error) {
	if n.Build == nil {
		return nil, fmt.Errorf("plan: node %q is not executable", n.Op)
	}
	return n.Build()
}

// buildBatchChild builds a Vec-marked child and asserts its batch
// interface.
func buildBatchChild(n *Node) (exec.BatchOperator, error) {
	op, err := buildChild(n)
	if err != nil {
		return nil, err
	}
	bo, ok := op.(exec.BatchOperator)
	if !ok {
		return nil, fmt.Errorf("plan: node %q marked vectorized but built %T", n.Op, op)
	}
	return bo, nil
}

// newFilterNode wraps a child with a predicate filter — vectorized
// (selection-vector updates over columnar batches) above a vectorized
// child, row-at-a-time otherwise. The filter's selectivity is unknown at
// this level (estimable predicates were pushed into scans), so the child
// estimate carries through unreduced.
func newFilterNode(pred expr.Expr, child *Node) *Node {
	n := &Node{
		Op:       "Filter",
		Detail:   fmt.Sprintf("WHERE:(%s)", pred),
		Children: []*Node{child},
		Cols:     child.Cols,
		Est:      child.Est,
		Vec:      child.Vec,
	}
	if child.Vec {
		n.Build = func() (exec.Operator, error) {
			c, err := buildBatchChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.VecFilter{Pred: pred, Child: c}, nil
		}
	} else {
		n.Build = func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.Filter{Pred: pred, Child: c}, nil
		}
	}
	return n
}

// newProjectNode wraps a child with computed output expressions —
// batch-at-a-time (column references pass vectors through unchanged,
// preserving dictionary encoding) above a vectorized child.
func newProjectNode(exprs []expr.Expr, cols []ColMeta, child *Node) *Node {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	n := &Node{
		Op:       "Compute Scalar",
		Detail:   fmt.Sprintf("DEFINE:[%s]", strings.Join(parts, ", ")),
		Children: []*Node{child},
		Cols:     cols,
		Est:      child.Est,
		Vec:      child.Vec,
	}
	if child.Vec {
		n.Build = func() (exec.Operator, error) {
			c, err := buildBatchChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.VecProject{Exprs: exprs, Child: c}, nil
		}
	} else {
		n.Build = func() (exec.Operator, error) {
			c, err := buildChild(child)
			if err != nil {
				return nil, err
			}
			return &exec.Project{Exprs: exprs, Child: c}, nil
		}
	}
	return n
}
