package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Access-path selection for base-table scans. Pushed conjuncts of the
// shape `col op const` yield per-column sargable ranges; those ranges
// drive three alternatives priced by estimated page I/O:
//
//   - full scan: every sealed page plus the tail,
//   - zone-map-pruned scan: only pages whose min/max summaries may hold a
//     match (exact, from the heap's in-memory zone maps),
//   - secondary-index range scan: a B-tree descent, the matching index
//     entries, and one heap fetch per matching row.
//
// Page cost is deliberately separate from the output-row estimate: a
// selective predicate shrinks the output of any path, but only an index
// or zone pruning shrinks the pages actually read.

// sargRange is one column's combined bounds from the pushed conjuncts.
type sargRange struct {
	lo, hi       *sqltypes.Value
	loInc, hiInc bool
	// sel is the estimated combined selectivity of the conjuncts that
	// produced the bounds — the index scan's matching-entry fraction.
	sel float64
}

func (r *sargRange) bounded() bool { return r.lo != nil || r.hi != nil }

func (r *sargRange) tightenLo(v sqltypes.Value, inc bool) {
	if r.lo == nil {
		r.lo, r.loInc = &v, inc
		return
	}
	if c := sqltypes.Compare(v, *r.lo); c > 0 || (c == 0 && !inc) {
		r.lo, r.loInc = &v, inc
	}
}

func (r *sargRange) tightenHi(v sqltypes.Value, inc bool) {
	if r.hi == nil {
		r.hi, r.hiInc = &v, inc
		return
	}
	if c := sqltypes.Compare(v, *r.hi); c < 0 || (c == 0 && !inc) {
		r.hi, r.hiInc = &v, inc
	}
}

// sargValue normalizes a constant to the column's storage kind — the kind
// zone maps and index keys compare under. Constants that cannot be
// represented exactly in that kind (a float literal against an integer
// column) are rejected rather than coerced: a wrong-kind bound would
// compare under different ordering rules than the query's filter.
func sargValue(v sqltypes.Value, k sqltypes.Kind) (sqltypes.Value, bool) {
	if v.IsNull() {
		return v, false
	}
	switch k {
	case sqltypes.KindInt:
		if v.K == sqltypes.KindInt {
			return v, true
		}
	case sqltypes.KindFloat:
		switch v.K {
		case sqltypes.KindFloat:
			return v, true
		case sqltypes.KindInt:
			return sqltypes.NewFloat(float64(v.I)), true
		}
	case sqltypes.KindString:
		if v.K == sqltypes.KindString {
			return v, true
		}
	}
	return v, false
}

// sargableRanges extracts per-column bounds from pushed conjuncts of the
// shape `col op const` (either operand order; ops =, <, <=, >, >=).
// Conjuncts on the same column intersect. Keys are column positions.
func sargableRanges(sc *scope, tab *catalog.Table, ts *stats.TableStats, pushed []sqlparse.Expr) map[int]*sargRange {
	var out map[int]*sargRange
	for _, c := range pushed {
		b, ok := c.(*sqlparse.Binary)
		if !ok {
			continue
		}
		op := b.Op
		id, lok := b.L.(*sqlparse.Ident)
		v, rconst := constValue(b.R)
		if !lok || !rconst {
			id, lok = b.R.(*sqlparse.Ident)
			v, rconst = constValue(b.L)
			if !lok || !rconst {
				continue
			}
			op = flipCmp(op)
		}
		switch op {
		case "=", "<", "<=", ">", ">=":
		default:
			continue
		}
		idx, err := sc.resolve(id.Qualifier, id.Name)
		if err != nil {
			continue
		}
		sv, ok := sargValue(v, tab.Columns[idx].Type.StorageKind())
		if !ok {
			continue
		}
		if out == nil {
			out = map[int]*sargRange{}
		}
		r := out[idx]
		if r == nil {
			r = &sargRange{sel: 1}
			out[idx] = r
		}
		switch op {
		case "=":
			r.tightenLo(sv, true)
			r.tightenHi(sv, true)
		case ">":
			r.tightenLo(sv, false)
		case ">=":
			r.tightenLo(sv, true)
		case "<":
			r.tightenHi(sv, false)
		case "<=":
			r.tightenHi(sv, true)
		}
		r.sel *= conjunctSelectivity(ts, c)
	}
	return out
}

// zoneFiltersFrom renders the ranges as storage zone filters (in column
// order, so plans are deterministic). Zone-filter bounds are inclusive;
// an exclusive bound conservatively widens to inclusive — the pages kept
// are a superset, never fewer, so results cannot change.
func zoneFiltersFrom(ranges map[int]*sargRange) []storage.ZoneFilter {
	if len(ranges) == 0 {
		return nil
	}
	cols := make([]int, 0, len(ranges))
	for c := range ranges {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	out := make([]storage.ZoneFilter, 0, len(cols))
	for _, c := range cols {
		r := ranges[c]
		f := storage.ZoneFilter{Col: c, Lo: sqltypes.Null, Hi: sqltypes.Null}
		if r.lo != nil {
			f.Lo = *r.lo
		}
		if r.hi != nil {
			f.Hi = *r.hi
		}
		out = append(out, f)
	}
	return out
}

// indexChoice is a candidate secondary index with the sargable range on
// its first key column.
type indexChoice struct {
	idx *catalog.Index
	rng *sargRange
}

// pickIndex selects the candidate index whose first-column range is
// estimated most selective; nil when no index has a bounded range.
func pickIndex(tab *catalog.Table, ranges map[int]*sargRange) *indexChoice {
	var best *indexChoice
	for i := range tab.Indexes {
		ix := &tab.Indexes[i]
		if len(ix.Columns) == 0 {
			continue
		}
		r := ranges[ix.Columns[0]]
		if r == nil || !r.bounded() {
			continue
		}
		if best == nil || r.sel < best.rng.sel {
			best = &indexChoice{idx: ix, rng: r}
		}
	}
	return best
}

// Page-cost model constants: the assumed rows per heap page when the
// engine reports no page statistics, the assumed index entries per leaf
// page, and the fixed B-tree descent cost.
const (
	costRowsPerPage    = 64
	costEntriesPerLeaf = 64
	costTreeDescent    = 2
)

// heapScanCost prices the heap alternative in pages: the surviving page
// count when zone statistics exist, a cardinality-derived guess otherwise
// (+1 for the unsealed tail either way).
func heapScanCost(rawEst, kept, total int64) float64 {
	if total > 0 {
		return float64(kept) + 1
	}
	return float64(rawEst)/costRowsPerPage + 1
}

// indexScanCost prices an index range scan returning idxRows entries:
// descent + leaf pages + one heap page fetch per matching row (the
// point-fetch cache collapses same-page neighbors, but random order makes
// one-page-per-row the honest upper bound).
func indexScanCost(idxRows int64) float64 {
	return costTreeDescent + float64(idxRows)/costEntriesPerLeaf + float64(idxRows)
}

// boundStr formats one scan bound for EXPLAIN; open bounds print empty,
// so a range renders as (100..200), (..200) or (100..).
func boundStr(v *sqltypes.Value) string {
	if v == nil {
		return ""
	}
	return v.String()
}

// sortKeysCoveredBy reports whether rel's physical ordering satisfies the
// sort keys (ascending prefix match by output column identity), letting
// ORDER BY and ROW_NUMBER consume index- or clustered-order directly.
func sortKeysCoveredBy(rel *relation, keys []exec.SortKey) bool {
	if len(keys) == 0 || len(rel.ordered) < len(keys) {
		return false
	}
	for i, k := range keys {
		if k.Desc {
			return false
		}
		col, ok := k.Expr.(*expr.Col)
		if !ok || col.Idx < 0 || col.Idx >= len(rel.cols) {
			return false
		}
		c, o := rel.cols[col.Idx], rel.ordered[i]
		if !strings.EqualFold(c.Name, o.Name) || !strings.EqualFold(c.Qual, o.Qual) {
			return false
		}
	}
	return true
}

// orderedOnIdent reports whether rel's first ordered column is the given
// join-key identifier.
func orderedOnIdent(rel *relation, id *sqlparse.Ident) bool {
	if len(rel.ordered) == 0 {
		return false
	}
	c := rel.ordered[0]
	if !strings.EqualFold(c.Name, id.Name) {
		return false
	}
	return id.Qualifier == "" || strings.EqualFold(c.Qual, id.Qualifier)
}

// indexScanNode builds the serial index-path relation: an index range
// scan (rows arrive in index-key order) under a re-checking filter for
// the full pushed predicate — bounds only constrain the first index
// column, and re-checking keeps the operator correct even where bound
// arithmetic and filter semantics could drift.
func (pl *Planner) indexScanNode(tab *catalog.Table, qual string, cols []ColMeta,
	choice *indexChoice, pred expr.Expr, est int64, ts *stats.TableStats) *relation {

	idxName := choice.idx.Name
	lo, hi := choice.rng.lo, choice.rng.hi
	loInc, hiInc := choice.rng.loInc, choice.rng.hiInc
	detail := fmt.Sprintf("[%s] %s (%s..%s)", tab.Name, idxName, boundStr(lo), boundStr(hi))
	if pred != nil {
		detail += fmt.Sprintf(" WHERE:(%s)", pred)
	}
	node := &Node{
		Op:     "Index Scan",
		Detail: detail,
		Cols:   cols,
		Est:    est,
		Build: func() (exec.Operator, error) {
			op, err := pl.Provider.IndexScan(tab, idxName, lo, hi, loInc, hiInc)
			if err != nil {
				return nil, err
			}
			if pred != nil {
				op = &exec.Filter{Pred: pred, Child: op}
			}
			return op, nil
		},
	}
	ordered := make([]ColMeta, 0, len(choice.idx.Columns))
	for _, c := range choice.idx.Columns {
		ordered = append(ordered, ColMeta{Qual: qual, Name: tab.Columns[c].Name})
	}
	return &relation{node: node, cols: cols, ordered: ordered, est: est, stats: ts}
}
