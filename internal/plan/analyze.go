package plan

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Instrument prepares the plan for profiled execution: every executable
// node gets a fresh obs.OpProfile and its Build factory is replaced
// with one that wraps the built operator in an exec profile wrapper
// (row or batch, matching what the operator actually implements). With
// timed set, wrappers also record wall time per node — the EXPLAIN
// ANALYZE mode; without it only counters accrue, cheap enough to stay
// on for every query.
//
// Plan trees are built fresh per statement, so mutating Build in place
// is safe; planner closures that construct per-partition operator
// chains directly (bypassing child Build factories) read Node.Prof at
// build time and wrap those chains themselves — InstrumentOp is
// idempotent per profile, so the double coverage never double-wraps.
func (n *Node) Instrument(timed bool) {
	if n == nil {
		return
	}
	if n.Build != nil || n.OwnProf {
		prof := &obs.OpProfile{Timed: timed}
		n.Prof = prof
		if n.Build != nil {
			build := n.Build
			n.Build = func() (exec.Operator, error) {
				op, err := build()
				if err != nil {
					return nil, err
				}
				return exec.InstrumentOp(op, prof), nil
			}
		}
	}
	for _, c := range n.Children {
		c.Instrument(timed)
	}
}

// SpillBytes sums the spill volume recorded across the plan's profiles
// (0 on uninstrumented plans).
func (n *Node) SpillBytes() int64 {
	if n == nil {
		return 0
	}
	var total int64
	if n.Prof != nil {
		total = n.Prof.SpillBytes.Load()
	}
	for _, c := range n.Children {
		total += c.SpillBytes()
	}
	return total
}

// ExplainAnalyze renders the executed plan in the EXPLAIN format
// annotated with each node's actual row count, the estimate ratio, per
// -operator wall time (cumulative and self), and detail lines for
// spill, Bloom and buffer-pool activity. total is the statement's
// end-to-end wall time, rows the count it returned.
//
// Display-only nodes without their own profile (synthetic exchange and
// partial-aggregate nodes) inherit the nearest profiled ancestor's
// counters so an actual/estimate ratio appears on every line; their
// detail lines are suppressed (the owner already prints them).
func (n *Node) ExplainAnalyze(total time.Duration, rows int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE (total %s, %d rows returned)\n", fmtDuration(total), rows)
	n.explainAnalyze(&sb, 0, nil)
	return sb.String()
}

func (n *Node) explainAnalyze(sb *strings.Builder, depth int, inherited *obs.OpProfile) {
	p := n.Prof
	owns := p != nil
	if p == nil {
		p = inherited
	}
	sb.WriteString(strings.Repeat("   ", depth))
	sb.WriteString("|--")
	sb.WriteString(n.Op)
	if n.Detail != "" {
		sb.WriteString(" ")
		sb.WriteString(n.Detail)
	}
	if p != nil {
		actual := p.Rows.Load()
		fmt.Fprintf(sb, " (est=%d rows, actual=%d rows, off by %s)", n.Est, actual, estRatio(n.Est, actual))
		if batches := p.Batches.Load(); owns && batches > 0 {
			fmt.Fprintf(sb, " batches=%d", batches)
		}
	} else if n.Est > 0 {
		fmt.Fprintf(sb, " (est=%d rows)", n.Est)
	}
	if n.Vec {
		sb.WriteString(" vectorized")
	}
	if owns && p.Timed {
		cum := time.Duration(p.WallNS.Load())
		self := cum - childWall(n, p)
		if self < 0 {
			self = 0
		}
		fmt.Fprintf(sb, " time=%s (self %s)", fmtDuration(cum), fmtDuration(self))
	}
	sb.WriteString("\n")
	if owns && p.HasDetail() {
		pad := strings.Repeat("   ", depth+1) + "   "
		if b, r, rows := p.SpillBytes.Load(), p.SpillRuns.Load(), p.SpillRows.Load(); b != 0 || r != 0 || rows != 0 {
			fmt.Fprintf(sb, "%sspill: %s in %d runs (%d rows)\n", pad, fmtBytes(b), r, rows)
		}
		if c, d := p.BloomChecks.Load(), p.BloomDrops.Load(); c != 0 {
			fmt.Fprintf(sb, "%sbloom: %d checked, %d dropped (%.1f%%)\n", pad, c, d, 100*float64(d)/float64(c))
		}
		if h, m := p.PoolHits.Load(), p.PoolMisses.Load(); h != 0 || m != 0 {
			fmt.Fprintf(sb, "%spool: %d hits, %d misses\n", pad, h, m)
		}
	}
	for _, c := range n.Children {
		c.explainAnalyze(sb, depth+1, p)
	}
}

// childWall sums the cumulative wall time of the node's children that
// carry their own profiles (distinct from own — partition chains share
// the display node's profile and must not subtract from themselves).
func childWall(n *Node, own *obs.OpProfile) time.Duration {
	seen := map[*obs.OpProfile]bool{own: true}
	var total int64
	var walk func(c *Node)
	walk = func(c *Node) {
		if c.Prof != nil && !seen[c.Prof] {
			seen[c.Prof] = true
			total += c.Prof.WallNS.Load()
			return // its own children subtract from it, not from us
		}
		for _, cc := range c.Children {
			walk(cc)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return time.Duration(total)
}

// estRatio formats how far the actual cardinality landed from the
// estimate, as a ">= 1x" factor with direction (e.g. "12.0x under"
// when the estimate was 12x too low). Zeroes clamp to 1 so the ratio
// is always finite.
func estRatio(est, actual int64) string {
	e, a := est, actual
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	switch {
	case a > e:
		return fmt.Sprintf("%.1fx under", float64(a)/float64(e))
	case e > a:
		return fmt.Sprintf("%.1fx over", float64(e)/float64(a))
	default:
		return "1.0x"
	}
}

// fmtDuration renders a duration with millisecond-scale precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// PathPickCounters counts which access path the planner chose for base
// -table scans — the registry exposes them so estimate-driven path
// flips are observable in production, not just under EXPLAIN. The
// engine owns one instance; planners share it across rebuilds (SetDOP)
// so the counts are monotonic for the database's lifetime.
type PathPickCounters struct {
	Index   atomic.Int64
	ZoneMap atomic.Int64
	Full    atomic.Int64
}

func (c *PathPickCounters) pickIndex() {
	if c != nil {
		c.Index.Add(1)
	}
}

func (c *PathPickCounters) pickZoneMap() {
	if c != nil {
		c.ZoneMap.Add(1)
	}
}

func (c *PathPickCounters) pickFull() {
	if c != nil {
		c.Full.Add(1)
	}
}
