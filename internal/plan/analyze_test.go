package plan

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

type sliceIter struct {
	rows []sqltypes.Row
	i    int
}

func (s *sliceIter) Next() (sqltypes.Row, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	s.i++
	return s.rows[s.i-1], true, nil
}

func (s *sliceIter) Close() error { return nil }

func intRows(n int) []sqltypes.Row {
	out := make([]sqltypes.Row, n)
	for i := range out {
		out[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	return out
}

// TestInstrumentWalk: the walk gives every buildable node a fresh
// profile, the wrapped operator counts its rows into it, and display
// -only nodes (no Build, no OwnProf) stay profile-less.
func TestInstrumentWalk(t *testing.T) {
	display := &Node{Op: "Partial Thing", Est: 10}
	root := &Node{
		Op: "Scan", Est: 5, Children: []*Node{display},
		Build: func() (exec.Operator, error) {
			return &exec.Source{Label: "s", Factory: func(*exec.Context) (exec.RowIterator, error) {
				return &sliceIter{rows: intRows(40)}, nil
			}}, nil
		},
	}
	root.Instrument(false)
	if root.Prof == nil {
		t.Fatal("buildable node got no profile")
	}
	if root.Prof.Timed {
		t.Fatal("untimed instrumentation flagged Timed")
	}
	if display.Prof != nil {
		t.Fatal("display-only node got a profile")
	}
	op, err := root.Build()
	if err != nil {
		t.Fatal(err)
	}
	switch op.(type) {
	case *exec.Instrument, *exec.VecInstrument:
	default:
		t.Fatalf("built operator is %T, want instrumented", op)
	}
	rows, err := exec.Run(&exec.Context{DOP: 1}, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Prof.Rows.Load(); got != int64(len(rows)) || got != 40 {
		t.Fatalf("profile rows = %d, want 40", got)
	}

	// OwnProf forces a profile even without Build (planner closures wrap
	// partition chains against such nodes themselves).
	own := &Node{Op: "Merge Join", OwnProf: true}
	own.Instrument(true)
	if own.Prof == nil || !own.Prof.Timed {
		t.Fatalf("OwnProf node profile = %+v", own.Prof)
	}
}

// TestExplainAnalyzeRender: actual counts render with ratios on every
// node, inheriting nodes reuse the nearest ancestor profile, owners
// print detail lines, and self time subtracts child profiles.
func TestExplainAnalyzeRender(t *testing.T) {
	child := &Node{Op: "Table Scan", Detail: "on reads", Est: 100, OwnProf: true}
	mid := &Node{Op: "Gather Streams", Est: 100, Children: []*Node{child}} // inherits
	root := &Node{Op: "Sort", Est: 10, OwnProf: true, Children: []*Node{mid}}
	root.Instrument(true)

	child.Prof.AddRows(400)
	child.Prof.AddWall(30 * time.Millisecond)
	child.Prof.PoolHits.Add(7)
	child.Prof.PoolMisses.Add(3)
	root.Prof.AddRows(10)
	root.Prof.AddWall(50 * time.Millisecond)
	root.Prof.AddSpill(2048, 2, 400)

	text := root.ExplainAnalyze(60*time.Millisecond, 10)
	if !strings.HasPrefix(text, "EXPLAIN ANALYZE (total 60.0ms, 10 rows returned)") {
		t.Fatalf("header:\n%s", text)
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	var sortLine, gatherLine, scanLine string
	for _, l := range lines {
		switch {
		case strings.Contains(l, "Sort"):
			sortLine = l
		case strings.Contains(l, "Gather Streams"):
			gatherLine = l
		case strings.Contains(l, "Table Scan"):
			scanLine = l
		}
	}
	if !strings.Contains(sortLine, "(est=10 rows, actual=10 rows, off by 1.0x)") {
		t.Errorf("sort line: %q", sortLine)
	}
	// Self time: 50ms cumulative minus the child profile's 30ms.
	if !strings.Contains(sortLine, "time=50.0ms (self 20.0ms)") {
		t.Errorf("sort self time: %q", sortLine)
	}
	// The gather inherits the nearest profiled ANCESTOR (the sort: the
	// exchange passes its owner's rows through) but prints no timing or
	// detail of its own.
	if !strings.Contains(gatherLine, "actual=10 rows, off by 10.0x over") {
		t.Errorf("gather line: %q", gatherLine)
	}
	if strings.Contains(gatherLine, "time=") {
		t.Errorf("inheriting node rendered a time: %q", gatherLine)
	}
	if !strings.Contains(scanLine, "on reads") || !strings.Contains(scanLine, "actual=400") {
		t.Errorf("scan line: %q", scanLine)
	}
	if !strings.Contains(text, "spill: 2.0 KB in 2 runs (400 rows)") {
		t.Errorf("spill detail:\n%s", text)
	}
	if !strings.Contains(text, "pool: 7 hits, 3 misses") {
		t.Errorf("pool detail:\n%s", text)
	}
}

func TestEstRatio(t *testing.T) {
	cases := []struct {
		est, actual int64
		want        string
	}{
		{10, 10, "1.0x"},
		{10, 40, "4.0x under"},
		{40, 10, "4.0x over"},
		{0, 5, "5.0x under"}, // zero estimate clamps, stays finite
		{5, 0, "5.0x over"},
		{0, 0, "1.0x"},
	}
	for _, c := range cases {
		if got := estRatio(c.est, c.actual); got != c.want {
			t.Errorf("estRatio(%d, %d) = %q, want %q", c.est, c.actual, got, c.want)
		}
	}
}

func TestSpillBytesSum(t *testing.T) {
	a := &Node{OwnProf: true}
	b := &Node{OwnProf: true}
	root := &Node{OwnProf: true, Children: []*Node{a, b}}
	root.Instrument(false)
	a.Prof.AddSpill(100, 0, 0)
	b.Prof.AddSpill(200, 0, 0)
	if got := root.SpillBytes(); got != 300 {
		t.Fatalf("SpillBytes = %d, want 300", got)
	}
	var nilNode *Node
	if nilNode.SpillBytes() != 0 {
		t.Fatal("nil node spill")
	}
}

func TestPathPickCountersNilSafe(t *testing.T) {
	var c *PathPickCounters
	c.pickIndex()
	c.pickZoneMap()
	c.pickFull()
	real := &PathPickCounters{}
	real.pickIndex()
	real.pickIndex()
	real.pickFull()
	if real.Index.Load() != 2 || real.Full.Load() != 1 || real.ZoneMap.Load() != 0 {
		t.Fatalf("counts: %d/%d/%d", real.Index.Load(), real.ZoneMap.Load(), real.Full.Load())
	}
}

// TestInstrumentOpIdempotent: wrapping for the same profile is the
// identity (partition chains are wrapped inside parts closures AND by
// the walk's Build replacement), while a different profile stacks.
func TestInstrumentOpIdempotent(t *testing.T) {
	p1 := &obs.OpProfile{}
	p2 := &obs.OpProfile{}
	base := &exec.Source{Label: "s", Factory: func(*exec.Context) (exec.RowIterator, error) {
		return &sliceIter{}, nil
	}}
	w1 := exec.InstrumentOp(base, p1)
	if exec.InstrumentOp(w1, p1) != w1 {
		t.Fatal("re-wrapping for the same profile must be identity")
	}
	if exec.InstrumentOp(w1, p2) == w1 {
		t.Fatal("a different profile must wrap again")
	}
}
