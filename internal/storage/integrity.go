package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// Page integrity. Heap and columnar data pages carry a format-version
// byte and a CRC32C (Castagnoli) checksum in the shared 16-byte data-page
// header:
//
//	[0]     page type (rowpage / page-compressed / columnar)
//	[1]     compression mode
//	[2:4]   row count
//	[4:6]   used payload bytes
//	[6]     page format version (0 = pre-checksum legacy, 1 = checksummed)
//	[7]     reserved
//	[8:12]  CRC32C over the full page with this field zeroed
//	[12:16] reserved
//
// Version 0 pages (databases written before checksums existed) are
// readable but skip verification — the version byte is the upgrade key.
// Pages written by this engine version are always stamped version 1
// unless checksums are disabled. The heap meta page (page 0) keeps its
// own magic and is not checksummed.
const (
	pageVerOff = 6
	pageCrcOff = 8

	// PageVerLegacy marks a pre-checksum page: no verification possible.
	PageVerLegacy = 0
	// PageVerChecksum marks a page whose CRC32C field is valid.
	PageVerChecksum = 1
)

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptPage is the class of on-disk page corruption detected by
// checksum verification. Match with errors.Is; the concrete error is a
// *CorruptPageError naming the file and page. It fails the reading query
// only — other tables, whose pages are intact, stay readable.
var ErrCorruptPage = errors.New("storage: corrupt page (checksum mismatch)")

// CorruptPageError reports a page whose stored CRC32C does not match its
// contents.
type CorruptPageError struct {
	Path string
	Page PageID
	Want uint32 // stored checksum
	Got  uint32 // computed checksum
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %d of %s: stored crc32c %08x, computed %08x: checksum mismatch", e.Page, e.Path, e.Want, e.Got)
}

// Unwrap makes errors.Is(err, ErrCorruptPage) work.
func (e *CorruptPageError) Unwrap() error { return ErrCorruptPage }

// stampPageChecksum marks page as format-version 1 and stores its CRC32C.
// The checksum covers the whole page with the CRC field zeroed.
func stampPageChecksum(page []byte) {
	page[pageVerOff] = PageVerChecksum
	binary.LittleEndian.PutUint32(page[pageCrcOff:], 0)
	crc := crc32.Checksum(page, castagnoli)
	binary.LittleEndian.PutUint32(page[pageCrcOff:], crc)
}

// pageChecksumOf computes the CRC32C a page should carry (its stored CRC
// field treated as zero) without modifying the page.
func pageChecksumOf(page []byte) uint32 {
	crc := crc32.Checksum(page[:pageCrcOff], castagnoli)
	crc = crc32.Update(crc, castagnoli, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, castagnoli, page[pageCrcOff+4:])
	return crc
}

// checkPageChecksum verifies a version-1 page image. Version-0 (legacy)
// pages return (false, nil): nothing to verify. Unknown future versions
// are corruption — the engine cannot interpret them.
func checkPageChecksum(path string, id PageID, page []byte) (checked bool, err error) {
	switch page[pageVerOff] {
	case PageVerLegacy:
		return false, nil
	case PageVerChecksum:
		want := binary.LittleEndian.Uint32(page[pageCrcOff:])
		got := pageChecksumOf(page)
		if want != got {
			return true, &CorruptPageError{Path: path, Page: id, Want: want, Got: got}
		}
		return true, nil
	default:
		return true, fmt.Errorf("storage: page %d of %s: unknown page format version %d: %w",
			id, path, page[pageVerOff], ErrCorruptPage)
	}
}

// IntegrityCounters aggregates checksum-verification activity across a
// database's heaps. Snapshot in Database.ExecStats.
type IntegrityCounters struct {
	verified atomic.Int64
	failed   atomic.Int64
}

// Snapshot returns the current counter values.
func (c *IntegrityCounters) Snapshot() IntegrityStats {
	if c == nil {
		return IntegrityStats{}
	}
	return IntegrityStats{
		PagesVerified:    c.verified.Load(),
		ChecksumFailures: c.failed.Load(),
	}
}

// IntegrityStats is a point-in-time view of IntegrityCounters.
type IntegrityStats struct {
	PagesVerified    int64 // pages whose CRC32C was checked and matched or not
	ChecksumFailures int64 // pages whose CRC32C did not match
}

// Sub returns the per-interval delta c - o.
func (c IntegrityStats) Sub(o IntegrityStats) IntegrityStats {
	return IntegrityStats{
		PagesVerified:    c.PagesVerified - o.PagesVerified,
		ChecksumFailures: c.ChecksumFailures - o.ChecksumFailures,
	}
}
