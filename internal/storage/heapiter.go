package storage

import "repro/internal/sqltypes"

// HeapIterator is a pull-based scan over a range of sealed heap pages,
// optionally followed by a snapshot of the in-memory tail. It is the
// access path behind the engine's partitioned parallel table scans.
type HeapIterator struct {
	h        *Heap
	page     int64 // next sealed page (0-based)
	hiPage   int64
	buf      []sqltypes.Row
	pos      int
	tail     []sqltypes.Row // snapshot, served after the pages
	tailDone bool
}

// NewIterator returns an iterator over sealed pages [loPage, hiPage) and,
// when includeTail is set, the current tail rows. The tail is snapshotted
// at creation; concurrent appends are not visible.
func (h *Heap) NewIterator(loPage, hiPage int64, includeTail bool) *HeapIterator {
	it := &HeapIterator{h: h, page: loPage, hiPage: hiPage, tailDone: !includeTail}
	if includeTail {
		h.mu.RLock()
		it.tail = snapshotTail(h.tailRows)
		h.mu.RUnlock()
	}
	return it
}

// Next returns the next row. Rows are safe to retain (pages are decoded
// with copying).
func (it *HeapIterator) Next() (sqltypes.Row, bool, error) {
	for {
		if it.pos < len(it.buf) {
			r := it.buf[it.pos]
			it.pos++
			return r, true, nil
		}
		if it.page < it.hiPage {
			fr, err := it.h.pool.Get(it.h.file, PageID(it.page+1))
			if err != nil {
				return nil, false, err
			}
			rows, err := it.h.decodePage(fr.Data(), it.buf[:0])
			it.h.pool.Unpin(fr, false)
			if err != nil {
				return nil, false, err
			}
			it.buf = rows
			it.pos = 0
			it.page++
			continue
		}
		if !it.tailDone {
			it.buf = it.tail
			it.pos = 0
			it.tail = nil
			it.tailDone = true
			continue
		}
		return nil, false, nil
	}
}

// Close releases nothing (pages are unpinned eagerly) but satisfies the
// iterator contract.
func (it *HeapIterator) Close() error { return nil }

// snapshotTail copies the tail rows into fresh backing arrays. Consumers
// may overwrite cells of the rows they receive (the query layer unpacks
// SEQUENCE cells in place), so handing out the heap's own Row slices
// would corrupt the shared tail for every later scan. Cell contents
// (string/byte payloads) are never mutated and stay shared.
func snapshotTail(tail []sqltypes.Row) []sqltypes.Row {
	out := make([]sqltypes.Row, len(tail))
	for i, r := range tail {
		out[i] = append(sqltypes.Row(nil), r...)
	}
	return out
}

// HeapVersionIterator is a HeapIterator that also reports each row's
// global row index — the coordinate the MVCC layer stamps versions with.
// The partition that owns the table tail ("extend" mode) re-reads the
// sealed-page count at creation, so rows sealed between planning and
// opening are not lost; the visibility filter above hides whatever the
// scan's snapshot should not see.
type HeapVersionIterator struct {
	h       *Heap
	page    int64
	hiPage  int64
	cum     []int64 // captured pageCum (immutable prefix)
	buf     []sqltypes.Row
	pos     int
	baseIdx int64 // global index of buf[0]
	tail    []sqltypes.Row
	tailAt  int64 // global index of tail[0]
	tailOn  bool
	zf      []ZoneFilter
	stats   *VecScanStats
	tally   *PoolTally
}

// SetPoolTally attributes the iterator's buffer-pool traffic to tally
// (nil is valid). Returns the iterator for chaining.
func (it *HeapVersionIterator) SetPoolTally(t *PoolTally) *HeapVersionIterator {
	it.tally = t
	return it
}

// SetZoneFilters makes the iterator skip sealed pages whose zone-map
// range cannot satisfy the filters (conservative: pages without entries
// are read). Skipped pages are counted in stats (may be nil). Returns
// the iterator for chaining.
func (it *HeapVersionIterator) SetZoneFilters(fs []ZoneFilter, stats *VecScanStats) *HeapVersionIterator {
	it.zf = fs
	if stats == nil {
		stats = &discardVecStats
	}
	it.stats = stats
	return it
}

// NewVersionIterator returns an indexed iterator over sealed pages
// [loPage, hiPage). With extend=true the upper bound and the tail are
// captured atomically at call time instead (hiPage is ignored): the
// iterator covers every row physically present at creation.
func (h *Heap) NewVersionIterator(loPage, hiPage int64, extend bool) *HeapVersionIterator {
	h.mu.RLock()
	defer h.mu.RUnlock()
	it := &HeapVersionIterator{h: h, page: loPage, hiPage: hiPage, cum: h.pageCum}
	if extend {
		it.hiPage = int64(len(h.pageRows))
		it.tail = snapshotTail(h.tailRows)
		it.tailAt = h.rowCount - int64(len(h.tailRows))
		it.tailOn = true
	}
	if it.page > it.hiPage {
		it.page = it.hiPage
	}
	return it
}

// Next returns the next row and its global row index.
func (it *HeapVersionIterator) Next() (sqltypes.Row, int64, bool, error) {
	for {
		if it.pos < len(it.buf) {
			r := it.buf[it.pos]
			idx := it.baseIdx + int64(it.pos)
			it.pos++
			return r, idx, true, nil
		}
		if it.page < it.hiPage {
			if len(it.zf) > 0 && it.h.ZoneSkip(it.page, it.zf) {
				it.stats.ZoneSkippedPages.Add(1)
				it.page++
				continue
			}
			fr, err := it.h.pool.GetT(it.h.file, PageID(it.page+1), it.tally)
			if err != nil {
				return nil, 0, false, err
			}
			rows, err := it.h.decodePage(fr.Data(), it.buf[:0])
			it.h.pool.Unpin(fr, false)
			if err != nil {
				return nil, 0, false, err
			}
			it.buf = rows
			it.pos = 0
			it.baseIdx = it.cum[it.page]
			it.page++
			continue
		}
		if it.tailOn {
			it.buf = it.tail
			it.pos = 0
			it.baseIdx = it.tailAt
			it.tail = nil
			it.tailOn = false
			continue
		}
		return nil, 0, false, nil
	}
}

// Close satisfies the iterator contract.
func (it *HeapVersionIterator) Close() error { return nil }
