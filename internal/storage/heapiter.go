package storage

import "repro/internal/sqltypes"

// HeapIterator is a pull-based scan over a range of sealed heap pages,
// optionally followed by a snapshot of the in-memory tail. It is the
// access path behind the engine's partitioned parallel table scans.
type HeapIterator struct {
	h        *Heap
	page     int64 // next sealed page (0-based)
	hiPage   int64
	buf      []sqltypes.Row
	pos      int
	tail     []sqltypes.Row // snapshot, served after the pages
	tailDone bool
}

// NewIterator returns an iterator over sealed pages [loPage, hiPage) and,
// when includeTail is set, the current tail rows. The tail is snapshotted
// at creation; concurrent appends are not visible.
func (h *Heap) NewIterator(loPage, hiPage int64, includeTail bool) *HeapIterator {
	it := &HeapIterator{h: h, page: loPage, hiPage: hiPage, tailDone: !includeTail}
	if includeTail {
		h.mu.RLock()
		it.tail = make([]sqltypes.Row, len(h.tailRows))
		copy(it.tail, h.tailRows)
		h.mu.RUnlock()
	}
	return it
}

// Next returns the next row. Rows are safe to retain (pages are decoded
// with copying).
func (it *HeapIterator) Next() (sqltypes.Row, bool, error) {
	for {
		if it.pos < len(it.buf) {
			r := it.buf[it.pos]
			it.pos++
			return r, true, nil
		}
		if it.page < it.hiPage {
			fr, err := it.h.pool.Get(it.h.file, PageID(it.page+1))
			if err != nil {
				return nil, false, err
			}
			rows, err := it.h.decodePage(fr.Data(), it.buf[:0])
			it.h.pool.Unpin(fr, false)
			if err != nil {
				return nil, false, err
			}
			it.buf = rows
			it.pos = 0
			it.page++
			continue
		}
		if !it.tailDone {
			it.buf = it.tail
			it.pos = 0
			it.tail = nil
			it.tailDone = true
			continue
		}
		return nil, false, nil
	}
}

// Close releases nothing (pages are unpinned eagerly) but satisfies the
// iterator contract.
func (it *HeapIterator) Close() error { return nil }
