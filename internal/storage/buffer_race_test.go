package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBufferPoolLockFreeHitPath hammers the atomic pin path: a working
// set that fits the pool is read by many goroutines (all warm hits, no
// shard lock), while an eviction churner cycles through a larger file to
// force recycles, and writers dirty pages concurrently. Run under -race
// this exercises every ordering in the frame state protocol: tryPin vs
// evictLocked's generation CAS, Unpin's dirty-before-release vs the
// evictor's post-CAS dirty re-check, and install publication.
func TestBufferPoolLockFreeHitPath(t *testing.T) {
	dir := t.TempDir()
	const hotPages = 24
	const coldPages = 256
	bp := NewBufferPoolSharded(64, 8)
	hot := stampedFile(t, dir, "hot.pg", hotPages)
	cold := stampedFile(t, dir, "cold.pg", coldPages)
	defer hot.Close()
	defer cold.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
		stop.Store(true)
	}

	// Hot readers: repeatedly pin a small working set and verify content.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				page := (seed*7 + i) % hotPages
				fr, err := bp.Get(hot, PageID(page))
				if err != nil {
					fail(err)
					return
				}
				d := fr.Data()
				if d[0] != byte(page) || d[1] != byte(page>>8) {
					fail(fmt.Errorf("page %d read as %d,%d", page, d[0], d[1]))
					bp.Unpin(fr, false)
					return
				}
				bp.Unpin(fr, false)
			}
		}(g)
	}

	// Eviction churn: sweep a file much larger than the pool so frames
	// recycle constantly, racing the hot readers' lock-free pins.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				page := (seed*131 + i*13) % coldPages
				fr, err := bp.Get(cold, PageID(page))
				if err != nil {
					fail(err)
					return
				}
				d := fr.Data()
				if d[0] != byte(page) || d[1] != byte(page>>8) {
					fail(fmt.Errorf("cold page %d read as %d,%d", page, d[0], d[1]))
					bp.Unpin(fr, false)
					return
				}
				bp.Unpin(fr, false)
			}
		}(g)
	}

	// Writer: dirties its own file's pages (page content is the writer's
	// responsibility to coordinate, so it must not share pages with the
	// readers), exercising Unpin(dirty) vs the evictor's post-CAS dirty
	// re-check. A periodic flush keeps the dirty set bounded so eviction
	// never starves.
	const wrPages = 16
	wr := stampedFile(t, dir, "wr.pg", wrPages)
	defer wr.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			page := i % wrPages
			fr, err := bp.Get(wr, PageID(page))
			if err != nil {
				fail(err)
				return
			}
			d := fr.Data()
			if d[0] != byte(page) || d[1] != byte(page>>8) {
				fail(fmt.Errorf("writer page %d read as %d,%d", page, d[0], d[1]))
				bp.Unpin(fr, false)
				return
			}
			d[2]++ // benign mutation under the pin
			bp.Unpin(fr, true)
			if i%wrPages == wrPages-1 {
				if err := bp.FlushFile(wr); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	// Stats poller, racing the atomic counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = bp.Stats().HitRate()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Run until the cold sweep has forced real churn (bounded by a
	// deadline so a hang fails fast instead of forever).
	deadline := time.Now().Add(5 * time.Second)
	for bp.Stats().Evictions < 500 && time.Now().Before(deadline) && !stop.Load() {
		fr, err := bp.Get(hot, PageID(int(bp.Stats().Hits)%hotPages))
		if err != nil {
			fail(err)
			break
		}
		bp.Unpin(fr, false)
	}
	stop.Store(true)
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := bp.FlushFile(hot); err != nil {
		t.Fatal(err)
	}
	checkPoolInvariants(t, bp)

	st := bp.Stats()
	if st.Hits == 0 {
		t.Fatal("stress run recorded no warm hits")
	}
	if st.Evictions == 0 {
		t.Fatal("stress run recorded no evictions; cold sweep did not create churn")
	}
}
