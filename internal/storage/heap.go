package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/sqltypes"
)

// Heap page layout. Page 0 is the meta page:
//
//	magic   [4]byte "GHP1"
//	comp    byte
//	durableRows  uint64    rows persisted at the last checkpoint
//	durablePages uint64    data pages persisted at the last checkpoint
//
// Data pages (ids >= 1):
//
//	type   byte  (1 = rowpage, 2 = page-compressed, 3 = columnar)
//	comp   byte
//	rows   uint16
//	used   uint16  payload length
//	payload from byte 16
const (
	heapMagic      = "GHP1"
	heapHeaderSize = 16
	heapCapacity   = PageSize - heapHeaderSize

	pageTypeRows       = 1
	pageTypeCompressed = 2
)

// Heap is an append-organized table file — the engine's equivalent of a
// SQL Server heap. Appends accumulate in an in-memory tail page that is
// sealed to disk when full; the meta page records the durable row count
// for the WAL's idempotent-redo protocol.
type Heap struct {
	mu    sync.RWMutex
	file  *PagedFile
	pool  *BufferPool
	kinds []sqltypes.Kind
	comp  Compression
	codec RowCodec

	rowCount    int64   // total rows including the in-memory tail
	pageRows    []int   // rows per sealed data page (index 0 = page 1)
	pageCum     []int64 // pageCum[i] = rows in sealed pages [0, i); len = len(pageRows)+1
	durableRows int64   // as recorded on the meta page
	// zones holds per-page min/max summaries, parallel to pageRows; a nil
	// element means "not collected" and the page is never skipped. See
	// zonemap.go.
	zones [][]ZoneEntry

	checksums bool               // stamp CRC32C on sealed pages
	integ     *IntegrityCounters // shared verification counters (may be nil)

	// In-memory tail.
	tailRows  []sqltypes.Row // retained for CompressPage mode and truncation
	tailBytes []byte         // row-format encoding (modes none/row)
	tailOffs  []int          // start offset of each tail row in tailBytes
	nextCheck int            // page-compression size re-check threshold
}

// OpenHeap opens or creates a heap with the given column kinds and
// compression mode. An existing file is truncated back to its durable
// state (rows beyond the last checkpoint are discarded; the WAL replays
// them).
func OpenHeap(path string, kinds []sqltypes.Kind, comp Compression, pool *BufferPool) (*Heap, error) {
	return OpenHeapWidths(path, kinds, nil, comp, pool)
}

// OpenHeapWidths is OpenHeap with explicit fixed integer widths for the
// uncompressed row format (see RowCodec.Widths).
func OpenHeapWidths(path string, kinds []sqltypes.Kind, widths []uint8, comp Compression, pool *BufferPool) (*Heap, error) {
	return OpenHeapEnv(path, kinds, widths, comp, pool, HeapEnv{})
}

// HeapEnv carries cross-cutting wiring into a heap: fault injection,
// shared integrity counters, and the checksum switch. The zero value
// means no injection, no shared counters, checksums on.
type HeapEnv struct {
	// Injector routes the heap's file I/O through failpoints; nil means
	// direct OS I/O.
	Injector *fault.Injector
	// Integrity receives verification counts; nil allocates a private set.
	Integrity *IntegrityCounters
	// DisableChecksums writes legacy (version-0) pages and skips all
	// verification — for format-compatibility tests and A/B benchmarks.
	DisableChecksums bool
}

// OpenHeapEnv is OpenHeapWidths with fault-injection and integrity wiring.
func OpenHeapEnv(path string, kinds []sqltypes.Kind, widths []uint8, comp Compression, pool *BufferPool, env HeapEnv) (*Heap, error) {
	f, err := OpenPagedFileFault(path, env.Injector, "heap")
	if err != nil {
		return nil, err
	}
	integ := env.Integrity
	if integ == nil {
		integ = &IntegrityCounters{}
	}
	h := &Heap{
		file:      f,
		pool:      pool,
		kinds:     append([]sqltypes.Kind(nil), kinds...),
		comp:      comp,
		codec:     RowCodec{Kinds: kinds, Mode: rowMode(comp), Widths: widths},
		pageCum:   []int64{0},
		checksums: !env.DisableChecksums,
		integ:     integ,
	}
	if h.checksums {
		// Verify data pages on every read that comes from disk (the
		// buffer pool calls this on misses; warm hits never re-verify).
		f.SetPageVerifier(func(id PageID, data []byte) error {
			if id == 0 {
				return nil // meta page has its own magic, no checksum
			}
			return h.verifyDataPage(id, data)
		})
	}
	if f.NumPages() == 0 {
		if _, err := f.Allocate(); err != nil {
			f.Close()
			return nil, err
		}
		if err := h.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
		return h, nil
	}
	if err := h.loadAndRecover(); err != nil {
		f.Close()
		return nil, err
	}
	return h, nil
}

// rowMode maps the table compression mode to the row codec mode: page
// compression stores rows in ROW format when a page does not benefit from
// page-level coding, and the in-memory tail is always raw rows.
func rowMode(c Compression) Compression {
	if c == CompressNone {
		return CompressNone
	}
	return CompressRow
}

func (h *Heap) writeMeta() error {
	var page [PageSize]byte
	copy(page[0:4], heapMagic)
	page[4] = byte(h.comp)
	binary.LittleEndian.PutUint64(page[8:], uint64(h.durableRows))
	binary.LittleEndian.PutUint64(page[16:], uint64(len(h.pageRows)))
	return h.file.WritePage(0, page[:])
}

func (h *Heap) loadAndRecover() error {
	var meta [PageSize]byte
	if err := h.file.ReadPage(0, meta[:]); err != nil {
		return err
	}
	if string(meta[0:4]) != heapMagic {
		return fmt.Errorf("storage: %s is not a heap file", h.file.Path())
	}
	if Compression(meta[4]) != h.comp {
		return fmt.Errorf("storage: %s compression %s does not match declared %s",
			h.file.Path(), Compression(meta[4]), h.comp)
	}
	durableRows := int64(binary.LittleEndian.Uint64(meta[8:]))
	durablePages := int64(binary.LittleEndian.Uint64(meta[16:]))
	if durablePages+1 > h.file.NumPages() {
		return fmt.Errorf("storage: %s meta claims %d pages, file has %d",
			h.file.Path(), durablePages, h.file.NumPages()-1)
	}
	// Discard anything written after the last completed checkpoint.
	if err := h.file.Truncate(durablePages + 1); err != nil {
		return err
	}
	var buf [PageSize]byte
	total := int64(0)
	h.pageRows = h.pageRows[:0]
	h.pageCum = append(h.pageCum[:0], 0)
	for p := int64(1); p <= durablePages; p++ {
		if err := h.file.ReadPage(PageID(p), buf[:]); err != nil {
			return err
		}
		n := int(binary.LittleEndian.Uint16(buf[2:]))
		h.pageRows = append(h.pageRows, n)
		total += int64(n)
		h.pageCum = append(h.pageCum, total)
	}
	if total < durableRows {
		return fmt.Errorf("storage: %s pages hold %d rows, meta claims %d", h.file.Path(), total, durableRows)
	}
	// A checkpoint may have persisted a partially-filled tail page; if the
	// meta row count is smaller, drop the excess rows back into the tail.
	if total > durableRows {
		excess := total - durableRows
		last := int64(len(h.pageRows))
		if int64(h.pageRows[last-1]) < excess {
			return fmt.Errorf("storage: %s inconsistent meta: excess %d rows beyond last page", h.file.Path(), excess)
		}
		rows, err := h.decodePage(buf[:], nil) // buf still holds the last page
		if err != nil {
			return err
		}
		keep := rows[:int64(len(rows))-excess]
		h.pageRows = h.pageRows[:last-1]
		h.pageCum = h.pageCum[:last]
		if err := h.file.Truncate(last); err != nil { // drop the partial page
			return err
		}
		h.rowCount = durableRows - int64(len(keep))
		for _, r := range keep {
			if err := h.Append(r); err != nil {
				return err
			}
		}
	}
	h.rowCount = durableRows
	h.durableRows = durableRows
	return nil
}

// Kinds returns the column kinds.
func (h *Heap) Kinds() []sqltypes.Kind { return h.kinds }

// Compression returns the table's compression mode.
func (h *Heap) Compression() Compression { return h.comp }

// RowCount returns the total number of rows, including the unsealed tail.
func (h *Heap) RowCount() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rowCount
}

// DurableRows returns the row count persisted by the last checkpoint.
func (h *Heap) DurableRows() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.durableRows
}

// Append adds a row at the end of the heap.
func (h *Heap) Append(row sqltypes.Row) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.appendLocked(row)
}

func (h *Heap) appendLocked(row sqltypes.Row) error {
	start := len(h.tailBytes)
	enc, err := h.codec.EncodeAppend(h.tailBytes, row)
	if err != nil {
		return err
	}
	rowLen := len(enc) - start
	if rowLen > heapCapacity {
		h.tailBytes = h.tailBytes[:start]
		return fmt.Errorf("storage: row of %d bytes exceeds page capacity %d", rowLen, heapCapacity)
	}
	h.tailBytes = enc
	h.tailOffs = append(h.tailOffs, start)
	h.tailRows = append(h.tailRows, row.Clone())
	h.rowCount++

	if h.comp != CompressPage {
		if len(h.tailBytes) > heapCapacity {
			return h.sealAllButLastLocked()
		}
		return nil
	}
	// Page compression: the ROW-format image may exceed the page as long
	// as the compressed image still fits. Compressing on every append
	// would be quadratic, so re-check only when the raw size passes
	// nextCheck; the threshold advances by the remaining head-room (the
	// compressed image grows at most as fast as the raw one).
	if len(h.tailBytes) <= heapCapacity || len(h.tailBytes) < h.nextCheck {
		return nil
	}
	comp, err := CompressPageRows(h.kinds, h.tailRows)
	if err != nil {
		return err
	}
	if len(comp) >= heapCapacity {
		return h.sealAllButLastLocked()
	}
	h.nextCheck = len(h.tailBytes) + (heapCapacity-len(comp))/2
	return nil
}

// sealAllButLastLocked seals the tail minus its newest row (which
// triggered the overflow), then starts a fresh tail with that row.
func (h *Heap) sealAllButLastLocked() error {
	n := len(h.tailRows)
	last := h.tailRows[n-1]
	h.tailRows = h.tailRows[:n-1]
	h.tailBytes = h.tailBytes[:h.tailOffs[n-1]]
	h.tailOffs = h.tailOffs[:n-1]
	if err := h.sealTailLocked(); err != nil {
		return err
	}
	h.rowCount-- // appendLocked will count it again
	return h.appendLocked(last)
}

// sealTailLocked writes the tail as a new data page. If the page image
// overflows (possible with page compression between re-checks), rows are
// popped until it fits and re-appended afterwards.
func (h *Heap) sealTailLocked() error {
	if len(h.tailRows) == 0 {
		return nil
	}
	var overflow []sqltypes.Row
	var page []byte
	var sealed int
	for {
		var err error
		page, sealed, err = h.buildTailPageLocked()
		if err == nil {
			break
		}
		if err != errPageOverflow || len(h.tailRows) <= 1 {
			return err
		}
		n := len(h.tailRows)
		overflow = append(overflow, h.tailRows[n-1])
		h.tailRows = h.tailRows[:n-1]
		h.tailBytes = h.tailBytes[:h.tailOffs[n-1]]
		h.tailOffs = h.tailOffs[:n-1]
	}
	id, err := h.file.Allocate()
	if err != nil {
		return err
	}
	if err := h.file.WritePage(id, page); err != nil {
		return err
	}
	h.pageRows = append(h.pageRows, sealed)
	h.pageCum = append(h.pageCum, h.pageCum[len(h.pageCum)-1]+int64(sealed))
	h.noteSealedZonesLocked(h.tailRows) // h.tailRows holds exactly the sealed rows here
	h.tailRows = h.tailRows[:0]
	h.tailBytes = h.tailBytes[:0]
	h.tailOffs = h.tailOffs[:0]
	h.nextCheck = 0
	for i := len(overflow) - 1; i >= 0; i-- { // restore original order
		h.rowCount--
		if err := h.appendLocked(overflow[i]); err != nil {
			return err
		}
	}
	return nil
}

// errPageOverflow signals that a page image exceeds the page capacity.
var errPageOverflow = fmt.Errorf("storage: sealed payload exceeds page capacity")

// buildTailPageLocked renders the tail rows as a page image.
func (h *Heap) buildTailPageLocked() ([]byte, int, error) {
	payload := h.tailBytes
	ptype := byte(pageTypeRows)
	if h.comp == CompressPage {
		comp, err := CompressPageRows(h.kinds, h.tailRows)
		if err != nil {
			return nil, 0, err
		}
		// Fall back to ROW format when page coding does not pay off, as
		// SQL Server does.
		if len(comp) < len(payload) {
			payload = comp
			ptype = pageTypeCompressed
		}
		// The columnar format wins on low-NDV columns (dictionary/RLE
		// codes) and additionally feeds the vectorized scanner without a
		// row detour; take it when it is the smallest of the three.
		colImg, err := EncodeColumnarPage(h.kinds, h.tailRows, len(payload))
		if err != nil {
			return nil, 0, err
		}
		if colImg != nil && len(colImg) < len(payload) {
			payload = colImg
			ptype = pageTypeColumnar
		}
	}
	if len(payload) > heapCapacity {
		return nil, 0, errPageOverflow
	}
	page := make([]byte, PageSize)
	page[0] = ptype
	page[1] = byte(h.comp)
	binary.LittleEndian.PutUint16(page[2:], uint16(len(h.tailRows)))
	binary.LittleEndian.PutUint16(page[4:], uint16(len(payload)))
	copy(page[heapHeaderSize:], payload)
	if h.checksums {
		stampPageChecksum(page)
	}
	return page, len(h.tailRows), nil
}

// verifyDataPage checks a sealed data page's CRC32C (version-1 pages;
// legacy version-0 pages pass unverified) and maintains the integrity
// counters. Returns a *CorruptPageError on mismatch.
func (h *Heap) verifyDataPage(id PageID, data []byte) error {
	checked, err := checkPageChecksum(h.file.Path(), id, data)
	if checked {
		h.integ.verified.Add(1)
	}
	if err != nil {
		h.integ.failed.Add(1)
	}
	return err
}

// VerifyChecksums reads every sealed data page from disk and checks its
// checksum. It returns the number of pages checked, the number skipped
// (legacy version-0 pages, which carry no checksum), and one error per
// bad page (checksum mismatches and read failures). The buffer pool is
// bypassed so the scan validates the actual on-disk bytes.
func (h *Heap) VerifyChecksums() (checked, skipped int64, failures []error) {
	h.mu.RLock()
	sealed := int64(len(h.pageRows))
	h.mu.RUnlock()
	var buf [PageSize]byte
	for p := int64(1); p <= sealed; p++ {
		if err := h.file.ReadPage(PageID(p), buf[:]); err != nil {
			failures = append(failures, err)
			continue
		}
		wasChecked, err := checkPageChecksum(h.file.Path(), PageID(p), buf[:])
		if !wasChecked {
			skipped++
			continue
		}
		checked++
		h.integ.verified.Add(1)
		if err != nil {
			h.integ.failed.Add(1)
			failures = append(failures, err)
		}
	}
	return checked, skipped, failures
}

// decodePage extracts all rows from a data page image.
func (h *Heap) decodePage(page []byte, dst []sqltypes.Row) ([]sqltypes.Row, error) {
	n := int(binary.LittleEndian.Uint16(page[2:]))
	used := int(binary.LittleEndian.Uint16(page[4:]))
	payload := page[heapHeaderSize : heapHeaderSize+used]
	switch page[0] {
	case pageTypeRows:
		pos := 0
		for i := 0; i < n; i++ {
			row, consumed, err := h.codec.Decode(payload[pos:], true)
			if err != nil {
				return nil, err
			}
			pos += consumed
			dst = append(dst, row)
		}
		return dst, nil
	case pageTypeCompressed:
		return DecompressPageRows(h.kinds, payload, dst)
	case pageTypeColumnar:
		return DecodeColumnarRows(h.kinds, payload, dst)
	}
	return nil, fmt.Errorf("storage: unknown heap page type %d", page[0])
}

// SealedPages returns the number of sealed data pages, the unit of
// parallel scan partitioning.
func (h *Heap) SealedPages() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return int64(len(h.pageRows))
}

// ScanPages invokes fn for every row of sealed data pages in [lo, hi)
// (0-based sealed-page indexes). fn must not retain the row.
func (h *Heap) ScanPages(lo, hi int64, fn func(sqltypes.Row) error) error {
	for p := lo; p < hi; p++ {
		fr, err := h.pool.Get(h.file, PageID(p+1))
		if err != nil {
			return err
		}
		rows, err := h.decodePage(fr.Data(), nil)
		h.pool.Unpin(fr, false)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScanTail invokes fn for the unsealed tail rows.
func (h *Heap) ScanTail(fn func(sqltypes.Row) error) error {
	h.mu.RLock()
	rows := h.tailRows
	h.mu.RUnlock()
	for _, r := range rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Scan invokes fn for every row in insertion order.
func (h *Heap) Scan(fn func(sqltypes.Row) error) error {
	if err := h.ScanPages(0, h.SealedPages(), fn); err != nil {
		return err
	}
	return h.ScanTail(fn)
}

// Checkpoint persists all rows (sealing the tail as a partial page), syncs
// the file, and records the durable row count on the meta page. After a
// successful checkpoint the WAL up to this point may be truncated.
func (h *Heap) Checkpoint() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Seal the partial tail as a final (possibly under-filled) page;
	// subsequent appends start a fresh page. Checkpoints are rare enough
	// that the fragmentation is negligible. Sealing can leave re-appended
	// overflow rows in the tail, hence the loop.
	for len(h.tailRows) > 0 {
		if err := h.sealTailLocked(); err != nil {
			return err
		}
	}
	if err := h.file.Sync(); err != nil {
		return err
	}
	h.durableRows = h.rowCount
	if err := h.writeMeta(); err != nil {
		return err
	}
	return h.file.Sync()
}

// Truncate discards rows from the end until n remain — the rollback path
// for aborted transactions. It only supports truncating back to a point at
// or after the last checkpoint (the WAL cannot need to undo further).
func (h *Heap) Truncate(n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n < 0 || n > h.rowCount {
		return fmt.Errorf("storage: truncate to %d of %d rows", n, h.rowCount)
	}
	if n < h.durableRows {
		return fmt.Errorf("storage: cannot truncate to %d, below durable row count %d", n, h.durableRows)
	}
	for h.rowCount > n {
		drop := h.rowCount - n
		if int64(len(h.tailRows)) >= drop {
			h.tailRows = h.tailRows[:int64(len(h.tailRows))-drop]
			h.tailOffs = h.tailOffs[:len(h.tailRows)]
			if len(h.tailOffs) > 0 {
				h.tailBytes = h.tailBytes[:h.tailOffs[len(h.tailOffs)-1]+rowEncLen(h.codec, h.tailRows[len(h.tailRows)-1])]
			} else {
				h.tailBytes = h.tailBytes[:0]
			}
			h.rowCount = n
			break
		}
		// Tail is not enough: pull the last sealed page back into memory.
		h.rowCount -= int64(len(h.tailRows))
		h.tailRows = h.tailRows[:0]
		h.tailBytes = h.tailBytes[:0]
		h.tailOffs = h.tailOffs[:0]
		h.nextCheck = 0
		last := int64(len(h.pageRows))
		if last == 0 {
			return fmt.Errorf("storage: truncate bookkeeping underflow")
		}
		fr, err := h.pool.Get(h.file, PageID(last))
		if err != nil {
			return err
		}
		rows, err := h.decodePage(fr.Data(), nil)
		h.pool.Unpin(fr, false)
		if err != nil {
			return err
		}
		h.pageRows = h.pageRows[:last-1]
		h.pageCum = h.pageCum[:last]
		if int64(len(h.zones)) >= last {
			h.zones = h.zones[:last-1]
		}
		h.rowCount -= int64(len(rows))
		h.pool.DropFile(h.file) // stale cache below the truncation point
		if err := h.file.Truncate(last); err != nil {
			return err
		}
		for _, r := range rows {
			if err := h.appendLocked(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// rowEncLen returns the encoded length of row under codec.
func rowEncLen(c RowCodec, row sqltypes.Row) int {
	enc, err := c.EncodeAppend(nil, row)
	if err != nil {
		return 0
	}
	return len(enc)
}

// SizeBytes returns the allocated on-disk size, including the meta page.
func (h *Heap) SizeBytes() int64 { return h.file.SizeBytes() }

// UsedBytes returns the payload bytes across sealed pages plus the tail.
func (h *Heap) UsedBytes() (int64, error) {
	h.mu.RLock()
	sealed := int64(len(h.pageRows))
	tail := int64(len(h.tailBytes))
	h.mu.RUnlock()
	total := tail
	var buf [PageSize]byte
	for p := int64(1); p <= sealed; p++ {
		if err := h.file.ReadPage(PageID(p), buf[:]); err != nil {
			return 0, err
		}
		total += int64(binary.LittleEndian.Uint16(buf[4:]))
	}
	return total, nil
}

// Close flushes nothing (checkpoint first for durability) and releases the
// file handle.
func (h *Heap) Close() error {
	h.pool.DropFile(h.file)
	return h.file.Close()
}

// File exposes the underlying paged file for size accounting.
func (h *Heap) File() *PagedFile { return h.file }
