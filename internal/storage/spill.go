package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/sqltypes"
)

// Spill files hold intermediate query state (hash-join partitions that
// exceed the join memory budget) in the engine's paged format rather than
// ad-hoc temp files: rows are encoded with a self-describing variant of
// the row codec, packed into standard 8 KB pages, and read back through
// the sharded buffer pool so re-probes of a recently spilled partition hit
// memory. Pages are written straight to disk when sealed (spill data is
// transient, so it must not occupy the pool's no-steal dirty frames), and
// Release drops any cached pages and removes the file.
//
// The payload is a byte stream of length-prefixed rows chunked across
// pages — a row larger than one page simply spans pages, so anything the
// in-memory join can hold can also spill (unpacked SEQUENCE strings
// routinely exceed 8 KB).
//
// Spill page layout:
//
//	used uint16  payload length
//	(6 bytes reserved)
//	payload from byte 8
const (
	spillHeaderSize = 8
	spillCapacity   = PageSize - spillHeaderSize
)

// SpillManager creates temp spill files under one directory, sharing the
// engine's buffer pool for reads.
type SpillManager struct {
	dir   string
	pool  *BufferPool
	inj   *fault.Injector
	seq   atomic.Uint64
	sweep sync.Once
}

// NewSpillManager returns a manager rooted at dir (created on first use).
func NewSpillManager(dir string, pool *BufferPool) *SpillManager {
	return NewSpillManagerFault(dir, pool, nil)
}

// NewSpillManagerFault is NewSpillManager with fault-injection routing
// for spill-file I/O (site "spill").
func NewSpillManagerFault(dir string, pool *BufferPool, inj *fault.Injector) *SpillManager {
	return &SpillManager{dir: dir, pool: pool, inj: inj}
}

// Create opens a fresh spill file. The first Create sweeps spill files a
// crashed process may have left behind: they are transient query state,
// and this process's name sequence would collide with them (a reopened
// stale file would replay the previous run's rows into a join).
func (m *SpillManager) Create() (*SpillFile, error) {
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: spill dir: %w", err)
	}
	m.sweep.Do(func() {
		stale, _ := filepath.Glob(filepath.Join(m.dir, "spill-*.tmp"))
		for _, p := range stale {
			os.Remove(p)
		}
	})
	path := filepath.Join(m.dir, fmt.Sprintf("spill-%d.tmp", m.seq.Add(1)))
	os.Remove(path) // never inherit stale pages
	f, err := OpenPagedFileFault(path, m.inj, "spill")
	if err != nil {
		return nil, err
	}
	return &SpillFile{file: f, pool: m.pool, inj: m.inj}, nil
}

// CreateRun opens a spill file tuned for sorted runs: the external merge
// sort writes each run once, in order, and reads it back exactly once
// during the k-way merge. Its iterators therefore stream pages straight
// from disk with a private one-page buffer instead of going through the
// buffer pool — a wide merge fan-in must not evict the workload's hot
// pages for bytes that will never be read again. Writes already bypass
// the pool (see sealTailLocked), so a run performs zero pool traffic.
func (m *SpillManager) CreateRun() (*SpillFile, error) {
	f, err := m.Create()
	if err != nil {
		return nil, err
	}
	f.sequential = true
	return f, nil
}

// SpillFile is an append-then-iterate temp row file. Append is safe for
// concurrent use (parallel probe workers feed the same spilled partition);
// iteration must not overlap appends. The unsealed tail stays in memory,
// so a file that never fills a page performs no I/O at all.
type SpillFile struct {
	mu       sync.Mutex
	file     *PagedFile
	pool     *BufferPool
	inj      *fault.Injector
	tail     []byte
	pages    int64 // sealed data pages
	rows     int64
	bytes    int64
	scratch  []byte
	released bool
	// sequential marks a sorted-run file (CreateRun): iterators read pages
	// directly instead of caching them in the buffer pool.
	sequential bool
	// Run boundaries (SealRun): start of the currently open run.
	runStartPage  int64
	runStartRows  int64
	runStartBytes int64
}

// Append adds one row.
func (s *SpillFile) Append(row sqltypes.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return fmt.Errorf("storage: append to released spill file")
	}
	enc, err := AppendAnyRow(s.scratch[:0], row)
	if err != nil {
		return err
	}
	s.scratch = enc
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(enc)))
	if err := s.writeStreamLocked(hdr[:hn]); err != nil {
		return err
	}
	if err := s.writeStreamLocked(enc); err != nil {
		return err
	}
	s.rows++
	s.bytes += int64(hn + len(enc))
	return nil
}

// writeStreamLocked appends raw stream bytes, sealing full pages as they
// fill; rows thus chunk across page boundaries.
func (s *SpillFile) writeStreamLocked(b []byte) error {
	for len(b) > 0 {
		space := spillCapacity - len(s.tail)
		if space == 0 {
			if err := s.sealTailLocked(); err != nil {
				return err
			}
			continue
		}
		n := space
		if len(b) < n {
			n = len(b)
		}
		s.tail = append(s.tail, b[:n]...)
		b = b[n:]
	}
	return nil
}

// sealTailLocked writes the tail as a new page, bypassing the pool: dirty
// frames are never evicted (no-steal), so buffering spill writes in the
// pool would pin it full. Reads go through the pool and cache normally.
func (s *SpillFile) sealTailLocked() error {
	if len(s.tail) == 0 {
		return nil
	}
	var page [PageSize]byte
	binary.LittleEndian.PutUint16(page[0:], uint16(len(s.tail)))
	copy(page[spillHeaderSize:], s.tail)
	id, err := s.file.Allocate()
	if err != nil {
		return fmt.Errorf("storage: spilling query temp state to %s: %w", s.file.Path(), err)
	}
	if err := s.file.WritePage(id, page[:]); err != nil {
		return fmt.Errorf("storage: spilling query temp state to %s: %w", s.file.Path(), err)
	}
	s.pages++
	s.tail = s.tail[:0]
	return nil
}

// SealRun closes the run being appended: the tail page is sealed (runs
// are page-aligned) and the run's page span, row count and payload bytes
// are returned for NewRunIterator. An external merge sort appends every
// run of one operator back to back into a single spill file this way —
// hundreds of runs cost one file create/remove instead of hundreds.
func (s *SpillFile) SealRun() (start, end, rows, bytes int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return 0, 0, 0, 0, fmt.Errorf("storage: seal run on released spill file")
	}
	if err := s.sealTailLocked(); err != nil {
		return 0, 0, 0, 0, err
	}
	start, end = s.runStartPage, s.pages
	rows = s.rows - s.runStartRows
	bytes = s.bytes - s.runStartBytes
	s.runStartPage, s.runStartRows, s.runStartBytes = s.pages, s.rows, s.bytes
	return start, end, rows, bytes, nil
}

// NewRunIterator streams one sealed run (pages [start, end), rows rows).
// Runs never share pages, so the iterator needs no tail snapshot.
func (s *SpillFile) NewRunIterator(start, end, rows int64) *SpillIterator {
	return &SpillIterator{f: s, page: start, hiPage: end, rowsLeft: rows}
}

// Rows returns the number of appended rows.
func (s *SpillFile) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Bytes returns the encoded payload size.
func (s *SpillFile) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// NewIterator returns an iterator over all appended rows, in order. The
// caller must not Append while iterating.
func (s *SpillFile) NewIterator() *SpillIterator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SpillIterator{
		f:        s,
		hiPage:   s.pages,
		rowsLeft: s.rows,
		tail:     append([]byte(nil), s.tail...),
	}
}

// Release drops cached pages, closes and removes the file. Safe to call
// more than once.
func (s *SpillFile) Release() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return nil
	}
	s.released = true
	s.pool.DropFile(s.file)
	err := s.file.Close()
	if rmErr := fault.Remove(s.inj, s.file.Path()); err == nil {
		err = rmErr
	}
	return err
}

// SpillIterator streams a SpillFile's rows: sealed pages (read through the
// buffer pool, unpinned eagerly) followed by a snapshot of the tail. A
// small carry buffer reassembles rows that span page boundaries.
type SpillIterator struct {
	f        *SpillFile
	page     int64
	hiPage   int64
	rowsLeft int64
	tail     []byte
	tailDone bool
	buf      []byte
	pos      int
	pageBuf  []byte // private page buffer for sequential (run) files
}

// Next returns the next row. Rows are safe to retain.
func (it *SpillIterator) Next() (sqltypes.Row, bool, error) {
	if it.rowsLeft == 0 {
		return nil, false, nil
	}
	for {
		ln, n := binary.Uvarint(it.buf[it.pos:])
		if n < 0 {
			return nil, false, fmt.Errorf("storage: corrupt spill row length")
		}
		if n > 0 && it.pos+n+int(ln) <= len(it.buf) {
			frame := it.buf[it.pos+n : it.pos+n+int(ln)]
			row, consumed, err := DecodeAnyRow(frame)
			if err != nil {
				return nil, false, err
			}
			if consumed != int(ln) {
				return nil, false, fmt.Errorf("storage: spill row used %d of %d bytes", consumed, ln)
			}
			it.pos += n + int(ln)
			it.rowsLeft--
			return row, true, nil
		}
		ok, err := it.refill()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, fmt.Errorf("storage: spill file truncated (%d rows missing)", it.rowsLeft)
		}
	}
}

// refill appends the next page's (or the tail's) stream bytes to the
// carry buffer, compacting the consumed prefix first.
func (it *SpillIterator) refill() (bool, error) {
	if it.pos > 0 {
		it.buf = append(it.buf[:0], it.buf[it.pos:]...)
		it.pos = 0
	}
	if it.page < it.hiPage {
		var data []byte
		if it.f.sequential {
			// Sorted-run page: read once, straight from disk, no caching.
			if it.pageBuf == nil {
				it.pageBuf = make([]byte, PageSize)
			}
			if err := it.f.file.ReadPage(PageID(it.page), it.pageBuf); err != nil {
				return false, err
			}
			data = it.pageBuf
		} else {
			fr, err := it.f.pool.Get(it.f.file, PageID(it.page))
			if err != nil {
				return false, err
			}
			data = fr.Data()
			defer it.f.pool.Unpin(fr, false)
		}
		used := int(binary.LittleEndian.Uint16(data[0:]))
		if used > spillCapacity {
			return false, fmt.Errorf("storage: corrupt spill page (used=%d)", used)
		}
		it.buf = append(it.buf, data[spillHeaderSize:spillHeaderSize+used]...)
		it.page++
		return true, nil
	}
	if !it.tailDone {
		it.tailDone = true
		if len(it.tail) > 0 {
			it.buf = append(it.buf, it.tail...)
			it.tail = nil
			return true, nil
		}
	}
	return false, nil
}

// Close satisfies the row-iterator contract (pages are unpinned eagerly).
func (it *SpillIterator) Close() error { return nil }

// AppendAnyRow appends a self-describing encoding of row to dst: unlike
// RowCodec it needs no declared schema, so it serializes arbitrary
// intermediate query rows (join sides after projections and filters). The
// format is a column count followed by one kind tag and payload per value,
// using the same variable-length encodings as ROW compression.
func AppendAnyRow(dst []byte, row sqltypes.Row) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for i, v := range row {
		dst = append(dst, byte(v.K))
		switch v.K {
		case sqltypes.KindNull:
		case sqltypes.KindInt, sqltypes.KindBool:
			dst = binary.AppendVarint(dst, v.I)
		case sqltypes.KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			dst = append(dst, b[:]...)
		case sqltypes.KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case sqltypes.KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.B)))
			dst = append(dst, v.B...)
		default:
			return nil, fmt.Errorf("storage: cannot spill value of kind %s (column %d)", v.K, i)
		}
	}
	return dst, nil
}

// DecodeAnyRow decodes one AppendAnyRow row, returning it and the bytes
// consumed. Decoded values do not alias buf.
func DecodeAnyRow(buf []byte) (sqltypes.Row, int, error) {
	cols, pos := binary.Uvarint(buf)
	if pos <= 0 {
		return nil, 0, fmt.Errorf("storage: truncated spill row header")
	}
	row := make(sqltypes.Row, cols)
	for i := range row {
		if pos >= len(buf) {
			return nil, 0, errTruncated(i)
		}
		k := sqltypes.Kind(buf[pos])
		pos++
		switch k {
		case sqltypes.KindNull:
			row[i] = sqltypes.Null
		case sqltypes.KindInt, sqltypes.KindBool:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return nil, 0, errTruncated(i)
			}
			pos += n
			row[i] = sqltypes.Value{K: k, I: v}
		case sqltypes.KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, errTruncated(i)
			}
			row[i] = sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case sqltypes.KindString, sqltypes.KindBytes:
			ln, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, 0, errTruncated(i)
			}
			pos += n
			if pos+int(ln) > len(buf) {
				return nil, 0, errTruncated(i)
			}
			data := buf[pos : pos+int(ln)]
			pos += int(ln)
			if k == sqltypes.KindString {
				row[i] = sqltypes.NewString(string(data))
			} else {
				row[i] = sqltypes.NewBytes(append([]byte(nil), data...))
			}
		default:
			return nil, 0, fmt.Errorf("storage: unknown spill value kind %d (column %d)", k, i)
		}
	}
	return row, pos, nil
}
