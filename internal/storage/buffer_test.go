package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

// stampedFile creates a paged file of n pages where page i starts with
// byte(i) (and byte(i>>8)), for content verification under concurrency.
func stampedFile(t testing.TB, dir string, name string, n int) *PagedFile {
	t.Helper()
	f, err := OpenPagedFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// checkPoolInvariants asserts the sharding bookkeeping: budgets sum to
// capacity, no shard materialized more frames than its budget, and no
// frame is left pinned or mid-load.
func checkPoolInvariants(t *testing.T, bp *BufferPool) {
	t.Helper()
	totalBudget, totalFrames := 0, 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		totalBudget += sh.budget
		totalFrames += len(sh.clock)
		if len(sh.clock) > sh.budget {
			t.Errorf("shard %d holds %d frames over budget %d", i, len(sh.clock), sh.budget)
		}
		for _, fr := range sh.clock {
			if fr.state.Load()&pinMask != 0 {
				t.Errorf("shard %d leaked a pin on page %v", i, fr.key.Load())
			}
			if fr.key.Load() != nil && fr.latch.Load() != nil {
				t.Errorf("shard %d left a frame mid-load", i)
			}
		}
		if len(sh.frames) > len(sh.clock) {
			t.Errorf("shard %d maps %d keys over %d frames", i, len(sh.frames), len(sh.clock))
		}
		sh.mu.Unlock()
	}
	if totalBudget != bp.capacity {
		t.Errorf("budgets sum to %d, capacity %d", totalBudget, bp.capacity)
	}
	if totalFrames > bp.capacity {
		t.Errorf("%d frames materialized over capacity %d", totalFrames, bp.capacity)
	}
}

func TestBufferPoolShardedBasics(t *testing.T) {
	bp := NewBufferPoolSharded(64, 8)
	if bp.ShardCount() != 8 {
		t.Fatalf("shard count = %d", bp.ShardCount())
	}
	if bp.Capacity() != 64 {
		t.Fatalf("capacity = %d", bp.Capacity())
	}
	// Tiny pools collapse shards to keep per-shard budgets useful.
	small := NewBufferPoolSharded(8, 64)
	if small.ShardCount() > 2 {
		t.Errorf("8-frame pool got %d shards", small.ShardCount())
	}
	f := stampedFile(t, t.TempDir(), "t.dat", 128)
	defer f.Close()
	for i := 0; i < 128; i++ {
		fr, err := bp.Get(f, PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d content %d", i, fr.Data()[0])
		}
		bp.Unpin(fr, false)
	}
	st := bp.Stats()
	if st.Misses != 128 {
		t.Errorf("misses = %d, want 128", st.Misses)
	}
	if st.Evictions == 0 {
		t.Error("no evictions with 128 pages in 64 frames")
	}
	if got := st.Sub(PoolStats{Misses: 28}).Misses; got != 100 {
		t.Errorf("Sub misses = %d", got)
	}
	checkPoolInvariants(t, bp)
}

// TestBufferPoolShardSteal pins the whole capacity through NewPage — the
// pages hash unevenly, so some shards must probe siblings for budget —
// then verifies exhaustion, the no-steal rule for dirty pages, and
// recovery after a flush.
func TestBufferPoolShardSteal(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenPagedFile(filepath.Join(dir, "t.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp := NewBufferPoolSharded(16, 4)
	var frames []*frame
	for i := 0; i < 16; i++ {
		id, _ := f.Allocate()
		fr, err := bp.NewPage(f, id)
		if err != nil {
			t.Fatalf("NewPage %d (steal across shards failed): %v", i, err)
		}
		frames = append(frames, fr)
	}
	id, _ := f.Allocate()
	if _, err := bp.Get(f, id); err == nil {
		t.Error("expected pool exhaustion with all frames pinned")
	}
	for _, fr := range frames {
		bp.Unpin(fr, true)
	}
	if _, err := bp.Get(f, id); err == nil {
		t.Error("expected pool exhaustion with all frames dirty (no-steal)")
	}
	if err := bp.FlushFile(f); err != nil {
		t.Fatal(err)
	}
	fr, err := bp.Get(f, id)
	if err != nil {
		t.Fatalf("after flush: %v", err)
	}
	bp.Unpin(fr, false)
	checkPoolInvariants(t, bp)
}

// TestBufferPoolConcurrentSamePage hammers one page from many goroutines
// so the fill latch (miss published before the read completes) is
// exercised: everyone must see fully-read page contents.
func TestBufferPoolConcurrentSamePage(t *testing.T) {
	f := stampedFile(t, t.TempDir(), "t.dat", 4)
	defer f.Close()
	for round := 0; round < 50; round++ {
		bp := NewBufferPoolSharded(16, 4)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					fr, err := bp.Get(f, PageID(i))
					if err != nil {
						t.Error(err)
						return
					}
					if fr.Data()[0] != byte(i) {
						t.Errorf("page %d content %d mid-fill", i, fr.Data()[0])
					}
					bp.Unpin(fr, false)
				}
			}()
		}
		wg.Wait()
		st := bp.Stats()
		if st.Hits+st.Misses != 8*4 {
			t.Fatalf("hits %d + misses %d != 32", st.Hits, st.Misses)
		}
		checkPoolInvariants(t, bp)
	}
}

// TestBufferPoolConcurrentStress runs parallel Get/Unpin over shared
// read-only files, concurrent FlushFile, a private dirty-page
// writer/dropper, and a stats poller — the workload mix of a checkpoint
// racing parallel scans. Run under -race (the CI does).
func TestBufferPoolConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	const pages = 200
	fa := stampedFile(t, dir, "a.dat", pages)
	fb := stampedFile(t, dir, "b.dat", pages)
	defer fa.Close()
	defer fb.Close()
	fc, err := OpenPagedFile(filepath.Join(dir, "c.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	bp := NewBufferPoolSharded(64, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: random pages across both shared files, verifying stamps.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				f := fa
				if rng.Intn(2) == 1 {
					f = fb
				}
				p := rng.Intn(pages)
				if i%16 == 0 {
					p = 0 // shared hot page: same-page latch contention
				}
				fr, err := bp.Get(f, PageID(p))
				if err != nil {
					t.Error(err)
					return
				}
				if fr.Data()[0] != byte(p) || fr.Data()[1] != byte(p>>8) {
					t.Errorf("page %d stamp %d/%d", p, fr.Data()[0], fr.Data()[1])
				}
				bp.Unpin(fr, false)
			}
		}(int64(g))
	}

	// Flusher over a shared read-only file (no dirty frames: exercises the
	// shard traversal against concurrent Gets).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := bp.FlushFile(fa); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Writer: owns file C exclusively — NewPage, dirty, flush, drop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for cycle := 0; cycle < 100; cycle++ {
			var frames []*frame
			for j := 0; j < 3; j++ {
				id, err := fc.Allocate()
				if err != nil {
					t.Error(err)
					return
				}
				fr, err := bp.NewPage(fc, id)
				if err != nil {
					t.Error(err)
					return
				}
				fr.Data()[0] = byte(cycle)
				frames = append(frames, fr)
			}
			for _, fr := range frames {
				bp.Unpin(fr, true)
			}
			if err := bp.FlushFile(fc); err != nil {
				t.Error(err)
				return
			}
			bp.DropFile(fc)
		}
	}()

	// Stats poller: reading counters during a scan must be race-free. It
	// joins separately since it only exits once the workers are done.
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for {
			select {
			case <-stop:
				return
			default:
				st := bp.Stats()
				if st.Hits < 0 || st.Misses < 0 {
					t.Error("negative counters")
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-pollerDone
	checkPoolInvariants(t, bp)
}

// TestBufferPoolReadErrorPropagatesToWaiters forces a miss on an
// out-of-range page and checks the pool recovers (the failed frame is
// recycled, no pin leaks).
func TestBufferPoolReadError(t *testing.T) {
	f := stampedFile(t, t.TempDir(), "t.dat", 2)
	defer f.Close()
	bp := NewBufferPoolSharded(16, 4)
	if _, err := bp.Get(f, 99); err == nil {
		t.Fatal("out-of-range Get succeeded")
	}
	// Pool stays usable and invariants hold after the failed fill.
	fr, err := bp.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(fr, false)
	checkPoolInvariants(t, bp)
}

// benchHeap builds a heap with enough sealed pages for partitioned scans.
func benchHeap(b *testing.B, pool *BufferPool, rows int) *Heap {
	b.Helper()
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString}
	h, err := OpenHeap(filepath.Join(b.TempDir(), "bench.heap"), kinds, CompressNone, pool)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := h.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString("ACGTACGTACGTACGTACGTACGTACGTACGT"),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := h.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	return h
}

// scanParallel scans all sealed pages with dop goroutines over disjoint
// page ranges, returning the total rows seen.
func scanParallel(b *testing.B, h *Heap, dop int) int64 {
	b.Helper()
	sealed := h.SealedPages()
	var wg sync.WaitGroup
	counts := make([]int64, dop)
	for w := 0; w < dop; w++ {
		lo := sealed * int64(w) / int64(dop)
		hi := sealed * int64(w+1) / int64(dop)
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			n := int64(0)
			if err := h.ScanPages(lo, hi, func(sqltypes.Row) error {
				n++
				return nil
			}); err != nil {
				b.Error(err)
			}
			counts[w] = n
		}(w, lo, hi)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return total
}

// BenchmarkPoolShardedScan measures partitioned heap scans through the
// sharded pool at DOP 1/2/4/8, with a cold pool (every page a miss, the
// fill I/O overlapping across shards) and a warm pool (the paper's
// Section 5.3.3 methodology, Figure 9's scaling shape).
func BenchmarkPoolShardedScan(b *testing.B) {
	const rows = 120_000
	if runtime.GOMAXPROCS(0) < 4 {
		b.Logf("GOMAXPROCS=%d: warm-scan speedup needs cores; cold scans still overlap I/O", runtime.GOMAXPROCS(0))
	}
	for _, temp := range []string{"cold", "warm"} {
		for _, dop := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/dop%d", temp, dop), func(b *testing.B) {
				pool := NewBufferPoolSharded(4096, 0)
				h := benchHeap(b, pool, rows)
				defer h.Close()
				if temp == "warm" {
					scanParallel(b, h, dop) // fill the pool
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if temp == "cold" {
						b.StopTimer()
						pool.DropFile(h.File())
						b.StartTimer()
					}
					if got := scanParallel(b, h, dop); got != rows {
						b.Fatalf("scanned %d rows, want %d", got, rows)
					}
				}
			})
		}
	}
}

// TestStealBudgetPressureAware verifies victim selection: when home's
// frames are exhausted, budget is stolen from the shard with the most
// unpinned clean frames, not first-fit by shard index.
func TestStealBudgetPressureAware(t *testing.T) {
	f := stampedFile(t, t.TempDir(), "t.dat", 64)
	defer f.Close()
	bp := NewBufferPoolSharded(16, 4)
	if bp.ShardCount() != 4 {
		t.Skipf("shard count %d, want 4", bp.ShardCount())
	}
	// Classify pages by shard.
	pagesByShard := make([][]PageID, 4)
	for p := int64(0); p < 64; p++ {
		key := frameKey{f, PageID(p)}
		for i := range bp.shards {
			if bp.shard(key) == &bp.shards[i] {
				pagesByShard[i] = append(pagesByShard[i], PageID(p))
				break
			}
		}
	}
	for i, ps := range pagesByShard {
		if len(ps) < 5 {
			t.Skipf("shard %d drew only %d of 64 pages", i, len(ps))
		}
	}
	home := &bp.shards[0]
	// Materialize every shard's full budget. Shards 1 and 2 keep all their
	// frames pinned; shard 3's frames are unpinned (the pressure-aware
	// victim); home's are pinned so its own allocation fails.
	var pinned []*frame
	for i := 0; i < 4; i++ {
		sh := &bp.shards[i]
		sh.mu.Lock()
		budget := sh.budget
		sh.mu.Unlock()
		for k := 0; k < budget; k++ {
			fr, err := bp.Get(f, pagesByShard[i][k])
			if err != nil {
				t.Fatal(err)
			}
			if i == 3 {
				bp.Unpin(fr, false)
			} else {
				pinned = append(pinned, fr)
			}
		}
	}
	shard3Before := func() int {
		bp.shards[3].mu.Lock()
		defer bp.shards[3].mu.Unlock()
		return bp.shards[3].budget
	}()
	// A new page on home must steal — and should take from shard 3.
	extra := pagesByShard[0][len(pagesByShard[0])-1]
	var fr *frame
	var err error
	for _, p := range pagesByShard[0] {
		already := false
		home.mu.Lock()
		_, already = home.frames[frameKey{f, p}]
		home.mu.Unlock()
		if !already {
			extra = p
			break
		}
	}
	fr, err = bp.Get(f, extra)
	if err != nil {
		t.Fatalf("pressure steal failed: %v", err)
	}
	bp.Unpin(fr, false)
	shard3After := func() int {
		bp.shards[3].mu.Lock()
		defer bp.shards[3].mu.Unlock()
		return bp.shards[3].budget
	}()
	if shard3After != shard3Before-1 {
		t.Errorf("budget was not stolen from the unpinned shard 3: before %d after %d", shard3Before, shard3After)
	}
	for i := 1; i <= 2; i++ {
		bp.shards[i].mu.Lock()
		got := bp.shards[i].budget
		materialized := len(bp.shards[i].clock)
		bp.shards[i].mu.Unlock()
		if got < materialized {
			t.Errorf("pinned shard %d lost budget below its frames: budget %d frames %d", i, got, materialized)
		}
	}
	for _, p := range pinned {
		bp.Unpin(p, false)
	}
	checkPoolInvariants(t, bp)
}
