package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqltypes"
)

// Page compression, modeled on SQL Server 2008 (paper Section 2.3.5 and
// [11]): when a page is sealed, rows are re-encoded with (a) ROW
// compression, (b) column-prefix compression — the longest common prefix
// of each string column's byte image is stored once in the page header —
// and (c) a page dictionary of repeated cell images. Because the prefix
// and dictionary only span "a small subset of the data fitting on one
// disk page", repetitive data (DGE tags) compresses very well while
// near-unique data (1000 Genomes reads) barely shrinks — exactly the
// contrast between the paper's Table 1 and Table 2. When page coding does
// not pay for a page, the engine falls back to the ROW format, as SQL
// Server does.
//
// Layout:
//
//	uvarint colCount, rowCount
//	per string/bytes column: uvarint prefixLen + prefix (others: 0)
//	uvarint dictCount; per entry: uvarint len + bytes
//	per row:
//	    null bitmap   (ceil(cols/8) bytes)
//	    dict bitmap   (ceil(cols/8) bytes; bit set = cell is a dict ref)
//	    per non-null cell:
//	        dict ref:      uvarint dictIndex
//	        inline int:    varint
//	        inline float:  8 bytes
//	        inline bool:   1 byte
//	        inline string: uvarint suffixLen + suffix (prefix stripped)

// cellImage encodes one non-null cell's post-prefix payload.
func cellImage(dst []byte, v sqltypes.Value) []byte {
	switch v.K {
	case sqltypes.KindInt:
		return binary.AppendVarint(dst, v.I)
	case sqltypes.KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		return append(dst, b[:]...)
	case sqltypes.KindBool:
		return append(dst, byte(v.I))
	case sqltypes.KindString:
		return append(dst, v.S...)
	case sqltypes.KindBytes:
		return append(dst, v.B...)
	}
	return dst
}

func isTextKind(k sqltypes.Kind) bool {
	return k == sqltypes.KindString || k == sqltypes.KindBytes
}

func cellFromImage(k sqltypes.Kind, img []byte) (sqltypes.Value, error) {
	switch k {
	case sqltypes.KindInt:
		v, n := binary.Varint(img)
		if n <= 0 || n != len(img) {
			return sqltypes.Null, fmt.Errorf("storage: bad int cell image")
		}
		return sqltypes.NewInt(v), nil
	case sqltypes.KindFloat:
		if len(img) != 8 {
			return sqltypes.Null, fmt.Errorf("storage: bad float cell image")
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(img))), nil
	case sqltypes.KindBool:
		if len(img) != 1 {
			return sqltypes.Null, fmt.Errorf("storage: bad bool cell image")
		}
		return sqltypes.NewBool(img[0] != 0), nil
	case sqltypes.KindString:
		return sqltypes.NewString(string(img)), nil
	case sqltypes.KindBytes:
		return sqltypes.NewBytes(append([]byte(nil), img...)), nil
	}
	return sqltypes.Null, fmt.Errorf("storage: bad cell kind %s", k)
}

// commonPrefix returns the longest common prefix length of a and b.
func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// dictMinLen is the smallest cell image worth a dictionary entry.
const dictMinLen = 3

// CompressPageRows encodes rows into the page-compressed format.
func CompressPageRows(kinds []sqltypes.Kind, rows []sqltypes.Row) ([]byte, error) {
	nCols := len(kinds)
	images := make([][][]byte, len(rows)) // images[r][c]; nil for NULL
	for r, row := range rows {
		if len(row) != nCols {
			return nil, fmt.Errorf("storage: row %d has %d columns, want %d", r, len(row), nCols)
		}
		images[r] = make([][]byte, nCols)
		for c, v := range row {
			if v.IsNull() {
				continue
			}
			if v.K != kinds[c] {
				return nil, fmt.Errorf("storage: row %d col %d kind %s != %s", r, c, v.K, kinds[c])
			}
			images[r][c] = cellImage(nil, v)
		}
	}
	// Column-prefix compression applies to string columns, where the
	// inline format carries an explicit length.
	prefixes := make([][]byte, nCols)
	for c := 0; c < nCols; c++ {
		if !isTextKind(kinds[c]) {
			continue
		}
		var p []byte
		first := true
		for r := range images {
			img := images[r][c]
			if img == nil {
				continue
			}
			if first {
				p = img
				first = false
				continue
			}
			p = p[:commonPrefix(p, img)]
			if len(p) == 0 {
				break
			}
		}
		prefixes[c] = p
	}
	suffix := func(r, c int) []byte {
		return images[r][c][len(prefixes[c]):]
	}
	// Page dictionary over repeated post-prefix images.
	counts := make(map[string]int)
	for r := range images {
		for c := range images[r] {
			if images[r][c] == nil {
				continue
			}
			if s := suffix(r, c); len(s) >= dictMinLen {
				counts[string(s)]++
			}
		}
	}
	var dict [][]byte
	dictIdx := make(map[string]int)
	for r := range images {
		for c := range images[r] {
			if images[r][c] == nil {
				continue
			}
			s := suffix(r, c)
			if len(s) >= dictMinLen && counts[string(s)] >= 2 {
				if _, ok := dictIdx[string(s)]; !ok {
					dictIdx[string(s)] = len(dict)
					dict = append(dict, s)
				}
			}
		}
	}
	// Serialize.
	out := binary.AppendUvarint(nil, uint64(nCols))
	out = binary.AppendUvarint(out, uint64(len(rows)))
	for c := 0; c < nCols; c++ {
		out = binary.AppendUvarint(out, uint64(len(prefixes[c])))
		out = append(out, prefixes[c]...)
	}
	out = binary.AppendUvarint(out, uint64(len(dict)))
	for _, e := range dict {
		out = binary.AppendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	nb := (nCols + 7) / 8
	for r := range images {
		nullAt := len(out)
		for i := 0; i < 2*nb; i++ {
			out = append(out, 0)
		}
		dictAt := nullAt + nb
		for c := range images[r] {
			if images[r][c] == nil {
				out[nullAt+c/8] |= 1 << uint(c%8)
				continue
			}
			s := suffix(r, c)
			if idx, ok := dictIdx[string(s)]; ok {
				out[dictAt+c/8] |= 1 << uint(c%8)
				out = binary.AppendUvarint(out, uint64(idx))
				continue
			}
			if isTextKind(kinds[c]) {
				out = binary.AppendUvarint(out, uint64(len(s)))
			}
			out = append(out, s...)
		}
	}
	return out, nil
}

// DecompressPageRows decodes the CompressPageRows format, appending the
// decoded rows to dst and returning it.
func DecompressPageRows(kinds []sqltypes.Kind, buf []byte, dst []sqltypes.Row) ([]sqltypes.Row, error) {
	rd := pageReader{buf: buf}
	nCols := int(rd.uvarint())
	nRows := int(rd.uvarint())
	if rd.failed || nCols != len(kinds) {
		return nil, fmt.Errorf("storage: page has %d columns, schema has %d", nCols, len(kinds))
	}
	prefixes := make([][]byte, nCols)
	for c := 0; c < nCols; c++ {
		prefixes[c] = rd.bytes(int(rd.uvarint()))
	}
	nDict := int(rd.uvarint())
	if rd.failed || nDict < 0 {
		return nil, rd.err()
	}
	dict := make([][]byte, nDict)
	for i := 0; i < nDict; i++ {
		dict[i] = rd.bytes(int(rd.uvarint()))
	}
	nb := (nCols + 7) / 8
	var scratch []byte
	for r := 0; r < nRows; r++ {
		nullBM := rd.bytes(nb)
		dictBM := rd.bytes(nb)
		if rd.failed {
			return nil, rd.err()
		}
		row := make(sqltypes.Row, nCols)
		for c := 0; c < nCols; c++ {
			if nullBM[c/8]&(1<<uint(c%8)) != 0 {
				row[c] = sqltypes.Null
				continue
			}
			var sfx []byte
			if dictBM[c/8]&(1<<uint(c%8)) != 0 {
				idx := int(rd.uvarint())
				if rd.failed || idx >= len(dict) {
					return nil, fmt.Errorf("storage: dictionary index out of range")
				}
				sfx = dict[idx]
			} else {
				switch kinds[c] {
				case sqltypes.KindInt:
					sfx = rd.varintBytes()
				case sqltypes.KindFloat:
					sfx = rd.bytes(8)
				case sqltypes.KindBool:
					sfx = rd.bytes(1)
				default:
					sfx = rd.bytes(int(rd.uvarint()))
				}
			}
			if rd.failed {
				return nil, rd.err()
			}
			img := sfx
			if len(prefixes[c]) > 0 {
				scratch = scratch[:0]
				scratch = append(scratch, prefixes[c]...)
				scratch = append(scratch, sfx...)
				img = scratch
			}
			v, err := cellFromImage(kinds[c], img)
			if err != nil {
				return nil, err
			}
			row[c] = v
		}
		dst = append(dst, row)
	}
	return dst, nil
}

// pageReader is a cursor with sticky error handling over a page payload.
type pageReader struct {
	buf    []byte
	pos    int
	failed bool
}

func (r *pageReader) uvarint() uint64 {
	if r.failed {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.pos += n
	return v
}

// varintBytes consumes one signed varint and returns its raw bytes.
func (r *pageReader) varintBytes() []byte {
	if r.failed {
		return nil
	}
	_, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.failed = true
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *pageReader) bytes(n int) []byte {
	if r.failed || n < 0 || r.pos+n > len(r.buf) {
		r.failed = true
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *pageReader) err() error {
	if r.failed {
		return fmt.Errorf("storage: truncated compressed page")
	}
	return nil
}
