package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

func TestPagedFileBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dat")
	f, err := OpenPagedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumPages() != 0 {
		t.Fatalf("new file has %d pages", f.NumPages())
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || f.NumPages() != 1 {
		t.Fatalf("first page id %d, pages %d", id, f.NumPages())
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAA
	buf[PageSize-1] = 0xBB
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA || got[PageSize-1] != 0xBB {
		t.Error("page round trip corrupted data")
	}
	if err := f.ReadPage(5, got); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := f.WritePage(-1, buf); err == nil {
		t.Error("negative page write succeeded")
	}
	if err := f.ReadPage(id, got[:10]); err == nil {
		t.Error("short buffer read succeeded")
	}
}

func TestPagedFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dat")
	f, _ := OpenPagedFile(path)
	f.Allocate()
	f.Allocate()
	f.Close()
	f2, err := OpenPagedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 2 {
		t.Errorf("reopened with %d pages", f2.NumPages())
	}
	if err := f2.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if f2.NumPages() != 1 {
		t.Errorf("truncate left %d pages", f2.NumPages())
	}
	if err := f2.Truncate(5); err == nil {
		t.Error("growing truncate succeeded")
	}
}

func TestBufferPoolPinEvict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dat")
	f, _ := OpenPagedFile(path)
	defer f.Close()
	for i := 0; i < 20; i++ {
		id, _ := f.Allocate()
		buf := make([]byte, PageSize)
		buf[0] = byte(i)
		f.WritePage(id, buf)
	}
	bp := NewBufferPool(8)
	// Read all pages; pool must evict to make room.
	for i := 0; i < 20; i++ {
		fr, err := bp.Get(f, PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d content %d", i, fr.Data()[0])
		}
		bp.Unpin(fr, false)
	}
	if bp.Stats().Evictions == 0 {
		t.Error("no evictions with 20 pages in 8 frames")
	}
	// Re-read page 19 - should hit.
	h := bp.Stats().Hits
	fr, _ := bp.Get(f, 19)
	bp.Unpin(fr, false)
	if bp.Stats().Hits != h+1 {
		t.Error("expected a buffer hit on recently used page")
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dat")
	f, _ := OpenPagedFile(path)
	defer f.Close()
	bp := NewBufferPool(8)
	var frames []*frame
	for i := 0; i < 8; i++ {
		id, _ := f.Allocate()
		fr, err := bp.NewPage(f, id)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	id, _ := f.Allocate()
	if _, err := bp.Get(f, id); err == nil {
		t.Error("expected pool exhaustion with all frames pinned")
	}
	for _, fr := range frames {
		bp.Unpin(fr, true) // dirty: still not evictable
	}
	if _, err := bp.Get(f, id); err == nil {
		t.Error("expected pool exhaustion with all frames dirty (no-steal)")
	}
	if err := bp.FlushFile(f); err != nil {
		t.Fatal(err)
	}
	fr, err := bp.Get(f, id)
	if err != nil {
		t.Fatalf("after flush: %v", err)
	}
	bp.Unpin(fr, false)
}

func TestBufferPoolFlushPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dat")
	f, _ := OpenPagedFile(path)
	bp := NewBufferPool(8)
	id, _ := f.Allocate()
	fr, _ := bp.NewPage(f, id)
	fr.Data()[7] = 42
	bp.Unpin(fr, true)
	if err := bp.FlushFile(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, _ := OpenPagedFile(path)
	defer f2.Close()
	buf := make([]byte, PageSize)
	f2.ReadPage(id, buf)
	if buf[7] != 42 {
		t.Error("flushed page not persisted")
	}
}

func intCol() []sqltypes.Kind { return []sqltypes.Kind{sqltypes.KindInt} }

func sampleKinds() []sqltypes.Kind {
	return []sqltypes.Kind{
		sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString,
		sqltypes.KindBytes, sqltypes.KindBool,
	}
}

func sampleRow(i int) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(int64(i)),
		sqltypes.NewFloat(float64(i) / 3),
		sqltypes.NewString(fmt.Sprintf("str-%d", i)),
		sqltypes.NewBytes([]byte{byte(i), byte(i >> 8)}),
		sqltypes.NewBool(i%2 == 0),
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	for _, mode := range []Compression{CompressNone, CompressRow} {
		codec := RowCodec{Kinds: sampleKinds(), Mode: mode}
		for i := 0; i < 50; i++ {
			row := sampleRow(i)
			if i%7 == 0 {
				row[2] = sqltypes.Null
			}
			enc, err := codec.EncodeAppend(nil, row)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			dec, n, err := codec.Decode(enc, true)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			if n != len(enc) {
				t.Errorf("%s: consumed %d of %d", mode, n, len(enc))
			}
			if !reflect.DeepEqual(dec, row) {
				t.Errorf("%s: round trip %v != %v", mode, dec, row)
			}
		}
	}
}

func TestRowCodecRowSmallerThanFixed(t *testing.T) {
	// ROW compression must beat the fixed format on small ints and short
	// strings (the premise of Table 1's row-compression column).
	row := sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewString("ab")}
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString}
	fixed, _ := (&RowCodec{Kinds: kinds, Mode: CompressNone}).EncodeAppend(nil, row)
	rowc, _ := (&RowCodec{Kinds: kinds, Mode: CompressRow}).EncodeAppend(nil, row)
	if len(rowc) >= len(fixed) {
		t.Errorf("row-compressed %d >= fixed %d", len(rowc), len(fixed))
	}
}

func TestRowCodecErrors(t *testing.T) {
	codec := RowCodec{Kinds: intCol(), Mode: CompressNone}
	if _, err := codec.EncodeAppend(nil, sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(2)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := codec.EncodeAppend(nil, sqltypes.Row{sqltypes.NewString("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	enc, _ := codec.EncodeAppend(nil, sqltypes.Row{sqltypes.NewInt(500)})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := codec.Decode(enc[:cut], true); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestRowCodecFixedIntWidths(t *testing.T) {
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt}
	codec := RowCodec{Kinds: kinds, Mode: CompressNone, Widths: []uint8{4, 8}}
	row := sqltypes.Row{sqltypes.NewInt(-123456), sqltypes.NewInt(1 << 40)}
	enc, err := codec.EncodeAppend(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	// bitmap(1) + 4 + 8 bytes.
	if len(enc) != 13 {
		t.Errorf("encoded %d bytes, want 13", len(enc))
	}
	dec, n, err := codec.Decode(enc, true)
	if err != nil || n != len(enc) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, row) {
		t.Errorf("round trip %v != %v", dec, row)
	}
	// 4-byte column rejects out-of-range values.
	if _, err := codec.EncodeAppend(nil, sqltypes.Row{sqltypes.NewInt(1 << 40), sqltypes.NewInt(0)}); err == nil {
		t.Error("int32 overflow accepted in 4-byte column")
	}
	// Negative boundary values survive.
	edge := sqltypes.Row{sqltypes.NewInt(-(1 << 31)), sqltypes.NewInt(-1)}
	enc, _ = codec.EncodeAppend(nil, edge)
	dec, _, err = codec.Decode(enc, true)
	if err != nil || !reflect.DeepEqual(dec, edge) {
		t.Errorf("edge round trip %v != %v (%v)", dec, edge, err)
	}
}

func TestHeapWidthsRoundTrip(t *testing.T) {
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString}
	h, err := OpenHeapWidths(filepath.Join(t.TempDir(), "h.dat"), kinds, []uint8{4, 0}, CompressNone, NewBufferPool(16))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 700; i++ {
		if err := h.Append(sqltypes.Row{sqltypes.NewInt(int64(i - 350)), sqltypes.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	h.Scan(func(r sqltypes.Row) error {
		if r[0].I != int64(i-350) {
			t.Fatalf("row %d = %v", i, r)
		}
		i++
		return nil
	})
	if i != 700 {
		t.Fatalf("scanned %d", i)
	}
}

func TestHeapUsedBytes(t *testing.T) {
	h, _ := openTestHeap(t, CompressRow)
	defer h.Close()
	for i := 0; i < 500; i++ {
		h.Append(sampleRow(i))
	}
	used, err := h.UsedBytes()
	if err != nil {
		t.Fatal(err)
	}
	if used <= 0 {
		t.Error("no used bytes after appends")
	}
	// Once checkpointed, payload bytes fit within the allocated pages.
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	used, err = h.UsedBytes()
	if err != nil {
		t.Fatal(err)
	}
	if used <= 0 || used > h.SizeBytes() {
		t.Errorf("used = %d, allocated = %d", used, h.SizeBytes())
	}
}

func TestRowCodecQuick(t *testing.T) {
	codec := RowCodec{
		Kinds: []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString},
		Mode:  CompressRow,
	}
	f := func(i int64, s string, null bool) bool {
		row := sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(s)}
		if null {
			row[1] = sqltypes.Null
		}
		enc, err := codec.EncodeAppend(nil, row)
		if err != nil {
			return false
		}
		dec, n, err := codec.Decode(enc, true)
		return err == nil && n == len(enc) && reflect.DeepEqual(dec, row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageCompressionRoundTrip(t *testing.T) {
	kinds := sampleKinds()
	var rows []sqltypes.Row
	for i := 0; i < 100; i++ {
		r := sampleRow(i % 10) // repetition for the dictionary
		if i%9 == 0 {
			r[3] = sqltypes.Null
		}
		rows = append(rows, r)
	}
	buf, err := CompressPageRows(kinds, rows)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressPageRows(kinds, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(rows) {
		t.Fatalf("%d rows decoded", len(dec))
	}
	for i := range rows {
		if !reflect.DeepEqual(dec[i], rows[i]) {
			t.Errorf("row %d: %v != %v", i, dec[i], rows[i])
		}
	}
}

func TestPageCompressionShrinksRepetitiveData(t *testing.T) {
	// The DGE scenario: few distinct tags repeated many times.
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString}
	codec := RowCodec{Kinds: kinds, Mode: CompressRow}
	var rows []sqltypes.Row
	var raw []byte
	for i := 0; i < 200; i++ {
		r := sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString("TAGSEQ" + strings.Repeat("ACGT", 5) + fmt.Sprint(i%4)),
		}
		rows = append(rows, r)
		raw, _ = codec.EncodeAppend(raw, r)
	}
	comp, err := CompressPageRows(kinds, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > len(raw)/2 {
		t.Errorf("compressed %d vs raw %d: dictionary not effective on repetitive data", len(comp), len(raw))
	}
}

func TestPageCompressionUniqueDataBarelyShrinks(t *testing.T) {
	// The 1000 Genomes scenario: near-unique sequences. Page compression
	// should NOT achieve large savings (paper Section 5.1.2).
	kinds := []sqltypes.Kind{sqltypes.KindString}
	codec := RowCodec{Kinds: kinds, Mode: CompressRow}
	rng := rand.New(rand.NewSource(1))
	var rows []sqltypes.Row
	var raw []byte
	for i := 0; i < 200; i++ {
		b := make([]byte, 36)
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		r := sqltypes.Row{sqltypes.NewString(string(b))}
		rows = append(rows, r)
		raw, _ = codec.EncodeAppend(raw, r)
	}
	comp, err := CompressPageRows(kinds, rows)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(comp)) < 0.85*float64(len(raw)) {
		t.Errorf("compressed %d vs raw %d: unique data should not compress well", len(comp), len(raw))
	}
}

func TestPageCompressionQuick(t *testing.T) {
	kinds := []sqltypes.Kind{sqltypes.KindString, sqltypes.KindInt}
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		rows := make([]sqltypes.Row, len(vals))
		for i, v := range vals {
			rows[i] = sqltypes.Row{
				sqltypes.NewString(strings.Repeat("x", int(v)%50) + fmt.Sprint(v%7)),
				sqltypes.NewInt(int64(v)),
			}
		}
		buf, err := CompressPageRows(kinds, rows)
		if err != nil {
			return false
		}
		dec, err := DecompressPageRows(kinds, buf, nil)
		if err != nil || len(dec) != len(rows) {
			return false
		}
		for i := range rows {
			if !reflect.DeepEqual(dec[i], rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func openTestHeap(t *testing.T, comp Compression) (*Heap, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "heap.dat")
	h, err := OpenHeap(path, sampleKinds(), comp, NewBufferPool(64))
	if err != nil {
		t.Fatal(err)
	}
	return h, path
}

func TestHeapAppendScan(t *testing.T) {
	for _, comp := range []Compression{CompressNone, CompressRow, CompressPage} {
		t.Run(comp.String(), func(t *testing.T) {
			h, _ := openTestHeap(t, comp)
			defer h.Close()
			const n = 2000
			for i := 0; i < n; i++ {
				if err := h.Append(sampleRow(i)); err != nil {
					t.Fatal(err)
				}
			}
			if h.RowCount() != n {
				t.Fatalf("RowCount = %d", h.RowCount())
			}
			i := 0
			err := h.Scan(func(r sqltypes.Row) error {
				want := sampleRow(i)
				if !reflect.DeepEqual(r, want) {
					return fmt.Errorf("row %d = %v, want %v", i, r, want)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != n {
				t.Fatalf("scanned %d rows", i)
			}
		})
	}
}

func TestHeapCheckpointRecovery(t *testing.T) {
	for _, comp := range []Compression{CompressNone, CompressRow, CompressPage} {
		t.Run(comp.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "heap.dat")
			pool := NewBufferPool(64)
			h, err := OpenHeap(path, sampleKinds(), comp, pool)
			if err != nil {
				t.Fatal(err)
			}
			const durable = 1500
			for i := 0; i < durable; i++ {
				h.Append(sampleRow(i))
			}
			if err := h.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Rows after the checkpoint simulate a crash: they must be
			// discarded on reopen (the WAL would replay them).
			for i := durable; i < durable+700; i++ {
				h.Append(sampleRow(i))
			}
			h.Close() // no checkpoint: "crash"

			h2, err := OpenHeap(path, sampleKinds(), comp, NewBufferPool(64))
			if err != nil {
				t.Fatal(err)
			}
			defer h2.Close()
			if h2.RowCount() != durable {
				t.Fatalf("recovered %d rows, want %d", h2.RowCount(), durable)
			}
			i := 0
			err = h2.Scan(func(r sqltypes.Row) error {
				if !reflect.DeepEqual(r, sampleRow(i)) {
					return fmt.Errorf("row %d mismatch after recovery", i)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHeapTruncateRollback(t *testing.T) {
	h, _ := openTestHeap(t, CompressRow)
	defer h.Close()
	for i := 0; i < 3000; i++ {
		h.Append(sampleRow(i))
	}
	if err := h.Truncate(1200); err != nil {
		t.Fatal(err)
	}
	if h.RowCount() != 1200 {
		t.Fatalf("RowCount after truncate = %d", h.RowCount())
	}
	i := 0
	h.Scan(func(r sqltypes.Row) error {
		if !reflect.DeepEqual(r, sampleRow(i)) {
			t.Fatalf("row %d mismatch after truncate", i)
		}
		i++
		return nil
	})
	if i != 1200 {
		t.Fatalf("scanned %d", i)
	}
	// Appends after truncation continue cleanly.
	if err := h.Append(sampleRow(1200)); err != nil {
		t.Fatal(err)
	}
	if h.RowCount() != 1201 {
		t.Error("append after truncate miscounted")
	}
	if err := h.Truncate(-1); err == nil {
		t.Error("negative truncate accepted")
	}
	if err := h.Truncate(5000); err == nil {
		t.Error("growing truncate accepted")
	}
}

func TestHeapTruncateBelowDurableFails(t *testing.T) {
	h, _ := openTestHeap(t, CompressNone)
	defer h.Close()
	for i := 0; i < 100; i++ {
		h.Append(sampleRow(i))
	}
	h.Checkpoint()
	if err := h.Truncate(50); err == nil {
		t.Error("truncate below durable row count accepted")
	}
}

func TestHeapPageCompressionPacksMoreRows(t *testing.T) {
	// Repetitive rows: a page-compressed heap must use fewer pages than a
	// row-compressed one (Table 1's page column vs row column).
	kinds := []sqltypes.Kind{sqltypes.KindString}
	mk := func(comp Compression) int64 {
		path := filepath.Join(t.TempDir(), "h.dat")
		h, err := OpenHeap(path, kinds, comp, NewBufferPool(512))
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		for i := 0; i < 20000; i++ {
			h.Append(sqltypes.Row{sqltypes.NewString("CATGCTAGCTAGCTAGG" + fmt.Sprint(i%5))})
		}
		if err := h.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return h.SizeBytes()
	}
	rowSize := mk(CompressRow)
	pageSize := mk(CompressPage)
	if pageSize >= rowSize {
		t.Errorf("page-compressed %d >= row-compressed %d bytes", pageSize, rowSize)
	}
	if pageSize > rowSize/3 {
		t.Logf("note: page compression ratio %.2f weaker than expected", float64(pageSize)/float64(rowSize))
	}
}

func TestHeapRejectsOversizeRow(t *testing.T) {
	h, _ := openTestHeap(t, CompressNone)
	defer h.Close()
	big := sampleRow(1)
	big[2] = sqltypes.NewString(strings.Repeat("x", PageSize))
	if err := h.Append(big); err == nil {
		t.Error("oversize row accepted")
	}
	if h.RowCount() != 0 {
		t.Error("failed append counted")
	}
	// Heap still usable.
	if err := h.Append(sampleRow(1)); err != nil {
		t.Fatal(err)
	}
}

func TestHeapScanPagesParallelPartitions(t *testing.T) {
	h, _ := openTestHeap(t, CompressRow)
	defer h.Close()
	const n = 5000
	for i := 0; i < n; i++ {
		h.Append(sampleRow(i))
	}
	sealed := h.SealedPages()
	if sealed < 2 {
		t.Fatalf("only %d sealed pages", sealed)
	}
	mid := sealed / 2
	count := 0
	h.ScanPages(0, mid, func(sqltypes.Row) error { count++; return nil })
	h.ScanPages(mid, sealed, func(sqltypes.Row) error { count++; return nil })
	tail := 0
	h.ScanTail(func(sqltypes.Row) error { tail++; return nil })
	if count+tail != n {
		t.Errorf("partitioned scan saw %d+%d rows, want %d", count, tail, n)
	}
}

func TestHeapWrongCompressionOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.dat")
	h, err := OpenHeap(path, intCol(), CompressRow, NewBufferPool(8))
	if err != nil {
		t.Fatal(err)
	}
	h.Append(sqltypes.Row{sqltypes.NewInt(1)})
	h.Checkpoint()
	h.Close()
	if _, err := OpenHeap(path, intCol(), CompressPage, NewBufferPool(8)); err == nil {
		t.Error("reopen with different compression accepted")
	}
}
