package storage

import (
	"fmt"
	"sort"

	"repro/internal/sqltypes"
)

// HeapFetchCache remembers the last decoded sealed page so a run of point
// fetches hitting the same page (the common case for index range scans over
// mildly clustered data) decodes it once. It is single-goroutine state.
type HeapFetchCache struct {
	page  int64 // sealed page index, -1 = empty
	rows  []sqltypes.Row
	tally *PoolTally
}

// NewHeapFetchCache returns an empty fetch cache.
func NewHeapFetchCache() *HeapFetchCache {
	return &HeapFetchCache{page: -1}
}

// SetPoolTally attributes the fetches' buffer-pool traffic to tally
// (nil is valid). Returns the cache for chaining.
func (c *HeapFetchCache) SetPoolTally(t *PoolTally) *HeapFetchCache {
	c.tally = t
	return c
}

// FetchRow returns the row at insertion position idx (storage format).
func (h *Heap) FetchRow(idx int64) (sqltypes.Row, error) {
	return h.FetchRowCached(idx, nil)
}

// FetchRowCached is FetchRow with an optional page cache. The returned row
// is a shallow copy and safe to hold until the next call with the same
// cache; callers that unpack SEQUENCE columns in place must clone values
// they mutate — FromStorageRow replaces elements, which is safe here.
func (h *Heap) FetchRowCached(idx int64, c *HeapFetchCache) (sqltypes.Row, error) {
	if idx < 0 {
		return nil, fmt.Errorf("storage: fetch negative row %d", idx)
	}
	h.mu.RLock()
	sealedRows := h.pageCum[len(h.pageCum)-1]
	if idx >= sealedRows {
		// Tail row: copy under the lock; the tail can be resliced by seals.
		off := idx - sealedRows
		if off >= int64(len(h.tailRows)) {
			h.mu.RUnlock()
			return nil, fmt.Errorf("storage: fetch row %d beyond heap end", idx)
		}
		row := append(sqltypes.Row(nil), h.tailRows[off]...)
		h.mu.RUnlock()
		return row, nil
	}
	p := sort.Search(len(h.pageRows), func(i int) bool { return h.pageCum[i+1] > idx })
	off := idx - h.pageCum[p]
	h.mu.RUnlock()

	if c != nil && c.page == int64(p) {
		return append(sqltypes.Row(nil), c.rows[off]...), nil
	}
	var tally *PoolTally
	if c != nil {
		tally = c.tally
	}
	fr, err := h.pool.GetT(h.file, PageID(p+1), tally)
	if err != nil {
		return nil, err
	}
	rows, err := h.decodePage(fr.Data(), nil)
	h.pool.Unpin(fr, false)
	if err != nil {
		return nil, err
	}
	if off >= int64(len(rows)) {
		return nil, fmt.Errorf("storage: fetch row %d: page %d holds %d rows", idx, p, len(rows))
	}
	if c != nil {
		c.page, c.rows = int64(p), rows
		return append(sqltypes.Row(nil), rows[off]...), nil
	}
	return rows[off], nil
}
