package storage

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sqltypes"
	"repro/internal/vec"
)

// VecScanStats counts vectorized-scan work. ValuesDecoded is the number
// of individual cell values materialized while building batches — for a
// dictionary- or RLE-encoded column only the per-page dictionary entries
// are ever decoded (counted separately in DictEntriesDecoded), so a
// filter over such a column decodes O(distinct values) per page no
// matter how many rows it drops. The row path decodes every cell of
// every row before the predicate runs.
type VecScanStats struct {
	Batches            atomic.Int64
	Rows               atomic.Int64
	ValuesDecoded      atomic.Int64
	DictEntriesDecoded atomic.Int64
	// ZoneSkippedPages counts sealed pages a scan skipped entirely
	// because their zone-map range could not satisfy the predicate.
	ZoneSkippedPages atomic.Int64
}

// VecScanSnapshot is a point-in-time copy of VecScanStats.
type VecScanSnapshot struct {
	Batches            int64
	Rows               int64
	ValuesDecoded      int64
	DictEntriesDecoded int64
	ZoneSkippedPages   int64
}

// Snapshot returns the current counter values.
func (s *VecScanStats) Snapshot() VecScanSnapshot {
	return VecScanSnapshot{
		Batches:            s.Batches.Load(),
		Rows:               s.Rows.Load(),
		ValuesDecoded:      s.ValuesDecoded.Load(),
		DictEntriesDecoded: s.DictEntriesDecoded.Load(),
		ZoneSkippedPages:   s.ZoneSkippedPages.Load(),
	}
}

// Sub returns s - o, counter-wise.
func (s VecScanSnapshot) Sub(o VecScanSnapshot) VecScanSnapshot {
	return VecScanSnapshot{
		Batches:            s.Batches - o.Batches,
		Rows:               s.Rows - o.Rows,
		ValuesDecoded:      s.ValuesDecoded - o.ValuesDecoded,
		DictEntriesDecoded: s.DictEntriesDecoded - o.DictEntriesDecoded,
		ZoneSkippedPages:   s.ZoneSkippedPages - o.ZoneSkippedPages,
	}
}

var discardVecStats VecScanStats

// decodePageBatch materializes one sealed page into column vectors,
// preserving on-page dictionary/RLE coding as dictionary vectors.
func (h *Heap) decodePageBatch(page []byte, stats *VecScanStats) ([]*vec.Vector, int, error) {
	n := int(binaryLittleUint16(page[2:]))
	used := int(binaryLittleUint16(page[4:]))
	payload := page[heapHeaderSize : heapHeaderSize+used]
	switch page[0] {
	case pageTypeRows:
		rows := make([]sqltypes.Row, 0, n)
		rows, err := h.decodePage(page, rows)
		if err != nil {
			return nil, 0, err
		}
		cols := rowsToVectors(h.kinds, rows)
		stats.ValuesDecoded.Add(int64(len(rows) * len(h.kinds)))
		return cols, len(rows), nil
	case pageTypeCompressed:
		return decodeCompressedBatch(h.kinds, payload, stats)
	case pageTypeColumnar:
		return decodeColumnarBatch(h.kinds, payload, stats)
	}
	return nil, 0, fmt.Errorf("storage: unknown heap page type %d", page[0])
}

func binaryLittleUint16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

// rowsToVectors transposes decoded rows into typed flat vectors.
func rowsToVectors(kinds []sqltypes.Kind, rows []sqltypes.Row) []*vec.Vector {
	cols := make([]*vec.Vector, len(kinds))
	for c, k := range kinds {
		v := vec.NewVector(k, len(rows))
		for _, row := range rows {
			v.Append(row[c])
		}
		cols[c] = v
	}
	return cols
}

// decodeCompressedBatch converts a page-compressed (type 2) payload into
// dictionary vectors without materializing dropped rows: page-dictionary
// entries decode at most once per column, inline cells are appended to
// the column dictionary as singleton entries.
func decodeCompressedBatch(kinds []sqltypes.Kind, buf []byte, stats *VecScanStats) ([]*vec.Vector, int, error) {
	rd := pageReader{buf: buf}
	nCols := int(rd.uvarint())
	nRows := int(rd.uvarint())
	if rd.failed || nCols != len(kinds) {
		return nil, 0, fmt.Errorf("storage: page has %d columns, schema has %d", nCols, len(kinds))
	}
	prefixes := make([][]byte, nCols)
	for c := 0; c < nCols; c++ {
		prefixes[c] = rd.bytes(int(rd.uvarint()))
	}
	nDict := int(rd.uvarint())
	if rd.failed {
		return nil, 0, rd.err()
	}
	pageDict := make([][]byte, nDict)
	for i := range pageDict {
		pageDict[i] = rd.bytes(int(rd.uvarint()))
	}
	cols := make([]*vec.Vector, nCols)
	// dictMap[c][i] is the column-dictionary code of page-dict entry i in
	// column c, or -1 while undecoded.
	dictMap := make([][]int32, nCols)
	for c := range cols {
		cols[c] = &vec.Vector{Kind: kinds[c], Codes: make([]int32, nRows)}
		dictMap[c] = make([]int32, nDict)
		for i := range dictMap[c] {
			dictMap[c][i] = -1
		}
	}
	nb := (nCols + 7) / 8
	var scratch []byte
	for r := 0; r < nRows; r++ {
		nullBM := rd.bytes(nb)
		dictBM := rd.bytes(nb)
		if rd.failed {
			return nil, 0, rd.err()
		}
		for c := 0; c < nCols; c++ {
			col := cols[c]
			if nullBM[c/8]&(1<<uint(c%8)) != 0 {
				col.SetNull(r)
				continue
			}
			var sfx []byte
			fromDict := dictBM[c/8]&(1<<uint(c%8)) != 0
			var dictRef int
			if fromDict {
				dictRef = int(rd.uvarint())
				if rd.failed || dictRef >= nDict {
					return nil, 0, fmt.Errorf("storage: dictionary index out of range")
				}
				if code := dictMap[c][dictRef]; code >= 0 {
					col.Codes[r] = code
					continue
				}
				sfx = pageDict[dictRef]
			} else {
				switch kinds[c] {
				case sqltypes.KindInt:
					sfx = rd.varintBytes()
				case sqltypes.KindFloat:
					sfx = rd.bytes(8)
				case sqltypes.KindBool:
					sfx = rd.bytes(1)
				default:
					sfx = rd.bytes(int(rd.uvarint()))
				}
				if rd.failed {
					return nil, 0, rd.err()
				}
			}
			img := sfx
			if len(prefixes[c]) > 0 {
				scratch = append(scratch[:0], prefixes[c]...)
				scratch = append(scratch, sfx...)
				img = scratch
			}
			v, err := cellFromImage(kinds[c], img)
			if err != nil {
				return nil, 0, err
			}
			code := int32(len(col.Dict))
			col.Dict = append(col.Dict, v)
			col.Codes[r] = code
			if fromDict {
				dictMap[c][dictRef] = code
				stats.DictEntriesDecoded.Add(1)
			} else {
				stats.ValuesDecoded.Add(1)
			}
		}
	}
	return cols, nRows, nil
}

// decodeColumnarBatch converts a columnar (type 3) payload into vectors:
// dict/RLE columns keep their codes, flat columns stay LAZY — the vector
// holds raw cell images and decodes one only when the executor actually
// reads it, so columns the query never touches (and rows the selection
// vector drops) cost nothing past the structural walk. The payload is
// copied once up front because lazy images outlive the page pin.
func decodeColumnarBatch(kinds []sqltypes.Kind, buf []byte, stats *VecScanStats) ([]*vec.Vector, int, error) {
	buf = append([]byte(nil), buf...)
	cr, err := newColumnarReader(buf, len(kinds))
	if err != nil {
		return nil, 0, err
	}
	cols := make([]*vec.Vector, cr.nCols)
	for c := 0; c < cr.nCols; c++ {
		cr.kind = kinds[c]
		_, nulls, dict, codes, flat, err := cr.column()
		if err != nil {
			return nil, 0, err
		}
		var col *vec.Vector
		if codes != nil {
			vals := make([]sqltypes.Value, len(dict))
			for i, img := range dict {
				v, err := cellFromImage(kinds[c], img)
				if err != nil {
					return nil, 0, err
				}
				vals[i] = v
			}
			stats.DictEntriesDecoded.Add(int64(len(dict)))
			col = &vec.Vector{Kind: kinds[c], Codes: codes, Dict: vals}
		} else {
			kind := kinds[c]
			col = &vec.Vector{
				Kind:      kind,
				Imgs:      flat,
				DecodeImg: func(img []byte) (sqltypes.Value, error) { return cellFromImage(kind, img) },
				Decodes:   &stats.ValuesDecoded,
			}
		}
		if nulls != nil {
			for r := 0; r < cr.nRows; r++ {
				if nulls[r/8]&(1<<uint(r%8)) != 0 {
					col.SetNull(r)
				}
			}
		}
		cols[c] = col
	}
	return cols, cr.nRows, nil
}

// HeapBatchIterator scans sealed pages [loPage, hiPage) batch-at-a-time,
// one page per batch, optionally followed by a snapshot of the in-memory
// tail — the vectorized counterpart of HeapVersionIterator. Each batch's
// Base is the global row index of its first physical row, the coordinate
// MVCC visibility ranges are expressed in.
type HeapBatchIterator struct {
	h      *Heap
	page   int64
	hiPage int64
	cum    []int64
	tail   []sqltypes.Row
	tailAt int64
	tailOn bool
	stats  *VecScanStats
	zf     []ZoneFilter
	tally  *PoolTally
}

// SetPoolTally attributes the iterator's buffer-pool traffic to tally
// (nil is valid). Returns the iterator for chaining.
func (it *HeapBatchIterator) SetPoolTally(t *PoolTally) *HeapBatchIterator {
	it.tally = t
	return it
}

// NewBatchIterator returns a batch iterator over sealed pages
// [loPage, hiPage). With extend=true the upper bound and the tail are
// captured atomically at call time instead (hiPage is ignored), covering
// every row physically present at creation. stats may be nil.
func (h *Heap) NewBatchIterator(loPage, hiPage int64, extend bool, stats *VecScanStats) *HeapBatchIterator {
	if stats == nil {
		stats = &discardVecStats
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	it := &HeapBatchIterator{h: h, page: loPage, hiPage: hiPage, cum: h.pageCum, stats: stats}
	if extend {
		it.hiPage = int64(len(h.pageRows))
		it.tail = make([]sqltypes.Row, len(h.tailRows))
		copy(it.tail, h.tailRows)
		it.tailAt = h.rowCount - int64(len(h.tailRows))
		it.tailOn = true
	}
	if it.page > it.hiPage {
		it.page = it.hiPage
	}
	return it
}

// SetZoneFilters makes the iterator skip sealed pages whose zone-map
// range cannot satisfy the filters (conservative: pages without entries
// are read). Returns the iterator for chaining.
func (it *HeapBatchIterator) SetZoneFilters(fs []ZoneFilter) *HeapBatchIterator {
	it.zf = fs
	return it
}

// NextBatch returns the next batch, or (nil, nil) at end of stream. The
// batch is freshly allocated and owned by the caller.
func (it *HeapBatchIterator) NextBatch() (*vec.Batch, error) {
	for it.page < it.hiPage {
		if len(it.zf) > 0 && it.h.ZoneSkip(it.page, it.zf) {
			it.stats.ZoneSkippedPages.Add(1)
			it.page++
			continue
		}
		fr, err := it.h.pool.GetT(it.h.file, PageID(it.page+1), it.tally)
		if err != nil {
			return nil, err
		}
		cols, n, err := it.h.decodePageBatch(fr.Data(), it.stats)
		it.h.pool.Unpin(fr, false)
		if err != nil {
			return nil, err
		}
		base := it.cum[it.page]
		it.page++
		if n == 0 {
			continue
		}
		b := vec.NewBatch(cols, n)
		b.Base = base
		it.stats.Batches.Add(1)
		it.stats.Rows.Add(int64(n))
		return b, nil
	}
	if it.tailOn {
		it.tailOn = false
		rows := it.tail
		it.tail = nil
		if len(rows) > 0 {
			cols := rowsToVectors(it.h.kinds, rows)
			it.stats.ValuesDecoded.Add(int64(len(rows) * len(it.h.kinds)))
			b := vec.NewBatch(cols, len(rows))
			b.Base = it.tailAt
			it.stats.Batches.Add(1)
			it.stats.Rows.Add(int64(len(rows)))
			return b, nil
		}
	}
	return nil, nil
}

// Close satisfies the iterator contract.
func (it *HeapBatchIterator) Close() error { return nil }
