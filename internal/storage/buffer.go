package storage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// frameKey identifies a cached page across files.
type frameKey struct {
	file *PagedFile
	page PageID
}

// pinMask extracts the pin count from a frame's packed state word.
const pinMask = (uint64(1) << 32) - 1

// fillLatch is the per-frame miss latch: concurrent getters of an
// in-flight page wait on done; err is written before the close, so the
// close publishes it.
type fillLatch struct {
	done chan struct{}
	err  error
}

// frame is one buffer-pool slot.
//
// state packs generation<<32 | pins. The generation is even while the
// frame's identity (key) is stable and odd while a recycle is in flight;
// it increases by two per recycle, so a successful CAS on an unchanged
// state word proves no recycle intervened. That is the whole warm-hit
// protocol: load state (even generation), load key (match), CAS pins+1 —
// all without the shard lock. The evictor begins a recycle with a CAS
// from (even, 0 pins) to (odd, 0), which any concurrent pin invalidates,
// and ends it with a store of (even+2, pins).
type frame struct {
	state atomic.Uint64
	key   atomic.Pointer[frameKey]
	latch atomic.Pointer[fillLatch]
	dirty atomic.Bool
	used  atomic.Bool // clock reference bit
	data  [PageSize]byte
}

// tryPin takes a pin iff the frame currently maps key. Safe without any
// lock: the CAS succeeds only if the state word — including the
// recycle generation — is unchanged since the key was validated.
func (fr *frame) tryPin(key frameKey) bool {
	for {
		s := fr.state.Load()
		if (s>>32)&1 == 1 {
			return false // recycle in flight
		}
		k := fr.key.Load()
		if k == nil || *k != key {
			return false
		}
		if fr.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// unpin releases one pin.
func (fr *frame) unpin() {
	for {
		s := fr.state.Load()
		if s&pinMask == 0 {
			panic("storage: Unpin of unpinned frame")
		}
		if fr.state.CompareAndSwap(s, s-1) {
			return
		}
	}
}

// poolShard is one lock domain of the buffer pool: its own frame map,
// clock list and hand. budget is how many frames the shard may own;
// eviction pressure moves budget between shards (see stealBudget), with
// the invariant len(clock) <= budget per shard and sum(budget) == pool
// capacity, so the pool never materializes more than capacity frames.
// snap is a copy-on-write snapshot of frames, republished after every
// map mutation under mu — the lock-free hit path reads only the
// snapshot, so misses and evictions never block warm hits.
type poolShard struct {
	mu     sync.Mutex
	frames map[frameKey]*frame
	snap   atomic.Pointer[map[frameKey]*frame]
	clock  []*frame
	hand   int
	budget int
}

// publishLocked republishes the frame-map snapshot. Called with mu held
// after every mutation of frames.
func (sh *poolShard) publishLocked() {
	m := make(map[frameKey]*frame, len(sh.frames))
	for k, v := range sh.frames {
		m[k] = v
	}
	sh.snap.Store(&m)
}

// installLocked binds an allocLocked frame to key with one pin held,
// completing the frame's recycle (generation back to even). latch is
// non-nil while a disk fill is pending; dirty marks freshly allocated
// pages. Called with mu held.
func (sh *poolShard) installLocked(fr *frame, key frameKey, dirty bool, latch *fillLatch) {
	gen := fr.state.Load() >> 32
	if gen&1 == 1 {
		gen++
	}
	fr.dirty.Store(dirty)
	fr.used.Store(true)
	fr.latch.Store(latch)
	k := key
	fr.key.Store(&k)
	sh.frames[key] = fr
	sh.publishLocked()
	// The store makes the frame pinnable; every identity field above is
	// ordered before it.
	fr.state.Store(gen<<32 | 1)
}

// BufferPool caches pages with pin/unpin semantics and clock eviction.
// Dirty pages are never evicted (no-steal); FlushFile persists them at
// checkpoints. The pool is safe for concurrent use; the paper's parallel
// query plans scan through it from multiple goroutines ("with a warm
// buffer pool", Section 5.3.3).
//
// The pool is sharded: pages hash (by file and page id) onto
// power-of-two many shards, each with its own mutex. Warm hits take no
// lock at all: they look the page up in the shard's copy-on-write map
// snapshot and pin with a single CAS on the frame's generation-stamped
// state word, so parallel scans over a warm pool scale without touching
// a mutex. Misses, evictions and flushes serialize on the shard lock as
// before; cache-miss disk reads happen outside it behind a per-frame
// fill latch.
type BufferPool struct {
	shards   []poolShard
	mask     uint64
	capacity int

	hits, misses, evictions atomic.Int64
}

// PoolTally attributes buffer-pool traffic to one consumer — typically
// a plan operator's profile. The fields point directly at the
// consumer's own atomic counters (storage stays ignorant of who owns
// them), incremented alongside the pool's global counters by GetT. A
// nil *PoolTally is valid and counts nothing.
type PoolTally struct {
	Hits, Misses *atomic.Int64
}

func (t *PoolTally) hit() {
	if t != nil {
		t.Hits.Add(1)
	}
}

func (t *PoolTally) miss() {
	if t != nil {
		t.Misses.Add(1)
	}
}

// PoolStats is a point-in-time snapshot of the pool's counters.
type PoolStats struct {
	Hits, Misses, Evictions int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the counter deltas since an earlier snapshot.
func (s PoolStats) Sub(earlier PoolStats) PoolStats {
	return PoolStats{
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
	}
}

// NewBufferPool returns a pool caching up to capacity pages, with a
// shard count sized to the machine.
func NewBufferPool(capacity int) *BufferPool {
	return NewBufferPoolSharded(capacity, 0)
}

// NewBufferPoolSharded returns a pool caching up to capacity pages
// split across the given number of shards (rounded up to a power of
// two). shards <= 0 selects a default based on GOMAXPROCS, capped so
// each shard still has a useful number of frames.
func NewBufferPoolSharded(capacity, shards int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	if shards <= 0 {
		// Oversubscribe shards vs cores so random page hashes rarely
		// collide on a lock even when every core runs a scan worker.
		shards = 4 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
	}
	n := 1
	for n < shards && n < 64 {
		n <<= 1
	}
	// Keep at least 4 frames of budget per shard on average.
	for n > 1 && capacity/n < 4 {
		n >>= 1
	}
	bp := &BufferPool{
		shards:   make([]poolShard, n),
		mask:     uint64(n - 1),
		capacity: capacity,
	}
	base, extra := capacity/n, capacity%n
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.frames = make(map[frameKey]*frame, base+1)
		sh.budget = base
		if i < extra {
			sh.budget++
		}
		sh.publishLocked()
	}
	return bp
}

// Capacity returns the maximum number of cached pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// ShardCount returns the number of lock domains.
func (bp *BufferPool) ShardCount() int { return len(bp.shards) }

// Stats returns a consistent snapshot of the pool counters. Safe to
// call concurrently with scans (counters are atomics).
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
	}
}

// shard maps a page to its lock domain via a splitmix-style mix of the
// file id and page number.
func (bp *BufferPool) shard(key frameKey) *poolShard {
	h := key.file.id*0x9E3779B97F4A7C15 + uint64(key.page)
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return &bp.shards[h&bp.mask]
}

// Get pins the page and returns its in-memory image. The caller must call
// Unpin (with dirty=true if it modified the image) when done.
//
// Warm hits complete entirely lock-free (snapshot lookup + tryPin). A
// miss reads from disk outside the shard lock: the frame is published
// with a fill latch first, so concurrent getters of the same page block
// on the latch (not on the shard), and getters of other pages proceed.
func (bp *BufferPool) Get(f *PagedFile, id PageID) (*frame, error) {
	return bp.GetT(f, id, nil)
}

// GetT is Get with per-consumer accounting: when tally is non-nil its
// counters increment alongside the pool's global hit/miss counters, so
// a scan operator's profile can report the pool traffic it caused.
func (bp *BufferPool) GetT(f *PagedFile, id PageID, tally *PoolTally) (*frame, error) {
	key := frameKey{f, id}
	sh := bp.shard(key)
	if m := sh.snap.Load(); m != nil {
		if fr, ok := (*m)[key]; ok && fr.tryPin(key) {
			return bp.pinned(fr, tally)
		}
	}
	sh.mu.Lock()
	for {
		if fr, ok := sh.frames[key]; ok {
			// Under mu the mapping is stable (recycles hold mu), so the
			// pin cannot fail.
			if !fr.tryPin(key) {
				sh.mu.Unlock()
				panic("storage: mapped frame rejected pin under shard lock")
			}
			sh.mu.Unlock()
			return bp.pinned(fr, tally)
		}
		fr := sh.allocLocked(bp)
		if fr == nil {
			sh.mu.Unlock()
			if err := bp.stealBudget(sh); err != nil {
				return nil, err
			}
			sh.mu.Lock()
			continue // re-check: the page may have been cached meanwhile
		}
		bp.misses.Add(1)
		tally.miss()
		latch := &fillLatch{done: make(chan struct{})}
		sh.installLocked(fr, key, false, latch)
		sh.mu.Unlock()

		err := f.ReadPage(id, fr.data[:]) // the actual I/O, outside the lock
		if err == nil {
			// Checksum-verify the page image on its way into the pool.
			// Warm hits skip this: a frame is verified once per fill.
			err = f.verifyPage(id, fr.data[:])
		}
		if err != nil {
			// Publish the error, then unmap. The stale latch stays on the
			// frame until its next install: a racing lock-free pin that
			// slips in before the key is cleared finds the latch, observes
			// the error, and unpins — it can never mistake the frame for a
			// clean hit.
			latch.err = err
			sh.mu.Lock()
			delete(sh.frames, key)
			sh.publishLocked()
			fr.key.Store(nil)
			sh.mu.Unlock()
			fr.unpin()
			close(latch.done)
			return nil, err
		}
		fr.latch.Store(nil)
		close(latch.done)
		return fr, nil
	}
}

// pinned finishes a successful pin: account a hit, or wait out a pending
// fill.
func (bp *BufferPool) pinned(fr *frame, tally *PoolTally) (*frame, error) {
	latch := fr.latch.Load()
	if latch == nil {
		bp.hits.Add(1)
		tally.hit()
		fr.used.Store(true)
		return fr, nil
	}
	// Waiting on another getter's fill pays the I/O latency, so it
	// counts as a miss, keeping the reported hit rate honest about how
	// many accesses were served from memory.
	bp.misses.Add(1)
	tally.miss()
	<-latch.done
	// The pin keeps the frame from being recycled, so latch.err still
	// belongs to the fill we waited for.
	if latch.err != nil {
		fr.unpin()
		return nil, latch.err
	}
	fr.used.Store(true)
	return fr, nil
}

// NewPage pins a frame for a freshly allocated page without reading from
// disk (the page is known to be zero).
func (bp *BufferPool) NewPage(f *PagedFile, id PageID) (*frame, error) {
	key := frameKey{f, id}
	sh := bp.shard(key)
	sh.mu.Lock()
	for {
		if _, ok := sh.frames[key]; ok {
			sh.mu.Unlock()
			return nil, fmt.Errorf("storage: NewPage for already-cached page %d", id)
		}
		fr := sh.allocLocked(bp)
		if fr == nil {
			sh.mu.Unlock()
			if err := bp.stealBudget(sh); err != nil {
				return nil, err
			}
			sh.mu.Lock()
			continue
		}
		clear(fr.data[:]) // before install: no reader can pin yet
		sh.installLocked(fr, key, true, nil)
		sh.mu.Unlock()
		return fr, nil
	}
}

// allocLocked finds a reusable frame in the shard: a fresh frame while
// the shard is under budget, else an unpinned clean page evicted via the
// clock algorithm. Returns nil when every frame is pinned or dirty. A
// returned recycled frame is in the odd-generation state (unpinnable)
// until installLocked. Called with sh.mu held.
func (sh *poolShard) allocLocked(bp *BufferPool) *frame {
	if len(sh.clock) < sh.budget {
		fr := &frame{}
		sh.clock = append(sh.clock, fr)
		return fr
	}
	return sh.evictLocked(bp)
}

// evictLocked runs the clock sweep, returning an evicted frame (still
// tracked in the shard's clock, generation odd) or nil.
func (sh *poolShard) evictLocked(bp *BufferPool) *frame {
	for sweep := 0; sweep < 2*len(sh.clock); sweep++ {
		fr := sh.clock[sh.hand]
		sh.hand = (sh.hand + 1) % len(sh.clock)
		s := fr.state.Load()
		if s&pinMask != 0 || fr.dirty.Load() {
			continue
		}
		if fr.used.Load() {
			fr.used.Store(false)
			continue
		}
		// Begin the recycle: odd generation with zero pins. Any
		// concurrent lock-free pin changes the state word and fails the
		// CAS.
		if !fr.state.CompareAndSwap(s, (s>>32+1)<<32) {
			continue
		}
		// A pin taken and released between the dirty check and the CAS
		// leaves the state word unchanged but may have dirtied the frame
		// (Unpin orders the dirty store before the pin release, and that
		// release is ordered before our successful CAS). Re-check now
		// that the odd generation blocks further pins.
		if fr.dirty.Load() {
			fr.state.Store((s>>32 + 2) << 32) // abort: back to even, mapping intact
			continue
		}
		if k := fr.key.Load(); k != nil {
			fr.key.Store(nil)
			delete(sh.frames, *k)
			sh.publishLocked()
			bp.evictions.Add(1)
		}
		return fr
	}
	return nil
}

// stealBudget rebalances one unit of frame budget from a sibling shard
// into home after home's local allocation failed. Victim selection is
// pressure-aware: the sibling with the most spare (unmaterialized) budget
// cedes a unit first; otherwise the sibling with the most unpinned clean
// frames — the one losing the least cache utility — is evicted from and a
// frame physically moves. A first-fit sweep remains as the fallback
// because the scored pick is made from racy snapshots. Only one shard
// lock is held at a time (no ordering, no deadlock). Errors when every
// frame in the pool is pinned or dirty.
func (bp *BufferPool) stealBudget(home *poolShard) error {
	// Pass 1: the shard with the most spare budget cedes a unit without
	// losing any cached page.
	if sib := bp.maxScoreShard(home, func(sh *poolShard) int {
		return sh.budget - len(sh.clock)
	}); sib != nil {
		sib.mu.Lock()
		if len(sib.clock) < sib.budget { // re-validate under the lock
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	// Pass 2: evict from the shard under the least eviction pressure (most
	// unpinned clean frames).
	if sib := bp.maxScoreShard(home, func(sh *poolShard) int {
		free := 0
		for _, fr := range sh.clock {
			if fr.state.Load()&pinMask == 0 && !fr.dirty.Load() {
				free++
			}
		}
		return free
	}); sib != nil {
		sib.mu.Lock()
		if fr := sib.evictLocked(bp); fr != nil {
			sib.removeFromClockLocked(fr)
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.clock = append(home.clock, fr)
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	// Fallback: the snapshots raced with concurrent pins; take whatever
	// any shard can give, first fit.
	for i := range bp.shards {
		sib := &bp.shards[i]
		if sib == home {
			continue
		}
		sib.mu.Lock()
		if len(sib.clock) < sib.budget {
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.mu.Unlock()
			return nil
		}
		if fr := sib.evictLocked(bp); fr != nil {
			sib.removeFromClockLocked(fr)
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.clock = append(home.clock, fr)
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned or dirty); checkpoint required", bp.capacity)
}

// maxScoreShard returns the shard (other than home) with the highest
// positive score, or nil. Scores are computed one shard lock at a time,
// so they are snapshots; callers re-validate under the winner's lock.
func (bp *BufferPool) maxScoreShard(home *poolShard, score func(*poolShard) int) *poolShard {
	var best *poolShard
	bestScore := 0
	for i := range bp.shards {
		sib := &bp.shards[i]
		if sib == home {
			continue
		}
		sib.mu.Lock()
		s := score(sib)
		sib.mu.Unlock()
		if s > bestScore {
			bestScore, best = s, sib
		}
	}
	return best
}

// removeFromClockLocked unlinks fr from the shard's clock list.
func (sh *poolShard) removeFromClockLocked(fr *frame) {
	for i, c := range sh.clock {
		if c == fr {
			last := len(sh.clock) - 1
			sh.clock[i] = sh.clock[last]
			sh.clock[last] = nil
			sh.clock = sh.clock[:last]
			if sh.hand >= len(sh.clock) {
				sh.hand = 0
			}
			return
		}
	}
}

// Unpin releases a pinned frame. Lock-free: the dirty bit is published
// before the pin drops, and the evictor re-checks dirty after taking the
// frame, so the write can never be lost to a concurrent eviction.
func (bp *BufferPool) Unpin(fr *frame, dirty bool) {
	if dirty {
		fr.dirty.Store(true)
	}
	fr.unpin()
}

// Data exposes the page image of a pinned frame.
func (fr *frame) Data() []byte { return fr.data[:] }

// FlushFile writes every dirty page of f to disk, in ascending PageID
// order for sequential I/O, and clears dirty flags. The file is not
// fsynced; callers sequence Sync with their WAL protocol. Concurrent
// Get/Unpin on other pages proceed; callers must not mutate pinned
// pages of f during the flush (checkpoints run with the engine's
// writer lock held).
func (bp *BufferPool) FlushFile(f *PagedFile) error {
	type flushEntry struct {
		fr   *frame
		page PageID
	}
	var toFlush []flushEntry
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for k, fr := range sh.frames {
			if k.file == f && fr.dirty.Load() {
				// Mapped frames cannot be recycled while we hold the shard
				// lock, so a plain atomic increment pins safely.
				fr.state.Add(1)
				toFlush = append(toFlush, flushEntry{fr, k.page})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(toFlush, func(i, j int) bool {
		return toFlush[i].page < toFlush[j].page
	})
	var firstErr error
	for _, e := range toFlush {
		var err error
		if firstErr == nil {
			err = f.WritePage(e.page, e.fr.data[:])
		}
		if err == nil && firstErr == nil {
			e.fr.dirty.Store(false)
		}
		e.fr.unpin()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DropFile removes every cached page of f (used when a table is dropped or
// truncated during rollback). Dirty pages are discarded.
func (bp *BufferPool) DropFile(f *PagedFile) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		changed := false
		for k, fr := range sh.frames {
			if k.file != f {
				continue
			}
			// Recycle the frame; pins>0 means the caller broke the
			// exclusivity contract (as before).
			for {
				s := fr.state.Load()
				if s&pinMask != 0 {
					sh.mu.Unlock()
					panic("storage: DropFile with pinned pages")
				}
				if fr.state.CompareAndSwap(s, (s>>32+1)<<32) {
					fr.dirty.Store(false)
					fr.key.Store(nil)
					delete(sh.frames, k)
					fr.state.Store((s>>32 + 2) << 32)
					changed = true
					break
				}
			}
		}
		if changed {
			sh.publishLocked()
		}
		sh.mu.Unlock()
	}
}
