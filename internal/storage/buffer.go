package storage

import (
	"fmt"
	"sync"
)

// frameKey identifies a cached page across files.
type frameKey struct {
	file *PagedFile
	page PageID
}

// frame is one buffer-pool slot.
type frame struct {
	key   frameKey
	data  [PageSize]byte
	pins  int
	dirty bool
	used  bool // clock reference bit
}

// BufferPool caches pages with pin/unpin semantics and clock eviction.
// Dirty pages are never evicted (no-steal); FlushFile persists them at
// checkpoints. The pool is safe for concurrent use; the paper's parallel
// query plans scan through it from multiple goroutines ("with a warm
// buffer pool", Section 5.3.3).
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*frame
	clock    []*frame
	hand     int

	// Stats are monotonically increasing counters for diagnostics.
	Hits, Misses, Evictions int64
}

// NewBufferPool returns a pool caching up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[frameKey]*frame, capacity),
	}
}

// Get pins the page and returns its in-memory image. The caller must call
// Unpin (with dirty=true if it modified the image) when done.
//
// The disk read of a miss happens under the pool lock. That serializes
// fills, which is deliberate: it keeps the "frame visible implies frame
// filled" invariant without per-frame latches, and the CPU-heavy work
// (decoding rows) happens after Get returns, outside the lock, so parallel
// scans still spread across cores.
func (bp *BufferPool) Get(f *PagedFile, id PageID) (*frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{f, id}
	if fr, ok := bp.frames[key]; ok {
		fr.pins++
		fr.used = true
		bp.Hits++
		return fr, nil
	}
	bp.Misses++
	fr, err := bp.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := f.ReadPage(id, fr.data[:]); err != nil {
		return nil, err
	}
	fr.key = key
	fr.pins = 1
	fr.used = true
	fr.dirty = false
	bp.frames[key] = fr
	return fr, nil
}

// NewPage pins a frame for a freshly allocated page without reading from
// disk (the page is known to be zero).
func (bp *BufferPool) NewPage(f *PagedFile, id PageID) (*frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{f, id}
	if _, ok := bp.frames[key]; ok {
		return nil, fmt.Errorf("storage: NewPage for already-cached page %d", id)
	}
	fr, err := bp.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	fr.key = key
	fr.pins = 1
	fr.used = true
	fr.dirty = true
	for i := range fr.data {
		fr.data[i] = 0
	}
	bp.frames[key] = fr
	return fr, nil
}

// allocFrameLocked finds a reusable frame, evicting an unpinned clean page
// via the clock algorithm if the pool is full.
func (bp *BufferPool) allocFrameLocked() (*frame, error) {
	if len(bp.clock) < bp.capacity {
		fr := &frame{}
		bp.clock = append(bp.clock, fr)
		return fr, nil
	}
	for sweep := 0; sweep < 2*len(bp.clock); sweep++ {
		fr := bp.clock[bp.hand]
		bp.hand = (bp.hand + 1) % len(bp.clock)
		if fr.pins > 0 || fr.dirty {
			continue
		}
		if fr.used {
			fr.used = false
			continue
		}
		delete(bp.frames, fr.key)
		bp.Evictions++
		return fr, nil
	}
	return nil, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned or dirty); checkpoint required", bp.capacity)
}

// Unpin releases a pinned frame.
func (bp *BufferPool) Unpin(fr *frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: Unpin of unpinned frame")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// Data exposes the page image of a pinned frame.
func (fr *frame) Data() []byte { return fr.data[:] }

// FlushFile writes every dirty page of f to disk and clears dirty flags.
// The file is not fsynced; callers sequence Sync with their WAL protocol.
func (bp *BufferPool) FlushFile(f *PagedFile) error {
	bp.mu.Lock()
	var toFlush []*frame
	for _, fr := range bp.frames {
		if fr.key.file == f && fr.dirty {
			fr.pins++ // hold while writing
			toFlush = append(toFlush, fr)
		}
	}
	bp.mu.Unlock()
	for _, fr := range toFlush {
		err := f.WritePage(fr.key.page, fr.data[:])
		bp.mu.Lock()
		fr.pins--
		if err == nil {
			fr.dirty = false
		}
		bp.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DropFile removes every cached page of f (used when a table is dropped or
// truncated during rollback). Dirty pages are discarded.
func (bp *BufferPool) DropFile(f *PagedFile) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for k, fr := range bp.frames {
		if k.file == f {
			if fr.pins > 0 {
				panic("storage: DropFile with pinned pages")
			}
			fr.dirty = false
			fr.key = frameKey{}
			delete(bp.frames, k)
		}
	}
}
